// Command fmossimd is the concurrent campaign job server — and, with
// -coordinator, the distributed-campaign coordinator that drives a pool
// of such servers.
//
// # Server mode (default)
//
// A long-running HTTP daemon that accepts fault-campaign submissions,
// runs them over a bounded worker pool with shared tables and recorded
// good-circuit trajectories, and streams progress as NDJSON:
//
//	fmossimd -addr :8458 -max-jobs 4 -queue 32
//
// API (see internal/server for the full contract):
//
//	POST   /jobs             submit a campaign or shard job (JSON JobSpec)
//	GET    /jobs             list jobs
//	GET    /jobs/{id}        job status (+ result when done)
//	GET    /jobs/{id}/stream NDJSON progress stream
//	DELETE /jobs/{id}        cancel (live) / remove (terminal)
//	PUT    /recordings/{fp}  upload an encoded good-circuit recording
//	GET    /recordings       stored-recording metadata
//	GET    /healthz          liveness probe
//
// Example session:
//
//	fmossimd -addr :8458 &
//	curl -s :8458/jobs -d '{"workload":"ram64","sample_every":4}'
//	curl -sN :8458/jobs/job-1/stream
//
// A saturated server (max-jobs running, queue full) answers POST /jobs
// with 429 Too Many Requests and a Retry-After header. SIGINT/SIGTERM
// cancel every job cooperatively and drain the pool before exit.
//
// # Coordinator mode
//
// With -coordinator, fmossimd runs one distributed campaign across a
// comma-separated pool of workers and exits: the good trajectory is
// recorded once, uploaded to each worker by content fingerprint, and the
// fault universe fans out as shard jobs with retry/requeue on worker
// failure. The merged result is bit-identical to a single-process
// campaign with the same batch size (see internal/distrib and
// ARCHITECTURE.md):
//
//	fmossimd -coordinator -workers 127.0.0.1:8458,127.0.0.1:8459 \
//	    -workload ram256 -batch 64 -coverage-target 0.95
//
// Inline circuits work too: -net/-patterns/-observe mirror cmd/fmossim,
// and -trim/-trim-probation enable redundancy trimming on every shard
// (results stay byte-identical). Shards are dispatched expensive-first:
// the coordinator estimates each shard's cost from the recording's head
// activity over its faults' sites and front-loads the heavy ones, so the
// tail of the campaign is never one large shard on an idle pool. SIGINT
// cancels the campaign and DELETEs every outstanding worker job.
package main

// Command fmossimd is the concurrent campaign job server: a long-running
// HTTP daemon that accepts fault-campaign submissions, runs them over a
// bounded worker pool with shared tables and recorded good-circuit
// trajectories, and streams progress as NDJSON.
//
// Usage:
//
//	fmossimd -addr :8458 -max-jobs 4 -queue 32
//
// API (see internal/server for the full contract):
//
//	POST   /jobs             submit a campaign (JSON JobSpec)
//	GET    /jobs             list jobs
//	GET    /jobs/{id}        job status (+ result when done)
//	GET    /jobs/{id}/stream NDJSON progress stream
//	DELETE /jobs/{id}        cancel (live) / remove (terminal)
//	GET    /healthz          liveness probe
//
// Example session:
//
//	fmossimd -addr :8458 &
//	curl -s :8458/jobs -d '{"workload":"ram64","sample_every":4}'
//	curl -sN :8458/jobs/job-1/stream
//
// A saturated server (max-jobs running, queue full) answers POST /jobs
// with 429 Too Many Requests and a Retry-After header. SIGINT/SIGTERM
// cancel every job cooperatively and drain the pool before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fmossim/internal/server"
)

func main() {
	addr := flag.String("addr", ":8458", "listen address")
	maxJobs := flag.Int("max-jobs", 2, "campaigns running concurrently")
	queue := flag.Int("queue", 16, "queued (accepted, not started) jobs before shedding with 429")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint on 429 responses")
	streamInterval := flag.Duration("stream-interval", 100*time.Millisecond, "minimum spacing between streamed snapshots")
	keepTerminal := flag.Int("keep-terminal", 64, "finished jobs retained for status queries before eviction")
	flag.Parse()

	mgr := server.NewManager(server.Config{
		MaxJobs:        *maxJobs,
		QueueDepth:     *queue,
		RetryAfter:     *retryAfter,
		StreamInterval: *streamInterval,
		KeepTerminal:   *keepTerminal,
	})
	srv := &http.Server{Addr: *addr, Handler: mgr.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		fmt.Fprintln(os.Stderr, "fmossimd: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()

	fmt.Fprintf(os.Stderr, "fmossimd: listening on %s (max %d concurrent jobs, queue %d)\n",
		*addr, *maxJobs, *queue)
	err := srv.ListenAndServe()
	// ListenAndServe returns as soon as Shutdown is called; cancel and
	// drain every job (which lets in-flight stream handlers write their
	// terminal lines), then wait for Shutdown to finish those handlers
	// off before exiting.
	mgr.Close()
	if !errors.Is(err, http.ErrServerClosed) && err != nil {
		fmt.Fprintln(os.Stderr, "fmossimd:", err)
		os.Exit(1)
	}
	stop()
	<-shutdownDone
}

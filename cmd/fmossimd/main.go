// Entry point and flag handling for both modes; the server/coordinator
// split is documented in doc.go.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fmossim/internal/campaign"
	"fmossim/internal/distrib"
	"fmossim/internal/server"
)

func main() {
	// Server mode.
	addr := flag.String("addr", ":8458", "listen address")
	maxJobs := flag.Int("max-jobs", 2, "campaigns running concurrently")
	queue := flag.Int("queue", 16, "queued (accepted, not started) jobs before shedding with 429")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint on 429 responses")
	streamInterval := flag.Duration("stream-interval", 100*time.Millisecond, "minimum spacing between streamed snapshots")
	keepTerminal := flag.Int("keep-terminal", 64, "finished jobs retained for status queries before eviction")

	// Coordinator mode.
	coordinator := flag.Bool("coordinator", false, "run one distributed campaign over -workers and exit")
	workers := flag.String("workers", "", "comma-separated worker base URLs (coordinator mode)")
	workload := flag.String("workload", "", "built-in workload: ram64 or ram256")
	sequence := flag.String("sequence", "", "built-in test sequence: sequence1 or sequence2")
	maxPatterns := flag.Int("max-patterns", 0, "truncate the sequence to its first N patterns")
	sampleEvery := flag.Int("sample-every", 0, "keep every k-th fault (statistical sampling)")
	faultModel := flag.String("fault-model", "", "fault universe: paper or stuck")
	netPath := flag.String("net", "", "inline netlist file (instead of -workload)")
	patPath := flag.String("patterns", "", "inline pattern script file")
	observe := flag.String("observe", "", "comma-separated observed output nodes (inline netlist)")
	drop := flag.String("drop", "", "fault-dropping policy: any, hard, or never")
	batch := flag.Int("batch", 0, "faults per shard (0: split across worker slots)")
	coverageTarget := flag.Float64("coverage-target", 0, "stop cluster-wide once this coverage is reached")
	simWorkers := flag.Int("sim-workers", 0, "per-shard simulator workers on each remote")
	inFlight := flag.Int("in-flight", 0, "concurrent shards per worker (default 2)")
	attempts := flag.Int("attempts", 0, "dispatch attempts per shard before the campaign fails (default 3)")
	trim := flag.Bool("trim", false, "redundancy trimming on every shard (results are byte-identical)")
	trimProbation := flag.Int("trim-probation", 0, "class-collapse probation window in settings (0: default)")
	flag.Parse()

	if *coordinator {
		runCoordinator(coordinatorConfig{
			workers: *workers, workload: *workload, sequence: *sequence,
			maxPatterns: *maxPatterns, sampleEvery: *sampleEvery, faultModel: *faultModel,
			netPath: *netPath, patPath: *patPath, observe: *observe, drop: *drop,
			batch: *batch, coverageTarget: *coverageTarget,
			simWorkers: *simWorkers, inFlight: *inFlight, attempts: *attempts,
			trim: *trim, trimProbation: *trimProbation,
		})
		return
	}

	mgr := server.NewManager(server.Config{
		MaxJobs:        *maxJobs,
		QueueDepth:     *queue,
		RetryAfter:     *retryAfter,
		StreamInterval: *streamInterval,
		KeepTerminal:   *keepTerminal,
	})
	srv := &http.Server{Addr: *addr, Handler: mgr.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		fmt.Fprintln(os.Stderr, "fmossimd: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()

	fmt.Fprintf(os.Stderr, "fmossimd: listening on %s (max %d concurrent jobs, queue %d)\n",
		*addr, *maxJobs, *queue)
	err := srv.ListenAndServe()
	// ListenAndServe returns as soon as Shutdown is called; cancel and
	// drain every job (which lets in-flight stream handlers write their
	// terminal lines), then wait for Shutdown to finish those handlers
	// off before exiting.
	mgr.Close()
	if !errors.Is(err, http.ErrServerClosed) && err != nil {
		fmt.Fprintln(os.Stderr, "fmossimd:", err)
		os.Exit(1)
	}
	stop()
	<-shutdownDone
}

type coordinatorConfig struct {
	workers, workload, sequence    string
	maxPatterns, sampleEvery       int
	faultModel, netPath, patPath   string
	observe, drop                  string
	batch                          int
	coverageTarget                 float64
	simWorkers, inFlight, attempts int
	trim                           bool
	trimProbation                  int
}

// runCoordinator executes one distributed campaign and prints the merged
// summary (the same shape cmd/fmossim prints for a local campaign, so
// the two are directly diffable).
func runCoordinator(cfg coordinatorConfig) {
	if cfg.workers == "" {
		fatal(fmt.Errorf("-coordinator requires -workers"))
	}
	var urls []string
	for _, w := range strings.Split(cfg.workers, ",") {
		w = strings.TrimSpace(w)
		if w == "" {
			continue
		}
		if !strings.Contains(w, "://") {
			w = "http://" + w
		}
		urls = append(urls, strings.TrimRight(w, "/"))
	}

	spec := server.JobSpec{
		Workload:       cfg.workload,
		Sequence:       cfg.sequence,
		MaxPatterns:    cfg.maxPatterns,
		SampleEvery:    cfg.sampleEvery,
		FaultModel:     cfg.faultModel,
		Drop:           cfg.drop,
		CoverageTarget: cfg.coverageTarget,
		Trim:           cfg.trim,
		TrimProbation:  cfg.trimProbation,
	}
	if cfg.netPath != "" {
		spec.Netlist = readFile(cfg.netPath)
		spec.Patterns = readFile(cfg.patPath)
		for _, n := range strings.Split(cfg.observe, ",") {
			if n = strings.TrimSpace(n); n != "" {
				spec.Observe = append(spec.Observe, n)
			}
		}
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	// Progress is delivered serialized, so plain locals are safe; print
	// a coverage line at most twice a second.
	var lastPrint time.Time
	progress := func(ev campaign.ProgressEvent) {
		if time.Since(lastPrint) < 500*time.Millisecond && !ev.BatchDone {
			return
		}
		lastPrint = time.Now()
		fmt.Fprintf(os.Stderr, "\rcoverage %6.2f%%  (%d/%d detected, %d/%d shards)   ",
			100*ev.Coverage(), ev.Detected, ev.NumFaults, ev.BatchesDone, ev.Batches)
	}

	start := time.Now()
	res, err := distrib.Run(ctx, spec, distrib.Options{
		Workers:     urls,
		InFlight:    cfg.inFlight,
		BatchSize:   cfg.batch,
		SimWorkers:  cfg.simWorkers,
		MaxAttempts: cfg.attempts,
		Progress:    progress,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "\r"+format+"\n", args...)
		},
	})
	fmt.Fprintln(os.Stderr)
	if err != nil {
		fatal(err)
	}
	res.Run.Summary(os.Stdout)
	fmt.Printf("  campaign: %d batches (%d run, %d skipped) over %d workers in %.3fs\n",
		res.Batches, res.BatchesRun, res.BatchesSkipped, len(urls), time.Since(start).Seconds())
}

func readFile(path string) string {
	if path == "" {
		fatal(fmt.Errorf("inline netlists need both -net and -patterns"))
	}
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	return string(data)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fmossimd:", err)
	os.Exit(1)
}

// Entry point; the command is documented in doc.go.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"fmossim/internal/march"
	"fmossim/internal/netlist"
	"fmossim/internal/ram"
	"fmossim/internal/switchsim"
)

func main() {
	rows := flag.Int("rows", 8, "number of rows (power of two)")
	cols := flag.Int("cols", 8, "number of columns (power of two)")
	netPath := flag.String("net", "", "write the netlist here (required)")
	patPath := flag.String("patterns", "", "also write a test sequence pattern script")
	seqNo := flag.Int("seq", 1, "which paper test sequence for -patterns: 1 or 2")
	flag.Parse()
	if *netPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	m := ram.New(ram.Config{Rows: *rows, Cols: *cols})
	f, err := os.Create(*netPath)
	if err != nil {
		fatal(err)
	}
	if err := netlist.Write(f, m.Net); err != nil {
		fatal(err)
	}
	f.Close()
	fmt.Printf("wrote %s: %s (observe %q)\n", *netPath, m.Net.Stats(), ram.Dout)

	if *patPath == "" {
		return
	}
	var seq *switchsim.Sequence
	switch *seqNo {
	case 1:
		seq = march.Sequence1(m)
	case 2:
		seq = march.Sequence2(m)
	default:
		fatal(fmt.Errorf("unknown sequence %d", *seqNo))
	}
	pf, err := os.Create(*patPath)
	if err != nil {
		fatal(err)
	}
	w := bufio.NewWriter(pf)
	for pi := range seq.Patterns {
		p := &seq.Patterns[pi]
		fmt.Fprintf(w, "pattern %s\n", p.Name)
		for _, set := range p.Settings {
			for i, a := range set {
				if i > 0 {
					fmt.Fprint(w, " ")
				}
				fmt.Fprintf(w, "%s=%s", m.Net.Name(a.Node), a.Value)
			}
			fmt.Fprintln(w)
		}
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
	pf.Close()
	fmt.Printf("wrote %s: %d patterns (%d settings)\n", *patPath, len(seq.Patterns), seq.NumSettings())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ramgen:", err)
	os.Exit(1)
}

// Command ramgen emits the benchmark RAM circuits as netlist files, and
// optionally the marching-test pattern scripts that exercise them (in the
// format cmd/fmossim reads).
//
// Usage:
//
//	ramgen -rows 8 -cols 8 -net ram64.sim -patterns seq1.pat -seq 1
package main

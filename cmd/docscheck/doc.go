// Command docscheck verifies the repository's documentation invariants:
// intra-repository markdown links and Go package documentation.
//
// Markdown: every relative link target must exist on disk, and every
// fragment must match a heading in the target document. External
// (http/https/mailto) links are ignored — CI must not depend on the
// network.
//
// Go package docs (with -godoc DIR): the root package and every package
// under DIR/internal and DIR/cmd must have a doc.go whose package
// comment exists and starts with "Package <name>" (library packages) or
// "Command <name>" (main packages), the godoc conventions.
//
// Usage:
//
//	docscheck README.md DESIGN.md EXPERIMENTS.md
//	docscheck -godoc . $(git ls-files '*.md')
//	docscheck            # checks every *.md in the current directory
//
// Exits non-zero listing each problem as FILE:LINE: message (markdown)
// or DIR: message (package docs).
package main

// Go package-doc enforcement: every package in the repository's
// library/command tree must carry a doc.go whose package comment follows
// the godoc conventions, so `go doc` always has something to say and the
// package index reads as a map of the system.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// checkGoDocs walks the root package plus root/internal and root/cmd and
// returns one problem line per violation, plus the number of packages
// checked. A package (a directory with non-test .go files) violates when
// it has no doc.go, when doc.go has no package comment, or when the
// comment does not start with "Package <name>" ("Command <name>" for
// main packages).
func checkGoDocs(root string) ([]string, int) {
	var dirs []string
	if hasGoFiles(root) {
		dirs = append(dirs, root)
	}
	for _, sub := range []string{"internal", "cmd"} {
		filepath.WalkDir(filepath.Join(root, sub), func(path string, d os.DirEntry, err error) error {
			if err != nil || !d.IsDir() {
				return nil
			}
			if d.Name() == "testdata" {
				// Fixture packages (e.g. the analysistest trees under
				// internal/analysis) are invisible to the go tool and
				// exempt from the doc.go convention.
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				dirs = append(dirs, path)
			}
			return nil
		})
	}
	sort.Strings(dirs)

	var problems []string
	for _, dir := range dirs {
		if msg := checkPackageDoc(dir); msg != "" {
			problems = append(problems, fmt.Sprintf("%s: %s", dir, msg))
		}
	}
	return problems, len(dirs)
}

// hasGoFiles reports whether dir directly contains non-test Go files.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// checkPackageDoc validates dir's doc.go package comment.
func checkPackageDoc(dir string) string {
	path := filepath.Join(dir, "doc.go")
	if _, err := os.Stat(path); err != nil {
		return "missing doc.go (every package documents itself in a doc.go)"
	}
	f, err := parser.ParseFile(token.NewFileSet(), path, nil, parser.ParseComments)
	if err != nil {
		return fmt.Sprintf("doc.go does not parse: %v", err)
	}
	if f.Doc == nil || strings.TrimSpace(f.Doc.Text()) == "" {
		return "doc.go has no package comment"
	}
	want := "Package " + f.Name.Name
	if f.Name.Name == "main" {
		want = "Command " + filepath.Base(dir)
	}
	if text := f.Doc.Text(); !strings.HasPrefix(text, want+" ") && !strings.HasPrefix(text, want+"\n") {
		return fmt.Sprintf("package comment must start with %q (godoc convention), starts %q",
			want, firstWords(f.Doc.Text(), 4))
	}
	return ""
}

func firstWords(s string, n int) string {
	words := strings.Fields(s)
	if len(words) > n {
		words = words[:n]
	}
	return strings.Join(words, " ")
}

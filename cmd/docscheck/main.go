// Markdown link checking and the CLI entry point; the Go package-doc
// check lives in godoc.go and the command is documented in doc.go.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links [text](target); images share the
// syntax with a leading "!", which the pattern also accepts.
var linkRe = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// headingRe matches ATX headings.
var headingRe = regexp.MustCompile(`^#{1,6}\s+(.*?)\s*#*\s*$`)

func main() {
	godoc := flag.String("godoc", "", "also enforce Go package docs: every package under DIR, DIR/internal and DIR/cmd needs a doc.go with a conventional package comment")
	flag.Parse()
	files := flag.Args()
	if len(files) == 0 && *godoc == "" {
		var err error
		files, err = filepath.Glob("*.md")
		if err != nil || len(files) == 0 {
			fmt.Fprintln(os.Stderr, "docscheck: no markdown files found")
			os.Exit(2)
		}
	}

	bad := 0
	for _, f := range files {
		for _, problem := range checkFile(f) {
			fmt.Println(problem)
			bad++
		}
	}
	checkedPkgs := 0
	if *godoc != "" {
		problems, n := checkGoDocs(*godoc)
		checkedPkgs = n
		for _, problem := range problems {
			fmt.Println(problem)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d problem(s)\n", bad)
		os.Exit(1)
	}
	fmt.Printf("docscheck: %d file(s), %d package(s) clean\n", len(files), checkedPkgs)
}

func checkFile(path string) []string {
	data, err := os.ReadFile(path)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", path, err)}
	}
	var problems []string
	dir := filepath.Dir(path)
	inFence := false
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, match := range linkRe.FindAllStringSubmatch(line, -1) {
			target := match[1]
			if msg := checkLink(dir, path, target); msg != "" {
				problems = append(problems, fmt.Sprintf("%s:%d: %s", path, lineNo, msg))
			}
		}
	}
	return problems
}

// checkLink validates one link target relative to the source document.
func checkLink(dir, src, target string) string {
	if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
		return "" // external: not checked
	}
	file, frag, _ := strings.Cut(target, "#")
	resolved := src
	if file != "" {
		resolved = filepath.Join(dir, file)
		info, err := os.Stat(resolved)
		if err != nil {
			return fmt.Sprintf("dead link %q: %s does not exist", target, resolved)
		}
		if info.IsDir() || frag == "" {
			return ""
		}
	}
	if frag == "" {
		return ""
	}
	if !strings.HasSuffix(strings.ToLower(resolved), ".md") {
		return "" // fragments only verifiable in markdown
	}
	anchors, err := headingAnchors(resolved)
	if err != nil {
		return fmt.Sprintf("dead link %q: %v", target, err)
	}
	if !anchors[strings.ToLower(frag)] {
		return fmt.Sprintf("dead anchor %q: no heading #%s in %s", target, frag, resolved)
	}
	return ""
}

// headingAnchors collects the GitHub-style anchor slugs of a document's
// headings: lowercase, punctuation stripped, spaces to hyphens.
func headingAnchors(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	anchors := map[string]bool{}
	inFence := false
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		m := headingRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		anchors[slugify(m[1])] = true
	}
	return anchors, nil
}

func slugify(heading string) string {
	// Strip inline code/link markup, then slug.
	heading = regexp.MustCompile("`([^`]*)`").ReplaceAllString(heading, "$1")
	heading = regexp.MustCompile(`\[([^\]]*)\]\([^)]*\)`).ReplaceAllString(heading, "$1")
	var b strings.Builder
	for _, r := range strings.ToLower(heading) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '_':
			b.WriteRune(r) // GitHub keeps underscores in anchors
		case r == ' ' || r == '-':
			b.WriteRune('-')
		}
	}
	return b.String()
}

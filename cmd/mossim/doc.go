// Command mossim is a script-driven switch-level logic simulator (the
// MOSSIM-II-equivalent component of this library).
//
// Usage:
//
//	mossim -net circuit.sim -script sim.txt
//
// Script commands, one per line:
//
//	set NAME=VALUE ...    assign inputs and settle
//	show NAME ...         print node states
//	watch NAME ...        print these nodes after every set
//	reset                 reinitialize the circuit
//	| comment
//
// With -vcd FILE, every settled input setting is sampled into a Value
// Change Dump viewable in GTKWave and similar tools.
package main

// Entry point; the command is documented in doc.go.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"fmossim/internal/logic"
	"fmossim/internal/netlist"
	"fmossim/internal/switchsim"
	"fmossim/internal/trace"
)

func main() {
	netPath := flag.String("net", "", "netlist file (required)")
	scriptPath := flag.String("script", "", "script file (default: stdin)")
	vcdPath := flag.String("vcd", "", "dump a VCD waveform of every node here")
	flag.Parse()
	if *netPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	nf, err := os.Open(*netPath)
	if err != nil {
		fatal(err)
	}
	nw, err := netlist.Read(nf)
	nf.Close()
	if err != nil {
		fatal(err)
	}
	fmt.Println("loaded:", nw.Stats())

	in := os.Stdin
	if *scriptPath != "" {
		in, err = os.Open(*scriptPath)
		if err != nil {
			fatal(err)
		}
		defer in.Close()
	}

	sim := switchsim.NewSimulator(nw)
	if *vcdPath != "" {
		vf, err := os.Create(*vcdPath)
		if err != nil {
			fatal(err)
		}
		rec := trace.New(vf, nw, nil)
		rec.Attach(sim)
		defer func() {
			if err := rec.Flush(); err != nil {
				fatal(err)
			}
			vf.Close()
			fmt.Println("wrote", *vcdPath)
		}()
	}
	sim.Init()
	var watch []string

	show := func(names []string) {
		parts := make([]string, 0, len(names))
		for _, n := range names {
			if nw.Lookup(n) == netlist.NoNode {
				fmt.Fprintf(os.Stderr, "unknown node %q\n", n)
				continue
			}
			parts = append(parts, fmt.Sprintf("%s=%s", n, sim.Value(n)))
		}
		fmt.Println(strings.Join(parts, " "))
	}

	sc := bufio.NewScanner(in)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "|") || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "set":
			pairs := map[string]logic.Value{}
			for _, tok := range fields[1:] {
				eq := strings.IndexByte(tok, '=')
				if eq < 0 {
					fmt.Fprintf(os.Stderr, "%d: expected name=value, got %q\n", lineNo, tok)
					continue
				}
				v, err := logic.ParseValue(tok[eq+1:])
				if err != nil {
					fmt.Fprintf(os.Stderr, "%d: %v\n", lineNo, err)
					continue
				}
				pairs[tok[:eq]] = v
			}
			if _, err := sim.Set(pairs); err != nil {
				fmt.Fprintf(os.Stderr, "%d: %v\n", lineNo, err)
			}
			if len(watch) > 0 {
				show(watch)
			}
		case "show":
			show(fields[1:])
		case "watch":
			watch = append([]string(nil), fields[1:]...)
		case "reset":
			sim.Init()
		default:
			fmt.Fprintf(os.Stderr, "%d: unknown command %q\n", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mossim:", err)
	os.Exit(1)
}

// Entry point; the command is documented in doc.go.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"fmossim/internal/fault"
	"fmossim/internal/netlist"
)

func main() {
	netPath := flag.String("net", "", "netlist file (required)")
	classes := flag.String("classes", "node", "comma-separated fault classes: node, trans")
	sample := flag.Int("sample", 0, "random sample size (0 = the whole universe)")
	seed := flag.Int64("seed", 1, "sampling seed")
	flag.Parse()
	if *netPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*netPath)
	if err != nil {
		fatal(err)
	}
	nw, err := netlist.Read(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	var fs []fault.Fault
	for _, cl := range strings.Split(*classes, ",") {
		switch strings.TrimSpace(cl) {
		case "node":
			fs = append(fs, fault.NodeStuckFaults(nw, fault.Options{})...)
		case "trans":
			fs = append(fs, fault.TransistorStuckFaults(nw, fault.Options{})...)
		default:
			fatal(fmt.Errorf("unknown fault class %q", cl))
		}
	}
	if *sample > 0 {
		fs = fault.Sample(fs, *sample, rand.New(rand.NewSource(*seed)))
	}
	if err := fault.WriteList(os.Stdout, nw, fs); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "faultgen: %d faults\n", len(fs))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "faultgen:", err)
	os.Exit(1)
}

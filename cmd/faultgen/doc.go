// Command faultgen enumerates fault universes from a netlist and writes
// them as fault-list files for cmd/fmossim.
//
// Usage:
//
//	faultgen -net circuit.sim -classes node,trans -sample 100 -seed 1 > faults.txt
package main

// Entry point; the command is documented in doc.go.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"fmossim/internal/campaign"
	"fmossim/internal/core"
	"fmossim/internal/fault"
	"fmossim/internal/netlist"
	"fmossim/internal/switchsim"
)

func main() {
	netPath := flag.String("net", "", "netlist file (required)")
	faultPath := flag.String("faults", "", "fault list file (default: all storage-node stuck-at faults)")
	patPath := flag.String("patterns", "", "pattern script (required)")
	observe := flag.String("observe", "", "comma-separated observed output nodes (required)")
	verbose := flag.Bool("v", false, "print every detection")
	noDrop := flag.Bool("nodrop", false, "keep simulating detected faults")
	batch := flag.Int("batch", 0, "campaign mode: faults per batch (0 with -shards: split evenly)")
	shards := flag.Int("shards", 0, "campaign mode: concurrent batches (0: GOMAXPROCS)")
	coverageTarget := flag.Float64("coverage-target", 0, "campaign mode: stop once this coverage fraction is reached")
	checkpoint := flag.String("checkpoint", "", "campaign mode: resumable checkpoint file")
	trim := flag.Bool("trim", false, "redundancy trimming: collapse equivalent fault classes and memoize vicinity outcomes (results are byte-identical)")
	trimProbation := flag.Int("trim-probation", 0, "class-collapse probation window in settings (0: default)")
	snapshotEvery := flag.Int("snapshot-every", 0, "capture a good-state frame every N settings so interrupted batches resume mid-sequence (campaign mode with -checkpoint)")
	flag.Parse()

	if *netPath == "" || *patPath == "" || *observe == "" {
		flag.Usage()
		os.Exit(2)
	}

	nw := readNet(*netPath)
	var outs []netlist.NodeID
	for _, name := range strings.Split(*observe, ",") {
		id := nw.Lookup(strings.TrimSpace(name))
		if id == netlist.NoNode {
			fatal(fmt.Errorf("unknown observed node %q", name))
		}
		outs = append(outs, id)
	}

	var faults []fault.Fault
	if *faultPath == "" {
		faults = fault.NodeStuckFaults(nw, fault.Options{})
	} else {
		f, err := os.Open(*faultPath)
		if err != nil {
			fatal(err)
		}
		faults, err = fault.ReadList(f, nw)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}

	seq := readPatterns(*patPath, nw)

	opts := core.Options{
		Observe:       outs,
		Trim:          *trim,
		TrimProbation: *trimProbation,
		SnapshotEvery: *snapshotEvery,
	}
	if *noDrop {
		opts.Drop = core.NeverDrop
	}

	detected := func(int) (core.Detection, bool) { return core.Detection{}, false }
	if *batch > 0 || *shards > 0 || *coverageTarget > 0 || *checkpoint != "" {
		// Interrupting a campaign cancels it cooperatively; completed
		// batches stay in the checkpoint (if any) for the next resume.
		ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer cancel()
		res, err := campaign.Run(ctx, nw, faults, seq, campaign.Options{
			Sim:            opts,
			BatchSize:      *batch,
			Shards:         *shards,
			CoverageTarget: *coverageTarget,
			CheckpointPath: *checkpoint,
		})
		if err != nil {
			fatal(err)
		}
		res.Run.Summary(os.Stdout)
		fmt.Printf("  campaign: %d batches (%d run, %d resumed, %d skipped)\n",
			res.Batches, res.BatchesRun, res.BatchesResumed, res.BatchesSkipped)
		detected = res.Detected
	} else {
		sim, err := core.New(nw, faults, opts)
		if err != nil {
			fatal(err)
		}
		res := sim.Run(seq)
		res.Summary(os.Stdout)
		detected = sim.Detected
	}

	if *verbose {
		for i := range faults {
			if d, ok := detected(i); ok {
				fmt.Printf("  detected %-40s pattern %4d setting %d: %s vs good %s at %s\n",
					faults[i].Describe(nw), d.Pattern, d.Setting, d.Faulty, d.Good, nw.Name(d.Output))
			} else {
				fmt.Printf("  UNDETECTED %s\n", faults[i].Describe(nw))
			}
		}
	}
}

func readNet(path string) *netlist.Network {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	nw, err := netlist.Read(f)
	if err != nil {
		fatal(err)
	}
	for _, issue := range netlist.Lint(nw) {
		fmt.Fprintln(os.Stderr, "lint:", issue)
	}
	return nw
}

// readPatterns parses the pattern script (format: switchsim.ParseSequence).
func readPatterns(path string, nw *netlist.Network) *switchsim.Sequence {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	seq, err := switchsim.ParseSequence(f, path, nw)
	if err != nil {
		fatal(err)
	}
	return seq
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fmossim:", err)
	os.Exit(1)
}

// Command fmossim runs a concurrent switch-level fault simulation: it
// reads a netlist, a fault list, and a pattern script, simulates all
// faults concurrently against the good circuit, and reports coverage.
//
// Usage:
//
//	fmossim -net circuit.sim -faults faults.txt -patterns test.pat -observe out
//
// The pattern script is line-oriented: each non-empty, non-comment line is
// one input setting "name=value name=value ...", and a line "pattern
// [NAME]" starts a new pattern (clock cycle). Outputs are observed after
// every setting.
//
// Fault-list and netlist formats are documented in internal/fault and
// internal/netlist. With -faults omitted, all storage-node stuck-at
// faults are simulated.
//
// Large fault universes can run as a sharded campaign: -batch N splits
// the fault list into batches of N faults, -shards N replays that many
// batches concurrently against a once-recorded good-circuit trajectory,
// -coverage-target F stops early once the detected fraction reaches F,
// and -checkpoint FILE makes the campaign resumable (completed batches
// are reloaded instead of re-simulated). Campaign results are
// bit-identical to the monolithic run.
//
// -trim enables redundancy trimming: materialization-equivalent fault
// classes collapse onto one representative lane after a probation window
// (-trim-probation N overrides it), and worker solvers memoize
// read-verified vicinity outcomes. Results stay byte-identical; only
// executed work shrinks. -snapshot-every N captures a good-state frame
// every N settings so a checkpointed campaign interrupted mid-batch
// resumes from the last frame instead of replaying the batch's prefix.
package main

// Command benchtab regenerates the tables and figures of the paper's
// evaluation section. For each figure it runs the corresponding experiment
// on the generated RAM circuits, writes the per-point series as CSV, and
// prints a summary comparing the measured shape metrics with the paper's
// published numbers.
//
// Usage:
//
//	benchtab -fig 1           # Figure 1: RAM64, sequence 1 curves -> fig1.csv
//	benchtab -fig 2           # Figure 2: RAM64, sequence 2 curves -> fig2.csv
//	benchtab -fig 3           # Figure 3: RAM256 fault sweep       -> fig3.csv
//	benchtab -fig scaling     # RAM64 vs RAM256 scaling factors
//	benchtab -fig faultclass  # §5: fault-class comparison
//	benchtab -fig ablation    # design-choice ablations
//	benchtab -fig all         # everything
//	benchtab -out DIR         # where CSV files go (default .)
//	benchtab -quick           # smaller instances for fig 3 / scaling
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"fmossim/internal/bench"
	"fmossim/internal/march"
	"fmossim/internal/ram"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 1, 2, 3, scaling, faultclass, ablation, all")
	out := flag.String("out", ".", "output directory for CSV files")
	quick := flag.Bool("quick", false, "use smaller circuit instances (fast smoke runs)")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	all := *fig == "all"

	if all || *fig == "1" {
		fmt.Println("== Figure 1: RAM64, test sequence 1 ==")
		r, err := bench.Fig1()
		if err != nil {
			fatal(err)
		}
		writeCSV(filepath.Join(*out, "fig1.csv"), func(f *os.File) error {
			return bench.WriteCurveCSV(f, r)
		})
		r.Summarize(os.Stdout, bench.PaperFig1)
		fmt.Println()
	}
	if all || *fig == "2" {
		fmt.Println("== Figure 2: RAM64, test sequence 2 ==")
		r, err := bench.Fig2()
		if err != nil {
			fatal(err)
		}
		writeCSV(filepath.Join(*out, "fig2.csv"), func(f *os.File) error {
			return bench.WriteCurveCSV(f, r)
		})
		r.Summarize(os.Stdout, bench.PaperFig2)
		fmt.Println()
	}
	if all || *fig == "3" {
		fmt.Println("== Figure 3: fault-sample sweep ==")
		cfg := bench.Fig3Config{Seed: 1}
		if *quick {
			cfg.Rows, cfg.Cols = 8, 8
		}
		r, err := bench.Fig3(cfg)
		if err != nil {
			fatal(err)
		}
		writeCSV(filepath.Join(*out, "fig3.csv"), func(f *os.File) error {
			return bench.WriteFig3CSV(f, r)
		})
		r.Summarize(os.Stdout)
		fmt.Println()
	}
	if all || *fig == "scaling" {
		fmt.Println("== Scaling: RAM64 vs RAM256 ==")
		r, err := bench.Scaling(*quick)
		if err != nil {
			fatal(err)
		}
		r.Summarize(os.Stdout)
		fmt.Println()
	}
	if all || *fig == "faultclass" {
		fmt.Println("== §5 validation: fault classes (RAM64, sequence 1) ==")
		rows, err := bench.FaultClasses(ram.RAM64(), 30, 7)
		if err != nil {
			fatal(err)
		}
		bench.WriteFaultClasses(os.Stdout, rows)
		fmt.Println()
	}
	if all || *fig == "ablation" {
		fmt.Println("== Ablations (RAM64 unless noted) ==")
		m := ram.RAM64()
		faults := bench.NodeStuckOnly(m)
		seq := march.Sequence1(m)
		if r, err := bench.AblationDropping(m, faults, seq); err == nil {
			r.Summarize(os.Stdout)
		} else {
			fatal(err)
		}
		if r, err := bench.AblationTrajectoryAdoption(m, faults, seq); err == nil {
			r.Summarize(os.Stdout)
		} else {
			fatal(err)
		}
		small := ram.New(ram.Config{Rows: 4, Cols: 4})
		if r, err := bench.AblationDynamicLocality(small, bench.NodeStuckOnly(small), march.Sequence1(small)); err == nil {
			fmt.Print("  (4×4 instance) ")
			r.Summarize(os.Stdout)
		} else {
			fatal(err)
		}
		fmt.Println()
	}
}

func writeCSV(path string, write func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := write(f); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchtab:", err)
	os.Exit(1)
}

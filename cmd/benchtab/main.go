// Entry point; the command is documented in doc.go.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"fmossim/internal/bench"
	"fmossim/internal/march"
	"fmossim/internal/ram"
)

// report is the schema of BENCH_results.json.
type report struct {
	// Figures maps a figure name to its headline metrics.
	Figures map[string]map[string]float64 `json:"figures"`
	// WallNS maps a figure name to its wall-clock run time.
	WallNS map[string]int64 `json:"wall_ns"`
	GOOS   string           `json:"goos"`
	GOARCH string           `json:"goarch"`
	NumCPU int              `json:"num_cpu"`
}

func newReport() *report {
	return &report{
		Figures: map[string]map[string]float64{},
		WallNS:  map[string]int64{},
		GOOS:    runtime.GOOS,
		GOARCH:  runtime.GOARCH,
		NumCPU:  runtime.NumCPU(),
	}
}

func (r *report) add(fig string, start time.Time, metrics map[string]float64) {
	r.Figures[fig] = metrics
	r.WallNS[fig] = time.Since(start).Nanoseconds()
}

// allocCounter snapshots the process-wide cumulative allocation count
// (runtime.MemStats.Mallocs) so each figure can report the allocations its
// run performed. The count is a deterministic property of the workload up
// to minor goroutine-scheduling variance, which the comparison tolerance
// absorbs — unlike bytes-in-use, it is not perturbed by GC timing.
type allocCounter struct{ start uint64 }

func startAllocs() allocCounter {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return allocCounter{start: ms.Mallocs}
}

func (a allocCounter) delta() float64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.Mallocs - a.start)
}

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 1, 2, 3, scaling, faultclass, ablation, all")
	out := flag.String("out", ".", "output directory for CSV files")
	quick := flag.Bool("quick", false, "use smaller circuit instances (fast smoke runs)")
	jsonOut := flag.Bool("json", false, "also write BENCH_results.json to the output directory")
	compare := flag.String("compare", "", "previous BENCH_results.json to compare against; exit non-zero on >20% work-unit or allocation-count regression (wall times informational)")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	all := *fig == "all"
	rep := newReport()

	if all || *fig == "1" {
		fmt.Println("== Figure 1: RAM64, test sequence 1 ==")
		t0 := time.Now()
		ac := startAllocs()
		r, err := bench.Fig1()
		if err != nil {
			fatal(err)
		}
		rep.add("fig1", t0, map[string]float64{
			"allocs":         ac.delta(),
			"conc_vs_good":   r.ConcVsGood,
			"serial_vs_conc": r.SerialVsConc,
			"head_fraction":  r.HeadWorkFraction,
			"tail_slowdown":  r.TailSlowdown,
			"coverage":       float64(r.Detected) / float64(max(r.Faults, 1)),
			"conc_work":      float64(r.ConcurrentWork),
			"conc_ns":        float64(r.ConcurrentNS),
		})
		writeCSV(filepath.Join(*out, "fig1.csv"), func(f *os.File) error {
			return bench.WriteCurveCSV(f, r)
		})
		r.Summarize(os.Stdout, bench.PaperFig1)
		fmt.Println()
	}
	if all || *fig == "2" {
		fmt.Println("== Figure 2: RAM64, test sequence 2 ==")
		t0 := time.Now()
		ac := startAllocs()
		r, err := bench.Fig2()
		if err != nil {
			fatal(err)
		}
		rep.add("fig2", t0, map[string]float64{
			"allocs":         ac.delta(),
			"conc_vs_good":   r.ConcVsGood,
			"serial_vs_conc": r.SerialVsConc,
			"coverage":       float64(r.Detected) / float64(max(r.Faults, 1)),
			"conc_work":      float64(r.ConcurrentWork),
			"conc_ns":        float64(r.ConcurrentNS),
		})
		writeCSV(filepath.Join(*out, "fig2.csv"), func(f *os.File) error {
			return bench.WriteCurveCSV(f, r)
		})
		r.Summarize(os.Stdout, bench.PaperFig2)
		fmt.Println()
	}
	if all || *fig == "3" {
		fmt.Println("== Figure 3: fault-sample sweep ==")
		cfg := bench.Fig3Config{Seed: 1}
		if *quick {
			cfg.Rows, cfg.Cols = 8, 8
		}
		t0 := time.Now()
		ac := startAllocs()
		r, err := bench.Fig3(cfg)
		if err != nil {
			fatal(err)
		}
		rep.add("fig3", t0, map[string]float64{
			"allocs":               ac.delta(),
			"conc_r2":              r.ConcFit.R2,
			"serial_r2":            r.SerialFit.R2,
			"serial_vs_conc_slope": r.SerialVsConcSlope,
		})
		writeCSV(filepath.Join(*out, "fig3.csv"), func(f *os.File) error {
			return bench.WriteFig3CSV(f, r)
		})
		r.Summarize(os.Stdout)
		fmt.Println()
	}
	if all || *fig == "scaling" {
		fmt.Println("== Scaling: RAM64 vs RAM256 ==")
		t0 := time.Now()
		ac := startAllocs()
		r, err := bench.Scaling(*quick)
		if err != nil {
			fatal(err)
		}
		rep.add("scaling", t0, map[string]float64{
			"allocs":        ac.delta(),
			"good_factor":   r.GoodFactor,
			"conc_factor":   r.ConcFactor,
			"serial_factor": r.SerialFactor,
			"good_work":     float64(r.Large.GoodWork),
			"conc_work":     float64(r.Large.ConcurrentWork),
		})
		r.Summarize(os.Stdout)
		fmt.Println()
	}
	if all || *fig == "faultclass" {
		fmt.Println("== §5 validation: fault classes (RAM64, sequence 1) ==")
		rows, err := bench.FaultClasses(ram.RAM64(), 30, 7)
		if err != nil {
			fatal(err)
		}
		bench.WriteFaultClasses(os.Stdout, rows)
		fmt.Println()
	}
	if all || *fig == "ablation" {
		fmt.Println("== Ablations (RAM64 unless noted) ==")
		m := ram.RAM64()
		faults := bench.NodeStuckOnly(m)
		seq := march.Sequence1(m)
		if r, err := bench.AblationDropping(m, faults, seq); err == nil {
			r.Summarize(os.Stdout)
		} else {
			fatal(err)
		}
		if r, err := bench.AblationTrajectoryAdoption(m, faults, seq); err == nil {
			r.Summarize(os.Stdout)
		} else {
			fatal(err)
		}
		small := ram.New(ram.Config{Rows: 4, Cols: 4})
		if r, err := bench.AblationDynamicLocality(small, bench.NodeStuckOnly(small), march.Sequence1(small)); err == nil {
			fmt.Print("  (4×4 instance) ")
			r.Summarize(os.Stdout)
		} else {
			fatal(err)
		}
		fmt.Println()
	}

	if *jsonOut {
		path := filepath.Join(*out, "BENCH_results.json")
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}

	if *compare != "" {
		if !compareReports(rep, *compare, regressionTolerance) {
			os.Exit(1)
		}
	}
}

// regressionTolerance is the accepted growth factor on deterministic
// cost metrics (work units, allocation counts) before a figure counts as
// regressed.
const regressionTolerance = 1.20

// compareReports checks this run against a previous report, printing a
// per-figure verdict. The gate runs on the deterministic cost metrics:
// the "*_work" keys (solver work units are bit-identical for a given
// engine, so a >20% growth is a real cost regression, never runner noise)
// and the "allocs" key (the figure's allocation count — a property of the
// workload up to minor scheduling variance, so a >20% growth means an
// allocation path leaked into the hot loop); wall-clock times are printed
// for context only, since CI baselines may come from a different physical
// runner. Figures present in only one report are noted but do not fail.
func compareReports(rep *report, oldPath string, tolerance float64) bool {
	buf, err := os.ReadFile(oldPath)
	if err != nil {
		fatal(err)
	}
	old := &report{}
	if err := json.Unmarshal(buf, old); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", oldPath, err))
	}
	fmt.Printf("== Comparison against %s (tolerance %.0f%% on work units and allocs) ==\n", oldPath, 100*(tolerance-1))
	ok := true
	compared := 0
	for fig, metrics := range rep.Figures {
		oldMetrics := old.Figures[fig]
		if newNS, oldNS := rep.WallNS[fig], old.WallNS[fig]; oldNS > 0 {
			fmt.Printf("  %-10s wall %.3fs vs %.3fs (%.2fx, informational)\n",
				fig, float64(newNS)/1e9, float64(oldNS)/1e9, float64(newNS)/float64(oldNS))
		}
		for key, newVal := range metrics {
			if !strings.HasSuffix(key, "_work") && key != "allocs" {
				continue
			}
			oldVal, present := oldMetrics[key]
			if !present || oldVal <= 0 {
				fmt.Printf("  %-10s %-22s %.0f (no baseline)\n", fig, key, newVal)
				continue
			}
			compared++
			ratio := newVal / oldVal
			verdict := "ok"
			if ratio > tolerance {
				verdict = "REGRESSED"
				ok = false
			}
			fmt.Printf("  %-10s %-22s %.0f vs %.0f (%.2fx) %s\n", fig, key, newVal, oldVal, ratio, verdict)
		}
	}
	if compared == 0 {
		fmt.Println("  no common work metrics to compare")
	}
	if !ok {
		fmt.Printf("FAIL: work-unit regression beyond %.0f%%\n", 100*(tolerance-1))
	}
	return ok
}

func writeCSV(path string, write func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := write(f); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchtab:", err)
	os.Exit(1)
}

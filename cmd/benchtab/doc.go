// Command benchtab regenerates the tables and figures of the paper's
// evaluation section. For each figure it runs the corresponding experiment
// on the generated RAM circuits, writes the per-point series as CSV, and
// prints a summary comparing the measured shape metrics with the paper's
// published numbers.
//
// Usage:
//
//	benchtab -fig 1           # Figure 1: RAM64, sequence 1 curves -> fig1.csv
//	benchtab -fig 2           # Figure 2: RAM64, sequence 2 curves -> fig2.csv
//	benchtab -fig 3           # Figure 3: RAM256 fault sweep       -> fig3.csv
//	benchtab -fig scaling     # RAM64 vs RAM256 scaling factors
//	benchtab -fig faultclass  # §5: fault-class comparison
//	benchtab -fig ablation    # design-choice ablations
//	benchtab -fig all         # everything
//	benchtab -out DIR         # where CSV files go (default .)
//	benchtab -quick           # smaller instances for fig 3 / scaling
//	benchtab -json            # also write machine-readable BENCH_results.json
//	benchtab -compare old.json# fail (exit 1) on >20% work-unit or alloc regression
//
// The JSON report carries each figure's headline metrics plus wall-clock
// run times, so the performance trajectory can be tracked across commits
// by CI without parsing human-oriented output. With -compare, the fresh
// results are checked against a previous BENCH_results.json: any
// deterministic cost metric — the "*_work" solver work units, or the
// "allocs" allocation count of the figure's run — that grew by more than
// 20% fails the run with a non-zero exit (wall times are printed for
// context but never gate, since CI baselines may come from a different
// physical runner).
package main

// The fmossimvet multichecker entry point; the command is documented in
// doc.go.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"fmossim/internal/analysis"
)

func main() {
	var (
		jsonOut = flag.Bool("json", false, "emit diagnostics as a JSON array on stdout (for benchtab-style tooling)")
		list    = flag.Bool("list", false, "list the analyzers and exit")
		dir     = flag.String("C", ".", "module directory to analyze in")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: fmossimvet [-json] [-C dir] packages...\n\nChecks the fmossim determinism contract; exits 1 on any diagnostic.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.Load(*dir, patterns...)
	if err != nil {
		fatal(err)
	}
	diags, err := analysis.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fatal(err)
	}
	relativize(diags, *dir)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "fmossimvet: %d diagnostic(s) in %d package(s) checked\n", len(diags), len(pkgs))
		}
		os.Exit(1)
	}
	if !*jsonOut {
		fmt.Printf("fmossimvet: %d package(s) clean\n", len(pkgs))
	}
}

// relativize rewrites absolute file positions relative to dir when
// possible, keeping output stable across checkouts.
func relativize(diags []analysis.Diagnostic, dir string) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return
	}
	for i := range diags {
		if rel, err := filepath.Rel(abs, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = rel
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fmossimvet:", err)
	os.Exit(2)
}

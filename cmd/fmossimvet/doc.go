// Command fmossimvet runs the project's determinism-contract analyzers
// (internal/analysis) over Go packages and exits non-zero on any
// diagnostic: a vet-style hard gate for the bit-identical merge
// guarantee of ARCHITECTURE.md.
//
// Usage:
//
//	fmossimvet [-json] [-C dir] [packages...]
//
// With no package arguments it checks ./... of the target module. The
// suite (see `fmossimvet -list`):
//
//	mapiter     no raw map iteration in result-affecting packages
//	walltime    no clock/randomness reads in the deterministic engine
//	ctxsettle   per-setting replay loops must poll cancellation
//	planecanon  no raw LanePlanes plane writes outside switchsim
//	mergeorder  merge-feeding functions keep ascending fault-id order
//
// plus the annotation facility, which rejects reason-less
// //fmossim:nondeterminism-ok markers and reports stale (unused) ones.
//
// -json emits the diagnostics as a JSON array of
// {analyzer, file, line, col, message} objects on stdout — the exit
// status still reflects the diagnostic count — so tooling (benchtab-style
// dashboards, CI summarizers) can consume findings without scraping text
// output.
//
// Exit status: 0 clean, 1 diagnostics reported, 2 operational failure
// (load or type-check error).
package main

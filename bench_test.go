// Benchmarks regenerating the paper's evaluation, one per table/figure.
// Each benchmark iteration performs the complete experiment, so ns/op is
// the experiment's wall-clock cost; the reported custom metrics carry the
// figures' headline numbers (ratios, slopes, scaling factors). Use
// cmd/benchtab for the full CSV series behind each figure.
package fmossim_test

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"fmossim/internal/bench"
	"fmossim/internal/campaign"
	"fmossim/internal/core"
	"fmossim/internal/logic"
	"fmossim/internal/march"
	"fmossim/internal/netlist"
	"fmossim/internal/ram"
	"fmossim/internal/serial"
	"fmossim/internal/switchsim"
)

// BenchmarkTable1_TransistorStateFunction covers Table 1: the transistor
// state function (gate state × type → conduction state) at the core of
// every vicinity exploration.
func BenchmarkTable1_TransistorStateFunction(b *testing.B) {
	types := []logic.TransistorType{logic.NType, logic.PType, logic.DType}
	vals := []logic.Value{logic.Lo, logic.Hi, logic.X}
	var sink logic.Value
	for i := 0; i < b.N; i++ {
		sink = logic.SwitchState(types[i%3], vals[(i/3)%3])
	}
	_ = sink
}

// BenchmarkFig1_RAM64_Seq1 reproduces Figure 1: RAM64 under test sequence
// 1 (407 patterns) with the full storage-node stuck-at universe,
// concurrent simulation with fault dropping.
func BenchmarkFig1_RAM64_Seq1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Fig1()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.ConcVsGood, "conc/good")
		b.ReportMetric(r.SerialVsConc, "serial/conc")
		b.ReportMetric(r.HeadWorkFraction, "head-frac")
		b.ReportMetric(r.TailSlowdown, "tail-slowdown")
		b.ReportMetric(100*float64(r.Detected)/float64(r.Faults), "coverage-%")
	}
}

// BenchmarkFig2_RAM64_Seq2 reproduces Figure 2: the same fault set under
// test sequence 2 (row/column marches omitted), showing the
// detection-rate dependence of concurrent simulation time.
func BenchmarkFig2_RAM64_Seq2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Fig2()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.ConcVsGood, "conc/good")
		b.ReportMetric(r.SerialVsConc, "serial/conc")
	}
}

// BenchmarkFig3_FaultSweep reproduces Figure 3's structure: average cost
// per pattern versus the number of randomly sampled faults, linear for
// both concurrent and serial simulation. The benchmark uses an 8×8 RAM
// sweep to stay fast; cmd/benchtab -fig 3 runs the full RAM256 sweep.
func BenchmarkFig3_FaultSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Fig3(bench.Fig3Config{Rows: 8, Cols: 8, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.ConcFit.R2, "conc-R2")
		b.ReportMetric(r.SerialFit.R2, "serial-R2")
		b.ReportMetric(r.SerialVsConcSlope, "serial/conc-slope")
	}
}

// BenchmarkScaling reproduces the paper's size-scaling comparison: good
// and concurrent times scale together, serial much faster, as circuit
// size grows with fault count proportional to it. Quick instances (4×4 vs
// 8×8) keep iterations fast; cmd/benchtab -fig scaling runs RAM64/RAM256.
func BenchmarkScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Scaling(true)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.GoodFactor, "good-factor")
		b.ReportMetric(r.ConcFactor, "conc-factor")
		b.ReportMetric(r.SerialFactor, "serial-factor")
	}
}

// BenchmarkParallelScaling pins the parallel fault-circuit engine's
// speedup and allocation profile: RAM64 and RAM256 under sequence 1 with
// the stuck-at universe, at worker counts 1, 2, 4, and NumCPU. Results
// are bit-identical across worker counts (asserted by reporting detected
// coverage); ns/op shows the scaling, allocs/op the steady-state
// allocation behavior of the undo-log materialization path.
func BenchmarkParallelScaling(b *testing.B) {
	sizes := []struct {
		name       string
		rows, cols int
		patterns   int
	}{
		{"RAM64", 8, 8, 0},     // full sequence
		{"RAM256", 16, 16, 60}, // truncated: keeps the smoke run fast
	}
	workerCounts := []int{1, 2, 4, runtime.NumCPU()}
	for _, sz := range sizes {
		m := ram.New(ram.Config{Rows: sz.rows, Cols: sz.cols})
		faults := bench.NodeStuckOnly(m)
		seq := march.Sequence1(m)
		if sz.patterns > 0 && len(seq.Patterns) > sz.patterns {
			seq.Patterns = seq.Patterns[:sz.patterns]
		}
		for _, w := range workerCounts {
			b.Run(fmt.Sprintf("%s/workers=%d", sz.name, w), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					sim, err := core.New(m.Net, faults, core.Options{
						Observe: []netlist.NodeID{m.DataOut},
						Workers: w,
					})
					if err != nil {
						b.Fatal(err)
					}
					res := sim.Run(seq)
					b.ReportMetric(100*float64(res.Detected)/float64(len(faults)), "coverage-%")
				}
			})
		}
	}
}

// BenchmarkCampaign_RAM256 pins the sharded campaign path: RAM256
// (sequence 1 truncated to keep smoke runs fast) with the stuck-at
// universe, replaying a trajectory recorded once outside the timed loop —
// so ns/op is pure fault-side replay, with zero good-circuit solver work.
// allocs/op and B/op are the acceptance metric for the batch memory
// model: per-fault bookkeeping is the sparse divergence store only, and
// the dense per-node scratch is pooled per batch worker, so bytes scale
// with batch width (batches × workers × nodes), not with the size of the
// fault universe. Compare the one-batch and 64-wide sub-benchmarks: the
// narrow batches run the same fault count through a fraction of the
// resident state.
func BenchmarkCampaign_RAM256(b *testing.B) {
	m := ram.New(ram.Config{Rows: 16, Cols: 16})
	faults := bench.NodeStuckOnly(m)
	seq := march.Sequence1(m)
	if len(seq.Patterns) > 60 {
		seq.Patterns = seq.Patterns[:60]
	}
	rec := core.Record(m.Net, seq, core.Options{})
	for _, cfg := range []struct {
		name      string
		batchSize int
	}{
		{"one-batch", len(faults)},
		{"batch=64", 64},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := campaign.Run(context.Background(), m.Net, faults, seq, campaign.Options{
					Sim:       core.Options{Observe: []netlist.NodeID{m.DataOut}, Workers: 1},
					BatchSize: cfg.batchSize,
					Shards:    2,
					Recording: rec,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(100*res.Coverage(), "coverage-%")
				b.ReportMetric(float64(res.Batches), "batches")
			}
		})
	}
}

// BenchmarkBatchStep_Lanes pins the word-packed lane engine's stepping
// cost as a function of lane packing density: RAM64 under sequence 1 with
// the stuck-at universe, replayed through core.RunBatch at 1, 8, and 64
// faults per lane word. Results are bit-identical at every width (the
// merge-determinism contract, asserted by TestBatchLaneWidthInvariance);
// ns/op shows what the packing itself buys — wider words share one
// ReplayIndex probe row and one interest-mask row across more fault
// circuits — and allocs/op tracks the per-width cost of the packed index.
func BenchmarkBatchStep_Lanes(b *testing.B) {
	m := ram.RAM64()
	faults := bench.NodeStuckOnly(m)
	seq := march.Sequence1(m)
	rec := core.Record(m.Net, seq, core.Options{})
	tab := switchsim.NewTables(m.Net)
	for _, lw := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("lanes=%d", lw), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				br, err := core.RunBatch(context.Background(), tab, faults, rec, seq, core.Options{
					Observe:   []netlist.NodeID{m.DataOut},
					Workers:   1,
					LaneWidth: lw,
				})
				if err != nil {
					b.Fatal(err)
				}
				detected := 0
				for _, d := range br.Detected {
					if d {
						detected++
					}
				}
				b.ReportMetric(100*float64(detected)/float64(len(faults)), "coverage-%")
			}
		})
	}
}

// BenchmarkGoodCircuit_RAM64 measures the baseline every ratio is
// computed against: the good circuit alone over sequence 1.
func BenchmarkGoodCircuit_RAM64(b *testing.B) {
	m := ram.RAM64()
	seq := march.Sequence1(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := serial.Run(m.Net, nil, seq, serial.Options{Observe: []netlist.NodeID{m.DataOut}})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.GoodWork), "work-units")
	}
}

// BenchmarkAblation_FaultDropping measures the paper's fault-dropping
// design choice: without dropping, detected circuits keep consuming time.
func BenchmarkAblation_FaultDropping(b *testing.B) {
	m := ram.New(ram.Config{Rows: 4, Cols: 4})
	faults := bench.NodeStuckOnly(m)
	seq := march.Sequence1(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := bench.AblationDropping(m, faults, seq)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.PenaltyFactor, "no-drop-penalty")
	}
}

// BenchmarkAblation_DynamicLocality measures the dynamic-locality design
// choice ([9] in the paper): with static DC partitioning, every
// perturbation solves a huge vicinity.
func BenchmarkAblation_DynamicLocality(b *testing.B) {
	m := ram.New(ram.Config{Rows: 4, Cols: 4})
	faults := bench.NodeStuckOnly(m)[:20]
	seq := march.Sequence1(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := bench.AblationDynamicLocality(m, faults, seq)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.PenaltyFactor, "static-penalty")
	}
}

// BenchmarkSolver_SettleRAM64Pattern measures the raw kernel: one full
// clock cycle of the good RAM64 circuit.
func BenchmarkSolver_SettleRAM64Pattern(b *testing.B) {
	m := ram.RAM64()
	sim := switchsim.NewSimulator(m.Net)
	sim.Init()
	w := m.Write(0, logic.Hi)
	r := m.Read(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.RunPattern(&w)
		sim.RunPattern(&r)
	}
}

// Public facade: type aliases and constructors over the internal
// packages. Package documentation lives in doc.go.
package fmossim

import (
	"context"
	"io"

	"fmossim/internal/campaign"
	"fmossim/internal/core"
	"fmossim/internal/distrib"
	"fmossim/internal/fault"
	"fmossim/internal/logic"
	"fmossim/internal/netlist"
	"fmossim/internal/ram"
	"fmossim/internal/serial"
	"fmossim/internal/server"
	"fmossim/internal/switchsim"
	"fmossim/internal/trace"
)

// Ternary logic values.
type Value = logic.Value

// Logic value constants.
const (
	Lo = logic.Lo
	Hi = logic.Hi
	X  = logic.X
)

// TransistorType is one of the three switch types (n/p/d).
type TransistorType = logic.TransistorType

// Transistor types.
const (
	NType = logic.NType
	PType = logic.PType
	DType = logic.DType
)

// Scale declares how many node sizes and transistor strengths a network
// uses.
type Scale = logic.Scale

// Network construction.
type (
	// Network is a switch-level network of nodes and transistors.
	Network = netlist.Network
	// Builder constructs networks with power-rail conventions.
	Builder = netlist.Builder
	// NodeID identifies a node; TransID a transistor.
	NodeID  = netlist.NodeID
	TransID = netlist.TransID
)

// NewNetwork returns an empty network with the given scale.
func NewNetwork(scale Scale) *Network { return netlist.New(scale) }

// NewBuilder returns a construction helper with Vdd/Gnd declared.
func NewBuilder(scale Scale) *Builder { return netlist.NewBuilder(scale) }

// Logic simulation.
type (
	// LogicSimulator is the switch-level logic simulator (MOSSIM-II
	// equivalent): one circuit stepped through input settings.
	LogicSimulator = switchsim.Simulator
	// Setting is one simultaneous input assignment; Pattern a named group
	// of settings (one clock cycle); Sequence an ordered test sequence.
	Setting  = switchsim.Setting
	Pattern  = switchsim.Pattern
	Sequence = switchsim.Sequence
)

// NewLogicSimulator builds a logic simulator over a finalized network.
func NewLogicSimulator(nw *Network) *LogicSimulator {
	return switchsim.NewSimulator(nw)
}

// Vector builds a Setting from node-name/value pairs.
func Vector(nw *Network, pairs map[string]Value) (Setting, error) {
	return switchsim.Vector(nw, pairs)
}

// Fault modeling.
type (
	// Fault is one fault instance; FaultKind its class.
	Fault     = fault.Fault
	FaultKind = fault.Kind
	// FaultOptions configures enumeration.
	FaultOptions = fault.Options
)

// Fault kinds.
const (
	NodeStuck0       = fault.NodeStuck0
	NodeStuck1       = fault.NodeStuck1
	NodeStuckX       = fault.NodeStuckX
	TransStuckOpen   = fault.TransStuckOpen
	TransStuckClosed = fault.TransStuckClosed
	Bridge           = fault.Bridge
	Open             = fault.Open
)

// NodeStuckFaults enumerates stuck-at-0/1 faults on every storage node.
func NodeStuckFaults(nw *Network, opt FaultOptions) []Fault {
	return fault.NodeStuckFaults(nw, opt)
}

// TransistorStuckFaults enumerates stuck-open/closed faults on every real
// transistor.
func TransistorStuckFaults(nw *Network, opt FaultOptions) []Fault {
	return fault.TransistorStuckFaults(nw, opt)
}

// Concurrent fault simulation (the FMOSSIM algorithm).
type (
	// FaultSimulator is the concurrent fault simulator.
	FaultSimulator = core.Simulator
	// FaultSimOptions configures it; FaultSimResult is a run's outcome.
	FaultSimOptions = core.Options
	FaultSimResult  = core.Result
	// Detection describes one fault's first detection.
	Detection = core.Detection
	// DropPolicy selects when detected circuits are dropped.
	DropPolicy = core.DropPolicy
)

// Drop policies.
const (
	DropAnyDifference = core.DropAnyDifference
	DropHardOnly      = core.DropHardOnly
	NeverDrop         = core.NeverDrop
)

// NewFaultSimulator builds a concurrent fault simulator: the good circuit
// is initialized and every fault inserted (present from power-on) before
// the first pattern.
func NewFaultSimulator(nw *Network, faults []Fault, opts FaultSimOptions) (*FaultSimulator, error) {
	return core.New(nw, faults, opts)
}

// Batched fault campaigns (trajectory-decoupled execution).
type (
	// Recording is the good circuit's captured trajectory: record once
	// with RecordTrajectory (or serialize with Encode/DecodeRecording),
	// replay with any number of fault batches.
	Recording = switchsim.Recording
	// CampaignOptions configures a sharded campaign; CampaignResult is
	// its merged outcome.
	CampaignOptions = campaign.Options
	CampaignResult  = campaign.Result
	// CampaignCheckpoint is the resumable state of a partially completed
	// campaign.
	CampaignCheckpoint = campaign.Checkpoint
	// CampaignProgress is one streaming progress event (see
	// CampaignOptions.Progress): per-setting coverage, live-fault counts,
	// and detection events, emitted concurrently from the shard pool.
	CampaignProgress = campaign.ProgressEvent
)

// RecordTrajectory simulates only the good circuit through seq and
// captures its trajectory — per-setting changed sets, input deltas, the
// initialization settle, and the adoption trajectories — as a reusable
// Recording. Campaigns replaying it never re-run the good-circuit solver.
func RecordTrajectory(nw *Network, seq *Sequence, opts FaultSimOptions) *Recording {
	return core.Record(nw, seq, opts)
}

// DecodeRecording reads a Recording previously serialized with Encode.
func DecodeRecording(r io.Reader) (*Recording, error) {
	return switchsim.DecodeRecording(r)
}

// Campaign runs a sharded fault campaign: the good trajectory is recorded
// (or taken from opts.Recording), the fault universe is partitioned into
// batches, and the batches replay concurrently with per-batch pooled
// memory. Results are bit-identical to a monolithic FaultSimulator run
// for every batch size, shard count, and worker count.
func Campaign(nw *Network, faults []Fault, seq *Sequence, opts CampaignOptions) (*CampaignResult, error) {
	return campaign.Run(context.Background(), nw, faults, seq, opts)
}

// CampaignContext is Campaign with cooperative cancellation: cancelling
// ctx stops in-flight batches between input settings and returns ctx's
// error. Long-running services (cmd/fmossimd) use this form to cancel and
// time-bound jobs.
func CampaignContext(ctx context.Context, nw *Network, faults []Fault, seq *Sequence, opts CampaignOptions) (*CampaignResult, error) {
	return campaign.Run(ctx, nw, faults, seq, opts)
}

// Distributed fault campaigns (many fmossimd workers, one merged result).
type (
	// JobSpec describes a campaign workload to the fmossimd job server —
	// and, handed to DistributedCampaign, the workload a coordinator fans
	// out across a worker pool.
	JobSpec = server.JobSpec
	// DistribOptions configures the distributed coordinator: the worker
	// pool, per-worker in-flight bound, shard size, retry budget, and the
	// merged progress callback.
	DistribOptions = distrib.Options
)

// DistributedCampaign spreads one fault campaign across a pool of
// fmossimd workers: the good trajectory is recorded (or taken from
// opts.Recording) and uploaded to each worker once by content
// fingerprint, the fault universe is partitioned into shard jobs
// dispatched over the workers' HTTP job API with retry/requeue on worker
// failure, and the per-shard batch results merge at setting granularity
// into a result bit-identical to Campaign on one machine with the same
// batch size. spec.CoverageTarget stops the campaign early cluster-wide;
// cancelling ctx cancels every outstanding worker job.
func DistributedCampaign(ctx context.Context, spec JobSpec, opts DistribOptions) (*CampaignResult, error) {
	return distrib.Run(ctx, spec, opts)
}

// Serial reference simulation.
type (
	// SerialOptions configures the serial baseline; SerialResult is its
	// outcome.
	SerialOptions = serial.Options
	SerialResult  = serial.Result
)

// RunSerial simulates every fault in its own full circuit copy: the
// baseline concurrent simulation is compared against.
func RunSerial(nw *Network, faults []Fault, seq *Sequence, opts SerialOptions) (*SerialResult, error) {
	return serial.Run(nw, faults, seq, opts)
}

// Benchmark circuits.
type (
	// RAM is a generated 3T-cell dynamic RAM (the paper's evaluation
	// substrate); RAMConfig sizes it.
	RAM       = ram.RAM
	RAMConfig = ram.Config
)

// NewRAM generates a dynamic RAM instance.
func NewRAM(cfg RAMConfig) *RAM { return ram.New(cfg) }

// RAM64 generates the paper's 8×8 instance; RAM256 the 16×16 one.
func RAM64() *RAM  { return ram.RAM64() }
func RAM256() *RAM { return ram.RAM256() }

// Waveform tracing.

// TraceRecorder captures watched node values and writes IEEE 1364 VCD.
type TraceRecorder = trace.Recorder

// NewTraceRecorder returns a VCD recorder over w watching the given nodes
// (all nodes when empty); attach it to a LogicSimulator with Attach.
func NewTraceRecorder(w io.Writer, nw *Network, nodes []NodeID) *TraceRecorder {
	return trace.New(w, nw, nodes)
}

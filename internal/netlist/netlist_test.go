package netlist_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"fmossim/internal/logic"
	"fmossim/internal/netlist"
	"fmossim/internal/testnet"
)

func small(t *testing.T) *netlist.Network {
	t.Helper()
	nw := netlist.New(logic.Scale{Sizes: 2, Strengths: 2})
	if _, err := nw.AddInput("Vdd", logic.Hi); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.AddInput("Gnd", logic.Lo); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.AddInput("a", logic.Lo); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.AddStorage("out", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.AddTransistor(logic.DType, 1, nw.MustLookup("out"), nw.MustLookup("Vdd"), nw.MustLookup("out"), "load"); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.AddTransistor(logic.NType, 2, nw.MustLookup("a"), nw.MustLookup("out"), nw.MustLookup("Gnd"), "pd"); err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestBasicConstruction(t *testing.T) {
	nw := small(t)
	if err := nw.Finalize(); err != nil {
		t.Fatal(err)
	}
	if nw.NumNodes() != 4 || nw.NumTransistors() != 2 {
		t.Errorf("got %d nodes %d transistors", nw.NumNodes(), nw.NumTransistors())
	}
	if nw.NumStorageNodes() != 1 {
		t.Errorf("got %d storage nodes, want 1", nw.NumStorageNodes())
	}
	st := nw.Stats()
	if st.InputNodes != 3 || st.StorageNodes != 1 || st.ByType[logic.NType] != 1 || st.ByType[logic.DType] != 1 {
		t.Errorf("bad stats: %+v", st)
	}
	if !strings.Contains(st.String(), "4 nodes") {
		t.Errorf("stats string: %s", st)
	}
}

func TestDuplicateNameRejected(t *testing.T) {
	nw := netlist.New(logic.DefaultScale)
	if _, err := nw.AddInput("a", logic.Lo); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.AddStorage("a", 1); err == nil {
		t.Error("duplicate name should be rejected")
	}
}

func TestValidationErrors(t *testing.T) {
	nw := netlist.New(logic.Scale{Sizes: 1, Strengths: 1})
	a, _ := nw.AddInput("a", logic.Lo)
	b, _ := nw.AddStorage("b", 1)
	if _, err := nw.AddStorage("big", 2); err == nil {
		t.Error("size out of scale should be rejected")
	}
	if _, err := nw.AddTransistor(logic.NType, 2, a, a, b, ""); err == nil {
		t.Error("strength out of scale should be rejected")
	}
	if _, err := nw.AddTransistor(logic.NType, 1, a, b, b, ""); err == nil {
		t.Error("source==drain should be rejected")
	}
	if _, err := nw.AddTransistor(logic.NType, 1, 99, a, b, ""); err == nil {
		t.Error("unknown node should be rejected")
	}
	if _, err := nw.AddInput("x", logic.Value(9)); err == nil {
		t.Error("invalid init value should be rejected")
	}
}

func TestAddAfterFinalizeRejected(t *testing.T) {
	nw := small(t)
	if err := nw.Finalize(); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.AddStorage("late", 1); err == nil {
		t.Error("AddStorage after Finalize should fail")
	}
	if _, err := nw.AddTransistor(logic.NType, 1, 0, 1, 2, ""); err == nil {
		t.Error("AddTransistor after Finalize should fail")
	}
	// Finalize is idempotent.
	if err := nw.Finalize(); err != nil {
		t.Errorf("second Finalize: %v", err)
	}
}

func TestAdjacency(t *testing.T) {
	nw := small(t)
	if err := nw.Finalize(); err != nil {
		t.Fatal(err)
	}
	out := nw.MustLookup("out")
	a := nw.MustLookup("a")
	if got := len(nw.Channel(out)); got != 2 {
		t.Errorf("out channel degree = %d, want 2", got)
	}
	if got := len(nw.GatedBy(a)); got != 1 {
		t.Errorf("a gates %d transistors, want 1", got)
	}
	if got := len(nw.GatedBy(out)); got != 1 { // the depletion load's gate
		t.Errorf("out gates %d transistors, want 1", got)
	}
	tr := nw.Transistor(nw.GatedBy(a)[0])
	if tr.Other(nw.MustLookup("Gnd")) != out || tr.Other(out) != nw.MustLookup("Gnd") {
		t.Error("Other() should flip between channel terminals")
	}
}

func TestLookup(t *testing.T) {
	nw := small(t)
	if nw.Lookup("nope") != netlist.NoNode {
		t.Error("Lookup of unknown name should return NoNode")
	}
	if nw.Name(nw.MustLookup("a")) != "a" {
		t.Error("Name/MustLookup roundtrip failed")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustLookup of unknown name should panic")
		}
	}()
	nw.MustLookup("nope")
}

func TestInputsAndStorageLists(t *testing.T) {
	nw := small(t)
	if err := nw.Finalize(); err != nil {
		t.Fatal(err)
	}
	if got := len(nw.Inputs()); got != 3 {
		t.Errorf("Inputs() = %d, want 3", got)
	}
	if got := len(nw.StorageNodes()); got != 1 {
		t.Errorf("StorageNodes() = %d, want 1", got)
	}
	names := nw.NodeNames()
	if len(names) != 4 || names[0] != "Gnd" {
		t.Errorf("NodeNames() = %v", names)
	}
}

func TestBuilderConveniences(t *testing.T) {
	b := netlist.NewBuilder(logic.Scale{Sizes: 2, Strengths: 2})
	n := b.Node("n")
	if b.NodeOr("n") != n {
		t.Error("NodeOr should return the existing node")
	}
	m := b.NodeOr("m")
	if b.Net.Lookup("m") != m {
		t.Error("NodeOr should create missing nodes")
	}
	if b.TieHi() != b.TieHi() || b.TieLo() != b.TieLo() {
		t.Error("Tie nodes should be shared singletons")
	}
	f1, f2 := b.Fresh("tmp"), b.Fresh("tmp")
	if f1 != f2 {
		// Fresh doesn't reserve, so identical until the name is used.
		t.Errorf("Fresh without creation should be stable: %s vs %s", f1, f2)
	}
	b.Node(f1)
	if b.Fresh("tmp") == f1 {
		t.Error("Fresh should skip used names")
	}
	brk := b.Breakable(n, m, "wire")
	tr := b.Net.Transistor(brk)
	if tr.Gate != b.TieHi() || tr.Strength != 2 {
		t.Error("Breakable should be a strongest-class transistor gated by TieHi")
	}
	shrt := b.BridgeCandidate(n, m, "short")
	tr = b.Net.Transistor(shrt)
	if tr.Gate != b.TieLo() || tr.Strength != 2 {
		t.Error("BridgeCandidate should be a strongest-class transistor gated by TieLo")
	}
	b.Finalize()
}

func TestFormatRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10; i++ {
		c := testnet.Structured(rng)
		var buf bytes.Buffer
		if err := netlist.Write(&buf, c.Net); err != nil {
			t.Fatal(err)
		}
		got, err := netlist.Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-read failed: %v\n%s", err, buf.String())
		}
		if got.NumNodes() != c.Net.NumNodes() || got.NumTransistors() != c.Net.NumTransistors() {
			t.Fatalf("round trip size mismatch: %v vs %v", got.Stats(), c.Net.Stats())
		}
		// Spot-check structural identity: same names, same per-node degrees.
		for n := 0; n < got.NumNodes(); n++ {
			id := netlist.NodeID(n)
			name := got.Name(id)
			orig := c.Net.MustLookup(name)
			if len(got.Channel(id)) != len(c.Net.Channel(orig)) {
				t.Errorf("node %s channel degree differs after round trip", name)
			}
			if got.Node(id).Kind != c.Net.Node(orig).Kind {
				t.Errorf("node %s kind differs after round trip", name)
			}
		}
	}
}

func TestReadFormat(t *testing.T) {
	src := `| comment line
scale 2 3
input clk 0
input d X
node store
node bus 2
n clk d store 3
d store Vdd store 1
# another comment
n store bus Gnd 2
`
	nw, err := netlist.Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if nw.Scale.Sizes != 2 || nw.Scale.Strengths != 3 {
		t.Errorf("scale = %+v", nw.Scale)
	}
	// Vdd/Gnd implicitly declared as inputs.
	for _, rail := range []string{"Vdd", "Gnd"} {
		id := nw.Lookup(rail)
		if id == netlist.NoNode || nw.Node(id).Kind != netlist.Input {
			t.Errorf("%s should be an implicit input", rail)
		}
	}
	if nw.Node(nw.MustLookup("bus")).Size != 2 {
		t.Error("bus size should be 2")
	}
	if nw.NumTransistors() != 3 {
		t.Errorf("got %d transistors", nw.NumTransistors())
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"unknown decl":        "frobnicate a b\n",
		"bad scale arity":     "scale 2\n",
		"bad scale values":    "scale x y\n",
		"scale after decl":    "node a\nscale 2 2\n",
		"bad input value":     "input a 7\n",
		"bad node size":       "node a q\n",
		"bad trans arity":     "n a b\n",
		"bad strength":        "n a b c q\n",
		"strength too big":    "scale 1 1\nn a b c 9\n",
		"duplicate node":      "node a\nnode a\n",
		"source equals drain": "n g a a\n",
		"empty":               "",
		"only comments":       "| nothing\n",
	}
	for name, src := range cases {
		if _, err := netlist.Read(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected parse error for %q", name, src)
		}
	}
}

func TestLint(t *testing.T) {
	b := netlist.NewBuilder(logic.Scale{Sizes: 1, Strengths: 1})
	in := b.Input("in", logic.Lo)
	out := b.Node("out")
	b.N(in, out, b.Gnd, "pd")
	b.Node("floating")
	gateOnly := b.Node("gateonly")
	other := b.Node("other")
	b.N(gateOnly, other, b.Gnd, "go")
	b.N(b.Vdd, out, b.Gnd, "railgated")
	nw := b.Finalize()

	issues := netlist.Lint(nw)
	if netlist.HasErrors(issues) {
		t.Errorf("unexpected lint errors: %v", issues)
	}
	var text []string
	for _, is := range issues {
		text = append(text, is.String())
	}
	joined := strings.Join(text, "\n")
	for _, want := range []string{"floating", "gateonly", "power rail"} {
		if !strings.Contains(joined, want) {
			t.Errorf("lint output missing %q:\n%s", want, joined)
		}
	}
}

func TestLintBadRails(t *testing.T) {
	nw := netlist.New(logic.DefaultScale)
	if _, err := nw.AddStorage("Vdd", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.AddInput("Gnd", logic.Hi); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.AddInput("in", logic.Lo); err != nil {
		t.Fatal(err)
	}
	if err := nw.Finalize(); err != nil {
		t.Fatal(err)
	}
	issues := netlist.Lint(nw)
	if !netlist.HasErrors(issues) {
		t.Errorf("storage Vdd and Gnd=1 should be lint errors: %v", issues)
	}
}

// Package netlist represents switch-level networks: charge-storage nodes
// connected by bidirectional transistor switches, per Bryant's model.
//
// A network consists of a set of nodes and a set of transistors; no
// restrictions are placed on how they are interconnected. Each node is
// either an input node (a strong signal source whose state is not affected
// by the network: Vdd, Gnd, clocks, data inputs) or a storage node (state
// determined by network operation, holds charge when isolated). Each
// storage node has a discrete size; each transistor has a type (n/p/d), a
// discrete strength, and gate/source/drain terminals. Source and drain are
// symmetric: every transistor is bidirectional.
//
// Networks are constructed through the Add* methods and must be finalized
// with Finalize before simulation; Finalize computes terminal adjacency
// indexes and validates the design.
package netlist

package netlist_test

import (
	"fmt"

	"fmossim/internal/logic"
	"fmossim/internal/netlist"
)

// ExampleBuilder constructs a CMOS inverter — a p-type pull-up and an
// n-type pull-down sharing the gate — and finalizes it for simulation.
func ExampleBuilder() {
	b := netlist.NewBuilder(logic.Scale{Sizes: 1, Strengths: 1})
	in := b.Input("in", logic.Lo)
	out := b.Node("out")
	b.P(in, b.Vdd, out, "pullup")
	b.N(in, out, b.Gnd, "pulldown")
	nw := b.Finalize()
	fmt.Println(nw.Stats())
	fmt.Println("out is node", nw.MustLookup("out"))
	// Output:
	// 4 nodes (1 storage, 3 input), 2 transistors
	// out is node 3
}

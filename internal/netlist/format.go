package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"fmossim/internal/logic"
)

// The text netlist format is a line-oriented dialect of the Berkeley .sim
// format, extended with node-size and input declarations:
//
//	| anything          comment
//	scale K M           K node sizes, M transistor strengths (first line)
//	input NAME [0|1|X]  input node with initial state (default X)
//	node NAME [SIZE]    storage node with size class (default 1)
//	n GATE SRC DRN [S]  n-type transistor, strength class S (default M)
//	p GATE SRC DRN [S]  p-type transistor
//	d GATE SRC DRN [S]  d-type (depletion) transistor
//
// Node names are arbitrary whitespace-free strings. Transistor lines may
// reference storage nodes before declaration; such nodes are implicitly
// declared with size 1. "Vdd" and "Gnd" are implicitly inputs at 1 and 0
// if referenced but not declared.

// Read parses a network from the text format.
func Read(r io.Reader) (*Network, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)

	var nw *Network
	lineNo := 0
	fail := func(format string, args ...any) error {
		return fmt.Errorf("netlist: line %d: %s", lineNo, fmt.Sprintf(format, args...))
	}

	ensure := func() {
		if nw == nil {
			nw = New(logic.DefaultScale)
		}
	}
	// getNode resolves a name, implicitly declaring storage nodes (and the
	// power rails as inputs).
	getNode := func(name string) (NodeID, error) {
		if id := nw.Lookup(name); id != NoNode {
			return id, nil
		}
		switch name {
		case VddName, TieHiName:
			return nw.AddInput(name, logic.Hi)
		case GndName, TieLoName:
			return nw.AddInput(name, logic.Lo)
		}
		return nw.AddStorage(name, 1)
	}

	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "|") || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "scale":
			if nw != nil {
				return nil, fail("scale must be the first declaration")
			}
			if len(fields) != 3 {
				return nil, fail("scale wants 2 arguments")
			}
			k, err1 := strconv.Atoi(fields[1])
			m, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, fail("scale arguments must be integers")
			}
			nw = New(logic.Scale{Sizes: k, Strengths: m})
			if err := nw.Scale.Validate(); err != nil {
				return nil, fail("%v", err)
			}
		case "input":
			ensure()
			if len(fields) < 2 || len(fields) > 3 {
				return nil, fail("input wants NAME [0|1|X]")
			}
			init := logic.X
			if len(fields) == 3 {
				v, err := logic.ParseValue(fields[2])
				if err != nil {
					return nil, fail("%v", err)
				}
				init = v
			}
			if _, err := nw.AddInput(fields[1], init); err != nil {
				return nil, fail("%v", err)
			}
		case "node":
			ensure()
			if len(fields) < 2 || len(fields) > 3 {
				return nil, fail("node wants NAME [SIZE]")
			}
			size := 1
			if len(fields) == 3 {
				s, err := strconv.Atoi(fields[2])
				if err != nil {
					return nil, fail("node size must be an integer")
				}
				size = s
			}
			if _, err := nw.AddStorage(fields[1], size); err != nil {
				return nil, fail("%v", err)
			}
		case "n", "p", "d":
			ensure()
			if len(fields) < 4 || len(fields) > 5 {
				return nil, fail("%s wants GATE SRC DRN [STRENGTH]", fields[0])
			}
			typ, err := logic.ParseTransistorType(fields[0])
			if err != nil {
				return nil, fail("%v", err)
			}
			strength := nw.Scale.Strengths
			if typ == logic.DType {
				strength = 1 // depletion loads default to the weakest class
			}
			if len(fields) == 5 {
				s, err := strconv.Atoi(fields[4])
				if err != nil {
					return nil, fail("strength must be an integer")
				}
				strength = s
			}
			gate, err := getNode(fields[1])
			if err != nil {
				return nil, fail("%v", err)
			}
			src, err := getNode(fields[2])
			if err != nil {
				return nil, fail("%v", err)
			}
			drn, err := getNode(fields[3])
			if err != nil {
				return nil, fail("%v", err)
			}
			if _, err := nw.AddTransistor(typ, strength, gate, src, drn, ""); err != nil {
				return nil, fail("%v", err)
			}
		default:
			return nil, fail("unknown declaration %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("netlist: %w", err)
	}
	if nw == nil {
		return nil, fmt.Errorf("netlist: empty input")
	}
	if err := nw.Finalize(); err != nil {
		return nil, err
	}
	return nw, nil
}

// Write emits the network in the text format accepted by Read.
func Write(w io.Writer, nw *Network) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "| switch-level netlist: %s\n", nw.Stats())
	fmt.Fprintf(bw, "scale %d %d\n", nw.Scale.Sizes, nw.Scale.Strengths)
	for i := 0; i < nw.NumNodes(); i++ {
		n := nw.Node(NodeID(i))
		switch n.Kind {
		case Input:
			fmt.Fprintf(bw, "input %s %s\n", n.Name, n.Init)
		case Storage:
			if n.Size != 1 {
				fmt.Fprintf(bw, "node %s %d\n", n.Name, n.Size)
			} else {
				fmt.Fprintf(bw, "node %s\n", n.Name)
			}
		}
	}
	for i := 0; i < nw.NumTransistors(); i++ {
		t := nw.Transistor(TransID(i))
		fmt.Fprintf(bw, "%s %s %s %s %d\n",
			t.Type, nw.Name(t.Gate), nw.Name(t.Source), nw.Name(t.Drain), t.Strength)
	}
	return bw.Flush()
}

// Core network representation: nodes, transistors, and the finalized
// terminal-adjacency indexes. Package documentation lives in doc.go.
package netlist

import (
	"fmt"
	"sort"

	"fmossim/internal/logic"
)

// NodeID identifies a node within a Network. IDs are dense indexes,
// assigned in creation order.
type NodeID int32

// TransID identifies a transistor within a Network.
type TransID int32

// NoNode is the invalid node id.
const NoNode NodeID = -1

// NoTrans is the invalid transistor id.
const NoTrans TransID = -1

// NodeKind distinguishes input nodes from storage nodes.
type NodeKind uint8

const (
	// Storage nodes take their state from the operation of the network
	// and hold charge when isolated.
	Storage NodeKind = iota
	// Input nodes provide a strong signal (strength ω) to the network;
	// their state is set externally and never by the network.
	Input
)

// String returns "storage" or "input".
func (k NodeKind) String() string {
	if k == Input {
		return "input"
	}
	return "storage"
}

// Node is a named circuit node.
type Node struct {
	Name string
	Kind NodeKind
	// Size is the 1-based size class of a storage node (κ index). Larger
	// sizes model higher capacitance (busses). Ignored for input nodes.
	Size int
	// Init is the initial state applied by simulators at reset. Storage
	// nodes normally start at X; input nodes at their declared value.
	Init logic.Value
}

// Transistor is a bidirectional switch with gate, source and drain
// terminals. No distinction is made between source and drain.
type Transistor struct {
	Type logic.TransistorType
	// Strength is the 1-based strength class (γ index).
	Strength int
	Gate     NodeID
	Source   NodeID
	Drain    NodeID
	// Label is an optional designator (e.g. "cell[3][5].write").
	Label string
}

// Other returns the terminal of t opposite to n, which must be the source
// or the drain.
func (t *Transistor) Other(n NodeID) NodeID {
	if n == t.Source {
		return t.Drain
	}
	if n == t.Drain {
		return t.Source
	}
	panic(fmt.Sprintf("netlist: node %d is not a channel terminal of transistor", n))
}

// Network is a switch-level network. The zero value is empty and usable;
// add nodes and transistors, then call Finalize.
type Network struct {
	Scale logic.Scale

	nodes  []Node
	trans  []Transistor
	byName map[string]NodeID

	// channel[n] lists transistors whose source or drain is node n,
	// in ascending TransID order. Built by Finalize.
	channel [][]TransID
	// gates[n] lists transistors whose gate is node n. Built by Finalize.
	gates [][]TransID

	finalized bool
}

// New returns an empty network using the given strength scale.
func New(scale logic.Scale) *Network {
	return &Network{
		Scale:  scale,
		byName: make(map[string]NodeID),
	}
}

// NumNodes returns the number of nodes.
func (nw *Network) NumNodes() int { return len(nw.nodes) }

// NumTransistors returns the number of transistors.
func (nw *Network) NumTransistors() int { return len(nw.trans) }

// NumStorageNodes returns the number of storage (non-input) nodes.
func (nw *Network) NumStorageNodes() int {
	c := 0
	for i := range nw.nodes {
		if nw.nodes[i].Kind == Storage {
			c++
		}
	}
	return c
}

// Node returns the node record for id. The returned pointer is valid until
// the next Add call.
func (nw *Network) Node(id NodeID) *Node {
	return &nw.nodes[id]
}

// Transistor returns the transistor record for id.
func (nw *Network) Transistor(id TransID) *Transistor {
	return &nw.trans[id]
}

// Lookup returns the node with the given name, or NoNode.
func (nw *Network) Lookup(name string) NodeID {
	if id, ok := nw.byName[name]; ok {
		return id
	}
	return NoNode
}

// MustLookup returns the node with the given name and panics if absent.
func (nw *Network) MustLookup(name string) NodeID {
	id := nw.Lookup(name)
	if id == NoNode {
		panic(fmt.Sprintf("netlist: no node named %q", name))
	}
	return id
}

// Name returns the name of node id.
func (nw *Network) Name(id NodeID) string { return nw.nodes[id].Name }

func (nw *Network) addNode(n Node) (NodeID, error) {
	if nw.finalized {
		return NoNode, fmt.Errorf("netlist: cannot add node %q after Finalize", n.Name)
	}
	if n.Name == "" {
		return NoNode, fmt.Errorf("netlist: node name must be non-empty")
	}
	if _, dup := nw.byName[n.Name]; dup {
		return NoNode, fmt.Errorf("netlist: duplicate node name %q", n.Name)
	}
	id := NodeID(len(nw.nodes))
	nw.nodes = append(nw.nodes, n)
	nw.byName[n.Name] = id
	return id, nil
}

// AddStorage adds a storage node with the given size class (1-based).
func (nw *Network) AddStorage(name string, size int) (NodeID, error) {
	if size < 1 || size > nw.Scale.Sizes {
		return NoNode, fmt.Errorf("netlist: node %q size %d out of range [1,%d]", name, size, nw.Scale.Sizes)
	}
	return nw.addNode(Node{Name: name, Kind: Storage, Size: size, Init: logic.X})
}

// AddInput adds an input node with the given initial state.
func (nw *Network) AddInput(name string, init logic.Value) (NodeID, error) {
	if !init.Valid() {
		return NoNode, fmt.Errorf("netlist: node %q invalid init state", name)
	}
	return nw.addNode(Node{Name: name, Kind: Input, Init: init})
}

// AddTransistor adds a transistor. Strength is the 1-based strength class.
func (nw *Network) AddTransistor(typ logic.TransistorType, strength int, gate, source, drain NodeID, label string) (TransID, error) {
	if nw.finalized {
		return NoTrans, fmt.Errorf("netlist: cannot add transistor %q after Finalize", label)
	}
	if !typ.Valid() {
		return NoTrans, fmt.Errorf("netlist: transistor %q invalid type", label)
	}
	if strength < 1 || strength > nw.Scale.Strengths {
		return NoTrans, fmt.Errorf("netlist: transistor %q strength %d out of range [1,%d]", label, strength, nw.Scale.Strengths)
	}
	for _, n := range []NodeID{gate, source, drain} {
		if n < 0 || int(n) >= len(nw.nodes) {
			return NoTrans, fmt.Errorf("netlist: transistor %q references unknown node %d", label, n)
		}
	}
	if source == drain {
		return NoTrans, fmt.Errorf("netlist: transistor %q has source == drain (node %q)", label, nw.Name(source))
	}
	id := TransID(len(nw.trans))
	nw.trans = append(nw.trans, Transistor{
		Type: typ, Strength: strength, Gate: gate, Source: source, Drain: drain, Label: label,
	})
	return id, nil
}

// Finalize validates the network and builds the adjacency indexes used by
// simulators. After Finalize, the network is immutable.
func (nw *Network) Finalize() error {
	if nw.finalized {
		return nil
	}
	if err := nw.Scale.Validate(); err != nil {
		return err
	}
	if len(nw.nodes) == 0 {
		return fmt.Errorf("netlist: empty network")
	}
	nw.channel = make([][]TransID, len(nw.nodes))
	nw.gates = make([][]TransID, len(nw.nodes))
	for i := range nw.trans {
		t := &nw.trans[i]
		id := TransID(i)
		nw.channel[t.Source] = append(nw.channel[t.Source], id)
		nw.channel[t.Drain] = append(nw.channel[t.Drain], id)
		nw.gates[t.Gate] = append(nw.gates[t.Gate], id)
	}
	nw.finalized = true
	return nil
}

// Finalized reports whether Finalize has been called.
func (nw *Network) Finalized() bool { return nw.finalized }

// Channel returns the transistors whose source or drain is node n. The
// returned slice must not be modified.
func (nw *Network) Channel(n NodeID) []TransID {
	if !nw.finalized {
		panic("netlist: Channel before Finalize")
	}
	return nw.channel[n]
}

// GatedBy returns the transistors whose gate is node n. The returned slice
// must not be modified.
func (nw *Network) GatedBy(n NodeID) []TransID {
	if !nw.finalized {
		panic("netlist: GatedBy before Finalize")
	}
	return nw.gates[n]
}

// Inputs returns the ids of all input nodes in ascending order.
func (nw *Network) Inputs() []NodeID {
	var ids []NodeID
	for i := range nw.nodes {
		if nw.nodes[i].Kind == Input {
			ids = append(ids, NodeID(i))
		}
	}
	return ids
}

// StorageNodes returns the ids of all storage nodes in ascending order.
func (nw *Network) StorageNodes() []NodeID {
	var ids []NodeID
	for i := range nw.nodes {
		if nw.nodes[i].Kind == Storage {
			ids = append(ids, NodeID(i))
		}
	}
	return ids
}

// NodeNames returns all node names, sorted.
func (nw *Network) NodeNames() []string {
	names := make([]string, 0, len(nw.nodes))
	for i := range nw.nodes {
		names = append(names, nw.nodes[i].Name)
	}
	sort.Strings(names)
	return names
}

// DriveStrength returns the scale position of transistor t's strength.
func (nw *Network) DriveStrength(t TransID) logic.Strength {
	return nw.Scale.DriveStrength(nw.trans[t].Strength)
}

// ChargeStrength returns the scale position of storage node n's size, or
// ω for an input node.
func (nw *Network) ChargeStrength(n NodeID) logic.Strength {
	nd := &nw.nodes[n]
	if nd.Kind == Input {
		return nw.Scale.Input()
	}
	return nw.Scale.SizeStrength(nd.Size)
}

// Stats summarizes a network for reporting.
type Stats struct {
	Nodes        int
	StorageNodes int
	InputNodes   int
	Transistors  int
	ByType       map[logic.TransistorType]int
}

// Stats computes summary statistics.
func (nw *Network) Stats() Stats {
	s := Stats{
		Nodes:       len(nw.nodes),
		Transistors: len(nw.trans),
		ByType:      map[logic.TransistorType]int{},
	}
	for i := range nw.nodes {
		if nw.nodes[i].Kind == Input {
			s.InputNodes++
		} else {
			s.StorageNodes++
		}
	}
	for i := range nw.trans {
		s.ByType[nw.trans[i].Type]++
	}
	return s
}

// String renders the stats line, e.g. "695 nodes (679 storage, 16 input), 1148 transistors".
func (s Stats) String() string {
	return fmt.Sprintf("%d nodes (%d storage, %d input), %d transistors",
		s.Nodes, s.StorageNodes, s.InputNodes, s.Transistors)
}

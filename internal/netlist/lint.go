package netlist

import "fmt"

// Issue is a single lint finding.
type Issue struct {
	// Severity is "error" or "warning".
	Severity string
	Message  string
}

func (i Issue) String() string { return i.Severity + ": " + i.Message }

// Lint checks a finalized network for structural problems that commonly
// indicate netlist-capture mistakes. Errors make simulation results
// meaningless; warnings are usually intentional but worth a look.
func Lint(nw *Network) []Issue {
	var issues []Issue
	errf := func(format string, args ...any) {
		issues = append(issues, Issue{"error", fmt.Sprintf(format, args...)})
	}
	warnf := func(format string, args ...any) {
		issues = append(issues, Issue{"warning", fmt.Sprintf(format, args...)})
	}

	if !nw.Finalized() {
		errf("network not finalized")
		return issues
	}

	// Power rails should be inputs with the conventional states.
	for _, rail := range []struct {
		name string
		want string
	}{{VddName, "1"}, {GndName, "0"}} {
		id := nw.Lookup(rail.name)
		if id == NoNode {
			warnf("no %s node", rail.name)
			continue
		}
		n := nw.Node(id)
		if n.Kind != Input {
			errf("%s is a storage node; power rails must be inputs", rail.name)
		} else if n.Init.String() != rail.want {
			errf("%s initial state is %s, want %s", rail.name, n.Init, rail.want)
		}
	}

	for i := 0; i < nw.NumNodes(); i++ {
		id := NodeID(i)
		n := nw.Node(id)
		if n.Kind != Storage {
			continue
		}
		ch := nw.Channel(id)
		g := nw.GatedBy(id)
		if len(ch) == 0 && len(g) == 0 {
			warnf("storage node %q is not connected to anything", n.Name)
		} else if len(ch) == 0 {
			warnf("storage node %q gates transistors but has no channel connection; it will stay X forever", n.Name)
		}
	}

	// A storage node connected only by gates of other transistors but
	// driving nothing is dead weight; also flag transistors whose gate is a
	// constant rail (other than Tie conventions), which are usually
	// better expressed as d-type or removed.
	for i := 0; i < nw.NumTransistors(); i++ {
		t := nw.Transistor(TransID(i))
		gateName := nw.Name(t.Gate)
		if gateName == VddName || gateName == GndName {
			warnf("transistor %d (%s) gated by power rail %s; use TieHi/TieLo or a d-type device",
				i, t.Label, gateName)
		}
	}
	return issues
}

// HasErrors reports whether any issue has error severity.
func HasErrors(issues []Issue) bool {
	for _, is := range issues {
		if is.Severity == "error" {
			return true
		}
	}
	return false
}

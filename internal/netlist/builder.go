package netlist

import (
	"fmt"

	"fmossim/internal/logic"
)

// Well-known node names. Builders that follow these conventions get Vdd
// and Gnd handling for free from the simulators and fault tools.
const (
	VddName = "Vdd"
	GndName = "Gnd"
	// TieHiName is a constant-1 input used to gate normally-closed
	// structural transistors (breakable wires).
	TieHiName = "TieHi"
	// TieLoName is a constant-0 input used to gate normally-open fault
	// transistors (bridge/short candidates).
	TieLoName = "TieLo"
)

// Builder wraps a Network with panic-on-error construction helpers and
// power-rail conventions. Generators (gates, RAM) use Builder; errors in
// generator code are programming errors, so panicking is appropriate
// there. Hand-written or parsed netlists should use the Network API
// directly and handle errors.
type Builder struct {
	Net *Network

	Vdd NodeID
	Gnd NodeID

	tieHi NodeID
	tieLo NodeID

	// Defaults applied by convenience methods.
	DefaultSize     int // storage node size class
	DefaultStrength int // ordinary transistor strength class
}

// NewBuilder returns a builder over a fresh network with Vdd and Gnd
// already declared.
func NewBuilder(scale logic.Scale) *Builder {
	b := &Builder{
		Net:             New(scale),
		tieHi:           NoNode,
		tieLo:           NoNode,
		DefaultSize:     1,
		DefaultStrength: scale.Strengths, // strongest ordinary class by default
	}
	b.Vdd = b.Input(VddName, logic.Hi)
	b.Gnd = b.Input(GndName, logic.Lo)
	return b
}

// Input declares an input node.
func (b *Builder) Input(name string, init logic.Value) NodeID {
	id, err := b.Net.AddInput(name, init)
	if err != nil {
		panic(err)
	}
	return id
}

// Node declares a storage node of the default size.
func (b *Builder) Node(name string) NodeID {
	return b.SizedNode(name, b.DefaultSize)
}

// SizedNode declares a storage node with an explicit size class.
func (b *Builder) SizedNode(name string, size int) NodeID {
	id, err := b.Net.AddStorage(name, size)
	if err != nil {
		panic(err)
	}
	return id
}

// NodeOr returns the existing node with the given name, declaring a
// default-size storage node if absent.
func (b *Builder) NodeOr(name string) NodeID {
	if id := b.Net.Lookup(name); id != NoNode {
		return id
	}
	return b.Node(name)
}

// Trans adds a transistor of the default strength.
func (b *Builder) Trans(typ logic.TransistorType, gate, source, drain NodeID, label string) TransID {
	return b.StrengthTrans(typ, b.DefaultStrength, gate, source, drain, label)
}

// StrengthTrans adds a transistor with an explicit strength class.
func (b *Builder) StrengthTrans(typ logic.TransistorType, strength int, gate, source, drain NodeID, label string) TransID {
	id, err := b.Net.AddTransistor(typ, strength, gate, source, drain, label)
	if err != nil {
		panic(err)
	}
	return id
}

// N adds an n-type transistor of default strength.
func (b *Builder) N(gate, source, drain NodeID, label string) TransID {
	return b.Trans(logic.NType, gate, source, drain, label)
}

// P adds a p-type transistor of default strength.
func (b *Builder) P(gate, source, drain NodeID, label string) TransID {
	return b.Trans(logic.PType, gate, source, drain, label)
}

// Load adds a d-type (depletion) pull-up of strength class 1 (the weakest)
// from Vdd to node n: the standard nMOS ratioed-logic load. Its gate is
// tied to its source node, as in a real depletion load.
func (b *Builder) Load(n NodeID, label string) TransID {
	return b.StrengthTrans(logic.DType, 1, n, b.Vdd, n, label)
}

// TieHi returns the shared constant-1 input node, creating it on first use.
func (b *Builder) TieHi() NodeID {
	if b.tieHi == NoNode {
		b.tieHi = b.Input(TieHiName, logic.Hi)
	}
	return b.tieHi
}

// TieLo returns the shared constant-0 input node, creating it on first use.
func (b *Builder) TieLo() NodeID {
	if b.tieLo == NoNode {
		b.tieLo = b.Input(TieLoName, logic.Lo)
	}
	return b.tieLo
}

// Breakable joins nodes a and b with a normally-closed transistor of the
// strongest class, gated by TieHi. In the good circuit the wire conducts;
// an open-circuit fault pins the transistor open, splitting the wire. This
// is the paper's construction: "an open circuit can be represented by
// splitting a node into two parts connected by a transistor of very high
// strength where this transistor is set to 1 in the good circuit and 0 in
// the faulty circuit."
func (b *Builder) Breakable(x, y NodeID, label string) TransID {
	return b.StrengthTrans(logic.NType, b.Net.Scale.Strengths, b.TieHi(), x, y, label)
}

// BridgeCandidate joins nodes a and b with a normally-open transistor of
// the strongest class, gated by TieLo. In the good circuit the transistor
// is open (no effect); a bridging (short) fault pins it closed. This is
// the paper's construction for shorts.
func (b *Builder) BridgeCandidate(x, y NodeID, label string) TransID {
	return b.StrengthTrans(logic.NType, b.Net.Scale.Strengths, b.TieLo(), x, y, label)
}

// Finalize finalizes the underlying network, panicking on error.
func (b *Builder) Finalize() *Network {
	if err := b.Net.Finalize(); err != nil {
		panic(err)
	}
	return b.Net
}

// Fresh derives a unique label with the given prefix; used by cell
// libraries for anonymous internal nodes.
func (b *Builder) Fresh(prefix string) string {
	for i := 0; ; i++ {
		name := fmt.Sprintf("%s.%d", prefix, i)
		if b.Net.Lookup(name) == NoNode {
			return name
		}
	}
}

package switchsim_test

import (
	"fmt"

	"fmossim/internal/gates"
	"fmossim/internal/logic"
	"fmossim/internal/netlist"
	"fmossim/internal/switchsim"
)

// ExampleSimulator drives an nMOS inverter through both input values.
func ExampleSimulator() {
	b := netlist.NewBuilder(logic.Scale{Sizes: 2, Strengths: 2})
	in := b.Input("in", logic.Lo)
	out := b.Node("out")
	gates.NInv(b, in, out, "inv")
	nw := b.Finalize()

	sim := switchsim.NewSimulator(nw)
	sim.MustSet(map[string]logic.Value{"in": logic.Lo})
	fmt.Println("in=0 out =", sim.Value("out"))
	sim.MustSet(map[string]logic.Value{"in": logic.Hi})
	fmt.Println("in=1 out =", sim.Value("out"))
	// Output:
	// in=0 out = 1
	// in=1 out = 0
}

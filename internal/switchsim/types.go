// Sequence/pattern/setting types and work counters. Package
// documentation lives in doc.go.
package switchsim

import (
	"fmt"
	"sort"
	"strings"

	"fmossim/internal/logic"
	"fmossim/internal/netlist"
)

// Assignment sets one input node to a value.
type Assignment struct {
	Node  netlist.NodeID
	Value logic.Value
}

// Setting is one simultaneous assignment of input values, after which the
// network settles to a steady state. The paper's "patterns" each expand to
// a sequence of six settings that cycle the clocks.
type Setting []Assignment

// Pattern is a named group of settings: one test-pattern application,
// typically one full clock cycle.
type Pattern struct {
	Name     string
	Settings []Setting
	// Observe marks the setting indexes after which outputs should be
	// compared for fault detection. Empty means observe after every
	// setting.
	Observe []int
}

// ObserveAt reports whether outputs should be observed after setting i.
func (p *Pattern) ObserveAt(i int) bool {
	if len(p.Observe) == 0 {
		return true
	}
	for _, o := range p.Observe {
		if o == i {
			return true
		}
	}
	return false
}

// Sequence is an ordered test sequence of patterns.
type Sequence struct {
	Name     string
	Patterns []Pattern
}

// NumSettings returns the total number of input settings in the sequence.
func (s *Sequence) NumSettings() int {
	n := 0
	for i := range s.Patterns {
		n += len(s.Patterns[i].Settings)
	}
	return n
}

// Vector is a convenience constructor turning name/value pairs into a
// Setting using the network's name table.
func Vector(nw *netlist.Network, pairs map[string]logic.Value) (Setting, error) {
	names := make([]string, 0, len(pairs))
	for name := range pairs {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic order
	set := make(Setting, 0, len(pairs))
	for _, name := range names {
		id := nw.Lookup(name)
		if id == netlist.NoNode {
			return nil, fmt.Errorf("switchsim: no node named %q", name)
		}
		if nw.Node(id).Kind != netlist.Input {
			return nil, fmt.Errorf("switchsim: node %q is not an input", name)
		}
		set = append(set, Assignment{Node: id, Value: pairs[name]})
	}
	return set, nil
}

// MustVector is Vector, panicking on error; for tests and generators.
func MustVector(nw *netlist.Network, pairs map[string]logic.Value) Setting {
	s, err := Vector(nw, pairs)
	if err != nil {
		panic(err)
	}
	return s
}

// String renders a setting like "{A=1 B=0}". Node ids are shown when no
// network is available; use StringWith for names.
func (s Setting) String() string {
	parts := make([]string, len(s))
	for i, a := range s {
		parts[i] = fmt.Sprintf("n%d=%s", a.Node, a.Value)
	}
	return "{" + strings.Join(parts, " ") + "}"
}

// StringWith renders a setting with node names from the network.
func (s Setting) StringWith(nw *netlist.Network) string {
	parts := make([]string, len(s))
	for i, a := range s {
		parts[i] = fmt.Sprintf("%s=%s", nw.Name(a.Node), a.Value)
	}
	return "{" + strings.Join(parts, " ") + "}"
}

// Work counts the computational effort spent by a solver: the quantities
// that the paper's CPU-seconds figures are proxies for. Deterministic
// across runs, unlike wall-clock time, so benches report both.
type Work struct {
	// Settles is the number of steady-state computations (input settings
	// or re-settles of faulty circuits).
	Settles int64
	// Rounds is the number of unit-delay rounds across all settles.
	Rounds int64
	// Vicinities is the number of vicinity solves.
	Vicinities int64
	// NodesSolved is the total vicinity size summed over all solves: the
	// dominant cost term.
	NodesSolved int64
	// RelaxSteps counts per-node relaxation recomputations.
	RelaxSteps int64
	// AdoptedChanges counts good-trajectory changes adopted by faulty
	// replays instead of being re-solved (see Solver.SettleReplay).
	AdoptedChanges int64
	// AdoptedVics counts trajectory vicinities adopted whole by faulty
	// replays. A pure occupancy statistic: it is excluded from Units (the
	// adoption cost is already in AdoptedChanges) and exists so batch
	// stats can report the adopted/solved split per setting.
	AdoptedVics int64
}

// Add accumulates w2 into w.
func (w *Work) Add(w2 Work) {
	w.Settles += w2.Settles
	w.Rounds += w2.Rounds
	w.Vicinities += w2.Vicinities
	w.NodesSolved += w2.NodesSolved
	w.RelaxSteps += w2.RelaxSteps
	w.AdoptedChanges += w2.AdoptedChanges
	w.AdoptedVics += w2.AdoptedVics
}

// Sub returns w - w2.
func (w Work) Sub(w2 Work) Work {
	return Work{
		Settles:        w.Settles - w2.Settles,
		Rounds:         w.Rounds - w2.Rounds,
		Vicinities:     w.Vicinities - w2.Vicinities,
		NodesSolved:    w.NodesSolved - w2.NodesSolved,
		RelaxSteps:     w.RelaxSteps - w2.RelaxSteps,
		AdoptedChanges: w.AdoptedChanges - w2.AdoptedChanges,
		AdoptedVics:    w.AdoptedVics - w2.AdoptedVics,
	}
}

// Scaled returns the counters multiplied by k: the work k identical
// circuits would accumulate. Used by the trimming layer to credit
// collapsed equivalence-class members with their representative's work.
func (w Work) Scaled(k int64) Work {
	return Work{
		Settles:        w.Settles * k,
		Rounds:         w.Rounds * k,
		Vicinities:     w.Vicinities * k,
		NodesSolved:    w.NodesSolved * k,
		RelaxSteps:     w.RelaxSteps * k,
		AdoptedChanges: w.AdoptedChanges * k,
		AdoptedVics:    w.AdoptedVics * k,
	}
}

// Units returns the scalar work metric used as the deterministic stand-in
// for CPU time: relaxation steps dominate, with a per-vicinity and
// per-settle overhead term, mirroring the real cost structure. Adopted
// changes are cheap list operations and weighted accordingly.
func (w Work) Units() int64 {
	return w.RelaxSteps + 4*w.NodesSolved + 16*w.Vicinities + 32*w.Settles + w.AdoptedChanges
}

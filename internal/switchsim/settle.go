package switchsim

import (
	"fmossim/internal/logic"
	"fmossim/internal/netlist"
)

// SettleResult reports the outcome of one steady-state settling.
//
// Changed and Explored reference solver-owned scratch storage and are
// valid only until the next Settle/Step call on the same Solver; callers
// that need them longer must copy.
type SettleResult struct {
	// Rounds is the number of unit-delay rounds performed.
	Rounds int
	// Oscillated reports that the round limit was hit and oscillating
	// nodes were resolved upward to X.
	Oscillated bool
	// Changed lists storage nodes whose value changed at least once
	// during the settle, deduplicated.
	Changed []netlist.NodeID
	// Explored lists every storage node that was a member of any solved
	// vicinity during the settle (a superset of Changed).
	Explored []netlist.NodeID
}

// defaultMaxRounds bounds normal settling; a legitimate circuit settles in
// a number of rounds on the order of its sequential depth.
func (s *Solver) defaultMaxRounds() int {
	n := s.tab.Net.NumNodes()
	if n < 64 {
		return 64
	}
	return 64 + n
}

// Change records one node's new value at a given settling round.
type Change struct {
	Node  netlist.NodeID
	Value logic.Value
}

// VicTrace records one solved vicinity of a settling round: its member
// nodes and the changes it produced.
type VicTrace struct {
	Members []netlist.NodeID
	Changes []Change
}

// Trajectory is a full settling history: the solved vicinities of each
// round, in order. It is the "good circuit script" the concurrent
// simulator's faulty-circuit replays follow.
type Trajectory [][]VicTrace

// Settle drives the circuit to a steady state starting from the given
// perturbed storage nodes, per the paper's scheduling: the simulation of a
// vicinity causes nodes to change state, and activities are scheduled for
// the vicinities affected by those changes (through the gates of
// transistors). If the round limit is exceeded, the solver switches to
// oscillation mode, where node updates are joined with their old value in
// the information ordering so oscillating nodes resolve monotonically to X.
//
// When s.Record is true, the solver additionally appends the full
// per-round trajectory to s.Traj (reset at each Settle).
func (s *Solver) Settle(c *Circuit, seeds []netlist.NodeID) SettleResult {
	nw := s.tab.Net
	s.work.Settles++
	s.exploredEpoch++
	s.explored = s.explored[:0]
	s.changedEpoch++
	s.changed = s.changed[:0]

	maxRounds := s.MaxRounds
	if maxRounds <= 0 {
		maxRounds = s.defaultMaxRounds()
	}
	// In X-mode each node value moves at most once (toward X) and each
	// transistor follows, so settling is guaranteed within the hard cap.
	hardCap := maxRounds + 2*(nw.NumNodes()+nw.NumTransistors()) + 16

	var pend, next []netlist.NodeID
	s.pendEpoch++
	for _, n := range seeds {
		if c.IsInputLike(n) || s.pendStamp[n] == s.pendEpoch {
			continue
		}
		s.pendStamp[n] = s.pendEpoch
		pend = append(pend, n)
	}

	res := SettleResult{}
	var newVal []logic.Value
	xmode := false
	if s.Record {
		s.Traj = s.Traj[:0]
	}

	for len(pend) > 0 {
		res.Rounds++
		s.work.Rounds++
		if res.Rounds > maxRounds && !xmode {
			xmode = true
			res.Oscillated = true
		}
		if res.Rounds > hardCap {
			// Unreachable in practice; resolve whatever is left to X and stop.
			for _, n := range pend {
				if c.val[n] != logic.X {
					c.val[n] = logic.X
					s.noteChanged(n)
				}
			}
			break
		}

		s.epoch++ // fresh vicinity stamps for this round
		next = next[:0]
		s.pendEpoch++
		var roundTrace []VicTrace

		for _, seed := range pend {
			if !s.exploreVicinity(c, seed) {
				continue // input-like, or already solved this round
			}
			for _, u := range s.vic {
				if s.exploredStamp[u] != s.exploredEpoch {
					s.exploredStamp[u] = s.exploredEpoch
					s.explored = append(s.explored, u)
				}
			}
			if cap(newVal) < len(s.vic) {
				newVal = make([]logic.Value, len(s.vic)*2)
			}
			newVal = newVal[:len(s.vic)]
			s.solveVicinity(c, newVal)

			var vt *VicTrace
			if s.Record {
				roundTrace = append(roundTrace, VicTrace{
					Members: append([]netlist.NodeID(nil), s.vic...),
				})
				vt = &roundTrace[len(roundTrace)-1]
			}

			for i, u := range s.vic {
				nv := newVal[i]
				if xmode {
					nv = logic.Lub(c.val[u], nv)
				}
				if nv == c.val[u] {
					continue
				}
				c.val[u] = nv
				s.noteChanged(u)
				if vt != nil {
					vt.Changes = append(vt.Changes, Change{Node: u, Value: nv})
				}
				// The state change switches the transistors this node
				// gates; their channel terminals are perturbed next round.
				for _, t := range nw.GatedBy(u) {
					ns := c.transistorState(t)
					if ns == c.ts[t] {
						continue
					}
					c.ts[t] = ns
					tr := nw.Transistor(t)
					for _, w := range [2]netlist.NodeID{tr.Source, tr.Drain} {
						if c.IsInputLike(w) || s.pendStamp[w] == s.pendEpoch {
							continue
						}
						s.pendStamp[w] = s.pendEpoch
						next = append(next, w)
					}
				}
			}
		}
		if s.Record {
			s.Traj = append(s.Traj, roundTrace)
		}
		pend, next = next, pend
	}

	res.Changed = s.changed
	res.Explored = s.explored
	return res
}

func (s *Solver) noteChanged(n netlist.NodeID) {
	if s.changedStamp[n] != s.changedEpoch {
		s.changedStamp[n] = s.changedEpoch
		s.changed = append(s.changed, n)
	}
}

// ApplySetting assigns the input values of one setting and returns the
// union of the perturbed storage nodes (unsettled).
func (s *Solver) ApplySetting(c *Circuit, setting Setting) []netlist.NodeID {
	var seeds []netlist.NodeID
	for _, a := range setting {
		seeds = append(seeds, c.SetInput(a.Node, a.Value)...)
	}
	return seeds
}

// Step applies one input setting and settles the circuit.
func (s *Solver) Step(c *Circuit, setting Setting) SettleResult {
	return s.Settle(c, s.ApplySetting(c, setting))
}

// SettleAll settles the whole network: every storage node is treated as
// perturbed. Used after reset or fault injection.
func (s *Solver) SettleAll(c *Circuit) SettleResult {
	seeds := make([]netlist.NodeID, 0, s.tab.Net.NumNodes())
	for i := 0; i < s.tab.Net.NumNodes(); i++ {
		n := netlist.NodeID(i)
		if !c.IsInputLike(n) {
			seeds = append(seeds, n)
		}
	}
	return s.Settle(c, seeds)
}

// Init resets the circuit to declared initial states and settles it fully.
func (s *Solver) Init(c *Circuit) SettleResult {
	c.Reset()
	return s.SettleAll(c)
}

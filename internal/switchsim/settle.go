package switchsim

import (
	"fmossim/internal/logic"
	"fmossim/internal/netlist"
)

// SettleResult reports the outcome of one steady-state settling.
//
// Changed and Explored reference solver-owned scratch storage and are
// valid only until the next Settle/Step call on the same Solver; callers
// that need them longer must copy.
type SettleResult struct {
	// Rounds is the number of unit-delay rounds performed.
	Rounds int
	// Oscillated reports that the round limit was hit and oscillating
	// nodes were resolved upward to X.
	Oscillated bool
	// Changed lists storage nodes whose value changed at least once
	// during the settle, deduplicated.
	Changed []netlist.NodeID
	// Explored lists every storage node that was a member of any solved
	// vicinity during the settle (a superset of Changed).
	Explored []netlist.NodeID
}

// defaultMaxRounds bounds normal settling; a legitimate circuit settles in
// a number of rounds on the order of its sequential depth.
func (s *Solver) defaultMaxRounds() int {
	n := s.tab.Net.NumNodes()
	if n < 64 {
		return 64
	}
	return 64 + n
}

// Change records one node's new value at a given settling round.
type Change struct {
	Node  netlist.NodeID
	Value logic.Value
}

// VicTrace records one solved vicinity of a settling round: its member
// nodes and the changes it produced.
type VicTrace struct {
	Members []netlist.NodeID
	Changes []Change
}

// Trajectory is a full settling history: the solved vicinities of each
// round, in order. It is the "good circuit script" the concurrent
// simulator's faulty-circuit replays follow. Its storage is owned by the
// recording solver and reused: a trajectory is valid only until the next
// recording Settle on the same Solver.
type Trajectory struct {
	rounds [][]VicTrace
}

// NumRounds returns the number of recorded rounds.
func (tr *Trajectory) NumRounds() int { return len(tr.rounds) }

// Round returns the solved vicinities of round r.
func (tr *Trajectory) Round(r int) []VicTrace { return tr.rounds[r] }

func (tr *Trajectory) reset() {
	tr.rounds = tr.rounds[:0]
}

// Settle drives the circuit to a steady state starting from the given
// perturbed storage nodes, per the paper's scheduling: the simulation of a
// vicinity causes nodes to change state, and activities are scheduled for
// the vicinities affected by those changes (through the gates of
// transistors). If the round limit is exceeded, the solver switches to
// oscillation mode, where node updates are joined with their old value in
// the information ordering so oscillating nodes resolve monotonically to X.
//
// When s.Record is true, the solver additionally appends the full
// per-round trajectory to s.Traj (reset at each Settle).
func (s *Solver) Settle(c *Circuit, seeds []netlist.NodeID) SettleResult {
	nw := s.tab.Net
	s.work.Settles++
	s.exploredEpoch++
	s.explored = s.explored[:0]
	s.changedEpoch++
	s.changed = s.changed[:0]

	maxRounds := s.MaxRounds
	if maxRounds <= 0 {
		maxRounds = s.defaultMaxRounds()
	}
	// In X-mode each node value moves at most once (toward X) and each
	// transistor follows, so settling is guaranteed within the hard cap.
	hardCap := maxRounds + 2*(nw.NumNodes()+nw.NumTransistors()) + 16

	s.pend = s.pend[:0]
	s.next = s.next[:0]
	s.pendEpoch++
	for _, n := range seeds {
		if c.IsInputLike(n) || s.pendStamp[n] == s.pendEpoch {
			continue
		}
		s.pendStamp[n] = s.pendEpoch
		s.pend = append(s.pend, n)
	}

	res := SettleResult{}
	xmode := false
	if s.Record {
		s.Traj.reset()
	}

	for len(s.pend) > 0 {
		res.Rounds++
		s.work.Rounds++
		if res.Rounds > maxRounds && !xmode {
			xmode = true
			res.Oscillated = true
		}
		if res.Rounds > hardCap {
			// Unreachable in practice; resolve whatever is left to X and stop.
			for _, n := range s.pend {
				if c.val[n] != logic.X {
					c.val[n] = logic.X
					s.noteChanged(n)
				}
			}
			break
		}

		s.epoch++ // fresh vicinity stamps for this round
		s.next = s.next[:0]
		s.pendEpoch++
		var roundTrace []VicTrace
		if s.Record {
			roundTrace = s.nextRoundBuf()
		}

		for _, seed := range s.pend {
			if !s.exploreVicinity(c, seed) {
				continue // input-like, or already solved this round
			}
			for _, u := range s.vic {
				if s.exploredStamp[u] != s.exploredEpoch {
					s.exploredStamp[u] = s.exploredEpoch
					s.explored = append(s.explored, u)
				}
			}
			newVal := s.vicNewVal()
			s.solveVicinity(c, newVal)

			var vt *VicTrace
			if s.Record {
				roundTrace, vt = appendVicTrace(roundTrace)
				vt.Members = append(vt.Members, s.vic...)
			}

			for i, u := range s.vic {
				nv := newVal[i]
				if xmode {
					nv = logic.Lub(c.val[u], nv)
				}
				if nv == c.val[u] {
					continue
				}
				c.val[u] = nv
				s.noteChanged(u)
				if vt != nil {
					vt.Changes = append(vt.Changes, Change{Node: u, Value: nv})
				}
				// The state change switches the transistors this node
				// gates; their channel terminals are perturbed next round.
				s.propagate(c, u)
			}
		}
		if s.Record {
			s.storeRound(roundTrace)
		}
		s.pend, s.next = s.next, s.pend
	}

	res.Changed = s.changed
	res.Explored = s.explored
	return res
}

// propagate switches the transistors gated by changed node u and schedules
// the perturbed channel terminals into the next round's pending set.
func (s *Solver) propagate(c *Circuit, u netlist.NodeID) {
	gv := c.val[u]
	for _, e := range s.tab.GatedByOf(u) {
		ns := logic.SwitchState(e.Typ, gv)
		if p := c.pinTrans[e.T]; p != unpinned {
			ns = logic.Value(p)
		}
		if ns == c.ts[e.T] {
			continue
		}
		c.ts[e.T] = ns
		for _, w := range [2]netlist.NodeID{e.Src, e.Drn} {
			if c.IsInputLike(w) || s.pendStamp[w] == s.pendEpoch {
				continue
			}
			s.pendStamp[w] = s.pendEpoch
			s.next = append(s.next, w)
		}
	}
}

// vicNewVal returns the reusable new-value buffer sized to the current
// vicinity.
func (s *Solver) vicNewVal() []logic.Value {
	if cap(s.newVal) < len(s.vic) {
		s.newVal = make([]logic.Value, len(s.vic)*2)
	}
	s.newVal = s.newVal[:len(s.vic)]
	return s.newVal
}

// nextRoundBuf returns a length-0 round buffer, reusing the backing array
// the next trajectory slot held after a previous recording settle.
func (s *Solver) nextRoundBuf() []VicTrace {
	tr := &s.Traj
	if len(tr.rounds) < cap(tr.rounds) {
		return tr.rounds[:len(tr.rounds)+1][len(tr.rounds)][:0]
	}
	return nil
}

// storeRound appends the finished round to the trajectory.
func (s *Solver) storeRound(rt []VicTrace) {
	tr := &s.Traj
	if len(tr.rounds) < cap(tr.rounds) {
		tr.rounds = tr.rounds[:len(tr.rounds)+1]
		tr.rounds[len(tr.rounds)-1] = rt
	} else {
		tr.rounds = append(tr.rounds, rt)
	}
}

// appendVicTrace extends rt by one VicTrace, reusing the slot's previous
// Members/Changes backing arrays when possible. The returned pointer is
// valid until the next appendVicTrace call on rt.
func appendVicTrace(rt []VicTrace) ([]VicTrace, *VicTrace) {
	if len(rt) < cap(rt) {
		rt = rt[:len(rt)+1]
		vt := &rt[len(rt)-1]
		vt.Members = vt.Members[:0]
		vt.Changes = vt.Changes[:0]
		return rt, vt
	}
	rt = append(rt, VicTrace{})
	return rt, &rt[len(rt)-1]
}

func (s *Solver) noteChanged(n netlist.NodeID) {
	if s.changedStamp[n] != s.changedEpoch {
		s.changedStamp[n] = s.changedEpoch
		s.changed = append(s.changed, n)
	}
}

// ApplySetting assigns the input values of one setting and returns the
// union of the perturbed storage nodes (unsettled). The returned slice is
// solver-owned scratch, valid until the next ApplySetting on this Solver.
func (s *Solver) ApplySetting(c *Circuit, setting Setting) []netlist.NodeID {
	seeds := s.seedBuf[:0]
	for _, a := range setting {
		seeds = append(seeds, c.SetInput(a.Node, a.Value)...)
	}
	s.seedBuf = seeds
	return seeds
}

// Step applies one input setting and settles the circuit.
func (s *Solver) Step(c *Circuit, setting Setting) SettleResult {
	return s.Settle(c, s.ApplySetting(c, setting))
}

// SettleAll settles the whole network: every storage node is treated as
// perturbed. Used after reset or fault injection.
func (s *Solver) SettleAll(c *Circuit) SettleResult {
	seeds := make([]netlist.NodeID, 0, s.tab.Net.NumNodes())
	for i := 0; i < s.tab.Net.NumNodes(); i++ {
		n := netlist.NodeID(i)
		if !c.IsInputLike(n) {
			seeds = append(seeds, n)
		}
	}
	return s.Settle(c, seeds)
}

// Init resets the circuit to declared initial states and settles it fully.
func (s *Solver) Init(c *Circuit) SettleResult {
	c.Reset()
	return s.SettleAll(c)
}

package switchsim_test

import (
	"math/rand"
	"testing"

	"fmossim/internal/gates"
	"fmossim/internal/logic"
	"fmossim/internal/netlist"
	"fmossim/internal/switchsim"
	"fmossim/internal/testnet"
)

// chainNet builds a 4-stage nMOS inverter chain with input "a".
func chainNet() *netlist.Network {
	b := netlist.NewBuilder(logic.Scale{Sizes: 2, Strengths: 2})
	in := b.Input("a", logic.Lo)
	prev := in
	for i := 0; i < 4; i++ {
		out := b.Node([]string{"n0", "n1", "n2", "n3"}[i])
		gates.NInv(b, prev, out, []string{"i0", "i1", "i2", "i3"}[i])
		prev = out
	}
	return b.Finalize()
}

func TestTrajectoryRecording(t *testing.T) {
	nw := chainNet()
	tab := switchsim.NewTables(nw)
	c := switchsim.NewCircuit(tab)
	sv := switchsim.NewSolver(tab)
	sv.Record = true
	sv.Init(c)

	set := switchsim.MustVector(nw, map[string]logic.Value{"a": logic.Hi})
	res := sv.Step(c, set)

	if sv.Traj.NumRounds() != res.Rounds {
		t.Fatalf("trajectory has %d rounds, settle reported %d", sv.Traj.NumRounds(), res.Rounds)
	}
	// Every recorded change must match the circuit's evolution: the final
	// recorded value per node equals the circuit's final value, and
	// changed nodes ⊆ SettleResult.Changed.
	changed := map[netlist.NodeID]bool{}
	for _, n := range res.Changed {
		changed[n] = true
	}
	final := map[netlist.NodeID]logic.Value{}
	total := 0
	for r := 0; r < sv.Traj.NumRounds(); r++ {
		for _, vt := range sv.Traj.Round(r) {
			if len(vt.Members) == 0 {
				t.Fatal("empty vicinity recorded")
			}
			for _, ch := range vt.Changes {
				if !changed[ch.Node] {
					t.Errorf("recorded change on %s not in Changed", nw.Name(ch.Node))
				}
				final[ch.Node] = ch.Value
				total++
			}
		}
	}
	if total == 0 {
		t.Fatal("no changes recorded for a propagating wave")
	}
	for n, v := range final {
		if c.Value(n) != v {
			t.Errorf("node %s: last recorded %s, circuit has %s", nw.Name(n), v, c.Value(n))
		}
	}
	// The wave ripples one inverter per round: at least 4 rounds.
	if res.Rounds < 4 {
		t.Errorf("chain settled in %d rounds, expected ≥4", res.Rounds)
	}
}

// TestReplayPureAdoption: with no fault and nothing interesting, the
// replay must adopt the whole trajectory and finish in the good state
// without solving a single vicinity.
func TestReplayPureAdoption(t *testing.T) {
	nw := chainNet()
	tab := switchsim.NewTables(nw)
	good := switchsim.NewCircuit(tab)
	gsv := switchsim.NewSolver(tab)
	gsv.Record = true
	gsv.Init(good)

	shadow := switchsim.NewCircuit(tab)
	fsv := switchsim.NewSolver(tab)
	fsv.Init(shadow)

	set := switchsim.MustVector(nw, map[string]logic.Value{"a": logic.Hi})
	// Snapshot pre-step; step good; replay shadow against the trajectory.
	gsv.Step(good, set)

	seeds := fsv.ApplySetting(shadow, set)
	w0 := fsv.Work()
	fsv.BeginReplay()
	res := fsv.SettleReplay(shadow, seeds, &gsv.Traj)
	d := fsv.Work().Sub(w0)

	for i := 0; i < nw.NumNodes(); i++ {
		id := netlist.NodeID(i)
		if shadow.Value(id) != good.Value(id) {
			t.Errorf("node %s: replay %s vs good %s", nw.Name(id), shadow.Value(id), good.Value(id))
		}
	}
	if d.Vicinities != 0 {
		t.Errorf("pure adoption should solve 0 vicinities, solved %d", d.Vicinities)
	}
	if d.AdoptedChanges == 0 {
		t.Error("no adoption work recorded")
	}
	if res.Oscillated {
		t.Error("unexpected oscillation")
	}
}

// TestReplayBlockedVicinitySolved: flagging a mid-chain node as
// interesting forces its vicinity to be solved rather than adopted, with
// identical results (the conservative-blocking property).
func TestReplayBlockedVicinitySolved(t *testing.T) {
	nw := chainNet()
	tab := switchsim.NewTables(nw)
	good := switchsim.NewCircuit(tab)
	gsv := switchsim.NewSolver(tab)
	gsv.Record = true
	gsv.Init(good)

	shadow := switchsim.NewCircuit(tab)
	fsv := switchsim.NewSolver(tab)
	fsv.Init(shadow)

	n2 := nw.MustLookup("n2")
	set := switchsim.MustVector(nw, map[string]logic.Value{"a": logic.Hi})
	gsv.Step(good, set)

	seeds := fsv.ApplySetting(shadow, set)
	w0 := fsv.Work()
	fsv.BeginReplay()
	fsv.SeedDiverged(n2)
	fsv.SettleReplay(shadow, seeds, &gsv.Traj)
	d := fsv.Work().Sub(w0)

	if d.Vicinities == 0 {
		t.Error("blocked vicinity should be solved by the wave")
	}
	for i := 0; i < nw.NumNodes(); i++ {
		id := netlist.NodeID(i)
		if shadow.Value(id) != good.Value(id) {
			t.Errorf("node %s: replay %s vs good %s (conservative blocking must not change results)",
				nw.Name(id), shadow.Value(id), good.Value(id))
		}
	}
}

// TestReplayRandomNoFaultMatchesGood: property — replaying an identical
// circuit against the good trajectory reproduces the good state exactly,
// for random structured circuits and stimulus.
func TestReplayRandomNoFaultMatchesGood(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tc := testnet.Structured(rng)
		tab := switchsim.NewTables(tc.Net)
		good := switchsim.NewCircuit(tab)
		gsv := switchsim.NewSolver(tab)
		gsv.Record = true
		gsv.Init(good)
		shadow := switchsim.NewCircuit(tab)
		fsv := switchsim.NewSolver(tab)
		fsv.Init(shadow)

		for step := 0; step < 8; step++ {
			set := tc.RandomSetting(rng, 10)
			seeds := fsv.ApplySetting(shadow, set)
			res := gsv.Step(good, set)
			traj := &gsv.Traj
			if res.Oscillated {
				fsv.Settle(shadow, seeds)
				continue
			}
			fsv.BeginReplay()
			fsv.SettleReplay(shadow, seeds, traj)
			for i := 0; i < tc.Net.NumNodes(); i++ {
				id := netlist.NodeID(i)
				if shadow.Value(id) != good.Value(id) {
					t.Fatalf("seed %d step %d node %s: replay %s vs good %s",
						seed, step, tc.Net.Name(id), shadow.Value(id), good.Value(id))
				}
			}
		}
	}
}

package switchsim_test

import (
	"fmt"
	"testing"

	"fmossim/internal/gates"
	"fmossim/internal/logic"
	"fmossim/internal/netlist"
	"fmossim/internal/switchsim"
)

const (
	L = logic.Lo
	H = logic.Hi
	X = logic.X
)

// inv builds one inverter (nMOS or CMOS) with input "a" and output "out".
func inv(cmos bool) (*netlist.Network, *switchsim.Simulator) {
	b := netlist.NewBuilder(logic.Scale{Sizes: 2, Strengths: 2})
	a := b.Input("a", L)
	out := b.Node("out")
	if cmos {
		gates.CInv(b, a, out, "inv")
	} else {
		gates.NInv(b, a, out, "inv")
	}
	nw := b.Finalize()
	return nw, switchsim.NewSimulator(nw)
}

func TestInverterTruth(t *testing.T) {
	for _, cmos := range []bool{false, true} {
		name := "nmos"
		if cmos {
			name = "cmos"
		}
		t.Run(name, func(t *testing.T) {
			_, sim := inv(cmos)
			for _, c := range []struct{ in, want logic.Value }{
				{L, H}, {H, L}, {X, X}, {L, H}, {H, L}, // revisit states to exercise re-settling
			} {
				sim.MustSet(map[string]logic.Value{"a": c.in})
				if got := sim.Value("out"); got != c.want {
					t.Errorf("inv(%s) = %s, want %s", c.in, got, c.want)
				}
			}
		})
	}
}

// gate2 builds a two-input gate and checks its full ternary truth table.
func gate2(t *testing.T, name string, build func(b *netlist.Builder, out, a, bIn netlist.NodeID), want func(a, b logic.Value) logic.Value) {
	t.Helper()
	t.Run(name, func(t *testing.T) {
		bld := netlist.NewBuilder(logic.Scale{Sizes: 2, Strengths: 2})
		a := bld.Input("a", L)
		b2 := bld.Input("b", L)
		out := bld.Node("out")
		build(bld, out, a, b2)
		nw := bld.Finalize()
		sim := switchsim.NewSimulator(nw)
		vals := []logic.Value{L, H, X}
		for _, va := range vals {
			for _, vb := range vals {
				sim.MustSet(map[string]logic.Value{"a": va, "b": vb})
				if got, w := sim.Value("out"), want(va, vb); got != w {
					t.Errorf("%s(%s,%s) = %s, want %s", name, va, vb, got, w)
				}
			}
		}
	})
}

// Ternary gate semantics: a series/parallel switch network yields a
// definite output when the controlling path is definite; otherwise X.
func nandT(a, b logic.Value) logic.Value {
	if a == L || b == L {
		return H
	}
	if a == H && b == H {
		return L
	}
	return X
}

func norT(a, b logic.Value) logic.Value {
	if a == H || b == H {
		return L
	}
	if a == L && b == L {
		return H
	}
	return X
}

func TestGateTruthTables(t *testing.T) {
	gate2(t, "nmos-nand", func(b *netlist.Builder, out, x, y netlist.NodeID) {
		gates.NNand(b, out, "g", x, y)
	}, nandT)
	gate2(t, "cmos-nand", func(b *netlist.Builder, out, x, y netlist.NodeID) {
		gates.CNand(b, out, "g", x, y)
	}, nandT)
	gate2(t, "nmos-nor", func(b *netlist.Builder, out, x, y netlist.NodeID) {
		gates.NNor(b, out, "g", x, y)
	}, norT)
	gate2(t, "cmos-nor", func(b *netlist.Builder, out, x, y netlist.NodeID) {
		gates.CNor(b, out, "g", x, y)
	}, norT)
}

func TestThreeInputGates(t *testing.T) {
	b := netlist.NewBuilder(logic.Scale{Sizes: 2, Strengths: 2})
	a := b.Input("a", L)
	c := b.Input("c", L)
	d := b.Input("d", L)
	nand3 := b.Node("nand3")
	nor3 := b.Node("nor3")
	gates.NNand(b, nand3, "g1", a, c, d)
	gates.CNor(b, nor3, "g2", a, c, d)
	sim := switchsim.NewSimulator(b.Finalize())

	vals := []logic.Value{L, H}
	for _, va := range vals {
		for _, vc := range vals {
			for _, vd := range vals {
				sim.MustSet(map[string]logic.Value{"a": va, "c": vc, "d": vd})
				wantNand := H
				if va == H && vc == H && vd == H {
					wantNand = L
				}
				wantNor := L
				if va == L && vc == L && vd == L {
					wantNor = H
				}
				if got := sim.Value("nand3"); got != wantNand {
					t.Errorf("nand3(%s,%s,%s) = %s, want %s", va, vc, vd, got, wantNand)
				}
				if got := sim.Value("nor3"); got != wantNor {
					t.Errorf("nor3(%s,%s,%s) = %s, want %s", va, vc, vd, got, wantNor)
				}
			}
		}
	}
}

func TestDynamicLatchHoldsCharge(t *testing.T) {
	b := netlist.NewBuilder(logic.Scale{Sizes: 2, Strengths: 2})
	clk := b.Input("clk", L)
	din := b.Input("din", L)
	out := b.Node("out")
	gates.DynLatch(b, clk, din, out, "lat", false)
	sim := switchsim.NewSimulator(b.Finalize())

	// Write a 1 through the open latch.
	sim.MustSet(map[string]logic.Value{"clk": H, "din": H})
	if got := sim.Value("lat.store"); got != H {
		t.Fatalf("store after write = %s, want 1", got)
	}
	if got := sim.Value("out"); got != L {
		t.Fatalf("out after write = %s, want 0", got)
	}
	// Close the latch; drive the input the other way: stored charge and
	// output must hold.
	sim.MustSet(map[string]logic.Value{"clk": L})
	sim.MustSet(map[string]logic.Value{"din": L})
	if got := sim.Value("lat.store"); got != H {
		t.Errorf("store should hold charge 1 with clk low, got %s", got)
	}
	if got := sim.Value("out"); got != L {
		t.Errorf("out should hold 0 with clk low, got %s", got)
	}
	// Reopen: the new value flows through.
	sim.MustSet(map[string]logic.Value{"clk": H})
	if got := sim.Value("out"); got != H {
		t.Errorf("out after rewrite = %s, want 1", got)
	}
}

// shareRig builds inA -(enA)- A -(en)- B -(enB)- inB with the given node
// sizes, for charge-sharing experiments.
func shareRig(sizeA, sizeB int) *switchsim.Simulator {
	b := netlist.NewBuilder(logic.Scale{Sizes: 2, Strengths: 2})
	inA := b.Input("inA", L)
	inB := b.Input("inB", L)
	enA := b.Input("enA", L)
	enB := b.Input("enB", L)
	en := b.Input("en", L)
	nodeA := b.SizedNode("A", sizeA)
	nodeB := b.SizedNode("B", sizeB)
	b.N(enA, inA, nodeA, "pa")
	b.N(en, nodeA, nodeB, "p")
	b.N(enB, inB, nodeB, "pb")
	return switchsim.NewSimulator(b.Finalize())
}

func setCharges(sim *switchsim.Simulator, a, bv logic.Value) {
	sim.MustSet(map[string]logic.Value{"enA": H, "inA": a, "enB": H, "inB": bv})
	sim.MustSet(map[string]logic.Value{"enA": L, "enB": L})
}

func TestChargeSharing(t *testing.T) {
	t.Run("big-node-wins", func(t *testing.T) {
		sim := shareRig(2, 1)
		setCharges(sim, H, L)
		sim.MustSet(map[string]logic.Value{"en": H})
		if a, b := sim.Value("A"), sim.Value("B"); a != H || b != H {
			t.Errorf("sharing κ2=1 with κ1=0: A=%s B=%s, want 1 1", a, b)
		}
	})
	t.Run("equal-sizes-conflict", func(t *testing.T) {
		sim := shareRig(1, 1)
		setCharges(sim, H, L)
		sim.MustSet(map[string]logic.Value{"en": H})
		if a, b := sim.Value("A"), sim.Value("B"); a != X || b != X {
			t.Errorf("sharing κ1=1 with κ1=0: A=%s B=%s, want X X", a, b)
		}
	})
	t.Run("agreeing-charges-keep-value", func(t *testing.T) {
		sim := shareRig(1, 1)
		setCharges(sim, H, H)
		sim.MustSet(map[string]logic.Value{"en": H})
		if a, b := sim.Value("A"), sim.Value("B"); a != H || b != H {
			t.Errorf("sharing 1 with 1: A=%s B=%s, want 1 1", a, b)
		}
	})
	t.Run("x-gate-conflicting", func(t *testing.T) {
		sim := shareRig(1, 1)
		setCharges(sim, H, L)
		sim.MustSet(map[string]logic.Value{"en": X})
		if a, b := sim.Value("A"), sim.Value("B"); a != X || b != X {
			t.Errorf("X-gated sharing of 1 and 0: A=%s B=%s, want X X", a, b)
		}
	})
	t.Run("x-gate-agreeing", func(t *testing.T) {
		sim := shareRig(1, 1)
		setCharges(sim, L, L)
		sim.MustSet(map[string]logic.Value{"en": X})
		if a, b := sim.Value("A"), sim.Value("B"); a != L || b != L {
			t.Errorf("X-gated sharing of 0 and 0: A=%s B=%s, want 0 0", a, b)
		}
	})
}

func TestDriveOverridesCharge(t *testing.T) {
	// A strong driver through a conducting transistor must override even
	// a large node's charge.
	sim := shareRig(2, 1)
	setCharges(sim, H, H)
	sim.MustSet(map[string]logic.Value{"enB": H, "inB": L, "en": H})
	if a, b := sim.Value("A"), sim.Value("B"); a != L || b != L {
		t.Errorf("driving 0 into charged κ2 node: A=%s B=%s, want 0 0", a, b)
	}
}

func TestBidirectionalPass(t *testing.T) {
	sim := shareRig(1, 1)
	// Drive left-to-right.
	sim.MustSet(map[string]logic.Value{"enA": H, "inA": H, "en": H})
	if got := sim.Value("B"); got != H {
		t.Errorf("left-to-right conduction: B=%s, want 1", got)
	}
	// Now right-to-left through the same transistor.
	sim.MustSet(map[string]logic.Value{"enA": L})
	sim.MustSet(map[string]logic.Value{"enB": H, "inB": L})
	if got := sim.Value("A"); got != L {
		t.Errorf("right-to-left conduction: A=%s, want 0", got)
	}
}

func TestFightingDrivers(t *testing.T) {
	b := netlist.NewBuilder(logic.Scale{Sizes: 1, Strengths: 2})
	hi := b.Input("hi", H)
	lo := b.Input("lo", L)
	n := b.Node("n")
	tie := b.TieHi()
	b.N(tie, hi, n, "t1")
	b.N(tie, lo, n, "t2")
	sim := switchsim.NewSimulator(b.Finalize())
	sim.Init()
	if got := sim.Value("n"); got != X {
		t.Errorf("equal-strength fight: n=%s, want X", got)
	}
}

func TestStrongerDriverWins(t *testing.T) {
	b := netlist.NewBuilder(logic.Scale{Sizes: 1, Strengths: 2})
	hi := b.Input("hi", H)
	lo := b.Input("lo", L)
	n := b.Node("n")
	tie := b.TieHi()
	b.StrengthTrans(logic.NType, 2, tie, hi, n, "strong")
	b.StrengthTrans(logic.NType, 1, tie, lo, n, "weak")
	sim := switchsim.NewSimulator(b.Finalize())
	sim.Init()
	if got := sim.Value("n"); got != H {
		t.Errorf("γ2-high vs γ1-low: n=%s, want 1", got)
	}
}

func TestRatioedInverterStrengths(t *testing.T) {
	// The depletion load (γ1) must lose to the pull-down (γ2) but win
	// over charge: this is exactly nMOS ratioed logic.
	_, sim := inv(false)
	sim.MustSet(map[string]logic.Value{"a": H})
	if got := sim.Value("out"); got != L {
		t.Fatalf("pull-down should win over load: out=%s", got)
	}
	sim.MustSet(map[string]logic.Value{"a": L})
	if got := sim.Value("out"); got != H {
		t.Fatalf("load should pull up once pull-down opens: out=%s", got)
	}
}

func TestPrechargedBus(t *testing.T) {
	b := netlist.NewBuilder(logic.Scale{Sizes: 2, Strengths: 2})
	phi := b.Input("phi", L)
	sel := b.Input("sel", L)
	bus := b.SizedNode("bus", 2) // high-capacitance bit line
	gates.Precharge(b, phi, bus, "pc")
	gates.Pulldown(b, sel, bus, "pd")
	sim := switchsim.NewSimulator(b.Finalize())

	sim.MustSet(map[string]logic.Value{"phi": H}) // precharge
	if got := sim.Value("bus"); got != H {
		t.Fatalf("bus after precharge = %s, want 1", got)
	}
	sim.MustSet(map[string]logic.Value{"phi": L}) // hold
	if got := sim.Value("bus"); got != H {
		t.Fatalf("bus should hold precharge = %s, want 1", got)
	}
	sim.MustSet(map[string]logic.Value{"sel": H}) // conditional discharge
	if got := sim.Value("bus"); got != L {
		t.Fatalf("bus after discharge = %s, want 0", got)
	}
	sim.MustSet(map[string]logic.Value{"sel": L, "phi": H}) // precharge again
	if got := sim.Value("bus"); got != H {
		t.Fatalf("bus after re-precharge = %s, want 1", got)
	}
}

func TestRingOscillatorResolvesToX(t *testing.T) {
	b := netlist.NewBuilder(logic.Scale{Sizes: 1, Strengths: 2})
	n0 := b.Node("n0")
	n1 := b.Node("n1")
	n2 := b.Node("n2")
	gates.NInv(b, n0, n1, "i0")
	gates.NInv(b, n1, n2, "i1")
	gates.NInv(b, n2, n0, "i2")
	en := b.Input("en", L)
	in := b.Input("in", L)
	b.StrengthTrans(logic.NType, 2, en, in, n0, "kick")
	sim := switchsim.NewSimulator(b.Finalize())

	// All-X is a stable fixpoint of the ring.
	res := sim.Init()
	if res.Oscillated {
		t.Fatal("all-X init should not oscillate")
	}
	if sim.Value("n0") != X || sim.Value("n1") != X || sim.Value("n2") != X {
		t.Fatalf("uninitialized ring should be X: %s", sim.Report("n0", "n1", "n2"))
	}
	// Force a definite value in, then release: the ring has no stable
	// binary state, so settling must detect oscillation and yield X.
	sim.MustSet(map[string]logic.Value{"en": H, "in": L})
	if got := sim.Value("n0"); got != L {
		t.Fatalf("kick failed: n0=%s, want 0", got)
	}
	res = sim.MustSet(map[string]logic.Value{"en": L})
	if !res.Oscillated {
		t.Error("free-running ring should be reported as oscillating")
	}
	for _, n := range []string{"n0", "n1", "n2"} {
		if got := sim.Value(n); got != X {
			t.Errorf("oscillating node %s = %s, want X", n, got)
		}
	}
}

func TestForceNodeActsAsInput(t *testing.T) {
	nw, sim := inv(false)
	sim.Init()
	out := nw.MustLookup("out")
	// Force the output stuck-at-0: input changes must not move it.
	seeds := sim.Circuit.ForceNode(out, L)
	sim.Solver.Settle(sim.Circuit, seeds)
	sim.MustSet(map[string]logic.Value{"a": L})
	if got := sim.Value("out"); got != L {
		t.Errorf("forced node moved: out=%s, want 0", got)
	}
	// Unforce: the network drives it again.
	seeds = sim.Circuit.UnforceNode(out)
	sim.Solver.Settle(sim.Circuit, seeds)
	sim.MustSet(map[string]logic.Value{"a": L})
	if got := sim.Value("out"); got != H {
		t.Errorf("after unforce with a=0: out=%s, want 1", got)
	}
}

func TestPinTransistor(t *testing.T) {
	// Pin the inverter's pull-down stuck-closed: output is 0 regardless.
	b := netlist.NewBuilder(logic.Scale{Sizes: 2, Strengths: 2})
	a := b.Input("a", L)
	out := b.Node("out")
	b.Load(out, "load")
	pd := b.N(a, out, b.Gnd, "pd")
	sim := switchsim.NewSimulator(b.Finalize())
	sim.Init()

	seeds := sim.Circuit.PinTransistor(pd, H)
	sim.Solver.Settle(sim.Circuit, seeds)
	sim.MustSet(map[string]logic.Value{"a": L})
	if got := sim.Value("out"); got != L {
		t.Errorf("stuck-closed pull-down: out=%s, want 0", got)
	}
	// Stuck-open: output is 1 regardless (load wins).
	seeds = sim.Circuit.PinTransistor(pd, L)
	sim.Solver.Settle(sim.Circuit, seeds)
	sim.MustSet(map[string]logic.Value{"a": H})
	if got := sim.Value("out"); got != H {
		t.Errorf("stuck-open pull-down: out=%s, want 1", got)
	}
	// Unpin: normal behavior returns.
	seeds = sim.Circuit.UnpinTransistor(pd)
	sim.Solver.Settle(sim.Circuit, seeds)
	if got := sim.Value("out"); got != L {
		t.Errorf("after unpin with a=1: out=%s, want 0", got)
	}
	if sim.Circuit.Faulty() {
		t.Error("circuit should report non-faulty after unpin")
	}
}

func TestSetInputOnForcedInputIsNoOp(t *testing.T) {
	nw, sim := inv(false)
	sim.Init()
	a := nw.MustLookup("a")
	sim.Circuit.ForceNode(a, H)
	sim.Solver.SettleAll(sim.Circuit)
	if got := sim.Value("out"); got != L {
		t.Fatalf("forced a=1: out=%s, want 0", got)
	}
	if seeds := sim.Circuit.SetInput(a, L); seeds != nil {
		t.Error("SetInput on a forced input should be a no-op")
	}
	if got := sim.Value("a"); got != H {
		t.Errorf("forced input moved to %s", got)
	}
}

func TestDecoderOneHot(t *testing.T) {
	b := netlist.NewBuilder(logic.Scale{Sizes: 2, Strengths: 2})
	var addr, addrBar []netlist.NodeID
	for i := 0; i < 3; i++ {
		in := b.Input(fmt.Sprintf("a%d", i), L)
		nb := b.Node(fmt.Sprintf("a%db", i))
		buf := b.Node(fmt.Sprintf("a%dt", i))
		gates.InvPair(b, in, nb, buf, fmt.Sprintf("ap%d", i), false)
		addr = append(addr, buf)
		addrBar = append(addrBar, nb)
	}
	lines := gates.Decoder(b, addr, addrBar, "dec")
	sim := switchsim.NewSimulator(b.Finalize())

	for want := 0; want < 8; want++ {
		sim.MustSet(map[string]logic.Value{
			"a0": logic.Value(want & 1),
			"a1": logic.Value((want >> 1) & 1),
			"a2": logic.Value((want >> 2) & 1),
		})
		for i, ln := range lines {
			got := sim.Circuit.Value(ln)
			wantV := L
			if i == want {
				wantV = H
			}
			if got != wantV {
				t.Errorf("addr=%d: line %d = %s, want %s", want, i, got, wantV)
			}
		}
	}
}

func TestSettleResultBookkeeping(t *testing.T) {
	_, sim := inv(false)
	sim.Init()
	res := sim.MustSet(map[string]logic.Value{"a": H})
	if len(res.Explored) == 0 {
		t.Error("settle should explore the output vicinity")
	}
	found := false
	for _, n := range res.Changed {
		if sim.Tab.Net.Name(n) == "out" {
			found = true
		}
	}
	if !found {
		t.Errorf("out should be in Changed, got %d nodes", len(res.Changed))
	}
	// No-op setting: nothing perturbed.
	res = sim.MustSet(map[string]logic.Value{"a": H})
	if res.Rounds != 0 || len(res.Changed) != 0 {
		t.Errorf("no-op setting produced rounds=%d changed=%d", res.Rounds, len(res.Changed))
	}
}

func TestWorkCounters(t *testing.T) {
	_, sim := inv(false)
	sim.Init()
	before := sim.Solver.Work()
	sim.MustSet(map[string]logic.Value{"a": H})
	after := sim.Solver.Work()
	d := after.Sub(before)
	if d.Settles != 1 || d.Vicinities == 0 || d.NodesSolved == 0 || d.RelaxSteps == 0 {
		t.Errorf("work counters did not advance: %+v", d)
	}
	if d.Units() <= 0 {
		t.Error("work units should be positive")
	}
	sim.Solver.ResetWork()
	if sim.Solver.Work() != (switchsim.Work{}) {
		t.Error("ResetWork should zero the counters")
	}
}

func TestVectorErrors(t *testing.T) {
	nw, _ := inv(false)
	if _, err := switchsim.Vector(nw, map[string]logic.Value{"nope": H}); err == nil {
		t.Error("Vector should reject unknown node names")
	}
	if _, err := switchsim.Vector(nw, map[string]logic.Value{"out": H}); err == nil {
		t.Error("Vector should reject storage nodes")
	}
	if _, err := switchsim.Vector(nw, map[string]logic.Value{"a": H}); err != nil {
		t.Errorf("Vector failed on valid input: %v", err)
	}
}

func TestPatternObserveAt(t *testing.T) {
	p := switchsim.Pattern{Settings: make([]switchsim.Setting, 3)}
	for i := 0; i < 3; i++ {
		if !p.ObserveAt(i) {
			t.Errorf("default pattern should observe at every setting (%d)", i)
		}
	}
	p.Observe = []int{2}
	if p.ObserveAt(0) || p.ObserveAt(1) || !p.ObserveAt(2) {
		t.Error("explicit Observe list not honored")
	}
}

package switchsim_test

import (
	"bytes"
	"reflect"
	"testing"

	"fmossim/internal/core"
	"fmossim/internal/logic"
	"fmossim/internal/march"
	"fmossim/internal/ram"
	"fmossim/internal/switchsim"
)

// FuzzDecodeRecording throws arbitrary bytes at the recording decoder.
// The decoder's contract: malformed input — bad magic, truncated
// varints, out-of-range node ids, snapshot frames of the wrong length —
// returns an error; it never panics and never silently accepts a frame
// that violates the recording's own fingerprint. Anything that does
// decode must re-encode and re-decode to the identical recording
// (decode is a left inverse of encode on the decoder's image).
//
// The seed corpus is real: the paper's RAM64 circuit recorded through
// test sequence 1 with mid-sequence state frames, plus truncations and
// a corrupted-magic variant, so the fuzzer starts inside the format
// rather than rediscovering the magic string.
func FuzzDecodeRecording(f *testing.F) {
	m := ram.RAM64()
	seq := march.Sequence1(m)
	seq.Patterns = seq.Patterns[:8] // keep the corpus entries small
	withFrames := core.Record(m.Net, seq, core.Options{SnapshotEvery: 4})
	plain := core.Record(m.Net, seq, core.Options{})
	for _, rec := range []*switchsim.Recording{withFrames, plain} {
		var buf bytes.Buffer
		if err := rec.Encode(&buf); err != nil {
			f.Fatal(err)
		}
		enc := buf.Bytes()
		f.Add(enc)
		f.Add(enc[:len(enc)/2])
		f.Add(enc[:len(enc)-1])
		mut := append([]byte(nil), enc...)
		copy(mut, "FMOSREC9")
		f.Add(mut)
	}
	f.Add([]byte("FMOSREC2"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := switchsim.DecodeRecording(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := range rec.Steps {
			if s := rec.Steps[i].Snapshot; s != nil {
				if len(s) != rec.NumNodes {
					t.Fatalf("step %d: decoded snapshot has %d values, recording has %d nodes",
						i, len(s), rec.NumNodes)
				}
				for _, v := range s {
					if v > logic.X {
						t.Fatalf("step %d: decoded snapshot value %d out of range", i, v)
					}
				}
			}
		}
		var buf bytes.Buffer
		if err := rec.Encode(&buf); err != nil {
			t.Fatalf("re-encoding a decoded recording: %v", err)
		}
		again, err := switchsim.DecodeRecording(&buf)
		if err != nil {
			t.Fatalf("re-decoding a re-encoded recording: %v", err)
		}
		if !reflect.DeepEqual(rec, again) {
			t.Fatal("decode ∘ encode is not idempotent on a decoded recording")
		}
	})
}

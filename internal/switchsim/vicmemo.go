// Vicinity-outcome memoization: the redundancy-trimming layer of the
// indexed replay (the ERASER direction carried down to switch level).
//
// The measured redundancy in the RAM campaigns is dominated by
// confirmation steps: a faulty circuit is activated because good-circuit
// activity touched its interest set, re-solves the handful of vicinities
// its static divergence flags as unadoptable, and produces exactly the
// diff it produced the last dozen times the same march element swept by.
// Whole-step sharing across faults is unsound (each fault's sites shift
// the adopt-vs-solve split), but one level down the problem is closed: a
// vicinity solve is a pure function of a small, exactly enumerable read
// set. exploreVicinity's membership decisions read only the channel-edge
// transistor states, input-likeness, this round's membership stamps, and
// the serviced-vicinity exclusions; solveVicinity then reads only the
// member values, the input-like neighbors' values, and static tables
// (Charge, Drive, topology). A memo entry captures that read vector with
// the solve's outcome; a later seed adopts the outcome only after every
// captured read re-verifies against the live circuit — so a hit is
// provably the solve the wave would have performed, across settings AND
// across fault circuits sharing the worker's solver.
//
// Determinism contract: a hit replicates every observable effect of the
// solve it replaces — membership stamps, explored-set append order,
// divergence marks, post-solve strength scratch (readable by a later
// same-round solve that bridges into the vicinity), relaxation epoch
// bumps, value application, change propagation — and credits the exact
// work counters the solve would have accumulated (stored at capture; the
// verified read vector forces the relaxation to replay identically). Work
// totals are therefore bit-identical with the memo on or off; only wall
// clock and the solver-local MemoStats change. Entries never expire by
// time: verification makes stale entries merely useless, not wrong.
package switchsim

import (
	"fmossim/internal/logic"
	"fmossim/internal/netlist"
)

// Edge-read classifications captured per channel edge of each member, in
// tab.ChannelOf order. The classification pins the branch exploreVicinity
// and solveVicinity take at that edge; verification re-asserts it.
const (
	edgeClosed   uint8 = iota // transistor state Lo: both passes skip the edge
	edgeMember                // neighbor is a member of this vicinity
	edgeInput                 // neighbor is input-like: its value is a solve root
	edgeServiced              // neighbor adopted this round: excluded from the frontier
)

// memberRead is one member's captured identity and pre-solve value, in
// exploration (s.vic) order; members[0] is the seed.
type memberRead struct {
	n   netlist.NodeID
	val logic.Value
}

// edgeRead is one channel edge's captured reads: the transistor state and
// the neighbor classification (val meaningful for edgeInput only).
type edgeRead struct {
	ts   logic.Value
	kind uint8
	val  logic.Value
}

// postStrength is a member's post-solve strength scratch, restored on a
// hit so a later same-round solve bridging into the vicinity reads what
// the real solve would have left.
type postStrength struct {
	def, hd, ld, hp, lp logic.Strength
}

// vicEntry is one memoized vicinity solve.
type vicEntry struct {
	members []memberRead
	edges   []edgeRead // flattened per-member channel edges
	post    []postStrength
	newVal  []logic.Value // raw solve output (pre any X-mode Lub)
	relax   int64         // RelaxSteps the solve accumulated
}

// memoChainCap bounds the entries retained per seed node; distinct local
// contexts at one seed (write 0 / write 1 / read disturb...) each earn a
// slot, replaced round-robin beyond the cap.
const memoChainCap = 4

// defaultMemoEntries bounds the total entries per memo; beyond it new
// captures are dropped (existing entries keep verifying and hitting).
const defaultMemoEntries = 1 << 15

// MemoStats counts memo traffic. Wall-clock-class data: hit patterns
// depend on worker scheduling, so these are exempt from the determinism
// contract (deterministic only for Workers=1), like FaultNS.
type MemoStats struct {
	// Hits is the number of vicinity solves adopted from a verified entry.
	Hits int64
	// Misses counts lookups that found a chain but no entry verified.
	Misses int64
	// Stores counts captured entries; Skipped counts solves not captured
	// (capacity reached, or a same-round foreign bridge made the read set
	// non-capturable).
	Stores, Skipped int64
	// SavedUnits is the work (Work.Units scale) credited from stored
	// outcomes instead of executed: 16 per vicinity + 4 per member + the
	// stored relaxation steps.
	SavedUnits int64
}

// Add accumulates o into s (pooling counters across worker solvers).
func (s *MemoStats) Add(o MemoStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Stores += o.Stores
	s.Skipped += o.Skipped
	s.SavedUnits += o.SavedUnits
}

// VicMemo is a per-solver vicinity-outcome memo. It is owned by exactly
// one Solver (not safe for concurrent use) and enabled by assigning it to
// Solver.Memo. It must be built over the same Tables as the solver.
type VicMemo struct {
	tab *Tables

	// chains[n] holds the memo entries seeded at node n.
	chains [][]*vicEntry
	// rr[n] is the round-robin replacement cursor of n's chain.
	rr []uint8

	// mark stamps the current capture's members for edge classification.
	mark      []uint32
	markEpoch uint32

	entries    int
	maxEntries int

	stats MemoStats
}

// NewVicMemo returns an empty memo over tab's network. maxEntries bounds
// retained entries (0 selects a default).
func NewVicMemo(tab *Tables, maxEntries int) *VicMemo {
	if maxEntries <= 0 {
		maxEntries = defaultMemoEntries
	}
	n := tab.Net.NumNodes()
	return &VicMemo{
		tab:        tab,
		chains:     make([][]*vicEntry, n),
		rr:         make([]uint8, n),
		mark:       make([]uint32, n),
		maxEntries: maxEntries,
	}
}

// Stats returns the accumulated memo counters.
func (m *VicMemo) Stats() MemoStats { return m.stats }

// adopt attempts to service seed from a memoized vicinity solve. On a
// verified hit it replicates the full solve effect on c and s (stamps,
// explored set, divergence marks, strength scratch, relax epochs, value
// application, propagation), credits the stored work, and returns true.
// Called by SettleReplayIndexed in place of the explore/solve pair; the
// caller has already established that seed is not input-like and not
// stamped this round.
func (m *VicMemo) adopt(s *Solver, c *Circuit, seed netlist.NodeID, xmode bool) bool {
	chain := m.chains[seed]
	if len(chain) == 0 {
		return false
	}
entries:
	for _, e := range chain {
		// Verify the read vector. Any mismatch means the live exploration
		// or solve would branch differently somewhere: fall through to the
		// real solve.
		ei := 0
		for _, mr := range e.members {
			u := mr.n
			if c.IsInputLike(u) || s.stamp[u] == s.epoch || c.val[u] != mr.val {
				continue entries
			}
			if s.rvState != nil && s.servicedThisRound(u) {
				continue entries
			}
			for _, ed := range m.tab.ChannelOf(u) {
				er := &e.edges[ei]
				ei++
				if c.ts[ed.T] != er.ts {
					continue entries
				}
				switch er.kind {
				case edgeClosed, edgeMember:
					// Closed edges need only the state match; member
					// neighbors are covered by their own member checks.
				case edgeInput:
					if v := ed.Other; !c.IsInputLike(v) || c.val[v] != er.val {
						continue entries
					}
				case edgeServiced:
					v := ed.Other
					if s.rvState == nil || c.IsInputLike(v) || s.stamp[v] == s.epoch || !s.servicedThisRound(v) {
						continue entries
					}
				}
			}
		}

		// Hit: replicate the solve. Stamp, record and mark the members in
		// exploration order (exactly the real path's explored/markDiverged
		// loop), restore the post-solve strength scratch and the relaxation
		// epoch evolution, credit the work the solve would have counted,
		// then apply the values with the caller's X-mode policy.
		for i, mr := range e.members {
			u := mr.n
			s.stamp[u] = s.epoch
			if s.exploredStamp[u] != s.exploredEpoch {
				s.exploredStamp[u] = s.exploredEpoch
				s.explored = append(s.explored, u)
			}
			s.markDiverged(u)
			p := &e.post[i]
			s.def[u], s.hd[u], s.ld[u], s.hp[u], s.lp[u] = p.def, p.hd, p.ld, p.hp, p.lp
		}
		if len(e.members) > 1 {
			// The general solve runs two worklist phases, each opening a
			// relaxation epoch and leaving processed members one behind it.
			s.relaxEpoch += 2
			for _, mr := range e.members {
				s.relaxStamp[mr.n] = s.relaxEpoch - 1
			}
		}
		s.work.Vicinities++
		s.work.NodesSolved += int64(len(e.members))
		s.work.RelaxSteps += e.relax
		m.stats.Hits++
		m.stats.SavedUnits += 16 + 4*int64(len(e.members)) + e.relax

		for i, mr := range e.members {
			u := mr.n
			nv := e.newVal[i]
			if xmode {
				nv = logic.Lub(c.val[u], nv)
			}
			if nv == c.val[u] {
				continue
			}
			c.val[u] = nv
			s.noteChanged(u)
			s.propagate(c, u)
		}
		return true
	}
	m.stats.Misses++
	return false
}

// store captures the vicinity solve that just ran: s.vic is the member
// set in exploration order, c still holds the pre-solve values (the apply
// loop has not run), newVal is the raw solve output, and relax the
// RelaxSteps it accumulated. Called by SettleReplayIndexed between
// solveVicinity and the apply loop.
func (m *VicMemo) store(s *Solver, c *Circuit, newVal []logic.Value, relax int64) {
	if m.entries >= m.maxEntries {
		m.stats.Skipped++
		return
	}
	vic := s.vic
	m.markEpoch++
	for _, u := range vic {
		m.mark[u] = m.markEpoch
	}
	members := make([]memberRead, len(vic))
	post := make([]postStrength, len(vic))
	edges := make([]edgeRead, 0, 4*len(vic))
	for i, u := range vic {
		members[i] = memberRead{n: u, val: c.val[u]}
		post[i] = postStrength{def: s.def[u], hd: s.hd[u], ld: s.ld[u], hp: s.hp[u], lp: s.lp[u]}
		for _, ed := range m.tab.ChannelOf(u) {
			ts := c.ts[ed.T]
			er := edgeRead{ts: ts}
			v := ed.Other
			switch {
			case ts == logic.Lo:
				er.kind = edgeClosed
			case c.IsInputLike(v):
				er.kind = edgeInput
				er.val = c.val[v]
			case m.mark[v] == m.markEpoch:
				er.kind = edgeMember
			case s.rvState != nil && s.servicedThisRound(v):
				er.kind = edgeServiced
			default:
				// A conducting edge into a node that is neither a member,
				// an input, nor an adopted vicinity: the exploration
				// skipped it as already stamped by an earlier solve this
				// round, and the solve read that solve's strength scratch
				// — state outside the capturable read set. Don't memoize.
				m.stats.Skipped++
				return
			}
			edges = append(edges, er)
		}
	}
	e := &vicEntry{
		members: members,
		edges:   edges,
		post:    post,
		newVal:  append([]logic.Value(nil), newVal[:len(vic)]...),
		relax:   relax,
	}
	seed := vic[0]
	chain := m.chains[seed]
	if len(chain) < memoChainCap {
		m.chains[seed] = append(chain, e)
		m.entries++
	} else {
		chain[m.rr[seed]] = e
		m.rr[seed] = (m.rr[seed] + 1) % memoChainCap
	}
	m.stats.Stores++
}

package switchsim

import (
	"testing"

	"fmossim/internal/logic"
)

var ternary = []logic.Value{logic.Lo, logic.Hi, logic.X}

// TestLaneOpsMatchTruthTables checks every lane operation against the
// scalar internal/logic truth tables, exhaustively over all ternary value
// pairs, in every lane position with adversarial neighbor lanes.
func TestLaneOpsMatchTruthTables(t *testing.T) {
	// Neighbor fillers exercise cross-lane independence: all-Lo, all-Hi,
	// all-X around the lane under test.
	for _, fill := range ternary {
		for bit := uint(0); bit < 64; bit += 7 {
			for _, a := range ternary {
				for _, b := range ternary {
					p := Broadcast(fill)
					q := Broadcast(fill)
					p.Set(bit, a)
					q.Set(bit, b)
					if !p.Canonical() || !q.Canonical() {
						t.Fatalf("fill=%v bit=%d: non-canonical planes", fill, bit)
					}
					if got := p.Get(bit); got != a {
						t.Fatalf("Get(Set(%v)) = %v", a, got)
					}

					if got, want := p.EqMask(q)>>bit&1 == 1, a == b; got != want {
						t.Errorf("EqMask(%v,%v) lane bit = %v, want %v", a, b, got, want)
					}
					if got, want := p.EqValueMask(b)>>bit&1 == 1, a == b; got != want {
						t.Errorf("EqValueMask(%v,%v) = %v, want %v", a, b, got, want)
					}
					if got, want := p.DefiniteMask()>>bit&1 == 1, a.Definite(); got != want {
						t.Errorf("DefiniteMask(%v) = %v, want %v", a, got, want)
					}
					if got, want := p.Not().Get(bit), a.Not(); got != want {
						t.Errorf("Not(%v) = %v, want %v", a, got, want)
					}
					if got, want := p.Lub(q).Get(bit), logic.Lub(a, b); got != want {
						t.Errorf("Lub(%v,%v) = %v, want %v", a, b, got, want)
					}
					if got, want := p.CoversMask(q)>>bit&1 == 1, logic.Covers(a, b); got != want {
						t.Errorf("CoversMask(%v,%v) = %v, want %v", a, b, got, want)
					}
					if !p.Not().Canonical() || !p.Lub(q).Canonical() {
						t.Fatalf("Not/Lub broke canonical form for (%v,%v)", a, b)
					}

					// The lane under test must not leak into neighbors.
					for _, nb := range []uint{(bit + 1) % 64, (bit + 63) % 64} {
						if got := p.Get(nb); got != fill {
							t.Fatalf("Set(%d,%v) disturbed lane %d: %v != %v", bit, a, nb, got, fill)
						}
					}
				}
			}
		}
	}
}

func TestBroadcast(t *testing.T) {
	for _, v := range ternary {
		p := Broadcast(v)
		if !p.Canonical() {
			t.Fatalf("Broadcast(%v) not canonical", v)
		}
		for bit := uint(0); bit < 64; bit++ {
			if got := p.Get(bit); got != v {
				t.Fatalf("Broadcast(%v).Get(%d) = %v", v, bit, got)
			}
		}
		if got := p.EqValueMask(v); got != ^uint64(0) {
			t.Fatalf("Broadcast(%v).EqValueMask = %#x", v, got)
		}
	}
}

func TestLaneClear(t *testing.T) {
	p := Broadcast(logic.X)
	p.Clear(17)
	if got := p.Get(17); got != logic.Lo {
		t.Fatalf("Clear left %v", got)
	}
	if got := p.Get(18); got != logic.X {
		t.Fatalf("Clear disturbed neighbor: %v", got)
	}
}

// FuzzLaneOps round-trips arbitrary plane pairs through pack/unpack and
// cross-checks every word-wide operation against the scalar truth tables
// lane by lane. Non-canonical inputs are first canonicalized the way the
// decoder sees them (X wins over V).
func FuzzLaneOps(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(0), uint64(0))
	f.Add(^uint64(0), uint64(0), uint64(0), ^uint64(0))
	f.Add(uint64(0xdeadbeef), uint64(0x12345678), uint64(0x0f0f0f0f), uint64(0xf0f0f0f0))
	f.Fuzz(func(t *testing.T, pv, px, qv, qx uint64) {
		// Canonicalize: the X plane wins, as Get defines.
		p := LanePlanes{V: pv &^ px, X: px}
		q := LanePlanes{V: qv &^ qx, X: qx}

		// Pack/unpack round trip.
		var rp LanePlanes
		for bit := uint(0); bit < 64; bit++ {
			rp.Set(bit, p.Get(bit))
		}
		if rp != p {
			t.Fatalf("round trip: %+v != %+v", rp, p)
		}

		eq := p.EqMask(q)
		cov := p.CoversMask(q)
		not := p.Not()
		lub := p.Lub(q)
		if !not.Canonical() || !lub.Canonical() {
			t.Fatalf("op broke canonical form")
		}
		for bit := uint(0); bit < 64; bit++ {
			a, b := p.Get(bit), q.Get(bit)
			if got, want := eq>>bit&1 == 1, a == b; got != want {
				t.Fatalf("EqMask bit %d: %v want %v (a=%v b=%v)", bit, got, want, a, b)
			}
			if got, want := cov>>bit&1 == 1, logic.Covers(a, b); got != want {
				t.Fatalf("CoversMask bit %d: %v want %v (a=%v b=%v)", bit, got, want, a, b)
			}
			if got, want := not.Get(bit), a.Not(); got != want {
				t.Fatalf("Not bit %d: %v want %v", bit, got, want)
			}
			if got, want := lub.Get(bit), logic.Lub(a, b); got != want {
				t.Fatalf("Lub bit %d: %v want %v", bit, got, want)
			}
			if got, want := p.DefiniteMask()>>bit&1 == 1, a.Definite(); got != want {
				t.Fatalf("DefiniteMask bit %d: %v want %v", bit, got, want)
			}
		}
	})
}

package switchsim_test

import (
	"math/rand"
	"testing"

	"fmossim/internal/logic"
	"fmossim/internal/netlist"
	"fmossim/internal/switchsim"
	"fmossim/internal/testnet"
)

// TestSettleIdempotent: after a settle that did not oscillate, settling
// the entire network again must change nothing — the computed state is a
// fixpoint of the steady-state response.
func TestSettleIdempotent(t *testing.T) {
	for _, gen := range []struct {
		name string
		f    func(*rand.Rand) *testnet.Circuit
	}{{"structured", testnet.Structured}, {"soup", testnet.Soup}} {
		t.Run(gen.name, func(t *testing.T) {
			for seed := int64(0); seed < 40; seed++ {
				rng := rand.New(rand.NewSource(seed))
				c := gen.f(rng)
				sim := switchsim.NewSimulator(c.Net)
				sim.Init()
				oscillated := false
				for i := 0; i < 12; i++ {
					res := sim.Step(c.RandomSetting(rng, 10))
					oscillated = oscillated || res.Oscillated
				}
				if oscillated {
					continue // X-resolved states need not be fixpoints of the raw response
				}
				before := sim.Circuit.Snapshot()
				res := sim.Solver.SettleAll(sim.Circuit)
				if len(res.Changed) != 0 {
					for _, n := range res.Changed {
						t.Errorf("seed %d: node %s changed %s -> %s on re-settle",
							seed, c.Net.Name(n), before[n], sim.Circuit.Value(n))
					}
					t.Fatalf("seed %d: settle not idempotent (%d changes)", seed, len(res.Changed))
				}
			}
		})
	}
}

// TestSimulationDeterministic: the same circuit and stimulus produce
// bit-identical state trajectories.
func TestSimulationDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := testnet.Soup(rng)
		seq := c.RandomSequence(rng, 15, 15)

		run := func() [][]logic.Value {
			sim := switchsim.NewSimulator(c.Net)
			sim.Init()
			var snaps [][]logic.Value
			for i := range seq.Patterns {
				sim.RunPattern(&seq.Patterns[i])
				snaps = append(snaps, sim.Circuit.Snapshot())
			}
			return snaps
		}
		a, b := run(), run()
		for i := range a {
			for n := range a[i] {
				if a[i][n] != b[i][n] {
					t.Fatalf("seed %d: nondeterminism at pattern %d node %s: %s vs %s",
						seed, i, c.Net.Name(int32ToNodeID(n)), a[i][n], b[i][n])
				}
			}
		}
	}
}

func int32ToNodeID(n int) netlist.NodeID { return netlist.NodeID(n) }

// TestStaticLocalityEquivalence: restricting vicinity exploration to
// dynamic locality (the paper's approach) must not change simulation
// results versus static DC-connected partitioning — it is purely a
// performance optimization.
func TestStaticLocalityEquivalence(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := testnet.Structured(rng)
		seq := c.RandomSequence(rng, 10, 10)

		dyn := switchsim.NewSimulator(c.Net)
		stat := switchsim.NewSimulator(c.Net)
		stat.Solver.StaticLocality = true
		dyn.Init()
		stat.Init()
		for i := range seq.Patterns {
			dyn.RunPattern(&seq.Patterns[i])
			stat.RunPattern(&seq.Patterns[i])
			a, b := dyn.Circuit.Snapshot(), stat.Circuit.Snapshot()
			for n := range a {
				if a[n] != b[n] {
					t.Fatalf("seed %d pattern %d: node %s dynamic=%s static=%s",
						seed, i, c.Net.Name(int32ToNodeID(n)), a[n], b[n])
				}
			}
		}
	}
}

// TestMonotonicity: one steady-state response, computed from a common
// initial charge state, must be monotone in the information ordering —
// weakening some inputs to X can only make the resulting node states less
// definite, never flip them to a different definite value. This is the
// soundness property that makes X a safe abstraction of unknown voltages.
//
// Note the property is deliberately about a *single* response from a
// shared state: across multiple settings, isolated charge nodes capture
// transient (race) states, so whole trajectories of different stimuli are
// not pointwise comparable — a faithful artifact of event-driven
// unit-delay simulation that MOSSIM-class simulators share.
func TestMonotonicity(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := testnet.Structured(rng)

		sim := switchsim.NewSimulator(c.Net)
		sim.Init()
		shadow := switchsim.NewCircuit(sim.Tab)
		shadowSolver := switchsim.NewSolver(sim.Tab)

		for i := 0; i < 8; i++ {
			base := c.RandomSetting(rng, 0)
			weak := make(switchsim.Setting, len(base))
			copy(weak, base)
			for j := range weak {
				if rng.Intn(100) < 25 {
					weak[j].Value = logic.X
				}
			}

			// Fork the current state, then apply base to one copy and the
			// weakened setting to the other.
			shadow.CopyStateFrom(sim.Circuit)
			r1 := sim.Step(base)
			r2 := shadowSolver.Step(shadow, weak)
			if !r1.Oscillated && !r2.Oscillated {
				a, b := sim.Circuit.Snapshot(), shadow.Snapshot()
				for n := range a {
					if !logic.Covers(b[n], a[n]) {
						t.Fatalf("seed %d step %d: node %s: weakened response %s does not cover %s",
							seed, i, c.Net.Name(int32ToNodeID(n)), b[n], a[n])
					}
				}
			}
		}
	}
}

// TestSoupRobustness: fully random transistor soups must never panic,
// must terminate, and must produce only valid ternary values.
func TestSoupRobustness(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := testnet.Soup(rng)
		sim := switchsim.NewSimulator(c.Net)
		sim.Init()
		for i := 0; i < 10; i++ {
			sim.Step(c.RandomSetting(rng, 20))
		}
		for n, v := range sim.Circuit.Snapshot() {
			if !v.Valid() {
				t.Fatalf("seed %d: node %s has invalid value %d", seed, c.Net.Name(int32ToNodeID(n)), v)
			}
		}
	}
}

// TestSeedOrderConfluence: settling from the same perturbation set in a
// different seed order must reach the same fixpoint for structured
// (race-free) circuits.
func TestSeedOrderConfluence(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := testnet.Structured(rng)
		setting := c.RandomSetting(rng, 0)

		run := func(reverse bool) []logic.Value {
			sim := switchsim.NewSimulator(c.Net)
			sim.Init()
			seeds := sim.Solver.ApplySetting(sim.Circuit, setting)
			if reverse {
				for i, j := 0, len(seeds)-1; i < j; i, j = i+1, j-1 {
					seeds[i], seeds[j] = seeds[j], seeds[i]
				}
			}
			sim.Solver.Settle(sim.Circuit, seeds)
			return sim.Circuit.Snapshot()
		}
		a, b := run(false), run(true)
		for n := range a {
			if a[n] != b[n] {
				t.Fatalf("seed %d: node %s differs under seed reordering: %s vs %s",
					seed, c.Net.Name(int32ToNodeID(n)), a[n], b[n])
			}
		}
	}
}

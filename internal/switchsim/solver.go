package switchsim

import (
	"fmossim/internal/logic"
	"fmossim/internal/netlist"
)

// Solver computes steady-state responses over a network. It owns reusable
// per-node scratch storage, so one Solver serves any number of Circuits
// over the same network (one at a time). A Solver is not safe for
// concurrent use by multiple goroutines.
type Solver struct {
	tab *Tables

	// StaticLocality disables dynamic vicinity exploration: vicinities
	// extend through transistors regardless of conduction state, i.e. the
	// network is partitioned only by its DC-connected components, as in
	// pre-MOSSIM-II switch-level simulators. Used by ablation benches.
	StaticLocality bool

	// MaxRounds bounds the unit-delay settling loop before oscillation
	// handling kicks in. Zero selects a default based on network size.
	MaxRounds int

	// Memo, when non-nil, memoizes vicinity solves inside
	// SettleReplayIndexed: outcomes are adopted only after their captured
	// read vector re-verifies against the live circuit, and hits credit
	// the exact work the solve would have counted, so results and work
	// totals are bit-identical with or without it (see vicmemo.go).
	// Ignored under StaticLocality.
	Memo *VicMemo

	// Record enables trajectory recording during Settle: the per-round
	// vicinity/change history lands in Traj. Used by the concurrent
	// simulator's good-circuit settles.
	Record bool
	// Traj is the last recorded trajectory (valid when Record is set;
	// overwritten by each Settle).
	Traj Trajectory

	// Per-node scratch, epoch-stamped to avoid O(N) clearing.
	stamp []uint32 // vicinity membership stamp
	epoch uint32
	def   []logic.Strength // strongest definitely-present signal
	hd    []logic.Strength // strongest definite-high signal
	ld    []logic.Strength // strongest definite-low signal
	hp    []logic.Strength // strongest possible-high signal
	lp    []logic.Strength // strongest possible-low signal

	// Per-settle explored/changed stamps.
	exploredStamp []uint32
	exploredEpoch uint32
	explored      []netlist.NodeID
	changedStamp  []uint32
	changedEpoch  uint32
	changed       []netlist.NodeID

	// Round-local pending set (dedup stamp).
	pendStamp []uint32
	pendEpoch uint32

	// Per-replay dynamic-divergence stamps: statically diverged nodes
	// seeded by the caller (BeginReplay/SeedDiverged), nodes the replay
	// has solved, and channel terminals of transistors they gate (see
	// SettleReplay). dynGen counts distinct marks, letting the replay
	// prove "no divergence added since" without rescanning. dynList keeps
	// the marked nodes in mark order; the indexed replay rescans it
	// against each round's member→vicinity map (cost ∝ divergence, not
	// trajectory size).
	dynStamp []uint32
	dynEpoch uint32
	dynGen   uint64
	dynList  []netlist.NodeID

	// Per-round trajectory index: nodeVic[n] is the index of the
	// trajectory vicinity containing n this round (valid when
	// nodeVicStamp matches the round epoch); vicAdopted is the per-round
	// adoption flag buffer.
	nodeVic      []int32
	nodeVicStamp []uint32
	vicAdopted   []bool

	// Indexed-replay round context (SettleReplayIndexed): the current
	// round's member→vicinity map from the prebuilt ReplayIndex and the
	// per-vicinity flagged/serviced state. While rvState is non-nil,
	// exploreVicinity treats members of serviced (adopted) vicinities as
	// outside the exploration frontier: the good circuit kept them in a
	// separate vicinity this round, and any divergence that would bridge
	// into them is marked and re-solved next round.
	rvVicOf    []int32
	rvVicStamp []uint32
	rvEpoch    uint32
	rvState    []uint8
	vicState   []uint8

	vic   []netlist.NodeID // current vicinity member list
	queue []netlist.NodeID // BFS queue

	// Worklist-relaxation scratch for solveVicinity: the FIFO of nodes
	// pending (re)computation and its membership stamp. relaxEpoch is
	// bumped once per relaxation phase.
	relaxStamp []uint32
	relaxEpoch uint32
	rq         []netlist.NodeID

	// Reusable settle-loop storage: the current and next rounds' pending
	// seeds, the per-vicinity new-value buffer, and the ApplySetting seed
	// buffer. All are valid only during/until the next Settle-family call.
	pend, next []netlist.NodeID
	newVal     []logic.Value
	seedBuf    []netlist.NodeID

	work Work
}

// NewSolver returns a solver for circuits over tab's network.
func NewSolver(tab *Tables) *Solver {
	n := tab.Net.NumNodes()
	return &Solver{
		tab:           tab,
		stamp:         make([]uint32, n),
		def:           make([]logic.Strength, n),
		hd:            make([]logic.Strength, n),
		ld:            make([]logic.Strength, n),
		hp:            make([]logic.Strength, n),
		lp:            make([]logic.Strength, n),
		exploredStamp: make([]uint32, n),
		changedStamp:  make([]uint32, n),
		pendStamp:     make([]uint32, n),
		dynStamp:      make([]uint32, n),
		nodeVic:       make([]int32, n),
		nodeVicStamp:  make([]uint32, n),
		relaxStamp:    make([]uint32, n),
	}
}

// markDyn stamps a node into the current replay's divergence set.
func (s *Solver) markDyn(n netlist.NodeID) {
	if s.dynStamp[n] != s.dynEpoch {
		s.dynStamp[n] = s.dynEpoch
		s.dynGen++
		s.dynList = append(s.dynList, n)
	}
}

// Work returns the accumulated work counters.
func (s *Solver) Work() Work { return s.work }

// ResetWork zeroes the work counters.
func (s *Solver) ResetWork() { s.work = Work{} }

// inVicinity reports whether n is stamped into the current vicinity.
func (s *Solver) inVicinity(n netlist.NodeID) bool { return s.stamp[n] == s.epoch }

// exploreVicinity collects into s.vic the set of storage nodes connected
// to seed by paths of conducting transistors that do not pass through
// input-like nodes. Returns false if seed is input-like or already
// explored this round.
func (s *Solver) exploreVicinity(c *Circuit, seed netlist.NodeID) bool {
	if c.IsInputLike(seed) || s.stamp[seed] == s.epoch {
		return false
	}
	if s.rvState != nil && s.servicedThisRound(seed) {
		return false
	}
	s.vic = s.vic[:0]
	s.queue = s.queue[:0]
	s.stamp[seed] = s.epoch
	s.queue = append(s.queue, seed)
	dynamic := !s.StaticLocality
	for len(s.queue) > 0 {
		u := s.queue[len(s.queue)-1]
		s.queue = s.queue[:len(s.queue)-1]
		s.vic = append(s.vic, u)
		for _, e := range s.tab.ChannelOf(u) {
			if dynamic && c.ts[e.T] == logic.Lo {
				continue // the source and drain of an open transistor are electrically isolated
			}
			v := e.Other
			if c.IsInputLike(v) {
				continue // vicinities do not extend through input nodes
			}
			if s.stamp[v] != s.epoch {
				if s.rvState != nil && s.servicedThisRound(v) {
					continue // adopted as part of a good-trajectory vicinity
				}
				s.stamp[v] = s.epoch
				s.queue = append(s.queue, v)
			}
		}
	}
	return true
}

// servicedThisRound reports whether n belongs to a trajectory vicinity of
// the current indexed-replay round that has already been adopted. Valid
// only while rvState is set (inside SettleReplayIndexed rounds).
func (s *Solver) servicedThisRound(n netlist.NodeID) bool {
	return s.rvVicStamp[n] == s.rvEpoch && s.rvState[s.rvVicOf[n]]&vicServiced != 0
}

// solveVicinity computes the steady-state response of the current vicinity
// (s.vic) and writes the new node values into newVal (parallel to s.vic).
// The relaxation computes, per node:
//
//	def — strength of the strongest definitely-present signal: roots are
//	      the node's own charge and adjacent input-like nodes (ω), flowing
//	      through transistors in state 1 only.
//	Hd/Ld — strongest definite high/low: roots whose value is exactly 1/0,
//	      via state-1 transistors, unblocked (≥ def at every node).
//	Hp/Lp — strongest possible high/low: roots with value in {1,X}/{0,X},
//	      via transistors in state 1 or X, unblocked.
//
// New value: 1 if Hd > Lp, 0 if Ld > Hp, else X. A signal of strength s
// crossing a transistor of strength γ continues at min(s, γ).
func (s *Solver) solveVicinity(c *Circuit, newVal []logic.Value) {
	vic := s.vic
	s.work.Vicinities++
	s.work.NodesSolved += int64(len(vic))
	if len(vic) == 1 {
		s.solveVicinity1(c, vic[0], newVal)
		return
	}

	relax := int64(0)

	// Phase 1: def relaxation (monotone max over the finite strength
	// lattice). Worklist to the least fixpoint: every node is computed
	// once, and recomputed only when a channel neighbor's def improved —
	// the fixpoint is unique (monotone operator from a bottom init), so
	// the values match a sweep-to-stability loop exactly, without its
	// full confirming passes. FIFO order is deterministic, so the relax
	// counters are too.
	for _, u := range vic {
		s.def[u] = s.tab.Charge[u] // the node's own charge is always definitely present
	}
	s.relaxEpoch++
	rq := s.rq[:0]
	for _, u := range vic {
		s.relaxStamp[u] = s.relaxEpoch
		rq = append(rq, u)
	}
	for head := 0; head < len(rq); head++ {
		u := rq[head]
		s.relaxStamp[u] = s.relaxEpoch - 1
		relax++
		best := s.def[u]
		for _, e := range s.tab.ChannelOf(u) {
			if c.ts[e.T] != logic.Hi {
				continue // only definitely-conducting paths carry definite signals
			}
			v := e.Other
			var sv logic.Strength
			if c.IsInputLike(v) {
				sv = s.tab.Charge[v] // ω
			} else if s.inVicinity(v) {
				sv = s.def[v]
			} else {
				continue
			}
			if a := logic.Attenuate(sv, e.Drive); a > best {
				best = a
			}
		}
		if best > s.def[u] {
			s.def[u] = best
			// def flows through definitely-conducting edges only:
			// requeue the in-vicinity neighbors that read def[u].
			for _, e := range s.tab.ChannelOf(u) {
				if c.ts[e.T] != logic.Hi {
					continue
				}
				if v := e.Other; s.inVicinity(v) && s.relaxStamp[v] != s.relaxEpoch {
					s.relaxStamp[v] = s.relaxEpoch
					rq = append(rq, v)
				}
			}
		}
	}
	s.rq = rq[:0]

	// Phase 2: value-carrying strengths, blocked at every node by signals
	// weaker than def there. Roots contribute only if unblocked.
	for _, u := range vic {
		s.hd[u], s.ld[u], s.hp[u], s.lp[u] = 0, 0, 0, 0
		ch := s.tab.Charge[u]
		if ch < s.def[u] {
			continue // own charge blocked by a stronger definite signal
		}
		switch c.val[u] {
		case logic.Hi:
			s.hd[u], s.hp[u] = ch, ch
		case logic.Lo:
			s.ld[u], s.lp[u] = ch, ch
		case logic.X:
			s.hp[u], s.lp[u] = ch, ch
		}
	}
	// Same worklist scheme as phase 1; value-carrying signals flow
	// through transistors in state 1 or X.
	s.relaxEpoch++
	rq = rq[:0]
	for _, u := range vic {
		s.relaxStamp[u] = s.relaxEpoch
		rq = append(rq, u)
	}
	for head := 0; head < len(rq); head++ {
		u := rq[head]
		s.relaxStamp[u] = s.relaxEpoch - 1
		relax++
		blk := s.def[u]
		bhd, bld, bhp, blp := s.hd[u], s.ld[u], s.hp[u], s.lp[u]
		for _, e := range s.tab.ChannelOf(u) {
			st := c.ts[e.T]
			if st == logic.Lo {
				continue
			}
			v := e.Other
			g := e.Drive
			var vhd, vld, vhp, vlp logic.Strength
			if c.IsInputLike(v) {
				w := s.tab.Charge[v] // ω
				switch c.val[v] {
				case logic.Hi:
					vhd, vhp = w, w
				case logic.Lo:
					vld, vlp = w, w
				case logic.X:
					vhp, vlp = w, w
				}
			} else if s.inVicinity(v) {
				vhd, vld, vhp, vlp = s.hd[v], s.ld[v], s.hp[v], s.lp[v]
			} else {
				continue
			}
			if st == logic.Hi {
				// Definitely conducting: definite signals stay definite.
				if a := logic.Attenuate(vhd, g); a >= blk && a > bhd {
					bhd = a
				}
				if a := logic.Attenuate(vld, g); a >= blk && a > bld {
					bld = a
				}
			}
			// Possibly conducting (1 or X): possible signals flow.
			if a := logic.Attenuate(vhp, g); a >= blk && a > bhp {
				bhp = a
			}
			if a := logic.Attenuate(vlp, g); a >= blk && a > blp {
				blp = a
			}
		}
		if bhd > s.hd[u] || bld > s.ld[u] || bhp > s.hp[u] || blp > s.lp[u] {
			s.hd[u], s.ld[u], s.hp[u], s.lp[u] = bhd, bld, bhp, blp
			for _, e := range s.tab.ChannelOf(u) {
				if c.ts[e.T] == logic.Lo {
					continue
				}
				if v := e.Other; s.inVicinity(v) && s.relaxStamp[v] != s.relaxEpoch {
					s.relaxStamp[v] = s.relaxEpoch
					rq = append(rq, v)
				}
			}
		}
	}
	s.rq = rq[:0]

	s.work.RelaxSteps += relax

	// Decide new values.
	for i, u := range vic {
		switch {
		case s.hd[u] > s.lp[u]:
			newVal[i] = logic.Hi
		case s.ld[u] > s.hp[u]:
			newVal[i] = logic.Lo
		default:
			newVal[i] = logic.X
		}
	}
}

// solveVicinity1 is the single-node specialization of solveVicinity: over
// half of all vicinity solves in the RAM workloads are one storage node
// against its input-like neighborhood (a pass gate into a cell, a
// precharged line), where both relaxation fixpoints converge in a single
// improving pass. The computed value AND the work counters are exactly
// those the general loop produces on the same vicinity — an in-vicinity
// channel neighbor can only be the node itself, whose attenuated
// contribution never exceeds the running best — so the fast path changes
// constant factors only.
func (s *Solver) solveVicinity1(c *Circuit, u netlist.NodeID, newVal []logic.Value) {
	edges := s.tab.ChannelOf(u)

	// Phase 1: one pass computes the def fixpoint; a second (counted)
	// pass would only confirm it.
	relax := int64(1)
	def := s.tab.Charge[u]
	best := def
	for _, e := range edges {
		if c.ts[e.T] != logic.Hi {
			continue
		}
		if v := e.Other; c.IsInputLike(v) {
			if a := logic.Attenuate(s.tab.Charge[v], e.Drive); a > best {
				best = a
			}
		}
	}
	if best > def {
		relax++ // the general loop's confirming pass
	}
	s.def[u] = best

	// Phase 2: roots, then one pass over the edges; again a second pass
	// could only confirm.
	var hd, ld, hp, lp logic.Strength
	if ch := s.tab.Charge[u]; ch >= best {
		switch c.val[u] {
		case logic.Hi:
			hd, hp = ch, ch
		case logic.Lo:
			ld, lp = ch, ch
		case logic.X:
			hp, lp = ch, ch
		}
	}
	relax++
	bhd, bld, bhp, blp := hd, ld, hp, lp
	for _, e := range edges {
		st := c.ts[e.T]
		if st == logic.Lo {
			continue
		}
		v := e.Other
		if !c.IsInputLike(v) {
			continue
		}
		w := s.tab.Charge[v]
		var vhd, vld, vhp, vlp logic.Strength
		switch c.val[v] {
		case logic.Hi:
			vhd, vhp = w, w
		case logic.Lo:
			vld, vlp = w, w
		case logic.X:
			vhp, vlp = w, w
		}
		g := e.Drive
		if st == logic.Hi {
			if a := logic.Attenuate(vhd, g); a >= best && a > bhd {
				bhd = a
			}
			if a := logic.Attenuate(vld, g); a >= best && a > bld {
				bld = a
			}
		}
		if a := logic.Attenuate(vhp, g); a >= best && a > bhp {
			bhp = a
		}
		if a := logic.Attenuate(vlp, g); a >= best && a > blp {
			blp = a
		}
	}
	if bhd > hd || bld > ld || bhp > hp || blp > lp {
		relax++
	}
	s.hd[u], s.ld[u], s.hp[u], s.lp[u] = bhd, bld, bhp, blp
	s.work.RelaxSteps += relax

	switch {
	case bhd > blp:
		newVal[0] = logic.Hi
	case bld > bhp:
		newVal[0] = logic.Lo
	default:
		newVal[0] = logic.X
	}
}

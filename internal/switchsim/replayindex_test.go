package switchsim_test

import (
	"math/rand"
	"slices"
	"testing"

	"fmossim/internal/logic"
	"fmossim/internal/netlist"
	"fmossim/internal/switchsim"
	"fmossim/internal/testnet"
)

// staticDivSet mimics the batch engine's static interest neighborhood of a
// forced storage node: the node itself, its channel terminals, and the
// channel terminals of transistors it gates (storage nodes only).
func staticDivSet(nw *netlist.Network, n netlist.NodeID) []netlist.NodeID {
	seen := map[netlist.NodeID]bool{n: true}
	out := []netlist.NodeID{n}
	add := func(m netlist.NodeID) {
		if nw.Node(m).Kind != netlist.Input && !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	for _, t := range nw.Channel(n) {
		add(nw.Transistor(t).Other(n))
	}
	for _, t := range nw.GatedBy(n) {
		add(nw.Transistor(t).Source)
		add(nw.Transistor(t).Drain)
	}
	return out
}

// TestIndexedReplayMatchesScalar: property — for random structured
// circuits with random stuck-node faults, SettleReplayIndexed driven by a
// prebuilt word-packed ReplayIndex reproduces the scalar SettleReplay
// exactly: same values, same Changed/Explored sets in the same order, same
// round counts. Two faults share one index as separate lanes (different
// words and bit positions), checking cross-lane isolation of the packed
// static flags.
func TestIndexedReplayMatchesScalar(t *testing.T) {
	type lane struct {
		word            int
		bit             uint
		node            netlist.NodeID
		static          []netlist.NodeID
		scalar, indexed *switchsim.Circuit
		ssv, isv        *switchsim.Solver
	}
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tc := testnet.Structured(rng)
		nw := tc.Net
		tab := switchsim.NewTables(nw)

		good := switchsim.NewCircuit(tab)
		gsv := switchsim.NewSolver(tab)
		gsv.Record = true
		gsv.Init(good)

		var storage []netlist.NodeID
		for i := 0; i < nw.NumNodes(); i++ {
			n := netlist.NodeID(i)
			if nw.Node(n).Kind != netlist.Input {
				storage = append(storage, n)
			}
		}

		const words = 2
		lanes := []*lane{{word: 0, bit: 3}, {word: 1, bit: 37}}
		div := make([]uint64, nw.NumNodes()*words)
		for _, ln := range lanes {
			ln.node = storage[rng.Intn(len(storage))]
			val := logic.Value(rng.Intn(2))
			ln.static = staticDivSet(nw, ln.node)
			for _, u := range ln.static {
				div[int(u)*words+ln.word] |= 1 << ln.bit
			}
			ln.scalar = switchsim.NewCircuit(tab)
			ln.ssv = switchsim.NewSolver(tab)
			ln.indexed = switchsim.NewCircuit(tab)
			ln.isv = switchsim.NewSolver(tab)
			// Power-on with the fault present, both replicas identically.
			ln.scalar.ForceNode(ln.node, val)
			ln.indexed.ForceNode(ln.node, val)
			ln.ssv.SettleAll(ln.scalar)
			ln.isv.SettleAll(ln.indexed)
		}

		ix := switchsim.NewReplayIndex(tab)
		for step := 0; step < 8; step++ {
			set := tc.RandomSetting(rng, 10)
			resG := gsv.Step(good, set)
			traj := &gsv.Traj
			if resG.Oscillated {
				for _, ln := range lanes {
					ln.ssv.Settle(ln.scalar, ln.ssv.ApplySetting(ln.scalar, set))
					ln.isv.Settle(ln.indexed, ln.isv.ApplySetting(ln.indexed, set))
				}
				continue
			}
			ix.Build(traj, words, div, nil)
			for li, ln := range lanes {
				sSeeds := ln.ssv.ApplySetting(ln.scalar, set)
				ln.ssv.BeginReplay()
				for _, u := range ln.static {
					ln.ssv.SeedDiverged(u)
				}
				resS := ln.ssv.SettleReplay(ln.scalar, sSeeds, traj)

				iSeeds := ln.isv.ApplySetting(ln.indexed, set)
				resI := ln.isv.SettleReplayIndexed(ln.indexed, iSeeds, ix, ln.word, ln.bit)

				if resS.Rounds != resI.Rounds || resS.Oscillated != resI.Oscillated {
					t.Fatalf("seed %d step %d lane %d: rounds %d/%v vs %d/%v",
						seed, step, li, resS.Rounds, resS.Oscillated, resI.Rounds, resI.Oscillated)
				}
				if !slices.Equal(resS.Changed, resI.Changed) {
					t.Fatalf("seed %d step %d lane %d: Changed %v vs %v",
						seed, step, li, resS.Changed, resI.Changed)
				}
				if !slices.Equal(resS.Explored, resI.Explored) {
					t.Fatalf("seed %d step %d lane %d: Explored %v vs %v",
						seed, step, li, resS.Explored, resI.Explored)
				}
				for i := 0; i < nw.NumNodes(); i++ {
					id := netlist.NodeID(i)
					if ln.scalar.Value(id) != ln.indexed.Value(id) {
						t.Fatalf("seed %d step %d lane %d node %s: scalar %s vs indexed %s",
							seed, step, li, nw.Name(id), ln.scalar.Value(id), ln.indexed.Value(id))
					}
				}
			}
		}
	}
}

// TestIndexedReplayPureAdoption: a lane with no static divergence bits
// adopts the whole trajectory without solving a single vicinity, matching
// the good state exactly — the fast path the word packing exists to share.
func TestIndexedReplayPureAdoption(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tc := testnet.Structured(rng)
	nw := tc.Net
	tab := switchsim.NewTables(nw)

	good := switchsim.NewCircuit(tab)
	gsv := switchsim.NewSolver(tab)
	gsv.Record = true
	gsv.Init(good)

	shadow := switchsim.NewCircuit(tab)
	fsv := switchsim.NewSolver(tab)
	fsv.Init(shadow)

	const words = 1
	div := make([]uint64, nw.NumNodes()*words)
	ix := switchsim.NewReplayIndex(tab)

	for step := 0; step < 6; step++ {
		set := tc.RandomSetting(rng, 0)
		resG := gsv.Step(good, set)
		if resG.Oscillated {
			fsv.Settle(shadow, fsv.ApplySetting(shadow, set))
			continue
		}
		ix.Build(&gsv.Traj, words, div, nil)
		seeds := fsv.ApplySetting(shadow, set)
		w0 := fsv.Work()
		fsv.SettleReplayIndexed(shadow, seeds, ix, 0, 0)
		if d := fsv.Work().Sub(w0); d.Vicinities != 0 {
			t.Fatalf("step %d: pure adoption solved %d vicinities", step, d.Vicinities)
		}
		for i := 0; i < nw.NumNodes(); i++ {
			id := netlist.NodeID(i)
			if shadow.Value(id) != good.Value(id) {
				t.Fatalf("step %d node %s: %s vs good %s",
					step, nw.Name(id), shadow.Value(id), good.Value(id))
			}
		}
	}
}

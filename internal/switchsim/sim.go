package switchsim

import (
	"fmt"

	"fmossim/internal/logic"
	"fmossim/internal/netlist"
)

// Simulator is the user-facing switch-level logic simulator: one circuit,
// one solver, and convenience methods for driving test sequences. It is
// the MOSSIM-II-equivalent component of this library; the concurrent fault
// simulator in internal/core layers on the same kernel.
type Simulator struct {
	Tab     *Tables
	Circuit *Circuit
	Solver  *Solver

	// TraceFn, when non-nil, is called after every settled input setting
	// with the pattern/setting indexes (or -1 outside sequences).
	TraceFn func(pattern, setting int, c *Circuit)

	initialized bool
}

// NewSimulator builds a simulator over a finalized network.
func NewSimulator(nw *netlist.Network) *Simulator {
	tab := NewTables(nw)
	return &Simulator{
		Tab:     tab,
		Circuit: NewCircuit(tab),
		Solver:  NewSolver(tab),
	}
}

// Init resets and fully settles the circuit. Called automatically by the
// stepping methods if needed.
func (sim *Simulator) Init() SettleResult {
	sim.initialized = true
	return sim.Solver.Init(sim.Circuit)
}

func (sim *Simulator) ensureInit() {
	if !sim.initialized {
		sim.Init()
	}
}

// Set assigns named inputs and settles; the map form of Step.
func (sim *Simulator) Set(pairs map[string]logic.Value) (SettleResult, error) {
	setting, err := Vector(sim.Tab.Net, pairs)
	if err != nil {
		return SettleResult{}, err
	}
	return sim.Step(setting), nil
}

// MustSet is Set, panicking on error.
func (sim *Simulator) MustSet(pairs map[string]logic.Value) SettleResult {
	r, err := sim.Set(pairs)
	if err != nil {
		panic(err)
	}
	return r
}

// Step applies one input setting and settles, invoking TraceFn.
func (sim *Simulator) Step(setting Setting) SettleResult {
	sim.ensureInit()
	res := sim.Solver.Step(sim.Circuit, setting)
	if sim.TraceFn != nil {
		sim.TraceFn(-1, -1, sim.Circuit)
	}
	return res
}

// RunPattern applies every setting of one pattern.
func (sim *Simulator) RunPattern(p *Pattern) {
	sim.ensureInit()
	for i := range p.Settings {
		sim.Solver.Step(sim.Circuit, p.Settings[i])
		if sim.TraceFn != nil {
			sim.TraceFn(-1, i, sim.Circuit)
		}
	}
}

// RunSequence applies an entire test sequence.
func (sim *Simulator) RunSequence(seq *Sequence) {
	sim.ensureInit()
	for pi := range seq.Patterns {
		p := &seq.Patterns[pi]
		for si := range p.Settings {
			sim.Solver.Step(sim.Circuit, p.Settings[si])
			if sim.TraceFn != nil {
				sim.TraceFn(pi, si, sim.Circuit)
			}
		}
	}
}

// Value returns the state of the named node.
func (sim *Simulator) Value(name string) logic.Value {
	return sim.Circuit.ValueOf(name)
}

// Values returns the states of several named nodes.
func (sim *Simulator) Values(names ...string) []logic.Value {
	out := make([]logic.Value, len(names))
	for i, n := range names {
		out[i] = sim.Circuit.ValueOf(n)
	}
	return out
}

// Report formats a one-line state report of the named nodes.
func (sim *Simulator) Report(names ...string) string {
	s := ""
	for i, n := range names {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=%s", n, sim.Circuit.ValueOf(n))
	}
	return s
}

package switchsim

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"fmossim/internal/logic"
	"fmossim/internal/netlist"
)

// fakeRecording builds a small recording by hand, exercising every field.
func fakeRecording() *Recording {
	rec := &Recording{NumNodes: 16, NumTransistors: 9}
	rec.Steps = append(rec.Steps, StepTrace{
		Init:     true,
		Changed:  []Change{{Node: 3, Value: logic.Hi}, {Node: 5, Value: logic.X}},
		Explored: []netlist.NodeID{3, 5, 7},
		GoodWork: 1234,
		GoodNS:   99,
		Traj: &Trajectory{rounds: [][]VicTrace{
			{
				{Members: []netlist.NodeID{3, 5}, Changes: []Change{{Node: 3, Value: logic.Hi}}},
				{Members: []netlist.NodeID{7}},
			},
			{
				{Members: []netlist.NodeID{5}, Changes: []Change{{Node: 5, Value: logic.X}}},
			},
		}},
	})
	snap := make([]logic.Value, rec.NumNodes)
	for i := range snap {
		snap[i] = logic.Value(i % int(logic.X+1))
	}
	rec.Steps = append(rec.Steps, StepTrace{
		InputChanges: []Change{{Node: 0, Value: logic.Lo}},
		Explored:     []netlist.NodeID{2},
		Oscillated:   true,
		GoodWork:     55,
		Snapshot:     snap,
	})
	rec.Steps = append(rec.Steps, StepTrace{
		InputChanges: []Change{{Node: 1, Value: logic.Hi}},
		Changed:      []Change{{Node: 9, Value: logic.Lo}},
		Explored:     []netlist.NodeID{9},
		Traj:         &Trajectory{},
		GoodWork:     7,
	})
	return rec
}

func TestRecordingRoundTrip(t *testing.T) {
	rec := fakeRecording()
	var buf bytes.Buffer
	if err := rec.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRecording(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rec, got) {
		t.Fatalf("round trip mismatch:\nwant %+v\ngot  %+v", rec, got)
	}
	if rec.NumSettings() != 2 {
		t.Errorf("NumSettings = %d, want 2", rec.NumSettings())
	}
	if w := rec.GoodWork(); w != 1234+55+7 {
		t.Errorf("GoodWork = %d", w)
	}
	if got.SnapshotAt(1) == nil || got.SnapshotAt(0) != nil || got.SnapshotAt(99) != nil {
		t.Error("SnapshotAt: frame placement wrong after round trip")
	}
}

// TestRecordingDecodeV1 verifies the decoder still accepts the previous
// stream version (no snapshot frames).
func TestRecordingDecodeV1(t *testing.T) {
	rec := fakeRecording()
	for i := range rec.Steps {
		rec.Steps[i].Snapshot = nil
	}
	var buf bytes.Buffer
	if err := rec.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()
	copy(enc, recordingMagicV1)
	got, err := DecodeRecording(bytes.NewReader(enc))
	if err != nil {
		t.Fatalf("v1 stream rejected: %v", err)
	}
	if !reflect.DeepEqual(rec, got) {
		t.Fatal("v1 round trip mismatch")
	}
}

func TestRecordingDecodeErrors(t *testing.T) {
	rec := fakeRecording()
	var buf bytes.Buffer
	if err := rec.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()

	if _, err := DecodeRecording(strings.NewReader("NOTAREC1")); err == nil {
		t.Error("bad magic should fail")
	}
	if _, err := DecodeRecording(bytes.NewReader(enc[:len(enc)/2])); err == nil {
		t.Error("truncated stream should fail")
	}
	// Corrupt a node id beyond NumNodes: flip the first Changed node
	// entry to a large varint by corrupting bytes past the header; the
	// decoder must reject out-of-range ids rather than crash. A blunt
	// sweep over single-byte corruptions checks that no corruption
	// panics (many legitimately still decode).
	for i := len(recordingMagic); i < len(enc); i++ {
		mut := append([]byte(nil), enc...)
		mut[i] ^= 0xff
		DecodeRecording(bytes.NewReader(mut)) // must not panic
	}
}

func TestRecordingValidate(t *testing.T) {
	rec := fakeRecording()
	other := &Recording{NumNodes: 5, NumTransistors: 1, Steps: rec.Steps}
	// Build a real network with the matching fingerprint: 16 nodes, no
	// transistors... except fakeRecording claims 9 transistors, so adjust
	// the recording fingerprints to the built network instead.
	nw := netlist.New(logic.Scale{Sizes: 2, Strengths: 2})
	for i := 0; i < 16; i++ {
		if _, err := nw.AddStorage(nodeName(i), 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := nw.Finalize(); err != nil {
		t.Fatal(err)
	}
	rec.NumNodes, rec.NumTransistors = nw.NumNodes(), nw.NumTransistors()
	if err := rec.Validate(nw, 2); err != nil {
		t.Errorf("valid recording rejected: %v", err)
	}
	if err := rec.Validate(nw, 3); err == nil {
		t.Error("setting-count mismatch accepted")
	}
	if err := other.Validate(nw, 2); err == nil {
		t.Error("fingerprint mismatch accepted")
	}
	empty := &Recording{NumNodes: 16}
	if err := empty.Validate(nw, -1); err == nil {
		t.Error("empty recording accepted")
	}
}

func nodeName(i int) string {
	return string(rune('a'+i%26)) + string(rune('0'+i/26))
}

// The good-circuit trajectory as a first-class artifact.
//
// A Solver's per-settle Trajectory is borrowed scratch: it is overwritten
// by the next recording settle. A Recording promotes the full good-circuit
// run — the power-on initialization plus one StepTrace per input setting —
// to an owned, serializable value. Capturing it once decouples good-circuit
// simulation from faulty-circuit execution: any number of fault batches can
// replay the same Recording (adopting its trajectories, syncing their
// mirrors from its deltas, diffing against its change sets) without ever
// re-running the good-circuit solver.
package switchsim

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"slices"

	"fmossim/internal/logic"
	"fmossim/internal/netlist"
)

// StepTrace is the complete record of one good-circuit step — the power-on
// initialization or one input setting — carrying everything a faulty-batch
// consumer needs to execute the step without a good-circuit solver:
//
//   - InputChanges re-applies the setting to the consumer's mirrors
//     (assignments that matched the previous value are dropped: they
//     perturb nothing in any circuit, faulty ones included);
//   - Changed syncs the consumer's good-state and pre-step mirrors;
//   - Explored drives activity scheduling (the touched region);
//   - Traj is the settle trajectory faulty replays adopt from.
type StepTrace struct {
	// Init marks the power-on initialization step (Steps[0] of a
	// Recording): every storage node is perturbed and every fault active.
	Init bool
	// InputChanges lists the input nodes whose value changed this step,
	// with the new values.
	InputChanges []Change
	// Changed lists the storage nodes whose value changed during the
	// settle, with their post-step values.
	Changed []Change
	// Explored lists every storage node that was a member of any solved
	// vicinity (a superset of the Changed nodes).
	Explored []netlist.NodeID
	// Oscillated reports the settle hit the round limit; the trajectory is
	// then unreliable as an adoption oracle and consumers must fall back
	// to full replays for this step.
	Oscillated bool
	// Traj is the recorded settle trajectory (nil when not recorded or
	// when borrowed live from a non-recording path).
	Traj *Trajectory
	// Snapshot, when non-nil, is a full good-circuit state frame: every
	// node's value after this step, in node-id order. Frames let a
	// consumer fast-forward its good-state mirrors to this step in
	// O(nodes) instead of replaying every intermediate delta, which is
	// what makes mid-sequence batch resume cheap (see core.RunBatchFrom).
	// Captured every Options.SnapshotEvery settings by core.Record.
	Snapshot []logic.Value
	// GoodWork and GoodNS are the solver work units and wall-clock
	// nanoseconds the good-circuit settle consumed.
	GoodWork int64
	GoodNS   int64
}

// Recording is the captured good-circuit trajectory of an entire test
// sequence: Steps[0] is the initialization, Steps[1:] one entry per input
// setting in sequence order. It is immutable once captured and safe for
// concurrent replay by any number of consumers.
type Recording struct {
	// NumNodes and NumTransistors fingerprint the network the recording
	// was captured over; consumers refuse mismatched networks.
	NumNodes, NumTransistors int
	// Steps holds the per-step traces, initialization first.
	Steps []StepTrace
}

// NewRecording returns an empty recording fingerprinted for nw.
func NewRecording(nw *netlist.Network) *Recording {
	return &Recording{NumNodes: nw.NumNodes(), NumTransistors: nw.NumTransistors()}
}

// NumSettings returns the number of recorded input settings (the
// initialization step excluded).
func (r *Recording) NumSettings() int {
	if len(r.Steps) == 0 {
		return 0
	}
	return len(r.Steps) - 1
}

// GoodWork returns the total good-circuit solver work units captured in
// the recording, initialization included.
func (r *Recording) GoodWork() int64 {
	var t int64
	for i := range r.Steps {
		t += r.Steps[i].GoodWork
	}
	return t
}

// Validate checks the recording against a network fingerprint and an
// expected setting count (pass -1 to skip the count check).
func (r *Recording) Validate(nw *netlist.Network, settings int) error {
	if r.NumNodes != nw.NumNodes() || r.NumTransistors != nw.NumTransistors() {
		return fmt.Errorf("switchsim: recording fingerprint %d nodes/%d transistors does not match network (%d/%d)",
			r.NumNodes, r.NumTransistors, nw.NumNodes(), nw.NumTransistors())
	}
	if len(r.Steps) == 0 || !r.Steps[0].Init {
		return fmt.Errorf("switchsim: recording has no initialization step")
	}
	if settings >= 0 && r.NumSettings() != settings {
		return fmt.Errorf("switchsim: recording has %d settings, sequence needs %d", r.NumSettings(), settings)
	}
	return nil
}

// Append deep-copies a borrowed step trace (whose slices alias solver
// scratch) into the recording. The trajectory is cloned only when usable:
// an oscillated step's trajectory is never adopted, so it is dropped.
func (r *Recording) Append(t *StepTrace) {
	st := StepTrace{
		Init:         t.Init,
		InputChanges: slices.Clone(t.InputChanges),
		Changed:      slices.Clone(t.Changed),
		Explored:     slices.Clone(t.Explored),
		Oscillated:   t.Oscillated,
		GoodWork:     t.GoodWork,
		GoodNS:       t.GoodNS,
	}
	if t.Traj != nil && !t.Oscillated {
		st.Traj = t.Traj.Clone()
	}
	st.Snapshot = slices.Clone(t.Snapshot)
	r.Steps = append(r.Steps, st)
}

// SnapshotAt returns the state frame captured at step index step (0 is
// the initialization), or nil when that step carries none.
func (r *Recording) SnapshotAt(step int) []logic.Value {
	if step < 0 || step >= len(r.Steps) {
		return nil
	}
	return r.Steps[step].Snapshot
}

// Clone returns an owned deep copy of the trajectory, decoupled from the
// recording solver's reusable storage.
func (tr *Trajectory) Clone() *Trajectory {
	out := &Trajectory{rounds: make([][]VicTrace, len(tr.rounds))}
	for i, round := range tr.rounds {
		rr := make([]VicTrace, len(round))
		for j, vt := range round {
			rr[j] = VicTrace{
				Members: slices.Clone(vt.Members),
				Changes: slices.Clone(vt.Changes),
			}
		}
		out.rounds[i] = rr
	}
	return out
}

// Serialization: a compact varint-framed binary format, so a trajectory
// captured on one machine (or in one process) can be stored and replayed
// by later fault campaigns without re-simulating the good circuit.

// recordingMagic versions the on-disk format. Version 2 added optional
// per-step state snapshot frames (flagSnapshot); Encode always writes the
// current version, DecodeRecording accepts both (a v1 recording simply
// carries no frames).
const (
	recordingMagicV1 = "FMOSREC1"
	recordingMagic   = "FMOSREC2"
)

// Fingerprint returns the recording's content fingerprint: the lowercase
// hex SHA-256 of its Encode serialization. Two recordings share a
// fingerprint iff their encoded bytes are identical, so the fingerprint
// names a trajectory across process and machine boundaries — a
// distributed campaign coordinator uploads the encoded recording to each
// worker once and every shard job references it by fingerprint (see
// FingerprintBytes for hashing bytes already in hand).
func (r *Recording) Fingerprint() (string, error) {
	h := sha256.New()
	if err := r.Encode(h); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// FingerprintBytes returns the fingerprint of an already-encoded
// recording: the lowercase hex SHA-256 of data.
func FingerprintBytes(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

const (
	flagInit byte = 1 << iota
	flagOscillated
	flagTraj
	flagSnapshot // v2 only: the step carries a state frame
)

// Encode writes the recording in the versioned binary format.
func (r *Recording) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(recordingMagic); err != nil {
		return err
	}
	putUvarint(bw, uint64(r.NumNodes))
	putUvarint(bw, uint64(r.NumTransistors))
	putUvarint(bw, uint64(len(r.Steps)))
	for i := range r.Steps {
		st := &r.Steps[i]
		var flags byte
		if st.Init {
			flags |= flagInit
		}
		if st.Oscillated {
			flags |= flagOscillated
		}
		if st.Traj != nil {
			flags |= flagTraj
		}
		if st.Snapshot != nil {
			flags |= flagSnapshot
		}
		bw.WriteByte(flags)
		putUvarint(bw, uint64(st.GoodWork))
		putUvarint(bw, uint64(st.GoodNS))
		putChanges(bw, st.InputChanges)
		putChanges(bw, st.Changed)
		putUvarint(bw, uint64(len(st.Explored)))
		for _, n := range st.Explored {
			putUvarint(bw, uint64(n))
		}
		if st.Traj != nil {
			putUvarint(bw, uint64(len(st.Traj.rounds)))
			for _, round := range st.Traj.rounds {
				putUvarint(bw, uint64(len(round)))
				for _, vt := range round {
					putUvarint(bw, uint64(len(vt.Members)))
					for _, n := range vt.Members {
						putUvarint(bw, uint64(n))
					}
					putChanges(bw, vt.Changes)
				}
			}
		}
		if st.Snapshot != nil {
			// One value byte per node; the length is written so a decoder
			// can reject a frame that does not match the header's node
			// count without trusting it.
			putUvarint(bw, uint64(len(st.Snapshot)))
			for _, v := range st.Snapshot {
				bw.WriteByte(byte(v))
			}
		}
	}
	return bw.Flush()
}

// DecodeRecording reads a recording previously written by Encode.
func DecodeRecording(r io.Reader) (*Recording, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(recordingMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("switchsim: reading recording header: %w", err)
	}
	if string(magic) != recordingMagic && string(magic) != recordingMagicV1 {
		return nil, fmt.Errorf("switchsim: not a recording (bad magic %q)", magic)
	}
	d := &decoder{br: br}
	rec := &Recording{
		NumNodes:       int(d.uvarint()),
		NumTransistors: int(d.uvarint()),
	}
	nSteps := int(d.uvarint())
	if d.err == nil && (nSteps < 0 || nSteps > 1<<28) {
		return nil, fmt.Errorf("switchsim: recording step count %d out of range", nSteps)
	}
	maxNode := uint64(rec.NumNodes)
	// Preallocation is bounded: a corrupt header must not provoke a huge
	// up-front allocation; append grows the rest incrementally while the
	// decoder validates each step.
	rec.Steps = make([]StepTrace, 0, min(nSteps, 4096))
	for i := 0; i < nSteps && d.err == nil; i++ {
		flags := d.byte()
		st := StepTrace{
			Init:       flags&flagInit != 0,
			Oscillated: flags&flagOscillated != 0,
			GoodWork:   int64(d.uvarint()),
			GoodNS:     int64(d.uvarint()),
		}
		st.InputChanges = d.changes(maxNode)
		st.Changed = d.changes(maxNode)
		st.Explored = d.nodes(maxNode)
		if flags&flagTraj != 0 {
			nRounds := int(d.uvarint())
			traj := &Trajectory{}
			for r := 0; r < nRounds && d.err == nil; r++ {
				nVics := int(d.uvarint())
				var round []VicTrace
				for v := 0; v < nVics && d.err == nil; v++ {
					round = append(round, VicTrace{
						Members: d.nodes(maxNode),
						Changes: d.changes(maxNode),
					})
				}
				traj.rounds = append(traj.rounds, round)
			}
			st.Traj = traj
		}
		if flags&flagSnapshot != 0 {
			// A v1 recording never sets this bit (the format predates it);
			// if one does, the byte stream is corrupt and the frame decode
			// below fails on length or value validation anyway.
			st.Snapshot = d.snapshot(maxNode)
		}
		rec.Steps = append(rec.Steps, st)
	}
	if d.err != nil {
		return nil, fmt.Errorf("switchsim: decoding recording: %w", d.err)
	}
	return rec, nil
}

func putUvarint(bw *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	bw.Write(buf[:binary.PutUvarint(buf[:], v)])
}

func putChanges(bw *bufio.Writer, chs []Change) {
	putUvarint(bw, uint64(len(chs)))
	for _, ch := range chs {
		putUvarint(bw, uint64(ch.Node))
		bw.WriteByte(byte(ch.Value))
	}
}

// decoder wraps the varint reads with sticky error handling and node-range
// validation.
type decoder struct {
	br  *bufio.Reader
	err error
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(d.br)
	if err != nil {
		d.err = err
	}
	return v
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	b, err := d.br.ReadByte()
	if err != nil {
		d.err = err
	}
	return b
}

func (d *decoder) node(maxNode uint64) netlist.NodeID {
	v := d.uvarint()
	if d.err == nil && v >= maxNode {
		d.err = fmt.Errorf("node id %d out of range (%d nodes)", v, maxNode)
	}
	return netlist.NodeID(v)
}

func (d *decoder) nodes(maxNode uint64) []netlist.NodeID {
	n := int(d.uvarint())
	if d.err != nil || n == 0 {
		return nil
	}
	if uint64(n) > maxNode {
		d.err = fmt.Errorf("node list length %d exceeds node count %d", n, maxNode)
		return nil
	}
	out := make([]netlist.NodeID, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		out = append(out, d.node(maxNode))
	}
	return out
}

// snapshot decodes one state frame: exactly one value byte per node.
func (d *decoder) snapshot(maxNode uint64) []logic.Value {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n != maxNode {
		d.err = fmt.Errorf("snapshot frame has %d values, network has %d nodes", n, maxNode)
		return nil
	}
	out := make([]logic.Value, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		v := logic.Value(d.byte())
		if d.err == nil && v > logic.X {
			d.err = fmt.Errorf("bad snapshot value %d", v)
		}
		out = append(out, v)
	}
	return out
}

func (d *decoder) changes(maxNode uint64) []Change {
	n := int(d.uvarint())
	if d.err != nil || n == 0 {
		return nil
	}
	if uint64(n) > maxNode {
		d.err = fmt.Errorf("change list length %d exceeds node count %d", n, maxNode)
		return nil
	}
	out := make([]Change, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		node := d.node(maxNode)
		v := logic.Value(d.byte())
		if d.err == nil && v > logic.X {
			d.err = fmt.Errorf("bad logic value %d", v)
		}
		out = append(out, Change{Node: node, Value: v})
	}
	return out
}

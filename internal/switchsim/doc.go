// Package switchsim implements the switch-level simulation kernel shared
// by the logic simulator (MOSSIM-II equivalent) and the concurrent fault
// simulator (FMOSSIM, internal/core).
//
// The kernel computes the behavior of a circuit for each change in network
// inputs by repeatedly computing the steady-state response of the network
// until a stable state is reached. Only node states in the vicinity of a
// perturbed node are computed, where a node is perturbed if it is the
// source or drain of a transistor that has changed state, or if it is
// connected by a conducting transistor to an input node that has changed
// state. The vicinity of a node is the set of storage nodes connected by
// paths of conducting (state 1 or X) transistors that do not pass through
// input nodes: the model's dynamic locality.
//
// The main components:
//
//   - Tables: immutable per-network structure (CSR adjacency, input
//     flags), built once and safely shared by any number of circuits,
//     solvers, batches, and server jobs.
//   - Circuit: the dynamic state of one circuit instance.
//   - Solver: the steady-state settling engine, including the
//     trajectory-guided replay path (SettleReplay) faulty circuits use to
//     adopt provably identical regions of the good circuit's settle.
//   - Simulator: the user-facing logic simulator driving test sequences.
//   - Recording/StepTrace: the serializable trajectory artifact described
//     below.
//   - LanePlanes and ReplayIndex: word-packed lane primitives for the
//     concurrent fault simulator — a two-plane ternary encoding holding
//     one value for each of up to 64 circuits per 64-bit word, and a
//     per-setting index whose flag-then-mark closure over a recording's
//     trajectories is built once per lane word and shared by every
//     circuit in it (internal/core packs faulty circuits into lanes;
//     see that package's doc for the lane lifecycle).
//
// # Recording fingerprint contract
//
// A Recording is the good circuit's captured trajectory over one test
// sequence: per-setting input deltas, changed and explored sets, the
// initialization settle, and the per-vicinity adoption trajectories. It
// is bound to the exact network and sequence it was captured over, and it
// carries a structural fingerprint — the network's node and transistor
// counts plus the recording's setting count — that Validate checks
// against the replaying network and sequence before any use. Encode and
// DecodeRecording round-trip the artifact through a varint binary format,
// fingerprint included, so a recording captured in one process replays
// in another (or on another machine) with the same validation and the
// same results. The fingerprint is deliberately structural rather than
// content-addressed: two networks with equal shape but different
// connectivity defeat it, so callers shipping recordings across trust
// boundaries should pair them with their netlist source.
package switchsim

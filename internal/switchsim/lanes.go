// Two-plane lane encoding: up to 64 ternary values packed into a pair of
// bit-planes, one lane per bit position. The concurrent simulator groups
// fault circuits into lane words so that membership and divergence tests
// against the good circuit run word-wide (one AND/XOR per 64 circuits)
// instead of once per circuit.
//
// Encoding (canonical form):
//
//	value  V-plane bit  X-plane bit
//	 Lo        0            0
//	 Hi        1            0
//	 X         0            1
//
// The canonical form keeps the V bit clear wherever the X bit is set, so
// equality is a plain two-plane compare and the X plane doubles as the
// "indeterminate" mask (the strength/validity plane: a set X bit means the
// lane carries no definite voltage). Lanes not covered by a caller-side
// membership mask hold (0,0); callers must mask results accordingly.
package switchsim

import "fmossim/internal/logic"

// LanePlanes packs up to 64 ternary values as two bit-planes.
type LanePlanes struct {
	// V is the value plane: bit i set means lane i holds Hi.
	V uint64
	// X is the indeterminate plane: bit i set means lane i holds X
	// (and the corresponding V bit is clear, by canonical form).
	X uint64
}

// Set stores val into lane bit (0..63), preserving canonical form.
func (p *LanePlanes) Set(bit uint, val logic.Value) {
	m := uint64(1) << bit
	switch val {
	case logic.Hi:
		p.V |= m
		p.X &^= m
	case logic.Lo:
		p.V &^= m
		p.X &^= m
	default:
		p.V &^= m
		p.X |= m
	}
}

// Clear resets lane bit to the zero (Lo) encoding.
func (p *LanePlanes) Clear(bit uint) {
	m := uint64(1) << bit
	p.V &^= m
	p.X &^= m
}

// Get returns the value in lane bit.
func (p LanePlanes) Get(bit uint) logic.Value {
	if p.X>>bit&1 != 0 {
		return logic.X
	}
	if p.V>>bit&1 != 0 {
		return logic.Hi
	}
	return logic.Lo
}

// EqMask returns the lanes where p and q hold equal values. With the
// canonical encoding two values are equal exactly when both planes agree.
func (p LanePlanes) EqMask(q LanePlanes) uint64 {
	return ^(p.V ^ q.V) & ^(p.X ^ q.X)
}

// EqValueMask returns the lanes where p equals the broadcast value v.
func (p LanePlanes) EqValueMask(v logic.Value) uint64 {
	switch v {
	case logic.Hi:
		return p.V & ^p.X
	case logic.Lo:
		return ^p.V & ^p.X
	default:
		return p.X
	}
}

// DefiniteMask returns the lanes holding a definite (Lo or Hi) value.
func (p LanePlanes) DefiniteMask() uint64 { return ^p.X }

// Not returns the lane-wise ternary complement: Lo↔Hi, X→X.
func (p LanePlanes) Not() LanePlanes {
	return LanePlanes{V: ^p.V & ^p.X, X: p.X}
}

// Lub returns the lane-wise least upper bound in the information ordering:
// equal values stay, differing values resolve to X (logic.Lub).
func (p LanePlanes) Lub(q LanePlanes) LanePlanes {
	eq := p.EqMask(q)
	return LanePlanes{V: p.V & eq, X: ^eq | p.X}
}

// CoversMask returns the lanes where p covers q in the information
// ordering (logic.Covers): p equals q, or p is X.
func (p LanePlanes) CoversMask(q LanePlanes) uint64 {
	return p.EqMask(q) | p.X
}

// Broadcast returns planes holding v in every lane.
func Broadcast(v logic.Value) LanePlanes {
	switch v {
	case logic.Hi:
		return LanePlanes{V: ^uint64(0)}
	case logic.Lo:
		return LanePlanes{}
	default:
		return LanePlanes{X: ^uint64(0)}
	}
}

// Canonical reports whether p is in canonical form (no lane has both the
// V and X bits set). All constructors in this package preserve it.
func (p LanePlanes) Canonical() bool { return p.V&p.X == 0 }

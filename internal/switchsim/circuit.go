package switchsim

import (
	"fmt"

	"fmossim/internal/logic"
	"fmossim/internal/netlist"
)

// Tables holds per-network constant lookups shared by all circuits over
// the same network: the strength-scale positions of node charges and
// transistor drives, plus flat CSR adjacency so the settling kernels walk
// contiguous edge records instead of chasing netlist structs.
type Tables struct {
	Net *netlist.Network
	// Charge[n] is the charge strength κ of storage node n, or ω for an
	// input node.
	Charge []logic.Strength
	// Drive[t] is the drive strength γ of transistor t.
	Drive []logic.Strength

	// isInput[n] reports a declared input node (ω source).
	isInput []bool

	// Channel adjacency: for node n, chanEdges[chanOff[n]:chanOff[n+1]]
	// lists the transistors on whose channel n lies, with the opposite
	// terminal and the drive strength inlined.
	chanOff   []int32
	chanEdges []ChanEdge
	// Gate adjacency: for node n, gateEdges[gateOff[n]:gateOff[n+1]]
	// lists the transistors gated by n, with type and both channel
	// terminals inlined.
	gateOff   []int32
	gateEdges []GateEdge
}

// ChanEdge is one flattened channel-adjacency record.
type ChanEdge struct {
	T     netlist.TransID
	Other netlist.NodeID
	Drive logic.Strength
}

// GateEdge is one flattened gate-adjacency record.
type GateEdge struct {
	T        netlist.TransID
	Src, Drn netlist.NodeID
	Typ      logic.TransistorType
}

// NewTables precomputes strength tables for a finalized network.
func NewTables(nw *netlist.Network) *Tables {
	if !nw.Finalized() {
		panic("switchsim: network not finalized")
	}
	tab := &Tables{
		Net:     nw,
		Charge:  make([]logic.Strength, nw.NumNodes()),
		Drive:   make([]logic.Strength, nw.NumTransistors()),
		isInput: make([]bool, nw.NumNodes()),
		chanOff: make([]int32, nw.NumNodes()+1),
		gateOff: make([]int32, nw.NumNodes()+1),
	}
	for i := 0; i < nw.NumNodes(); i++ {
		tab.Charge[i] = nw.ChargeStrength(netlist.NodeID(i))
		tab.isInput[i] = nw.Node(netlist.NodeID(i)).Kind == netlist.Input
	}
	for i := 0; i < nw.NumTransistors(); i++ {
		tab.Drive[i] = nw.DriveStrength(netlist.TransID(i))
	}
	for i := 0; i < nw.NumNodes(); i++ {
		n := netlist.NodeID(i)
		for _, t := range nw.Channel(n) {
			tab.chanEdges = append(tab.chanEdges, ChanEdge{
				T:     t,
				Other: nw.Transistor(t).Other(n),
				Drive: tab.Drive[t],
			})
		}
		tab.chanOff[i+1] = int32(len(tab.chanEdges))
		for _, t := range nw.GatedBy(n) {
			tr := nw.Transistor(t)
			tab.gateEdges = append(tab.gateEdges, GateEdge{
				T:   t,
				Src: tr.Source,
				Drn: tr.Drain,
				Typ: tr.Type,
			})
		}
		tab.gateOff[i+1] = int32(len(tab.gateEdges))
	}
	return tab
}

// ChannelOf returns node n's flattened channel adjacency.
func (tab *Tables) ChannelOf(n netlist.NodeID) []ChanEdge {
	return tab.chanEdges[tab.chanOff[n]:tab.chanOff[n+1]]
}

// GatedByOf returns node n's flattened gate adjacency.
func (tab *Tables) GatedByOf(n netlist.NodeID) []GateEdge {
	return tab.gateEdges[tab.gateOff[n]:tab.gateOff[n+1]]
}

// IsInput reports whether n is a declared input node.
func (tab *Tables) IsInput(n netlist.NodeID) bool { return tab.isInput[n] }

const (
	unpinned = int8(-1)
	unforced = int8(-1)
)

// Circuit is the dynamic state of one circuit instance (good or faulty):
// node values, transistor conduction states, and the fault pins applied to
// this instance. Multiple Circuits may share one Tables.
type Circuit struct {
	Tab *Tables

	// val[n] is the current state of node n.
	val []logic.Value
	// ts[t] is the current conduction state of transistor t.
	ts []logic.Value

	// pinTrans[t] pins transistor t's conduction state (stuck-open = 0,
	// stuck-closed = 1), or unpinned. Per the paper, a transistor fault
	// leaves the strength unchanged.
	pinTrans []int8
	// forceNode[n] makes node n behave as an input node set to the given
	// state (node stuck-at faults), or unforced.
	forceNode []int8
	// nPins/nForces track whether any pins exist, to fast-path the good
	// circuit.
	nPins, nForces int

	// inputLike[n] caches forceNode[n] != unforced || declared-input:
	// the settling kernels test it once per edge walk.
	inputLike []bool

	// seedBuf is the reusable perturbation buffer returned by SetInput,
	// ForceNode, PinTransistor and friends: valid until the next mutating
	// call on this circuit.
	seedBuf []netlist.NodeID
}

// NewCircuit allocates a circuit over the given tables with all nodes at
// their declared initial states.
func NewCircuit(tab *Tables) *Circuit {
	c := &Circuit{
		Tab:       tab,
		val:       make([]logic.Value, tab.Net.NumNodes()),
		ts:        make([]logic.Value, tab.Net.NumTransistors()),
		pinTrans:  make([]int8, tab.Net.NumTransistors()),
		forceNode: make([]int8, tab.Net.NumNodes()),
		inputLike: append([]bool(nil), tab.isInput...),
	}
	for i := range c.pinTrans {
		c.pinTrans[i] = unpinned
	}
	for i := range c.forceNode {
		c.forceNode[i] = unforced
	}
	c.Reset()
	return c
}

// Reset restores declared initial states (inputs to Init, storage to X,
// forced nodes to their pins) and recomputes all transistor states. Fault
// pins are preserved; use ClearFaults to remove them.
func (c *Circuit) Reset() {
	nw := c.Tab.Net
	for i := 0; i < nw.NumNodes(); i++ {
		if c.forceNode[i] != unforced {
			c.val[i] = logic.Value(c.forceNode[i])
			continue
		}
		n := nw.Node(netlist.NodeID(i))
		if n.Kind == netlist.Input {
			c.val[i] = n.Init
		} else {
			c.val[i] = logic.X
		}
	}
	c.RecomputeTransistors()
}

// RecomputeTransistors derives every transistor's conduction state from
// its gate node (or pin).
func (c *Circuit) RecomputeTransistors() {
	nw := c.Tab.Net
	for i := 0; i < nw.NumTransistors(); i++ {
		c.ts[i] = c.transistorState(netlist.TransID(i))
	}
}

func (c *Circuit) transistorState(t netlist.TransID) logic.Value {
	if c.pinTrans[t] != unpinned {
		return logic.Value(c.pinTrans[t])
	}
	tr := c.Tab.Net.Transistor(t)
	return logic.SwitchState(tr.Type, c.val[tr.Gate])
}

// Value returns the current state of node n.
func (c *Circuit) Value(n netlist.NodeID) logic.Value { return c.val[n] }

// ValueOf returns the current state of the named node.
func (c *Circuit) ValueOf(name string) logic.Value {
	return c.val[c.Tab.Net.MustLookup(name)]
}

// TransState returns the current conduction state of transistor t.
func (c *Circuit) TransState(t netlist.TransID) logic.Value { return c.ts[t] }

// IsInputLike reports whether node n acts as a signal source: a declared
// input node or a node forced by a stuck-at fault.
func (c *Circuit) IsInputLike(n netlist.NodeID) bool {
	return c.inputLike[n]
}

// PinTransistor pins transistor t's conduction state (stuck-open: Lo,
// stuck-closed: Hi) and returns the storage-node terminals perturbed by
// the change, which the caller should settle. The returned slice is
// reusable scratch, valid until the next mutating call on this circuit.
func (c *Circuit) PinTransistor(t netlist.TransID, state logic.Value) []netlist.NodeID {
	if c.pinTrans[t] == unpinned {
		c.nPins++
	}
	c.pinTrans[t] = int8(state)
	c.seedBuf = c.applyTransState(t, c.seedBuf[:0])
	return c.seedBuf
}

// UnpinTransistor removes a pin, returning perturbed terminals.
func (c *Circuit) UnpinTransistor(t netlist.TransID) []netlist.NodeID {
	if c.pinTrans[t] != unpinned {
		c.nPins--
	}
	c.pinTrans[t] = unpinned
	c.seedBuf = c.applyTransState(t, c.seedBuf[:0])
	return c.seedBuf
}

// applyTransState recomputes transistor t's conduction state and appends
// the perturbed storage-node terminals to buf.
func (c *Circuit) applyTransState(t netlist.TransID, buf []netlist.NodeID) []netlist.NodeID {
	ns := c.transistorState(t)
	if ns == c.ts[t] {
		return buf
	}
	c.ts[t] = ns
	tr := c.Tab.Net.Transistor(t)
	if !c.IsInputLike(tr.Source) {
		buf = append(buf, tr.Source)
	}
	if !c.IsInputLike(tr.Drain) {
		buf = append(buf, tr.Drain)
	}
	return buf
}

// ForceNode pins node n to a state: n behaves as an input node set to the
// specified state (a node stuck-at fault). Returns perturbed nodes: n's
// conducting neighbors plus terminals of transistors n gates.
func (c *Circuit) ForceNode(n netlist.NodeID, state logic.Value) []netlist.NodeID {
	if c.forceNode[n] == unforced {
		c.nForces++
	}
	c.forceNode[n] = int8(state)
	c.inputLike[n] = true
	return c.setNodeValue(n, state)
}

// UnforceNode removes a node force. The node keeps the forced value as
// charge until the network next drives it.
func (c *Circuit) UnforceNode(n netlist.NodeID) []netlist.NodeID {
	if c.forceNode[n] != unforced {
		c.nForces--
	}
	c.forceNode[n] = unforced
	c.inputLike[n] = c.Tab.isInput[n]
	// The node's stored value is now ordinary charge; neighbors must
	// re-settle since the strong source disappeared.
	return c.perturbAround(n)
}

// Faulty reports whether this circuit carries any pins or forces.
func (c *Circuit) Faulty() bool { return c.nPins > 0 || c.nForces > 0 }

// ClearFaults removes every pin and force.
func (c *Circuit) ClearFaults() {
	for i := range c.pinTrans {
		c.pinTrans[i] = unpinned
	}
	for i := range c.forceNode {
		c.forceNode[i] = unforced
	}
	copy(c.inputLike, c.Tab.isInput)
	c.nPins, c.nForces = 0, 0
}

// SetInput assigns a value to an input node and returns the perturbed
// storage nodes. Assigning a forced (faulted) input is a no-op: the fault
// wins, exactly as a stuck line ignores its driver.
func (c *Circuit) SetInput(n netlist.NodeID, v logic.Value) []netlist.NodeID {
	if c.forceNode[n] != unforced {
		return nil
	}
	if c.Tab.Net.Node(n).Kind != netlist.Input {
		panic(fmt.Sprintf("switchsim: SetInput on storage node %q", c.Tab.Net.Name(n)))
	}
	return c.setNodeValue(n, v)
}

// setNodeValue writes a source-node value and computes the perturbation
// set: terminals of gated transistors whose state changed, plus storage
// nodes connected to n by a conducting transistor.
func (c *Circuit) setNodeValue(n netlist.NodeID, v logic.Value) []netlist.NodeID {
	if c.val[n] == v {
		return nil
	}
	c.val[n] = v
	return c.perturbAround(n)
}

func (c *Circuit) perturbAround(n netlist.NodeID) []netlist.NodeID {
	seeds := c.seedBuf[:0]
	// Transistors gated by n change conduction state.
	for _, e := range c.Tab.GatedByOf(n) {
		seeds = c.applyTransState(e.T, seeds)
	}
	// Storage nodes connected to n by a conducting (1 or X) transistor
	// are perturbed by the new source value.
	for _, e := range c.Tab.ChannelOf(n) {
		if c.ts[e.T] == logic.Lo {
			continue
		}
		if !c.IsInputLike(e.Other) {
			seeds = append(seeds, e.Other)
		}
	}
	if !c.IsInputLike(n) {
		seeds = append(seeds, n)
	}
	c.seedBuf = seeds
	return seeds
}

// OverrideValue writes a node value directly, without perturbation
// bookkeeping or transistor updates. Used by the concurrent simulator to
// overlay divergence records onto a copied good state; callers must
// follow up with RefreshGates for every overridden node.
func (c *Circuit) OverrideValue(n netlist.NodeID, v logic.Value) {
	c.val[n] = v
}

// RefreshGates recomputes the conduction states of the transistors gated
// by node n from its current value (and any pins).
func (c *Circuit) RefreshGates(n netlist.NodeID) {
	gv := c.val[n]
	gates := c.Tab.GatedByOf(n)
	if c.nPins == 0 {
		// No pinned transistors anywhere (the common case: the good
		// circuit always, faulty circuits for every node fault) — skip the
		// per-transistor pin probe.
		for _, e := range gates {
			c.ts[e.T] = logic.SwitchState(e.Typ, gv)
		}
		return
	}
	for _, e := range gates {
		if p := c.pinTrans[e.T]; p != unpinned {
			c.ts[e.T] = logic.Value(p)
			continue
		}
		c.ts[e.T] = logic.SwitchState(e.Typ, gv)
	}
}

// DropForce removes a node force without touching the node's value,
// perturbation bookkeeping, or transistor states: the materialization-undo
// counterpart of ForceNode. Callers restore the value separately.
func (c *Circuit) DropForce(n netlist.NodeID) {
	if c.forceNode[n] != unforced {
		c.nForces--
		c.forceNode[n] = unforced
		c.inputLike[n] = c.Tab.isInput[n]
	}
}

// DropPin removes a transistor pin and recomputes the transistor's
// conduction state from its (already restored) gate value: the
// materialization-undo counterpart of PinTransistor.
func (c *Circuit) DropPin(t netlist.TransID) {
	if c.pinTrans[t] != unpinned {
		c.nPins--
		c.pinTrans[t] = unpinned
	}
	c.ts[t] = c.transistorState(t)
}

// StateEquals reports whether c and o hold identical node values,
// transistor states, and fault pins. Used by tests to verify the
// concurrent simulator's scratch-mirror invariant.
func (c *Circuit) StateEquals(o *Circuit) bool {
	if c.Tab != o.Tab || c.nPins != o.nPins || c.nForces != o.nForces {
		return false
	}
	for i := range c.val {
		if c.val[i] != o.val[i] || c.forceNode[i] != o.forceNode[i] {
			return false
		}
	}
	for i := range c.ts {
		if c.ts[i] != o.ts[i] || c.pinTrans[i] != o.pinTrans[i] {
			return false
		}
	}
	return true
}

// CopyStateFrom copies node values and transistor states from src, which
// must share the same Tables. Pins and forces are not copied; callers
// overlay them afterwards. This is the materialization step the concurrent
// simulator uses to build a faulty circuit's view from the good circuit.
func (c *Circuit) CopyStateFrom(src *Circuit) {
	if c.Tab != src.Tab {
		panic("switchsim: CopyStateFrom across different networks")
	}
	copy(c.val, src.val)
	copy(c.ts, src.ts)
}

// Snapshot returns a copy of all node values (for tests and traces).
func (c *Circuit) Snapshot() []logic.Value {
	out := make([]logic.Value, len(c.val))
	copy(out, c.val)
	return out
}

// LoadState overwrites every node value from a state frame (as returned
// by Snapshot) and rederives all transistor states: the O(nodes)
// fast-forward a replay consumer uses to jump its fault-free mirrors to a
// recorded mid-sequence snapshot. The circuit must carry no pins or
// forces — frames describe the good circuit only.
func (c *Circuit) LoadState(vals []logic.Value) {
	if len(vals) != len(c.val) {
		panic(fmt.Sprintf("switchsim: LoadState frame has %d values, circuit has %d nodes", len(vals), len(c.val)))
	}
	if c.Faulty() {
		panic("switchsim: LoadState into a faulted circuit")
	}
	copy(c.val, vals)
	c.RecomputeTransistors()
}

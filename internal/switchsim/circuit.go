package switchsim

import (
	"fmt"

	"fmossim/internal/logic"
	"fmossim/internal/netlist"
)

// Tables holds per-network constant lookups shared by all circuits over
// the same network: the strength-scale positions of node charges and
// transistor drives.
type Tables struct {
	Net *netlist.Network
	// Charge[n] is the charge strength κ of storage node n, or ω for an
	// input node.
	Charge []logic.Strength
	// Drive[t] is the drive strength γ of transistor t.
	Drive []logic.Strength
}

// NewTables precomputes strength tables for a finalized network.
func NewTables(nw *netlist.Network) *Tables {
	if !nw.Finalized() {
		panic("switchsim: network not finalized")
	}
	tab := &Tables{
		Net:    nw,
		Charge: make([]logic.Strength, nw.NumNodes()),
		Drive:  make([]logic.Strength, nw.NumTransistors()),
	}
	for i := 0; i < nw.NumNodes(); i++ {
		tab.Charge[i] = nw.ChargeStrength(netlist.NodeID(i))
	}
	for i := 0; i < nw.NumTransistors(); i++ {
		tab.Drive[i] = nw.DriveStrength(netlist.TransID(i))
	}
	return tab
}

const (
	unpinned = int8(-1)
	unforced = int8(-1)
)

// Circuit is the dynamic state of one circuit instance (good or faulty):
// node values, transistor conduction states, and the fault pins applied to
// this instance. Multiple Circuits may share one Tables.
type Circuit struct {
	Tab *Tables

	// val[n] is the current state of node n.
	val []logic.Value
	// ts[t] is the current conduction state of transistor t.
	ts []logic.Value

	// pinTrans[t] pins transistor t's conduction state (stuck-open = 0,
	// stuck-closed = 1), or unpinned. Per the paper, a transistor fault
	// leaves the strength unchanged.
	pinTrans []int8
	// forceNode[n] makes node n behave as an input node set to the given
	// state (node stuck-at faults), or unforced.
	forceNode []int8
	// nPins/nForces track whether any pins exist, to fast-path the good
	// circuit.
	nPins, nForces int
}

// NewCircuit allocates a circuit over the given tables with all nodes at
// their declared initial states.
func NewCircuit(tab *Tables) *Circuit {
	c := &Circuit{
		Tab:       tab,
		val:       make([]logic.Value, tab.Net.NumNodes()),
		ts:        make([]logic.Value, tab.Net.NumTransistors()),
		pinTrans:  make([]int8, tab.Net.NumTransistors()),
		forceNode: make([]int8, tab.Net.NumNodes()),
	}
	for i := range c.pinTrans {
		c.pinTrans[i] = unpinned
	}
	for i := range c.forceNode {
		c.forceNode[i] = unforced
	}
	c.Reset()
	return c
}

// Reset restores declared initial states (inputs to Init, storage to X,
// forced nodes to their pins) and recomputes all transistor states. Fault
// pins are preserved; use ClearFaults to remove them.
func (c *Circuit) Reset() {
	nw := c.Tab.Net
	for i := 0; i < nw.NumNodes(); i++ {
		if c.forceNode[i] != unforced {
			c.val[i] = logic.Value(c.forceNode[i])
			continue
		}
		n := nw.Node(netlist.NodeID(i))
		if n.Kind == netlist.Input {
			c.val[i] = n.Init
		} else {
			c.val[i] = logic.X
		}
	}
	c.RecomputeTransistors()
}

// RecomputeTransistors derives every transistor's conduction state from
// its gate node (or pin).
func (c *Circuit) RecomputeTransistors() {
	nw := c.Tab.Net
	for i := 0; i < nw.NumTransistors(); i++ {
		c.ts[i] = c.transistorState(netlist.TransID(i))
	}
}

func (c *Circuit) transistorState(t netlist.TransID) logic.Value {
	if c.pinTrans[t] != unpinned {
		return logic.Value(c.pinTrans[t])
	}
	tr := c.Tab.Net.Transistor(t)
	return logic.SwitchState(tr.Type, c.val[tr.Gate])
}

// Value returns the current state of node n.
func (c *Circuit) Value(n netlist.NodeID) logic.Value { return c.val[n] }

// ValueOf returns the current state of the named node.
func (c *Circuit) ValueOf(name string) logic.Value {
	return c.val[c.Tab.Net.MustLookup(name)]
}

// TransState returns the current conduction state of transistor t.
func (c *Circuit) TransState(t netlist.TransID) logic.Value { return c.ts[t] }

// IsInputLike reports whether node n acts as a signal source: a declared
// input node or a node forced by a stuck-at fault.
func (c *Circuit) IsInputLike(n netlist.NodeID) bool {
	return c.forceNode[n] != unforced || c.Tab.Net.Node(n).Kind == netlist.Input
}

// PinTransistor pins transistor t's conduction state (stuck-open: Lo,
// stuck-closed: Hi) and returns the storage-node terminals perturbed by
// the change, which the caller should settle.
func (c *Circuit) PinTransistor(t netlist.TransID, state logic.Value) []netlist.NodeID {
	if c.pinTrans[t] == unpinned {
		c.nPins++
	}
	c.pinTrans[t] = int8(state)
	return c.applyTransState(t)
}

// UnpinTransistor removes a pin, returning perturbed terminals.
func (c *Circuit) UnpinTransistor(t netlist.TransID) []netlist.NodeID {
	if c.pinTrans[t] != unpinned {
		c.nPins--
	}
	c.pinTrans[t] = unpinned
	return c.applyTransState(t)
}

func (c *Circuit) applyTransState(t netlist.TransID) []netlist.NodeID {
	ns := c.transistorState(t)
	if ns == c.ts[t] {
		return nil
	}
	c.ts[t] = ns
	tr := c.Tab.Net.Transistor(t)
	var seeds []netlist.NodeID
	if !c.IsInputLike(tr.Source) {
		seeds = append(seeds, tr.Source)
	}
	if !c.IsInputLike(tr.Drain) {
		seeds = append(seeds, tr.Drain)
	}
	return seeds
}

// ForceNode pins node n to a state: n behaves as an input node set to the
// specified state (a node stuck-at fault). Returns perturbed nodes: n's
// conducting neighbors plus terminals of transistors n gates.
func (c *Circuit) ForceNode(n netlist.NodeID, state logic.Value) []netlist.NodeID {
	if c.forceNode[n] == unforced {
		c.nForces++
	}
	c.forceNode[n] = int8(state)
	return c.setNodeValue(n, state)
}

// UnforceNode removes a node force. The node keeps the forced value as
// charge until the network next drives it.
func (c *Circuit) UnforceNode(n netlist.NodeID) []netlist.NodeID {
	if c.forceNode[n] != unforced {
		c.nForces--
	}
	c.forceNode[n] = unforced
	// The node's stored value is now ordinary charge; neighbors must
	// re-settle since the strong source disappeared.
	return c.perturbAround(n)
}

// Faulty reports whether this circuit carries any pins or forces.
func (c *Circuit) Faulty() bool { return c.nPins > 0 || c.nForces > 0 }

// ClearFaults removes every pin and force.
func (c *Circuit) ClearFaults() {
	for i := range c.pinTrans {
		c.pinTrans[i] = unpinned
	}
	for i := range c.forceNode {
		c.forceNode[i] = unforced
	}
	c.nPins, c.nForces = 0, 0
}

// SetInput assigns a value to an input node and returns the perturbed
// storage nodes. Assigning a forced (faulted) input is a no-op: the fault
// wins, exactly as a stuck line ignores its driver.
func (c *Circuit) SetInput(n netlist.NodeID, v logic.Value) []netlist.NodeID {
	if c.forceNode[n] != unforced {
		return nil
	}
	if c.Tab.Net.Node(n).Kind != netlist.Input {
		panic(fmt.Sprintf("switchsim: SetInput on storage node %q", c.Tab.Net.Name(n)))
	}
	return c.setNodeValue(n, v)
}

// setNodeValue writes a source-node value and computes the perturbation
// set: terminals of gated transistors whose state changed, plus storage
// nodes connected to n by a conducting transistor.
func (c *Circuit) setNodeValue(n netlist.NodeID, v logic.Value) []netlist.NodeID {
	if c.val[n] == v {
		return nil
	}
	c.val[n] = v
	return c.perturbAround(n)
}

func (c *Circuit) perturbAround(n netlist.NodeID) []netlist.NodeID {
	nw := c.Tab.Net
	var seeds []netlist.NodeID
	// Transistors gated by n change conduction state.
	for _, t := range nw.GatedBy(n) {
		seeds = append(seeds, c.applyTransState(t)...)
	}
	// Storage nodes connected to n by a conducting (1 or X) transistor
	// are perturbed by the new source value.
	for _, t := range nw.Channel(n) {
		if c.ts[t] == logic.Lo {
			continue
		}
		other := nw.Transistor(t).Other(n)
		if !c.IsInputLike(other) {
			seeds = append(seeds, other)
		}
	}
	if !c.IsInputLike(n) {
		seeds = append(seeds, n)
	}
	return seeds
}

// OverrideValue writes a node value directly, without perturbation
// bookkeeping or transistor updates. Used by the concurrent simulator to
// overlay divergence records onto a copied good state; callers must
// follow up with RefreshGates for every overridden node.
func (c *Circuit) OverrideValue(n netlist.NodeID, v logic.Value) {
	c.val[n] = v
}

// RefreshGates recomputes the conduction states of the transistors gated
// by node n from its current value (and any pins).
func (c *Circuit) RefreshGates(n netlist.NodeID) {
	for _, t := range c.Tab.Net.GatedBy(n) {
		c.ts[t] = c.transistorState(t)
	}
}

// CopyStateFrom copies node values and transistor states from src, which
// must share the same Tables. Pins and forces are not copied; callers
// overlay them afterwards. This is the materialization step the concurrent
// simulator uses to build a faulty circuit's view from the good circuit.
func (c *Circuit) CopyStateFrom(src *Circuit) {
	if c.Tab != src.Tab {
		panic("switchsim: CopyStateFrom across different networks")
	}
	copy(c.val, src.val)
	copy(c.ts, src.ts)
}

// Snapshot returns a copy of all node values (for tests and traces).
func (c *Circuit) Snapshot() []logic.Value {
	out := make([]logic.Value, len(c.val))
	copy(out, c.val)
	return out
}

package switchsim

import (
	"fmossim/internal/logic"
	"fmossim/internal/netlist"
)

// SettleReplay settles circuit c — a faulty circuit's materialized
// pre-step view — against the good circuit's recorded trajectory. This is
// the concurrent simulator's fast path: regions where the faulty circuit
// provably behaves identically to the good circuit are not re-solved;
// their recorded changes are adopted instead.
//
// The replay reproduces a standalone simulation of the faulty circuit
// exactly, including within-round processing order: the seeds are the
// circuit's own response to the input setting, further perturbations arise
// solely from gate switching, and each round's pending vicinities are
// serviced in pend-queue order — by adoption when the pending node lies in
// an unflagged trajectory vicinity of the same round (its membership,
// boundary, charge state, and position in the processing order all match
// the good circuit's, so its response is the good circuit's recorded
// response), and by a full switch-level solve otherwise. Trajectory
// vicinities not reached by the circuit's own pend queue are never
// adopted: the faulty circuit was not perturbed there ("divergence by
// inaction" — the caller's good-changed diff records the difference).
//
// Flags blocking adoption accumulate per replay: the static interest set
// (divergence records and their gated terminals, fault sites, and any
// node that is input-like in c but not in the good circuit — i.e. fault
// forces) seeded by the caller through BeginReplay/SeedDiverged, members
// of vicinities this replay solves, the channel terminals of transistors
// those members gate, and the change sites of unadopted trajectory
// vicinities (with their gated terminals). The diverged set is kept as a
// queue re-scanned against each round's member→vicinity index, so
// per-round flagging costs O(diverged set), not O(trajectory). Blocking
// is conservative: a blocked-but-identical vicinity is simply solved by
// the wave with the same result, at the cost of extra work.
//
// Callers MUST call BeginReplay (then SeedDiverged for each statically
// diverged node) before each SettleReplay; the replay consumes the epoch.
// The replay ends as soon as its pending queue drains: trajectory rounds
// beyond the circuit's own wave cannot affect its state (unreached
// vicinities are never adopted, and divergence-by-inaction is the
// caller's good-changed diff), so they are not scanned.
func (s *Solver) SettleReplay(c *Circuit, seeds []netlist.NodeID, traj *Trajectory) SettleResult {
	nw := s.tab.Net
	s.work.Settles++
	s.exploredEpoch++
	s.explored = s.explored[:0]
	s.changedEpoch++
	s.changed = s.changed[:0]

	maxRounds := s.MaxRounds
	if maxRounds <= 0 {
		maxRounds = s.defaultMaxRounds()
	}
	hardCap := maxRounds + 2*(nw.NumNodes()+nw.NumTransistors()) + 16

	s.pend = s.pend[:0]
	s.next = s.next[:0]
	s.pendEpoch++
	for _, n := range seeds {
		if c.IsInputLike(n) || s.pendStamp[n] == s.pendEpoch {
			continue
		}
		s.pendStamp[n] = s.pendEpoch
		s.pend = append(s.pend, n)
	}

	res := SettleResult{}
	xmode := false
	adopted := int64(0)

	for round := 0; len(s.pend) > 0; round++ {
		res.Rounds++
		s.work.Rounds++
		if res.Rounds > maxRounds && !xmode {
			xmode = true
			res.Oscillated = true
		}
		if res.Rounds > hardCap {
			for _, n := range s.pend {
				if c.val[n] != logic.X {
					c.val[n] = logic.X
					s.noteChanged(n)
				}
			}
			break
		}

		s.epoch++ // vicinity stamps for this round
		s.next = s.next[:0]
		s.pendEpoch++

		var trajRound []VicTrace
		if round < traj.NumRounds() {
			trajRound = traj.Round(round)
		}
		if cap(s.vicAdopted) < len(trajRound) {
			s.vicAdopted = make([]bool, len(trajRound)*2)
		}
		flagged := s.vicAdopted[:len(trajRound)]

		// Pass A — index this round's trajectory vicinities by member
		// node and compute initial divergence flags in the same
		// traversal: a vicinity containing a diverged (or fault-forced)
		// member must not be adopted, and its unfollowed changes may
		// leave their nodes — and the transistors they gate — diverged.
		genRound := s.dynGen
		for vi := range trajRound {
			vt := &trajRound[vi]
			flag := false
			for _, u := range vt.Members {
				adopted++ // indexing cost, counted honestly
				s.nodeVic[u] = int32(vi)
				s.nodeVicStamp[u] = s.epoch
				if !flag && (s.dynStamp[u] == s.dynEpoch || c.IsInputLike(u)) {
					flag = true
				}
			}
			flagged[vi] = flag
			if flag {
				for _, ch := range vt.Changes {
					s.markDiverged(ch.Node)
				}
			}
		}
		// Fixpoint continuation, needed only when the first traversal
		// added marks: the good circuit propagates eagerly within a
		// round, so one round's trajectory can contain chains of
		// dependent vicinities; a vicinity whose changes this circuit
		// will not follow must poison downstream vicinities of the SAME
		// round before any adoption decision is made.
		if s.dynGen != genRound {
			for again := true; again; {
				again = false
				for vi := range trajRound {
					if flagged[vi] {
						continue
					}
					vt := &trajRound[vi]
					for _, u := range vt.Members {
						adopted++
						if s.dynStamp[u] == s.dynEpoch || c.IsInputLike(u) {
							flagged[vi] = true
							again = true
							for _, ch := range vt.Changes {
								s.markDiverged(ch.Node)
							}
							break
						}
					}
				}
			}
		}
		genA := s.dynGen // divergence set as of the adoption decisions

		// Pass B — service the pend queue in order: adopt where provably
		// identical (re-checking against marks added by this pass's own
		// solves), solve otherwise.
		for _, seed := range s.pend {
			if c.IsInputLike(seed) || s.stamp[seed] == s.epoch {
				continue // forced by the fault, or already serviced
			}
			if s.nodeVicStamp[seed] == s.epoch && !flagged[s.nodeVic[seed]] {
				vt := &trajRound[s.nodeVic[seed]]
				// An unflagged vicinity had no diverged member at the end
				// of Pass A; if no mark was added since (no solve ran),
				// that still holds and the member re-scan is skipped.
				adoptable := s.dynGen == genA
				if !adoptable {
					adoptable = true
					for _, u := range vt.Members {
						adopted++
						if s.dynStamp[u] == s.dynEpoch {
							adoptable = false
							break
						}
					}
				}
				if adoptable {
					s.work.AdoptedVics++
					for _, u := range vt.Members {
						s.stamp[u] = s.epoch // serviced
					}
					for _, ch := range vt.Changes {
						u := ch.Node
						nv := ch.Value
						if xmode {
							nv = logic.Lub(c.val[u], nv)
						}
						adopted++
						if nv == c.val[u] {
							continue
						}
						c.val[u] = nv
						s.noteChanged(u)
						s.propagate(c, u)
					}
					continue
				}
			}
			// Solve with full switch-level dynamics.
			if !s.exploreVicinity(c, seed) {
				continue
			}
			for _, u := range s.vic {
				if s.exploredStamp[u] != s.exploredEpoch {
					s.exploredStamp[u] = s.exploredEpoch
					s.explored = append(s.explored, u)
				}
				s.markDiverged(u)
			}
			newVal := s.vicNewVal()
			s.solveVicinity(c, newVal)
			for i, u := range s.vic {
				nv := newVal[i]
				if xmode {
					nv = logic.Lub(c.val[u], nv)
				}
				if nv == c.val[u] {
					continue
				}
				c.val[u] = nv
				s.noteChanged(u)
				s.propagate(c, u)
			}
		}

		s.pend, s.next = s.next, s.pend
	}

	s.work.AdoptedChanges += adopted
	res.Changed = s.changed
	res.Explored = s.explored
	return res
}

// SettleReplayIndexed is SettleReplay driven by a prebuilt ReplayIndex:
// the trajectory indexing and static flag computation that SettleReplay
// performs per circuit (Pass A) come precomputed from the index, shared by
// every lane of the word group, and only this lane's dynamic divergence is
// examined per round. The replay is the index's lane (word, bit); the
// caller must have Built the index from this setting's trajectory and a
// div row set in which that lane's bits are exactly the static divergence
// set it would otherwise have seeded via BeginReplay/SeedDiverged. No
// seeding calls are needed (or allowed): the replay opens its own epoch.
//
// Lane-for-lane, the replay makes the same adoption decisions and solves
// the same vicinities in the same order as SettleReplay, with one
// refinement: members of already-adopted vicinities are excluded from the
// same round's later explorations by the index's vicinity map instead of
// by member stamps, so adopting a vicinity is O(changes), not O(members).
// A faulty circuit can only conduct into an adopted vicinity through a
// transistor whose gate diverged after the adoption decision; the gate's
// change marks the terminals diverged and perturbs them for the next
// round, where the vicinity is flagged and re-solved — the unit-delay
// schedule the scalar path follows too.
func (s *Solver) SettleReplayIndexed(c *Circuit, seeds []netlist.NodeID, ix *ReplayIndex, word int, bit uint) SettleResult {
	nw := s.tab.Net
	traj := ix.traj
	memo := s.Memo
	if s.StaticLocality {
		// Memo capture classifies closed edges as frontier stops, which
		// only holds under dynamic locality.
		memo = nil
	}
	s.work.Settles++
	s.exploredEpoch++
	s.explored = s.explored[:0]
	s.changedEpoch++
	s.changed = s.changed[:0]
	s.dynEpoch++
	s.dynList = s.dynList[:0]

	maxRounds := s.MaxRounds
	if maxRounds <= 0 {
		maxRounds = s.defaultMaxRounds()
	}
	hardCap := maxRounds + 2*(nw.NumNodes()+nw.NumTransistors()) + 16

	s.pend = s.pend[:0]
	s.next = s.next[:0]
	s.pendEpoch++
	for _, n := range seeds {
		if c.IsInputLike(n) || s.pendStamp[n] == s.pendEpoch {
			continue
		}
		s.pendStamp[n] = s.pendEpoch
		s.pend = append(s.pend, n)
	}

	res := SettleResult{}
	xmode := false
	adopted := int64(0)

	for round := 0; len(s.pend) > 0; round++ {
		res.Rounds++
		s.work.Rounds++
		if res.Rounds > maxRounds && !xmode {
			xmode = true
			res.Oscillated = true
		}
		if res.Rounds > hardCap {
			for _, n := range s.pend {
				if c.val[n] != logic.X {
					c.val[n] = logic.X
					s.noteChanged(n)
				}
			}
			break
		}

		s.epoch++ // vicinity stamps for this round
		s.next = s.next[:0]
		s.pendEpoch++

		var (
			trajRound []VicTrace
			vicOf     []int32
			vicStamp  []uint32
			flags     []uint64
		)
		if round < ix.rounds {
			trajRound = traj.Round(round)
			vicOf, vicStamp = ix.vicOf[round], ix.vicStamp[round]
			flags = ix.flags[round]
		}
		if cap(s.vicState) < len(trajRound) {
			s.vicState = make([]uint8, len(trajRound)*2)
		}
		vicState := s.vicState[:len(trajRound)]

		// Static flags: one bit probe per vicinity, precomputed by Build.
		// The flags layout is word-major, so this lane's probes are one
		// contiguous branchless scan.
		fw := flags[word*len(trajRound):]
		for vi := range vicState {
			vicState[vi] = uint8(fw[vi]>>bit) & vicFlagged
		}
		// Dynamic overlay: flag vicinities containing nodes this replay has
		// marked (solved members and their gated terminals, from any earlier
		// round). A newly flagged vicinity's unfollowed changes are marked in
		// turn, growing the list as it is scanned — the within-round flag
		// fixpoint for free.
		if vicStamp != nil {
			for i := 0; i < len(s.dynList); i++ {
				u := s.dynList[i]
				if vicStamp[u] != ix.epoch {
					continue
				}
				if vi := vicOf[u]; vicState[vi]&vicFlagged == 0 {
					vicState[vi] |= vicFlagged
					for _, ch := range trajRound[vi].Changes {
						s.markDiverged(ch.Node)
					}
				}
			}
		}
		genA := s.dynGen // divergence set as of the adoption decisions
		if vicStamp != nil {
			s.rvVicOf, s.rvVicStamp, s.rvEpoch, s.rvState = vicOf, vicStamp, ix.epoch, vicState
		} else {
			s.rvVicOf, s.rvVicStamp, s.rvState = nil, nil, nil
		}

		for _, seed := range s.pend {
			if c.IsInputLike(seed) || s.stamp[seed] == s.epoch {
				continue // forced by the fault, or solved this round
			}
			if vicStamp != nil && vicStamp[seed] == ix.epoch {
				vi := vicOf[seed]
				st := vicState[vi]
				if st&vicServiced != 0 {
					continue // adopted earlier this round
				}
				if st&vicFlagged == 0 {
					vt := &trajRound[vi]
					// An unflagged vicinity had no diverged member at the
					// adoption decisions; if no mark was added since (no
					// solve ran), that still holds without rescanning.
					adoptable := s.dynGen == genA
					if !adoptable {
						adoptable = true
						for _, u := range vt.Members {
							adopted++
							if s.dynStamp[u] == s.dynEpoch {
								adoptable = false
								break
							}
						}
					}
					if adoptable {
						s.work.AdoptedVics++
						vicState[vi] |= vicServiced
						for _, ch := range vt.Changes {
							u := ch.Node
							nv := ch.Value
							if xmode {
								nv = logic.Lub(c.val[u], nv)
							}
							adopted++
							if nv == c.val[u] {
								continue
							}
							c.val[u] = nv
							s.noteChanged(u)
							s.propagate(c, u)
						}
						continue
					}
				}
			}
			// Solve with full switch-level dynamics — unless a memoized
			// solve of this seed verifies against the live read set, in
			// which case its outcome (and exact work) is adopted instead.
			if memo != nil && memo.adopt(s, c, seed, xmode) {
				continue
			}
			if !s.exploreVicinity(c, seed) {
				continue
			}
			for _, u := range s.vic {
				if s.exploredStamp[u] != s.exploredEpoch {
					s.exploredStamp[u] = s.exploredEpoch
					s.explored = append(s.explored, u)
				}
				s.markDiverged(u)
			}
			newVal := s.vicNewVal()
			relax0 := s.work.RelaxSteps
			s.solveVicinity(c, newVal)
			if memo != nil {
				memo.store(s, c, newVal, s.work.RelaxSteps-relax0)
			}
			for i, u := range s.vic {
				nv := newVal[i]
				if xmode {
					nv = logic.Lub(c.val[u], nv)
				}
				if nv == c.val[u] {
					continue
				}
				c.val[u] = nv
				s.noteChanged(u)
				s.propagate(c, u)
			}
		}

		s.pend, s.next = s.next, s.pend
	}
	s.rvVicOf, s.rvVicStamp, s.rvState = nil, nil, nil

	s.work.AdoptedChanges += adopted
	res.Changed = s.changed
	res.Explored = s.explored
	return res
}

// BeginReplay opens a new replay divergence epoch: the caller seeds the
// statically diverged nodes (divergence records with their gated channel
// terminals, fault sites, fault-forced nodes) via SeedDiverged, then runs
// SettleReplay, which consumes the epoch. Folding the static set into the
// dynamic divergence queue lets the adoption flagging cost scale with the
// circuit's divergence instead of the trajectory size.
func (s *Solver) BeginReplay() {
	s.dynEpoch++
	s.dynList = s.dynList[:0]
}

// SeedDiverged marks node n as statically diverged from the good circuit
// for the upcoming SettleReplay: trajectory vicinities containing n are
// solved rather than adopted.
func (s *Solver) SeedDiverged(n netlist.NodeID) { s.markDyn(n) }

// markDiverged flags a node that may now differ from the good circuit,
// together with the channel terminals of the transistors it gates (which
// may consequently switch differently).
func (s *Solver) markDiverged(u netlist.NodeID) {
	s.markDyn(u)
	for _, e := range s.tab.GatedByOf(u) {
		s.markDyn(e.Src)
		s.markDyn(e.Drn)
	}
}

package switchsim

import (
	"fmossim/internal/logic"
	"fmossim/internal/netlist"
)

// SettleReplay settles circuit c — a faulty circuit's materialized
// pre-step view — against the good circuit's recorded trajectory. This is
// the concurrent simulator's fast path: regions where the faulty circuit
// provably behaves identically to the good circuit are not re-solved;
// their recorded changes are adopted instead.
//
// The replay reproduces a standalone simulation of the faulty circuit
// exactly, including within-round processing order: the seeds are the
// circuit's own response to the input setting, further perturbations arise
// solely from gate switching, and each round's pending vicinities are
// serviced in pend-queue order — by adoption when the pending node lies in
// an unflagged trajectory vicinity of the same round (its membership,
// boundary, charge state, and position in the processing order all match
// the good circuit's, so its response is the good circuit's recorded
// response), and by a full switch-level solve otherwise. Trajectory
// vicinities not reached by the circuit's own pend queue are never
// adopted: the faulty circuit was not perturbed there ("divergence by
// inaction" — the caller's good-changed diff records the difference).
//
// Flags blocking adoption accumulate per replay: the static interest set
// (divergence records and their gated terminals, fault sites), members of
// vicinities this replay solves, the channel terminals of transistors
// those members gate, and the change sites of unadopted trajectory
// vicinities (with their gated terminals). Blocking is conservative: a
// blocked-but-identical vicinity is simply solved by the wave with the
// same result, at the cost of extra work.
func (s *Solver) SettleReplay(c *Circuit, seeds []netlist.NodeID, traj Trajectory, interesting func(netlist.NodeID) bool) SettleResult {
	nw := s.tab.Net
	s.work.Settles++
	s.exploredEpoch++
	s.explored = s.explored[:0]
	s.changedEpoch++
	s.changed = s.changed[:0]
	s.dynEpoch++

	maxRounds := s.MaxRounds
	if maxRounds <= 0 {
		maxRounds = s.defaultMaxRounds()
	}
	hardCap := maxRounds + 2*(nw.NumNodes()+nw.NumTransistors()) + 16

	var pend, next []netlist.NodeID
	s.pendEpoch++
	for _, n := range seeds {
		if c.IsInputLike(n) || s.pendStamp[n] == s.pendEpoch {
			continue
		}
		s.pendStamp[n] = s.pendEpoch
		pend = append(pend, n)
	}

	res := SettleResult{}
	var newVal []logic.Value
	xmode := false

	// propagate switches the transistors gated by a changed node and
	// schedules the perturbed terminals for the next round.
	propagate := func(u netlist.NodeID) {
		for _, t := range nw.GatedBy(u) {
			ns := c.transistorState(t)
			if ns == c.ts[t] {
				continue
			}
			c.ts[t] = ns
			tr := nw.Transistor(t)
			for _, w := range [2]netlist.NodeID{tr.Source, tr.Drain} {
				if c.IsInputLike(w) || s.pendStamp[w] == s.pendEpoch {
					continue
				}
				s.pendStamp[w] = s.pendEpoch
				next = append(next, w)
			}
		}
	}

	// markDiverged flags a node that may now differ from the good
	// circuit, together with the channel terminals of the transistors it
	// gates (which may consequently switch differently).
	markDiverged := func(u netlist.NodeID) {
		s.markDyn(u)
		for _, t := range nw.GatedBy(u) {
			tr := nw.Transistor(t)
			s.markDyn(tr.Source)
			s.markDyn(tr.Drain)
		}
	}

	for round := 0; len(pend) > 0 || round < len(traj); round++ {
		res.Rounds++
		s.work.Rounds++
		if res.Rounds > maxRounds && !xmode {
			xmode = true
			res.Oscillated = true
		}
		if res.Rounds > hardCap {
			for _, n := range pend {
				if c.val[n] != logic.X {
					c.val[n] = logic.X
					s.noteChanged(n)
				}
			}
			break
		}

		s.epoch++ // vicinity stamps for this round
		next = next[:0]
		s.pendEpoch++

		var trajRound []VicTrace
		if round < len(traj) {
			trajRound = traj[round]
		}
		// Index this round's trajectory vicinities by member node.
		for vi := range trajRound {
			for _, u := range trajRound[vi].Members {
				s.work.AdoptedChanges++ // indexing cost, counted honestly
				s.nodeVic[u] = int32(vi)
				s.nodeVicStamp[u] = s.epoch
			}
		}
		if cap(s.vicAdopted) < len(trajRound) {
			s.vicAdopted = make([]bool, len(trajRound)*2)
		}
		flagged := s.vicAdopted[:len(trajRound)]
		for i := range flagged {
			flagged[i] = false
		}

		// Pass A — divergence-marking fixpoint over the round's
		// trajectory vicinities. The good circuit propagates eagerly
		// within a round, so one round's trajectory can contain chains of
		// dependent vicinities; a vicinity whose changes this circuit
		// will not follow must poison downstream vicinities of the SAME
		// round before any adoption decision is made.
		for again := true; again; {
			again = false
			for vi := range trajRound {
				if flagged[vi] {
					continue
				}
				vt := &trajRound[vi]
				for _, u := range vt.Members {
					s.work.AdoptedChanges++
					if s.dynStamp[u] == s.dynEpoch || c.IsInputLike(u) || interesting(u) {
						flagged[vi] = true
						again = true
						// The unfollowed changes may leave these nodes —
						// and the transistors they gate — diverged.
						for _, ch := range vt.Changes {
							markDiverged(ch.Node)
						}
						break
					}
				}
			}
		}

		// Pass B — service the pend queue in order: adopt where provably
		// identical (re-checking against marks added by this pass's own
		// solves), solve otherwise.
		for _, seed := range pend {
			if c.IsInputLike(seed) || s.stamp[seed] == s.epoch {
				continue // forced by the fault, or already serviced
			}
			if s.nodeVicStamp[seed] == s.epoch && !flagged[s.nodeVic[seed]] {
				vi := s.nodeVic[seed]
				vt := &trajRound[vi]
				adoptable := true
				for _, u := range vt.Members {
					s.work.AdoptedChanges++
					if s.dynStamp[u] == s.dynEpoch {
						adoptable = false
						break
					}
				}
				if adoptable {
					for _, u := range vt.Members {
						s.stamp[u] = s.epoch // serviced
					}
					for _, ch := range vt.Changes {
						u := ch.Node
						nv := ch.Value
						if xmode {
							nv = logic.Lub(c.val[u], nv)
						}
						s.work.AdoptedChanges++
						if nv == c.val[u] {
							continue
						}
						c.val[u] = nv
						s.noteChanged(u)
						propagate(u)
					}
					continue
				}
			}
			// Solve with full switch-level dynamics.
			if !s.exploreVicinity(c, seed) {
				continue
			}
			for _, u := range s.vic {
				if s.exploredStamp[u] != s.exploredEpoch {
					s.exploredStamp[u] = s.exploredEpoch
					s.explored = append(s.explored, u)
				}
				markDiverged(u)
			}
			if cap(newVal) < len(s.vic) {
				newVal = make([]logic.Value, len(s.vic)*2)
			}
			newVal = newVal[:len(s.vic)]
			s.solveVicinity(c, newVal)
			for i, u := range s.vic {
				nv := newVal[i]
				if xmode {
					nv = logic.Lub(c.val[u], nv)
				}
				if nv == c.val[u] {
					continue
				}
				c.val[u] = nv
				s.noteChanged(u)
				propagate(u)
			}
		}

		pend, next = next, pend
	}

	res.Changed = s.changed
	res.Explored = s.explored
	return res
}

// Pattern-script parsing: the line-oriented test-sequence format shared
// by cmd/fmossim and the fmossimd job server.
package switchsim

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"fmossim/internal/logic"
	"fmossim/internal/netlist"
)

// ParseSequence reads a pattern script: each non-empty line that is not a
// comment ("#" or "|" prefixed) is one input setting of "name=value"
// assignments, and a line "pattern [NAME]" starts a new pattern (clock
// cycle). The returned sequence is named name; positions in errors use it
// too.
func ParseSequence(r io.Reader, name string, nw *netlist.Network) (*Sequence, error) {
	seq := &Sequence{Name: name}
	cur := &Pattern{Name: "p0"}
	flush := func() {
		if len(cur.Settings) > 0 {
			seq.Patterns = append(seq.Patterns, *cur)
		}
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "|") || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "pattern" {
			flush()
			pname := fmt.Sprintf("p%d", len(seq.Patterns))
			if len(fields) > 1 {
				pname = fields[1]
			}
			cur = &Pattern{Name: pname}
			continue
		}
		var set Setting
		for _, tok := range fields {
			eq := strings.IndexByte(tok, '=')
			if eq < 0 {
				return nil, fmt.Errorf("%s:%d: expected name=value, got %q", name, lineNo, tok)
			}
			id := nw.Lookup(tok[:eq])
			if id == netlist.NoNode {
				return nil, fmt.Errorf("%s:%d: unknown node %q", name, lineNo, tok[:eq])
			}
			v, err := logic.ParseValue(tok[eq+1:])
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %v", name, lineNo, err)
			}
			set = append(set, Assignment{Node: id, Value: v})
		}
		cur.Settings = append(cur.Settings, set)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %v", name, err)
	}
	flush()
	return seq, nil
}

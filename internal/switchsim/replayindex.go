// Word-packed trajectory indexing for lane-grouped fault replays.
//
// SettleReplay's Pass A — indexing each trajectory round's vicinities by
// member node and computing adoption-blocking flags from the circuit's
// static divergence set — costs O(trajectory) per faulty circuit, and a
// batch pays it once per activated circuit per setting. The profile says
// that indexing, not solving, dominates a converged campaign: most
// activated circuits adopt every vicinity and change nothing.
//
// A ReplayIndex hoists that pass out of the per-circuit loop and pays it
// once per setting for up to 64×words fault circuits at a time. Faults are
// packed into lanes (one bit position of a lane word); the caller supplies
// its static divergence sets as word-packed per-node rows (bit set in
// div[n*words+w] ⟺ lane (w, bit) is statically diverged at n — the
// batch engine's interest mask). Build computes, per trajectory vicinity,
// the word-packed set of lanes for which the vicinity is statically
// flagged, by running the same flag-then-mark-changes fixpoint as the
// scalar Pass A — but over all lanes at once with bitwise ORs, and with
// the marks of flagged vicinities (change sites and their gated channel
// terminals) carried forward across rounds in a lane-packed overlay. The
// closure is a least fixpoint of monotone bitwise operations, so each
// lane's column of the result is exactly the flag set the scalar Pass A
// would compute for that lane alone: results are bit-identical for every
// lane width and packing.
//
// SettleReplayIndexed then replays one lane against the prebuilt index:
// static flags come from one bit probe per vicinity, and only the lane's
// own dynamic divergence (members of vicinities it solves, and their gated
// terminals) is rescanned per round — cost ∝ the lane's divergence, with
// the trajectory-sized work shared across the whole word group.
package switchsim

import (
	"fmossim/internal/netlist"
)

// Per-vicinity state bits of one indexed-replay round.
const (
	// vicFlagged blocks adoption: some member is (statically or
	// dynamically) diverged for this lane.
	vicFlagged uint8 = 1 << iota
	// vicServiced marks the vicinity as already adopted this round; its
	// members are excluded from later explorations of the same round.
	vicServiced
)

// ReplayIndex is the per-setting shared index over one good-circuit
// trajectory: the member→vicinity maps of every round plus word-packed
// static adoption flags per (round, vicinity, lane word). One index serves
// every lane of a fault batch for one setting; Build is called once per
// setting, SettleReplayIndexed once per activated lane. A ReplayIndex is
// not safe for concurrent Build, but concurrent reads (replays on worker
// solvers) are safe once built.
type ReplayIndex struct {
	tab *Tables

	// epoch versions the stamp arrays so Build never clears them.
	epoch uint32
	// words is the lane-word count of the current build; traj/rounds the
	// indexed trajectory.
	words  int
	traj   *Trajectory
	rounds int

	// Per-round member→vicinity maps: vicOf[r][n] is valid when
	// vicStamp[r][n] == epoch.
	vicOf    [][]int32
	vicStamp [][]uint32
	// flags[r][w*len(round)+vi] is the word of lanes for which vicinity
	// vi of round r is statically flagged (must be solved, not adopted).
	// The layout is word-major: one lane's per-vicinity probe loop in
	// SettleReplayIndexed — the hot reader, run once per activated
	// circuit per round — walks its word's flags contiguously.
	flags [][]uint64

	// Static-divergence overlay accumulated by the closure: lanes marked
	// diverged at a node by earlier (or same-round) flagged vicinities,
	// beyond the caller's div rows. Row n is valid when extraStamp[n]
	// matches epoch.
	extra      []uint64
	extraStamp []uint32

	// Build scratch: per-word member OR and newly-flagged masks.
	orBuf, newBuf []uint64
}

// NewReplayIndex returns an empty index over tab's network.
func NewReplayIndex(tab *Tables) *ReplayIndex {
	n := tab.Net.NumNodes()
	return &ReplayIndex{
		tab:        tab,
		extraStamp: make([]uint32, n),
	}
}

// Build indexes traj for a lane group of the given word count. div holds
// the callers' static divergence sets as word-packed per-node rows of
// stride words (div[n*words : (n+1)*words]); it is read during Build only.
// divNZ, when non-nil, is a per-node count of nonzero words in the row
// (any summary where divNZ[n] == 0 implies an all-zero row is accepted):
// divergence rows are overwhelmingly zero, and the summary lets Build skip
// them with one load per member instead of a words-long OR.
//
// The static flag closure mirrors the scalar Pass A exactly, lane-wise:
// a vicinity is flagged for every lane with a diverged member, a flagged
// vicinity's unfollowed changes mark their nodes and the channel terminals
// of transistors they gate as diverged for those lanes, marks poison
// downstream vicinities of the same round (repeat until stable) and
// persist into all later rounds.
func (ix *ReplayIndex) Build(traj *Trajectory, words int, div []uint64, divNZ []int32) {
	ix.epoch++
	ix.words = words
	ix.traj = traj
	ix.rounds = traj.NumRounds()
	n := ix.tab.Net.NumNodes()

	for len(ix.vicOf) < ix.rounds {
		ix.vicOf = append(ix.vicOf, make([]int32, n))
		ix.vicStamp = append(ix.vicStamp, make([]uint32, n))
		ix.flags = append(ix.flags, nil)
	}
	if len(ix.extra) < n*words {
		ix.extra = make([]uint64, n*words)
		// Rows are epoch-guarded; a fresh array needs no clearing, but the
		// stamps must not accidentally match a stale epoch row layout.
		for i := range ix.extraStamp {
			ix.extraStamp[i] = 0
		}
	}
	if len(ix.orBuf) < words {
		ix.orBuf = make([]uint64, words)
		ix.newBuf = make([]uint64, words)
	}
	orBuf, newBuf := ix.orBuf[:words], ix.newBuf[:words]

	for r := 0; r < ix.rounds; r++ {
		round := traj.Round(r)
		vicOf, vicStamp := ix.vicOf[r], ix.vicStamp[r]
		need := len(round) * words
		if cap(ix.flags[r]) < need {
			ix.flags[r] = make([]uint64, need+need/2)
		}
		flags := ix.flags[r][:need]
		for i := range flags {
			flags[i] = 0
		}
		for vi := range round {
			for _, u := range round[vi].Members {
				vicOf[u] = int32(vi)
				vicStamp[u] = ix.epoch
			}
		}
		// Flag closure: the first sweep both computes initial flags and,
		// by marking as it goes, lets later vicinities of the round see
		// earlier marks; further sweeps run only until no new lane flags
		// appear (the scalar Pass A's within-round fixpoint).
		for again := true; again; {
			again = false
			for vi := range round {
				vt := &round[vi]
				for w := range orBuf {
					orBuf[w] = 0
				}
				for _, u := range vt.Members {
					hasDiv := divNZ == nil || divNZ[u] != 0
					hasExtra := ix.extraStamp[u] == ix.epoch
					if !hasDiv && !hasExtra {
						continue
					}
					if hasDiv {
						row := div[int(u)*words:]
						for w := range orBuf {
							orBuf[w] |= row[w]
						}
					}
					if hasExtra {
						er := ix.extra[int(u)*words:]
						for w := range orBuf {
							orBuf[w] |= er[w]
						}
					}
				}
				anyNew := false
				for w := range orBuf {
					fw := &flags[w*len(round)+vi]
					newBuf[w] = orBuf[w] &^ *fw
					if newBuf[w] != 0 {
						*fw |= newBuf[w]
						anyNew = true
					}
				}
				if !anyNew {
					continue
				}
				again = true
				// Newly flagged lanes will not follow this vicinity's
				// changes: mark the change sites, and the channel terminals
				// of the transistors they gate, diverged for those lanes.
				for _, ch := range vt.Changes {
					ix.markLanes(ch.Node, newBuf)
					for _, e := range ix.tab.GatedByOf(ch.Node) {
						ix.markLanes(e.Src, newBuf)
						ix.markLanes(e.Drn, newBuf)
					}
				}
			}
		}
	}
}

// markLanes ORs the lane mask into node u's overlay row.
func (ix *ReplayIndex) markLanes(u netlist.NodeID, m []uint64) {
	row := ix.extra[int(u)*ix.words:]
	if ix.extraStamp[u] != ix.epoch {
		ix.extraStamp[u] = ix.epoch
		copy(row[:len(m)], m)
		return
	}
	for w := range m {
		row[w] |= m[w]
	}
}

// Flagged reports whether vicinity vi of round r is statically flagged for
// lane (word, bit). Exported for tests.
func (ix *ReplayIndex) Flagged(r, vi, word int, bit uint) bool {
	nvic := len(ix.traj.Round(r))
	return ix.flags[r][word*nvic+vi]>>bit&1 != 0
}

// Package ram generates the dynamic RAM circuits of the paper's
// evaluation: nMOS memories built from three-transistor (3T) dynamic
// cells, NOR row/column decoders with depletion loads, precharged bit
// lines, pass-transistor row gating and column muxes, per-column refresh
// inverters, and a dynamic output latch — "a variety of MOS structures
// such as logic gates, bidirectional pass transistors, dynamic latches,
// precharged busses, and three-transistor dynamic memory elements."
//
// RAM64 is the 8×8 instance (paper: 378 transistors, 229 nodes; this
// generator produces a closely comparable circuit) and RAM256 the 16×16
// instance (paper: 1148 transistors, 695 nodes). Like the paper's
// circuits, these are hard cases for a switch-level simulator: the bit
// lines are large global busses, so activity is poorly localized, and
// observability is low because there is a single data output.
//
// Timing discipline (one pattern = one clock cycle = 6 input settings):
//
//	s0  φ1↑ with address, data and write-enable applied (setup+precharge)
//	s1  φ1↓ (end precharge; bit lines hold their charge)
//	s2  φ2↑ (access: the selected row reads onto the bit lines and the
//	        output latch captures the selected column)
//	s3  φ2↓
//	s4  φ3↑ (write-back: if WE, the selected row is written — the
//	        selected column from Din, all others refreshed from their
//	        read value through the per-column refresh inverter)
//	s5  φ3↓
//
// A read is a cycle with WE=0; its φ3 pulse is idle. Every cycle reads
// the addressed row; a write cycle rewrites it, refreshing the unselected
// columns, as real 3T one-bit-wide parts do.
package ram

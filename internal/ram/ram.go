// RAM circuit generator: cells, decoders, bit-line periphery, and the
// clocked pattern helpers. Package documentation lives in doc.go.
package ram

import (
	"fmt"

	"fmossim/internal/logic"
	"fmossim/internal/netlist"
	"fmossim/internal/switchsim"
)

// Port names.
const (
	Phi1 = "phi1" // precharge clock
	Phi2 = "phi2" // access (read) clock
	Phi3 = "phi3" // write-back clock
	WE   = "we"   // write enable
	Din  = "din"  // data in
	Dout = "dout" // data out (the single observed output)
)

// Config sizes a RAM instance. Rows and Cols must be powers of two.
type Config struct {
	Rows, Cols int
}

// Bits returns the capacity in bits.
func (c Config) Bits() int { return c.Rows * c.Cols }

func log2(n int) int {
	k := 0
	for 1<<k < n {
		k++
	}
	if 1<<k != n {
		panic(fmt.Sprintf("ram: %d is not a power of two", n))
	}
	return k
}

// RAM is a generated memory with its port map and fault-injection hooks.
type RAM struct {
	Net  *netlist.Network
	Conf Config

	// Inputs.
	PhiOne, PhiTwo, PhiThree netlist.NodeID
	WriteEnable, DataIn      netlist.NodeID
	Addr                     []netlist.NodeID // LSB first; column bits low

	// DataOut is the single observed output node.
	DataOut netlist.NodeID

	// Store[r][c] is the storage gate node of cell (r,c); Mid[r][c] its
	// read-path intermediate node.
	Store, Mid [][]netlist.NodeID
	// ReadBit/WriteBit are the per-column bit lines (large busses).
	ReadBit, WriteBit []netlist.NodeID

	// BitlineShorts are bridge-candidate transistors between adjacent bit
	// lines (read-read, write-write, and same-column read-write pairs),
	// for the paper's "single pairs of adjacent bit lines shorted
	// together" fault class.
	BitlineShorts []netlist.TransID
}

// AddrBits returns the number of address inputs.
func (r *RAM) AddrBits() int { return len(r.Addr) }

// Address computes the address word for cell (row, col): column bits are
// the low bits.
func (r *RAM) Address(row, col int) int { return row*r.Conf.Cols + col }

// New generates a RAM instance.
func New(cfg Config) *RAM {
	if cfg.Rows < 2 || cfg.Cols < 2 {
		panic("ram: need at least 2 rows and 2 columns")
	}
	rowBits := log2(cfg.Rows)
	colBits := log2(cfg.Cols)

	// Two node sizes (ordinary, bus), two transistor strengths
	// (depletion loads, everything else) plus a third reserved for fault
	// transistors, per the paper's fault-injection construction.
	b := netlist.NewBuilder(logic.Scale{Sizes: 2, Strengths: 3})
	b.DefaultStrength = 2

	m := &RAM{Conf: cfg}
	m.PhiOne = b.Input(Phi1, logic.Lo)
	m.PhiTwo = b.Input(Phi2, logic.Lo)
	m.PhiThree = b.Input(Phi3, logic.Lo)
	m.WriteEnable = b.Input(WE, logic.Lo)
	m.DataIn = b.Input(Din, logic.Lo)
	for i := 0; i < rowBits+colBits; i++ {
		m.Addr = append(m.Addr, b.Input(fmt.Sprintf("a%d", i), logic.Lo))
	}

	// Address buffers: true and complement of every address bit.
	var colT, colF, rowT, rowF []netlist.NodeID
	for i, a := range m.Addr {
		aBar := b.Node(fmt.Sprintf("ab%d", i))
		aBuf := b.Node(fmt.Sprintf("at%d", i))
		nInv(b, a, aBar, fmt.Sprintf("abuf%d.n", i))
		nInv(b, aBar, aBuf, fmt.Sprintf("abuf%d.t", i))
		if i < colBits {
			colT, colF = append(colT, aBuf), append(colF, aBar)
		} else {
			rowT, rowF = append(rowT, aBuf), append(rowF, aBar)
		}
	}

	// NOR decoders with depletion loads: one-hot row and column selects.
	rowSel := norDecoder(b, rowT, rowF, "rdec")
	colSel := norDecoder(b, colT, colF, "cdec")

	// Control logic: φ2 complement for the read-row pulldowns; write
	// enable wEn = φ3 ∧ WE (NAND + inverter), with the NAND output
	// doubling as wEn's complement.
	phi2Bar := b.Node("phi2b")
	nInv(b, m.PhiTwo, phi2Bar, "cphi2b")
	weBar := b.Node("web")
	nInv(b, m.WriteEnable, weBar, "cweb")
	wEnBar := b.Node("wenb")
	nNand2(b, m.PhiThree, m.WriteEnable, wEnBar, "cwen")
	wEn := b.Node("wen")
	nInv(b, wEnBar, wEn, "cweninv")
	// Read enable ren = φ2 ∧ ¬WE: the output latch captures only on read
	// cycles, as in real one-bit-wide parts — during a write the data
	// pin holds the previous read value.
	rEnBar := b.Node("renb")
	nNand2(b, m.PhiTwo, weBar, rEnBar, "cren")
	rEn := b.Node("ren")
	nInv(b, rEnBar, rEn, "creninv")

	// Row gating: dynamic row lines through pass transistors, with
	// pulldowns restoring them low when the phase ends.
	rrow := make([]netlist.NodeID, cfg.Rows)
	wrow := make([]netlist.NodeID, cfg.Rows)
	for i := 0; i < cfg.Rows; i++ {
		rrow[i] = b.Node(fmt.Sprintf("rrow%d", i))
		b.N(m.PhiTwo, rowSel[i], rrow[i], fmt.Sprintf("rgate%d", i))
		b.N(phi2Bar, rrow[i], b.Gnd, fmt.Sprintf("rgnd%d", i))
		wrow[i] = b.Node(fmt.Sprintf("wrow%d", i))
		b.N(wEn, rowSel[i], wrow[i], fmt.Sprintf("wgate%d", i))
		b.N(wEnBar, wrow[i], b.Gnd, fmt.Sprintf("wgnd%d", i))
	}

	// Data-in buffer driving the write-data bus.
	dinBar := b.Node("dinb")
	nInv(b, m.DataIn, dinBar, "dbuf.n")
	wdata := b.SizedNode("wdata", 2)
	nInv(b, dinBar, wdata, "dbuf.t")
	rdata := b.SizedNode("rdata", 2)
	b.N(m.PhiOne, b.Vdd, rdata, "pc.rdata")

	// Columns: precharged read bit line, refresh inverter, write bit
	// line multiplexer, read mux onto the read-data bus.
	m.ReadBit = make([]netlist.NodeID, cfg.Cols)
	m.WriteBit = make([]netlist.NodeID, cfg.Cols)
	for j := 0; j < cfg.Cols; j++ {
		rbit := b.SizedNode(fmt.Sprintf("rbit%d", j), 2)
		wbit := b.SizedNode(fmt.Sprintf("wbit%d", j), 2)
		m.ReadBit[j], m.WriteBit[j] = rbit, wbit
		b.N(m.PhiOne, b.Vdd, rbit, fmt.Sprintf("pc%d", j))
		cselBar := b.Node(fmt.Sprintf("cselb%d", j))
		nInv(b, colSel[j], cselBar, fmt.Sprintf("cselinv%d", j))
		winv := b.Node(fmt.Sprintf("winv%d", j))
		nInv(b, rbit, winv, fmt.Sprintf("wrefresh%d", j))
		b.N(colSel[j], wdata, wbit, fmt.Sprintf("wmuxd%d", j))
		b.N(cselBar, winv, wbit, fmt.Sprintf("wmuxr%d", j))
		b.N(colSel[j], rbit, rdata, fmt.Sprintf("rmux%d", j))
	}

	// The cell array: 3T dynamic cells.
	m.Store = make([][]netlist.NodeID, cfg.Rows)
	m.Mid = make([][]netlist.NodeID, cfg.Rows)
	for i := 0; i < cfg.Rows; i++ {
		m.Store[i] = make([]netlist.NodeID, cfg.Cols)
		m.Mid[i] = make([]netlist.NodeID, cfg.Cols)
		for j := 0; j < cfg.Cols; j++ {
			store := b.Node(fmt.Sprintf("cell%d_%d.s", i, j))
			mid := b.Node(fmt.Sprintf("cell%d_%d.m", i, j))
			m.Store[i][j], m.Mid[i][j] = store, mid
			b.N(wrow[i], m.WriteBit[j], store, fmt.Sprintf("cell%d_%d.w", i, j))
			b.N(store, mid, b.Gnd, fmt.Sprintf("cell%d_%d.g", i, j))
			b.N(rrow[i], m.ReadBit[j], mid, fmt.Sprintf("cell%d_%d.r", i, j))
		}
	}

	// Output stage: dynamic latch on the read-data bus, captured on read
	// cycles only and restored by an inverter (the read path is
	// inverting, so dout equals the cell).
	sense := b.Node("sense")
	b.N(rEn, rdata, sense, "olat.pass")
	dout := b.Node(Dout)
	nInv(b, sense, dout, "olat.inv")
	m.DataOut = dout

	// Bridge candidates between adjacent bit lines.
	for j := 0; j+1 < cfg.Cols; j++ {
		m.BitlineShorts = append(m.BitlineShorts,
			b.BridgeCandidate(m.ReadBit[j], m.ReadBit[j+1], fmt.Sprintf("short.r%d_%d", j, j+1)),
			b.BridgeCandidate(m.WriteBit[j], m.WriteBit[j+1], fmt.Sprintf("short.w%d_%d", j, j+1)))
	}
	for j := 0; j < cfg.Cols; j++ {
		m.BitlineShorts = append(m.BitlineShorts,
			b.BridgeCandidate(m.ReadBit[j], m.WriteBit[j], fmt.Sprintf("short.rw%d", j)))
	}

	m.Net = b.Finalize()
	return m
}

// nInv builds a depletion-load nMOS inverter (duplicated from the gates
// package to keep ram self-contained for transistor accounting).
func nInv(b *netlist.Builder, in, out netlist.NodeID, label string) {
	b.StrengthTrans(logic.DType, 1, out, b.Vdd, out, label+".l")
	b.N(in, out, b.Gnd, label+".pd")
}

// nNand2 builds a two-input depletion-load NAND.
func nNand2(b *netlist.Builder, x, y, out netlist.NodeID, label string) {
	b.StrengthTrans(logic.DType, 1, out, b.Vdd, out, label+".l")
	s := b.Node(label + ".s")
	b.N(x, out, s, label+".pd0")
	b.N(y, s, b.Gnd, label+".pd1")
}

// norDecoder builds a one-hot NOR decoder over the given true/complement
// address lines.
func norDecoder(b *netlist.Builder, at, af []netlist.NodeID, prefix string) []netlist.NodeID {
	n := 1 << len(at)
	outs := make([]netlist.NodeID, n)
	for i := 0; i < n; i++ {
		out := b.Node(fmt.Sprintf("%s%d", prefix, i))
		outs[i] = out
		b.StrengthTrans(logic.DType, 1, out, b.Vdd, out, fmt.Sprintf("%s%d.l", prefix, i))
		for k := range at {
			in := at[k]
			if (i>>k)&1 == 1 {
				in = af[k]
			}
			b.N(in, out, b.Gnd, fmt.Sprintf("%s%d.pd%d", prefix, i, k))
		}
	}
	return outs
}

// RAM64 builds the 8×8 (64-bit) instance corresponding to the paper's
// RAM64.
func RAM64() *RAM { return New(Config{Rows: 8, Cols: 8}) }

// RAM256 builds the 16×16 (256-bit) instance corresponding to the paper's
// RAM256.
func RAM256() *RAM { return New(Config{Rows: 16, Cols: 16}) }

// addrSetting fills pairs with the address bits of addr.
func (r *RAM) addrSetting(addr int, pairs map[string]logic.Value) {
	for i := range r.Addr {
		pairs[fmt.Sprintf("a%d", i)] = logic.Value((addr >> i) & 1)
	}
}

// Cycle builds the six-setting pattern of one clock cycle: a read of addr
// when we is 0, a write of din to addr when we is 1.
func (r *RAM) Cycle(name string, addr int, we, din logic.Value) switchsim.Pattern {
	setup := map[string]logic.Value{
		Phi1: logic.Hi, Phi2: logic.Lo, Phi3: logic.Lo,
		WE: we, Din: din,
	}
	r.addrSetting(addr, setup)
	return switchsim.Pattern{
		Name: name,
		Settings: []switchsim.Setting{
			switchsim.MustVector(r.Net, setup),
			switchsim.MustVector(r.Net, map[string]logic.Value{Phi1: logic.Lo}),
			switchsim.MustVector(r.Net, map[string]logic.Value{Phi2: logic.Hi}),
			switchsim.MustVector(r.Net, map[string]logic.Value{Phi2: logic.Lo}),
			switchsim.MustVector(r.Net, map[string]logic.Value{Phi3: logic.Hi}),
			switchsim.MustVector(r.Net, map[string]logic.Value{Phi3: logic.Lo}),
		},
	}
}

// Write builds a write-cycle pattern.
func (r *RAM) Write(addr int, bit logic.Value) switchsim.Pattern {
	return r.Cycle(fmt.Sprintf("w%s@%d", bit, addr), addr, logic.Hi, bit)
}

// Read builds a read-cycle pattern.
func (r *RAM) Read(addr int) switchsim.Pattern {
	return r.Cycle(fmt.Sprintf("r@%d", addr), addr, logic.Lo, logic.Lo)
}

package ram_test

import (
	"fmt"

	"fmossim/internal/logic"
	"fmossim/internal/ram"
	"fmossim/internal/switchsim"
)

// Example generates the paper's 8×8 RAM, writes a bit and reads it back
// through the generated write/read pattern helpers.
func Example() {
	m := ram.RAM64()
	fmt.Println(m.Net.Stats())

	sim := switchsim.NewSimulator(m.Net)
	for _, p := range []switchsim.Pattern{m.Write(5, logic.Hi), m.Read(5)} {
		sim.RunPattern(&p)
	}
	fmt.Println("dout after write(5,1); read(5) =", sim.Value(ram.Dout))
	// Output:
	// 231 nodes (217 storage, 14 input), 420 transistors
	// dout after write(5,1); read(5) = 1
}

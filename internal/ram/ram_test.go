package ram_test

import (
	"fmt"
	"testing"

	"fmossim/internal/logic"
	"fmossim/internal/netlist"
	"fmossim/internal/ram"
	"fmossim/internal/switchsim"
)

const (
	L = logic.Lo
	H = logic.Hi
	X = logic.X
)

func run(sim *switchsim.Simulator, p switchsim.Pattern) {
	sim.RunPattern(&p)
}

func TestRAMWriteReadSingleCell(t *testing.T) {
	m := ram.RAM64()
	sim := switchsim.NewSimulator(m.Net)
	sim.Init()

	addr := m.Address(3, 5)
	run(sim, m.Write(addr, H))
	if got := sim.Circuit.Value(m.Store[3][5]); got != H {
		t.Fatalf("cell (3,5) after write-1 = %s, want 1", got)
	}
	run(sim, m.Read(addr))
	if got := sim.Circuit.Value(m.DataOut); got != H {
		t.Fatalf("dout after read = %s, want 1", got)
	}
	run(sim, m.Write(addr, L))
	run(sim, m.Read(addr))
	if got := sim.Circuit.Value(m.DataOut); got != L {
		t.Fatalf("dout after write-0/read = %s, want 0", got)
	}
}

func TestRAMWritePreservesNeighbors(t *testing.T) {
	m := ram.RAM64()
	sim := switchsim.NewSimulator(m.Net)
	sim.Init()

	// Fill row 2 with a pattern, then rewrite one column: the refresh
	// path must preserve every other column.
	for c := 0; c < 8; c++ {
		run(sim, m.Write(m.Address(2, c), logic.Value(c%2)))
	}
	run(sim, m.Write(m.Address(2, 4), H))
	for c := 0; c < 8; c++ {
		want := logic.Value(c % 2)
		if c == 4 {
			want = H
		}
		if got := sim.Circuit.Value(m.Store[2][c]); got != want {
			t.Errorf("cell (2,%d) = %s, want %s", c, got, want)
		}
	}
	// And a write in another row must not touch row 2 at all.
	run(sim, m.Write(m.Address(5, 4), L))
	for c := 0; c < 8; c++ {
		want := logic.Value(c % 2)
		if c == 4 {
			want = H
		}
		if got := sim.Circuit.Value(m.Store[2][c]); got != want {
			t.Errorf("cell (2,%d) after far write = %s, want %s", c, got, want)
		}
	}
}

func TestRAMReadNondestructive(t *testing.T) {
	m := ram.RAM64()
	sim := switchsim.NewSimulator(m.Net)
	sim.Init()

	addr := m.Address(7, 0)
	run(sim, m.Write(addr, H))
	for i := 0; i < 5; i++ {
		run(sim, m.Read(addr))
		if got := sim.Circuit.Value(m.DataOut); got != H {
			t.Fatalf("read %d = %s, want 1", i, got)
		}
	}
	if got := sim.Circuit.Value(m.Store[7][0]); got != H {
		t.Fatalf("cell lost its charge after reads: %s", got)
	}
}

func TestRAMRetentionAcrossOtherAccesses(t *testing.T) {
	m := ram.RAM64()
	sim := switchsim.NewSimulator(m.Net)
	sim.Init()

	run(sim, m.Write(m.Address(1, 1), H))
	run(sim, m.Write(m.Address(6, 6), L))
	// Hammer other cells.
	for i := 0; i < 8; i++ {
		run(sim, m.Write(m.Address(4, i), logic.Value(i%2)))
		run(sim, m.Read(m.Address(4, i)))
	}
	run(sim, m.Read(m.Address(1, 1)))
	if got := sim.Circuit.Value(m.DataOut); got != H {
		t.Errorf("cell (1,1) read = %s, want 1", got)
	}
	run(sim, m.Read(m.Address(6, 6)))
	if got := sim.Circuit.Value(m.DataOut); got != L {
		t.Errorf("cell (6,6) read = %s, want 0", got)
	}
}

func TestRAMFullArraySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full-array sweep is slow in -short mode")
	}
	m := ram.RAM64()
	sim := switchsim.NewSimulator(m.Net)
	sim.Init()

	// Checkerboard write then read back.
	val := func(a int) logic.Value { return logic.Value((a ^ (a >> 3)) & 1) }
	for a := 0; a < 64; a++ {
		run(sim, m.Write(a, val(a)))
	}
	for a := 0; a < 64; a++ {
		run(sim, m.Read(a))
		if got := sim.Circuit.Value(m.DataOut); got != val(a) {
			t.Errorf("addr %d: dout = %s, want %s", a, got, val(a))
		}
	}
}

func TestRAMUninitializedReadsX(t *testing.T) {
	m := ram.RAM64()
	sim := switchsim.NewSimulator(m.Net)
	sim.Init()
	run(sim, m.Read(m.Address(0, 0)))
	if got := sim.Circuit.Value(m.DataOut); got != X {
		t.Errorf("reading an uninitialized cell: dout = %s, want X", got)
	}
}

func TestRAMStats(t *testing.T) {
	// The generated instances must stay closely comparable to the
	// paper's circuits (RAM64: 378 transistors, 229 nodes; RAM256: 1148
	// transistors, 695 nodes). Fault transistors (bridge candidates) are
	// excluded from the comparison since the paper adds them per
	// experiment. These exact values are pinned as a regression guard;
	// update them deliberately if the generator changes.
	m64 := ram.RAM64()
	st := m64.Net.Stats()
	nShorts := len(m64.BitlineShorts)
	if got := st.Transistors - nShorts; got != 398 {
		t.Errorf("RAM64 core transistors = %d (paper: 378); update pin if intentional", got)
	}
	if st.Nodes != 231 {
		t.Errorf("RAM64 nodes = %d (paper: 229); update pin if intentional", st.Nodes)
	}

	m256 := ram.RAM256()
	st = m256.Net.Stats()
	nShorts = len(m256.BitlineShorts)
	if got := st.Transistors - nShorts; got != 1174 {
		t.Errorf("RAM256 core transistors = %d (paper: 1148); update pin if intentional", got)
	}
	if st.Nodes != 685 {
		t.Errorf("RAM256 nodes = %d (paper: 695); update pin if intentional", st.Nodes)
	}
	if len(netlist.Lint(m64.Net)) > 0 {
		for _, is := range netlist.Lint(m64.Net) {
			t.Logf("lint: %s", is)
		}
	}
}

func TestRAMPatternShape(t *testing.T) {
	m := ram.RAM64()
	p := m.Write(0, H)
	if len(p.Settings) != 6 {
		t.Errorf("pattern has %d settings, want 6 (the paper's clock cycle)", len(p.Settings))
	}
	p = m.Read(63)
	if len(p.Settings) != 6 {
		t.Errorf("read pattern has %d settings, want 6", len(p.Settings))
	}
	if m.Address(7, 7) != 63 {
		t.Errorf("Address(7,7) = %d, want 63", m.Address(7, 7))
	}
}

func TestRAMBadConfigPanics(t *testing.T) {
	for _, cfg := range []ram.Config{{Rows: 1, Cols: 8}, {Rows: 8, Cols: 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v should panic", cfg)
				}
			}()
			ram.New(cfg)
		}()
	}
}

func ExampleRAM() {
	m := ram.New(ram.Config{Rows: 4, Cols: 4})
	sim := switchsim.NewSimulator(m.Net)
	sim.Init()
	w := m.Write(m.Address(1, 2), logic.Hi)
	sim.RunPattern(&w)
	r := m.Read(m.Address(1, 2))
	sim.RunPattern(&r)
	fmt.Println("dout =", sim.Circuit.Value(m.DataOut))
	// Output: dout = 1
}

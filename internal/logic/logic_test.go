package logic

import (
	"testing"
	"testing/quick"
)

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{{Lo, "0"}, {Hi, "1"}, {X, "X"}}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestNot(t *testing.T) {
	if Lo.Not() != Hi || Hi.Not() != Lo || X.Not() != X {
		t.Errorf("Not truth table wrong: ¬0=%s ¬1=%s ¬X=%s", Lo.Not(), Hi.Not(), X.Not())
	}
}

func TestNotInvolution(t *testing.T) {
	for _, v := range []Value{Lo, Hi, X} {
		if v.Not().Not() != v {
			t.Errorf("Not not involutive at %s", v)
		}
	}
}

func TestLub(t *testing.T) {
	cases := []struct {
		a, b, want Value
	}{
		{Lo, Lo, Lo}, {Hi, Hi, Hi}, {X, X, X},
		{Lo, Hi, X}, {Hi, Lo, X},
		{Lo, X, X}, {X, Lo, X}, {Hi, X, X}, {X, Hi, X},
	}
	for _, c := range cases {
		if got := Lub(c.a, c.b); got != c.want {
			t.Errorf("Lub(%s,%s) = %s, want %s", c.a, c.b, got, c.want)
		}
	}
}

func TestLubCommutativeAssociative(t *testing.T) {
	vals := []Value{Lo, Hi, X}
	for _, a := range vals {
		for _, b := range vals {
			if Lub(a, b) != Lub(b, a) {
				t.Errorf("Lub not commutative at (%s,%s)", a, b)
			}
			for _, c := range vals {
				if Lub(Lub(a, b), c) != Lub(a, Lub(b, c)) {
					t.Errorf("Lub not associative at (%s,%s,%s)", a, b, c)
				}
			}
		}
	}
}

func TestCovers(t *testing.T) {
	if !Covers(X, Lo) || !Covers(X, Hi) || !Covers(Lo, Lo) || !Covers(Hi, Hi) {
		t.Error("Covers should accept X⊒anything and v⊒v")
	}
	if Covers(Lo, Hi) || Covers(Hi, Lo) || Covers(Lo, X) || Covers(Hi, X) {
		t.Error("Covers accepted an invalid pair")
	}
}

// TestTransistorStateTable checks Table 1 of the paper exactly:
//
//	gate state   n-type  p-type  d-type
//	   0           0       1       1
//	   1           1       0       1
//	   X           X       X       1
func TestTransistorStateTable(t *testing.T) {
	table := []struct {
		gate    Value
		n, p, d Value
	}{
		{Lo, Lo, Hi, Hi},
		{Hi, Hi, Lo, Hi},
		{X, X, X, Hi},
	}
	for _, row := range table {
		if got := SwitchState(NType, row.gate); got != row.n {
			t.Errorf("n-type gate=%s: got %s, want %s", row.gate, got, row.n)
		}
		if got := SwitchState(PType, row.gate); got != row.p {
			t.Errorf("p-type gate=%s: got %s, want %s", row.gate, got, row.p)
		}
		if got := SwitchState(DType, row.gate); got != row.d {
			t.Errorf("d-type gate=%s: got %s, want %s", row.gate, got, row.d)
		}
	}
}

func TestParseValue(t *testing.T) {
	for s, want := range map[string]Value{"0": Lo, "1": Hi, "x": X, "X": X} {
		got, err := ParseValue(s)
		if err != nil || got != want {
			t.Errorf("ParseValue(%q) = %s, %v; want %s", s, got, err, want)
		}
	}
	if _, err := ParseValue("2"); err == nil {
		t.Error("ParseValue(2) should fail")
	}
}

func TestParseTransistorType(t *testing.T) {
	for s, want := range map[string]TransistorType{"n": NType, "p": PType, "d": DType} {
		got, err := ParseTransistorType(s)
		if err != nil || got != want {
			t.Errorf("ParseTransistorType(%q) = %s, %v; want %s", s, got, err, want)
		}
	}
	if _, err := ParseTransistorType("q"); err == nil {
		t.Error("ParseTransistorType(q) should fail")
	}
}

func TestScaleStrengthOrdering(t *testing.T) {
	sc := Scale{Sizes: 2, Strengths: 3}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	// κ1 < κ2 < γ1 < γ2 < γ3 < ω, all above StrengthNone.
	order := []Strength{
		StrengthNone,
		sc.SizeStrength(1), sc.SizeStrength(2),
		sc.DriveStrength(1), sc.DriveStrength(2), sc.DriveStrength(3),
		sc.Input(),
	}
	for i := 1; i < len(order); i++ {
		if order[i-1] >= order[i] {
			t.Fatalf("strength scale out of order at %d: %v", i, order)
		}
	}
	if sc.Max() != sc.Input() {
		t.Error("Max should be ω")
	}
}

func TestScaleValidate(t *testing.T) {
	if err := (Scale{Sizes: 0, Strengths: 1}).Validate(); err == nil {
		t.Error("zero sizes should be invalid")
	}
	if err := (Scale{Sizes: 1, Strengths: 0}).Validate(); err == nil {
		t.Error("zero strengths should be invalid")
	}
	if err := DefaultScale.Validate(); err != nil {
		t.Errorf("DefaultScale invalid: %v", err)
	}
}

func TestScalePanicsOutOfRange(t *testing.T) {
	sc := Scale{Sizes: 2, Strengths: 2}
	for _, f := range []func(){
		func() { sc.SizeStrength(0) },
		func() { sc.SizeStrength(3) },
		func() { sc.DriveStrength(0) },
		func() { sc.DriveStrength(3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for out-of-range class")
				}
			}()
			f()
		}()
	}
}

func TestAttenuate(t *testing.T) {
	sc := Scale{Sizes: 2, Strengths: 2}
	k1, k2 := sc.SizeStrength(1), sc.SizeStrength(2)
	g1, g2 := sc.DriveStrength(1), sc.DriveStrength(2)
	w := sc.Input()
	// Charge passes through any transistor unattenuated.
	if Attenuate(k1, g1) != k1 || Attenuate(k2, g2) != k2 {
		t.Error("charge signals must pass transistors unattenuated")
	}
	// Input strength becomes the transistor's strength.
	if Attenuate(w, g1) != g1 || Attenuate(w, g2) != g2 {
		t.Error("ω must attenuate to the transistor strength")
	}
	// Drive limited by the weakest transistor on the path.
	if Attenuate(g2, g1) != g1 || Attenuate(g1, g2) != g1 {
		t.Error("drive attenuation should be min")
	}
}

func TestAttenuateProperties(t *testing.T) {
	f := func(a, b uint8) bool {
		s, g := Strength(a%16), Strength(b%16)
		at := Attenuate(s, g)
		return at <= s && at <= g && (at == s || at == g)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSignalString(t *testing.T) {
	if None.String() != "-" {
		t.Errorf("None.String() = %q", None.String())
	}
	s := Signal{Strength: 3, Value: Hi}
	if s.String() != "1@3" {
		t.Errorf("Signal.String() = %q, want 1@3", s.String())
	}
}

func TestSwitchStateMonotone(t *testing.T) {
	// Information-order monotonicity: if gate g2 covers g1, then
	// SwitchState(t, g2) covers SwitchState(t, g1).
	vals := []Value{Lo, Hi, X}
	types := []TransistorType{NType, PType, DType}
	for _, typ := range types {
		for _, g1 := range vals {
			for _, g2 := range vals {
				if !Covers(g2, g1) {
					continue
				}
				if !Covers(SwitchState(typ, g2), SwitchState(typ, g1)) {
					t.Errorf("SwitchState(%s) not monotone: gate %s⊒%s but state %s⋣%s",
						typ, g2, g1, SwitchState(typ, g2), SwitchState(typ, g1))
				}
			}
		}
	}
}

package logic_test

import (
	"fmt"

	"fmossim/internal/logic"
)

// Example shows the ternary algebra: the least upper bound used when
// signals of equal strength collide, and how a transistor's switch state
// follows its gate.
func Example() {
	fmt.Println("lub(0,1) =", logic.Lub(logic.Lo, logic.Hi))
	fmt.Println("not(X)   =", logic.X.Not())
	fmt.Println("n-switch with gate=1:", logic.SwitchState(logic.NType, logic.Hi))
	fmt.Println("p-switch with gate=1:", logic.SwitchState(logic.PType, logic.Hi))
	fmt.Println("d-switch with gate=X:", logic.SwitchState(logic.DType, logic.X))
	// Output:
	// lub(0,1) = X
	// not(X)   = X
	// n-switch with gate=1: 1
	// p-switch with gate=1: 0
	// d-switch with gate=X: 1
}

// Package logic defines the ternary value system and the signal-strength
// lattice of Bryant's switch-level model (MOSSIM II), as used by FMOSSIM.
//
// Node and transistor states are ternary: 0, 1, or X, where X is an
// indeterminate value arising from uninitialized nodes, short circuits, or
// improper charge sharing. Signals carry a discrete strength drawn from a
// single ordered scale:
//
//	κ1 < κ2 < … < κk  <  γ1 < γ2 < … < γm  <  ω
//
// where the κi are storage-node sizes (charge strengths), the γj are
// transistor strengths (drive strengths), and ω is the strength of an input
// node (a voltage source). A signal of strength s passing through a
// conducting transistor of strength γ continues with strength min(s, γ):
// drive signals attenuate to the weakest transistor on the path, while
// charge signals (κ < γ always) pass unattenuated.
package logic

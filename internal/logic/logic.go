// Ternary values, the strength lattice, and transistor types. Package
// documentation lives in doc.go.
package logic

import "fmt"

// Value is a ternary logic value.
type Value uint8

const (
	// Lo is the logic-0 (low-voltage) state.
	Lo Value = iota
	// Hi is the logic-1 (high-voltage) state.
	Hi
	// X is the indeterminate state: an unknown voltage between (and
	// including) low and high.
	X
)

// String returns "0", "1", or "X".
func (v Value) String() string {
	switch v {
	case Lo:
		return "0"
	case Hi:
		return "1"
	case X:
		return "X"
	}
	return fmt.Sprintf("Value(%d)", uint8(v))
}

// Valid reports whether v is one of Lo, Hi, X.
func (v Value) Valid() bool { return v <= X }

// Definite reports whether v is a definite binary value (0 or 1).
func (v Value) Definite() bool { return v == Lo || v == Hi }

// Not returns the ternary complement: ¬0 = 1, ¬1 = 0, ¬X = X.
func (v Value) Not() Value {
	switch v {
	case Lo:
		return Hi
	case Hi:
		return Lo
	}
	return X
}

// Lub returns the least upper bound of two values in the information
// ordering: combining equal values yields that value; combining 0 with 1,
// or anything with X, yields X. This is the resolution applied when two
// signals of equal strength but different values meet at a node.
func Lub(a, b Value) Value {
	if a == b {
		return a
	}
	return X
}

// Covers reports whether a "covers" b in the information ordering, i.e.
// a = b or a = X. A correct ternary simulation step must produce values
// that cover every binary resolution of its X inputs.
func Covers(a, b Value) bool { return a == b || a == X }

// ParseValue parses "0", "1", "x" or "X" into a Value.
func ParseValue(s string) (Value, error) {
	switch s {
	case "0":
		return Lo, nil
	case "1":
		return Hi, nil
	case "x", "X":
		return X, nil
	}
	return X, fmt.Errorf("logic: invalid value %q (want 0, 1, or X)", s)
}

// TransistorType distinguishes the three switch types of the model.
type TransistorType uint8

const (
	// NType conducts when its gate is high (nMOS enhancement device).
	NType TransistorType = iota
	// PType conducts when its gate is low (pMOS enhancement device).
	PType
	// DType always conducts (negative-threshold nMOS depletion device,
	// used as a pull-up load in ratioed nMOS logic).
	DType
)

// String returns "n", "p", or "d".
func (t TransistorType) String() string {
	switch t {
	case NType:
		return "n"
	case PType:
		return "p"
	case DType:
		return "d"
	}
	return fmt.Sprintf("TransistorType(%d)", uint8(t))
}

// Valid reports whether t is one of the three defined types.
func (t TransistorType) Valid() bool { return t <= DType }

// ParseTransistorType parses "n", "p", or "d".
func ParseTransistorType(s string) (TransistorType, error) {
	switch s {
	case "n", "N":
		return NType, nil
	case "p", "P":
		return PType, nil
	case "d", "D":
		return DType, nil
	}
	return NType, fmt.Errorf("logic: invalid transistor type %q (want n, p, or d)", s)
}

// SwitchState returns the conduction state of a transistor of type t whose
// gate node has value gate, per Table 1 of the paper:
//
//	gate   n-type  p-type  d-type
//	 0       0       1       1
//	 1       1       0       1
//	 X       X       X       1
//
// State 0 is open (non-conducting), 1 is closed (fully conducting), and X
// is an indeterminate condition between open and closed, inclusive.
func SwitchState(t TransistorType, gate Value) Value {
	switch t {
	case NType:
		return gate
	case PType:
		return gate.Not()
	case DType:
		return Hi
	}
	return X
}

// Strength is a position on the unified signal-strength scale. The zero
// Strength means "no signal"; it is weaker than every real strength.
type Strength uint16

// StrengthNone is the absence of a signal.
const StrengthNone Strength = 0

// Scale describes the strength scale of a particular network: how many
// node sizes and how many transistor strengths it uses. The paper: "each
// storage node is assigned a discrete size (from a small set of possible
// values)" and "each transistor is assigned a discrete strength from a
// small set of values". Most circuits need 1-2 of each.
type Scale struct {
	// Sizes is the number of distinct storage-node sizes (k ≥ 1).
	Sizes int
	// Strengths is the number of distinct transistor strengths (m ≥ 1).
	Strengths int
}

// DefaultScale is sufficient for most nMOS circuits: two node sizes
// (ordinary nodes and high-capacitance busses) and two transistor
// strengths (depletion pull-up loads and ordinary transistors), plus the
// fault-injection strength added by Faults (see internal/fault).
var DefaultScale = Scale{Sizes: 2, Strengths: 3}

// Validate checks that the scale is usable.
func (sc Scale) Validate() error {
	if sc.Sizes < 1 {
		return fmt.Errorf("logic: scale needs at least 1 node size, have %d", sc.Sizes)
	}
	if sc.Strengths < 1 {
		return fmt.Errorf("logic: scale needs at least 1 transistor strength, have %d", sc.Strengths)
	}
	return nil
}

// SizeStrength maps node size class i (1-based, 1 = smallest) to its
// position on the scale: κi = i.
func (sc Scale) SizeStrength(size int) Strength {
	if size < 1 || size > sc.Sizes {
		panic(fmt.Sprintf("logic: node size %d out of range [1,%d]", size, sc.Sizes))
	}
	return Strength(size)
}

// DriveStrength maps transistor strength class j (1-based, 1 = weakest) to
// its position on the scale: γj = k + j, above every node size.
func (sc Scale) DriveStrength(strength int) Strength {
	if strength < 1 || strength > sc.Strengths {
		panic(fmt.Sprintf("logic: transistor strength %d out of range [1,%d]", strength, sc.Strengths))
	}
	return Strength(sc.Sizes + strength)
}

// Input returns ω, the strength of an input node, above every transistor
// strength.
func (sc Scale) Input() Strength {
	return Strength(sc.Sizes + sc.Strengths + 1)
}

// Max returns the largest strength on the scale (ω).
func (sc Scale) Max() Strength { return sc.Input() }

// Attenuate returns the strength of a signal of strength s after passing
// through a conducting transistor of strength γ: min(s, γ). Charge signals
// (κ ≤ every γ) pass unattenuated; drive signals are limited by the
// weakest transistor on their path; ω becomes the transistor's strength.
func Attenuate(s, gamma Strength) Strength {
	if s < gamma {
		return s
	}
	return gamma
}

// MaxStrength returns the stronger of a and b.
func MaxStrength(a, b Strength) Strength {
	if a > b {
		return a
	}
	return b
}

// Signal is a (strength, value) pair: the atomic unit of the steady-state
// computation. Signals originate at roots (input nodes at strength ω,
// storage-node charges at strength κ_size) and flow through conducting
// transistors, attenuating per Attenuate.
type Signal struct {
	Strength Strength
	Value    Value
}

// None is the absent signal.
var None = Signal{Strength: StrengthNone, Value: X}

// String renders a signal as e.g. "1@3" or "-" for no signal.
func (s Signal) String() string {
	if s.Strength == StrengthNone {
		return "-"
	}
	return fmt.Sprintf("%s@%d", s.Value, s.Strength)
}

// The VCD recorder. Package documentation lives in doc.go.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"fmossim/internal/logic"
	"fmossim/internal/netlist"
	"fmossim/internal/switchsim"
)

// Recorder captures the values of a set of watched nodes at successive
// timestamps and serializes them as VCD.
type Recorder struct {
	nw    *netlist.Network
	nodes []netlist.NodeID
	ids   []string // VCD identifier codes, parallel to nodes

	// last[i] is the previously recorded value, to emit changes only.
	last    []logic.Value
	started bool

	w   *bufio.Writer
	t   uint64
	err error
}

// New creates a recorder writing VCD to w, watching the given nodes. If
// nodes is empty, every node of the network is watched. The header is
// written on the first Sample.
func New(w io.Writer, nw *netlist.Network, nodes []netlist.NodeID) *Recorder {
	if len(nodes) == 0 {
		for i := 0; i < nw.NumNodes(); i++ {
			nodes = append(nodes, netlist.NodeID(i))
		}
	}
	r := &Recorder{
		nw:    nw,
		nodes: append([]netlist.NodeID(nil), nodes...),
		ids:   make([]string, len(nodes)),
		last:  make([]logic.Value, len(nodes)),
		w:     bufio.NewWriter(w),
	}
	for i := range r.nodes {
		r.ids[i] = idCode(i)
		r.last[i] = logic.Value(0xff) // sentinel: everything dumps initially
	}
	return r
}

// idCode builds the compact VCD identifier for index i using the
// printable-character scheme of the standard.
func idCode(i int) string {
	const base = 94 // printable ASCII '!'..'~'
	var sb strings.Builder
	for {
		sb.WriteByte(byte('!' + i%base))
		i /= base
		if i == 0 {
			break
		}
		i--
	}
	return sb.String()
}

// vcdChar renders a ternary value as a VCD scalar character.
func vcdChar(v logic.Value) byte {
	switch v {
	case logic.Lo:
		return '0'
	case logic.Hi:
		return '1'
	}
	return 'x'
}

// sanitize turns a node name into a VCD-safe identifier (VCD references
// must not contain whitespace; most viewers dislike brackets too).
func sanitize(name string) string {
	repl := strings.NewReplacer(" ", "_", "\t", "_", "[", "_", "]", "_")
	return repl.Replace(name)
}

func (r *Recorder) header() {
	fmt.Fprintf(r.w, "$date\n  (fmossim switch-level simulation)\n$end\n")
	fmt.Fprintf(r.w, "$version\n  fmossim VCD recorder\n$end\n")
	fmt.Fprintf(r.w, "$timescale 1ns $end\n")
	fmt.Fprintf(r.w, "$scope module %s $end\n", "fmossim")
	for i, n := range r.nodes {
		fmt.Fprintf(r.w, "$var wire 1 %s %s $end\n", r.ids[i], sanitize(r.nw.Name(n)))
	}
	fmt.Fprintf(r.w, "$upscope $end\n$enddefinitions $end\n")
}

// Sample records the circuit's watched values at the next timestamp.
// Only changed values are emitted, per the VCD format.
func (r *Recorder) Sample(c *switchsim.Circuit) {
	if r.err != nil {
		return
	}
	if !r.started {
		r.header()
		r.started = true
	}
	stamped := false
	for i, n := range r.nodes {
		v := c.Value(n)
		if v == r.last[i] {
			continue
		}
		if !stamped {
			fmt.Fprintf(r.w, "#%d\n", r.t)
			stamped = true
		}
		fmt.Fprintf(r.w, "%c%s\n", vcdChar(v), r.ids[i])
		r.last[i] = v
	}
	r.t++
}

// Attach wires the recorder into a logic simulator: every settled input
// setting is sampled. Returns the simulator for chaining.
func (r *Recorder) Attach(sim *switchsim.Simulator) *switchsim.Simulator {
	prev := sim.TraceFn
	sim.TraceFn = func(pattern, setting int, c *switchsim.Circuit) {
		if prev != nil {
			prev(pattern, setting, c)
		}
		r.Sample(c)
	}
	return sim
}

// Flush finishes the dump. Must be called once at the end.
func (r *Recorder) Flush() error {
	if r.err != nil {
		return r.err
	}
	if !r.started {
		r.header()
	}
	fmt.Fprintf(r.w, "#%d\n", r.t)
	return r.w.Flush()
}

// WatchNames resolves node names for New, failing on unknown names.
func WatchNames(nw *netlist.Network, names ...string) ([]netlist.NodeID, error) {
	ids := make([]netlist.NodeID, 0, len(names))
	for _, name := range names {
		id := nw.Lookup(name)
		if id == netlist.NoNode {
			return nil, fmt.Errorf("trace: unknown node %q", name)
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// Package trace records simulation waveforms and writes them in the IEEE
// 1364 Value Change Dump (VCD) format, so runs of the logic or fault
// simulator can be inspected in any waveform viewer (GTKWave etc.).
//
// The ternary switch-level states map onto VCD's four-state scalars: 0, 1
// and x (the unknown state); z is not produced (an isolated node holds
// its charge in the switch-level model rather than floating).
package trace

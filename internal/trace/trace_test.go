package trace_test

import (
	"bytes"
	"strings"
	"testing"

	"fmossim/internal/gates"
	"fmossim/internal/logic"
	"fmossim/internal/netlist"
	"fmossim/internal/switchsim"
	"fmossim/internal/trace"
)

func invNet() *netlist.Network {
	b := netlist.NewBuilder(logic.Scale{Sizes: 2, Strengths: 2})
	a := b.Input("a", logic.Lo)
	out := b.Node("out")
	gates.NInv(b, a, out, "inv")
	return b.Finalize()
}

func TestVCDStructure(t *testing.T) {
	nw := invNet()
	var buf bytes.Buffer
	watch, err := trace.WatchNames(nw, "a", "out")
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.New(&buf, nw, watch)

	sim := switchsim.NewSimulator(nw)
	rec.Attach(sim)
	sim.Init()
	seq := &switchsim.Sequence{Patterns: []switchsim.Pattern{
		{Settings: []switchsim.Setting{switchsim.MustVector(nw, map[string]logic.Value{"a": logic.Hi})}},
		{Settings: []switchsim.Setting{switchsim.MustVector(nw, map[string]logic.Value{"a": logic.Lo})}},
		{Settings: []switchsim.Setting{switchsim.MustVector(nw, map[string]logic.Value{"a": logic.Lo})}}, // no change
	}}
	sim.RunSequence(seq)
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}

	vcd := buf.String()
	for _, want := range []string{
		"$timescale", "$scope module fmossim", "$enddefinitions",
		"$var wire 1 ! a $end", "$var wire 1 \" out $end",
		"#0", "1!", "0\"", // a=1, out=0 at the first sample
	} {
		if !strings.Contains(vcd, want) {
			t.Errorf("VCD missing %q:\n%s", want, vcd)
		}
	}
	// The unchanged third pattern must not emit value changes: count the
	// timestamps with changes.
	changes := 0
	for _, line := range strings.Split(vcd, "\n") {
		if strings.HasPrefix(line, "1!") || strings.HasPrefix(line, "0!") {
			changes++
		}
	}
	if changes != 2 { // a: 1 then 0 (the repeat emits nothing)
		t.Errorf("input 'a' changed %d times in the dump, want 2", changes)
	}
}

func TestVCDWatchesEverythingByDefault(t *testing.T) {
	nw := invNet()
	var buf bytes.Buffer
	rec := trace.New(&buf, nw, nil)
	sim := switchsim.NewSimulator(nw)
	sim.Init()
	rec.Sample(sim.Circuit)
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	vcd := buf.String()
	if strings.Count(vcd, "$var wire") != nw.NumNodes() {
		t.Errorf("expected one $var per node:\n%s", vcd)
	}
	if !strings.Contains(vcd, "xinv.load") && !strings.Contains(vcd, " out $end") {
		t.Errorf("node names missing:\n%s", vcd)
	}
}

func TestWatchNamesError(t *testing.T) {
	nw := invNet()
	if _, err := trace.WatchNames(nw, "nope"); err == nil {
		t.Error("unknown name should fail")
	}
}

func TestEmptyFlush(t *testing.T) {
	nw := invNet()
	var buf bytes.Buffer
	rec := trace.New(&buf, nw, nil)
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "$enddefinitions") {
		t.Error("flush without samples should still emit a header")
	}
}

func TestXStateRendering(t *testing.T) {
	nw := invNet()
	var buf bytes.Buffer
	watch, _ := trace.WatchNames(nw, "out")
	rec := trace.New(&buf, nw, watch)
	sim := switchsim.NewSimulator(nw)
	sim.Init()
	sim.MustSet(map[string]logic.Value{"a": logic.X})
	rec.Sample(sim.Circuit)
	rec.Flush()
	if !strings.Contains(buf.String(), "x!") {
		t.Errorf("X state should dump as 'x':\n%s", buf.String())
	}
}

package trace_test

import (
	"fmt"
	"strings"

	"fmossim/internal/gates"
	"fmossim/internal/logic"
	"fmossim/internal/netlist"
	"fmossim/internal/switchsim"
	"fmossim/internal/trace"
)

// ExampleRecorder attaches a VCD recorder to a logic simulation of an
// inverter and prints the value-change section of the dump.
func ExampleRecorder() {
	b := netlist.NewBuilder(logic.Scale{Sizes: 2, Strengths: 2})
	in := b.Input("in", logic.Lo)
	out := b.Node("out")
	gates.NInv(b, in, out, "inv")
	nw := b.Finalize()

	var vcd strings.Builder
	rec := trace.New(&vcd, nw, []netlist.NodeID{in, out})
	sim := rec.Attach(switchsim.NewSimulator(nw))
	sim.MustSet(map[string]logic.Value{"in": logic.Lo})
	sim.MustSet(map[string]logic.Value{"in": logic.Hi})
	rec.Flush()

	_, changes, _ := strings.Cut(vcd.String(), "$enddefinitions $end\n")
	fmt.Print(changes)
	// Output:
	// #0
	// 0!
	// 1"
	// #1
	// 1!
	// 0"
	// #2
}

package gates_test

import (
	"fmt"

	"fmossim/internal/gates"
	"fmossim/internal/logic"
	"fmossim/internal/netlist"
	"fmossim/internal/switchsim"
)

// ExampleNNand builds a two-input nMOS NAND from the cell library and
// checks one row of its truth table.
func ExampleNNand() {
	b := netlist.NewBuilder(logic.Scale{Sizes: 2, Strengths: 2})
	a := b.Input("a", logic.Lo)
	c := b.Input("c", logic.Lo)
	out := b.Node("out")
	gates.NNand(b, out, "nand", a, c)
	nw := b.Finalize()

	sim := switchsim.NewSimulator(nw)
	sim.MustSet(map[string]logic.Value{"a": logic.Hi, "c": logic.Lo})
	fmt.Println("a=1 c=0 out =", sim.Value("out"))
	sim.MustSet(map[string]logic.Value{"a": logic.Hi, "c": logic.Hi})
	fmt.Println("a=1 c=1 out =", sim.Value("out"))
	// Output:
	// a=1 c=0 out = 1
	// a=1 c=1 out = 0
}

// Cell constructors. Package documentation lives in doc.go.
package gates

import (
	"fmt"

	"fmossim/internal/logic"
	"fmossim/internal/netlist"
)

// NInv builds an nMOS ratioed inverter: a depletion pull-up load on out
// and an n-type pull-down gated by in. The pull-down uses the default
// (strong) class so it overpowers the weak load, as ratioed logic
// requires.
func NInv(b *netlist.Builder, in, out netlist.NodeID, prefix string) {
	b.Load(out, prefix+".load")
	b.N(in, out, b.Gnd, prefix+".pd")
}

// NNand builds an nMOS NAND of the given inputs: a series pull-down chain
// under a depletion load.
func NNand(b *netlist.Builder, out netlist.NodeID, prefix string, in ...netlist.NodeID) {
	if len(in) == 0 {
		panic("gates: NNand needs at least one input")
	}
	b.Load(out, prefix+".load")
	prev := out
	for i, g := range in {
		var next netlist.NodeID
		if i == len(in)-1 {
			next = b.Gnd
		} else {
			next = b.Node(fmt.Sprintf("%s.s%d", prefix, i))
		}
		b.N(g, prev, next, fmt.Sprintf("%s.pd%d", prefix, i))
		prev = next
	}
}

// NNor builds an nMOS NOR of the given inputs: parallel pull-downs under a
// depletion load.
func NNor(b *netlist.Builder, out netlist.NodeID, prefix string, in ...netlist.NodeID) {
	if len(in) == 0 {
		panic("gates: NNor needs at least one input")
	}
	b.Load(out, prefix+".load")
	for i, g := range in {
		b.N(g, out, b.Gnd, fmt.Sprintf("%s.pd%d", prefix, i))
	}
}

// CInv builds a complementary CMOS inverter.
func CInv(b *netlist.Builder, in, out netlist.NodeID, prefix string) {
	b.P(in, b.Vdd, out, prefix+".pu")
	b.N(in, out, b.Gnd, prefix+".pd")
}

// CNand builds a complementary CMOS NAND: parallel p pull-ups, series n
// pull-downs.
func CNand(b *netlist.Builder, out netlist.NodeID, prefix string, in ...netlist.NodeID) {
	if len(in) == 0 {
		panic("gates: CNand needs at least one input")
	}
	for i, g := range in {
		b.P(g, b.Vdd, out, fmt.Sprintf("%s.pu%d", prefix, i))
	}
	prev := out
	for i, g := range in {
		var next netlist.NodeID
		if i == len(in)-1 {
			next = b.Gnd
		} else {
			next = b.Node(fmt.Sprintf("%s.s%d", prefix, i))
		}
		b.N(g, prev, next, fmt.Sprintf("%s.pd%d", prefix, i))
		prev = next
	}
}

// CNor builds a complementary CMOS NOR: series p pull-ups, parallel n
// pull-downs.
func CNor(b *netlist.Builder, out netlist.NodeID, prefix string, in ...netlist.NodeID) {
	if len(in) == 0 {
		panic("gates: CNor needs at least one input")
	}
	prev := b.Vdd
	for i, g := range in {
		var next netlist.NodeID
		if i == len(in)-1 {
			next = out
		} else {
			next = b.Node(fmt.Sprintf("%s.s%d", prefix, i))
		}
		b.P(g, prev, next, fmt.Sprintf("%s.pu%d", prefix, i))
		prev = next
	}
	for i, g := range in {
		b.N(g, out, b.Gnd, fmt.Sprintf("%s.pd%d", prefix, i))
	}
}

// PassN connects a and bb through an n-type pass transistor gated by en.
func PassN(b *netlist.Builder, en, x, y netlist.NodeID, label string) netlist.TransID {
	return b.N(en, x, y, label)
}

// TGate connects x and y through a CMOS transmission gate: an n-device
// gated by en in parallel with a p-device gated by enBar.
func TGate(b *netlist.Builder, en, enBar, x, y netlist.NodeID, prefix string) {
	b.N(en, x, y, prefix+".n")
	b.P(enBar, x, y, prefix+".p")
}

// DynLatch builds a dynamic latch: a pass transistor gated by clk writes
// the storage node, whose value an inverter restores onto out (inverted).
// The storage node is returned so faults can target it.
func DynLatch(b *netlist.Builder, clk, in, out netlist.NodeID, prefix string, cmos bool) netlist.NodeID {
	store := b.Node(prefix + ".store")
	b.N(clk, in, store, prefix+".pass")
	if cmos {
		CInv(b, store, out, prefix+".inv")
	} else {
		NInv(b, store, out, prefix+".inv")
	}
	return store
}

// Precharge adds an n-type device from Vdd to node n gated by clk: the
// standard precharge for nMOS dynamic busses (the switch-level model does
// not represent threshold drops).
func Precharge(b *netlist.Builder, clk, n netlist.NodeID, label string) netlist.TransID {
	return b.N(clk, b.Vdd, n, label)
}

// Pulldown adds an n-type device from node n to Gnd gated by en.
func Pulldown(b *netlist.Builder, en, n netlist.NodeID, label string) netlist.TransID {
	return b.N(en, n, b.Gnd, label)
}

// NBuf builds a two-stage nMOS buffer (two inverters) from in to out,
// creating the intermediate node.
func NBuf(b *netlist.Builder, in, out netlist.NodeID, prefix string) {
	mid := b.Node(prefix + ".mid")
	NInv(b, in, mid, prefix+".i0")
	NInv(b, mid, out, prefix+".i1")
}

// InvPair builds an inverter pair producing both polarities of in:
// notOut = ¬in, bufOut = in (restored). Used for address true/complement
// generation in decoders.
func InvPair(b *netlist.Builder, in, notOut, bufOut netlist.NodeID, prefix string, cmos bool) {
	if cmos {
		CInv(b, in, notOut, prefix+".n")
		CInv(b, notOut, bufOut, prefix+".b")
	} else {
		NInv(b, in, notOut, prefix+".n")
		NInv(b, notOut, bufOut, prefix+".b")
	}
}

// Decoder builds an nMOS NOR decoder: for each of 2^len(addr) output
// lines, a NOR over the address bits (true or complement per the line
// index) so exactly the addressed line is high. addrBar must hold the
// complements. Output line i is created as "<prefix>.out<i>" and returned.
func Decoder(b *netlist.Builder, addr, addrBar []netlist.NodeID, prefix string) []netlist.NodeID {
	if len(addr) != len(addrBar) {
		panic("gates: Decoder address/complement length mismatch")
	}
	n := 1 << len(addr)
	outs := make([]netlist.NodeID, n)
	for i := 0; i < n; i++ {
		out := b.Node(fmt.Sprintf("%s.out%d", prefix, i))
		outs[i] = out
		// NOR over the bits that must be 0 for this line: for line i,
		// bit k must equal (i>>k)&1, so the NOR input is the bit's
		// complement-of-required polarity.
		ins := make([]netlist.NodeID, len(addr))
		for k := range addr {
			if (i>>k)&1 == 1 {
				ins[k] = addrBar[k] // required 1: NOR sees the complement
			} else {
				ins[k] = addr[k] // required 0: NOR sees the true line
			}
		}
		NNor(b, out, fmt.Sprintf("%s.nor%d", prefix, i), ins...)
	}
	return outs
}

// EnableAll gates each line through an n-type pass device controlled by
// en, producing gated copies; used for clocked decoder outputs. The gated
// line nodes are created as "<prefix>.g<i>".
func EnableAll(b *netlist.Builder, en netlist.NodeID, lines []netlist.NodeID, prefix string) []netlist.NodeID {
	outs := make([]netlist.NodeID, len(lines))
	for i, ln := range lines {
		g := b.Node(fmt.Sprintf("%s.g%d", prefix, i))
		b.N(en, ln, g, fmt.Sprintf("%s.pass%d", prefix, i))
		outs[i] = g
	}
	return outs
}

// Value helpers for tests.
var (
	L  = logic.Lo
	H  = logic.Hi
	Xv = logic.X
)

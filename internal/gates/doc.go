// Package gates is a cell library of common nMOS and CMOS structures
// expressed as switch-level subnetworks: ratioed inverters and gates with
// depletion loads, complementary CMOS gates, pass-transistor logic,
// dynamic latches, and precharge devices. It is the substrate from which
// the RAM circuits and the examples are generated.
//
// All constructors take a netlist.Builder and wire existing nodes; they
// create internal nodes with names derived from the given prefix.
package gates

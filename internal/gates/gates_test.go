package gates_test

import (
	"testing"

	"fmossim/internal/gates"
	"fmossim/internal/logic"
	"fmossim/internal/netlist"
	"fmossim/internal/switchsim"
)

const (
	L = logic.Lo
	H = logic.Hi
	X = logic.X
)

func newB() *netlist.Builder {
	return netlist.NewBuilder(logic.Scale{Sizes: 2, Strengths: 2})
}

func TestTGate(t *testing.T) {
	b := newB()
	en := b.Input("en", L)
	enB := b.Input("enb", H)
	din := b.Input("din", L)
	x := b.Node("x")
	y := b.Node("y")
	b.N(b.TieHi(), din, x, "drv")
	gates.TGate(b, en, enB, x, y, "tg")
	sim := switchsim.NewSimulator(b.Finalize())

	sim.MustSet(map[string]logic.Value{"din": H})
	if got := sim.Value("y"); got != X {
		t.Errorf("closed t-gate should isolate: y=%s, want X (uninit charge)", got)
	}
	sim.MustSet(map[string]logic.Value{"en": H, "enb": L})
	if got := sim.Value("y"); got != H {
		t.Errorf("open t-gate should conduct: y=%s, want 1", got)
	}
	// A transmission gate passes both polarities without degradation.
	sim.MustSet(map[string]logic.Value{"din": L})
	if got := sim.Value("y"); got != L {
		t.Errorf("t-gate should pass 0: y=%s", got)
	}
}

func TestNBufRestoresPolarity(t *testing.T) {
	b := newB()
	in := b.Input("in", L)
	out := b.Node("out")
	gates.NBuf(b, in, out, "buf")
	sim := switchsim.NewSimulator(b.Finalize())
	for _, v := range []logic.Value{L, H, X} {
		sim.MustSet(map[string]logic.Value{"in": v})
		if got := sim.Value("out"); got != v {
			t.Errorf("buf(%s) = %s, want %s", v, got, v)
		}
	}
}

func TestInvPair(t *testing.T) {
	for _, cmos := range []bool{false, true} {
		b := newB()
		in := b.Input("in", L)
		notOut := b.Node("n")
		bufOut := b.Node("t")
		gates.InvPair(b, in, notOut, bufOut, "p", cmos)
		sim := switchsim.NewSimulator(b.Finalize())
		sim.MustSet(map[string]logic.Value{"in": H})
		if sim.Value("n") != L || sim.Value("t") != H {
			t.Errorf("cmos=%v: InvPair(1) = %s/%s, want 0/1", cmos, sim.Value("n"), sim.Value("t"))
		}
		sim.MustSet(map[string]logic.Value{"in": L})
		if sim.Value("n") != H || sim.Value("t") != L {
			t.Errorf("cmos=%v: InvPair(0) = %s/%s, want 1/0", cmos, sim.Value("n"), sim.Value("t"))
		}
	}
}

func TestDecoderWithEnable(t *testing.T) {
	b := newB()
	var addr, addrBar []netlist.NodeID
	for i := 0; i < 2; i++ {
		in := b.Input([]string{"a0", "a1"}[i], L)
		nb := b.Node([]string{"a0b", "a1b"}[i])
		bf := b.Node([]string{"a0t", "a1t"}[i])
		gates.InvPair(b, in, nb, bf, []string{"p0", "p1"}[i], false)
		addr, addrBar = append(addr, bf), append(addrBar, nb)
	}
	lines := gates.Decoder(b, addr, addrBar, "dec")
	en := b.Input("en", L)
	gated := gates.EnableAll(b, en, lines, "g")
	sim := switchsim.NewSimulator(b.Finalize())

	sim.MustSet(map[string]logic.Value{"a0": H, "a1": L, "en": H})
	for i, g := range gated {
		want := L
		if i == 1 {
			want = H
		}
		if got := sim.Circuit.Value(g); got != want {
			t.Errorf("gated line %d = %s, want %s", i, got, want)
		}
	}
	// Disable: gated lines float (keep charge), raw lines still decode.
	sim.MustSet(map[string]logic.Value{"en": L, "a0": L})
	if got := sim.Circuit.Value(gated[1]); got != H {
		t.Errorf("disabled gated line should hold charge: %s", got)
	}
	if got := sim.Circuit.Value(lines[0]); got != H {
		t.Errorf("raw line 0 should now decode high: %s", got)
	}
}

func TestPanicsOnEmptyInputs(t *testing.T) {
	b := newB()
	out := b.Node("out")
	for name, f := range map[string]func(){
		"NNand": func() { gates.NNand(b, out, "x") },
		"NNor":  func() { gates.NNor(b, out, "x") },
		"CNand": func() { gates.CNand(b, out, "x") },
		"CNor":  func() { gates.CNor(b, out, "x") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with no inputs should panic", name)
				}
			}()
			f()
		}()
	}
	defer func() {
		if recover() == nil {
			t.Error("Decoder length mismatch should panic")
		}
	}()
	gates.Decoder(b, []netlist.NodeID{out}, nil, "d")
}

func TestPassN(t *testing.T) {
	b := newB()
	en := b.Input("en", H)
	src := b.Input("src", H)
	dst := b.Node("dst")
	id := gates.PassN(b, en, src, dst, "pass")
	nw := b.Finalize()
	tr := nw.Transistor(id)
	if tr.Type != logic.NType || tr.Gate != en {
		t.Error("PassN should build an n-device gated by en")
	}
	sim := switchsim.NewSimulator(nw)
	sim.Init()
	if got := sim.Value("dst"); got != H {
		t.Errorf("pass transistor should conduct: dst=%s", got)
	}
}

// The serial reference simulator and the paper's serial-time estimator.
// Package documentation lives in doc.go.
package serial

import (
	"fmt"

	"fmossim/internal/fault"
	"fmossim/internal/logic"
	"fmossim/internal/netlist"
	"fmossim/internal/switchsim"
)

// Options configures a serial run.
type Options struct {
	// Observe lists the observed output nodes. Required.
	Observe []netlist.NodeID
	// StopOnDetect halts a fault's simulation at its first observed
	// difference (the paper's serial model). When false, every fault runs
	// the full sequence (used by equivalence tests).
	StopOnDetect bool
	// HardOnly requires both values definite for a detection.
	HardOnly bool
	// StaticLocality and MaxRounds mirror the concurrent options.
	StaticLocality bool
	MaxRounds      int
}

// FaultResult is the serial outcome for one fault.
type FaultResult struct {
	Detected         bool
	Pattern, Setting int
	Output           netlist.NodeID
	Good, Faulty     logic.Value
	Hard             bool
	// PatternsSimulated counts the patterns executed for this fault
	// (= Pattern+1 when detected and stopped, else the whole sequence).
	PatternsSimulated int
	Work              int64
	Oscillated        bool
}

// Result aggregates a serial run.
type Result struct {
	NumFaults int
	PerFault  []FaultResult
	// GoodWork is the work of simulating the good circuit alone over the
	// full sequence; GoodPerPattern is its per-pattern breakdown.
	GoodWork       int64
	GoodPerPattern []int64
	// FaultWork is the summed work of all faulty-circuit simulations.
	FaultWork int64
}

// TotalWork returns good + faulty work units.
func (r *Result) TotalWork() int64 { return r.GoodWork + r.FaultWork }

// Detected counts detected faults.
func (r *Result) Detected() int {
	n := 0
	for _, fr := range r.PerFault {
		if fr.Detected {
			n++
		}
	}
	return n
}

// Coverage returns detected/total in [0,1].
func (r *Result) Coverage() float64 {
	if r.NumFaults == 0 {
		return 0
	}
	return float64(r.Detected()) / float64(r.NumFaults)
}

// goodTrace runs the good circuit over the sequence and records the
// observed output values after every setting, plus work accounting.
func goodTrace(tab *switchsim.Tables, seq *switchsim.Sequence, opts Options) (trace [][]logic.Value, perPattern []int64, total int64) {
	c := switchsim.NewCircuit(tab)
	sv := switchsim.NewSolver(tab)
	sv.StaticLocality = opts.StaticLocality
	sv.MaxRounds = opts.MaxRounds
	sv.Init(c)
	w0 := sv.Work().Units()
	for pi := range seq.Patterns {
		p := &seq.Patterns[pi]
		for si := range p.Settings {
			sv.Step(c, p.Settings[si])
			vals := make([]logic.Value, len(opts.Observe))
			for i, o := range opts.Observe {
				vals[i] = c.Value(o)
			}
			trace = append(trace, vals)
		}
		w := sv.Work().Units()
		perPattern = append(perPattern, w-w0)
		w0 = w
	}
	return trace, perPattern, sv.Work().Units()
}

// Run performs a full serial fault simulation of the sequence.
func Run(nw *netlist.Network, faults []fault.Fault, seq *switchsim.Sequence, opts Options) (*Result, error) {
	if len(opts.Observe) == 0 {
		return nil, fmt.Errorf("serial: no observed outputs configured")
	}
	tab := switchsim.NewTables(nw)
	trace, perPattern, goodWork := goodTrace(tab, seq, opts)

	res := &Result{
		NumFaults:      len(faults),
		GoodWork:       goodWork,
		GoodPerPattern: perPattern,
	}

	c := switchsim.NewCircuit(tab)
	sv := switchsim.NewSolver(tab)
	sv.StaticLocality = opts.StaticLocality
	sv.MaxRounds = opts.MaxRounds

	for _, f := range faults {
		fr := simulateFault(tab, c, sv, f, seq, trace, opts)
		res.FaultWork += fr.Work
		res.PerFault = append(res.PerFault, fr)
	}
	return res, nil
}

func simulateFault(tab *switchsim.Tables, c *switchsim.Circuit, sv *switchsim.Solver, f fault.Fault, seq *switchsim.Sequence, trace [][]logic.Value, opts Options) FaultResult {
	w0 := sv.Work().Units()
	c.ClearFaults()
	c.Reset()
	seeds := f.Apply(c)
	r := sv.SettleAll(c)
	osc := r.Oscillated
	_ = seeds // SettleAll covers the apply perturbations

	fr := FaultResult{Pattern: -1, Setting: -1}
	step := 0
patterns:
	for pi := range seq.Patterns {
		p := &seq.Patterns[pi]
		fr.PatternsSimulated++
		for si := range p.Settings {
			res := sv.Step(c, p.Settings[si])
			osc = osc || res.Oscillated
			if p.ObserveAt(si) && !fr.Detected {
				for oi, o := range opts.Observe {
					gv := trace[step][oi]
					fv := c.Value(o)
					if fv == gv {
						continue
					}
					hard := gv.Definite() && fv.Definite()
					if opts.HardOnly && !hard {
						continue
					}
					fr.Detected = true
					fr.Pattern, fr.Setting = pi, si
					fr.Output, fr.Good, fr.Faulty, fr.Hard = o, gv, fv, hard
					break
				}
			}
			step++
		}
		if fr.Detected && opts.StopOnDetect {
			break patterns
		}
	}
	fr.Oscillated = osc
	fr.Work = sv.Work().Units() - w0
	fr.PatternsSimulated = max(fr.PatternsSimulated, 0)
	_ = tab
	return fr
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Estimate reproduces the paper's serial-time estimator: the sum over all
// faults of the number of patterns required to detect the fault (the full
// sequence length for undetected faults) times the average cost of
// simulating the good circuit for one pattern. detPattern[i] is the
// 0-based pattern index of fault i's first detection, or -1 if
// undetected; goodPerPattern is the good circuit's per-pattern cost in
// any unit (work or nanoseconds); the estimate is returned in that unit.
func Estimate(detPattern []int, goodPerPattern []int64, nPatterns int) int64 {
	if nPatterns == 0 || len(goodPerPattern) == 0 {
		return 0
	}
	var goodTotal int64
	for _, w := range goodPerPattern {
		goodTotal += w
	}
	avg := float64(goodTotal) / float64(len(goodPerPattern))
	var est float64
	for _, dp := range detPattern {
		n := nPatterns
		if dp >= 0 {
			n = dp + 1
		}
		est += avg * float64(n)
	}
	return int64(est)
}

package serial_test

import (
	"fmt"

	"fmossim/internal/fault"
	"fmossim/internal/gates"
	"fmossim/internal/logic"
	"fmossim/internal/netlist"
	"fmossim/internal/serial"
	"fmossim/internal/switchsim"
)

// ExampleRun simulates every stuck-at fault of an inverter chain
// one-at-a-time — the baseline the concurrent simulator is validated
// against and compared with.
func ExampleRun() {
	b := netlist.NewBuilder(logic.Scale{Sizes: 2, Strengths: 2})
	in := b.Input("in", logic.Lo)
	mid := b.Node("mid")
	out := b.Node("out")
	gates.NInv(b, in, mid, "inv1")
	gates.NInv(b, mid, out, "inv2")
	nw := b.Finalize()

	seq := &switchsim.Sequence{Name: "toggle", Patterns: []switchsim.Pattern{
		{Name: "p0", Settings: []switchsim.Setting{
			{{Node: in, Value: logic.Lo}},
			{{Node: in, Value: logic.Hi}},
		}},
	}}
	faults := fault.NodeStuckFaults(nw, fault.Options{})
	res, err := serial.Run(nw, faults, seq, serial.Options{
		Observe: []netlist.NodeID{out},
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("detected %d of %d faults (%.0f%%)\n",
		res.Detected(), len(faults), 100*res.Coverage())
	// Output:
	// detected 4 of 4 faults (100%)
}

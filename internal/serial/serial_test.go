package serial_test

import (
	"math/rand"
	"testing"

	"fmossim/internal/core"
	"fmossim/internal/fault"
	"fmossim/internal/march"
	"fmossim/internal/netlist"
	"fmossim/internal/ram"
	"fmossim/internal/serial"
	"fmossim/internal/testnet"
)

func TestSerialDetectsSameFaultsAsConcurrent(t *testing.T) {
	// On random structured circuits, the serial and concurrent
	// simulators must agree on which faults are detected and where
	// (pattern/setting/output/values), fault by fault.
	nSeeds := int64(12)
	if testing.Short() {
		nSeeds = 4
	}
	for seed := int64(0); seed < nSeeds; seed++ {
		rng := rand.New(rand.NewSource(seed + 100))
		tc := testnet.Structured(rng)
		nw := tc.Net
		all := append(fault.NodeStuckFaults(nw, fault.Options{}),
			fault.TransistorStuckFaults(nw, fault.Options{})...)
		faults := fault.Sample(all, 16, rng)
		seq := tc.RandomSequence(rng, 12, 0)

		sres, err := serial.Run(nw, faults, seq, serial.Options{
			Observe: tc.Outputs, StopOnDetect: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		csim, err := core.New(nw, faults, core.Options{Observe: tc.Outputs})
		if err != nil {
			t.Fatal(err)
		}
		cres := csim.Run(seq)

		if sres.Detected() != cres.Detected {
			t.Errorf("seed %d: serial detected %d, concurrent %d", seed, sres.Detected(), cres.Detected)
		}
		for i := range faults {
			sd := sres.PerFault[i]
			cd, ok := csim.Detected(i)
			if sd.Oscillated || csim.Oscillated(i) {
				continue // X-resolution is event-order dependent
			}
			if sd.Detected != ok {
				t.Errorf("seed %d fault %d (%s): serial detected=%v concurrent=%v",
					seed, i, faults[i].Describe(nw), sd.Detected, ok)
				continue
			}
			if !ok {
				continue
			}
			if sd.Pattern != cd.Pattern || sd.Setting != cd.Setting ||
				sd.Output != cd.Output || sd.Good != cd.Good || sd.Faulty != cd.Faulty {
				t.Errorf("seed %d fault %d (%s): serial det %d/%d@%s %s vs %s, concurrent %d/%d@%s %s vs %s",
					seed, i, faults[i].Describe(nw),
					sd.Pattern, sd.Setting, nw.Name(sd.Output), sd.Good, sd.Faulty,
					cd.Pattern, cd.Setting, nw.Name(cd.Output), cd.Good, cd.Faulty)
			}
		}
	}
}

func TestSerialStopOnDetectShortensWork(t *testing.T) {
	m := ram.New(ram.Config{Rows: 4, Cols: 4})
	faults := fault.Sample(fault.NodeStuckFaults(m.Net, fault.Options{}), 10,
		rand.New(rand.NewSource(3)))
	seq := march.Sequence1(m)
	opts := serial.Options{Observe: []netlist.NodeID{m.DataOut}, StopOnDetect: true}
	stop, err := serial.Run(m.Net, faults, seq, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.StopOnDetect = false
	full, err := serial.Run(m.Net, faults, seq, opts)
	if err != nil {
		t.Fatal(err)
	}
	if stop.Detected() != full.Detected() {
		t.Errorf("detections differ: stop %d vs full %d", stop.Detected(), full.Detected())
	}
	if stop.FaultWork >= full.FaultWork {
		t.Errorf("stopping early should cost less: %d vs %d", stop.FaultWork, full.FaultWork)
	}
	for i, fr := range stop.PerFault {
		if fr.Detected && fr.PatternsSimulated != fr.Pattern+1 {
			t.Errorf("fault %d: simulated %d patterns, detected at %d", i, fr.PatternsSimulated, fr.Pattern)
		}
	}
}

func TestSerialGoodPerPattern(t *testing.T) {
	m := ram.New(ram.Config{Rows: 4, Cols: 4})
	seq := march.Sequence1(m)
	res, err := serial.Run(m.Net, nil, seq, serial.Options{Observe: []netlist.NodeID{m.DataOut}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.GoodPerPattern) != len(seq.Patterns) {
		t.Fatalf("per-pattern entries %d, want %d", len(res.GoodPerPattern), len(seq.Patterns))
	}
	var sum int64
	for _, w := range res.GoodPerPattern {
		if w < 0 {
			t.Error("negative per-pattern work")
		}
		sum += w
	}
	if sum <= 0 || sum > res.GoodWork {
		t.Errorf("per-pattern sum %d vs total %d", sum, res.GoodWork)
	}
	if res.Coverage() != 0 || res.NumFaults != 0 {
		t.Error("empty fault list should have zero coverage")
	}
}

func TestSerialRequiresObserve(t *testing.T) {
	m := ram.New(ram.Config{Rows: 4, Cols: 4})
	if _, err := serial.Run(m.Net, nil, march.Sequence1(m), serial.Options{}); err == nil {
		t.Error("Run without observed outputs should fail")
	}
}

func TestEstimate(t *testing.T) {
	// Three faults detected at patterns 0, 4, and never (10-pattern
	// sequence); good cost 100 units/pattern.
	per := make([]int64, 10)
	for i := range per {
		per[i] = 100
	}
	got := serial.Estimate([]int{0, 4, -1}, per, 10)
	want := int64(100*1 + 100*5 + 100*10)
	if got != want {
		t.Errorf("Estimate = %d, want %d", got, want)
	}
	if serial.Estimate(nil, per, 10) != 0 {
		t.Error("no faults should estimate 0")
	}
	if serial.Estimate([]int{0}, nil, 0) != 0 {
		t.Error("degenerate inputs should estimate 0")
	}
}

// Package serial implements the baseline FMOSSIM is compared against: a
// serial fault simulator in which each faulty circuit is simulated
// separately, in its entirety, until it produces an output different from
// the good circuit's. It also implements the paper's serial-time
// estimator: "All serial fault simulation times were estimated by summing
// over all faults the number of patterns required to detect the fault
// times the average time to simulate the good circuit for 1 pattern."
package serial

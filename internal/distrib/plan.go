// Activity-aware shard planning: the coordinator estimates each shard's
// cost from the recording before dispatching anything, and hands out the
// expensive shards first. With a fixed slot pool, front-loading the heavy
// work shrinks the tail — a cheap shard finishing last wastes at most its
// own small cost, while an expensive shard dispatched last can leave the
// whole pool idle for its entire runtime.
//
// The estimate never touches results: only the order in which shards
// enter the dispatch queue changes. Shard composition (the lo..hi fault
// windows) is exactly the index-order split, so campaign.Merge receives
// the identical per-batch results and the merged Result stays
// byte-identical to any other dispatch order.
package distrib

import (
	"sort"

	"fmossim/internal/fault"
	"fmossim/internal/netlist"
	"fmossim/internal/switchsim"
)

// planHeadSteps bounds how much of the recording the planner reads. The
// head of the trajectory is enough signal: a fault whose sites sit in a
// region the good circuit exercises early diverges early and keeps its
// circuit active; cold-region faults stay cheap for exactly as long as
// their region stays cold. Reading the full recording would sharpen the
// estimate slightly at proportionally higher planning cost.
const planHeadSteps = 96

// headActivity counts, per node, how often the recording's head explores
// it: the per-node activity profile the fault cost estimates sample.
func headActivity(rec *switchsim.Recording, numNodes int) []int {
	touch := make([]int, numNodes)
	steps := rec.Steps
	if len(steps) > planHeadSteps {
		steps = steps[:planHeadSteps]
	}
	for i := range steps {
		for _, n := range steps[i].Explored {
			if int(n) < len(touch) {
				touch[int(n)]++
			}
		}
	}
	return touch
}

// planShardOrder returns the shard indices [0, nBatches) in dispatch
// order: descending estimated cost, index ascending among ties (so the
// plan itself is deterministic). A shard's estimate is the summed head
// activity over its faults' static sites, plus one unit per fault so
// fully cold shards still order by width.
func planShardOrder(rec *switchsim.Recording, nw *netlist.Network, faults []fault.Fault, nBatches, batchSize int) []int {
	touch := headActivity(rec, nw.NumNodes())
	cost := make([]int64, nBatches)
	for fi := range faults {
		est := int64(1)
		for _, n := range faults[fi].Sites(nw) {
			est += int64(touch[int(n)])
		}
		cost[fi/batchSize] += est
	}
	order := make([]int, nBatches)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if cost[order[a]] != cost[order[b]] {
			return cost[order[a]] > cost[order[b]]
		}
		return order[a] < order[b]
	})
	return order
}

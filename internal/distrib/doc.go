// Package distrib is the distributed-campaign coordinator: it spreads
// one fault campaign across a pool of fmossimd workers, completing the
// amortization ladder the paper starts. FMOSSIM's concurrent algorithm
// amortizes one good-circuit simulation across the fault universe of one
// process; the campaign engine amortizes one recorded trajectory across
// batches; the job server amortizes it across jobs; distrib amortizes it
// across machines — the coordinator records (or is handed) the
// good-circuit switchsim.Recording exactly once, uploads its encoded
// bytes to each worker under their content fingerprint, and dispatches
// shard jobs that replay it, so a campaign of W workers × B shards pays
// for exactly one good-circuit simulation, cluster-wide.
//
// # Execution model
//
// Run resolves the workload spec locally with server.ResolveSpec — the
// byte-for-byte resolution path workers use — so the coordinator's shard
// windows [lo, hi) index the identical fault universe on every worker.
// The universe is partitioned into batches of BatchSize faults; each
// batch becomes one shard job (POST /jobs with shard_lo/shard_hi,
// recording_fp, include_batch) on the existing fmossimd job API. Worker
// slots (InFlight per worker) pull shards from a shared queue, stream
// each job's NDJSON progress, and return the raw core.BatchResult from
// the terminal result line.
//
// Failures requeue: a shard whose worker dies mid-stream (connection
// refused, broken stream, failed job) goes back on the queue with its
// attempt count incremented and is preferentially picked up by a
// different worker; a shard exhausting MaxAttempts fails the campaign.
// Cancelling the context — or reaching CoverageTarget — stops dispatch
// and propagates DELETE to every outstanding job, cluster-wide.
//
// # Determinism
//
// The merged result is bit-identical to a single-process campaign.Run
// over the same spec and batch size: shard jobs run core.RunBatch (whose
// results are deterministic for every worker count) against the same
// fingerprinted recording, and the coordinator merges the per-batch
// results with campaign.Merge — the same setting-granularity merge the
// single-process engine uses. Scheduling, retries, worker count and
// shard arrival order leave no trace in the output. See ARCHITECTURE.md
// for the fingerprint contract and the merge-determinism guarantee.
package distrib

// HTTP client half of the coordinator: recording upload, shard
// submission, NDJSON stream consumption, and cancellation DELETEs.
package distrib

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"fmossim/internal/core"
	"fmossim/internal/server"
	"fmossim/internal/switchsim"
)

// encodeRecording serializes the recording once and fingerprints the
// bytes: the upload body and the shard jobs' recording_fp reference.
func encodeRecording(rec *switchsim.Recording) ([]byte, string, error) {
	var buf bytes.Buffer
	if err := rec.Encode(&buf); err != nil {
		return nil, "", fmt.Errorf("distrib: encoding recording: %w", err)
	}
	return buf.Bytes(), switchsim.FingerprintBytes(buf.Bytes()), nil
}

// ensureRecording uploads the encoded recording to worker wi unless a
// previous shard already did. The per-worker lock serializes first
// uploads; a failed upload leaves the flag clear so the next shard
// retries.
func (c *coordinator) ensureRecording(ctx context.Context, wi int) error {
	c.uploadMu[wi].Lock()
	defer c.uploadMu[wi].Unlock()
	if c.uploaded[wi] {
		return nil
	}
	base := c.opts.Workers[wi]

	// Presence check first: across coordinator runs (or after a worker
	// restart mid-campaign) the recording may already be stored.
	reqCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(reqCtx, http.MethodGet, base+"/recordings/"+c.fp, nil)
	if err != nil {
		return err
	}
	if resp, err := c.opts.Client.Do(req); err == nil {
		drain(resp)
		if resp.StatusCode == http.StatusOK {
			c.uploaded[wi] = true
			return nil
		}
	}

	putCtx, cancelPut := context.WithTimeout(ctx, 2*time.Minute)
	defer cancelPut()
	req, err = http.NewRequestWithContext(putCtx, http.MethodPut,
		base+"/recordings/"+c.fp, bytes.NewReader(c.encoded))
	if err != nil {
		return err
	}
	req.ContentLength = int64(len(c.encoded))
	resp, err := c.opts.Client.Do(req)
	if err != nil {
		return err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("PUT /recordings/%s: %s: %s", c.fp[:12], resp.Status, readError(resp))
	}
	c.opts.Logf("distrib: uploaded recording %s to %s (%d bytes)", c.fp[:12], base, len(c.encoded))
	c.uploaded[wi] = true
	return nil
}

// submit POSTs one shard job, absorbing 429 load shedding by honoring
// Retry-After within the attempt. Returns the job id.
func (c *coordinator) submit(ctx context.Context, base string, spec *server.JobSpec) (string, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return "", err
	}
	for try := 0; ; try++ {
		reqCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
		req, err := http.NewRequestWithContext(reqCtx, http.MethodPost, base+"/jobs", bytes.NewReader(body))
		if err != nil {
			cancel()
			return "", err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := c.opts.Client.Do(req)
		if err != nil {
			cancel()
			return "", err
		}
		if resp.StatusCode == http.StatusTooManyRequests && try < maxTransientRetries {
			wait := time.Second
			if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s > 0 {
				wait = time.Duration(s) * time.Second
			}
			drain(resp)
			cancel()
			select {
			case <-time.After(wait):
				continue
			case <-ctx.Done():
				return "", ctx.Err()
			}
		}
		if resp.StatusCode != http.StatusAccepted {
			msg := readError(resp)
			drain(resp)
			cancel()
			return "", fmt.Errorf("POST /jobs: %s: %s", resp.Status, msg)
		}
		var snap server.Snapshot
		err = json.NewDecoder(resp.Body).Decode(&snap)
		drain(resp)
		cancel()
		if err != nil {
			return "", fmt.Errorf("decoding submit response: %w", err)
		}
		return snap.ID, nil
	}
}

// streamLine is the wire shape of one NDJSON line: the union of the
// server's snapshot, detection-group, and result lines (their field sets
// are disjoint).
type streamLine struct {
	Type       string         `json:"type"`
	State      server.State   `json:"state"`
	Error      string         `json:"error"`
	Detected   int            `json:"detected"`
	LiveFaults int            `json:"live_faults"`
	Pattern    int            `json:"pattern"`
	Setting    int            `json:"setting"`
	Faults     []int          `json:"faults"`
	Result     *server.Result `json:"result"`
}

// stream consumes one shard job's NDJSON progress to its terminal state,
// folding snapshots and detection groups into the merged progress view,
// and returns the raw batch result carried on the result line. A stream
// that breaks, or a job that ends failed or cancelled, is an error — the
// caller requeues the shard.
func (c *coordinator) stream(ctx context.Context, base, jobID string, sh *shardState) (*core.BatchResult, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/jobs/"+jobID+"/stream", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.opts.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /jobs/%s/stream: %s", jobID, resp.Status)
	}

	sc := bufio.NewScanner(resp.Body)
	// A result line carries the whole BatchResult (records included):
	// far beyond the scanner's 64KB default.
	sc.Buffer(make([]byte, 0, 64*1024), 256<<20)
	sawTerminal := false
	for sc.Scan() {
		var l streamLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			return nil, fmt.Errorf("bad stream line from %s: %w", base, err)
		}
		switch l.Type {
		case "snapshot":
			c.progress(sh, l.Detected, nil, 0, 0, l.LiveFaults, false)
			if l.State.Terminal() {
				sawTerminal = true
				if l.State != server.StateDone {
					return nil, fmt.Errorf("job %s on %s ended %s: %s", jobID, base, l.State, l.Error)
				}
			}
		case "detections":
			c.progress(sh, 0, l.Faults, l.Pattern, l.Setting, 0, false)
		case "result":
			if l.Result == nil || l.Result.Batch == nil {
				return nil, fmt.Errorf("job %s on %s: result line without batch payload", jobID, base)
			}
			return l.Result.Batch, nil
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("stream from %s broke: %w", base, err)
	}
	if sawTerminal {
		return nil, fmt.Errorf("job %s on %s: stream ended without a result line", jobID, base)
	}
	return nil, fmt.Errorf("stream from %s ended mid-job", base)
}

// recordingGone reports whether the worker definitively no longer holds
// the campaign recording (a 404 from GET /recordings/{fp}). Transport
// errors and other statuses report false: absence must be proven, not
// assumed, before the coordinator rewinds its upload state.
func (c *coordinator) recordingGone(base string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/recordings/"+c.fp, nil)
	if err != nil {
		return false
	}
	resp, err := c.opts.Client.Do(req)
	if err != nil {
		return false
	}
	drain(resp)
	return resp.StatusCode == http.StatusNotFound
}

// deleteJob best-effort cancels an outstanding job. It runs on its own
// short deadline, not the (possibly already cancelled) run context: this
// is the DELETE propagation that stops remaining shards cluster-wide.
func (c *coordinator) deleteJob(base, jobID string) {
	if jobID == "" {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, base+"/jobs/"+jobID, nil)
	if err != nil {
		return
	}
	if resp, err := c.opts.Client.Do(req); err == nil {
		drain(resp)
	}
}

// readError extracts the server's {"error": ...} message, if any.
func readError(resp *http.Response) string {
	var e struct {
		Error string `json:"error"`
	}
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 64*1024))
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return e.Error
	}
	return string(data)
}

// drain discards the rest of a response body and closes it, keeping the
// connection reusable.
func drain(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}

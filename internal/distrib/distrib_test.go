package distrib_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"fmossim/internal/campaign"
	"fmossim/internal/core"
	"fmossim/internal/distrib"
	"fmossim/internal/server"
	"fmossim/internal/switchsim"
)

// newWorkerPool starts n independent fmossimd workers (each its own
// Manager over httptest) and returns their base URLs plus the servers for
// mid-run manipulation.
func newWorkerPool(t *testing.T, n int, cfg server.Config) ([]string, []*httptest.Server) {
	t.Helper()
	if cfg.StreamInterval == 0 {
		cfg.StreamInterval = 2 * time.Millisecond
	}
	urls := make([]string, n)
	servers := make([]*httptest.Server, n)
	for i := 0; i < n; i++ {
		mgr := server.NewManager(cfg)
		ts := httptest.NewServer(mgr.Handler())
		t.Cleanup(func() {
			ts.Close()
			mgr.Close()
		})
		urls[i] = ts.URL
		servers[i] = ts
	}
	return urls, servers
}

// ram256Spec is the distributed equivalence workload: the paper's big
// circuit, sampled and truncated to test size exactly as in the server
// suite.
func ram256Spec() server.JobSpec {
	return server.JobSpec{
		Workload:    "ram256",
		Sequence:    "sequence1",
		MaxPatterns: 60,
		FaultModel:  "paper",
		SampleEvery: 8,
	}
}

// resolveAndRecord resolves the spec locally and records the good
// trajectory once; passing the same Recording to both the monolithic
// baseline and the coordinator makes even the good-side wall-clock
// figures identical, so only fault-side NS fields need masking.
func resolveAndRecord(t *testing.T, spec server.JobSpec) (*server.Workload, *switchsim.Recording) {
	t.Helper()
	wl, err := server.ResolveSpec(&spec)
	if err != nil {
		t.Fatal(err)
	}
	return wl, core.Record(wl.Net, wl.Seq, core.Options{})
}

func monolithic(t *testing.T, wl *server.Workload, rec *switchsim.Recording, batchSize int) *campaign.Result {
	t.Helper()
	res, err := campaign.Run(context.Background(), wl.Net, wl.Faults, wl.Seq, campaign.Options{
		Sim:       core.Options{Observe: wl.Observe},
		BatchSize: batchSize,
		Recording: rec,
		Tables:    wl.Tables,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// assertIdentical checks the distributed result against the monolithic
// one on every deterministic field: merged aggregates, per-pattern
// statistics (fault-side wall clock masked — it is measured, not
// derived), and the full per-fault outcome table including divergence
// records.
func assertIdentical(t *testing.T, got, want *campaign.Result) {
	t.Helper()
	if got.Run.Detected != want.Run.Detected || got.Run.HardDetected != want.Run.HardDetected ||
		got.Run.Oscillated != want.Run.Oscillated || got.Run.NumFaults != want.Run.NumFaults {
		t.Fatalf("aggregates: got %d/%d/%d of %d, want %d/%d/%d of %d",
			got.Run.Detected, got.Run.HardDetected, got.Run.Oscillated, got.Run.NumFaults,
			want.Run.Detected, want.Run.HardDetected, want.Run.Oscillated, want.Run.NumFaults)
	}
	if got.Run.GoodWork != want.Run.GoodWork || got.Run.FaultWork != want.Run.FaultWork {
		t.Fatalf("work: got good %d faulty %d, want %d %d",
			got.Run.GoodWork, got.Run.FaultWork, want.Run.GoodWork, want.Run.FaultWork)
	}
	if len(got.Run.PerPattern) != len(want.Run.PerPattern) {
		t.Fatalf("pattern count %d, want %d", len(got.Run.PerPattern), len(want.Run.PerPattern))
	}
	for pi := range want.Run.PerPattern {
		g, w := got.Run.PerPattern[pi], want.Run.PerPattern[pi]
		g.FaultNS, w.FaultNS = 0, 0
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("pattern %d stats: got %+v, want %+v", pi, g, w)
		}
	}
	if len(got.PerFault) != len(want.PerFault) {
		t.Fatalf("per-fault rows %d, want %d", len(got.PerFault), len(want.PerFault))
	}
	for fi := range want.PerFault {
		if !reflect.DeepEqual(got.PerFault[fi], want.PerFault[fi]) {
			t.Fatalf("fault %d: got %+v, want %+v", fi, got.PerFault[fi], want.PerFault[fi])
		}
	}
}

// TestDistributedMatchesMonolithic: a RAM256 campaign over three workers
// merges bit-identically to campaign.Run on one machine, and the merged
// progress stream is monotonic.
func TestDistributedMatchesMonolithic(t *testing.T) {
	spec := ram256Spec()
	wl, rec := resolveAndRecord(t, spec)
	want := monolithic(t, wl, rec, 32)

	urls, _ := newWorkerPool(t, 3, server.Config{MaxJobs: 2})
	var mu sync.Mutex
	lastDetected := -1
	monotonic := true
	got, err := distrib.Run(context.Background(), spec, distrib.Options{
		Workers:   urls,
		BatchSize: 32,
		Recording: rec,
		Progress: func(ev campaign.ProgressEvent) {
			mu.Lock()
			if ev.Detected < lastDetected {
				monotonic = false
			}
			lastDetected = ev.Detected
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !monotonic {
		t.Error("merged Detected counter regressed across progress events")
	}
	if lastDetected != want.Run.Detected {
		t.Errorf("final streamed detected %d, want %d", lastDetected, want.Run.Detected)
	}
	if got.BatchesRun != got.Batches || got.BatchesSkipped != 0 {
		t.Errorf("batches: %d run, %d skipped of %d", got.BatchesRun, got.BatchesSkipped, got.Batches)
	}
	assertIdentical(t, got, want)
}

// TestWorkerKilledMidRun: killing one of three workers mid-campaign
// requeues its shards onto the survivors and the merged result is still
// bit-identical to the monolithic baseline.
func TestWorkerKilledMidRun(t *testing.T) {
	spec := ram256Spec()
	wl, rec := resolveAndRecord(t, spec)
	want := monolithic(t, wl, rec, 16) // 16 → more shards, so the kill lands mid-queue

	urls, servers := newWorkerPool(t, 3, server.Config{MaxJobs: 2})
	var kill sync.Once
	got, err := distrib.Run(context.Background(), spec, distrib.Options{
		Workers:   urls,
		BatchSize: 16,
		Recording: rec,
		Logf:      t.Logf,
		Progress: func(ev campaign.ProgressEvent) {
			// First sign of simulation progress: take worker 0 down hard
			// (in-flight streams break, later dials are refused).
			kill.Do(func() {
				go func() {
					servers[0].CloseClientConnections()
					servers[0].Close()
				}()
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.BatchesRun != got.Batches {
		t.Errorf("batches: %d run of %d", got.BatchesRun, got.Batches)
	}
	assertIdentical(t, got, want)
}

// TestCoverageTargetStopsEarly: a cluster-wide coverage target stops
// dispatch, cancels outstanding shards, and reports the rest skipped with
// the target actually met.
func TestCoverageTargetStopsEarly(t *testing.T) {
	spec := server.JobSpec{
		Workload:       "ram64",
		Sequence:       "sequence1",
		FaultModel:     "paper",
		CoverageTarget: 0.25,
	}
	urls, _ := newWorkerPool(t, 2, server.Config{MaxJobs: 2})
	got, err := distrib.Run(context.Background(), spec, distrib.Options{
		Workers:   urls,
		BatchSize: 24,
		InFlight:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Coverage() < 0.25 {
		t.Fatalf("coverage %v below target", got.Coverage())
	}
	if got.BatchesRun+got.BatchesSkipped != got.Batches {
		t.Fatalf("batch accounting: %d run + %d skipped != %d",
			got.BatchesRun, got.BatchesSkipped, got.Batches)
	}
	skipped := 0
	for _, o := range got.PerFault {
		if o.Skipped {
			skipped++
		}
	}
	if got.BatchesSkipped > 0 && skipped == 0 {
		t.Errorf("%d batches skipped but no fault marked skipped", got.BatchesSkipped)
	}
}

// TestCancelPropagates: cancelling the coordinator context cancels the
// outstanding worker jobs (none left running) and returns the context
// error.
func TestCancelPropagates(t *testing.T) {
	spec := server.JobSpec{Workload: "ram256", Sequence: "sequence1", FaultModel: "paper"}
	urls, _ := newWorkerPool(t, 2, server.Config{MaxJobs: 1})

	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	res, err := distrib.Run(ctx, spec, distrib.Options{
		Workers:   urls,
		BatchSize: 64,
		Progress: func(campaign.ProgressEvent) {
			once.Do(cancel)
		},
	})
	if err == nil || res != nil {
		t.Fatalf("cancelled run returned (%v, %v)", res, err)
	}
	if ctx.Err() == nil {
		t.Fatal("context not cancelled")
	}
}

// TestRunValidation: misconfigurations fail fast.
func TestRunValidation(t *testing.T) {
	if _, err := distrib.Run(context.Background(), ram256Spec(), distrib.Options{}); err == nil {
		t.Error("no workers: want error")
	}
	shard := ram256Spec()
	shard.ShardLo, shard.ShardHi = 0, 8
	if _, err := distrib.Run(context.Background(), shard, distrib.Options{Workers: []string{"http://x"}}); err == nil {
		t.Error("shard spec: want error")
	}
	bad := server.JobSpec{Workload: "ram1024"}
	if _, err := distrib.Run(context.Background(), bad, distrib.Options{Workers: []string{"http://x"}}); err == nil {
		t.Error("bad workload: want error")
	}
}

// TestWorkerKilledMidRunTrimmed: the kill-a-worker scenario with
// redundancy trimming on every shard — requeued shards re-run trimmed on
// the survivors and the merge is still bit-identical to the untrimmed
// monolithic baseline.
func TestWorkerKilledMidRunTrimmed(t *testing.T) {
	spec := ram256Spec()
	wl, rec := resolveAndRecord(t, spec)
	want := monolithic(t, wl, rec, 16)

	spec.Trim = true
	urls, servers := newWorkerPool(t, 3, server.Config{MaxJobs: 2})
	var kill sync.Once
	got, err := distrib.Run(context.Background(), spec, distrib.Options{
		Workers:   urls,
		BatchSize: 16,
		Recording: rec,
		Logf:      t.Logf,
		Progress: func(ev campaign.ProgressEvent) {
			kill.Do(func() {
				go func() {
					servers[0].CloseClientConnections()
					servers[0].Close()
				}()
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.BatchesRun != got.Batches {
		t.Errorf("batches: %d run of %d", got.BatchesRun, got.Batches)
	}
	assertIdentical(t, got, want)
}

// TestEarlyStopDoubleCancelNoLeak: the coverage-target early stop fires
// the coordinator's internal cancel while the caller's context is
// cancelled at the same moment (double cancel), with shards still being
// dispatched. The run must return the early-stopped result (the target
// was met before the caller's cancel), every outstanding worker job must
// be cancelled, and no coordinator goroutine may outlive Run.
func TestEarlyStopDoubleCancelNoLeak(t *testing.T) {
	spec := server.JobSpec{
		Workload:       "ram64",
		Sequence:       "sequence1",
		FaultModel:     "paper",
		CoverageTarget: 0.2,
		Trim:           true,
	}
	urls, _ := newWorkerPool(t, 2, server.Config{MaxJobs: 2})

	// Baseline after the worker pool is up: what must remain is the test
	// plus the pool's own idle machinery, not anything Run spawned. The
	// dedicated client lets the test drop its keep-alive connections
	// afterwards (each idle connection pins a server-side goroutine).
	before := runtime.NumGoroutine()
	client := &http.Client{}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	got, err := distrib.Run(ctx, spec, distrib.Options{
		Workers:   urls,
		BatchSize: 16, // many small shards: the stop fires mid-dispatch
		InFlight:  2,
		Client:    client,
		Progress: func(ev campaign.ProgressEvent) {
			// Race the caller's cancel against the internal early stop.
			if ev.Coverage() >= 0.2 {
				once.Do(cancel)
			}
		},
	})
	if err != nil {
		t.Fatalf("double-cancelled early stop returned error: %v", err)
	}
	if got.Coverage() < 0.2 {
		t.Fatalf("coverage %v below target", got.Coverage())
	}
	if got.BatchesRun+got.BatchesSkipped != got.Batches {
		t.Fatalf("batch accounting: %d run + %d skipped != %d",
			got.BatchesRun, got.BatchesSkipped, got.Batches)
	}

	// Goroutine count must settle back: the slot pool, streams, the
	// workers' own job goroutines, and (after dropping the client's
	// keep-alive connections) the per-connection server goroutines all
	// wind down. Retry while they drain.
	client.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		after := runtime.NumGoroutine()
		if after <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				before, after, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

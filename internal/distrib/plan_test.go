package distrib

import (
	"testing"

	"fmossim/internal/core"
	"fmossim/internal/fault"
	"fmossim/internal/march"
	"fmossim/internal/ram"
)

// TestPlanShardOrder: the plan is a permutation of the shard indices,
// deterministic across calls, ordered by non-increasing estimated cost,
// and hot-region shards precede cold ones on a real recording.
func TestPlanShardOrder(t *testing.T) {
	m := ram.RAM64()
	seq := march.Sequence1(m)
	rec := core.Record(m.Net, seq, core.Options{})
	faults := fault.NodeStuckFaults(m.Net, fault.Options{})

	const batchSize = 16
	nBatches := (len(faults) + batchSize - 1) / batchSize
	order := planShardOrder(rec, m.Net, faults, nBatches, batchSize)
	if len(order) != nBatches {
		t.Fatalf("plan has %d entries, want %d", len(order), nBatches)
	}
	seen := make([]bool, nBatches)
	for _, i := range order {
		if i < 0 || i >= nBatches || seen[i] {
			t.Fatalf("plan is not a permutation: %v", order)
		}
		seen[i] = true
	}

	again := planShardOrder(rec, m.Net, faults, nBatches, batchSize)
	for i := range order {
		if order[i] != again[i] {
			t.Fatalf("plan not deterministic: %v vs %v", order, again)
		}
	}

	// Recompute the estimates the same way and verify the order is
	// non-increasing in them.
	touch := headActivity(rec, m.Net.NumNodes())
	cost := make([]int64, nBatches)
	for fi := range faults {
		est := int64(1)
		for _, n := range faults[fi].Sites(m.Net) {
			est += int64(touch[int(n)])
		}
		cost[fi/batchSize] += est
	}
	for i := 1; i < len(order); i++ {
		if cost[order[i-1]] < cost[order[i]] {
			t.Fatalf("plan not sorted by cost: shard %d (%d) before %d (%d)",
				order[i-1], cost[order[i-1]], order[i], cost[order[i]])
		}
	}
	distinct := false
	for i := 1; i < nBatches; i++ {
		if cost[i] != cost[0] {
			distinct = true
		}
	}
	if !distinct {
		t.Fatal("all shards estimated equal on a real recording; planner is vacuous")
	}
}

// Coordinator execution: shard partitioning, the worker-slot pool with
// requeue-on-failure, merged monotonic progress, and the deterministic
// merge. Package documentation lives in doc.go.
package distrib

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"fmossim/internal/campaign"
	"fmossim/internal/core"
	"fmossim/internal/server"
	"fmossim/internal/switchsim"
)

// Options configures a distributed campaign.
type Options struct {
	// Workers lists the fmossimd base URLs the campaign fans out over
	// (e.g. "http://10.0.0.7:8458"). Required.
	Workers []string

	// InFlight bounds the shards dispatched concurrently to one worker.
	// Default 2: one running plus one queued keeps a worker busy across
	// the dispatch round-trip without swamping it.
	InFlight int

	// BatchSize is the number of faults per shard. 0 splits the universe
	// evenly across the worker slots (one shard per slot). A distributed
	// run merges bit-identically to a single-process campaign.Run with
	// the same BatchSize.
	BatchSize int

	// SimWorkers is the per-shard simulator worker count on the remote
	// (JobSpec.Workers). 0 leaves it to the worker's fair-share default.
	SimWorkers int

	// MaxAttempts bounds how many times one shard may be dispatched
	// before the campaign fails. Default 3.
	MaxAttempts int

	// Recording, when non-nil, is a pre-captured good trajectory; when
	// nil, the coordinator records one on entry. Either way it is encoded
	// once and uploaded to each worker by content fingerprint.
	Recording *switchsim.Recording

	// Client is the HTTP client for worker traffic. Default: a client
	// with no overall timeout (streams outlive any fixed deadline);
	// cancellation comes from Run's context.
	Client *http.Client

	// Progress, when non-nil, receives the merged cluster-wide progress
	// view: one event per streamed snapshot or detection group of any
	// shard, with Detected folded monotonically across shards (per-shard
	// maxima, summed under one lock — a stale or re-delivered line never
	// rolls coverage back). NewlyDetected indices are universe indices.
	Progress func(campaign.ProgressEvent)

	// Logf, when non-nil, receives coordinator lifecycle messages
	// (dispatches, retries, worker failures).
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.InFlight <= 0 {
		o.InFlight = 2
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// maxTransientRetries bounds 429-and-retry loops within one dispatch
// attempt, and consecutive transport failures before a worker's slots
// give up on it.
const maxTransientRetries = 10

// dispatchError marks a shard failure where the job never started on the
// worker (upload or submission failed): the shard requeues without
// consuming one of its attempts, and the failure counts only toward the
// worker's abandonment threshold.
type dispatchError struct{ err error }

func (e *dispatchError) Error() string { return e.err.Error() }
func (e *dispatchError) Unwrap() error { return e.err }

// shardState tracks one shard through dispatch, failure and requeue.
type shardState struct {
	idx      int
	lo, hi   int
	attempts int
	last     int // worker index of the last failed attempt, -1 initially
	bounced  int // consecutive prefer-a-different-worker requeues
}

// Run executes a distributed fault campaign over the worker pool: one
// recording upload per worker, one shard job per batch, merged with
// campaign.Merge into a result bit-identical to the single-process
// engine. See the package documentation for the execution model.
//
// The spec is a regular (non-shard) JobSpec; its CoverageTarget, when
// set, stops the campaign early cluster-wide: no new shards are
// dispatched and outstanding jobs are cancelled with DELETE, their
// faults reported as skipped — exactly the single-process early-stop
// accounting. Cancelling ctx likewise cancels every outstanding job and
// returns ctx's error.
func Run(ctx context.Context, spec server.JobSpec, opts Options) (*campaign.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts = opts.withDefaults()
	if len(opts.Workers) == 0 {
		return nil, fmt.Errorf("distrib: no workers configured")
	}
	if spec.IsShard() {
		return nil, fmt.Errorf("distrib: spec is already a shard job")
	}

	// Resolve the workload exactly as the workers will, so shard windows
	// computed here index the same faults there.
	wl, err := server.ResolveSpec(&spec)
	if err != nil {
		return nil, err
	}
	nf := len(wl.Faults)

	rec := opts.Recording
	if rec == nil {
		rec = core.Record(wl.Net, wl.Seq, core.Options{})
	}
	if err := rec.Validate(wl.Net, wl.Seq.NumSettings()); err != nil {
		return nil, err
	}
	encoded, fp, err := encodeRecording(rec)
	if err != nil {
		return nil, err
	}

	slots := len(opts.Workers) * opts.InFlight
	batchSize := opts.BatchSize
	if batchSize <= 0 {
		batchSize = (nf + slots - 1) / slots
		if batchSize == 0 {
			batchSize = 1
		}
	}
	nBatches := (nf + batchSize - 1) / batchSize
	var target int64
	if spec.CoverageTarget > 0 && nf > 0 {
		target = int64(math.Ceil(spec.CoverageTarget * float64(nf)))
	}

	// shardSpec is the worker-side template: the workload fields verbatim
	// (so workers resolve the same universe), campaign-level fields
	// stripped (the coordinator owns batching, early stop and merging).
	shardSpec := spec
	shardSpec.BatchSize = 0
	shardSpec.Shards = 0
	shardSpec.CoverageTarget = 0
	shardSpec.IncludePerFault = false
	shardSpec.Workers = opts.SimWorkers
	shardSpec.RecordingFP = fp
	shardSpec.IncludeBatch = true

	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()

	c := &coordinator{
		opts:      opts,
		spec:      shardSpec,
		encoded:   encoded,
		fp:        fp,
		nf:        nf,
		nBatches:  nBatches,
		results:   make([]*core.BatchResult, nBatches),
		pending:   make(chan *shardState, nBatches),
		done:      make(chan struct{}),
		perShard:  make([]int, nBatches),
		uploaded:  make([]bool, len(opts.Workers)),
		uploadMu:  make([]sync.Mutex, len(opts.Workers)),
		fails:     make([]int32, len(opts.Workers)),
		target:    target,
		cancelRun: cancelRun,
	}
	c.remaining.Store(int64(nBatches))
	c.aliveSlots.Store(int64(slots))
	// Seed the queue expensive-shards-first (see plan.go): the windows are
	// the plain index-order split, only the dispatch order is planned.
	for _, i := range planShardOrder(rec, wl.Net, wl.Faults, nBatches, batchSize) {
		lo := i * batchSize
		c.pending <- &shardState{idx: i, lo: lo, hi: min(lo+batchSize, nf), last: -1}
	}

	var wg sync.WaitGroup
	for wi := range opts.Workers {
		for s := 0; s < opts.InFlight; s++ {
			wg.Add(1)
			go func(wi int) {
				defer wg.Done()
				c.slot(runCtx, wi)
			}(wi)
		}
	}
	wg.Wait()

	if err := c.firstErr(); err != nil {
		return nil, err
	}
	completed := 0
	for _, br := range c.results {
		if br != nil {
			completed++
		}
	}
	if ctx.Err() != nil && completed < nBatches && (target == 0 || c.completedDetected.Load() < target) {
		return nil, fmt.Errorf("distrib: cancelled: %w", ctx.Err())
	}
	if completed < nBatches && target == 0 {
		// Slots drained without finishing and without a coverage target:
		// only possible when every worker was abandoned.
		return nil, fmt.Errorf("distrib: %d of %d shards incomplete: all workers unavailable",
			nBatches-completed, nBatches)
	}

	res := campaign.Merge(rec, wl.Seq, nf, batchSize, c.results)
	res.Batches = nBatches
	res.BatchesRun = completed
	res.BatchesSkipped = nBatches - completed
	return res, nil
}

// coordinator is the shared state of one distributed run.
type coordinator struct {
	opts    Options
	spec    server.JobSpec
	encoded []byte
	fp      string

	nf       int
	nBatches int
	target   int64

	results []*core.BatchResult // indexed by shard; written once each
	pending chan *shardState
	done    chan struct{} // closed when remaining hits zero

	remaining         atomic.Int64
	completedDetected atomic.Int64
	aliveSlots        atomic.Int64
	cancelRun         context.CancelFunc

	uploadMu []sync.Mutex // per worker
	uploaded []bool
	fails    []int32 // consecutive transport failures per worker (atomic)

	errMu sync.Mutex
	err   error

	// Merged-progress state: per-shard folded detection maxima and their
	// sum, mutated and delivered under one lock so the cluster-wide
	// Detected counter is monotonic across delivered events.
	progressMu  sync.Mutex
	perShard    []int
	total       int
	batchesDone int
}

func (c *coordinator) fatal(err error) {
	c.errMu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.errMu.Unlock()
	c.cancelRun()
}

func (c *coordinator) firstErr() error {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	return c.err
}

// progress folds one shard's streamed line into the merged view and
// delivers it. detected is the shard's cumulative count as reported;
// newly lists shard-relative first detections (offset to universe
// indices here).
func (c *coordinator) progress(sh *shardState, detected int, newly []int, pattern, setting, live int, batchDone bool) {
	if c.opts.Progress == nil && !batchDone {
		return
	}
	c.progressMu.Lock()
	defer c.progressMu.Unlock()
	if detected > c.perShard[sh.idx] {
		c.total += detected - c.perShard[sh.idx]
		c.perShard[sh.idx] = detected
	}
	if batchDone {
		c.batchesDone++
	}
	if c.opts.Progress == nil {
		return
	}
	ev := campaign.ProgressEvent{
		Batch: sh.idx, Pattern: pattern, Setting: setting,
		LiveFaults: live, Detected: c.total, NumFaults: c.nf,
		Batches: c.nBatches, BatchesDone: c.batchesDone, BatchDone: batchDone,
	}
	if len(newly) > 0 {
		ev.NewlyDetected = make([]int, len(newly))
		for i, fi := range newly {
			ev.NewlyDetected[i] = sh.lo + fi
		}
	}
	c.opts.Progress(ev)
}

// slot is one worker dispatch slot: it pulls shards from the queue and
// runs them on worker wi until the queue drains, the run is cancelled, or
// the worker is abandoned after repeated transport failures.
func (c *coordinator) slot(ctx context.Context, wi int) {
	defer func() {
		if c.aliveSlots.Add(-1) == 0 && c.remaining.Load() > 0 && ctx.Err() == nil {
			c.fatal(fmt.Errorf("distrib: all workers unavailable with %d shards outstanding",
				c.remaining.Load()))
		}
	}()
	for {
		select {
		case <-ctx.Done():
			return
		case <-c.done:
			return
		case sh := <-c.pending:
			// Prefer a different worker for a retry: the one that just
			// failed this shard is the least likely to complete it. The
			// bounce budget keeps this a preference, not a deadlock — if
			// no other worker picks the shard up (all their slots gone or
			// busy), the last-failed worker runs it anyway and the
			// per-shard attempt bound takes over.
			if sh.last == wi && len(c.opts.Workers) > 1 &&
				sh.bounced < len(c.opts.Workers)*c.opts.InFlight {
				sh.bounced++
				c.pending <- sh
				select {
				case <-time.After(50 * time.Millisecond):
				case <-ctx.Done():
					return
				}
				continue
			}
			sh.bounced = 0
			err := c.runShard(ctx, wi, sh)
			if err == nil {
				atomic.StoreInt32(&c.fails[wi], 0)
				if c.remaining.Add(-1) == 0 {
					close(c.done)
				}
				continue
			}
			if ctx.Err() != nil {
				return
			}
			// A dispatch failure (recording upload or submit never
			// reached the worker) is a strike against the worker, not the
			// shard: a dead worker must not burn a shard's attempt budget
			// while the healthy workers are busy. Execution failures —
			// the job started and then broke or failed — count.
			var de *dispatchError
			if !errors.As(err, &de) {
				sh.attempts++
			}
			sh.last = wi
			c.opts.Logf("distrib: shard %d failed on %s (attempt %d): %v",
				sh.idx, c.opts.Workers[wi], sh.attempts, err)
			if sh.attempts >= c.opts.MaxAttempts {
				c.fatal(fmt.Errorf("distrib: shard %d failed %d times, last on %s: %w",
					sh.idx, sh.attempts, c.opts.Workers[wi], err))
				return
			}
			c.pending <- sh
			if atomic.AddInt32(&c.fails[wi], 1) >= maxTransientRetries {
				c.opts.Logf("distrib: abandoning worker %s after %d consecutive failures",
					c.opts.Workers[wi], maxTransientRetries)
				return
			}
		}
	}
}

// runShard executes one shard on one worker: ensure the recording is
// uploaded, submit the job, stream it to a terminal state, and store the
// batch result. Any error leaves the shard unassigned (the caller
// requeues); the outstanding job, if any, is cancelled with DELETE when
// the shard did not complete — which is also how campaign-wide
// cancellation and coverage-target stop reach the workers.
func (c *coordinator) runShard(ctx context.Context, wi int, sh *shardState) (err error) {
	base := c.opts.Workers[wi]
	if err := c.ensureRecording(ctx, wi); err != nil {
		return &dispatchError{fmt.Errorf("uploading recording: %w", err)}
	}

	spec := c.spec
	spec.ShardLo, spec.ShardHi = sh.lo, sh.hi
	jobID, err := c.submit(ctx, base, &spec)
	if err != nil {
		return &dispatchError{err}
	}
	defer func() {
		if err != nil || ctx.Err() != nil {
			c.deleteJob(base, jobID)
		}
	}()

	br, err := c.stream(ctx, base, jobID, sh)
	if err != nil {
		// A worker can lose its stored recording mid-campaign (restart,
		// store eviction under concurrent campaigns) while this
		// coordinator still believes it uploaded. If the recording is
		// definitively gone, clear the flag so the next shard re-uploads,
		// and charge the failure to the worker, not the shard.
		if ctx.Err() == nil && c.recordingGone(base) {
			c.uploadMu[wi].Lock()
			c.uploaded[wi] = false
			c.uploadMu[wi].Unlock()
			return &dispatchError{fmt.Errorf("worker lost recording %s: %w", c.fp[:12], err)}
		}
		return err
	}
	c.results[sh.idx] = br
	c.progress(sh, br.DetectedCount(), nil, 0, 0, 0, true)
	if c.target > 0 && c.completedDetected.Add(int64(br.DetectedCount())) >= c.target {
		// Coverage target reached: stop dispatch and cancel every
		// outstanding shard, cluster-wide. Their faults merge as skipped.
		c.cancelRun()
	}
	return nil
}

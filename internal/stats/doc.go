// Package stats provides the small numeric helpers the benchmark harness
// uses to summarize and validate experiment series: means, ratios, and
// least-squares linear fits (Figure 3's linearity check).
package stats

package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSumMean(t *testing.T) {
	if Sum(nil) != 0 || Mean(nil) != 0 {
		t.Error("empty inputs should give 0")
	}
	if !almost(Sum([]float64{1, 2, 3.5}), 6.5) {
		t.Error("Sum wrong")
	}
	if !almost(Mean([]float64{2, 4, 6}), 4) {
		t.Error("Mean wrong")
	}
	if SumInt64([]int64{5, -2}) != 3 || !almost(MeanInt64([]int64{4, 8}), 6) {
		t.Error("int64 helpers wrong")
	}
	if MeanInt64(nil) != 0 {
		t.Error("MeanInt64(nil) should be 0")
	}
}

func TestRatio(t *testing.T) {
	if !almost(Ratio(6, 3), 2) {
		t.Error("Ratio wrong")
	}
	if Ratio(1, 0) != 0 {
		t.Error("Ratio by zero should be 0")
	}
}

func TestLinearFitExact(t *testing.T) {
	// y = 3x + 2 exactly.
	x := []float64{0, 1, 2, 3, 4}
	y := make([]float64, len(x))
	for i := range x {
		y[i] = 3*x[i] + 2
	}
	f := LinearFit(x, y)
	if !almost(f.Slope, 3) || !almost(f.Intercept, 2) || !almost(f.R2, 1) {
		t.Errorf("fit = %+v, want slope 3 intercept 2 R2 1", f)
	}
	if r := MaxAbsRelErr(x, y, f); !almost(r, 0) {
		t.Errorf("residual %f, want 0", r)
	}
}

func TestLinearFitNoisy(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{0.1, 0.9, 2.1, 2.9}
	f := LinearFit(x, y)
	if f.Slope < 0.9 || f.Slope > 1.1 {
		t.Errorf("slope %f, want ~1", f.Slope)
	}
	if f.R2 < 0.98 {
		t.Errorf("R2 %f, want near 1", f.R2)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	if f := LinearFit([]float64{1}, []float64{1}); f != (Fit{}) {
		t.Error("single point should give zero fit")
	}
	if f := LinearFit([]float64{1, 2}, []float64{1}); f != (Fit{}) {
		t.Error("length mismatch should give zero fit")
	}
	if f := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3}); f != (Fit{}) {
		t.Error("vertical data should give zero fit")
	}
	// Horizontal line: slope 0, perfect fit.
	f := LinearFit([]float64{1, 2, 3}, []float64{5, 5, 5})
	if !almost(f.Slope, 0) || !almost(f.Intercept, 5) || !almost(f.R2, 1) {
		t.Errorf("horizontal fit = %+v", f)
	}
}

func TestMedian(t *testing.T) {
	if Median(nil) != 0 {
		t.Error("empty median should be 0")
	}
	if !almost(Median([]float64{3, 1, 2}), 2) {
		t.Error("odd median wrong")
	}
	if !almost(Median([]float64{4, 1, 3, 2}), 2.5) {
		t.Error("even median wrong")
	}
	// Median must not modify its input.
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Median modified its input")
	}
}

func TestFitResidualProperty(t *testing.T) {
	// For any data, the least-squares line minimizes the sum of squared
	// residuals among lines; in particular it beats the horizontal line
	// through the mean.
	f := func(raw []float64) bool {
		if len(raw) < 4 {
			return true
		}
		n := len(raw) / 2
		x, y := raw[:n], raw[n:2*n]
		for _, v := range append(x, y...) {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				return true
			}
		}
		fit := LinearFit(x, y)
		if fit == (Fit{}) {
			return true
		}
		ssFit, ssMean := 0.0, 0.0
		my := Mean(y)
		for i := range x {
			d := y[i] - (fit.Slope*x[i] + fit.Intercept)
			ssFit += d * d
			dm := y[i] - my
			ssMean += dm * dm
		}
		return ssFit <= ssMean+1e-6*math.Max(1, ssMean)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

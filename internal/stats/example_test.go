package stats_test

import (
	"fmt"

	"fmossim/internal/stats"
)

// ExampleLinearFit recovers slope and intercept from an exact line — the
// check behind the paper's Figure 3 linearity claim.
func ExampleLinearFit() {
	x := []float64{1, 2, 3, 4}
	y := []float64{3, 5, 7, 9} // y = 2x + 1
	fit := stats.LinearFit(x, y)
	fmt.Printf("slope %.1f intercept %.1f\n", fit.Slope, fit.Intercept)
	fmt.Printf("max relative error %.3f\n", stats.MaxAbsRelErr(x, y, fit))
	// Output:
	// slope 2.0 intercept 1.0
	// max relative error 0.000
}

// Sums, means, ratios, and least-squares fits. Package documentation
// lives in doc.go.
package stats

import "math"

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// SumInt64 returns the sum of xs.
func SumInt64(xs []int64) int64 {
	var s int64
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// MeanInt64 returns the mean of xs as a float (0 for empty input).
func MeanInt64(xs []int64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return float64(SumInt64(xs)) / float64(len(xs))
}

// Ratio returns a/b, or 0 when b is 0.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Fit is a least-squares line y = Slope*x + Intercept with goodness R2.
type Fit struct {
	Slope, Intercept, R2 float64
}

// LinearFit computes the least-squares fit of y against x. Inputs must
// have equal length ≥ 2; degenerate inputs return a zero Fit.
func LinearFit(x, y []float64) Fit {
	n := len(x)
	if n != len(y) || n < 2 {
		return Fit{}
	}
	mx, my := Mean(x), Mean(y)
	var sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Fit{}
	}
	slope := sxy / sxx
	fit := Fit{Slope: slope, Intercept: my - slope*mx}
	if syy == 0 {
		fit.R2 = 1
	} else {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	}
	return fit
}

// Median returns the median of xs (0 for empty input); xs is not modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	// Insertion sort: the harness's series are short.
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	m := len(cp) / 2
	if len(cp)%2 == 1 {
		return cp[m]
	}
	return (cp[m-1] + cp[m]) / 2
}

// MaxAbsRelErr returns the largest |y[i]-fit(x[i])| / max|y| over the
// series: a scale-free linearity residual.
func MaxAbsRelErr(x, y []float64, f Fit) float64 {
	var maxAbs, maxErr float64
	for _, v := range y {
		maxAbs = math.Max(maxAbs, math.Abs(v))
	}
	if maxAbs == 0 {
		return 0
	}
	for i := range x {
		maxErr = math.Max(maxErr, math.Abs(y[i]-(f.Slope*x[i]+f.Intercept)))
	}
	return maxErr / maxAbs
}

// Campaign checkpoints: a JSON snapshot of completed batches, written
// after every batch completion and reloaded on the next Run with the same
// CheckpointPath, so long campaigns survive interruption without
// re-simulating finished shards. The batch results themselves are
// deterministic, so a resumed campaign merges to the same outcome as an
// uninterrupted one.
package campaign

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"

	"fmossim/internal/core"
	"fmossim/internal/fault"
)

// checkpointVersion is the current checkpoint schema. Version 2 added
// mid-batch partial snapshots (Partial) alongside the redundancy-trimming
// engine; version-1 files (and pre-versioned files, which decode as
// version 0) are refused with an explicit error rather than silently
// reinterpreted.
const checkpointVersion = 2

// Checkpoint is the serializable resume state of a campaign: the campaign
// fingerprint (to refuse resuming a different campaign) plus the
// completed batches' results, keyed by batch index.
type Checkpoint struct {
	Version        int    `json:"version"`
	Sequence       string `json:"sequence"`
	NumSettings    int    `json:"num_settings"`
	NumFaults      int    `json:"num_faults"`
	NumNodes       int    `json:"num_nodes"`
	NumTransistors int    `json:"num_transistors"`
	BatchSize      int    `json:"batch_size"`
	NumBatches     int    `json:"num_batches"`
	// FaultsHash digests the fault list's content (kind/node/transistor
	// per fault, in order) and SimHash the result-shaping simulator
	// options (observed outputs, drop policy, ablations, round limit):
	// resuming with a same-sized but different universe, or with
	// different options, would silently attribute stale batch results,
	// so both are part of the fingerprint.
	FaultsHash uint64 `json:"faults_hash"`
	SimHash    uint64 `json:"sim_hash"`

	Done map[int]*core.BatchResult `json:"done"`

	// Partial holds mid-batch snapshots (see core.BatchSnapshot) for
	// batches interrupted between settings, keyed by batch index: on
	// resume those batches restart from the snapshot instead of from the
	// beginning (core.RunBatchFrom). A partial entry is dropped the moment
	// its batch completes, and silently discarded on resume when it is no
	// longer usable (trim mode changed, or the recording carries no state
	// frame at its step) — the batch then just re-runs from scratch, so
	// partials are purely a cost optimization, never a correctness input.
	Partial map[int]*core.BatchSnapshot `json:"partial,omitempty"`
}

// hashFaults digests the fault list content.
func hashFaults(faults []fault.Fault) uint64 {
	h := fnv.New64a()
	var buf [13]byte
	for _, f := range faults {
		buf[0] = byte(f.Kind)
		binary.LittleEndian.PutUint32(buf[1:5], uint32(f.Node))
		binary.LittleEndian.PutUint32(buf[5:9], uint32(f.Trans))
		h.Write(buf[:9])
	}
	return h.Sum64()
}

// hashSimOptions digests the result-shaping simulator options. Workers,
// the OnObserve/OnSnapshot hooks, and the trimming knobs (Trim,
// TrimProbation, SnapshotEvery) are deliberately excluded: results are
// bit-identical for every worker count, hooks never shape them, and the
// redundancy trims shed executed work while keeping every BatchResult
// field byte-identical — all of them are legitimate things to change
// between resume runs. (A trim-mode change does invalidate mid-batch
// Partial snapshots; those are discarded on resume, never fingerprinted.)
func hashSimOptions(opts core.Options) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, o := range opts.Observe {
		binary.LittleEndian.PutUint32(buf[:4], uint32(o))
		h.Write(buf[:4])
	}
	buf[0] = byte(opts.Drop)
	buf[1] = b2u(opts.StaticLocality)
	buf[2] = b2u(opts.FullReplay)
	binary.LittleEndian.PutUint32(buf[4:8], uint32(opts.MaxRounds))
	h.Write(buf[:8])
	return h.Sum64()
}

func b2u(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// matches verifies the checkpoint belongs to the same campaign.
func (c *Checkpoint) matches(want *Checkpoint) error {
	switch {
	case c.Version != checkpointVersion:
		return fmt.Errorf("checkpoint schema version %d, this build writes version %d; delete the checkpoint file (completed batches will re-run) or finish the campaign with the build that wrote it",
			c.Version, checkpointVersion)
	case c.Sequence != want.Sequence || c.NumSettings != want.NumSettings:
		return fmt.Errorf("sequence %q (%d settings), campaign runs %q (%d)",
			c.Sequence, c.NumSettings, want.Sequence, want.NumSettings)
	case c.NumFaults != want.NumFaults || c.FaultsHash != want.FaultsHash:
		return fmt.Errorf("fault universe differs (%d faults, hash %x; campaign has %d, %x)",
			c.NumFaults, c.FaultsHash, want.NumFaults, want.FaultsHash)
	case c.NumNodes != want.NumNodes || c.NumTransistors != want.NumTransistors:
		return fmt.Errorf("network fingerprint %d/%d, campaign network is %d/%d",
			c.NumNodes, c.NumTransistors, want.NumNodes, want.NumTransistors)
	case c.SimHash != want.SimHash:
		return fmt.Errorf("simulator options differ (observe/drop/ablations/rounds)")
	case c.BatchSize != want.BatchSize || c.NumBatches != want.NumBatches:
		return fmt.Errorf("batching %d×%d, campaign uses %d×%d",
			c.NumBatches, c.BatchSize, want.NumBatches, want.BatchSize)
	}
	return nil
}

// Save writes the checkpoint as JSON.
func (c *Checkpoint) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(c)
}

// LoadCheckpoint reads a checkpoint previously written by Save.
func LoadCheckpoint(r io.Reader) (*Checkpoint, error) {
	c := &Checkpoint{}
	if err := json.NewDecoder(r).Decode(c); err != nil {
		return nil, fmt.Errorf("campaign: decoding checkpoint: %w", err)
	}
	return c, nil
}

// saveFile atomically and durably replaces the checkpoint file: write to
// a temp file in the same directory, fsync it, rename over the target,
// then fsync the directory. Without the fsyncs the rename is atomic
// against concurrent readers but not against power loss — a crash could
// leave the new name pointing at data that never reached the disk.
func (c *Checkpoint) saveFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".campaign-ck-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := c.Save(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	// Persist the rename itself. Directory fsync can fail on exotic
	// filesystems; the data fsync above already happened, so don't fail
	// the campaign over it.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// loadCheckpointFile loads path, returning (nil, nil) when the file does
// not exist yet.
func loadCheckpointFile(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadCheckpoint(f)
}

//go:build slow

package difftest

// Full-sweep harness scale: `go test -tags slow ./internal/campaign/difftest`
// draws a much larger seeded lattice over bigger geometries (including
// the paper's 8×8 RAM64). Expect minutes, not seconds.
const (
	difftestSeed = 0x5eedfa01
	nCases       = 120
)

// geometries the full sweep draws from (rows, cols; powers of two).
var geometries = [][2]int{{2, 2}, {2, 4}, {4, 4}, {4, 8}, {8, 8}}

// Package difftest is the differential equivalence harness of the
// campaign engine: seeded random execution configurations — circuit
// size, test sequence, fault-universe mix, lane width, worker count,
// batching, sharding, redundancy trimming, and mid-campaign
// interrupt/resume points — are cross-checked byte-for-byte against a
// monolithic single-batch reference over the same workload.
//
// The property under test is the repo's determinism contract: every
// execution shape produces the identical merged result — identical
// detections, divergence records, per-pattern statistics and counted
// work — so any scheduling, packing, trimming, or resume bug surfaces as
// a byte diff, not a statistical anomaly. The default `go test` run
// checks a bounded pseudo-random sample; `go test -tags slow` sweeps a
// larger lattice (see scale_slow_test.go).
package difftest

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"fmossim/internal/campaign"
	"fmossim/internal/core"
	"fmossim/internal/fault"
	"fmossim/internal/march"
	"fmossim/internal/netlist"
	"fmossim/internal/ram"
	"fmossim/internal/switchsim"
)

// Case is one randomized execution configuration.
type Case struct {
	Rows, Cols  int // RAM geometry (powers of two)
	Seq2        bool
	MaxPatterns int // 0 = full sequence
	FaultMix    int // 0 plain stuck-at, 1 overlapping mix (classes fire)

	LaneWidth  int
	Workers    int
	NumBatches int
	Shards     int

	Trim          bool
	TrimProbation int

	// Interrupt, when true, cancels the campaign after InterruptAfter
	// progress events and resumes it from the checkpoint; SnapshotEvery
	// (when > 0) additionally exercises mid-batch partial snapshots.
	Interrupt      bool
	InterruptAfter int
	SnapshotEvery  int
}

func (c Case) String() string {
	return fmt.Sprintf("ram%dx%d/seq2=%v/max=%d/mix=%d/lane=%d/w=%d/b=%d/s=%d/trim=%v(p%d)/int=%v@%d/snap=%d",
		c.Rows, c.Cols, c.Seq2, c.MaxPatterns, c.FaultMix, c.LaneWidth, c.Workers,
		c.NumBatches, c.Shards, c.Trim, c.TrimProbation, c.Interrupt, c.InterruptAfter, c.SnapshotEvery)
}

// genCase draws one configuration. Geometry and depth come from the
// scale knobs (scale_default_test.go / scale_slow_test.go) so the
// bounded run stays fast while -tags slow widens the lattice.
func genCase(rng *rand.Rand) Case {
	geom := geometries[rng.Intn(len(geometries))]
	c := Case{
		Rows:       geom[0],
		Cols:       geom[1],
		Seq2:       rng.Intn(2) == 1,
		FaultMix:   rng.Intn(2),
		LaneWidth:  []int{1, 3, 7, 13, 32, 64}[rng.Intn(6)],
		Workers:    1 + rng.Intn(4),
		NumBatches: 1 + rng.Intn(6),
		Shards:     1 + rng.Intn(3),
	}
	if rng.Intn(3) > 0 {
		c.MaxPatterns = 4 + rng.Intn(12)
	}
	if rng.Intn(2) == 1 {
		c.Trim = true
		c.TrimProbation = []int{0, 1, 3, 8}[rng.Intn(4)]
	}
	if rng.Intn(3) == 0 {
		c.Interrupt = true
		c.InterruptAfter = 1 + rng.Intn(40)
		if rng.Intn(2) == 1 {
			c.SnapshotEvery = 2 + rng.Intn(7)
		}
	}
	return c
}

// workload materializes the circuit, sequence and fault universe of a
// case. The fault list is a deterministic function of the geometry and
// mix, including deliberate duplicates in the overlapping mix so
// equivalence classes have members to collapse.
func workload(c Case) (*ram.RAM, *switchsim.Sequence, []fault.Fault) {
	m := ram.New(ram.Config{Rows: c.Rows, Cols: c.Cols})
	var seq *switchsim.Sequence
	if c.Seq2 {
		seq = march.Sequence2(m)
	} else {
		seq = march.Sequence1(m)
	}
	if c.MaxPatterns > 0 && c.MaxPatterns < len(seq.Patterns) {
		seq.Patterns = seq.Patterns[:c.MaxPatterns]
	}
	faults := fault.NodeStuckFaults(m.Net, fault.Options{})
	if c.FaultMix == 1 {
		faults = append(faults, fault.BridgeFaults(m.BitlineShorts)...)
		for _, tid := range m.BitlineShorts {
			faults = append(faults, fault.Fault{Kind: fault.TransStuckClosed, Trans: tid})
		}
		n := len(faults) / 4
		faults = append(faults, faults[:n]...) // duplicates: guaranteed class members
	}
	return m, seq, faults
}

// canonical renders a campaign result with every wall-clock field
// masked: the byte string two equivalent executions must agree on.
func canonical(t *testing.T, res *campaign.Result) string {
	t.Helper()
	run := res.Run
	run.GoodNS, run.FaultNS = 0, 0
	pp := make([]core.PatternStats, len(run.PerPattern))
	for i, p := range run.PerPattern {
		p.GoodNS, p.FaultNS = 0, 0
		pp[i] = p
	}
	run.PerPattern = pp
	b, err := json.Marshal(struct {
		Run      core.Result
		PerFault []campaign.FaultOutcome
	}{run, res.PerFault})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// refKey identifies the workload a reference covers.
func refKey(c Case) string {
	return fmt.Sprintf("%dx%d/%v/%d/%d", c.Rows, c.Cols, c.Seq2, c.MaxPatterns, c.FaultMix)
}

// reference runs the monolithic baseline — one batch, one worker, full
// lanes, no trimming — and caches its canonical bytes per workload.
func reference(t *testing.T, cache map[string]string, c Case) string {
	t.Helper()
	key := refKey(c)
	if ref, ok := cache[key]; ok {
		return ref
	}
	m, seq, faults := workload(c)
	res, err := campaign.Run(context.Background(), m.Net, faults, seq, campaign.Options{
		Sim:       core.Options{Observe: []netlist.NodeID{m.DataOut}, Workers: 1},
		BatchSize: len(faults),
		Shards:    1,
	})
	if err != nil {
		t.Fatalf("%s: reference: %v", key, err)
	}
	ref := canonical(t, res)
	cache[key] = ref
	return ref
}

// runCase executes one configuration (with interrupt/resume when the
// case asks for it) and returns its canonical bytes.
func runCase(t *testing.T, c Case) string {
	t.Helper()
	m, seq, faults := workload(c)
	opts := campaign.Options{
		Sim: core.Options{
			Observe:       []netlist.NodeID{m.DataOut},
			LaneWidth:     c.LaneWidth,
			Workers:       c.Workers,
			Trim:          c.Trim,
			TrimProbation: c.TrimProbation,
			SnapshotEvery: c.SnapshotEvery,
		},
		BatchSize: (len(faults) + c.NumBatches - 1) / c.NumBatches,
		Shards:    c.Shards,
	}
	if !c.Interrupt {
		res, err := campaign.Run(context.Background(), m.Net, faults, seq, opts)
		if err != nil {
			t.Fatalf("%s: %v", c, err)
		}
		return canonical(t, res)
	}

	// Interrupted run: cancel after the case's progress-event budget,
	// then resume from the checkpoint. The budget lands anywhere from
	// mid-first-batch to campaign-complete — all must converge.
	opts.CheckpointPath = filepath.Join(t.TempDir(), "difftest.ck")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	events := 0
	opts.Progress = func(campaign.ProgressEvent) {
		if events++; events >= c.InterruptAfter {
			cancel()
		}
	}
	res, err := campaign.Run(ctx, m.Net, faults, seq, opts)
	if err != nil {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: interrupted run: %v", c, err)
		}
		opts.Progress = nil
		res, err = campaign.Run(context.Background(), m.Net, faults, seq, opts)
		if err != nil {
			t.Fatalf("%s: resume: %v", c, err)
		}
	}
	return canonical(t, res)
}

// TestDifferentialEquivalence draws nCases seeded configurations and
// cross-checks each against the cached monolithic reference for its
// workload. Failures print the full case so it can be replayed by
// constructing the same Case by hand.
func TestDifferentialEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(difftestSeed))
	refs := map[string]string{}
	for i := 0; i < nCases; i++ {
		c := genCase(rng)
		want := reference(t, refs, c)
		got := runCase(t, c)
		if got != want {
			t.Fatalf("case %d diverged from monolithic reference:\n%s", i, c)
		}
	}
}

// TestDifferentialPinnedCases locks in the corners the random draw might
// miss at the bounded budget: trim with a one-setting probation window,
// single-fault lanes, and an interrupted trimmed campaign resuming from
// a mid-batch snapshot.
func TestDifferentialPinnedCases(t *testing.T) {
	pinned := []Case{
		{Rows: 4, Cols: 4, FaultMix: 1, LaneWidth: 1, Workers: 2, NumBatches: 3, Shards: 2,
			Trim: true, TrimProbation: 1},
		{Rows: 4, Cols: 4, FaultMix: 1, LaneWidth: 64, Workers: 1, NumBatches: 1, Shards: 1,
			Trim: true, Interrupt: true, InterruptAfter: 25, SnapshotEvery: 3},
		{Rows: 2, Cols: 4, Seq2: true, FaultMix: 0, LaneWidth: 7, Workers: 3, NumBatches: 5, Shards: 3},
		{Rows: 4, Cols: 4, FaultMix: 1, MaxPatterns: 8, LaneWidth: 13, Workers: 2, NumBatches: 2,
			Shards: 2, Trim: true, TrimProbation: 3, Interrupt: true, InterruptAfter: 10},
	}
	refs := map[string]string{}
	for _, c := range pinned {
		if got, want := runCase(t, c), reference(t, refs, c); got != want {
			t.Fatalf("pinned case diverged from monolithic reference:\n%s", c)
		}
	}
}

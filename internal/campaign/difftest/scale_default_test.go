//go:build !slow

package difftest

// Bounded harness scale for the default `go test` run: a handful of
// seeded cases over small geometries, well under a minute.
const (
	difftestSeed = 0x5eedfa01
	nCases       = 10
)

// geometries the bounded run draws from (rows, cols; powers of two).
var geometries = [][2]int{{2, 2}, {2, 4}, {4, 4}}

package campaign_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"fmossim/internal/campaign"
	"fmossim/internal/core"
	"fmossim/internal/fault"
	"fmossim/internal/march"
	"fmossim/internal/netlist"
	"fmossim/internal/ram"
	"fmossim/internal/switchsim"
)

// testBench builds the shared workload: a 4×4 RAM, a mixed-kind fault
// universe (node stuck-at, transistor stuck, bit-line shorts), and test
// sequence 1.
func testBench(t *testing.T) (*ram.RAM, []fault.Fault, *switchsim.Sequence) {
	t.Helper()
	m := ram.New(ram.Config{Rows: 4, Cols: 4})
	faults := fault.NodeStuckFaults(m.Net, fault.Options{})
	ts := fault.TransistorStuckFaults(m.Net, fault.Options{})
	if len(ts) > 30 {
		ts = ts[:30]
	}
	faults = append(faults, ts...)
	faults = append(faults, fault.BridgeFaults(m.BitlineShorts)...)
	seq := march.Sequence1(m)
	return m, faults, seq
}

// ceilDiv splits n into k near-equal parts.
func ceilDiv(n, k int) int { return (n + k - 1) / k }

// assertMatchesMonolithic compares a campaign result against the
// monolithic simulator: detections, final records, and every
// deterministic statistic must be bit-identical.
func assertMatchesMonolithic(t *testing.T, tag string, nw *netlist.Network, faults []fault.Fault, mono *core.Simulator, monoRes *core.Result, res *campaign.Result) {
	t.Helper()
	if res.BatchesSkipped != 0 {
		t.Fatalf("%s: %d batches skipped in a full campaign", tag, res.BatchesSkipped)
	}
	for fi := range faults {
		md, mok := mono.Detected(fi)
		cd, cok := res.Detected(fi)
		if mok != cok || (mok && md != cd) {
			t.Fatalf("%s: fault %s detection mismatch: mono=%+v(%v) campaign=%+v(%v)",
				tag, faults[fi].Describe(nw), md, mok, cd, cok)
		}
		if mono.Oscillated(fi) != res.PerFault[fi].Oscillated {
			t.Fatalf("%s: fault %s oscillation mismatch", tag, faults[fi].Describe(nw))
		}
		mrec := mono.Records(fi)
		crec := res.PerFault[fi].Records
		if len(mrec) != len(crec) {
			t.Fatalf("%s: fault %s has %d records mono vs %d campaign",
				tag, faults[fi].Describe(nw), len(mrec), len(crec))
		}
		for n, v := range mrec {
			if crec[n] != v {
				t.Fatalf("%s: fault %s node %s: mono=%s campaign=%s",
					tag, faults[fi].Describe(nw), nw.Name(n), v, crec[n])
			}
		}
	}

	// Aggregate statistics: everything except wall-clock must match.
	if res.Run.Detected != monoRes.Detected || res.Run.HardDetected != monoRes.HardDetected ||
		res.Run.Oscillated != monoRes.Oscillated || res.Run.NumFaults != monoRes.NumFaults {
		t.Fatalf("%s: totals mismatch: campaign %d/%d/%d mono %d/%d/%d", tag,
			res.Run.Detected, res.Run.HardDetected, res.Run.Oscillated,
			monoRes.Detected, monoRes.HardDetected, monoRes.Oscillated)
	}
	if res.Run.GoodWork != monoRes.GoodWork || res.Run.FaultWork != monoRes.FaultWork {
		t.Fatalf("%s: work mismatch: campaign %d+%d mono %d+%d", tag,
			res.Run.GoodWork, res.Run.FaultWork, monoRes.GoodWork, monoRes.FaultWork)
	}
	if len(res.Run.PerPattern) != len(monoRes.PerPattern) {
		t.Fatalf("%s: %d patterns vs %d", tag, len(res.Run.PerPattern), len(monoRes.PerPattern))
	}
	for pi := range monoRes.PerPattern {
		mp, cp := monoRes.PerPattern[pi], res.Run.PerPattern[pi]
		mp.GoodNS, mp.FaultNS = 0, 0
		cp.GoodNS, cp.FaultNS = 0, 0
		if mp != cp {
			t.Fatalf("%s: pattern %d stats mismatch:\nmono     %+v\ncampaign %+v", tag, pi, mp, cp)
		}
	}
}

// TestCampaignMatchesMonolithic is the batch-equivalence suite of the
// campaign engine: splitting the universe into 1, 3, and 7 batches, at
// several per-batch worker counts and shard counts, must reproduce the
// monolithic simulator's detections, records, and statistics bit for bit.
func TestCampaignMatchesMonolithic(t *testing.T) {
	m, faults, seq := testBench(t)
	obs := []netlist.NodeID{m.DataOut}

	mono, err := core.New(m.Net, faults, core.Options{Observe: obs, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	monoRes := mono.Run(seq)
	if monoRes.Detected == 0 {
		t.Fatal("workload detects nothing; test is vacuous")
	}

	// Record once, replay in every configuration: also proves the replay
	// path never needs the good solver again.
	rec := core.Record(m.Net, seq, core.Options{})

	for _, nBatches := range []int{1, 3, 7} {
		for _, workers := range []int{1, 3} {
			tag := "batches=" + string(rune('0'+nBatches)) + "/workers=" + string(rune('0'+workers))
			res, err := campaign.Run(context.Background(), m.Net, faults, seq, campaign.Options{
				Sim:       core.Options{Observe: obs, Workers: workers},
				BatchSize: ceilDiv(len(faults), nBatches),
				Shards:    2,
				Recording: rec,
			})
			if err != nil {
				t.Fatalf("%s: %v", tag, err)
			}
			if res.Batches != nBatches {
				t.Fatalf("%s: ran %d batches", tag, res.Batches)
			}
			assertMatchesMonolithic(t, tag, m.Net, faults, mono, monoRes, res)
		}
	}
}

// TestCampaignSerializedRecording: a recording that has been round-tripped
// through its binary encoding drives a campaign to the identical result.
func TestCampaignSerializedRecording(t *testing.T) {
	m, faults, seq := testBench(t)
	obs := []netlist.NodeID{m.DataOut}

	mono, err := core.New(m.Net, faults, core.Options{Observe: obs, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	monoRes := mono.Run(seq)

	var buf bytes.Buffer
	if err := core.Record(m.Net, seq, core.Options{}).Encode(&buf); err != nil {
		t.Fatal(err)
	}
	rec, err := switchsim.DecodeRecording(&buf)
	if err != nil {
		t.Fatal(err)
	}
	res, err := campaign.Run(context.Background(), m.Net, faults, seq, campaign.Options{
		Sim:       core.Options{Observe: obs},
		BatchSize: ceilDiv(len(faults), 4),
		Shards:    2,
		Recording: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesMonolithic(t, "serialized", m.Net, faults, mono, monoRes, res)
}

// TestCampaignCheckpointResume: a campaign with a checkpoint file resumes
// completed batches instead of re-simulating them, and the resumed merge
// equals the uninterrupted one.
func TestCampaignCheckpointResume(t *testing.T) {
	m, faults, seq := testBench(t)
	obs := []netlist.NodeID{m.DataOut}
	ckPath := filepath.Join(t.TempDir(), "campaign.ck")

	opts := campaign.Options{
		Sim:            core.Options{Observe: obs, Workers: 1},
		BatchSize:      ceilDiv(len(faults), 5),
		Shards:         2,
		CheckpointPath: ckPath,
	}
	first, err := campaign.Run(context.Background(), m.Net, faults, seq, opts)
	if err != nil {
		t.Fatal(err)
	}
	if first.BatchesRun != first.Batches || first.BatchesResumed != 0 {
		t.Fatalf("first run: run=%d resumed=%d of %d", first.BatchesRun, first.BatchesResumed, first.Batches)
	}
	if _, err := os.Stat(ckPath); err != nil {
		t.Fatalf("checkpoint file not written: %v", err)
	}

	second, err := campaign.Run(context.Background(), m.Net, faults, seq, opts)
	if err != nil {
		t.Fatal(err)
	}
	if second.BatchesResumed != second.Batches || second.BatchesRun != 0 {
		t.Fatalf("second run: run=%d resumed=%d of %d", second.BatchesRun, second.BatchesResumed, second.Batches)
	}
	if second.Run.Detected != first.Run.Detected || second.Run.FaultWork != first.Run.FaultWork {
		t.Fatalf("resumed result differs: %d/%d vs %d/%d",
			second.Run.Detected, second.Run.FaultWork, first.Run.Detected, first.Run.FaultWork)
	}
	for fi := range faults {
		fd, fok := first.Detected(fi)
		sd, sok := second.Detected(fi)
		if fok != sok || fd != sd {
			t.Fatalf("fault %d detection differs after resume", fi)
		}
	}

	// A mismatched campaign must refuse the checkpoint: different
	// batching, a different same-sized fault universe, or different
	// result-shaping simulator options would silently attribute stale
	// batch results.
	bad := opts
	bad.BatchSize = ceilDiv(len(faults), 3)
	if _, err := campaign.Run(context.Background(), m.Net, faults, seq, bad); err == nil {
		t.Fatal("mismatched batching accepted")
	}
	swapped := append([]fault.Fault(nil), faults...)
	swapped[0], swapped[1] = swapped[1], swapped[0]
	if _, err := campaign.Run(context.Background(), m.Net, swapped, seq, opts); err == nil {
		t.Fatal("same-sized but different fault universe accepted")
	}
	badDrop := opts
	badDrop.Sim.Drop = core.NeverDrop
	if _, err := campaign.Run(context.Background(), m.Net, faults, seq, badDrop); err == nil {
		t.Fatal("different drop policy accepted")
	}
}

// TestCampaignEarlyStop: with a low coverage target and serial shards,
// the campaign stops claiming batches once the target is met.
func TestCampaignEarlyStop(t *testing.T) {
	m, faults, seq := testBench(t)
	obs := []netlist.NodeID{m.DataOut}

	res, err := campaign.Run(context.Background(), m.Net, faults, seq, campaign.Options{
		Sim:            core.Options{Observe: obs, Workers: 1},
		BatchSize:      ceilDiv(len(faults), 8),
		Shards:         1,
		CoverageTarget: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BatchesSkipped == 0 {
		t.Fatalf("5%% target on a high-coverage workload should skip batches (run=%d of %d, coverage %.2f)",
			res.BatchesRun, res.Batches, res.Coverage())
	}
	if res.Coverage() < 0.05 {
		t.Fatalf("stopped below target: %.3f", res.Coverage())
	}
	skipped := 0
	for _, o := range res.PerFault {
		if o.Skipped {
			skipped++
		}
	}
	if skipped == 0 {
		t.Fatal("no per-fault skip markers")
	}
}

// TestCampaignValidation: mismatched recordings and missing outputs fail
// cleanly.
func TestCampaignValidation(t *testing.T) {
	m, faults, seq := testBench(t)
	obs := []netlist.NodeID{m.DataOut}

	if _, err := campaign.Run(context.Background(), m.Net, faults, seq, campaign.Options{}); err == nil {
		t.Error("campaign without observed outputs should fail")
	}

	other := ram.New(ram.Config{Rows: 2, Cols: 2})
	rec := core.Record(other.Net, march.Sequence1(other), core.Options{})
	if _, err := campaign.Run(context.Background(), m.Net, faults, seq, campaign.Options{
		Sim: core.Options{Observe: obs}, Recording: rec,
	}); err == nil {
		t.Error("foreign recording should fail validation")
	}
}

// TestCampaignProgressEvents: the Progress stream reports every batch's
// completion, campaign-wide detections that are monotonic per reporting
// batch and sum to the final count, and universe-indexed detection
// events consistent with the merged per-fault outcomes.
func TestCampaignProgressEvents(t *testing.T) {
	m, faults, seq := testBench(t)
	obs := []netlist.NodeID{m.DataOut}

	var mu sync.Mutex
	var events []campaign.ProgressEvent
	res, err := campaign.Run(context.Background(), m.Net, faults, seq, campaign.Options{
		Sim:       core.Options{Observe: obs},
		BatchSize: ceilDiv(len(faults), 3),
		Shards:    2,
		Progress: func(ev campaign.ProgressEvent) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	batchDone := 0
	lastDetected := -1
	seen := map[int]bool{}
	for _, ev := range events {
		if ev.NumFaults != len(faults) || ev.Batches != res.Batches {
			t.Fatalf("event universe %d/%d, want %d/%d", ev.NumFaults, ev.Batches, len(faults), res.Batches)
		}
		if ev.Detected < lastDetected {
			t.Fatalf("campaign-wide detected regressed: %d -> %d", lastDetected, ev.Detected)
		}
		lastDetected = ev.Detected
		if ev.BatchDone {
			batchDone++
		}
		for _, fi := range ev.NewlyDetected {
			if seen[fi] {
				t.Fatalf("fault %d detected twice in the event stream", fi)
			}
			seen[fi] = true
			if _, ok := res.Detected(fi); !ok {
				t.Fatalf("fault %d streamed as detected but not in the result", fi)
			}
		}
	}
	if batchDone != res.Batches {
		t.Fatalf("%d batch-done events, want %d", batchDone, res.Batches)
	}
	if len(seen) != res.Run.Detected || lastDetected != res.Run.Detected {
		t.Fatalf("streamed %d detections (last counter %d), result has %d",
			len(seen), lastDetected, res.Run.Detected)
	}
}

// TestCampaignCancellation: a cancelled campaign returns promptly with
// context.Canceled; completed batches stay in the checkpoint and a
// resumed run finishes from them.
func TestCampaignCancellation(t *testing.T) {
	m, faults, seq := testBench(t)
	obs := []netlist.NodeID{m.DataOut}
	ckPath := filepath.Join(t.TempDir(), "ck.json")

	// Cancel as soon as the first batch completes.
	ctx, cancel := context.WithCancel(context.Background())
	opts := campaign.Options{
		Sim:            core.Options{Observe: obs},
		BatchSize:      ceilDiv(len(faults), 8),
		Shards:         1,
		CheckpointPath: ckPath,
		Progress: func(ev campaign.ProgressEvent) {
			if ev.BatchDone {
				cancel()
			}
		},
	}
	_, err := campaign.Run(ctx, m.Net, faults, seq, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled campaign returned %v, want context.Canceled", err)
	}

	// Resume without the cancelled context: at least one batch must come
	// from the checkpoint, and the merged result matches an uninterrupted
	// run.
	opts.Progress = nil
	res, err := campaign.Run(context.Background(), m.Net, faults, seq, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.BatchesResumed == 0 {
		t.Fatal("no batches resumed after cancellation")
	}
	clean, err := campaign.Run(context.Background(), m.Net, faults, seq, campaign.Options{
		Sim:       core.Options{Observe: obs},
		BatchSize: opts.BatchSize,
		Shards:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Run.Detected != clean.Run.Detected || res.Run.FaultWork != clean.Run.FaultWork {
		t.Fatalf("resumed result diverged: %d/%d vs %d/%d",
			res.Run.Detected, res.Run.FaultWork, clean.Run.Detected, clean.Run.FaultWork)
	}
}

// TestCampaignCheckpointVersionReject: a checkpoint written under an
// older schema (pre-trim, no partial snapshots) is refused with an error
// naming the version, instead of silently reinterpreting its contents.
func TestCampaignCheckpointVersionReject(t *testing.T) {
	m, faults, seq := testBench(t)
	obs := []netlist.NodeID{m.DataOut}
	ckPath := filepath.Join(t.TempDir(), "campaign.ck")

	opts := campaign.Options{
		Sim:            core.Options{Observe: obs, Workers: 1},
		BatchSize:      ceilDiv(len(faults), 3),
		Shards:         1,
		CheckpointPath: ckPath,
	}
	if _, err := campaign.Run(context.Background(), m.Net, faults, seq, opts); err != nil {
		t.Fatal(err)
	}

	// Rewrite the file as the previous schema would have written it: same
	// contents, version field 1 (a pre-versioned file decodes as 0 — also
	// rejected).
	for _, v := range []int{0, 1, 99} {
		raw, err := os.ReadFile(ckPath)
		if err != nil {
			t.Fatal(err)
		}
		var doc map[string]any
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatal(err)
		}
		if v == 0 {
			delete(doc, "version")
		} else {
			doc["version"] = v
		}
		mut, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(ckPath, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err = campaign.Run(context.Background(), m.Net, faults, seq, opts)
		if err == nil {
			t.Fatalf("version-%d checkpoint accepted", v)
		}
		if !strings.Contains(err.Error(), "version") {
			t.Fatalf("version-%d rejection does not name the schema version: %v", v, err)
		}
	}
}

// TestCampaignPartialResume: a campaign interrupted mid-batch leaves a
// partial snapshot in the checkpoint; resuming restarts that batch from
// the snapshot (not from setting zero) and merges to the identical
// result. A trim-mode flip between the runs discards the partial but
// still converges to the same result.
func TestCampaignPartialResume(t *testing.T) {
	m, faults, seq := testBench(t)
	obs := []netlist.NodeID{m.DataOut}

	ref, err := campaign.Run(context.Background(), m.Net, faults, seq, campaign.Options{
		Sim:       core.Options{Observe: obs, Workers: 1},
		BatchSize: len(faults),
		Shards:    1,
	})
	if err != nil {
		t.Fatal(err)
	}

	for _, flip := range []bool{false, true} {
		ckPath := filepath.Join(t.TempDir(), "campaign.ck")
		ctx, cancel := context.WithCancel(context.Background())
		opts := campaign.Options{
			Sim:            core.Options{Observe: obs, Workers: 1, Trim: true, SnapshotEvery: 4},
			BatchSize:      len(faults), // one batch: only partial progress can survive
			Shards:         1,
			CheckpointPath: ckPath,
			Progress: func(ev campaign.ProgressEvent) {
				// Cancel mid-batch, past a few snapshot frames.
				if ev.Pattern >= 2 {
					cancel()
				}
			},
		}
		if _, err := campaign.Run(ctx, m.Net, faults, seq, opts); !errors.Is(err, context.Canceled) {
			t.Fatalf("interrupted campaign returned %v, want context.Canceled", err)
		}
		raw, err := os.ReadFile(ckPath)
		if err != nil {
			t.Fatalf("no checkpoint after mid-batch interruption: %v", err)
		}
		if !strings.Contains(string(raw), "\"partial\"") {
			t.Fatal("checkpoint carries no partial snapshot")
		}

		opts.Sim.Trim = !flip // flip=true resumes untrimmed, discarding the partial
		var first *campaign.ProgressEvent
		opts.Progress = func(ev campaign.ProgressEvent) {
			if first == nil && !ev.BatchDone {
				e := ev
				first = &e
			}
		}
		res, err := campaign.Run(context.Background(), m.Net, faults, seq, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !flip {
			// Same trim mode: the batch must have restarted mid-sequence.
			if first == nil || (first.Pattern == 0 && first.Setting == 0) {
				t.Fatalf("resume replayed from the start (first event %+v)", first)
			}
		} else if first != nil && (first.Pattern != 0 || first.Setting != 0) {
			t.Fatalf("trim-mode flip should discard the partial; first event %+v", first)
		}
		if res.Run.Detected != ref.Run.Detected || res.Run.FaultWork != ref.Run.FaultWork {
			t.Fatalf("flip=%v: resumed result diverged: %d/%d vs %d/%d", flip,
				res.Run.Detected, res.Run.FaultWork, ref.Run.Detected, ref.Run.FaultWork)
		}
		for fi := range faults {
			rd, rok := ref.Detected(fi)
			gd, gok := res.Detected(fi)
			if rok != gok || rd != gd {
				t.Fatalf("flip=%v: fault %d detection differs after partial resume", flip, fi)
			}
		}
	}
}

// Package campaign is the sharded fault-campaign engine: it records the
// good circuit's trajectory once, partitions the fault universe into
// batches, replays each batch independently against the recording, and
// merges the outcomes deterministically.
//
// This is the trajectory-decoupled execution model the FMOSSIM cost
// analysis points at: the good circuit is simulated exactly once per
// sequence (core.Record), and every fault batch pays only fault-side,
// activity-proportional work. Because a batch's memory footprint scales
// with its width (workers × nodes + live divergence) rather than with the
// whole universe, a campaign can stream an arbitrarily large fault list
// through bounded memory, run batches concurrently, stop early at a
// coverage target, resume from a checkpoint of completed batches, report
// per-setting progress (Options.Progress), and cancel cooperatively
// (the Run context).
//
// # Recording fingerprint contract
//
// A switchsim.Recording is bound to the exact (network, sequence) pair it
// was captured over: it carries the network's node and transistor counts
// and the sequence's setting count, and Run validates them before any
// batch replays (switchsim.Recording.Validate). A recording that was
// serialized (Encode/DecodeRecording) and shipped to another process
// revalidates identically there. Checkpoints extend the same idea to the
// campaign level: a checkpoint fingerprints the sequence name and setting
// count, the fault universe (content hash), the network shape, the
// result-shaping simulator options, and the batching; Run refuses to
// resume from a checkpoint whose fingerprint differs, because attributing
// stale batch results to a different campaign would be silent corruption.
// Worker counts and progress callbacks are deliberately outside the
// fingerprint: they never change results.
//
// # Batch/merge determinism guarantee
//
// Each fault's simulation depends only on the recorded trajectory and its
// own state, never on which batch hosts it, which worker executes it, or
// when its batch runs relative to others. Batches are merged at
// input-setting granularity in ascending fault order, so a campaign's
// detections (with their pattern/setting coordinates), final divergence
// records, and deterministic statistics (work units, active-circuit
// counts, live counts) are bit-identical to a monolithic core.Simulator
// run over the same fault list, for every batch size, shard count, and
// worker count. Wall-clock fields are the only exception. Early stop
// (CoverageTarget) intentionally breaks the equivalence: skipped batches
// are reported per fault, never silently counted. The guarantee is
// asserted across batch/worker combinations by TestCampaignMatchesMonolithic.
package campaign

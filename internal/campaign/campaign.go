// Package campaign is the sharded fault-campaign engine: it records the
// good circuit's trajectory once, partitions the fault universe into
// batches, replays each batch independently against the recording, and
// merges the outcomes deterministically.
//
// This is the trajectory-decoupled execution model the FMOSSIM cost
// analysis points at: the good circuit is simulated exactly once per
// sequence (core.Record), and every fault batch pays only fault-side,
// activity-proportional work. Because a batch's memory footprint scales
// with its width (workers × nodes + live divergence) rather than with the
// whole universe, a campaign can stream an arbitrarily large fault list
// through bounded memory, run batches concurrently, stop early at a
// coverage target, and resume from a checkpoint of completed batches.
//
// Determinism contract: each fault's simulation depends only on the
// recorded trajectory and its own state, never on which batch hosts it or
// which worker executes it. Batches are merged at input-setting
// granularity in ascending fault order, so a campaign's detections,
// final divergence records, and deterministic statistics (work units,
// active-circuit counts, live counts) are bit-identical to a monolithic
// core.Simulator run over the same fault list, for every batch size,
// shard count, and worker count. Wall-clock fields are the only
// exception. Early stop (CoverageTarget) intentionally breaks the
// equivalence: skipped batches are reported, not simulated.
package campaign

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"fmossim/internal/core"
	"fmossim/internal/fault"
	"fmossim/internal/logic"
	"fmossim/internal/netlist"
	"fmossim/internal/switchsim"
)

// Options configures a fault campaign.
type Options struct {
	// Sim carries the per-batch simulator options (Observe is required;
	// Drop, ablations, MaxRounds as in core.Options). Sim.Workers is the
	// per-batch worker pool; when 0 it defaults to 1 if the campaign runs
	// more than one shard (so shards × workers does not oversubscribe)
	// and to GOMAXPROCS otherwise.
	Sim core.Options

	// BatchSize is the number of faults per batch. 0 derives it from
	// Shards: the universe is split evenly, one batch per shard.
	BatchSize int

	// Shards is the number of batches executed concurrently. 0 selects
	// runtime.GOMAXPROCS(0), capped by the batch count.
	Shards int

	// CoverageTarget, in (0,1], stops the campaign early: once the
	// detected fraction of the whole universe reaches the target, no new
	// batches are started (in-flight batches finish). Unstarted batches
	// are reported as skipped.
	CoverageTarget float64

	// Recording, when non-nil, is a pre-captured good trajectory (see
	// core.Record / Recording.Encode): the campaign skips good-circuit
	// simulation entirely. When nil, the trajectory is recorded first.
	Recording *switchsim.Recording

	// CheckpointPath, when non-empty, makes the campaign resumable: the
	// checkpoint file is loaded if present (completed batches are not
	// re-simulated) and rewritten after every batch completion.
	CheckpointPath string
}

// FaultOutcome is the merged result for one fault of the universe.
type FaultOutcome struct {
	// Detected reports the fault was detected; Detection locates the
	// first detection (zero when !Detected).
	Detected  bool           `json:"detected"`
	Detection core.Detection `json:"detection"`
	// Oscillated reports the faulty circuit ever hit the round limit.
	Oscillated bool `json:"oscillated"`
	// Records is the fault's final divergence from the good circuit
	// (nil when none, or when the fault's batch was skipped).
	Records map[netlist.NodeID]logic.Value `json:"records,omitempty"`
	// Skipped reports the fault's batch was never simulated (early stop).
	Skipped bool `json:"skipped,omitempty"`
}

// Result is a campaign's merged outcome.
type Result struct {
	// Run is the merged aggregate in core.Result form. Its deterministic
	// fields (work units, detection counts, per-pattern active/live
	// statistics) are bit-identical to a monolithic run when no batch was
	// skipped; NS fields combine the recording's good-circuit times with
	// summed per-batch fault times.
	Run core.Result
	// PerFault holds one outcome per fault, in universe order.
	PerFault []FaultOutcome
	// Recording is the good trajectory the campaign replayed (the one
	// passed in Options, or the one recorded on entry): reusable for
	// further campaigns over the same sequence.
	Recording *switchsim.Recording

	// Batches is the total batch count; BatchesRun were simulated this
	// call, BatchesResumed restored from the checkpoint, BatchesSkipped
	// never started (early stop).
	Batches        int
	BatchesRun     int
	BatchesResumed int
	BatchesSkipped int
}

// Detected reports whether fault fi was detected, with details.
func (r *Result) Detected(fi int) (core.Detection, bool) {
	o := &r.PerFault[fi]
	return o.Detection, o.Detected
}

// Coverage returns the detected fraction of the fault universe.
func (r *Result) Coverage() float64 { return r.Run.Coverage() }

// Run executes a fault campaign over nw: record (or reuse) the good
// trajectory, shard faults into batches, replay the batches across the
// shard pool, and merge.
func Run(nw *netlist.Network, faults []fault.Fault, seq *switchsim.Sequence, opts Options) (*Result, error) {
	rec := opts.Recording
	if rec == nil {
		rec = core.Record(nw, seq, opts.Sim)
	}
	if err := rec.Validate(nw, seq.NumSettings()); err != nil {
		return nil, err
	}

	nf := len(faults)
	shards := opts.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	batchSize := opts.BatchSize
	if batchSize <= 0 {
		batchSize = (nf + shards - 1) / shards
		if batchSize == 0 {
			batchSize = 1
		}
	}
	nBatches := (nf + batchSize - 1) / batchSize
	if shards > nBatches && nBatches > 0 {
		shards = nBatches
	}
	simOpts := opts.Sim
	if simOpts.Workers <= 0 && shards > 1 {
		simOpts.Workers = 1
	}

	// Resume: completed batches come from the checkpoint, not from
	// simulation.
	results := make([]*core.BatchResult, nBatches)
	ck := &Checkpoint{
		Sequence:       seq.Name,
		NumSettings:    seq.NumSettings(),
		NumFaults:      nf,
		NumNodes:       nw.NumNodes(),
		NumTransistors: nw.NumTransistors(),
		BatchSize:      batchSize,
		NumBatches:     nBatches,
		FaultsHash:     hashFaults(faults),
		SimHash:        hashSimOptions(simOpts),
		Done:           map[int]*core.BatchResult{},
	}
	resumed := 0
	if opts.CheckpointPath != "" {
		prev, err := loadCheckpointFile(opts.CheckpointPath)
		if err != nil {
			return nil, err
		}
		if prev != nil {
			if err := prev.matches(ck); err != nil {
				return nil, fmt.Errorf("campaign: checkpoint %s: %w", opts.CheckpointPath, err)
			}
			for i, br := range prev.Done {
				if i >= 0 && i < nBatches && br != nil {
					results[i] = br
					ck.Done[i] = br
					resumed++
				}
			}
		}
	}

	var (
		detected atomic.Int64
		stop     atomic.Bool
		cursor   atomic.Int64
		ran      atomic.Int64
		ckMu     sync.Mutex
		errMu    sync.Mutex
		firstErr error
	)
	var target int64
	if opts.CoverageTarget > 0 && nf > 0 {
		target = int64(math.Ceil(opts.CoverageTarget * float64(nf)))
	}
	countDetected := func(br *core.BatchResult) int64 {
		var n int64
		for _, d := range br.Detected {
			if d {
				n++
			}
		}
		return n
	}
	for _, br := range results {
		if br != nil {
			detected.Add(countDetected(br))
		}
	}
	if target > 0 && detected.Load() >= target {
		stop.Store(true)
	}

	tab := switchsim.NewTables(nw)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if stop.Load() {
					return
				}
				i := int(cursor.Add(1)) - 1
				if i >= nBatches {
					return
				}
				if results[i] != nil {
					continue // resumed from checkpoint
				}
				lo := i * batchSize
				hi := min(lo+batchSize, nf)
				br, err := core.RunBatch(tab, faults[lo:hi], rec, seq, simOpts)
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					stop.Store(true)
					return
				}
				results[i] = br
				ran.Add(1)
				if target > 0 && detected.Add(countDetected(br)) >= target {
					stop.Store(true)
				}
				if opts.CheckpointPath != "" {
					ckMu.Lock()
					ck.Done[i] = br
					err := ck.saveFile(opts.CheckpointPath)
					ckMu.Unlock()
					if err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
						stop.Store(true)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	res := merge(rec, seq, nf, batchSize, results)
	res.Batches = nBatches
	res.BatchesRun = int(ran.Load())
	res.BatchesResumed = resumed
	res.BatchesSkipped = nBatches - res.BatchesRun - resumed
	return res, nil
}

// merge combines per-batch results into a monolithic-equivalent
// core.Result plus per-fault outcomes. Batches are merged at setting
// granularity: per-setting active-circuit and live counts sum across
// batches (each fault lives in exactly one), so pattern aggregates like
// MaxActive match a monolithic run exactly. Good-circuit work and time
// come from the recording, counted once.
func merge(rec *switchsim.Recording, seq *switchsim.Sequence, nf, batchSize int, results []*core.BatchResult) *Result {
	nSettings := seq.NumSettings()
	res := &Result{Recording: rec}
	res.Run = core.Result{Sequence: seq.Name, NumFaults: nf}
	res.PerFault = make([]FaultOutcome, nf)

	// Per-setting fault-side sums across batches. Skipped batches
	// contribute their width to the live counts (their circuits were
	// never simulated, hence never dropped).
	active := make([]int, nSettings)
	faultWork := make([]int64, nSettings)
	faultNS := make([]int64, nSettings)
	for bi, br := range results {
		lo := bi * batchSize
		width := min(batchSize, nf-lo)
		if br == nil {
			for fi := lo; fi < lo+width; fi++ {
				res.PerFault[fi].Skipped = true
			}
			continue
		}
		for si := range br.PerSetting {
			if si >= nSettings {
				break
			}
			active[si] += br.PerSetting[si].ActiveCircuits
			faultWork[si] += br.PerSetting[si].FaultWork
			faultNS[si] += br.PerSetting[si].FaultNS
		}
		for j := 0; j < width && j < len(br.Detected); j++ {
			o := &res.PerFault[lo+j]
			o.Detected = br.Detected[j]
			o.Detection = br.Detections[j]
			o.Oscillated = br.Oscillated[j]
			if j < len(br.Records) {
				o.Records = br.Records[j]
			}
		}
	}

	// Assemble per-pattern statistics from the sequence structure, the
	// recording's good-side figures, and the per-setting/-pattern sums.
	si := 0
	step := 1 // rec.Steps[0] is the initialization
	for pi := range seq.Patterns {
		p := &seq.Patterns[pi]
		ps := core.PatternStats{Pattern: pi, Name: p.Name, Settings: len(p.Settings)}
		for range p.Settings {
			if step < len(rec.Steps) {
				ps.GoodWork += rec.Steps[step].GoodWork
				ps.GoodNS += rec.Steps[step].GoodNS
			}
			if si < nSettings {
				ps.FaultWork += faultWork[si]
				ps.FaultNS += faultNS[si]
				if active[si] > ps.MaxActive {
					ps.MaxActive = active[si]
				}
			}
			si++
			step++
		}
		for bi, br := range results {
			lo := bi * batchSize
			width := min(batchSize, nf-lo)
			if br == nil {
				ps.LiveBefore += width
				ps.LiveAfter += width
				continue
			}
			if pi < len(br.PerPattern) {
				ps.LiveBefore += br.PerPattern[pi].LiveBefore
				ps.LiveAfter += br.PerPattern[pi].LiveAfter
				ps.Detected += br.PerPattern[pi].Detected
			}
		}
		res.Run.PerPattern = append(res.Run.PerPattern, ps)
		res.Run.GoodWork += ps.GoodWork
		res.Run.FaultWork += ps.FaultWork
		res.Run.GoodNS += ps.GoodNS
		res.Run.FaultNS += ps.FaultNS
	}

	for fi := range res.PerFault {
		o := &res.PerFault[fi]
		if o.Detected {
			res.Run.Detected++
			if o.Detection.Hard {
				res.Run.HardDetected++
			}
		}
		if o.Oscillated {
			res.Run.Oscillated++
		}
	}
	return res
}

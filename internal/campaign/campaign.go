// Campaign execution: sharding, the shard pool, progress fan-out, and
// the deterministic merge. Package documentation lives in doc.go.
package campaign

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"fmossim/internal/core"
	"fmossim/internal/fault"
	"fmossim/internal/logic"
	"fmossim/internal/netlist"
	"fmossim/internal/switchsim"
)

// Options configures a fault campaign.
type Options struct {
	// Sim carries the per-batch simulator options (Observe is required;
	// Drop, ablations, MaxRounds as in core.Options). Sim.Workers is the
	// per-batch worker pool; when 0 it defaults to 1 if the campaign runs
	// more than one shard (so shards × workers does not oversubscribe)
	// and to GOMAXPROCS otherwise.
	Sim core.Options

	// BatchSize is the number of faults per batch. 0 derives it from
	// Shards: the universe is split evenly, one batch per shard.
	BatchSize int

	// Shards is the number of batches executed concurrently. 0 selects
	// runtime.GOMAXPROCS(0), capped by the batch count.
	Shards int

	// CoverageTarget, in (0,1], stops the campaign early: once the
	// detected fraction of the whole universe reaches the target, no new
	// batches are started (in-flight batches finish). Unstarted batches
	// are reported as skipped.
	CoverageTarget float64

	// Recording, when non-nil, is a pre-captured good trajectory (see
	// core.Record / Recording.Encode): the campaign skips good-circuit
	// simulation entirely. When nil, the trajectory is recorded first.
	Recording *switchsim.Recording

	// Tables, when non-nil, is a pre-built read-only table set over the
	// campaign's network, shared by all batches (and, in a long-running
	// service, across campaigns over the same circuit). When nil, tables
	// are built per Run. Must have been built from the same Network.
	Tables *switchsim.Tables

	// CheckpointPath, when non-empty, makes the campaign resumable: the
	// checkpoint file is loaded if present (completed batches are not
	// re-simulated) and rewritten after every batch completion.
	CheckpointPath string

	// Progress, when non-nil, receives one ProgressEvent per simulated
	// input setting of every batch plus one batch-completion event per
	// batch. Events originate on the shard goroutines but are delivered
	// one at a time (serialized under an internal lock, which is what
	// makes the campaign-wide Detected counter monotonic across the
	// delivered events): the callback need not be safe for concurrent
	// use, but it must be fast — while it runs, no other shard can
	// deliver progress. Progress never changes simulation results and is
	// not part of the checkpoint fingerprint.
	Progress func(ProgressEvent)
}

// ProgressEvent is one campaign progress report delivered to
// Options.Progress, either after a batch simulated one input setting or
// (BatchDone) when a batch finished. The campaign-wide Detected counter
// is monotonically non-decreasing across the events any single campaign
// emits, so a consumer can stream coverage as it converges.
type ProgressEvent struct {
	// Batch is the reporting batch's index; Pattern and Setting locate
	// the setting it just simulated.
	Batch   int `json:"batch"`
	Pattern int `json:"pattern"`
	Setting int `json:"setting"`
	// ActiveCircuits and LiveFaults are the reporting batch's per-setting
	// figures (activated faulty circuits; undropped faults).
	ActiveCircuits int `json:"active_circuits"`
	LiveFaults     int `json:"live_faults"`
	// Lane occupancy of the batch's word-packed fault planes at this
	// setting: the activated circuits split into trajectory-indexed lane
	// replays vs scalar fallbacks, the adopted/solved vicinity split,
	// the faults retired (lane bits cleared) by this setting's
	// observation, and the batch's allocated lane capacity (LiveFaults /
	// LaneCapacity is the packing efficiency — see PackingEfficiency).
	LanesReplayed   int   `json:"lanes_replayed,omitempty"`
	ScalarFallbacks int   `json:"scalar_fallbacks,omitempty"`
	AdoptedVics     int64 `json:"adopted_vics,omitempty"`
	SolvedVics      int64 `json:"solved_vics,omitempty"`
	FaultsRetired   int   `json:"faults_retired,omitempty"`
	LaneCapacity    int   `json:"lane_capacity,omitempty"`
	// NewlyDetected lists the universe fault indices first detected at
	// this setting's observation (nil when none).
	NewlyDetected []int `json:"newly_detected,omitempty"`
	// Detected is the campaign-wide cumulative detection count, including
	// batches resumed from a checkpoint; NumFaults is the universe size.
	Detected  int `json:"detected"`
	NumFaults int `json:"num_faults"`
	// BatchesDone counts completed batches (resumed ones included);
	// Batches is the total. BatchDone marks the per-batch completion
	// event.
	BatchesDone int  `json:"batches_done"`
	Batches     int  `json:"batches"`
	BatchDone   bool `json:"batch_done,omitempty"`
}

// Coverage returns the event's campaign-wide detected fraction.
func (e ProgressEvent) Coverage() float64 {
	if e.NumFaults == 0 {
		return 0
	}
	return float64(e.Detected) / float64(e.NumFaults)
}

// PackingEfficiency returns the live fraction of the reporting batch's
// allocated lanes (0 when the event carries no lane figures): how full
// the word-packed planes still are as dropping retires lanes.
func (e ProgressEvent) PackingEfficiency() float64 {
	if e.LaneCapacity == 0 {
		return 0
	}
	return float64(e.LiveFaults) / float64(e.LaneCapacity)
}

// FaultOutcome is the merged result for one fault of the universe.
type FaultOutcome struct {
	// Detected reports the fault was detected; Detection locates the
	// first detection (zero when !Detected).
	Detected  bool           `json:"detected"`
	Detection core.Detection `json:"detection"`
	// Oscillated reports the faulty circuit ever hit the round limit.
	Oscillated bool `json:"oscillated"`
	// Records is the fault's final divergence from the good circuit
	// (nil when none, or when the fault's batch was skipped).
	Records map[netlist.NodeID]logic.Value `json:"records,omitempty"`
	// Skipped reports the fault's batch was never simulated (early stop).
	Skipped bool `json:"skipped,omitempty"`
}

// Result is a campaign's merged outcome.
type Result struct {
	// Run is the merged aggregate in core.Result form. Its deterministic
	// fields (work units, detection counts, per-pattern active/live
	// statistics) are bit-identical to a monolithic run when no batch was
	// skipped; NS fields combine the recording's good-circuit times with
	// summed per-batch fault times.
	Run core.Result
	// PerFault holds one outcome per fault, in universe order.
	PerFault []FaultOutcome
	// Recording is the good trajectory the campaign replayed (the one
	// passed in Options, or the one recorded on entry): reusable for
	// further campaigns over the same sequence.
	Recording *switchsim.Recording

	// Batches is the total batch count; BatchesRun were simulated this
	// call, BatchesResumed restored from the checkpoint, BatchesSkipped
	// never started (early stop).
	Batches        int
	BatchesRun     int
	BatchesResumed int
	BatchesSkipped int
}

// Detected reports whether fault fi was detected, with details.
func (r *Result) Detected(fi int) (core.Detection, bool) {
	o := &r.PerFault[fi]
	return o.Detection, o.Detected
}

// Coverage returns the detected fraction of the fault universe.
func (r *Result) Coverage() float64 { return r.Run.Coverage() }

// Run executes a fault campaign over nw: record (or reuse) the good
// trajectory, shard faults into batches, replay the batches across the
// shard pool, and merge.
//
// Cancelling ctx stops the campaign cooperatively: no new batches start,
// in-flight batches abort between settings (well under a second on any
// realistic workload), and Run returns ctx's error. Batches checkpointed
// before the cancellation remain resumable. A nil ctx never cancels.
func Run(ctx context.Context, nw *netlist.Network, faults []fault.Fault, seq *switchsim.Sequence, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	rec := opts.Recording
	if rec == nil {
		rec = core.Record(nw, seq, opts.Sim)
	}
	if err := rec.Validate(nw, seq.NumSettings()); err != nil {
		return nil, err
	}

	nf := len(faults)
	shards := opts.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	batchSize := opts.BatchSize
	if batchSize <= 0 {
		batchSize = (nf + shards - 1) / shards
		if batchSize == 0 {
			batchSize = 1
		}
	}
	nBatches := (nf + batchSize - 1) / batchSize
	if shards > nBatches && nBatches > 0 {
		shards = nBatches
	}
	simOpts := opts.Sim
	if simOpts.Workers <= 0 && shards > 1 {
		simOpts.Workers = 1
	}

	// Resume: completed batches come from the checkpoint, not from
	// simulation.
	results := make([]*core.BatchResult, nBatches)
	partials := make(map[int]*core.BatchSnapshot)
	ck := &Checkpoint{
		Version:        checkpointVersion,
		Sequence:       seq.Name,
		NumSettings:    seq.NumSettings(),
		NumFaults:      nf,
		NumNodes:       nw.NumNodes(),
		NumTransistors: nw.NumTransistors(),
		BatchSize:      batchSize,
		NumBatches:     nBatches,
		FaultsHash:     hashFaults(faults),
		SimHash:        hashSimOptions(simOpts),
		Done:           map[int]*core.BatchResult{},
	}
	resumed := 0
	if opts.CheckpointPath != "" {
		prev, err := loadCheckpointFile(opts.CheckpointPath)
		if err != nil {
			return nil, err
		}
		if prev != nil {
			if err := prev.matches(ck); err != nil {
				return nil, fmt.Errorf("campaign: checkpoint %s: %w", opts.CheckpointPath, err)
			}
			// Restore completed batches in ascending batch order so the
			// whole resume path — counters included — is deterministic.
			done := make([]int, 0, len(prev.Done))
			for i := range prev.Done {
				done = append(done, i)
			}
			sort.Ints(done)
			for _, i := range done {
				if br := prev.Done[i]; i >= 0 && i < nBatches && br != nil {
					results[i] = br
					ck.Done[i] = br
					resumed++
				}
			}
			// Mid-batch snapshots of interrupted batches: usable only when
			// the trim mode still matches the capture (class state present
			// iff trimming) and the recording carries a state frame at the
			// snapshot's step. Unusable partials are dropped — the batch
			// re-runs from the start, same result.
			partIdx := make([]int, 0, len(prev.Partial))
			for i := range prev.Partial {
				partIdx = append(partIdx, i)
			}
			sort.Ints(partIdx)
			for _, i := range partIdx {
				snap := prev.Partial[i]
				if i < 0 || i >= nBatches || snap == nil || results[i] != nil {
					continue
				}
				if (len(snap.Sigs) > 0) != simOpts.Trim {
					continue
				}
				if rec.SnapshotAt(snap.Step) == nil {
					continue
				}
				partials[i] = snap
			}
		}
	}

	var (
		detected atomic.Int64
		stop     atomic.Bool
		cursor   atomic.Int64
		ran      atomic.Int64
		ckMu     sync.Mutex
		errMu    sync.Mutex
		firstErr error

		// Progress-only state: observed detections and completed batches,
		// campaign-wide. Kept separate from the early-stop counter (which
		// only advances at batch completion) so streaming coverage is as
		// fresh as the per-setting events. progressMu serializes counter
		// update and event delivery together — that atomicity is what
		// makes the Detected field monotonic across delivered events.
		progressMu  sync.Mutex
		obsDetected int
		batchesDone int
	)
	emitProgress := func(ev ProgressEvent, newlyDetected, batchDone bool) {
		progressMu.Lock()
		defer progressMu.Unlock()
		if newlyDetected {
			obsDetected += len(ev.NewlyDetected)
		}
		if batchDone {
			batchesDone++
		}
		ev.Detected = obsDetected
		ev.BatchesDone = batchesDone
		opts.Progress(ev)
	}
	var target int64
	if opts.CoverageTarget > 0 && nf > 0 {
		target = int64(math.Ceil(opts.CoverageTarget * float64(nf)))
	}
	countDetected := func(br *core.BatchResult) int64 {
		return int64(br.DetectedCount())
	}
	for _, br := range results {
		if br != nil {
			n := countDetected(br)
			detected.Add(n)
			obsDetected += int(n) // pre-pool: no lock needed yet
			batchesDone++
		}
	}
	if target > 0 && detected.Load() >= target {
		stop.Store(true)
	}

	tab := opts.Tables
	if tab == nil {
		tab = switchsim.NewTables(nw)
	} else if tab.Net != nw {
		return nil, fmt.Errorf("campaign: Options.Tables was built over a different network")
	}
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if stop.Load() || ctx.Err() != nil {
					return
				}
				i := int(cursor.Add(1)) - 1
				if i >= nBatches {
					return
				}
				if results[i] != nil {
					continue // resumed from checkpoint
				}
				lo := i * batchSize
				hi := min(lo+batchSize, nf)
				batchOpts := simOpts
				if opts.Progress != nil {
					batchOpts.OnObserve = func(bp core.BatchProgress) {
						ev := ProgressEvent{
							Batch:           i,
							Pattern:         bp.Pattern,
							Setting:         bp.Setting,
							ActiveCircuits:  bp.ActiveCircuits,
							LiveFaults:      bp.LiveFaults,
							LanesReplayed:   bp.LanesReplayed,
							ScalarFallbacks: bp.ScalarFallbacks,
							AdoptedVics:     bp.AdoptedVics,
							SolvedVics:      bp.SolvedVics,
							FaultsRetired:   bp.FaultsRetired,
							LaneCapacity:    bp.LaneCapacity,
							NumFaults:       nf,
							Batches:         nBatches,
						}
						if len(bp.Detected) > 0 {
							ev.NewlyDetected = make([]int, len(bp.Detected))
							for j, fi := range bp.Detected {
								ev.NewlyDetected[j] = lo + fi
							}
						}
						emitProgress(ev, true, false)
					}
				}
				if opts.CheckpointPath != "" && batchOpts.SnapshotEvery > 0 {
					// Persist mid-batch snapshots so an interrupted batch
					// resumes from its last frame instead of from setting
					// zero. Best-effort: a failed partial save is ignored
					// (the completion save below surfaces persistent I/O
					// trouble), so it can never fail an otherwise healthy
					// campaign.
					batchOpts.OnSnapshot = func(s *core.BatchSnapshot) {
						ckMu.Lock()
						if ck.Partial == nil {
							ck.Partial = map[int]*core.BatchSnapshot{}
						}
						ck.Partial[i] = s
						ck.saveFile(opts.CheckpointPath)
						ckMu.Unlock()
					}
				}
				var br *core.BatchResult
				var err error
				if snap := partials[i]; snap != nil {
					br, err = core.RunBatchFrom(ctx, tab, faults[lo:hi], rec, seq, snap, batchOpts)
				} else {
					br, err = core.RunBatch(ctx, tab, faults[lo:hi], rec, seq, batchOpts)
				}
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					stop.Store(true)
					return
				}
				results[i] = br
				ran.Add(1)
				if opts.Progress != nil {
					ev := ProgressEvent{
						Batch:     i,
						NumFaults: nf,
						Batches:   nBatches,
						BatchDone: true,
					}
					if n := len(br.PerPattern); n > 0 {
						ev.LiveFaults = br.PerPattern[n-1].LiveAfter
					}
					emitProgress(ev, false, true)
				}
				if target > 0 && detected.Add(countDetected(br)) >= target {
					stop.Store(true)
				}
				if opts.CheckpointPath != "" {
					ckMu.Lock()
					ck.Done[i] = br
					delete(ck.Partial, i)
					err := ck.saveFile(opts.CheckpointPath)
					ckMu.Unlock()
					if err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
						stop.Store(true)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if firstErr == nil && ctx.Err() != nil && int(ran.Load())+resumed < nBatches {
		// Cancelled with batches still outstanding — unless the coverage
		// target was reached first, in which case the early-stopped result
		// stands.
		if target == 0 || detected.Load() < target {
			firstErr = fmt.Errorf("campaign: cancelled: %w", ctx.Err())
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}

	res := Merge(rec, seq, nf, batchSize, results)
	res.Batches = nBatches
	res.BatchesRun = int(ran.Load())
	res.BatchesResumed = resumed
	res.BatchesSkipped = nBatches - res.BatchesRun - resumed
	return res, nil
}

// Merge combines per-batch results into a monolithic-equivalent
// core.Result plus per-fault outcomes. Batches are merged at setting
// granularity: per-setting active-circuit and live counts sum across
// batches (each fault lives in exactly one), so pattern aggregates like
// MaxActive match a monolithic run exactly. Good-circuit work and time
// come from the recording, counted once.
//
// results is indexed by batch: batch i covers universe faults
// [i*batchSize, min((i+1)*batchSize, nf)). A nil entry marks a batch that
// was never simulated; its faults merge as Skipped. Merge is the single
// determinism point shared by Run and by distributed coordinators
// (internal/distrib): any scheduler that produces the same per-batch
// results — on one machine or many — merges to the same Result. The
// caller owns the Batches/BatchesRun/BatchesResumed/BatchesSkipped
// accounting fields.
func Merge(rec *switchsim.Recording, seq *switchsim.Sequence, nf, batchSize int, results []*core.BatchResult) *Result {
	nSettings := seq.NumSettings()
	res := &Result{Recording: rec}
	res.Run = core.Result{Sequence: seq.Name, NumFaults: nf}
	res.PerFault = make([]FaultOutcome, nf)

	// Per-setting fault-side sums across batches. Skipped batches
	// contribute their width to the live counts (their circuits were
	// never simulated, hence never dropped).
	active := make([]int, nSettings)
	faultWork := make([]int64, nSettings)
	faultNS := make([]int64, nSettings)
	for bi, br := range results {
		lo := bi * batchSize
		width := min(batchSize, nf-lo)
		if br == nil {
			for fi := lo; fi < lo+width; fi++ {
				res.PerFault[fi].Skipped = true
			}
			continue
		}
		for si := range br.PerSetting {
			if si >= nSettings {
				break
			}
			active[si] += br.PerSetting[si].ActiveCircuits
			faultWork[si] += br.PerSetting[si].FaultWork
			faultNS[si] += br.PerSetting[si].FaultNS
		}
		for j := 0; j < width && j < len(br.Detected); j++ {
			o := &res.PerFault[lo+j]
			o.Detected = br.Detected[j]
			o.Detection = br.Detections[j]
			o.Oscillated = br.Oscillated[j]
			if j < len(br.Records) {
				o.Records = br.Records[j]
			}
		}
	}

	// Assemble per-pattern statistics from the sequence structure, the
	// recording's good-side figures, and the per-setting/-pattern sums.
	si := 0
	step := 1 // rec.Steps[0] is the initialization
	for pi := range seq.Patterns {
		p := &seq.Patterns[pi]
		ps := core.PatternStats{Pattern: pi, Name: p.Name, Settings: len(p.Settings)}
		for range p.Settings {
			if step < len(rec.Steps) {
				ps.GoodWork += rec.Steps[step].GoodWork
				ps.GoodNS += rec.Steps[step].GoodNS
			}
			if si < nSettings {
				ps.FaultWork += faultWork[si]
				ps.FaultNS += faultNS[si]
				if active[si] > ps.MaxActive {
					ps.MaxActive = active[si]
				}
			}
			si++
			step++
		}
		for bi, br := range results {
			lo := bi * batchSize
			width := min(batchSize, nf-lo)
			if br == nil {
				ps.LiveBefore += width
				ps.LiveAfter += width
				continue
			}
			if pi < len(br.PerPattern) {
				ps.LiveBefore += br.PerPattern[pi].LiveBefore
				ps.LiveAfter += br.PerPattern[pi].LiveAfter
				ps.Detected += br.PerPattern[pi].Detected
			}
		}
		res.Run.PerPattern = append(res.Run.PerPattern, ps)
		res.Run.GoodWork += ps.GoodWork
		res.Run.FaultWork += ps.FaultWork
		res.Run.GoodNS += ps.GoodNS
		res.Run.FaultNS += ps.FaultNS
	}

	for fi := range res.PerFault {
		o := &res.PerFault[fi]
		if o.Detected {
			res.Run.Detected++
			if o.Detection.Hard {
				res.Run.HardDetected++
			}
		}
		if o.Oscillated {
			res.Run.Oscillated++
		}
	}
	return res
}

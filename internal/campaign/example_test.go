package campaign_test

import (
	"context"
	"fmt"

	"fmossim/internal/campaign"
	"fmossim/internal/core"
	"fmossim/internal/fault"
	"fmossim/internal/gates"
	"fmossim/internal/logic"
	"fmossim/internal/netlist"
	"fmossim/internal/switchsim"
)

// ExampleRun shards a tiny stuck-at universe over an nMOS inverter chain
// into single-fault batches and merges them — the same result a
// monolithic core.Simulator would produce.
func ExampleRun() {
	b := netlist.NewBuilder(logic.Scale{Sizes: 2, Strengths: 2})
	in := b.Input("in", logic.Lo)
	mid, out := b.Node("mid"), b.Node("out")
	gates.NInv(b, in, mid, "inv1")
	gates.NInv(b, mid, out, "inv2")
	nw := b.Finalize()

	seq := &switchsim.Sequence{Name: "toggle", Patterns: []switchsim.Pattern{{
		Name: "p0",
		Settings: []switchsim.Setting{
			switchsim.MustVector(nw, map[string]logic.Value{"in": logic.Lo}),
			switchsim.MustVector(nw, map[string]logic.Value{"in": logic.Hi}),
		},
	}}}

	faults := fault.NodeStuckFaults(nw, fault.Options{})
	res, err := campaign.Run(context.Background(), nw, faults, seq, campaign.Options{
		Sim:       core.Options{Observe: []netlist.NodeID{nw.MustLookup("out")}},
		BatchSize: 1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d faults in %d batches: coverage %.0f%%\n",
		len(faults), res.Batches, 100*res.Coverage())
	// Output:
	// 4 faults in 4 batches: coverage 100%
}

package march_test

import (
	"testing"

	"fmossim/internal/core"
	"fmossim/internal/fault"
	"fmossim/internal/march"
	"fmossim/internal/netlist"
	"fmossim/internal/ram"
	"fmossim/internal/switchsim"
)

func TestSequenceLengthsMatchPaper(t *testing.T) {
	m64 := ram.RAM64()
	s1 := march.Sequence1(m64)
	if got := len(s1.Patterns); got != 407 {
		t.Errorf("RAM64 sequence 1 has %d patterns, paper says 407", got)
	}
	s2 := march.Sequence2(m64)
	if got := len(s2.Patterns); got != 327 {
		t.Errorf("RAM64 sequence 2 has %d patterns, paper says 327", got)
	}
	if got := s1.NumSettings(); got != 407*6 {
		t.Errorf("sequence 1 has %d settings, want %d", got, 407*6)
	}

	m256 := ram.RAM256()
	s1b := march.Sequence1(m256)
	if got := len(s1b.Patterns); got != 1447 {
		t.Errorf("RAM256 sequence 1 has %d patterns, paper says 1447", got)
	}
}

func TestSectionBudgets(t *testing.T) {
	m := ram.RAM64()
	if got := len(march.ControlTests(m)); got != 7 {
		t.Errorf("control tests: %d patterns, want 7", got)
	}
	if got := len(march.RowMarch(m)); got != 40 {
		t.Errorf("row march: %d patterns, want 40", got)
	}
	if got := len(march.ColMarch(m)); got != 40 {
		t.Errorf("col march: %d patterns, want 40", got)
	}
	if got := len(march.ArrayMarch(m)); got != 320 {
		t.Errorf("array march: %d patterns, want 320", got)
	}
}

// TestGoodCircuitRunsSequence1 smoke-tests the whole sequence on the good
// circuit: it must complete without oscillation reports and leave every
// cell at its final marched value (the last full pass writes... the final
// state after ⇓(r1) keeps all cells at 1).
func TestGoodCircuitRunsSequence1(t *testing.T) {
	m := ram.RAM64()
	sim := switchsim.NewSimulator(m.Net)
	sim.Init()
	seq := march.Sequence1(m)
	sim.RunSequence(seq)
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			if got := sim.Circuit.Value(m.Store[r][c]); got.String() != "0" {
				t.Fatalf("cell (%d,%d) after sequence 1 = %s, want 0", r, c, got)
			}
		}
	}
}

// TestMarchDetectsPlantedFaults checks end-to-end fault detection: a
// sample of planted stuck-at faults in distinct functional regions must
// all be caught by sequence 1.
func TestMarchDetectsPlantedFaults(t *testing.T) {
	m := ram.RAM64()
	nw := m.Net
	faults := []fault.Fault{
		{Kind: fault.NodeStuck0, Node: m.Store[4][2]},          // cell bit
		{Kind: fault.NodeStuck1, Node: m.Store[0][7]},          // cell bit
		{Kind: fault.NodeStuck0, Node: nw.MustLookup("rrow3")}, // row select
		{Kind: fault.NodeStuck1, Node: nw.MustLookup("wrow5")}, // write row stuck on
		{Kind: fault.NodeStuck0, Node: nw.MustLookup("rbit1")}, // bit line
		{Kind: fault.NodeStuck1, Node: nw.MustLookup("cdec6")}, // column decode
		{Kind: fault.NodeStuck0, Node: nw.MustLookup("sense")}, // output latch
		{Kind: fault.NodeStuck1, Node: nw.MustLookup("wen")},   // write enable stuck
		{Kind: fault.NodeStuck0, Node: nw.MustLookup("at0")},   // address buffer
		{Kind: fault.Bridge, Trans: m.BitlineShorts[0]},        // adjacent bit lines
	}
	sim, err := core.New(nw, faults, core.Options{Observe: []netlist.NodeID{m.DataOut}})
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run(march.Sequence1(m))
	for i := range faults {
		if _, ok := sim.Detected(i); !ok {
			t.Errorf("fault %s not detected by sequence 1", faults[i].Describe(nw))
		}
	}
	if res.Detected != len(faults) {
		t.Errorf("detected %d of %d faults", res.Detected, len(faults))
	}
}

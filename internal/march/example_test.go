package march_test

import (
	"fmt"

	"fmossim/internal/march"
	"fmossim/internal/ram"
)

// Example reproduces the paper's pattern budget: sequence 1 on the 8×8
// RAM is 407 patterns (7 control + 40 row march + 40 column march + 320
// array march), each one clock cycle of six input settings.
func Example() {
	m := ram.RAM64()
	seq1 := march.Sequence1(m)
	seq2 := march.Sequence2(m)
	fmt.Printf("sequence 1: %d patterns, %d settings\n", len(seq1.Patterns), seq1.NumSettings())
	fmt.Printf("sequence 2: %d patterns\n", len(seq2.Patterns))
	// Output:
	// sequence 1: 407 patterns, 2442 settings
	// sequence 2: 327 patterns
}

// Package march generates the paper's test sequences for the RAM
// circuits: special tests of the control and peripheral logic followed by
// marching tests (Winegarden & Pannell style) of the row-select logic,
// the column-select and bit-line logic, and the memory array.
//
// The pattern budget reproduces the paper exactly:
//
//	RAM64, sequence 1: 7 control + 40 row march + 40 column march +
//	                   320 array march = 407 patterns   (paper: 407)
//	RAM64, sequence 2: 7 control + 320 array march = 327 (paper: 327)
//	RAM256, sequence 1: 7 + 80 + 80 + 1280 = 1447        (paper: 1447)
//
// where each pattern is one clock cycle of six input settings.
package march

package march_test

import (
	"testing"
	"time"

	"fmossim/internal/core"
	"fmossim/internal/fault"
	"fmossim/internal/march"
	"fmossim/internal/netlist"
	"fmossim/internal/ram"
)

func TestTimingFig1Scale(t *testing.T) {
	m := ram.RAM64()
	faults := fault.NodeStuckFaults(m.Net, fault.Options{})
	t.Logf("faults: %d", len(faults))
	t0 := time.Now()
	sim, err := core.New(m.Net, faults, core.Options{Observe: []netlist.NodeID{m.DataOut}})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("init: %v", time.Since(t0))
	res := sim.Run(march.Sequence1(m))
	t.Logf("run: %v detected=%d/%d live=%d osc=%d", time.Since(t0), res.Detected, res.NumFaults, sim.LiveFaults(), res.Oscillated)
	t.Logf("good work=%d fault work=%d ratio=%.2f", res.GoodWork, res.FaultWork, float64(res.TotalWork())/float64(res.GoodWork))
}

// The paper's control tests and marching-test generators. Package
// documentation lives in doc.go.
package march

import (
	"fmossim/internal/logic"
	"fmossim/internal/ram"
	"fmossim/internal/switchsim"
)

// ControlTests exercises the control and peripheral logic: the write/read
// path through the data buffers and output latch, write-enable gating, and
// the address buffers' extreme codes — 7 patterns.
func ControlTests(m *ram.RAM) []switchsim.Pattern {
	last := m.Conf.Bits() - 1
	return []switchsim.Pattern{
		m.Write(0, logic.Lo),    // write path, din=0
		m.Read(0),               // read path, output latch captures 0
		m.Write(0, logic.Hi),    // write path, din=1
		m.Read(0),               // output latch captures 1
		m.Write(last, logic.Lo), // all-ones address code
		m.Read(last),
		m.Read(0), // address turnaround back to all-zeros
	}
}

// RowMarch exercises the row-select logic: for each row, write and read
// both values in column 0, then re-read the previous row's cell to catch
// multi-select faults — 5 patterns per row.
func RowMarch(m *ram.RAM) []switchsim.Pattern {
	var ps []switchsim.Pattern
	rows := m.Conf.Rows
	for r := 0; r < rows; r++ {
		prev := (r + rows - 1) % rows
		ps = append(ps,
			m.Write(m.Address(r, 0), logic.Hi),
			m.Read(m.Address(r, 0)),
			m.Write(m.Address(r, 0), logic.Lo),
			m.Read(m.Address(r, 0)),
			m.Read(m.Address(prev, 0)),
		)
	}
	return ps
}

// ColMarch exercises the column-select and bit-line logic analogously —
// 5 patterns per column, all in row 0.
func ColMarch(m *ram.RAM) []switchsim.Pattern {
	var ps []switchsim.Pattern
	cols := m.Conf.Cols
	for c := 0; c < cols; c++ {
		prev := (c + cols - 1) % cols
		ps = append(ps,
			m.Write(m.Address(0, c), logic.Hi),
			m.Read(m.Address(0, c)),
			m.Write(m.Address(0, c), logic.Lo),
			m.Read(m.Address(0, c)),
			m.Read(m.Address(0, prev)),
		)
	}
	return ps
}

// ArrayMarch is the marching test of the memory array (MATS+ structure,
// Winegarden & Pannell style), 5 patterns per cell:
//
//	⇑(w0); ⇑(r0,w1); ⇑(r1,w0)
//
// The read-then-write elements sensitize address-decoder aliasing in both
// directions: an earlier aliased write leaves the wrong value for the
// later read, whichever of the aliased pair is visited first.
func ArrayMarch(m *ram.RAM) []switchsim.Pattern {
	n := m.Conf.Bits()
	var ps []switchsim.Pattern
	for a := 0; a < n; a++ {
		ps = append(ps, m.Write(a, logic.Lo))
	}
	for a := 0; a < n; a++ {
		ps = append(ps, m.Read(a), m.Write(a, logic.Hi))
	}
	for a := 0; a < n; a++ {
		ps = append(ps, m.Read(a), m.Write(a, logic.Lo))
	}
	return ps
}

// Sequence1 is the paper's first test sequence: control tests, row march,
// column march, array march.
func Sequence1(m *ram.RAM) *switchsim.Sequence {
	seq := &switchsim.Sequence{Name: "sequence1"}
	seq.Patterns = append(seq.Patterns, ControlTests(m)...)
	seq.Patterns = append(seq.Patterns, RowMarch(m)...)
	seq.Patterns = append(seq.Patterns, ColMarch(m)...)
	seq.Patterns = append(seq.Patterns, ArrayMarch(m)...)
	return seq
}

// Sequence2 is the paper's second test sequence: the row and column
// marches omitted, so that most faults — including those in the address
// decoding and bus control logic — are detected only slowly as the array
// march proceeds.
func Sequence2(m *ram.RAM) *switchsim.Sequence {
	seq := &switchsim.Sequence{Name: "sequence2"}
	seq.Patterns = append(seq.Patterns, ControlTests(m)...)
	seq.Patterns = append(seq.Patterns, ArrayMarch(m)...)
	return seq
}

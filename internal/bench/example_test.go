package bench_test

import (
	"fmt"

	"fmossim/internal/bench"
	"fmossim/internal/ram"
)

// ExamplePaperFaults enumerates the paper's fault universe for the 8×8
// RAM: every storage-node stuck-at fault plus the adjacent-bit-line
// shorts.
func ExamplePaperFaults() {
	m := ram.RAM64()
	faults := bench.PaperFaults(m)
	fmt.Printf("RAM64 paper universe: %d faults\n", len(faults))
	fmt.Println("first:", faults[0].Describe(m.Net))
	// Output:
	// RAM64 paper universe: 456 faults
	// first: ab0 sa0
}

package bench

import (
	"fmt"
	"io"
	"math/rand"

	"fmossim/internal/core"
	"fmossim/internal/fault"
	"fmossim/internal/march"
	"fmossim/internal/netlist"
	"fmossim/internal/ram"
	"fmossim/internal/stats"
	"fmossim/internal/switchsim"
)

// FaultClassRow is one fault class's cost/detection profile: the paper's
// §5 validation that stuck-open/stuck-closed transistor faults "did not
// differ significantly" from node faults.
type FaultClassRow struct {
	Class          string
	Faults         int
	Detected       int
	WorkPerFault   float64
	MedianDetectAt float64 // median detecting pattern among detected faults
}

// FaultClasses compares the performance characteristics of the fault
// classes on a RAM instance under sequence 1, using an equal-size random
// sample from each class.
func FaultClasses(m *ram.RAM, perClass int, seed int64) ([]FaultClassRow, error) {
	seq := march.Sequence1(m)
	rng := rand.New(rand.NewSource(seed))
	classes := []struct {
		name string
		fs   []fault.Fault
	}{
		{"node stuck-at", fault.NodeStuckFaults(m.Net, fault.Options{})},
		{"transistor stuck", fault.TransistorStuckFaults(m.Net, fault.Options{})},
		{"bit-line shorts", fault.BridgeFaults(m.BitlineShorts)},
	}
	var rows []FaultClassRow
	for _, cl := range classes {
		fs := fault.Sample(cl.fs, perClass, rng)
		sim, err := core.New(m.Net, fs, core.Options{Observe: []netlist.NodeID{m.DataOut}})
		if err != nil {
			return nil, err
		}
		res := sim.Run(seq)
		var detAt []float64
		for i := range fs {
			if d, ok := sim.Detected(i); ok {
				detAt = append(detAt, float64(d.Pattern))
			}
		}
		rows = append(rows, FaultClassRow{
			Class:          cl.name,
			Faults:         len(fs),
			Detected:       res.Detected,
			WorkPerFault:   stats.Ratio(float64(res.TotalWork()), float64(len(fs))),
			MedianDetectAt: stats.Median(detAt),
		})
	}
	return rows, nil
}

// WriteFaultClasses renders the class comparison.
func WriteFaultClasses(w io.Writer, rows []FaultClassRow) {
	fmt.Fprintf(w, "  %-18s %7s %9s %14s %14s\n", "class", "faults", "detected", "work/fault", "median det-at")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-18s %7d %9d %14.0f %14.0f\n",
			r.Class, r.Faults, r.Detected, r.WorkPerFault, r.MedianDetectAt)
	}
}

// AblationResult reports a design-choice ablation as a work ratio.
type AblationResult struct {
	Name           string
	BaselineWork   int64 // the paper's design
	AblatedWork    int64 // the design choice disabled
	PenaltyFactor  float64
	BaselineDetect int
	AblatedDetect  int
}

// AblationDropping measures fault dropping: the same run with NeverDrop.
// Without dropping, every detected circuit keeps being simulated, so the
// tail-end advantage the paper attributes to dropping disappears.
func AblationDropping(m *ram.RAM, faults []fault.Fault, seq *switchsim.Sequence) (*AblationResult, error) {
	base, err := core.New(m.Net, faults, core.Options{Observe: []netlist.NodeID{m.DataOut}})
	if err != nil {
		return nil, err
	}
	bres := base.Run(seq)
	abl, err := core.New(m.Net, faults, core.Options{
		Observe: []netlist.NodeID{m.DataOut}, Drop: core.NeverDrop,
	})
	if err != nil {
		return nil, err
	}
	ares := abl.Run(seq)
	return &AblationResult{
		Name:           "fault dropping",
		BaselineWork:   bres.TotalWork(),
		AblatedWork:    ares.TotalWork(),
		PenaltyFactor:  stats.Ratio(float64(ares.TotalWork()), float64(bres.TotalWork())),
		BaselineDetect: bres.Detected,
		AblatedDetect:  ares.Detected,
	}, nil
}

// AblationDynamicLocality measures the dynamic-locality optimization: the
// same run with vicinities extended to full DC-connected components, as
// in pre-MOSSIM-II simulators ([9] in the paper). On the RAM, whose bit
// lines join most of the circuit into a few DC components, static
// partitioning makes every perturbation solve a huge vicinity.
func AblationDynamicLocality(m *ram.RAM, faults []fault.Fault, seq *switchsim.Sequence) (*AblationResult, error) {
	base, err := core.New(m.Net, faults, core.Options{Observe: []netlist.NodeID{m.DataOut}})
	if err != nil {
		return nil, err
	}
	bres := base.Run(seq)
	abl, err := core.New(m.Net, faults, core.Options{
		Observe: []netlist.NodeID{m.DataOut}, StaticLocality: true,
	})
	if err != nil {
		return nil, err
	}
	ares := abl.Run(seq)
	return &AblationResult{
		Name:           "dynamic locality",
		BaselineWork:   bres.TotalWork(),
		AblatedWork:    ares.TotalWork(),
		PenaltyFactor:  stats.Ratio(float64(ares.TotalWork()), float64(bres.TotalWork())),
		BaselineDetect: bres.Detected,
		AblatedDetect:  ares.Detected,
	}, nil
}

// AblationTrajectoryAdoption measures the trajectory-guided replay: with
// FullReplay, every activated circuit re-settles the whole input setting
// instead of adopting the good circuit's recorded changes in identical
// regions. Detection results are identical by construction; only the cost
// changes.
func AblationTrajectoryAdoption(m *ram.RAM, faults []fault.Fault, seq *switchsim.Sequence) (*AblationResult, error) {
	base, err := core.New(m.Net, faults, core.Options{Observe: []netlist.NodeID{m.DataOut}})
	if err != nil {
		return nil, err
	}
	bres := base.Run(seq)
	abl, err := core.New(m.Net, faults, core.Options{
		Observe: []netlist.NodeID{m.DataOut}, FullReplay: true,
	})
	if err != nil {
		return nil, err
	}
	ares := abl.Run(seq)
	return &AblationResult{
		Name:           "trajectory adoption",
		BaselineWork:   bres.TotalWork(),
		AblatedWork:    ares.TotalWork(),
		PenaltyFactor:  stats.Ratio(float64(ares.TotalWork()), float64(bres.TotalWork())),
		BaselineDetect: bres.Detected,
		AblatedDetect:  ares.Detected,
	}, nil
}

// Summarize renders an ablation result.
func (r *AblationResult) Summarize(w io.Writer) {
	fmt.Fprintf(w, "  %-20s baseline %12d ablated %12d penalty ×%.2f (detected %d vs %d)\n",
		r.Name, r.BaselineWork, r.AblatedWork, r.PenaltyFactor, r.BaselineDetect, r.AblatedDetect)
}

package bench

import (
	"fmt"
	"io"

	"fmossim/internal/core"
	"fmossim/internal/march"
	"fmossim/internal/netlist"
	"fmossim/internal/ram"
	"fmossim/internal/serial"
	"fmossim/internal/stats"
)

// ScalingPoint is one circuit size's totals under test sequence 1 with
// the full stuck-at universe.
type ScalingPoint struct {
	Circuit     string
	Transistors int
	Nodes       int
	Patterns    int
	Faults      int
	Detected    int

	GoodWork       int64 // good circuit alone
	ConcurrentWork int64
	SerialEstWork  int64
	ConcurrentNS   int64
}

// ScalingResult compares RAM64 and RAM256, the paper's size-scaling
// experiment: good-only and concurrent times scale by ≈9×, serial by
// ≈37×, demonstrating that concurrent fault simulation grows as circuit
// size × patterns (with faults ∝ size), while serial grows as size ×
// patterns × faults.
type ScalingResult struct {
	Small, Large ScalingPoint

	GoodFactor   float64 // paper: ×9
	ConcFactor   float64 // paper: ×9
	SerialFactor float64 // paper: ×37
}

// Scaling runs the size-scaling experiment. With quick=true, 4×4 and 8×8
// instances substitute for the paper's 8×8 and 16×16 (used by unit tests
// to keep runtimes small; the scaling exponents are size-invariant).
func Scaling(quick bool) (*ScalingResult, error) {
	small, large := ram.RAM64(), ram.RAM256()
	if quick {
		small = ram.New(ram.Config{Rows: 4, Cols: 4})
		large = ram.New(ram.Config{Rows: 8, Cols: 8})
	}
	sp, err := scalingPoint(small)
	if err != nil {
		return nil, err
	}
	lp, err := scalingPoint(large)
	if err != nil {
		return nil, err
	}
	return &ScalingResult{
		Small:        *sp,
		Large:        *lp,
		GoodFactor:   stats.Ratio(float64(lp.GoodWork), float64(sp.GoodWork)),
		ConcFactor:   stats.Ratio(float64(lp.ConcurrentWork), float64(sp.ConcurrentWork)),
		SerialFactor: stats.Ratio(float64(lp.SerialEstWork), float64(sp.SerialEstWork)),
	}, nil
}

func scalingPoint(m *ram.RAM) (*ScalingPoint, error) {
	seq := march.Sequence1(m)
	faults := NodeStuckOnly(m)

	goodRes, err := serial.Run(m.Net, nil, seq, serial.Options{Observe: []netlist.NodeID{m.DataOut}})
	if err != nil {
		return nil, err
	}
	sim, err := core.New(m.Net, faults, core.Options{Observe: []netlist.NodeID{m.DataOut}})
	if err != nil {
		return nil, err
	}
	res := sim.Run(seq)

	det := make([]int, len(faults))
	for i := range faults {
		if d, ok := sim.Detected(i); ok {
			det[i] = d.Pattern
		} else {
			det[i] = -1
		}
	}
	st := m.Net.Stats()
	return &ScalingPoint{
		Circuit:        fmt.Sprintf("RAM%d", m.Conf.Bits()),
		Transistors:    st.Transistors - len(m.BitlineShorts),
		Nodes:          st.Nodes,
		Patterns:       len(seq.Patterns),
		Faults:         len(faults),
		Detected:       res.Detected,
		GoodWork:       goodRes.GoodWork,
		ConcurrentWork: res.TotalWork(),
		SerialEstWork:  serial.Estimate(det, goodRes.GoodPerPattern, len(seq.Patterns)) + goodRes.GoodWork,
		ConcurrentNS:   res.TotalNS(),
	}, nil
}

// Summarize writes the scaling table next to the paper's factors.
func (r *ScalingResult) Summarize(w io.Writer) {
	row := func(p ScalingPoint) {
		fmt.Fprintf(w, "  %-8s %6d trans %5d nodes %5d patterns %5d faults (%d detected)\n",
			p.Circuit, p.Transistors, p.Nodes, p.Patterns, p.Faults, p.Detected)
		fmt.Fprintf(w, "           good %d, concurrent %d, serial-est %d work units\n",
			p.GoodWork, p.ConcurrentWork, p.SerialEstWork)
	}
	row(r.Small)
	row(r.Large)
	fmt.Fprintf(w, "  %-28s %10s %10s\n", "scaling factor", "measured", "paper")
	fmt.Fprintf(w, "  %-28s %10.1f %10.0f\n", "good circuit alone", r.GoodFactor, 9.0)
	fmt.Fprintf(w, "  %-28s %10.1f %10.0f\n", "concurrent", r.ConcFactor, 9.0)
	fmt.Fprintf(w, "  %-28s %10.1f %10.0f\n", "serial (estimated)", r.SerialFactor, 37.0)
}

package bench_test

import (
	"bytes"
	"strings"
	"testing"

	"fmossim/internal/bench"
	"fmossim/internal/march"
	"fmossim/internal/ram"
)

// small returns a quick 4×4 instance for harness tests.
func small() *ram.RAM { return ram.New(ram.Config{Rows: 4, Cols: 4}) }

func TestRunCurveSmall(t *testing.T) {
	m := small()
	r, err := bench.RunCurve(m, bench.NodeStuckOnly(m), march.Sequence1(m), 7+5*4+5*4)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(march.Sequence1(m).Patterns) {
		t.Fatalf("rows %d != patterns", len(r.Rows))
	}
	if r.Detected == 0 || r.Detected > r.Faults {
		t.Errorf("detected %d of %d", r.Detected, r.Faults)
	}
	if r.ConcVsGood <= 1 {
		t.Errorf("concurrent/good ratio %f should exceed 1", r.ConcVsGood)
	}
	if r.SerialVsConc <= 1 {
		t.Errorf("serial/concurrent ratio %f should exceed 1 (concurrency must win)", r.SerialVsConc)
	}
	if r.HeadWorkFraction <= 0 || r.HeadWorkFraction >= 1 {
		t.Errorf("head fraction %f out of range", r.HeadWorkFraction)
	}
	// Monotone cumulative detections ending at the total.
	last := 0
	for _, row := range r.Rows {
		if row.CumDetected < last {
			t.Fatal("cumulative detections decreased")
		}
		last = row.CumDetected
	}
	if last != r.Detected {
		t.Errorf("cumulative end %d != detected %d", last, r.Detected)
	}

	var buf bytes.Buffer
	if err := bench.WriteCurveCSV(&buf, r); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(r.Rows)+1 {
		t.Errorf("CSV has %d lines, want %d", len(lines), len(r.Rows)+1)
	}
	var sum bytes.Buffer
	r.Summarize(&sum, bench.PaperFig1)
	if !strings.Contains(sum.String(), "concurrent/good ratio") {
		t.Error("summary missing shape metrics")
	}
}

func TestFig3Small(t *testing.T) {
	r, err := bench.Fig3(bench.Fig3Config{Rows: 4, Cols: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 5 {
		t.Fatalf("sweep has %d points", len(r.Rows))
	}
	if r.Rows[0].Faults != 0 {
		t.Error("sweep should start at 0 faults (good-only)")
	}
	// The paper's claims: both series linear, serial much steeper.
	if r.ConcFit.R2 < 0.9 {
		t.Errorf("concurrent series not linear: R2=%f", r.ConcFit.R2)
	}
	if r.SerialFit.R2 < 0.9 {
		t.Errorf("serial series not linear: R2=%f", r.SerialFit.R2)
	}
	if r.SerialVsConcSlope <= 1 {
		t.Errorf("serial slope should exceed concurrent: ratio %f", r.SerialVsConcSlope)
	}
	// Cost must increase with sample size.
	if r.Rows[len(r.Rows)-1].ConcPerPattern <= r.Rows[0].ConcPerPattern {
		t.Error("concurrent cost should grow with faults")
	}
	var buf bytes.Buffer
	if err := bench.WriteFig3CSV(&buf, r); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "faults,") {
		t.Error("CSV header missing")
	}
	var sum bytes.Buffer
	r.Summarize(&sum)
	if !strings.Contains(sum.String(), "slope ratio") {
		t.Error("summary missing slope ratio")
	}
}

func TestScalingQuick(t *testing.T) {
	r, err := bench.Scaling(true)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's law: good and concurrent scale together; serial scales
	// faster by roughly the fault-count ratio.
	if r.GoodFactor <= 1 || r.ConcFactor <= 1 || r.SerialFactor <= 1 {
		t.Fatalf("factors must exceed 1: %+v", r)
	}
	if r.SerialFactor <= r.ConcFactor {
		t.Errorf("serial factor %f should exceed concurrent factor %f",
			r.SerialFactor, r.ConcFactor)
	}
	var buf bytes.Buffer
	r.Summarize(&buf)
	if !strings.Contains(buf.String(), "scaling factor") {
		t.Error("summary missing")
	}
}

func TestFaultClasses(t *testing.T) {
	rows, err := bench.FaultClasses(small(), 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d classes", len(rows))
	}
	for _, r := range rows {
		if r.Faults == 0 || r.Detected == 0 {
			t.Errorf("class %s: %d faults %d detected", r.Class, r.Faults, r.Detected)
		}
	}
	var buf bytes.Buffer
	bench.WriteFaultClasses(&buf, rows)
	if !strings.Contains(buf.String(), "node stuck-at") {
		t.Error("class table missing rows")
	}
}

func TestAblations(t *testing.T) {
	m := small()
	faults := bench.NodeStuckOnly(m)[:20]
	seq := march.Sequence1(m)

	drop, err := bench.AblationDropping(m, faults, seq)
	if err != nil {
		t.Fatal(err)
	}
	if drop.PenaltyFactor <= 1 {
		t.Errorf("disabling fault dropping should cost more: ×%f", drop.PenaltyFactor)
	}
	if drop.BaselineDetect != drop.AblatedDetect {
		t.Errorf("dropping must not change coverage: %d vs %d",
			drop.BaselineDetect, drop.AblatedDetect)
	}

	loc, err := bench.AblationDynamicLocality(m, faults, seq)
	if err != nil {
		t.Fatal(err)
	}
	if loc.PenaltyFactor <= 1 {
		t.Errorf("static locality should cost more: ×%f", loc.PenaltyFactor)
	}
	if loc.BaselineDetect != loc.AblatedDetect {
		t.Errorf("locality must not change coverage: %d vs %d",
			loc.BaselineDetect, loc.AblatedDetect)
	}
	var buf bytes.Buffer
	drop.Summarize(&buf)
	loc.Summarize(&buf)
	if !strings.Contains(buf.String(), "penalty") {
		t.Error("ablation summary missing")
	}
}

func TestPaperFaultsComposition(t *testing.T) {
	m := small()
	fs := bench.PaperFaults(m)
	want := 2*m.Net.NumStorageNodes() + len(m.BitlineShorts)
	if len(fs) != want {
		t.Errorf("paper universe has %d faults, want %d", len(fs), want)
	}
}

// TestFig1Shape runs the full Figure 1 experiment and pins the shape
// claims the reproduction makes: full coverage, concurrency winning over
// serial, most work in the head, tail within an order of magnitude of the
// good circuit. (Exact values are reported in EXPERIMENTS.md.)
func TestFig1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full RAM64 run")
	}
	r, err := bench.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if r.Detected != r.Faults {
		t.Errorf("coverage %d/%d, want full", r.Detected, r.Faults)
	}
	if r.ConcVsGood < 4 || r.ConcVsGood > 30 {
		t.Errorf("concurrent/good ratio %.1f outside the paper's regime", r.ConcVsGood)
	}
	if r.SerialVsConc < 5 {
		t.Errorf("serial/concurrent ratio %.1f: concurrency should win strongly", r.SerialVsConc)
	}
	if r.HeadWorkFraction < 0.25 {
		t.Errorf("head fraction %.2f: the head should dominate", r.HeadWorkFraction)
	}
	if r.TailSlowdown > 15 {
		t.Errorf("tail slowdown %.1f: the tail should run near good-circuit speed", r.TailSlowdown)
	}
}

// TestSequenceOrderingMatchesPaper: the paper's central Figure-2 claim —
// the shorter sequence 2 costs MORE total concurrent time than sequence 1
// because severe faults stay live longer, and its serial/concurrent
// advantage is smaller.
func TestSequenceOrderingMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("two full RAM64 runs")
	}
	r1, err := bench.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := bench.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if r2.ConcurrentWork <= r1.ConcurrentWork {
		t.Errorf("sequence 2 (%d) should cost more than sequence 1 (%d) despite fewer patterns",
			r2.ConcurrentWork, r1.ConcurrentWork)
	}
	if r2.SerialVsConc >= r1.SerialVsConc {
		t.Errorf("sequence 2's concurrency advantage (%.1f) should be below sequence 1's (%.1f)",
			r2.SerialVsConc, r1.SerialVsConc)
	}
}

func TestAblationTrajectoryAdoption(t *testing.T) {
	m := small()
	faults := bench.NodeStuckOnly(m)[:20]
	r, err := bench.AblationTrajectoryAdoption(m, faults, march.Sequence1(m))
	if err != nil {
		t.Fatal(err)
	}
	if r.PenaltyFactor <= 1 {
		t.Errorf("full replay should cost more than trajectory adoption: ×%f", r.PenaltyFactor)
	}
	if r.BaselineDetect != r.AblatedDetect {
		t.Errorf("adoption must not change coverage: %d vs %d", r.BaselineDetect, r.AblatedDetect)
	}
}

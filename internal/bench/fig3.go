package bench

import (
	"fmt"
	"io"
	"math/rand"

	"fmossim/internal/core"
	"fmossim/internal/fault"
	"fmossim/internal/march"
	"fmossim/internal/netlist"
	"fmossim/internal/ram"
	"fmossim/internal/serial"
	"fmossim/internal/stats"
)

// Fig3Row is one x-position of Figure 3: a fault-sample size with the
// average per-pattern cost of concurrent and (estimated) serial
// simulation over the whole sequence.
type Fig3Row struct {
	Faults int
	// ConcPerPattern is the concurrent run's average work units per
	// pattern; SerialPerPattern the paper-style serial estimate divided
	// by the pattern count. NSPerPattern is wall-clock.
	ConcPerPattern, SerialPerPattern float64
	NSPerPattern                     float64
	Detected                         int
}

// Fig3Result is the full sweep with its linearity analysis.
type Fig3Result struct {
	Circuit  string
	Patterns int
	Universe int
	Rows     []Fig3Row

	// Least-squares fits of cost vs sample size. The paper reports both
	// relationships as linear, with the serial line ≈85× the concurrent.
	ConcFit, SerialFit stats.Fit
	SerialVsConcSlope  float64
	// Residuals of the linear fits (max |error| / max value).
	ConcResidual, SerialResidual float64
}

// Fig3Config parameterizes the sweep.
type Fig3Config struct {
	// Samples lists the fault-sample sizes; nil selects the paper-like
	// default sweep over the full universe.
	Samples []int
	// Seed drives the random fault sampling.
	Seed int64
	// Rows/Cols override the RAM size (default 16×16 = RAM256).
	Rows, Cols int
}

// Fig3 reproduces Figure 3: RAM256 simulated for different numbers of
// randomly selected faults (node stuck-at and bit-line shorts), measuring
// the average cost per pattern of concurrent simulation and the paper's
// serial estimate; both grow linearly in the number of faults.
func Fig3(cfg Fig3Config) (*Fig3Result, error) {
	rows, cols := cfg.Rows, cfg.Cols
	if rows == 0 {
		rows, cols = 16, 16
	}
	m := ram.New(ram.Config{Rows: rows, Cols: cols})
	seq := march.Sequence1(m)
	universe := PaperFaults(m)

	samples := cfg.Samples
	if samples == nil {
		n := len(universe)
		samples = []int{0, n / 8, n / 4, 3 * n / 8, n / 2, 5 * n / 8, 3 * n / 4, 7 * n / 8, n}
	}

	// Good-only reference (also the 0-fault point and the estimator's
	// per-pattern cost basis).
	goodRes, err := serial.Run(m.Net, nil, seq, serial.Options{Observe: []netlist.NodeID{m.DataOut}})
	if err != nil {
		return nil, err
	}

	r := &Fig3Result{
		Circuit:  fmt.Sprintf("RAM%d", m.Conf.Bits()),
		Patterns: len(seq.Patterns),
		Universe: len(universe),
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	nPat := float64(len(seq.Patterns))

	for _, n := range samples {
		var row Fig3Row
		row.Faults = n
		if n == 0 {
			row.ConcPerPattern = float64(goodRes.GoodWork) / nPat
			row.SerialPerPattern = float64(goodRes.GoodWork) / nPat
		} else {
			fs := fault.Sample(universe, n, rng)
			sim, err := core.New(m.Net, fs, core.Options{Observe: []netlist.NodeID{m.DataOut}})
			if err != nil {
				return nil, err
			}
			res := sim.Run(seq)
			row.Detected = res.Detected
			row.ConcPerPattern = float64(res.TotalWork()) / nPat
			row.NSPerPattern = float64(res.TotalNS()) / nPat
			det := make([]int, len(fs))
			for i := range fs {
				if d, ok := sim.Detected(i); ok {
					det[i] = d.Pattern
				} else {
					det[i] = -1
				}
			}
			est := serial.Estimate(det, goodRes.GoodPerPattern, len(seq.Patterns))
			// The estimator charges only faulty-circuit time; a serial
			// campaign also simulates the good circuit once for the
			// reference trace.
			row.SerialPerPattern = float64(est+goodRes.GoodWork) / nPat
		}
		r.Rows = append(r.Rows, row)
	}

	xs := make([]float64, len(r.Rows))
	yc := make([]float64, len(r.Rows))
	ys := make([]float64, len(r.Rows))
	for i, row := range r.Rows {
		xs[i] = float64(row.Faults)
		yc[i] = row.ConcPerPattern
		ys[i] = row.SerialPerPattern
	}
	r.ConcFit = stats.LinearFit(xs, yc)
	r.SerialFit = stats.LinearFit(xs, ys)
	r.SerialVsConcSlope = stats.Ratio(r.SerialFit.Slope, r.ConcFit.Slope)
	r.ConcResidual = stats.MaxAbsRelErr(xs, yc, r.ConcFit)
	r.SerialResidual = stats.MaxAbsRelErr(xs, ys, r.SerialFit)
	return r, nil
}

// WriteFig3CSV emits the sweep series.
func WriteFig3CSV(w io.Writer, r *Fig3Result) error {
	if _, err := fmt.Fprintln(w, "faults,conc_work_per_pattern,serial_est_work_per_pattern,ns_per_pattern,detected"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%d,%.1f,%.1f,%.1f,%d\n",
			row.Faults, row.ConcPerPattern, row.SerialPerPattern, row.NSPerPattern, row.Detected); err != nil {
			return err
		}
	}
	return nil
}

// Summarize writes the linearity analysis next to the paper's claims.
func (r *Fig3Result) Summarize(w io.Writer) {
	fmt.Fprintf(w, "%s: %d patterns, fault universe %d\n", r.Circuit, r.Patterns, r.Universe)
	fmt.Fprintf(w, "  %-34s %12s %10s\n", "metric", "measured", "paper")
	fmt.Fprintf(w, "  %-34s %12.3f %10s\n", "concurrent linear fit R²", r.ConcFit.R2, "linear")
	fmt.Fprintf(w, "  %-34s %12.3f %10s\n", "serial linear fit R²", r.SerialFit.R2, "linear")
	fmt.Fprintf(w, "  %-34s %12.1f %10.0f\n", "serial/concurrent slope ratio", r.SerialVsConcSlope, 85.0)
	fmt.Fprintf(w, "  %-34s %12.3f %10s\n", "concurrent max rel residual", r.ConcResidual, "-")
	fmt.Fprintf(w, "  %-34s %12.3f %10s\n", "serial max rel residual", r.SerialResidual, "-")
}

// Package bench is the experiment harness: it re-runs every measurement
// of the paper's evaluation section (Figures 1-3 and the scaling result)
// on the generated RAM circuits and reports both deterministic solver
// work units and wall-clock time. Absolute numbers differ from a 1985
// VAX-11/780, so the comparison is over shapes: ratios, head/tail
// structure, linearity and scaling exponents.
//
// EXPERIMENTS.md at the repository root is the user-facing guide: it
// maps each figure to its cmd/benchtab invocation, documents the
// BENCH_results.json schema this harness feeds, and records the
// implementation's own performance trajectory.
package bench

// Experiment harness entry points and the paper's fault universes.
// Package documentation lives in doc.go.
package bench

import (
	"fmt"
	"io"

	"fmossim/internal/core"
	"fmossim/internal/fault"
	"fmossim/internal/march"
	"fmossim/internal/netlist"
	"fmossim/internal/ram"
	"fmossim/internal/serial"
	"fmossim/internal/stats"
	"fmossim/internal/switchsim"
)

// PaperFaults returns the paper's fault universe for a RAM instance:
// every single storage-node stuck-at-0 and stuck-at-1 fault plus every
// adjacent-bit-line short. For RAM64 this yields a universe of the same
// order as the paper's 428-fault set; for RAM256 comparable to the
// paper's "all 1382 possible single stuck-at and single bus short
// faults".
func PaperFaults(m *ram.RAM) []fault.Fault {
	fs := fault.NodeStuckFaults(m.Net, fault.Options{})
	fs = append(fs, fault.BridgeFaults(m.BitlineShorts)...)
	return fs
}

// NodeStuckOnly returns just the storage-node stuck-at universe (the
// Figure 1/2 working set).
func NodeStuckOnly(m *ram.RAM) []fault.Fault {
	return fault.NodeStuckFaults(m.Net, fault.Options{})
}

// CurveRow is one pattern's measurements: one x-position of the paper's
// Figure 1/2 curves.
type CurveRow struct {
	Pattern int
	Name    string
	// Work is the concurrent simulator's work units spent on the
	// pattern; GoodWork the share spent on the good circuit. NS is
	// wall-clock nanoseconds.
	Work, GoodWork int64
	NS             int64
	// GoodOnlyWork is the pattern's cost in the reference good-only run.
	GoodOnlyWork int64
	// CumDetected is the cumulative number of faults detected (the
	// rising curve); Live the circuits still simulated after the
	// pattern; MaxActive the peak circuits re-simulated in one setting.
	CumDetected, Live, MaxActive int
}

// CurveResult is a full Figure 1/2 style experiment.
type CurveResult struct {
	Circuit  string
	Sequence string
	Faults   int
	Rows     []CurveRow

	// HeadPatterns is the boundary between the sequence's "head"
	// (control/row/column sections) and "tail" (array march).
	HeadPatterns int

	Detected   int
	Undetected []string

	// Totals, in work units.
	ConcurrentWork int64 // good + faulty within the concurrent run
	GoodOnlyWork   int64 // the good circuit alone over the sequence
	SerialEstWork  int64 // the paper's serial estimator

	// Wall-clock totals in nanoseconds.
	ConcurrentNS int64

	// Shape metrics (see paper §5).
	HeadWorkFraction float64 // fraction of concurrent work in the head (paper Fig.1: 71%)
	TailSlowdown     float64 // tail work per pattern vs good-only (paper: ≈3)
	ConcVsGood       float64 // concurrent/good-only (paper Fig.1: 21.9/2.7 ≈ 8.1)
	SerialVsConc     float64 // serial-estimate/concurrent (paper Fig.1: ≈18, Fig.2: ≈9)
}

// RunCurve performs a Figure 1/2 style experiment: simulate the fault set
// over the sequence concurrently, with a good-only reference run, and
// derive the shape metrics. headPatterns splits head from tail (87 for
// sequence 1 on RAM64: 7 control + 40 row + 40 column).
func RunCurve(m *ram.RAM, faults []fault.Fault, seq *switchsim.Sequence, headPatterns int) (*CurveResult, error) {
	// Good-only reference run.
	goodRes, err := serial.Run(m.Net, nil, seq, serial.Options{Observe: []netlist.NodeID{m.DataOut}})
	if err != nil {
		return nil, err
	}

	sim, err := core.New(m.Net, faults, core.Options{Observe: []netlist.NodeID{m.DataOut}})
	if err != nil {
		return nil, err
	}

	r := &CurveResult{
		Circuit:      fmt.Sprintf("RAM%d", m.Conf.Bits()),
		Sequence:     seq.Name,
		Faults:       len(faults),
		HeadPatterns: headPatterns,
		GoodOnlyWork: goodRes.GoodWork,
	}

	cum := 0
	for pi := range seq.Patterns {
		ps := sim.RunPattern(&seq.Patterns[pi])
		cum += ps.Detected
		r.Rows = append(r.Rows, CurveRow{
			Pattern:      pi,
			Name:         seq.Patterns[pi].Name,
			Work:         ps.Work(),
			GoodWork:     ps.GoodWork,
			NS:           ps.NS(),
			GoodOnlyWork: goodRes.GoodPerPattern[pi],
			CumDetected:  cum,
			Live:         ps.LiveAfter,
			MaxActive:    ps.MaxActive,
		})
		r.ConcurrentWork += ps.Work()
		r.ConcurrentNS += ps.NS()
	}
	r.Detected = cum

	detPatterns := make([]int, len(faults))
	for i := range faults {
		if d, ok := sim.Detected(i); ok {
			detPatterns[i] = d.Pattern
		} else {
			detPatterns[i] = -1
			r.Undetected = append(r.Undetected, faults[i].Describe(m.Net))
		}
	}
	r.SerialEstWork = serial.Estimate(detPatterns, goodRes.GoodPerPattern, len(seq.Patterns))

	// Shape metrics.
	var headWork int64
	var tailWork, tailGood []float64
	for _, row := range r.Rows {
		if row.Pattern < headPatterns {
			headWork += row.Work
		} else {
			tailWork = append(tailWork, float64(row.Work))
			tailGood = append(tailGood, float64(row.GoodOnlyWork))
		}
	}
	r.HeadWorkFraction = stats.Ratio(float64(headWork), float64(r.ConcurrentWork))
	r.TailSlowdown = stats.Ratio(stats.Mean(tailWork), stats.Mean(tailGood))
	r.ConcVsGood = stats.Ratio(float64(r.ConcurrentWork), float64(r.GoodOnlyWork))
	r.SerialVsConc = stats.Ratio(float64(r.SerialEstWork), float64(r.ConcurrentWork))
	return r, nil
}

// Fig1 reproduces Figure 1: RAM64 under test sequence 1 with the
// stuck-at fault universe.
func Fig1() (*CurveResult, error) {
	m := ram.RAM64()
	return RunCurve(m, NodeStuckOnly(m), march.Sequence1(m), 87)
}

// Fig2 reproduces Figure 2: the same simulation with the row and column
// marches omitted (test sequence 2), so only the 7 control patterns form
// the head.
func Fig2() (*CurveResult, error) {
	m := ram.RAM64()
	return RunCurve(m, NodeStuckOnly(m), march.Sequence2(m), 7)
}

// WriteCurveCSV emits the per-pattern series (both curves of the figure).
func WriteCurveCSV(w io.Writer, r *CurveResult) error {
	if _, err := fmt.Fprintln(w, "pattern,name,work,good_work,good_only_work,ns,cum_detected,live,max_active"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%d,%s,%d,%d,%d,%d,%d,%d,%d\n",
			row.Pattern, row.Name, row.Work, row.GoodWork, row.GoodOnlyWork,
			row.NS, row.CumDetected, row.Live, row.MaxActive); err != nil {
			return err
		}
	}
	return nil
}

// Summarize writes the figure's headline numbers next to the paper's.
func (r *CurveResult) Summarize(w io.Writer, paper CurveShape) {
	fmt.Fprintf(w, "%s / %s: %d patterns, %d faults, detected %d (%.1f%%)\n",
		r.Circuit, r.Sequence, len(r.Rows), r.Faults, r.Detected,
		100*float64(r.Detected)/float64(max(r.Faults, 1)))
	fmt.Fprintf(w, "  concurrent work %d, good-only %d, serial estimate %d\n",
		r.ConcurrentWork, r.GoodOnlyWork, r.SerialEstWork)
	fmt.Fprintf(w, "  %-28s %10s %10s\n", "shape metric", "measured", "paper")
	fmt.Fprintf(w, "  %-28s %10.2f %10.2f\n", "concurrent/good ratio", r.ConcVsGood, paper.ConcVsGood)
	fmt.Fprintf(w, "  %-28s %10.2f %10.2f\n", "serial/concurrent ratio", r.SerialVsConc, paper.SerialVsConc)
	fmt.Fprintf(w, "  %-28s %10.2f %10.2f\n", "head work fraction", r.HeadWorkFraction, paper.HeadFraction)
	fmt.Fprintf(w, "  %-28s %10.2f %10.2f\n", "tail slowdown vs good", r.TailSlowdown, paper.TailSlowdown)
	if len(r.Undetected) > 0 {
		fmt.Fprintf(w, "  undetected (%d):", len(r.Undetected))
		for _, u := range r.Undetected {
			fmt.Fprintf(w, " %s;", u)
		}
		fmt.Fprintln(w)
	}
}

// CurveShape is the paper's published shape for a figure.
type CurveShape struct {
	ConcVsGood, SerialVsConc, HeadFraction, TailSlowdown float64
}

// Paper-published shapes.
var (
	// PaperFig1: 21.9 min concurrent vs 2.7 min good (×8.1), serial 404
	// min (×18 vs concurrent), 71% of time in the first 87 patterns,
	// tail ≈3× good-only.
	PaperFig1 = CurveShape{ConcVsGood: 8.1, SerialVsConc: 18, HeadFraction: 0.71, TailSlowdown: 3}
	// PaperFig2: 49 min concurrent vs 2.7-ish good-only over the shorter
	// sequence; serial 448 min (×9). The paper gives no head fraction or
	// tail factor; the defining feature is the much smaller
	// serial/concurrent ratio and the slow decay.
	PaperFig2 = CurveShape{ConcVsGood: 18, SerialVsConc: 9, HeadFraction: 0.07, TailSlowdown: 0}
)

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package server_test

import (
	"fmt"
	"time"

	"fmossim/internal/server"
)

// Example submits an inline-netlist campaign straight to a Manager (the
// in-process form of POST /jobs) and waits for its result.
func Example() {
	mgr := server.NewManager(server.Config{MaxJobs: 1})
	defer mgr.Close()

	job, err := mgr.Submit(server.JobSpec{
		Netlist: `scale 1 1
input in 0
node mid
node out
d mid Vdd mid
n in mid Gnd
d out Vdd out
n mid out Gnd
`,
		Patterns: "in=0\nin=1\npattern p1\nin=0\nin=1\n",
		Observe:  []string{"out"},
	})
	if err != nil {
		panic(err)
	}
	for !job.Snapshot().State.Terminal() {
		time.Sleep(time.Millisecond)
	}
	res := job.Result()
	fmt.Printf("job %s: %d/%d faults detected\n", job.Snapshot().State, res.Detected, res.NumFaults)
	// Output:
	// job done: 3/4 faults detected
}

// HTTP surface: the job lifecycle endpoints, the NDJSON progress stream,
// and the recording store (see recording.go).
//
//	POST   /jobs             submit a campaign or shard job (JobSpec JSON) -> 202 + Snapshot
//	GET    /jobs             list all jobs -> []Snapshot
//	GET    /jobs/{id}        one job's Snapshot (plus result when done)
//	GET    /jobs/{id}/stream NDJSON progress until the job is terminal
//	DELETE /jobs/{id}        cancel a live job / remove a terminal one
//	PUT    /recordings/{fp}  upload an encoded good-circuit recording
//	GET    /recordings[/{fp}] stored-recording metadata
//	DELETE /recordings/{fp}  evict a recording
//	GET    /healthz          liveness probe
//
// A saturated server answers POST /jobs with 429 and a Retry-After
// header. The stream emits three line types, one JSON object per line:
// {"type":"snapshot",...} progress snapshots (coverage monotonically
// non-decreasing, coalesced to at most one per Config.StreamInterval),
// {"type":"detections",...} detection event groups (never coalesced),
// and a final {"type":"result",...} (or terminal snapshot for
// failed/cancelled jobs) before the stream closes.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"
)

// statusResponse is GET /jobs/{id}: the snapshot plus the terminal
// result when available.
type statusResponse struct {
	Snapshot
	Result *Result `json:"result,omitempty"`
}

// streamLine is one NDJSON line.
type streamLine struct {
	Type string `json:"type"`
	*Snapshot
	*DetectionGroup
	Result *Result `json:"result,omitempty"`
}

// Handler returns the HTTP handler serving the job API.
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", m.handleSubmit)
	mux.HandleFunc("GET /jobs", m.handleList)
	mux.HandleFunc("GET /jobs/{id}", m.handleGet)
	mux.HandleFunc("GET /jobs/{id}/stream", m.handleStream)
	mux.HandleFunc("DELETE /jobs/{id}", m.handleDelete)
	mux.HandleFunc("PUT /recordings/{fp}", m.handlePutRecording)
	mux.HandleFunc("GET /recordings/{fp}", m.handleGetRecording)
	mux.HandleFunc("DELETE /recordings/{fp}", m.handleDeleteRecording)
	mux.HandleFunc("GET /recordings", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.recordings.list())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

func (m *Manager) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("decoding job spec: %v", err))
		return
	}
	job, err := m.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		// Round up with a floor of 1: "Retry-After: 0" would invite an
		// immediate retry, defeating the shedding.
		secs := int(math.Ceil(m.cfg.RetryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeError(w, http.StatusTooManyRequests, err.Error())
		return
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	w.Header().Set("Location", "/jobs/"+job.ID)
	writeJSON(w, http.StatusAccepted, job.Snapshot())
}

func (m *Manager) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, m.List())
}

func (m *Manager) handleGet(w http.ResponseWriter, r *http.Request) {
	job, ok := m.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, statusResponse{Snapshot: job.Snapshot(), Result: job.Result()})
}

func (m *Manager) handleDelete(w http.ResponseWriter, r *http.Request) {
	job, ok := m.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	if job.Snapshot().State.Terminal() {
		m.Remove(job.ID)
		writeJSON(w, http.StatusOK, map[string]string{"id": job.ID, "status": "removed"})
		return
	}
	m.Cancel(job.ID) // queued: leaves the queue and turns terminal now
	writeJSON(w, http.StatusAccepted, map[string]string{"id": job.ID, "status": "cancelling"})
}

// handleStream writes NDJSON progress until the job reaches a terminal
// state or the client disconnects. Snapshot lines coalesce bursts of
// progress events (each line reflects the latest state, throttled to
// Config.StreamInterval); detection groups are replayed completely, in
// order, from the job's append-only log.
func (m *Manager) handleStream(w http.ResponseWriter, r *http.Request) {
	job, ok := m.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	enc := json.NewEncoder(w)
	cursor := 0
	var lastEvents int64 = -1
	var lastSnapshot time.Time
	for {
		snap, groups, newCursor, notify := job.observe(cursor)
		cursor = newCursor
		for i := range groups {
			enc.Encode(streamLine{Type: "detections", DetectionGroup: &groups[i]})
		}
		terminal := snap.State.Terminal()
		if snap.Events != lastEvents &&
			(terminal || len(groups) > 0 || time.Since(lastSnapshot) >= m.cfg.StreamInterval) {
			enc.Encode(streamLine{Type: "snapshot", Snapshot: &snap})
			lastEvents = snap.Events
			lastSnapshot = time.Now()
		}
		flusher.Flush()
		if terminal {
			if res := job.Result(); res != nil {
				enc.Encode(streamLine{Type: "result", Result: res})
				flusher.Flush()
			}
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		}
		// Pace the loop so event storms coalesce instead of becoming one
		// snapshot line per simulated setting — but cut the wait short as
		// soon as detections arrive or the job turns terminal: those
		// lines are never delayed.
		pace := time.NewTimer(m.cfg.StreamInterval)
	coalesce:
		for {
			det, term, next := job.pending(cursor)
			if det || term {
				pace.Stop()
				break
			}
			select {
			case <-pace.C:
				break coalesce
			case <-next:
			case <-r.Context().Done():
				pace.Stop()
				return
			}
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

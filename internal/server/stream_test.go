package server_test

import (
	"bufio"
	"encoding/json"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"

	"fmossim/internal/server"
)

// TestStreamDisconnectNoLeak: clients that open the NDJSON stream and
// vanish mid-stream must not leak handler goroutines — each handler
// observes the closed request context at its next wakeup and returns,
// while the job itself keeps running.
func TestStreamDisconnectNoLeak(t *testing.T) {
	_, ts := newTestServer(t, server.Config{MaxJobs: 1, StreamInterval: time.Millisecond})

	// A full RAM256 paper campaign with fault dropping disabled (every
	// circuit stays live for the whole sequence): still running long
	// after every disconnected stream handler should be gone, even on a
	// machine with many cores.
	snap, resp := submit(t, ts, map[string]any{
		"workload": "ram256", "sequence": "sequence1", "drop": "never"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s", resp.Status)
	}
	waitState(t, ts, snap.ID, server.StateRunning, 60*time.Second)
	before := runtime.NumGoroutine()

	const streams = 8
	var wg sync.WaitGroup
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/jobs/" + snap.ID + "/stream")
			if err != nil {
				t.Error(err)
				return
			}
			// Read one line mid-NDJSON, then hang up.
			sc := bufio.NewScanner(resp.Body)
			sc.Scan()
			resp.Body.Close()
		}()
	}
	wg.Wait()

	// Every disconnected handler (and its keep-alive connection) must
	// unwind while the job is still live.
	deadline := time.Now().Add(10 * time.Second)
	for {
		http.DefaultClient.CloseIdleConnections()
		runtime.GC()
		if now := runtime.NumGoroutine(); now <= before+2 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before streams, %d after disconnects", before, now)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st, _ := getStatus(t, ts, snap.ID); st.State != server.StateRunning {
		t.Fatalf("job should still be running, is %q", st.State)
	}

	// Cleanup: cancel and wait so the campaign is gone before Cleanup
	// closes the manager.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+snap.ID, nil)
	if dresp, err := http.DefaultClient.Do(req); err == nil {
		dresp.Body.Close()
	}
	waitState(t, ts, snap.ID, server.StateCancelled, 10*time.Second)
}

// TestDeleteRacesNaturalCompletion: DELETE arriving while a job finishes
// on its own must land in exactly one terminal state — done with a
// result, or cancelled — never a torn mix, and repeated DELETEs stay
// well-defined (cancel → remove → 404).
func TestDeleteRacesNaturalCompletion(t *testing.T) {
	_, ts := newTestServer(t, server.Config{MaxJobs: 2})
	spec := map[string]any{"netlist": invNet, "patterns": invPatterns, "observe": []string{"out"}}

	for i := 0; i < 20; i++ {
		snap, resp := submit(t, ts, spec)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %s", i, resp.Status)
		}
		// Two DELETEs race each other and the (fast) natural completion.
		var wg sync.WaitGroup
		for d := 0; d < 2; d++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+snap.ID, nil)
				if dresp, err := http.DefaultClient.Do(req); err == nil {
					dresp.Body.Close()
				}
			}()
		}
		wg.Wait()

		// Whatever won, the job is (or promptly becomes) terminal — or
		// was already removed by a DELETE that saw it terminal.
		deadline := time.Now().Add(10 * time.Second)
		for {
			resp, err := http.Get(ts.URL + "/jobs/" + snap.ID)
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode == http.StatusNotFound {
				resp.Body.Close()
				break // removed after finishing: a valid outcome
			}
			var st struct {
				server.Snapshot
				Result *server.Result `json:"result"`
			}
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if st.State == server.StateDone && st.Result == nil {
				t.Fatalf("job %s done without result", snap.ID)
			}
			if st.State == server.StateCancelled && st.Result != nil {
				t.Fatalf("job %s cancelled with result", snap.ID)
			}
			if st.State.Terminal() {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s stuck in %q", snap.ID, st.State)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
}

// TestDoubleCancel: cancelling a job twice (HTTP DELETE and direct
// Manager.Cancel, in any order) is idempotent and the stream still
// terminates with a terminal snapshot.
func TestDoubleCancel(t *testing.T) {
	mgr, ts := newTestServer(t, server.Config{MaxJobs: 1})
	snap, resp := submit(t, ts, map[string]any{"workload": "ram256", "sequence": "sequence1"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s", resp.Status)
	}
	waitState(t, ts, snap.ID, server.StateRunning, 60*time.Second)

	streamDone := make(chan []streamLine, 1)
	go func() { streamDone <- readStream(t, ts, snap.ID) }()

	if !mgr.Cancel(snap.ID) {
		t.Fatal("first cancel: job not found")
	}
	if !mgr.Cancel(snap.ID) {
		t.Fatal("second cancel: job not found")
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+snap.ID, nil)
	if dresp, err := http.DefaultClient.Do(req); err == nil {
		dresp.Body.Close()
	}

	select {
	case lines := <-streamDone:
		last := lines[len(lines)-1]
		if last.State != server.StateCancelled {
			t.Fatalf("stream ended with state %q, want cancelled", last.State)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("stream did not terminate after double cancel")
	}
}

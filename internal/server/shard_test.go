package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"fmossim/internal/core"
	"fmossim/internal/server"
	"fmossim/internal/switchsim"
)

// putRecording encodes rec and uploads it under its fingerprint,
// returning the fingerprint.
func putRecording(t *testing.T, ts *httptest.Server, rec *switchsim.Recording) string {
	t.Helper()
	var buf bytes.Buffer
	if err := rec.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	fp := switchsim.FingerprintBytes(buf.Bytes())
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/recordings/"+fp, bytes.NewReader(buf.Bytes()))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT /recordings/%s: %s", fp, resp.Status)
	}
	var meta server.RecordingMeta
	if err := json.NewDecoder(resp.Body).Decode(&meta); err != nil {
		t.Fatal(err)
	}
	if meta.Fingerprint != fp || meta.Bytes != buf.Len() {
		t.Fatalf("meta = %+v", meta)
	}
	return fp
}

// waitTerminal polls a job to any terminal state.
func waitTerminal(t *testing.T, ts *httptest.Server, id string) server.Snapshot {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, _ := getStatus(t, ts, id)
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %q", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestShardJobMatchesRunBatch: a shard job over an uploaded recording
// returns a batch result identical to running core.RunBatch locally over
// the same window and recording.
func TestShardJobMatchesRunBatch(t *testing.T) {
	spec := server.JobSpec{
		Netlist:  invNet,
		Patterns: invPatterns,
		Observe:  []string{"out"},
	}
	wl, err := server.ResolveSpec(&spec)
	if err != nil {
		t.Fatal(err)
	}
	rec := core.Record(wl.Net, wl.Seq, core.Options{})
	lo, hi := 1, len(wl.Faults)
	want, err := core.RunBatch(context.Background(), wl.Tables, wl.Faults[lo:hi], rec, wl.Seq,
		core.Options{Observe: wl.Observe, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, server.Config{})
	fp := putRecording(t, ts, rec)

	// The fingerprint is now visible on the listing and GET endpoints.
	gresp, err := http.Get(ts.URL + "/recordings/" + fp)
	if err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /recordings/%s: %s", fp, gresp.Status)
	}

	snap, resp := submit(t, ts, map[string]any{
		"netlist":       invNet,
		"patterns":      invPatterns,
		"observe":       []string{"out"},
		"shard_lo":      lo,
		"shard_hi":      hi,
		"recording_fp":  fp,
		"include_batch": true,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit shard: %s", resp.Status)
	}
	readStream(t, ts, snap.ID)
	st, res := getStatus(t, ts, snap.ID)
	if st.State != server.StateDone || res == nil || res.Batch == nil {
		t.Fatalf("shard job: %+v (result %+v)", st, res)
	}
	if res.NumFaults != hi-lo || res.Batches != 1 || res.BatchesRun != 1 {
		t.Fatalf("shard result shape: %+v", res)
	}

	// The batch payload survives its JSON round trip bit-identically on
	// every deterministic field (NS wall-clock figures are measured per
	// run and masked).
	got := res.Batch
	for i := range got.PerSetting {
		got.PerSetting[i].FaultNS = 0
		want.PerSetting[i].FaultNS = 0
	}
	for i := range got.PerPattern {
		got.PerPattern[i].FaultNS = 0
		want.PerPattern[i].FaultNS = 0
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("batch result differs:\ngot  %+v\nwant %+v", got, want)
	}
	if res.Detected != want.DetectedCount() {
		t.Fatalf("detected %d, want %d", res.Detected, want.DetectedCount())
	}
}

// TestPutRecordingFingerprintMismatch: the server re-hashes the body and
// refuses an upload whose fingerprint does not match.
func TestPutRecordingFingerprintMismatch(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	req, _ := http.NewRequest(http.MethodPut,
		ts.URL+"/recordings/"+"deadbeef", bytes.NewReader([]byte("not a recording")))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mismatched fingerprint: %s, want 400", resp.Status)
	}
}

// TestShardJobMissingRecording: a shard job referencing an unknown
// fingerprint fails with a pointed message instead of silently
// re-recording.
func TestShardJobMissingRecording(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	snap, resp := submit(t, ts, map[string]any{
		"netlist":       invNet,
		"patterns":      invPatterns,
		"observe":       []string{"out"},
		"shard_lo":      0,
		"shard_hi":      2,
		"recording_fp":  "0000000000000000000000000000000000000000000000000000000000000000",
		"include_batch": true,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s", resp.Status)
	}
	st := waitTerminal(t, ts, snap.ID)
	if st.State != server.StateFailed {
		t.Fatalf("state %q, want failed", st.State)
	}
}

// TestShardSpecValidation: malformed shard specs 400 at submit time.
func TestShardSpecValidation(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	for _, spec := range []map[string]any{
		{"workload": "ram64", "shard_lo": 3, "shard_hi": 3},          // empty window
		{"workload": "ram64", "shard_lo": 2},                         // lo without hi
		{"workload": "ram64", "include_batch": true},                 // batch payload needs a shard
		{"workload": "ram64", "shard_hi": 8, "coverage_target": 0.5}, // coordinator owns early stop
		{"netlist": invNet, "patterns": invPatterns, "observe": []string{"out"}, "shard_hi": -1},
	} {
		_, resp := submit(t, ts, spec)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("spec %v: %s, want 400", spec, resp.Status)
		}
	}

	// A window past the end of the universe fails the job at run time.
	snap, resp := submit(t, ts, map[string]any{
		"netlist": invNet, "patterns": invPatterns, "observe": []string{"out"},
		"shard_lo": 0, "shard_hi": 10000,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s", resp.Status)
	}
	if st := waitTerminal(t, ts, snap.ID); st.State != server.StateFailed {
		t.Fatalf("state %q, want failed", st.State)
	}
}

package server_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"fmossim/internal/bench"
	"fmossim/internal/campaign"
	"fmossim/internal/core"
	"fmossim/internal/fault"
	"fmossim/internal/march"
	"fmossim/internal/netlist"
	"fmossim/internal/ram"
	"fmossim/internal/server"
	"fmossim/internal/switchsim"
)

// invNet is a two-inverter chain: a tiny inline workload for lifecycle
// tests. Faults on the internal node are observable at out.
const invNet = `scale 1 1
input in 0
node mid
node out
d mid Vdd mid
n in mid Gnd
d out Vdd out
n mid out Gnd
`

// invPatterns toggles the input across two patterns.
const invPatterns = `in=0
in=1
pattern p1
in=0
in=1
`

func newTestServer(t *testing.T, cfg server.Config) (*server.Manager, *httptest.Server) {
	t.Helper()
	if cfg.StreamInterval == 0 {
		cfg.StreamInterval = 2 * time.Millisecond
	}
	mgr := server.NewManager(cfg)
	ts := httptest.NewServer(mgr.Handler())
	t.Cleanup(func() {
		ts.Close()
		mgr.Close()
	})
	return mgr, ts
}

func submit(t *testing.T, ts *httptest.Server, spec map[string]any) (server.Snapshot, *http.Response) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap server.Snapshot
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			t.Fatal(err)
		}
	}
	return snap, resp
}

// getStatus fetches one job's snapshot + result.
func getStatus(t *testing.T, ts *httptest.Server, id string) (server.Snapshot, *server.Result) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/%s: %s", id, resp.Status)
	}
	var st struct {
		server.Snapshot
		Result *server.Result `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st.Snapshot, st.Result
}

func waitState(t *testing.T, ts *httptest.Server, id string, want server.State, timeout time.Duration) server.Snapshot {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		snap, _ := getStatus(t, ts, id)
		if snap.State == want {
			return snap
		}
		if snap.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("job %s: state %q (err %q), want %q", id, snap.State, snap.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// streamLine mirrors the NDJSON line shape.
type streamLine struct {
	Type     string         `json:"type"`
	State    server.State   `json:"state"`
	Coverage float64        `json:"coverage"`
	Detected int            `json:"detected"`
	Faults   []int          `json:"faults"`
	Result   *server.Result `json:"result"`
}

func readStream(t *testing.T, ts *httptest.Server, id string) []streamLine {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream Content-Type = %q", ct)
	}
	var lines []streamLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		var l streamLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		lines = append(lines, l)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

// TestJobRoundTrip: submit an inline-netlist job, stream it to
// completion, and check the stream invariants — monotonic coverage
// snapshots, detection groups summing to the final count, a terminal
// result line — plus the status endpoint.
func TestJobRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	snap, resp := submit(t, ts, map[string]any{
		"netlist":  invNet,
		"patterns": invPatterns,
		"observe":  []string{"out"},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s", resp.Status)
	}
	if snap.ID == "" || snap.State != server.StateQueued {
		t.Fatalf("snapshot = %+v", snap)
	}

	lines := readStream(t, ts, snap.ID)
	if len(lines) == 0 {
		t.Fatal("empty stream")
	}
	var result *server.Result
	cov := -1.0
	streamedDetections := 0
	for _, l := range lines {
		switch l.Type {
		case "snapshot":
			if l.Coverage < cov {
				t.Fatalf("coverage regressed: %v -> %v", cov, l.Coverage)
			}
			cov = l.Coverage
		case "detections":
			streamedDetections += len(l.Faults)
		case "result":
			result = l.Result
		default:
			t.Fatalf("unknown stream line type %q", l.Type)
		}
	}
	if result == nil {
		t.Fatal("stream ended without a result line")
	}
	if result.Detected == 0 || result.Coverage <= 0 {
		t.Fatalf("expected detections on the inverter chain, got %+v", result)
	}
	if streamedDetections != result.Detected {
		t.Fatalf("streamed %d detection events, result says %d", streamedDetections, result.Detected)
	}

	st, res := getStatus(t, ts, snap.ID)
	if st.State != server.StateDone || res == nil || res.Detected != result.Detected {
		t.Fatalf("status after stream: %+v (result %+v)", st, res)
	}
	if st.Coverage != result.Coverage {
		t.Fatalf("status coverage %v != result %v", st.Coverage, result.Coverage)
	}

	// DELETE on a terminal job removes it.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+snap.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE terminal job: %s", dresp.Status)
	}
	if gresp, err := http.Get(ts.URL + "/jobs/" + snap.ID); err != nil {
		t.Fatal(err)
	} else {
		gresp.Body.Close()
		if gresp.StatusCode != http.StatusNotFound {
			t.Fatalf("after removal: %s", gresp.Status)
		}
	}
}

// ram256Spec is the shared RAM256 workload of the concurrency test:
// sampled and truncated so eight concurrent copies stay test-sized while
// still exercising the paper's big circuit.
func ram256Spec() map[string]any {
	return map[string]any{
		"workload":          "ram256",
		"sequence":          "sequence1",
		"max_patterns":      60,
		"fault_model":       "paper",
		"sample_every":      8,
		"batch_size":        32,
		"include_per_fault": true,
	}
}

// expectedRAM256 runs the one-shot CLI path (campaign.Run, exactly what
// cmd/fmossim -batch invokes) over the same resolved workload.
func expectedRAM256(t *testing.T) (*ram.RAM, []fault.Fault, *campaign.Result) {
	t.Helper()
	m := ram.RAM256()
	seq := march.Sequence1(m)
	seq.Patterns = seq.Patterns[:60]
	all := bench.PaperFaults(m)
	var faults []fault.Fault
	for i := 0; i < len(all); i += 8 {
		faults = append(faults, all[i])
	}
	res, err := campaign.Run(context.Background(), m.Net, faults, seq, campaign.Options{
		Sim:       core.Options{Observe: []netlist.NodeID{m.DataOut}},
		BatchSize: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m, faults, res
}

// TestConcurrentJobsMatchCLI: eight concurrent RAM256 jobs through the
// server produce detections and coverage bit-identical to the one-shot
// CLI path, while sharing one cached table set and recording.
func TestConcurrentJobsMatchCLI(t *testing.T) {
	m, faults, want := expectedRAM256(t)

	_, ts := newTestServer(t, server.Config{MaxJobs: 4, QueueDepth: 16})
	const jobs = 8
	ids := make([]string, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		snap, resp := submit(t, ts, ram256Spec())
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %s", i, resp.Status)
		}
		ids[i] = snap.ID
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			readStream(t, ts, id) // drain to completion
		}(snap.ID)
	}
	wg.Wait()

	for _, id := range ids {
		st, res := getStatus(t, ts, id)
		if st.State != server.StateDone || res == nil {
			t.Fatalf("job %s: %+v", id, st)
		}
		if res.Detected != want.Run.Detected || res.Coverage != want.Coverage() ||
			res.HardDetected != want.Run.HardDetected || res.NumFaults != len(faults) {
			t.Fatalf("job %s: detected %d coverage %v, want %d %v",
				id, res.Detected, res.Coverage, want.Run.Detected, want.Coverage())
		}
		if res.FaultWork != want.Run.FaultWork {
			t.Fatalf("job %s: fault work %d, want %d", id, res.FaultWork, want.Run.FaultWork)
		}
		if len(res.PerFault) != len(faults) {
			t.Fatalf("job %s: %d per-fault rows, want %d", id, len(res.PerFault), len(faults))
		}
		for fi, pf := range res.PerFault {
			d, ok := want.Detected(fi)
			if pf.Detected != ok {
				t.Fatalf("job %s fault %d: detected %v, want %v", id, fi, pf.Detected, ok)
			}
			if ok && (pf.Pattern != d.Pattern || pf.Setting != d.Setting ||
				pf.Output != m.Net.Name(d.Output) || pf.Hard != d.Hard ||
				pf.Good != d.Good.String() || pf.Faulty != d.Faulty.String()) {
				t.Fatalf("job %s fault %d: detection %+v, want %+v", id, fi, pf, d)
			}
		}
	}
}

// TestCancelRunningJob: cancelling a long-running job moves it to
// cancelled within a second and the shard/batch goroutines exit (no
// leak).
func TestCancelRunningJob(t *testing.T) {
	_, ts := newTestServer(t, server.Config{MaxJobs: 2})
	before := runtime.NumGoroutine()

	// Full RAM256 paper campaign: minutes of work if not cancelled.
	snap, resp := submit(t, ts, map[string]any{
		"workload": "ram256",
		"sequence": "sequence1",
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s", resp.Status)
	}
	waitState(t, ts, snap.ID, server.StateRunning, 30*time.Second)
	// Wait until batch workers are actually simulating (the first
	// campaign progress event) before cancelling: the cache-warming
	// trajectory recording that precedes the campaign is shared state,
	// not part of this job's cancellable work.
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, _ := getStatus(t, ts, snap.ID)
		if st.Batches > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+snap.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE running job: %s", dresp.Status)
	}
	cancelled := time.Now()
	st := waitState(t, ts, snap.ID, server.StateCancelled, 5*time.Second)
	if d := time.Since(cancelled); d > time.Second {
		t.Fatalf("cancellation took %v (want < 1s); final state %+v", d, st)
	}

	// The campaign's shard goroutines and batch workers must be gone.
	// Idle HTTP keep-alive connections from this test's own polling are
	// torn down first so only simulator goroutines could remain.
	leakDeadline := time.Now().Add(5 * time.Second)
	for {
		http.DefaultClient.CloseIdleConnections()
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= before+2 {
			break
		}
		if time.Now().After(leakDeadline) {
			t.Fatalf("goroutines: %d before submit, %d after cancel", before, now)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestQueueFullSheds: with a single runner and a one-deep queue, a third
// concurrent submission is shed with 429 and a Retry-After hint.
func TestQueueFullSheds(t *testing.T) {
	mgr, ts := newTestServer(t, server.Config{MaxJobs: 1, QueueDepth: 1, RetryAfter: 3 * time.Second})
	long := map[string]any{"workload": "ram256", "sequence": "sequence1"}

	first, resp := submit(t, ts, long)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %s", resp.Status)
	}
	// Make sure the first job occupies the runner (not the queue slot).
	waitState(t, ts, first.ID, server.StateRunning, 30*time.Second)

	second, resp := submit(t, ts, long)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second (queued) submit: %s", resp.Status)
	}

	_, resp = submit(t, ts, long)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit: %s, want 429", resp.Status)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", ra)
	}

	// Cancelling the queued job frees its slot immediately: it turns
	// terminal without waiting for a runner, and a new submission is
	// accepted even though the runner is still busy.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+second.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if st, _ := getStatus(t, ts, second.ID); st.State != server.StateCancelled {
		t.Fatalf("cancelled queued job: state %q, want cancelled", st.State)
	}
	if _, resp = submit(t, ts, long); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit after freeing the queue slot: %s, want 202", resp.Status)
	}

	for _, snap := range mgr.List() {
		mgr.Cancel(snap.ID)
	}
}

// TestSubmitValidation: bad specs 400 with a reason instead of failing
// asynchronously.
func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	for _, spec := range []map[string]any{
		{},                      // neither workload nor netlist
		{"workload": "ram1024"}, // unknown workload
		{"workload": "ram64", "sequence": "sequence9"},
		{"workload": "ram64", "netlist": invNet}, // mutually exclusive
		{"netlist": invNet},                      // missing patterns+observe
		{"workload": "ram64", "drop": "sometimes"},
		{"netlist": invNet, "patterns": invPatterns, "observe": []string{"out"},
			"fault_model": "paper"}, // paper universe needs a built-in workload
		{"workload": "ram64", "coverage_target": 1.5},
		{"workload": "ram64", "shards": -1},
		{"workload": "ram64", "bogus_field": true}, // unknown field
	} {
		_, resp := submit(t, ts, spec)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("spec %v: %s, want 400", spec, resp.Status)
		}
	}

	// A spec that passes validation but fails resolution fails the job,
	// reported via status.
	snap, resp := submit(t, ts, map[string]any{
		"netlist":  invNet,
		"patterns": invPatterns,
		"observe":  []string{"no_such_node"},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s", resp.Status)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, _ := getStatus(t, ts, snap.ID)
		if st.State == server.StateFailed {
			if !strings.Contains(st.Error, "no_such_node") {
				t.Fatalf("error = %q", st.Error)
			}
			break
		}
		if st.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("state %q, want failed", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestInlineMatchesDirect: an inline-netlist job's result matches running
// the same circuit directly through the library.
func TestInlineMatchesDirect(t *testing.T) {
	nw, err := netlist.Read(strings.NewReader(invNet))
	if err != nil {
		t.Fatal(err)
	}
	seq, err := switchsim.ParseSequence(strings.NewReader(invPatterns), "patterns", nw)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.NodeStuckFaults(nw, fault.Options{})
	want, err := campaign.Run(context.Background(), nw, faults, seq, campaign.Options{
		Sim: core.Options{Observe: []netlist.NodeID{nw.MustLookup("out")}},
	})
	if err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, server.Config{})
	snap, resp := submit(t, ts, map[string]any{
		"netlist":           invNet,
		"patterns":          invPatterns,
		"observe":           []string{"out"},
		"include_per_fault": true,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s", resp.Status)
	}
	readStream(t, ts, snap.ID)
	_, res := getStatus(t, ts, snap.ID)
	if res == nil {
		t.Fatal("no result")
	}
	if res.Detected != want.Run.Detected || res.Coverage != want.Coverage() {
		t.Fatalf("detected %d coverage %v, want %d %v",
			res.Detected, res.Coverage, want.Run.Detected, want.Coverage())
	}
	for fi, pf := range res.PerFault {
		if _, ok := want.Detected(fi); ok != pf.Detected {
			t.Fatalf("fault %d: detected %v, want %v", fi, pf.Detected, ok)
		}
	}
}

// TestHealthz: the liveness probe answers.
func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %s", resp.Status)
	}
}

// TestTerminalJobEviction: finished jobs beyond KeepTerminal are evicted
// oldest-first, bounding the daemon's memory over its lifetime.
func TestTerminalJobEviction(t *testing.T) {
	mgr, ts := newTestServer(t, server.Config{MaxJobs: 1, KeepTerminal: 2})
	spec := map[string]any{"netlist": invNet, "patterns": invPatterns, "observe": []string{"out"}}
	var ids []string
	for i := 0; i < 4; i++ {
		snap, resp := submit(t, ts, spec)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %s", i, resp.Status)
		}
		readStream(t, ts, snap.ID) // run to completion before the next
		ids = append(ids, snap.ID)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(mgr.List()) > 2 {
		if time.Now().After(deadline) {
			t.Fatalf("%d jobs retained, want <= 2", len(mgr.List()))
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, id := range ids[:2] {
		if _, ok := mgr.Get(id); ok {
			t.Errorf("oldest job %s should have been evicted", id)
		}
	}
	for _, id := range ids[2:] {
		if _, ok := mgr.Get(id); !ok {
			t.Errorf("recent job %s should be retained", id)
		}
	}
}

// Package server implements fmossimd, the concurrent campaign job
// server: a long-running HTTP/JSON service that accepts fault-campaign
// submissions, schedules them over a bounded pool of runner goroutines,
// shares one warm engine — read-only switchsim.Tables and recorded
// good-circuit trajectories — across jobs over the same circuit, and
// streams per-setting progress (coverage, live-fault counts, detection
// events) as NDJSON.
//
// The throughput argument is the paper's, lifted one level: just as the
// concurrent simulator amortizes the good circuit across the fault
// universe, the server amortizes trajectory recording and table
// construction across campaigns, so a burst of jobs over the RAM
// benchmarks pays the good-circuit cost once. Load shedding is explicit:
// at most MaxJobs campaigns run at a time, at most QueueDepth wait, and
// submissions beyond that are rejected with 429 and a Retry-After hint
// so the daemon degrades predictably under burst traffic.
//
// Results are bit-identical to the one-shot CLI path (cmd/fmossim in
// campaign mode): both funnel into campaign.Run, whose determinism
// contract is independent of sharding, worker count, and — by
// construction — of which jobs share cached state.
//
// The server is also the worker half of distributed campaigns
// (internal/distrib): PUT /recordings/{fp} stores a coordinator's
// encoded good-circuit trajectory under its content fingerprint, and a
// JobSpec with shard_lo/shard_hi runs exactly one batch of the fault
// universe against it (core.RunBatch), returning the raw
// core.BatchResult for setting-granularity merging on the coordinator.
// ResolveSpec exposes the spec-resolution path itself, so coordinator
// and workers provably enumerate the same fault universe from the same
// spec. The fingerprint contract and the merge-determinism guarantee are
// documented in ARCHITECTURE.md.
package server

// Uploaded-recording store: the server half of the distributed-campaign
// amortization. A coordinator records the good-circuit trajectory once,
// uploads the encoded bytes to each worker under their content
// fingerprint (SHA-256 of the encoding), and submits shard jobs that
// reference the fingerprint — so workers × shards campaigns pay for
// exactly one good-circuit simulation, cluster-wide.
//
//	PUT    /recordings/{fp}  upload an encoded recording -> 201 + meta
//	GET    /recordings/{fp}  presence check -> 200 + meta / 404
//	GET    /recordings       list stored recordings -> []meta
//	DELETE /recordings/{fp}  evict
//
// The fingerprint in the URL is the contract: the server re-hashes the
// body and rejects a mismatch with 400, so a corrupt or truncated upload
// can never be replayed under a healthy recording's name.
package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"fmossim/internal/switchsim"
)

// maxRecordingBytes bounds one uploaded recording (the RAM256 sequence-1
// trajectory encodes to a few MB; the bound is generous headroom, not a
// target).
const maxRecordingBytes = 512 << 20

// RecordingMeta describes one stored recording.
type RecordingMeta struct {
	Fingerprint    string `json:"fingerprint"`
	NumNodes       int    `json:"num_nodes"`
	NumTransistors int    `json:"num_transistors"`
	NumSettings    int    `json:"num_settings"`
	Bytes          int    `json:"bytes"`
}

// recordingStore holds decoded recordings keyed by content fingerprint,
// bounded by Config.KeepRecordings with oldest-first eviction.
type recordingStore struct {
	mu      sync.Mutex
	max     int
	order   []string
	entries map[string]storedRecording
}

type storedRecording struct {
	rec  *switchsim.Recording
	size int
}

func newRecordingStore(max int) *recordingStore {
	return &recordingStore{max: max, entries: map[string]storedRecording{}}
}

// put stores a decoded recording under its fingerprint, evicting the
// oldest entries beyond the bound. Re-uploading an existing fingerprint
// refreshes its eviction age.
func (s *recordingStore) put(fp string, rec *switchsim.Recording, size int) RecordingMeta {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[fp]; ok {
		for i, o := range s.order {
			if o == fp {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
	}
	s.entries[fp] = storedRecording{rec: rec, size: size}
	s.order = append(s.order, fp)
	for len(s.order) > s.max {
		delete(s.entries, s.order[0])
		s.order = s.order[1:]
	}
	return meta(fp, s.entries[fp])
}

func (s *recordingStore) get(fp string) (*switchsim.Recording, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[fp]
	return e.rec, ok
}

func (s *recordingStore) getMeta(fp string) (RecordingMeta, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[fp]
	if !ok {
		return RecordingMeta{}, false
	}
	return meta(fp, e), true
}

func (s *recordingStore) delete(fp string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[fp]; !ok {
		return false
	}
	delete(s.entries, fp)
	for i, o := range s.order {
		if o == fp {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	return true
}

func (s *recordingStore) list() []RecordingMeta {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]RecordingMeta, 0, len(s.order))
	for _, fp := range s.order {
		out = append(out, meta(fp, s.entries[fp]))
	}
	return out
}

func meta(fp string, e storedRecording) RecordingMeta {
	return RecordingMeta{
		Fingerprint:    fp,
		NumNodes:       e.rec.NumNodes,
		NumTransistors: e.rec.NumTransistors,
		NumSettings:    e.rec.NumSettings(),
		Bytes:          e.size,
	}
}

func (m *Manager) handlePutRecording(w http.ResponseWriter, r *http.Request) {
	fp := strings.ToLower(r.PathValue("fp"))
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRecordingBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("reading recording body: %v", err))
		return
	}
	if got := switchsim.FingerprintBytes(data); got != fp {
		writeError(w, http.StatusBadRequest, fmt.Sprintf(
			"fingerprint mismatch: body hashes to %s, not %s", got, fp))
		return
	}
	rec, err := switchsim.DecodeRecording(bytes.NewReader(data))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusCreated, m.recordings.put(fp, rec, len(data)))
}

func (m *Manager) handleGetRecording(w http.ResponseWriter, r *http.Request) {
	fp := strings.ToLower(r.PathValue("fp"))
	rm, ok := m.recordings.getMeta(fp)
	if !ok {
		writeError(w, http.StatusNotFound, "no such recording")
		return
	}
	writeJSON(w, http.StatusOK, rm)
}

func (m *Manager) handleDeleteRecording(w http.ResponseWriter, r *http.Request) {
	fp := strings.ToLower(r.PathValue("fp"))
	if !m.recordings.delete(fp) {
		writeError(w, http.StatusNotFound, "no such recording")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"fingerprint": fp, "status": "removed"})
}

// Job specifications: the JSON body of POST /jobs and its resolution
// into a runnable workload (network, tables, fault universe, test
// sequence, recording), with the caches that let concurrent jobs share
// one set of read-only tables and one recorded good trajectory per
// circuit/sequence pair.
package server

import (
	"fmt"
	"strings"
	"sync"

	"fmossim/internal/bench"
	"fmossim/internal/core"
	"fmossim/internal/fault"
	"fmossim/internal/march"
	"fmossim/internal/netlist"
	"fmossim/internal/ram"
	"fmossim/internal/switchsim"
)

// JobSpec is a campaign submission: either a built-in benchmark workload
// (Workload + Sequence) or an inline circuit (Netlist + Patterns +
// Observe), a fault universe, and campaign options. The zero value of
// every optional field selects the documented default.
type JobSpec struct {
	// Workload selects a built-in benchmark circuit: "ram64" (the paper's
	// 8×8 dynamic RAM) or "ram256" (16×16). Mutually exclusive with
	// Netlist.
	Workload string `json:"workload,omitempty"`
	// Sequence selects the built-in test sequence for a Workload:
	// "sequence1" (control + row/column march + array march; default) or
	// "sequence2" (control + array march only).
	Sequence string `json:"sequence,omitempty"`
	// MaxPatterns truncates the resolved sequence to its first N patterns
	// (0 = the whole sequence): a cheap way to bound a job's runtime.
	MaxPatterns int `json:"max_patterns,omitempty"`

	// Netlist is an inline netlist in the internal/netlist text format;
	// Patterns is an inline pattern script in the cmd/fmossim format
	// (parsed by switchsim.ParseSequence). Both are required when
	// Workload is empty.
	Netlist  string `json:"netlist,omitempty"`
	Patterns string `json:"patterns,omitempty"`
	// Observe names the observed output nodes. Defaults to the built-in
	// workload's data output; required for inline netlists.
	Observe []string `json:"observe,omitempty"`

	// Faults is an inline fault list in the internal/fault text format.
	// When empty, FaultModel picks the universe: "paper" (node stuck-at +
	// bit-line bridges; built-in workloads' default) or "stuck" (node
	// stuck-at only; inline netlists' default and only choice).
	Faults     string `json:"faults,omitempty"`
	FaultModel string `json:"fault_model,omitempty"`
	// SampleEvery keeps every k-th fault of the resolved universe
	// (0 or 1 = all): statistical fault sampling for quick estimates.
	SampleEvery int `json:"sample_every,omitempty"`

	// Campaign options, mirroring cmd/fmossim's flags. Zero values defer
	// to the campaign engine's defaults, except Shards: a zero Shards is
	// replaced by the server's fair share (GOMAXPROCS / MaxJobs) so
	// concurrent jobs do not oversubscribe the machine.
	BatchSize      int     `json:"batch_size,omitempty"`
	Shards         int     `json:"shards,omitempty"`
	Workers        int     `json:"workers,omitempty"`
	CoverageTarget float64 `json:"coverage_target,omitempty"`
	// Drop is the fault-dropping policy: "any" (default), "hard", or
	// "never".
	Drop string `json:"drop,omitempty"`
	// Trim enables redundancy trimming (fault equivalence classes plus
	// vicinity-outcome memoization); TrimProbation overrides the class
	// probation window. Results are byte-identical either way — trimming
	// sheds executed work only.
	Trim          bool `json:"trim,omitempty"`
	TrimProbation int  `json:"trim_probation,omitempty"`

	// IncludePerFault adds the per-fault outcome table to the job result.
	IncludePerFault bool `json:"include_per_fault,omitempty"`

	// Shard-job fields: the distributed-campaign worker path (see
	// internal/distrib and ARCHITECTURE.md). When ShardHi > 0 the job is
	// a shard job: instead of a full campaign it runs exactly one batch —
	// core.RunBatch over the half-open window [shard_lo, shard_hi) of the
	// resolved fault universe — so a coordinator that resolves the same
	// spec locally (server.ResolveSpec) can partition the universe and
	// know each worker sees identical fault indices.
	ShardLo int `json:"shard_lo,omitempty"`
	ShardHi int `json:"shard_hi,omitempty"`
	// RecordingFP references a good-circuit trajectory previously
	// uploaded with PUT /recordings/{fp} by its content fingerprint (the
	// SHA-256 of its encoded bytes, switchsim.FingerprintBytes). The job
	// replays the uploaded recording instead of re-recording the good
	// circuit; the job fails if the fingerprint is unknown or the
	// recording does not match the resolved network and sequence.
	RecordingFP string `json:"recording_fp,omitempty"`
	// IncludeBatch embeds the raw core.BatchResult in a shard job's
	// result so the coordinator can merge shards at setting granularity
	// (campaign.Merge), bit-identical to a single-process campaign.
	IncludeBatch bool `json:"include_batch,omitempty"`
}

// IsShard reports whether the spec is a shard job (a single-batch window
// of the fault universe, dispatched by a distributed coordinator).
func (s *JobSpec) IsShard() bool { return s.ShardHi > 0 }

// validate performs the submit-time checks that should 400 instead of
// failing the job later.
func (s *JobSpec) validate() error {
	switch {
	case s.Workload == "" && s.Netlist == "":
		return fmt.Errorf("one of workload or netlist is required")
	case s.Workload != "" && s.Netlist != "":
		return fmt.Errorf("workload and netlist are mutually exclusive")
	}
	if s.Workload != "" {
		switch s.Workload {
		case "ram64", "ram256":
		default:
			return fmt.Errorf("unknown workload %q (want ram64 or ram256)", s.Workload)
		}
		switch s.Sequence {
		case "", "sequence1", "sequence2":
		default:
			return fmt.Errorf("unknown sequence %q (want sequence1 or sequence2)", s.Sequence)
		}
	} else {
		if s.Patterns == "" {
			return fmt.Errorf("patterns is required with an inline netlist")
		}
		if len(s.Observe) == 0 {
			return fmt.Errorf("observe is required with an inline netlist")
		}
	}
	switch s.FaultModel {
	case "", "stuck":
	case "paper":
		if s.Workload == "" {
			return fmt.Errorf("fault_model paper requires a built-in workload")
		}
	default:
		return fmt.Errorf("unknown fault_model %q (want paper or stuck)", s.FaultModel)
	}
	switch s.Drop {
	case "", "any", "hard", "never":
	default:
		return fmt.Errorf("unknown drop policy %q (want any, hard, or never)", s.Drop)
	}
	if s.CoverageTarget < 0 || s.CoverageTarget > 1 {
		return fmt.Errorf("coverage_target %v out of range (0,1]", s.CoverageTarget)
	}
	for _, f := range []struct {
		name string
		v    int
	}{{"max_patterns", s.MaxPatterns}, {"sample_every", s.SampleEvery},
		{"batch_size", s.BatchSize}, {"shards", s.Shards}, {"workers", s.Workers},
		{"trim_probation", s.TrimProbation},
		{"shard_lo", s.ShardLo}, {"shard_hi", s.ShardHi}} {
		if f.v < 0 {
			return fmt.Errorf("%s must be non-negative", f.name)
		}
	}
	switch {
	case s.ShardHi > 0 && s.ShardLo >= s.ShardHi:
		return fmt.Errorf("shard window [%d,%d) is empty", s.ShardLo, s.ShardHi)
	case s.ShardHi == 0 && s.ShardLo != 0:
		return fmt.Errorf("shard_lo without shard_hi")
	case s.IncludeBatch && !s.IsShard():
		return fmt.Errorf("include_batch requires a shard job (shard_hi > 0)")
	case s.IsShard() && s.CoverageTarget != 0:
		return fmt.Errorf("coverage_target does not apply to shard jobs (the coordinator owns early stop)")
	}
	return nil
}

// dropPolicy maps the spec string to the core policy.
func (s *JobSpec) dropPolicy() core.DropPolicy {
	switch s.Drop {
	case "hard":
		return core.DropHardOnly
	case "never":
		return core.NeverDrop
	}
	return core.DropAnyDifference
}

// workloadKey identifies the shareable part of a built-in workload — the
// circuit plus the exact test sequence — for the Tables and Recording
// caches. Inline netlists are not cached (the parse is the cheap part;
// the trajectory depends on the full inline text anyway).
func (s *JobSpec) workloadKey() (string, bool) {
	if s.Workload == "" {
		return "", false
	}
	seq := s.Sequence
	if seq == "" {
		seq = "sequence1"
	}
	return fmt.Sprintf("%s/%s/max=%d", s.Workload, seq, s.MaxPatterns), true
}

// Workload is a resolved, runnable campaign workload: everything
// campaign.Run (or a shard job's core.RunBatch) needs. ResolveSpec
// produces one outside the server so a distributed coordinator
// (internal/distrib) enumerates the exact fault universe its workers
// will resolve from the same spec: shard windows computed locally index
// the same faults remotely.
type Workload struct {
	Net     *netlist.Network
	Tables  *switchsim.Tables
	Faults  []fault.Fault
	Seq     *switchsim.Sequence
	Observe []netlist.NodeID
	// Recording is the cached good-circuit trajectory, nil when the
	// workload has not been recorded yet.
	Recording *switchsim.Recording

	ram *ram.RAM // non-nil for built-in workloads
}

// circuitEntry is one cached built-in circuit + sequence: the network and
// tables are immutable after construction and shared by every job over
// the workload; the recording is captured once, on first use, under the
// entry's own lock so concurrent first jobs do not record twice.
type circuitEntry struct {
	nw  *netlist.Network
	m   *ram.RAM
	tab *switchsim.Tables
	seq *switchsim.Sequence

	recOnce sync.Once
	rec     *switchsim.Recording
}

// cache shares read-only simulation state across jobs.
type cache struct {
	mu      sync.Mutex
	entries map[string]*circuitEntry
}

func newCache() *cache { return &cache{entries: map[string]*circuitEntry{}} }

// builtin returns (building and caching on first use) the circuit entry
// for a built-in workload spec.
func (c *cache) builtin(spec *JobSpec) *circuitEntry {
	key, ok := spec.workloadKey()
	if !ok {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.entries[key]; e != nil {
		return e
	}
	m, seq := buildBuiltin(spec)
	e := &circuitEntry{nw: m.Net, m: m, tab: switchsim.NewTables(m.Net), seq: seq}
	c.entries[key] = e
	return e
}

// buildBuiltin constructs a built-in workload's circuit and (truncated)
// test sequence. Construction is deterministic: every process resolving
// the same spec builds the identical network and sequence, which is what
// lets coordinator and workers agree on fault indices and recording
// fingerprints without shipping circuits around.
func buildBuiltin(spec *JobSpec) (*ram.RAM, *switchsim.Sequence) {
	var m *ram.RAM
	if spec.Workload == "ram256" {
		m = ram.RAM256()
	} else {
		m = ram.RAM64()
	}
	var seq *switchsim.Sequence
	if spec.Sequence == "sequence2" {
		seq = march.Sequence2(m)
	} else {
		seq = march.Sequence1(m)
	}
	truncate(seq, spec.MaxPatterns)
	return m, seq
}

// recording captures (once) and returns the entry's good trajectory.
func (e *circuitEntry) recording() *switchsim.Recording {
	e.recOnce.Do(func() {
		e.rec = core.Record(e.nw, e.seq, core.Options{})
	})
	return e.rec
}

// truncate clips seq to its first n patterns (no-op when n is 0 or
// already covers the sequence).
func truncate(seq *switchsim.Sequence, n int) {
	if n > 0 && n < len(seq.Patterns) {
		seq.Patterns = seq.Patterns[:n]
	}
}

// resolve turns a validated spec into a runnable workload, sharing cached
// tables and trajectories for built-in workloads.
func (m *Manager) resolve(spec *JobSpec) (*Workload, error) {
	if spec.Workload != "" {
		e := m.cache.builtin(spec)
		wl := &Workload{Net: e.nw, Tables: e.tab, Seq: e.seq, Recording: e.recording(), ram: e.m}
		return finishResolve(spec, wl)
	}
	return resolveInline(spec)
}

// ResolveSpec resolves a validated spec into a runnable workload with no
// server cache behind it: fresh tables, no recording. Distributed
// coordinators use it to enumerate the exact fault universe their
// workers will resolve from the same spec.
func ResolveSpec(spec *JobSpec) (*Workload, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if spec.Workload != "" {
		m, seq := buildBuiltin(spec)
		wl := &Workload{Net: m.Net, Tables: switchsim.NewTables(m.Net), Seq: seq, ram: m}
		return finishResolve(spec, wl)
	}
	return resolveInline(spec)
}

// resolveInline resolves an inline-netlist spec (never cached: the parse
// is the cheap part, and the trajectory depends on the full text anyway).
func resolveInline(spec *JobSpec) (*Workload, error) {
	nw, err := netlist.Read(strings.NewReader(spec.Netlist))
	if err != nil {
		return nil, fmt.Errorf("netlist: %w", err)
	}
	seq, err := switchsim.ParseSequence(strings.NewReader(spec.Patterns), "patterns", nw)
	if err != nil {
		return nil, err
	}
	truncate(seq, spec.MaxPatterns)
	return finishResolve(spec, &Workload{Net: nw, Tables: switchsim.NewTables(nw), Seq: seq})
}

// finishResolve fills the observe set and fault universe of a workload
// whose circuit and sequence are already resolved.
func finishResolve(spec *JobSpec, wl *Workload) (*Workload, error) {
	var err error
	if len(spec.Observe) > 0 {
		if wl.Observe, err = lookupNodes(wl.Net, spec.Observe); err != nil {
			return nil, err
		}
	} else if wl.ram != nil {
		wl.Observe = []netlist.NodeID{wl.ram.DataOut}
	}
	if wl.Faults, err = resolveFaults(spec, wl.Net, wl.ram); err != nil {
		return nil, err
	}
	return wl, nil
}

// resolveFaults builds the job's fault universe: inline list, or the
// model default, then sampling.
func resolveFaults(spec *JobSpec, nw *netlist.Network, m *ram.RAM) ([]fault.Fault, error) {
	var faults []fault.Fault
	switch {
	case spec.Faults != "":
		var err error
		faults, err = fault.ReadList(strings.NewReader(spec.Faults), nw)
		if err != nil {
			return nil, fmt.Errorf("faults: %w", err)
		}
	case spec.FaultModel == "paper" || (spec.FaultModel == "" && m != nil):
		if m == nil {
			return nil, fmt.Errorf("fault_model paper requires a built-in workload")
		}
		faults = bench.PaperFaults(m)
	default:
		faults = fault.NodeStuckFaults(nw, fault.Options{})
	}
	if k := spec.SampleEvery; k > 1 {
		sampled := make([]fault.Fault, 0, (len(faults)+k-1)/k)
		for i := 0; i < len(faults); i += k {
			sampled = append(sampled, faults[i])
		}
		faults = sampled
	}
	if len(faults) == 0 {
		return nil, fmt.Errorf("empty fault universe")
	}
	return faults, nil
}

func lookupNodes(nw *netlist.Network, names []string) ([]netlist.NodeID, error) {
	out := make([]netlist.NodeID, 0, len(names))
	for _, name := range names {
		id := nw.Lookup(strings.TrimSpace(name))
		if id == netlist.NoNode {
			return nil, fmt.Errorf("unknown observed node %q", name)
		}
		out = append(out, id)
	}
	return out, nil
}

// Job specifications: the JSON body of POST /jobs and its resolution
// into a runnable workload (network, tables, fault universe, test
// sequence, recording), with the caches that let concurrent jobs share
// one set of read-only tables and one recorded good trajectory per
// circuit/sequence pair.
package server

import (
	"fmt"
	"strings"
	"sync"

	"fmossim/internal/bench"
	"fmossim/internal/core"
	"fmossim/internal/fault"
	"fmossim/internal/march"
	"fmossim/internal/netlist"
	"fmossim/internal/ram"
	"fmossim/internal/switchsim"
)

// JobSpec is a campaign submission: either a built-in benchmark workload
// (Workload + Sequence) or an inline circuit (Netlist + Patterns +
// Observe), a fault universe, and campaign options. The zero value of
// every optional field selects the documented default.
type JobSpec struct {
	// Workload selects a built-in benchmark circuit: "ram64" (the paper's
	// 8×8 dynamic RAM) or "ram256" (16×16). Mutually exclusive with
	// Netlist.
	Workload string `json:"workload,omitempty"`
	// Sequence selects the built-in test sequence for a Workload:
	// "sequence1" (control + row/column march + array march; default) or
	// "sequence2" (control + array march only).
	Sequence string `json:"sequence,omitempty"`
	// MaxPatterns truncates the resolved sequence to its first N patterns
	// (0 = the whole sequence): a cheap way to bound a job's runtime.
	MaxPatterns int `json:"max_patterns,omitempty"`

	// Netlist is an inline netlist in the internal/netlist text format;
	// Patterns is an inline pattern script in the cmd/fmossim format
	// (parsed by switchsim.ParseSequence). Both are required when
	// Workload is empty.
	Netlist  string `json:"netlist,omitempty"`
	Patterns string `json:"patterns,omitempty"`
	// Observe names the observed output nodes. Defaults to the built-in
	// workload's data output; required for inline netlists.
	Observe []string `json:"observe,omitempty"`

	// Faults is an inline fault list in the internal/fault text format.
	// When empty, FaultModel picks the universe: "paper" (node stuck-at +
	// bit-line bridges; built-in workloads' default) or "stuck" (node
	// stuck-at only; inline netlists' default and only choice).
	Faults     string `json:"faults,omitempty"`
	FaultModel string `json:"fault_model,omitempty"`
	// SampleEvery keeps every k-th fault of the resolved universe
	// (0 or 1 = all): statistical fault sampling for quick estimates.
	SampleEvery int `json:"sample_every,omitempty"`

	// Campaign options, mirroring cmd/fmossim's flags. Zero values defer
	// to the campaign engine's defaults, except Shards: a zero Shards is
	// replaced by the server's fair share (GOMAXPROCS / MaxJobs) so
	// concurrent jobs do not oversubscribe the machine.
	BatchSize      int     `json:"batch_size,omitempty"`
	Shards         int     `json:"shards,omitempty"`
	Workers        int     `json:"workers,omitempty"`
	CoverageTarget float64 `json:"coverage_target,omitempty"`
	// Drop is the fault-dropping policy: "any" (default), "hard", or
	// "never".
	Drop string `json:"drop,omitempty"`

	// IncludePerFault adds the per-fault outcome table to the job result.
	IncludePerFault bool `json:"include_per_fault,omitempty"`
}

// validate performs the submit-time checks that should 400 instead of
// failing the job later.
func (s *JobSpec) validate() error {
	switch {
	case s.Workload == "" && s.Netlist == "":
		return fmt.Errorf("one of workload or netlist is required")
	case s.Workload != "" && s.Netlist != "":
		return fmt.Errorf("workload and netlist are mutually exclusive")
	}
	if s.Workload != "" {
		switch s.Workload {
		case "ram64", "ram256":
		default:
			return fmt.Errorf("unknown workload %q (want ram64 or ram256)", s.Workload)
		}
		switch s.Sequence {
		case "", "sequence1", "sequence2":
		default:
			return fmt.Errorf("unknown sequence %q (want sequence1 or sequence2)", s.Sequence)
		}
	} else {
		if s.Patterns == "" {
			return fmt.Errorf("patterns is required with an inline netlist")
		}
		if len(s.Observe) == 0 {
			return fmt.Errorf("observe is required with an inline netlist")
		}
	}
	switch s.FaultModel {
	case "", "stuck":
	case "paper":
		if s.Workload == "" {
			return fmt.Errorf("fault_model paper requires a built-in workload")
		}
	default:
		return fmt.Errorf("unknown fault_model %q (want paper or stuck)", s.FaultModel)
	}
	switch s.Drop {
	case "", "any", "hard", "never":
	default:
		return fmt.Errorf("unknown drop policy %q (want any, hard, or never)", s.Drop)
	}
	if s.CoverageTarget < 0 || s.CoverageTarget > 1 {
		return fmt.Errorf("coverage_target %v out of range (0,1]", s.CoverageTarget)
	}
	for _, f := range []struct {
		name string
		v    int
	}{{"max_patterns", s.MaxPatterns}, {"sample_every", s.SampleEvery},
		{"batch_size", s.BatchSize}, {"shards", s.Shards}, {"workers", s.Workers}} {
		if f.v < 0 {
			return fmt.Errorf("%s must be non-negative", f.name)
		}
	}
	return nil
}

// dropPolicy maps the spec string to the core policy.
func (s *JobSpec) dropPolicy() core.DropPolicy {
	switch s.Drop {
	case "hard":
		return core.DropHardOnly
	case "never":
		return core.NeverDrop
	}
	return core.DropAnyDifference
}

// workloadKey identifies the shareable part of a built-in workload — the
// circuit plus the exact test sequence — for the Tables and Recording
// caches. Inline netlists are not cached (the parse is the cheap part;
// the trajectory depends on the full inline text anyway).
func (s *JobSpec) workloadKey() (string, bool) {
	if s.Workload == "" {
		return "", false
	}
	seq := s.Sequence
	if seq == "" {
		seq = "sequence1"
	}
	return fmt.Sprintf("%s/%s/max=%d", s.Workload, seq, s.MaxPatterns), true
}

// resolved is a runnable workload: everything campaign.Run needs.
type resolved struct {
	nw      *netlist.Network
	tab     *switchsim.Tables
	faults  []fault.Fault
	seq     *switchsim.Sequence
	observe []netlist.NodeID
	rec     *switchsim.Recording
}

// circuitEntry is one cached built-in circuit + sequence: the network and
// tables are immutable after construction and shared by every job over
// the workload; the recording is captured once, on first use, under the
// entry's own lock so concurrent first jobs do not record twice.
type circuitEntry struct {
	nw  *netlist.Network
	m   *ram.RAM
	tab *switchsim.Tables
	seq *switchsim.Sequence

	recOnce sync.Once
	rec     *switchsim.Recording
}

// cache shares read-only simulation state across jobs.
type cache struct {
	mu      sync.Mutex
	entries map[string]*circuitEntry
}

func newCache() *cache { return &cache{entries: map[string]*circuitEntry{}} }

// builtin returns (building and caching on first use) the circuit entry
// for a built-in workload spec.
func (c *cache) builtin(spec *JobSpec) *circuitEntry {
	key, ok := spec.workloadKey()
	if !ok {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.entries[key]; e != nil {
		return e
	}
	var m *ram.RAM
	if spec.Workload == "ram256" {
		m = ram.RAM256()
	} else {
		m = ram.RAM64()
	}
	var seq *switchsim.Sequence
	if spec.Sequence == "sequence2" {
		seq = march.Sequence2(m)
	} else {
		seq = march.Sequence1(m)
	}
	truncate(seq, spec.MaxPatterns)
	e := &circuitEntry{nw: m.Net, m: m, tab: switchsim.NewTables(m.Net), seq: seq}
	c.entries[key] = e
	return e
}

// recording captures (once) and returns the entry's good trajectory.
func (e *circuitEntry) recording() *switchsim.Recording {
	e.recOnce.Do(func() {
		e.rec = core.Record(e.nw, e.seq, core.Options{})
	})
	return e.rec
}

// truncate clips seq to its first n patterns (no-op when n is 0 or
// already covers the sequence).
func truncate(seq *switchsim.Sequence, n int) {
	if n > 0 && n < len(seq.Patterns) {
		seq.Patterns = seq.Patterns[:n]
	}
}

// resolve turns a validated spec into a runnable workload, sharing cached
// tables and trajectories for built-in workloads.
func (m *Manager) resolve(spec *JobSpec) (*resolved, error) {
	if spec.Workload != "" {
		e := m.cache.builtin(spec)
		r := &resolved{nw: e.nw, tab: e.tab, seq: e.seq, rec: e.recording()}
		r.observe = []netlist.NodeID{e.m.DataOut}
		if len(spec.Observe) > 0 {
			var err error
			if r.observe, err = lookupNodes(e.nw, spec.Observe); err != nil {
				return nil, err
			}
		}
		var err error
		if r.faults, err = resolveFaults(spec, e.nw, e.m); err != nil {
			return nil, err
		}
		return r, nil
	}

	nw, err := netlist.Read(strings.NewReader(spec.Netlist))
	if err != nil {
		return nil, fmt.Errorf("netlist: %w", err)
	}
	seq, err := switchsim.ParseSequence(strings.NewReader(spec.Patterns), "patterns", nw)
	if err != nil {
		return nil, err
	}
	truncate(seq, spec.MaxPatterns)
	r := &resolved{nw: nw, tab: switchsim.NewTables(nw), seq: seq}
	if r.observe, err = lookupNodes(nw, spec.Observe); err != nil {
		return nil, err
	}
	if r.faults, err = resolveFaults(spec, nw, nil); err != nil {
		return nil, err
	}
	return r, nil
}

// resolveFaults builds the job's fault universe: inline list, or the
// model default, then sampling.
func resolveFaults(spec *JobSpec, nw *netlist.Network, m *ram.RAM) ([]fault.Fault, error) {
	var faults []fault.Fault
	switch {
	case spec.Faults != "":
		var err error
		faults, err = fault.ReadList(strings.NewReader(spec.Faults), nw)
		if err != nil {
			return nil, fmt.Errorf("faults: %w", err)
		}
	case spec.FaultModel == "paper" || (spec.FaultModel == "" && m != nil):
		if m == nil {
			return nil, fmt.Errorf("fault_model paper requires a built-in workload")
		}
		faults = bench.PaperFaults(m)
	default:
		faults = fault.NodeStuckFaults(nw, fault.Options{})
	}
	if k := spec.SampleEvery; k > 1 {
		sampled := make([]fault.Fault, 0, (len(faults)+k-1)/k)
		for i := 0; i < len(faults); i += k {
			sampled = append(sampled, faults[i])
		}
		faults = sampled
	}
	if len(faults) == 0 {
		return nil, fmt.Errorf("empty fault universe")
	}
	return faults, nil
}

func lookupNodes(nw *netlist.Network, names []string) ([]netlist.NodeID, error) {
	out := make([]netlist.NodeID, 0, len(names))
	for _, name := range names {
		id := nw.Lookup(strings.TrimSpace(name))
		if id == netlist.NoNode {
			return nil, fmt.Errorf("unknown observed node %q", name)
		}
		out = append(out, id)
	}
	return out, nil
}

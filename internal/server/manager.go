// Package server implements fmossimd, the concurrent campaign job
// server: a long-running HTTP/JSON service that accepts fault-campaign
// submissions, schedules them over a bounded pool of runner goroutines,
// shares one warm engine — read-only switchsim.Tables and recorded
// good-circuit trajectories — across jobs over the same circuit, and
// streams per-setting progress (coverage, live-fault counts, detection
// events) as NDJSON.
//
// The throughput argument is the paper's, lifted one level: just as the
// concurrent simulator amortizes the good circuit across the fault
// universe, the server amortizes trajectory recording and table
// construction across campaigns, so a burst of jobs over the RAM
// benchmarks pays the good-circuit cost once. Load shedding is explicit:
// at most MaxJobs campaigns run at a time, at most QueueDepth wait, and
// submissions beyond that are rejected with 429 and a Retry-After hint
// so the daemon degrades predictably under burst traffic.
//
// Results are bit-identical to the one-shot CLI path (cmd/fmossim in
// campaign mode): both funnel into campaign.Run, whose determinism
// contract is independent of sharding, worker count, and — by
// construction — of which jobs share cached state.
package server

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"fmossim/internal/campaign"
	"fmossim/internal/core"
)

// Config sizes the server.
type Config struct {
	// MaxJobs is the number of campaigns running concurrently (the
	// runner-pool width). Default 2.
	MaxJobs int
	// QueueDepth is the number of accepted-but-not-started jobs the
	// server holds before shedding load with 429. Default 16.
	QueueDepth int
	// RetryAfter is the hint returned with 429 responses. Default 1s.
	RetryAfter time.Duration
	// StreamInterval is the minimum spacing between consecutive snapshot
	// lines on an NDJSON stream (detection and terminal lines are never
	// delayed). Default 100ms.
	StreamInterval time.Duration
	// KeepTerminal bounds how many finished (done/failed/cancelled) jobs
	// the server retains for status queries: beyond it, the oldest
	// terminal jobs are evicted, so a long-running daemon's memory does
	// not grow with its job history. Default 64.
	KeepTerminal int
}

func (c Config) withDefaults() Config {
	if c.MaxJobs <= 0 {
		c.MaxJobs = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.StreamInterval <= 0 {
		c.StreamInterval = 100 * time.Millisecond
	}
	if c.KeepTerminal <= 0 {
		c.KeepTerminal = 64
	}
	return c
}

// ErrQueueFull is returned by Submit when both the runner pool and the
// queue are saturated; HTTP maps it to 429 with Retry-After.
var ErrQueueFull = errors.New("server: job queue full")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("server: shutting down")

// Manager owns the job table, the submission queue, and the runner pool.
type Manager struct {
	cfg   Config
	cache *cache

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu      sync.Mutex
	nonIdle sync.Cond // signaled when pending grows or the manager closes
	pending []*Job    // queued jobs, submission order; len bounded by QueueDepth
	jobs    map[string]*Job
	order   []string
	nextID  int
	closed  bool
}

// NewManager starts cfg.MaxJobs runner goroutines and returns the
// manager. Call Close to stop them.
func NewManager(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:    cfg,
		cache:  newCache(),
		ctx:    ctx,
		cancel: cancel,
		jobs:   map[string]*Job{},
	}
	m.nonIdle.L = &m.mu
	for i := 0; i < cfg.MaxJobs; i++ {
		m.wg.Add(1)
		go m.runner()
	}
	return m
}

// Config returns the effective (defaulted) configuration.
func (m *Manager) Config() Config { return m.cfg }

// Submit validates and enqueues a job. It returns ErrQueueFull when the
// pool and queue are saturated and ErrClosed during shutdown; any other
// error is a spec validation failure.
func (m *Manager) Submit(spec JobSpec) (*Job, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	if len(m.pending) >= m.cfg.QueueDepth {
		m.mu.Unlock()
		return nil, ErrQueueFull
	}
	m.nextID++
	job := newJob(fmt.Sprintf("job-%d", m.nextID), spec, m.ctx)
	m.pending = append(m.pending, job)
	m.jobs[job.ID] = job
	m.order = append(m.order, job.ID)
	m.nonIdle.Signal()
	m.mu.Unlock()
	return job, nil
}

// Cancel cancels a job by id: a queued job leaves the queue (freeing its
// slot) and turns terminal immediately; a running job's context is
// cancelled and its campaign stops cooperatively. Reports whether the
// job exists.
func (m *Manager) Cancel(id string) bool {
	m.mu.Lock()
	job, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return false
	}
	for i, p := range m.pending {
		if p == job {
			m.pending = append(m.pending[:i], m.pending[i+1:]...)
			break
		}
	}
	m.mu.Unlock()
	// Outside m.mu: finish publishes under the job lock.
	if job.Snapshot().State == StateQueued {
		job.finish(StateCancelled, "cancelled while queued", nil)
		m.pruneTerminal()
	}
	job.Cancel()
	return true
}

// Get returns a job by id.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// List returns snapshots of every known job in submission order.
func (m *Manager) List() []Snapshot {
	m.mu.Lock()
	jobs := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		if j, ok := m.jobs[id]; ok {
			jobs = append(jobs, j)
		}
	}
	m.mu.Unlock()
	out := make([]Snapshot, len(jobs))
	for i, j := range jobs {
		out[i] = j.Snapshot()
	}
	return out
}

// Remove deletes a terminal job from the table. It reports whether the
// job existed and was terminal (live jobs must be cancelled first).
func (m *Manager) Remove(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok || !j.Snapshot().State.Terminal() {
		return false
	}
	delete(m.jobs, id)
	for i, oid := range m.order {
		if oid == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	return true
}

// Close cancels every job, stops the runner pool, and waits for it to
// drain. Idempotent.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closed = true
	m.nonIdle.Broadcast()
	m.mu.Unlock()
	m.cancel() // cancels every job ctx (all derive from m.ctx)
	m.wg.Wait()
}

// runner is one worker of the bounded pool: it drains the pending queue,
// running one campaign at a time, until Close.
func (m *Manager) runner() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for len(m.pending) == 0 && !m.closed {
			m.nonIdle.Wait()
		}
		if len(m.pending) == 0 { // closed and drained
			m.mu.Unlock()
			return
		}
		job := m.pending[0]
		m.pending = m.pending[1:]
		m.mu.Unlock()
		if job.ctx.Err() != nil {
			job.finish(StateCancelled, "cancelled while queued", nil)
		} else {
			m.runJob(job)
		}
		m.pruneTerminal()
	}
}

// pruneTerminal evicts the oldest terminal jobs beyond Config.KeepTerminal
// so the daemon's memory is bounded by its concurrency and retention
// limits, not by its lifetime job count.
func (m *Manager) pruneTerminal() {
	m.mu.Lock()
	defer m.mu.Unlock()
	var terminal []string
	for _, id := range m.order {
		if j, ok := m.jobs[id]; ok && j.Snapshot().State.Terminal() {
			terminal = append(terminal, id)
		}
	}
	for len(terminal) > m.cfg.KeepTerminal {
		id := terminal[0]
		terminal = terminal[1:]
		delete(m.jobs, id)
		for i, oid := range m.order {
			if oid == id {
				m.order = append(m.order[:i], m.order[i+1:]...)
				break
			}
		}
	}
}

// runJob resolves and executes one campaign, publishing progress into the
// job as it streams from the shard pool.
func (m *Manager) runJob(job *Job) {
	job.setRunning()
	start := time.Now()

	wl, err := m.resolve(&job.Spec)
	if err != nil {
		job.finish(StateFailed, err.Error(), nil)
		return
	}
	if job.ctx.Err() != nil { // cancelled while resolving/cache-warming
		job.finish(StateCancelled, "cancelled", nil)
		return
	}
	job.publish(func() {
		job.numFaults = len(wl.faults)
		job.liveFaults = len(wl.faults)
	})

	shards := job.Spec.Shards
	if shards <= 0 {
		// Fair share: concurrent jobs split the machine instead of each
		// claiming all of it.
		shards = runtime.GOMAXPROCS(0) / m.cfg.MaxJobs
		if shards < 1 {
			shards = 1
		}
	}
	res, err := campaign.Run(job.ctx, wl.nw, wl.faults, wl.seq, campaign.Options{
		Sim: core.Options{
			Observe: wl.observe,
			Drop:    job.Spec.dropPolicy(),
			Workers: job.Spec.Workers,
		},
		BatchSize:      job.Spec.BatchSize,
		Shards:         shards,
		CoverageTarget: job.Spec.CoverageTarget,
		Recording:      wl.rec,
		Tables:         wl.tab,
		Progress:       job.onProgress,
	})
	switch {
	case err != nil && (errors.Is(err, context.Canceled) || job.ctx.Err() != nil):
		job.finish(StateCancelled, "cancelled", nil)
	case err != nil:
		job.finish(StateFailed, err.Error(), nil)
	default:
		job.finish(StateDone, "", buildResult(wl, res, job.Spec.IncludePerFault, time.Since(start)))
	}
}

// buildResult summarizes a finished campaign.
func buildResult(wl *resolved, res *campaign.Result, includePerFault bool, wall time.Duration) *Result {
	r := &Result{
		Coverage:       res.Coverage(),
		Detected:       res.Run.Detected,
		HardDetected:   res.Run.HardDetected,
		Oscillated:     res.Run.Oscillated,
		NumFaults:      res.Run.NumFaults,
		Batches:        res.Batches,
		BatchesRun:     res.BatchesRun,
		BatchesResumed: res.BatchesResumed,
		BatchesSkipped: res.BatchesSkipped,
		GoodWork:       res.Run.GoodWork,
		FaultWork:      res.Run.FaultWork,
		WallNS:         wall.Nanoseconds(),
	}
	if !includePerFault {
		return r
	}
	r.PerFault = make([]PerFault, len(res.PerFault))
	for fi := range res.PerFault {
		o := &res.PerFault[fi]
		pf := PerFault{
			Fault:      wl.faults[fi].Describe(wl.nw),
			Detected:   o.Detected,
			Oscillated: o.Oscillated,
			Skipped:    o.Skipped,
		}
		if o.Detected {
			pf.Pattern = o.Detection.Pattern
			pf.Setting = o.Detection.Setting
			pf.Output = wl.nw.Name(o.Detection.Output)
			pf.Good = o.Detection.Good.String()
			pf.Faulty = o.Detection.Faulty.String()
			pf.Hard = o.Detection.Hard
		}
		r.PerFault[fi] = pf
	}
	return r
}

// Job manager: the submission queue, the bounded runner pool, and
// terminal-job retention. Package documentation lives in doc.go.
package server

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"fmossim/internal/campaign"
	"fmossim/internal/core"
	"fmossim/internal/fault"
	"fmossim/internal/netlist"
)

// Config sizes the server.
type Config struct {
	// MaxJobs is the number of campaigns running concurrently (the
	// runner-pool width). Default 2.
	MaxJobs int
	// QueueDepth is the number of accepted-but-not-started jobs the
	// server holds before shedding load with 429. Default 16.
	QueueDepth int
	// RetryAfter is the hint returned with 429 responses. Default 1s.
	RetryAfter time.Duration
	// StreamInterval is the minimum spacing between consecutive snapshot
	// lines on an NDJSON stream (detection and terminal lines are never
	// delayed). Default 100ms.
	StreamInterval time.Duration
	// KeepTerminal bounds how many finished (done/failed/cancelled) jobs
	// the server retains for status queries: beyond it, the oldest
	// terminal jobs are evicted, so a long-running daemon's memory does
	// not grow with its job history. Default 64.
	KeepTerminal int
	// KeepRecordings bounds how many uploaded good-circuit recordings
	// (PUT /recordings/{fp}) the server retains, evicted oldest-first.
	// One recording per distinct circuit/sequence pair is typical, so a
	// small bound suffices. Default 8.
	KeepRecordings int
}

func (c Config) withDefaults() Config {
	if c.MaxJobs <= 0 {
		c.MaxJobs = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.StreamInterval <= 0 {
		c.StreamInterval = 100 * time.Millisecond
	}
	if c.KeepTerminal <= 0 {
		c.KeepTerminal = 64
	}
	if c.KeepRecordings <= 0 {
		c.KeepRecordings = 8
	}
	return c
}

// ErrQueueFull is returned by Submit when both the runner pool and the
// queue are saturated; HTTP maps it to 429 with Retry-After.
var ErrQueueFull = errors.New("server: job queue full")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("server: shutting down")

// Manager owns the job table, the submission queue, the runner pool, and
// the uploaded-recording store.
type Manager struct {
	cfg        Config
	cache      *cache
	recordings *recordingStore

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu      sync.Mutex
	nonIdle sync.Cond // signaled when pending grows or the manager closes
	pending []*Job    // queued jobs, submission order; len bounded by QueueDepth
	jobs    map[string]*Job
	order   []string
	nextID  int
	closed  bool
}

// NewManager starts cfg.MaxJobs runner goroutines and returns the
// manager. Call Close to stop them.
func NewManager(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:        cfg,
		cache:      newCache(),
		recordings: newRecordingStore(cfg.KeepRecordings),
		ctx:        ctx,
		cancel:     cancel,
		jobs:       map[string]*Job{},
	}
	m.nonIdle.L = &m.mu
	for i := 0; i < cfg.MaxJobs; i++ {
		m.wg.Add(1)
		go m.runner()
	}
	return m
}

// Config returns the effective (defaulted) configuration.
func (m *Manager) Config() Config { return m.cfg }

// Submit validates and enqueues a job. It returns ErrQueueFull when the
// pool and queue are saturated and ErrClosed during shutdown; any other
// error is a spec validation failure.
func (m *Manager) Submit(spec JobSpec) (*Job, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	if len(m.pending) >= m.cfg.QueueDepth {
		m.mu.Unlock()
		return nil, ErrQueueFull
	}
	m.nextID++
	job := newJob(fmt.Sprintf("job-%d", m.nextID), spec, m.ctx)
	m.pending = append(m.pending, job)
	m.jobs[job.ID] = job
	m.order = append(m.order, job.ID)
	m.nonIdle.Signal()
	m.mu.Unlock()
	return job, nil
}

// Cancel cancels a job by id: a queued job leaves the queue (freeing its
// slot) and turns terminal immediately; a running job's context is
// cancelled and its campaign stops cooperatively. Reports whether the
// job exists.
func (m *Manager) Cancel(id string) bool {
	m.mu.Lock()
	job, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return false
	}
	for i, p := range m.pending {
		if p == job {
			m.pending = append(m.pending[:i], m.pending[i+1:]...)
			break
		}
	}
	m.mu.Unlock()
	// Outside m.mu: finish publishes under the job lock.
	if job.Snapshot().State == StateQueued {
		job.finish(StateCancelled, "cancelled while queued", nil)
		m.pruneTerminal()
	}
	job.Cancel()
	return true
}

// Get returns a job by id.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// List returns snapshots of every known job in submission order.
func (m *Manager) List() []Snapshot {
	m.mu.Lock()
	jobs := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		if j, ok := m.jobs[id]; ok {
			jobs = append(jobs, j)
		}
	}
	m.mu.Unlock()
	out := make([]Snapshot, len(jobs))
	for i, j := range jobs {
		out[i] = j.Snapshot()
	}
	return out
}

// Remove deletes a terminal job from the table. It reports whether the
// job existed and was terminal (live jobs must be cancelled first).
func (m *Manager) Remove(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok || !j.Snapshot().State.Terminal() {
		return false
	}
	delete(m.jobs, id)
	for i, oid := range m.order {
		if oid == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	return true
}

// Close cancels every job, stops the runner pool, and waits for it to
// drain. Idempotent.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closed = true
	m.nonIdle.Broadcast()
	m.mu.Unlock()
	m.cancel() // cancels every job ctx (all derive from m.ctx)
	m.wg.Wait()
}

// runner is one worker of the bounded pool: it drains the pending queue,
// running one campaign at a time, until Close.
func (m *Manager) runner() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for len(m.pending) == 0 && !m.closed {
			m.nonIdle.Wait()
		}
		if len(m.pending) == 0 { // closed and drained
			m.mu.Unlock()
			return
		}
		job := m.pending[0]
		m.pending = m.pending[1:]
		m.mu.Unlock()
		if job.ctx.Err() != nil {
			job.finish(StateCancelled, "cancelled while queued", nil)
		} else {
			m.runJob(job)
		}
		m.pruneTerminal()
	}
}

// pruneTerminal evicts the oldest terminal jobs beyond Config.KeepTerminal
// so the daemon's memory is bounded by its concurrency and retention
// limits, not by its lifetime job count.
func (m *Manager) pruneTerminal() {
	m.mu.Lock()
	defer m.mu.Unlock()
	var terminal []string
	for _, id := range m.order {
		if j, ok := m.jobs[id]; ok && j.Snapshot().State.Terminal() {
			terminal = append(terminal, id)
		}
	}
	for len(terminal) > m.cfg.KeepTerminal {
		id := terminal[0]
		terminal = terminal[1:]
		delete(m.jobs, id)
		for i, oid := range m.order {
			if oid == id {
				m.order = append(m.order[:i], m.order[i+1:]...)
				break
			}
		}
	}
}

// runJob resolves and executes one campaign, publishing progress into the
// job as it streams from the shard pool.
func (m *Manager) runJob(job *Job) {
	job.setRunning()
	start := time.Now()

	wl, err := m.resolve(&job.Spec)
	if err != nil {
		job.finish(StateFailed, err.Error(), nil)
		return
	}
	if fp := job.Spec.RecordingFP; fp != "" {
		fp = strings.ToLower(fp) // the /recordings handlers store lowercase
		rec, ok := m.recordings.get(fp)
		if !ok {
			job.finish(StateFailed, fmt.Sprintf(
				"recording %s not found: upload it with PUT /recordings/%s first", fp, fp), nil)
			return
		}
		if err := rec.Validate(wl.Net, wl.Seq.NumSettings()); err != nil {
			job.finish(StateFailed, fmt.Sprintf("recording %s: %v", fp, err), nil)
			return
		}
		wl.Recording = rec
	}
	if job.ctx.Err() != nil { // cancelled while resolving/cache-warming
		job.finish(StateCancelled, "cancelled", nil)
		return
	}
	if job.Spec.IsShard() {
		m.runShard(job, wl, start)
		return
	}
	job.publish(func() {
		job.numFaults = len(wl.Faults)
		job.liveFaults = len(wl.Faults)
	})

	shards := job.Spec.Shards
	if shards <= 0 {
		shards = m.fairShare()
	}
	res, err := campaign.Run(job.ctx, wl.Net, wl.Faults, wl.Seq, campaign.Options{
		Sim: core.Options{
			Observe:       wl.Observe,
			Drop:          job.Spec.dropPolicy(),
			Workers:       job.Spec.Workers,
			Trim:          job.Spec.Trim,
			TrimProbation: job.Spec.TrimProbation,
		},
		BatchSize:      job.Spec.BatchSize,
		Shards:         shards,
		CoverageTarget: job.Spec.CoverageTarget,
		Recording:      wl.Recording,
		Tables:         wl.Tables,
		Progress:       job.onProgress,
	})
	switch {
	case err != nil && (errors.Is(err, context.Canceled) || job.ctx.Err() != nil):
		job.finish(StateCancelled, "cancelled", nil)
	case err != nil:
		job.finish(StateFailed, err.Error(), nil)
	default:
		job.finish(StateDone, "", buildResult(wl, res, job.Spec.IncludePerFault, time.Since(start)))
	}
}

// fairShare is the default parallelism of one job: concurrent jobs split
// the machine instead of each claiming all of it.
func (m *Manager) fairShare() int {
	n := runtime.GOMAXPROCS(0) / m.cfg.MaxJobs
	if n < 1 {
		n = 1
	}
	return n
}

// runShard executes a shard job: exactly one batch over the spec's fault
// window, replayed against the referenced (or cached, or freshly
// captured) good trajectory. Per-setting progress streams through the
// same snapshot/detection machinery as campaign jobs; detection indices
// in the stream are shard-relative (the coordinator offsets them by
// shard_lo into universe indices).
func (m *Manager) runShard(job *Job, wl *Workload, start time.Time) {
	lo, hi := job.Spec.ShardLo, job.Spec.ShardHi
	if hi > len(wl.Faults) {
		job.finish(StateFailed, fmt.Sprintf("shard window [%d,%d) out of range: universe has %d faults",
			lo, hi, len(wl.Faults)), nil)
		return
	}
	rec := wl.Recording
	if rec == nil {
		rec = core.Record(wl.Net, wl.Seq, core.Options{})
	}
	width := hi - lo
	job.publish(func() {
		job.numFaults = width
		job.liveFaults = width
		job.batches = 1
	})
	opts := core.Options{
		Observe:       wl.Observe,
		Drop:          job.Spec.dropPolicy(),
		Workers:       job.Spec.Workers,
		Trim:          job.Spec.Trim,
		TrimProbation: job.Spec.TrimProbation,
	}
	if opts.Workers <= 0 {
		opts.Workers = m.fairShare()
	}
	opts.OnObserve = func(bp core.BatchProgress) {
		ev := campaign.ProgressEvent{
			Pattern: bp.Pattern, Setting: bp.Setting,
			ActiveCircuits: bp.ActiveCircuits, LiveFaults: bp.LiveFaults,
			Detected: bp.DetectedTotal, NumFaults: width, Batches: 1,
		}
		if len(bp.Detected) > 0 {
			ev.NewlyDetected = append([]int(nil), bp.Detected...)
		}
		job.onProgress(ev)
	}
	br, err := core.RunBatch(job.ctx, wl.Tables, wl.Faults[lo:hi], rec, wl.Seq, opts)
	switch {
	case err != nil && (errors.Is(err, context.Canceled) || job.ctx.Err() != nil):
		job.finish(StateCancelled, "cancelled", nil)
	case err != nil:
		job.finish(StateFailed, err.Error(), nil)
	default:
		job.finish(StateDone, "", buildShardResult(wl, br, lo, &job.Spec, time.Since(start)))
	}
}

// buildShardResult summarizes a finished shard job. Coverage is relative
// to the shard width; the good-circuit side (work, time) is owned by the
// coordinator's recording and reported as zero here.
func buildShardResult(wl *Workload, br *core.BatchResult, lo int, spec *JobSpec, wall time.Duration) *Result {
	r := &Result{
		Detected:   br.DetectedCount(),
		NumFaults:  br.NumFaults,
		Batches:    1,
		BatchesRun: 1,
		WallNS:     wall.Nanoseconds(),
	}
	if br.NumFaults > 0 {
		r.Coverage = float64(r.Detected) / float64(br.NumFaults)
	}
	for i := range br.Detected {
		if br.Detected[i] && br.Detections[i].Hard {
			r.HardDetected++
		}
		if br.Oscillated[i] {
			r.Oscillated++
		}
	}
	for _, ps := range br.PerSetting {
		r.FaultWork += ps.FaultWork
	}
	if spec.IncludeBatch {
		r.Batch = br
	}
	if !spec.IncludePerFault {
		return r
	}
	r.PerFault = make([]PerFault, br.NumFaults)
	for fi := 0; fi < br.NumFaults; fi++ {
		r.PerFault[fi] = perFaultRow(wl.Net, wl.Faults[lo+fi],
			br.Detected[fi], br.Oscillated[fi], false, br.Detections[fi])
	}
	return r
}

// perFaultRow renders one fault's outcome as the wire-format row shared
// by campaign and shard results.
func perFaultRow(nw *netlist.Network, f fault.Fault, detected, oscillated, skipped bool, d core.Detection) PerFault {
	pf := PerFault{
		Fault:      f.Describe(nw),
		Detected:   detected,
		Oscillated: oscillated,
		Skipped:    skipped,
	}
	if detected {
		pf.Pattern = d.Pattern
		pf.Setting = d.Setting
		pf.Output = nw.Name(d.Output)
		pf.Good = d.Good.String()
		pf.Faulty = d.Faulty.String()
		pf.Hard = d.Hard
	}
	return pf
}

// buildResult summarizes a finished campaign.
func buildResult(wl *Workload, res *campaign.Result, includePerFault bool, wall time.Duration) *Result {
	r := &Result{
		Coverage:       res.Coverage(),
		Detected:       res.Run.Detected,
		HardDetected:   res.Run.HardDetected,
		Oscillated:     res.Run.Oscillated,
		NumFaults:      res.Run.NumFaults,
		Batches:        res.Batches,
		BatchesRun:     res.BatchesRun,
		BatchesResumed: res.BatchesResumed,
		BatchesSkipped: res.BatchesSkipped,
		GoodWork:       res.Run.GoodWork,
		FaultWork:      res.Run.FaultWork,
		WallNS:         wall.Nanoseconds(),
	}
	if !includePerFault {
		return r
	}
	r.PerFault = make([]PerFault, len(res.PerFault))
	for fi := range res.PerFault {
		o := &res.PerFault[fi]
		r.PerFault[fi] = perFaultRow(wl.Net, wl.Faults[fi],
			o.Detected, o.Oscillated, o.Skipped, o.Detection)
	}
	return r
}

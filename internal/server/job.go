// Job lifecycle: the state machine a submission moves through, the
// progress snapshot it publishes, and the append-only detection log
// streaming subscribers replay.
package server

import (
	"context"
	"sync"
	"time"

	"fmossim/internal/campaign"
	"fmossim/internal/core"
)

// State is a job's lifecycle state.
type State string

// Job states. Queued and Running are live; the rest are terminal.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Snapshot is a job's point-in-time progress view: what GET /jobs/{id}
// returns and what the NDJSON stream emits between detections. Within
// one job the Detected count, Coverage, and BatchesDone are monotonically
// non-decreasing across snapshots.
type Snapshot struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	Error string `json:"error,omitempty"`

	Batches     int     `json:"batches"`
	BatchesDone int     `json:"batches_done"`
	NumFaults   int     `json:"num_faults"`
	Detected    int     `json:"detected"`
	Coverage    float64 `json:"coverage"`
	// LiveFaults is the most recently reporting batch's live count (an
	// activity indicator, not a global aggregate).
	LiveFaults int `json:"live_faults"`
	// Events counts progress events folded into this snapshot.
	Events int64 `json:"events"`

	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
}

// DetectionGroup is one observation's worth of detection events: the
// faults first detected at one (batch, pattern, setting) observation.
type DetectionGroup struct {
	Batch   int   `json:"batch"`
	Pattern int   `json:"pattern"`
	Setting int   `json:"setting"`
	Faults  []int `json:"faults"`
}

// PerFault is one fault's outcome in a job result.
type PerFault struct {
	Fault      string `json:"fault"`
	Detected   bool   `json:"detected"`
	Pattern    int    `json:"pattern,omitempty"`
	Setting    int    `json:"setting,omitempty"`
	Output     string `json:"output,omitempty"`
	Good       string `json:"good,omitempty"`
	Faulty     string `json:"faulty,omitempty"`
	Hard       bool   `json:"hard,omitempty"`
	Oscillated bool   `json:"oscillated,omitempty"`
	Skipped    bool   `json:"skipped,omitempty"`
}

// Result is a finished job's summary (plus the per-fault table when the
// spec asked for it).
type Result struct {
	Coverage       float64    `json:"coverage"`
	Detected       int        `json:"detected"`
	HardDetected   int        `json:"hard_detected"`
	Oscillated     int        `json:"oscillated"`
	NumFaults      int        `json:"num_faults"`
	Batches        int        `json:"batches"`
	BatchesRun     int        `json:"batches_run"`
	BatchesResumed int        `json:"batches_resumed"`
	BatchesSkipped int        `json:"batches_skipped"`
	GoodWork       int64      `json:"good_work"`
	FaultWork      int64      `json:"fault_work"`
	WallNS         int64      `json:"wall_ns"`
	PerFault       []PerFault `json:"per_fault,omitempty"`
	// Batch is a shard job's raw per-batch result (present only when the
	// spec set include_batch): what a distributed coordinator merges at
	// setting granularity via campaign.Merge.
	Batch *core.BatchResult `json:"batch,omitempty"`
}

// Job is one submitted campaign.
type Job struct {
	ID   string
	Spec JobSpec

	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	state     State
	errMsg    string
	submitted time.Time
	started   time.Time
	finished  time.Time

	events      int64
	batches     int
	batchesDone int
	numFaults   int
	detected    int
	liveFaults  int
	detlog      []DetectionGroup
	result      *Result

	// notify is closed and replaced on every publication: subscribers
	// re-read the snapshot (and the detection log past their cursor)
	// each time the channel they hold closes.
	notify chan struct{}
}

func newJob(id string, spec JobSpec, parent context.Context) *Job {
	ctx, cancel := context.WithCancel(parent)
	return &Job{
		ID: id, Spec: spec,
		ctx: ctx, cancel: cancel,
		state:     StateQueued,
		submitted: time.Now(),
		notify:    make(chan struct{}),
	}
}

// publish runs f under the job lock and wakes every subscriber.
func (j *Job) publish(f func()) {
	j.mu.Lock()
	f()
	j.events++
	close(j.notify)
	j.notify = make(chan struct{})
	j.mu.Unlock()
}

// onProgress folds one campaign progress event into the snapshot.
// Events arrive concurrently from the shard goroutines, so monotonic
// counters fold with max: a stale event never rolls coverage back.
func (j *Job) onProgress(ev campaign.ProgressEvent) {
	j.publish(func() {
		if ev.Detected > j.detected {
			j.detected = ev.Detected
		}
		if ev.BatchesDone > j.batchesDone {
			j.batchesDone = ev.BatchesDone
		}
		j.batches = ev.Batches
		j.numFaults = ev.NumFaults
		j.liveFaults = ev.LiveFaults
		if len(ev.NewlyDetected) > 0 {
			j.detlog = append(j.detlog, DetectionGroup{
				Batch: ev.Batch, Pattern: ev.Pattern, Setting: ev.Setting,
				Faults: ev.NewlyDetected,
			})
		}
	})
}

func (j *Job) setRunning() {
	j.publish(func() {
		if j.state.Terminal() { // lost the race with a cancellation
			return
		}
		j.state = StateRunning
		j.started = time.Now()
	})
}

// finish moves the job to a terminal state exactly once.
func (j *Job) finish(state State, errMsg string, res *Result) {
	j.publish(func() {
		if j.state.Terminal() {
			return
		}
		j.state = state
		j.errMsg = errMsg
		j.finished = time.Now()
		j.result = res
		if res != nil {
			j.detected = res.Detected
			j.batchesDone = res.Batches - res.BatchesSkipped
			j.batches = res.Batches
			j.numFaults = res.NumFaults
		}
	})
	j.cancel()
}

// Snapshot returns the current progress view.
func (j *Job) Snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snapshotLocked()
}

func (j *Job) snapshotLocked() Snapshot {
	s := Snapshot{
		ID: j.ID, State: j.state, Error: j.errMsg,
		Batches: j.batches, BatchesDone: j.batchesDone,
		NumFaults: j.numFaults, Detected: j.detected,
		LiveFaults: j.liveFaults, Events: j.events,
		SubmittedAt: j.submitted,
	}
	if j.numFaults > 0 {
		s.Coverage = float64(j.detected) / float64(j.numFaults)
	}
	if !j.started.IsZero() {
		t := j.started
		s.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		s.FinishedAt = &t
	}
	return s
}

// Result returns the terminal result (nil while the job is live or when
// it failed).
func (j *Job) Result() *Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// Cancel requests cooperative cancellation. Safe to call in any state.
func (j *Job) Cancel() { j.cancel() }

// pending peeks (without consuming anything) at whether the job has
// detection groups past cursor or is terminal, and returns the current
// notification channel. Streaming handlers use it to cut their pacing
// wait short for events that must not be delayed.
func (j *Job) pending(cursor int) (detections, terminal bool, notify <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return cursor < len(j.detlog), j.state.Terminal(), j.notify
}

// observe returns, atomically: the current snapshot, the detection groups
// appended since cursor (and the advanced cursor), and the channel that
// closes on the next publication. Streaming handlers loop on it.
func (j *Job) observe(cursor int) (Snapshot, []DetectionGroup, int, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var groups []DetectionGroup
	if cursor < len(j.detlog) {
		groups = j.detlog[cursor:len(j.detlog):len(j.detlog)]
		cursor = len(j.detlog)
	}
	return j.snapshotLocked(), groups, cursor, j.notify
}

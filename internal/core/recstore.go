package core

import (
	"fmossim/internal/logic"
	"fmossim/internal/netlist"
)

// recStore is a faulty circuit's divergence-record store: the nodes where
// the circuit's state differs from the good circuit, with the diverged
// values, kept as parallel sorted slices. Divergence sets are small and
// churn constantly, so a cache-friendly sorted slice with binary search
// beats a hash map on both lookup and iteration, and iteration order is
// deterministic (ascending node id) for free.
type recStore struct {
	nodes []netlist.NodeID
	vals  []logic.Value
}

// find returns the index of n and whether it is present.
func (r *recStore) find(n netlist.NodeID) (int, bool) {
	lo, hi := 0, len(r.nodes)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.nodes[mid] < n {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(r.nodes) && r.nodes[lo] == n
}

// get returns the recorded value at n, if present.
func (r *recStore) get(n netlist.NodeID) (logic.Value, bool) {
	if i, ok := r.find(n); ok {
		return r.vals[i], true
	}
	return 0, false
}

// insertAt inserts (n, v) at index i, keeping the store sorted.
func (r *recStore) insertAt(i int, n netlist.NodeID, v logic.Value) {
	r.nodes = append(r.nodes, 0)
	copy(r.nodes[i+1:], r.nodes[i:])
	r.nodes[i] = n
	r.vals = append(r.vals, 0)
	copy(r.vals[i+1:], r.vals[i:])
	r.vals[i] = v
}

// deleteAt removes the record at index i.
func (r *recStore) deleteAt(i int) {
	r.nodes = append(r.nodes[:i], r.nodes[i+1:]...)
	r.vals = append(r.vals[:i], r.vals[i+1:]...)
}

// size returns the number of records.
func (r *recStore) size() int { return len(r.nodes) }

// release drops the store's backing memory (fault dropping).
func (r *recStore) release() { r.nodes, r.vals = nil, nil }

// interestEntry is one refcounted (circuit, count) pair of a node's
// interest list.
type interestEntry struct {
	ci    CircuitID
	count int32
}

// interestList is a node's interest index: the circuits whose
// re-simulation triggers include the node, refcounted, sorted by circuit
// id. The flat layout makes the scheduler's per-touched-node scan a
// linear walk instead of a map iteration.
type interestList []interestEntry

// find returns the index of ci and whether it is present.
func (l interestList) find(ci CircuitID) (int, bool) {
	lo, hi := 0, len(l)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if l[mid].ci < ci {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(l) && l[lo].ci == ci
}

// inc adds one reference to ci, inserting it if absent.
func (l interestList) inc(ci CircuitID) interestList {
	i, ok := l.find(ci)
	if ok {
		l[i].count++
		return l
	}
	l = append(l, interestEntry{})
	copy(l[i+1:], l[i:])
	l[i] = interestEntry{ci: ci, count: 1}
	return l
}

// dec removes one reference to ci, deleting the entry at zero.
func (l interestList) dec(ci CircuitID) interestList {
	i, ok := l.find(ci)
	if !ok {
		return l
	}
	if l[i].count <= 1 {
		return append(l[:i], l[i+1:]...)
	}
	l[i].count--
	return l
}

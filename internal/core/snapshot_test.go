package core

import (
	"encoding/json"
	"testing"

	"fmossim/internal/fault"
	"fmossim/internal/march"
	"fmossim/internal/netlist"
	"fmossim/internal/ram"
	"fmossim/internal/switchsim"
)

// TestSnapshotResumeByteIdentical verifies mid-sequence batch resume: a
// replay restarted from any captured snapshot (after a JSON round-trip,
// as a campaign checkpoint would store it) produces a BatchResult
// byte-identical to the uninterrupted run — with trimming off and on,
// and across worker counts.
func TestSnapshotResumeByteIdentical(t *testing.T) {
	m := ram.RAM64()
	seq := march.Sequence1(m)
	base := Options{Observe: []netlist.NodeID{m.DataOut}, SnapshotEvery: 7}
	rec := Record(m.Net, seq, base)
	tab := switchsim.NewTables(m.Net)

	frames := 0
	for i := range rec.Steps {
		if rec.Steps[i].Snapshot != nil {
			frames++
		}
	}
	if frames == 0 {
		t.Fatal("recording captured no snapshot frames")
	}

	faults := fault.NodeStuckFaults(m.Net, fault.Options{})
	for _, trim := range []bool{false, true} {
		opts := base
		opts.Workers = 2
		opts.Trim = trim
		opts.TrimProbation = 4

		var snaps []*BatchSnapshot
		full := opts
		full.OnSnapshot = func(s *BatchSnapshot) { snaps = append(snaps, s) }
		want, err := RunBatch(nil, tab, faults, rec, seq, full)
		if err != nil {
			t.Fatal(err)
		}
		if len(snaps) != frames {
			t.Fatalf("trim=%v: captured %d snapshots, recording has %d frames", trim, len(snaps), frames)
		}
		jWant := mustJSON(t, want)

		// Resume from the first, a middle, and the last snapshot.
		for _, si := range []int{0, len(snaps) / 2, len(snaps) - 1} {
			bs, err := json.Marshal(snaps[si])
			if err != nil {
				t.Fatal(err)
			}
			snap := &BatchSnapshot{}
			if err := json.Unmarshal(bs, snap); err != nil {
				t.Fatal(err)
			}
			batch, err := NewFaultBatch(tab, faults, opts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := batch.RunRecordingFrom(nil, rec, seq, snap)
			if err != nil {
				t.Fatalf("trim=%v resume from snapshot %d: %v", trim, si, err)
			}
			if err := batch.CheckInvariants(); err != nil {
				t.Fatalf("trim=%v resume from snapshot %d: invariants: %v", trim, si, err)
			}
			if jGot := mustJSON(t, got); string(jGot) != string(jWant) {
				t.Fatalf("trim=%v: resume from snapshot %d (step %d) differs from uninterrupted run",
					trim, si, snap.Step)
			}
		}
	}

	// A snapshot resumed against a recording without frames must fail
	// with a clear error, not garbage results.
	bare := Record(m.Net, seq, Options{Observe: base.Observe})
	var snap *BatchSnapshot
	capture := base
	capture.OnSnapshot = func(s *BatchSnapshot) {
		if snap == nil {
			snap = s
		}
	}
	if _, err := RunBatch(nil, tab, faults, rec, seq, capture); err != nil {
		t.Fatal(err)
	}
	if _, err := RunBatchFrom(nil, tab, faults, bare, seq, snap, base); err == nil {
		t.Fatal("resume against a frameless recording succeeded; want an error")
	}
}

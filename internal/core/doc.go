// Package core implements FMOSSIM's concurrent switch-level fault
// simulation algorithm: the paper's primary contribution.
//
// The good circuit (id 0) is simulated in its entirety. For each faulty
// circuit, the simulator keeps only divergence records ⟨circuit, state⟩ on
// the nodes whose state differs from the good circuit, plus the fault pin
// itself. Per input setting, the good circuit is simulated first; the
// activity it generates — together with the input changes — determines
// which faulty circuits must be re-simulated ("events are scheduled on a
// circuit-by-circuit basis"). Each activated faulty circuit is then
// simulated separately by materializing its view (good state overlaid with
// its records and fault), settling only from its perturbed nodes, and
// diffing the touched region back into records. This exploits the
// data-dependent locality of each circuit individually, which is the
// paper's key adaptation of concurrent simulation to the switch level,
// where logic-element boundaries (transistor vicinities) differ between
// the good and faulty circuits.
//
// A faulty circuit is activated when the good circuit's activity touches
// its interest set: its divergence records, the channel terminals of
// transistors whose conduction in the faulty circuit differs from the good
// circuit (stuck transistors, transistors gated by divergent or faulted
// nodes), and the neighborhood of faulted nodes. The per-node interest
// index plays the role of the paper's per-node state lists sorted by
// circuit id with shadow pointers: it makes "which circuits care about
// this node" an O(listeners) query.
//
// Whenever a faulty circuit's observed output differs from the good
// circuit's, the fault is detected and the circuit is dropped: its records
// are purged and it is never simulated again.
//
// # Producer/consumer split and the determinism guarantee
//
// The package is split along the producer/consumer seam: a goodRunner
// simulates the fault-free circuit and emits one switchsim.StepTrace per
// step (good.go); a FaultBatch consumes step traces and executes an
// arbitrary slice of the fault universe against them (batch.go). The
// Simulator wires one producer to one batch covering the whole universe —
// the classic monolithic configuration. Record captures the producer's
// traces as a switchsim.Recording, against which independent batches
// replay without a good-circuit solver (RunBatch; see internal/campaign
// for the sharded engine built on top).
//
// The replay path is deterministic by construction: a batch's results
// depend only on the recording and the batch's own fault slice. Within a
// batch, activated circuits are executed by a worker pool whose
// divergence-record write-back is merged in ascending circuit-id order,
// so results are bit-identical for every Options.Workers value; across
// batches, any partition of the fault universe replayed against the same
// recording merges (at setting granularity) to the monolithic result.
//
// # Word-packed lanes
//
// Inside a batch, faulty circuits are packed into 64-bit lane words
// (Options.LaneWidth circuits per word, up to 64): circuit ci occupies
// bit (ci-1)%laneWidth of word (ci-1)/laneWidth. The packing drives
// three word-wide structures — per-node interest masks answering "which
// circuits care about this node" with popcounts instead of list walks, a
// per-setting switchsim.ReplayIndex whose static-divergence flag closure
// is built once per word and shared by every circuit in it, and packed
// divergence-record rows (two-plane ternary values, switchsim.LanePlanes)
// that make the post-settle diff and Observe comparison word-wide.
// Retiring a detected circuit clears its lane bit from each row it
// occupies (O(records), no per-node list surgery). All of it is pure
// indexing: lane width changes how circuits are grouped, never what any
// circuit computes, so BatchResult is byte-identical at every
// Options.LaneWidth (TestBatchLaneWidthInvariance).
// Recordings carry a fingerprint (network shape + setting count) that
// RunBatch validates before replaying. Cancellation (the RunBatch
// context) and progress reporting (Options.OnObserve) never affect
// results — a cancelled replay returns an error, not a partial result.
package core

// FaultBatch: the faulty-circuit consumer half of the simulator.
//
// A batch owns an arbitrary slice of the fault universe and executes it
// against a stream of good-circuit step traces. It never runs the good
// solver itself: everything it needs per step — input deltas, the changed
// and explored sets, the settle trajectory — arrives in the trace, either
// borrowed live from a goodRunner (the monolithic Simulator) or replayed
// from a captured switchsim.Recording (the campaign engine). Per-fault
// memory is the sparse divergence store only; the dense per-node scratch
// the diff pass needs is pooled per worker, so a batch's footprint scales
// with its width (workers × nodes + records), never with the size of the
// whole fault universe.
package core

import (
	"context"
	"fmt"
	"math/bits"
	"runtime"
	"sort"
	"time"

	"fmossim/internal/fault"
	"fmossim/internal/logic"
	"fmossim/internal/netlist"
	"fmossim/internal/switchsim"
)

// FaultBatch executes one slice of the fault universe against good-circuit
// step traces. Construct with NewFaultBatch (replay mode: the batch owns a
// good-state mirror maintained from trace deltas) or internally via
// newBatch sharing a live producer's circuit.
type FaultBatch struct {
	tab  *switchsim.Tables
	nw   *netlist.Network
	opts Options

	// good is the post-step good-circuit state the diff pass compares
	// against: the producer's circuit in live mode (shared, already
	// settled when Step runs), or an owned mirror advanced from trace
	// deltas in replay mode.
	good     *switchsim.Circuit
	ownsGood bool
	// prev holds the good circuit's pre-step state: faulty circuits are
	// materialized from it so their settling starts from their own
	// previous steady state. It is advanced by delta application at the
	// end of each step, never by full copies.
	prev *switchsim.Circuit

	// workers execute activated faulty circuits; each owns a scratch
	// circuit (a live mirror of prev, patched and reverted per circuit by
	// an undo log) and a private solver. workers[0] doubles as the inline
	// path when parallel dispatch isn't worthwhile.
	workers []*faultWorker

	faults []*faultState
	live   int // undropped circuits, maintained on drop (O(1) queries)

	// Lane packing: circuit ci occupies bit (ci-1)%laneWidth of lane word
	// (ci-1)/laneWidth. words is the per-node row stride of the packed
	// planes below. laneWidth < 64 leaves the top bits of every word
	// unused; it exists so tests and benches can vary occupancy without
	// changing results.
	laneWidth int
	words     int

	// interest[n] refcounts the circuits whose re-simulation triggers
	// include node n; interestMask mirrors it as word-packed per-node
	// rows (bit set ⟺ count > 0). The mask doubles as the static
	// divergence rows the per-setting ReplayIndex is built from, and
	// interestNZ[n] counts its nonzero words (the index build and the
	// scheduler skip all-zero rows with one load).
	interest     []interestList
	interestMask []uint64
	interestNZ   []int32

	// recRows[recRowIdx[n]] is node n's packed record row (lazily
	// allocated; recRowIdx[n] < 0 until the first record lands on n):
	// per lane word, a membership mask of the circuits holding a
	// divergence record at n and the two-plane encoding of their recorded
	// values — the paper's per-node state lists, word-packed (the good
	// circuit's entry is implicit: it is the good state itself).
	recRowIdx []int32
	recRows   [][]laneCell

	// ix is the per-setting trajectory index shared by every activated
	// lane (built once per Step from interestMask; read-only during the
	// parallel fan-out).
	ix *switchsim.ReplayIndex

	// Scratch for per-setting scheduling.
	touchStamp []uint32
	touchEpoch uint32
	touched    []netlist.NodeID
	inputStamp []uint32
	inputEpoch uint32

	// Per-setting scheduling scratch: the word-wide activation
	// accumulator and the reused active list / parallel result buffers.
	activeWords []uint64
	active      []CircuitID
	results     []stepResult
	detBuf      []int

	// settingBuf is the reusable reduced setting rebuilt per step from
	// the trace's input changes; allNodes caches the storage-node list
	// the initialization step perturbs.
	settingBuf switchsim.Setting
	allNodes   []netlist.NodeID

	// deltaLog accumulates the mirror deltas (changed inputs + changed
	// storage nodes, post-step values) the worker scratch mirrors sync
	// from lazily, each on its own goroutine (see faultWorker.catchUp);
	// trimDeltaLog bounds it.
	deltaLog []switchsim.Change

	started    bool // the initialization trace has been consumed
	patternIdx int
	settingIdx int

	// retired counts circuits dropped so far; Step reports the delta
	// since the previous Step (the drops of the interleaved observation).
	retired     int
	lastRetired int

	// Redundancy trimming (Options.Trim, see trim.go): the candidate
	// class representatives, the probation window and the settings run so
	// far, and the work credited to collapsed members (their
	// representative's per-step work, fanned out so totals stay
	// byte-identical to the untrimmed run).
	classReps    []int
	classPending bool // candidates exist and probation has not ended
	anyCollapsed bool
	lanesFreed   int
	probation    int
	settingsRun  int
	creditWork   switchsim.Work
}

// laneCell is one lane word of a node's packed record row: the membership
// mask of circuits holding a divergence record at the node, and the
// two-plane ternary encoding of their recorded values (non-member lanes
// hold the zero encoding).
type laneCell struct {
	member uint64
	pl     switchsim.LanePlanes
}

// lane returns circuit ci's lane coordinates in the packed planes.
func (b *FaultBatch) lane(ci CircuitID) (word int, bit uint) {
	fi := int(ci) - 1
	return fi / b.laneWidth, uint(fi % b.laneWidth)
}

// NewFaultBatch builds a replay-mode consumer over a shared Tables: the
// batch owns its good-state mirror and is driven entirely by recorded
// traces (RunRecording), so campaigns construct one per fault shard with
// no good-circuit solver at all. Fault insertion happens here, against the
// reset state: defects are present from power-on.
func NewFaultBatch(tab *switchsim.Tables, faults []fault.Fault, opts Options) (*FaultBatch, error) {
	return newBatch(tab, nil, faults, opts)
}

// newBatch builds the consumer. good is the post-step good-state source to
// share (live mode; it must still hold the reset state), or nil to create
// an owned mirror (replay mode).
func newBatch(tab *switchsim.Tables, good *switchsim.Circuit, faults []fault.Fault, opts Options) (*FaultBatch, error) {
	nw := tab.Net
	if len(opts.Observe) == 0 {
		return nil, fmt.Errorf("core: no observed outputs configured")
	}
	for _, o := range opts.Observe {
		if o < 0 || int(o) >= nw.NumNodes() {
			return nil, fmt.Errorf("core: observed node %d out of range", o)
		}
	}
	laneWidth := opts.LaneWidth
	if laneWidth == 0 {
		laneWidth = 64
	}
	if laneWidth < 1 || laneWidth > 64 {
		return nil, fmt.Errorf("core: LaneWidth %d out of range [1,64]", opts.LaneWidth)
	}
	words := (len(faults) + laneWidth - 1) / laneWidth
	b := &FaultBatch{
		tab:          tab,
		nw:           nw,
		opts:         opts,
		good:         good,
		prev:         switchsim.NewCircuit(tab),
		laneWidth:    laneWidth,
		words:        words,
		interest:     make([]interestList, nw.NumNodes()),
		interestMask: make([]uint64, nw.NumNodes()*words),
		interestNZ:   make([]int32, nw.NumNodes()),
		recRowIdx:    make([]int32, nw.NumNodes()),
		ix:           switchsim.NewReplayIndex(tab),
		touchStamp:   make([]uint32, nw.NumNodes()),
		inputStamp:   make([]uint32, nw.NumNodes()),
		activeWords:  make([]uint64, words),
	}
	for i := range b.recRowIdx {
		b.recRowIdx[i] = -1
	}
	if good == nil {
		b.good = switchsim.NewCircuit(tab)
		b.ownsGood = true
	}

	nWorkers := opts.Workers
	if nWorkers <= 0 {
		nWorkers = runtime.GOMAXPROCS(0)
	}
	for i := 0; i < nWorkers; i++ {
		b.workers = append(b.workers, newFaultWorker(b))
	}

	for _, f := range faults {
		b.faults = append(b.faults, &faultState{f: f, sites: siteSet(nw, f), repFi: -1})
	}
	b.live = len(b.faults)
	if opts.Trim {
		b.probation = opts.TrimProbation
		if b.probation <= 0 {
			b.probation = DefaultTrimProbation
		}
		b.groupClasses()
	}

	// Register static interest and record each fault's immediate (reset
	// state) divergence, all before initialization.
	for fi, fs := range b.faults {
		ci := CircuitID(fi + 1)
		for _, n := range fs.sites {
			b.incInterest(n, ci)
		}
		b.insertFault(ci)
	}
	return b, nil
}

// siteSet computes the static interest sites of a fault: the storage
// nodes where the faulty circuit's response can deviate from the good
// circuit's regardless of current divergence.
//
// For a fault on a storage node, the node itself suffices as the channel
// trigger: whenever the good circuit's activity reaches the node's
// electrical neighborhood, the node is inside the explored vicinity (a
// vicinity contains every storage node reachable through conducting
// transistors, and a non-conducting transistor isolates the node in both
// circuits identically). A fault on an *input* node is different: input
// nodes are never members of vicinities, so the fault's conducting
// neighborhood must be registered explicitly — this is what makes a
// frozen clock line expensive (its interest spans every clocked element,
// the paper's head-phase behavior) while a stuck memory bit stays cheap.
func siteSet(nw *netlist.Network, f fault.Fault) []netlist.NodeID {
	sites := f.Sites(nw)
	if f.Kind.IsNodeFault() && nw.Node(f.Node).Kind == netlist.Input {
		seen := make(map[netlist.NodeID]bool, len(sites)+4)
		for _, n := range sites {
			seen[n] = true
		}
		for _, t := range nw.Channel(f.Node) {
			o := nw.Transistor(t).Other(f.Node)
			if nw.Node(o).Kind != netlist.Input && !seen[o] {
				seen[o] = true
				sites = append(sites, o)
			}
		}
		sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	}
	return sites
}

// insertFault records the immediate divergence a fault forces before any
// settling: a forced node whose pinned value differs from the good
// circuit's reset value. Transistor pins change no node values by
// themselves, so they create no insertion records; their effects appear
// during the initialization settle, which runs as a regular concurrent
// step so that fault insertion happens *before* initialization — a
// manufacturing defect is present from power-on, exactly as in the serial
// reference simulation.
func (b *FaultBatch) insertFault(ci CircuitID) {
	w := b.workers[0]
	w.ops = w.ops[:0]
	lo, hi := w.insertFault(ci)
	b.applyOps(ci, w.ops[lo:hi], false)
}

// NumFaults returns the number of faults in the batch.
func (b *FaultBatch) NumFaults() int { return len(b.faults) }

// Fault returns the fault at batch index fi.
func (b *FaultBatch) Fault(fi int) fault.Fault { return b.faults[fi].f }

// Detected reports whether fault fi has been detected, with details.
func (b *FaultBatch) Detected(fi int) (Detection, bool) {
	return b.faults[fi].det, b.faults[fi].detected
}

// Oscillated reports whether fault fi's circuit ever hit the round limit.
func (b *FaultBatch) Oscillated(fi int) bool { return b.resolveFault(fi).oscillated }

// Live returns the number of undropped circuits, O(1).
func (b *FaultBatch) Live() int { return b.live }

// Records returns a copy of the divergence records of fault fi (a
// collapsed class member reads its representative's).
func (b *FaultBatch) Records(fi int) map[netlist.NodeID]logic.Value {
	recs := &b.resolveFault(fi).recs
	out := make(map[netlist.NodeID]logic.Value, recs.size())
	for i, n := range recs.nodes {
		out[n] = recs.vals[i]
	}
	return out
}

// FaultValue returns the state of node n in faulty circuit fi: the
// divergence record if present, the good-circuit state otherwise.
func (b *FaultBatch) FaultValue(fi int, n netlist.NodeID) logic.Value {
	if v, ok := b.resolveFault(fi).recs.get(n); ok {
		return v
	}
	return b.good.Value(n)
}

// BeginPattern resets the per-pattern setting counter; EndPattern advances
// the pattern counter. Drivers bracket each pattern's settings with them
// so Detection coordinates match across drivers.
func (b *FaultBatch) BeginPattern() { b.settingIdx = 0 }

// EndPattern advances to the next pattern.
func (b *FaultBatch) EndPattern() { b.patternIdx++ }

// touch stamps node n into the touched region of the current setting.
func (b *FaultBatch) touch(n netlist.NodeID) {
	if b.touchStamp[n] != b.touchEpoch {
		b.touchStamp[n] = b.touchEpoch
		b.touched = append(b.touched, n)
	}
}

// Step executes one good-circuit step trace against every live circuit in
// the batch: scheduling from the trace's activity, simulating each
// activated circuit (adopting from the trajectory where provably
// identical), diffing into divergence records, and finally advancing the
// pre-step mirrors to the post-step state. Returns the fault-side setting
// statistics (the caller owns the good-side fields).
func (b *FaultBatch) Step(trace *switchsim.StepTrace) SettingStats {
	t0 := time.Now() //fmossim:nondeterminism-ok FaultNS wall-clock stats are contract-exempt (doc.go)
	w0 := b.faultWork()

	if b.classPending && !trace.Init && b.settingsRun >= b.probation {
		// Probation over: surviving candidate members surrender their
		// lanes before this setting's scheduling snapshot is taken.
		b.collapseClasses()
	}

	if b.ownsGood {
		// Advance the owned good mirror to the post-step state before
		// anything reads it (scheduling, inertness checks, the diff).
		b.applyToCircuit(b.good, trace.InputChanges)
		b.applyToCircuit(b.good, trace.Changed)
	}

	traj := trace.Traj
	if trace.Oscillated || b.opts.FullReplay {
		// X-resolution makes the trajectory unreliable as an oracle; fall
		// back to full replays this step (also the FullReplay ablation's
		// path).
		traj = nil
	}
	if traj != nil && len(b.faults) > 0 {
		// One shared index serves every activated lane this setting: the
		// trajectory indexing and static-flag closure that each circuit's
		// replay used to recompute (SettleReplay's Pass A) is paid once
		// per setting for the whole word group. interestMask is exactly
		// the per-lane static divergence rows: write-back only ever
		// mutates a circuit's own lane bits, so the snapshot taken here
		// matches what each circuit would have seeded at its own turn.
		b.ix.Build(traj, b.words, b.interestMask, b.interestNZ)
	}

	var nActive int
	if trace.Init {
		// Power-on initialization: every circuit settles from its own
		// (faulted) view of the reset state — the concurrent counterpart
		// of the serial reference's reset + inject + settle-all.
		b.started = true
		b.active = b.active[:0]
		for fi := range b.faults {
			b.active = append(b.active, CircuitID(fi+1))
		}
		b.runActivated(nil, b.allStorageNodes(), traj, trace.Changed)
		nActive = len(b.active)
	} else {
		b.markTouched(trace)
		nActive = b.simulateActivated(b.reducedSetting(trace.InputChanges), traj, trace.Changed)
	}

	// Advance prev (and, lazily, the worker scratch mirrors) to the
	// post-step state: cost proportional to the step's activity, and by
	// the time the next step's circuits materialize, each mirror catches
	// up to its pre-step state.
	b.applyDelta(trace.InputChanges)
	b.applyDelta(trace.Changed)
	b.trimDeltaLog()

	dw := b.faultWork().Sub(w0)
	st := SettingStats{
		Pattern:        b.patternIdx,
		Setting:        b.settingIdx,
		ActiveCircuits: nActive,
		LiveFaults:     b.live,
		FaultWork:      dw.Units(),
		FaultNS:        time.Since(t0).Nanoseconds(), //fmossim:nondeterminism-ok FaultNS wall-clock stats are contract-exempt (doc.go)
		AdoptedVics:    dw.AdoptedVics,
		SolvedVics:     dw.Vicinities,
		FaultsRetired:  b.retired - b.lastRetired,
	}
	if traj != nil {
		st.LanesReplayed = nActive
	} else {
		st.ScalarFallbacks = nActive
	}
	b.lastRetired = b.retired
	if !trace.Init {
		b.settingIdx++
		b.settingsRun++
		if b.classPending {
			b.verifyClassSigs()
		}
	}
	return st
}

// skipStep emits the SettingStats a full Step would produce when every
// circuit in the batch is dropped — all-zero activity with only the
// position counters and the previous observation's retirements filled in
// — without building the replay index or advancing the mirrors (nothing
// reads them once the batch is empty). Used by the trimmed replay loop to
// shed the dead tail of a fully-retired batch.
func (b *FaultBatch) skipStep() SettingStats {
	st := SettingStats{
		Pattern:       b.patternIdx,
		Setting:       b.settingIdx,
		FaultsRetired: b.retired - b.lastRetired,
	}
	b.lastRetired = b.retired
	b.settingIdx++
	b.settingsRun++
	return st
}

// markTouched recomputes the step's touched region from the trace: the
// conservative trigger neighborhood of the input changes — storage nodes
// adjacent to a changing input through ANY transistor (a faulty circuit
// may conduct where the good circuit does not), plus the channel terminals
// of transistors the input gates — and everything the good settle
// explored.
func (b *FaultBatch) markTouched(trace *switchsim.StepTrace) {
	b.touchEpoch++
	b.touched = b.touched[:0]
	b.inputEpoch++
	for _, ch := range trace.InputChanges {
		b.inputStamp[ch.Node] = b.inputEpoch
		for _, e := range b.tab.ChannelOf(ch.Node) {
			if !b.tab.IsInput(e.Other) {
				b.touch(e.Other)
			}
		}
		for _, e := range b.tab.GatedByOf(ch.Node) {
			if !b.tab.IsInput(e.Src) {
				b.touch(e.Src)
			}
			if !b.tab.IsInput(e.Drn) {
				b.touch(e.Drn)
			}
		}
	}
	for _, n := range trace.Explored {
		b.touch(n)
	}
}

// reducedSetting rebuilds a Setting from the trace's input changes.
// Assignments that matched the previous value are gone, but they perturb
// no circuit: an unchanged input is a no-op in the faulty circuits too
// (and a fault-forced input ignores its driver either way), so the
// reduction is exact.
func (b *FaultBatch) reducedSetting(inputs []switchsim.Change) switchsim.Setting {
	b.settingBuf = b.settingBuf[:0]
	for _, ch := range inputs {
		b.settingBuf = append(b.settingBuf, switchsim.Assignment{Node: ch.Node, Value: ch.Value})
	}
	return b.settingBuf
}

// allStorageNodes returns (caching) the storage-node list the
// initialization step perturbs.
func (b *FaultBatch) allStorageNodes() []netlist.NodeID {
	if b.allNodes == nil {
		for i := 0; i < b.nw.NumNodes(); i++ {
			n := netlist.NodeID(i)
			if b.nw.Node(n).Kind != netlist.Input {
				b.allNodes = append(b.allNodes, n)
			}
		}
	}
	return b.allNodes
}

// applyToCircuit writes a change list into one circuit, refreshing the
// transistors each changed node gates.
func (b *FaultBatch) applyToCircuit(c *switchsim.Circuit, chs []switchsim.Change) {
	for _, ch := range chs {
		c.OverrideValue(ch.Node, ch.Value)
		c.RefreshGates(ch.Node)
	}
}

// simulateActivated schedules every live circuit whose interest set
// intersects the touched region and re-simulates each: against the good
// trajectory when one is available (adopting identical regions, solving
// divergent ones — see switchsim.SettleReplayIndexed), or by a full
// replay of the setting otherwise. Returns the number of activated
// circuits.
//
// Scheduling is word-wide: the touched nodes' interest-mask rows OR into
// one lane accumulator (64 circuits per operation), and the set bits are
// the candidate circuits — deduplicated and in ascending id order for
// free, replacing the per-entry stamp scan and sort of the unpacked
// design.
func (b *FaultBatch) simulateActivated(setting switchsim.Setting, traj *switchsim.Trajectory, goodChanged []switchsim.Change) int {
	aw := b.activeWords
	for w := range aw {
		aw[w] = 0
	}
	for _, n := range b.touched {
		if b.interestNZ[n] == 0 {
			continue
		}
		row := b.interestMask[int(n)*b.words:]
		for w := range aw {
			aw[w] |= row[w]
		}
	}
	b.active = b.active[:0]
	for w, m := range aw {
		for m != 0 {
			fi := w*b.laneWidth + bits.TrailingZeros64(m)
			m &= m - 1
			if fs := b.faults[fi]; !fs.dropped && !b.faultInert(fs) {
				b.active = append(b.active, CircuitID(fi+1))
			}
		}
	}
	b.runActivated(setting, nil, traj, goodChanged)
	nActive := len(b.active)
	if b.anyCollapsed {
		// Collapsed members share their representative's interest set and
		// records, so untrimmed they would have activated exactly when it
		// did: count them so ActiveCircuits stays byte-identical.
		for _, ci := range b.active {
			if fs := b.faults[ci-1]; len(fs.classMembers) > 0 {
				nActive += b.liveCollapsedMembers(fs)
			}
		}
	}
	return nActive
}

// faultInert reports whether a divergence-free circuit provably cannot
// deviate from the good circuit this step, so its activation may be
// skipped. A transistor fault is inert when the good transistor's state
// equals the pinned state and its gate was untouched the whole step (the
// two circuits had identical switch states throughout); a node fault is
// inert when the good node holds the forced value and was untouched (same
// value, and no vicinity involving the node was computed). This filter is
// what keeps a latent stuck memory bit from being re-simulated every time
// its (isolated) write bit line swings — the locality the paper's tail
// phase depends on.
func (b *FaultBatch) faultInert(fs *faultState) bool {
	if fs.recs.size() > 0 {
		return false
	}
	if pin, ok := fs.f.PinnedState(); ok {
		t := fs.f.Trans
		gate := b.nw.Transistor(t).Gate
		return !b.wasTouched(gate) && b.good.TransState(t) == pin
	}
	forced, _ := fs.f.ForcedState()
	return !b.wasTouched(fs.f.Node) && b.good.Value(fs.f.Node) == forced
}

// wasTouched reports whether node n was touched this step: explored by
// the good settle, in the input-change neighborhood, or (for inputs) the
// changed input itself.
func (b *FaultBatch) wasTouched(n netlist.NodeID) bool {
	if b.nw.Node(n).Kind == netlist.Input {
		return b.inputStamp[n] == b.inputEpoch
	}
	return b.touchStamp[n] == b.touchEpoch
}

// Observe compares every observed output of every circuit holding a
// divergence record there against the good circuit, recording detections
// and dropping circuits per the policy. Only circuits that actually
// diverge at an output are examined — the paper's reason for keeping
// per-node state lists, here word-packed: one EqValueMask per lane word
// discharges up to 64 circuits whose recorded value happens to equal the
// good output, and the surviving bits are detections. Returns the batch
// indices of the faults first detected by this observation.
func (b *FaultBatch) Observe() []int {
	detectedNow := b.detBuf[:0]
	for _, o := range b.opts.Observe {
		ri := b.recRowIdx[o]
		if ri < 0 {
			continue
		}
		row := b.recRows[ri]
		gv := b.good.Value(o)
		outStart := len(detectedNow)
		for w := range row {
			// The word snapshot is the iteration's working set: drops at
			// this or earlier outputs clear member bits in the shared row,
			// so each surviving bit is re-checked against fs.dropped.
			m := row[w].member &^ row[w].pl.EqValueMask(gv)
			for m != 0 {
				bit := uint(bits.TrailingZeros64(m))
				m &= m - 1
				fi := w*b.laneWidth + int(bit)
				ci := CircuitID(fi + 1)
				fs := b.faults[fi]
				if fs.dropped {
					continue // dropped at an earlier output this observation
				}
				fv := row[w].pl.Get(bit)
				hard := gv.Definite() && fv.Definite()
				// Under DropHardOnly, an X-vs-definite difference is only a
				// potential detection and does not count; otherwise any
				// difference detects, per the paper.
				counts := hard || b.opts.Drop != DropHardOnly
				if counts && !fs.detected {
					fs.det = Detection{
						Pattern: b.patternIdx, Setting: b.settingIdx - 1,
						Output: o, Good: gv, Faulty: fv, Hard: hard,
					}
					fs.detected = true
					detectedNow = append(detectedNow, fi)
					// Fan the detection out to collapsed class members:
					// their (surrendered) records equal the
					// representative's, so untrimmed they would have been
					// detected at this same output with the same values.
					for _, mfi := range fs.classMembers {
						if cm := b.faults[mfi]; cm.collapsed && !cm.dropped && !cm.detected {
							cm.det = fs.det
							cm.detected = true
							detectedNow = append(detectedNow, mfi)
						}
					}
				}
				drop := false
				switch b.opts.Drop {
				case DropAnyDifference:
					drop = true
				case DropHardOnly:
					drop = hard
				case NeverDrop:
				}
				if drop {
					b.dropCircuit(ci)
					for _, mfi := range fs.classMembers {
						if cm := b.faults[mfi]; cm.collapsed && !cm.dropped {
							b.dropCollapsedMember(cm)
						}
					}
				}
			}
		}
		if b.anyCollapsed {
			// The untrimmed scan reports each output's detections in
			// ascending fault order (words ascending, bits ascending);
			// fanned-out members were appended next to their
			// representative, so restore that order.
			sort.Ints(detectedNow[outStart:])
		}
	}
	b.detBuf = detectedNow
	return detectedNow
}

// BatchResult is the outcome of replaying one fault batch over a recorded
// good trajectory. All fields are deterministic (bit-identical for every
// batching and worker count) except the FaultNS wall-clock figures, and
// the whole value is JSON-serializable for campaign checkpoints.
type BatchResult struct {
	// NumFaults is the batch width.
	NumFaults int `json:"num_faults"`
	// PerSetting carries the fault-side stats of every input setting in
	// sequence order (good-side fields zero: the producer owns them).
	// Campaigns merge these at setting granularity so aggregates like
	// MaxActive stay exact.
	PerSetting []SettingStats `json:"per_setting"`
	// PerPattern aggregates the batch's fault-side pattern stats.
	PerPattern []PatternStats `json:"per_pattern"`
	// Detected, Detections and Oscillated are indexed by batch fault
	// index.
	Detected   []bool      `json:"detected"`
	Detections []Detection `json:"detections"`
	Oscillated []bool      `json:"oscillated"`
	// Records holds each fault's final divergence records (nil when
	// empty): the faulty circuit's state wherever it still differs from
	// the good circuit at the end of the sequence.
	Records []map[netlist.NodeID]logic.Value `json:"records,omitempty"`
}

// DetectedCount returns the number of detected faults in the batch.
func (br *BatchResult) DetectedCount() int {
	n := 0
	for _, d := range br.Detected {
		if d {
			n++
		}
	}
	return n
}

// RunRecording replays a captured good trajectory against the batch: the
// initialization step first, then every pattern of seq with observations
// at its observe points. The batch must be freshly constructed. The
// recording must have been captured over the same network and sequence.
//
// Cancellation is cooperative at setting granularity: ctx is checked
// between settings (each a few microseconds to milliseconds of work), and
// a cancelled replay returns ctx's error with no partial result. A nil
// ctx behaves like context.Background().
func (b *FaultBatch) RunRecording(ctx context.Context, rec *switchsim.Recording, seq *switchsim.Sequence) (*BatchResult, error) {
	return b.runRecording(ctx, rec, seq, nil)
}

// runRecording is the shared replay loop behind RunRecording and
// RunRecordingFrom: snap, when non-nil, restores a mid-sequence snapshot
// and the loop continues with the setting after it.
func (b *FaultBatch) runRecording(ctx context.Context, rec *switchsim.Recording, seq *switchsim.Sequence, snap *BatchSnapshot) (*BatchResult, error) {
	if b.started {
		return nil, fmt.Errorf("core: batch already ran; build a fresh FaultBatch per replay")
	}
	if err := rec.Validate(b.nw, seq.NumSettings()); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	br := &BatchResult{NumFaults: len(b.faults)}
	detTotal := 0
	si := 1
	startPat := 0
	var resume *PatternStats
	if snap != nil {
		if err := b.restoreSnapshot(rec, snap); err != nil {
			return nil, err
		}
		br.PerSetting = append(br.PerSetting, snap.PerSetting...)
		br.PerPattern = append(br.PerPattern, snap.PerPattern...)
		detTotal = snap.DetectedTotal
		si = snap.Step + 1
		startPat = snap.Pattern
		partial := snap.PartialPattern
		resume = &partial
	} else {
		b.Step(&rec.Steps[0])
	}

	for pi := startPat; pi < len(seq.Patterns); pi++ {
		p := &seq.Patterns[pi]
		var ps PatternStats
		i0 := 0
		if pi == startPat && resume != nil {
			// Resume mid-pattern: the partial aggregate carries on and
			// BeginPattern is skipped (the setting counter was restored).
			ps = *resume
			i0 = snap.SettingDone + 1
		} else {
			b.BeginPattern()
			ps = PatternStats{Pattern: pi, Name: p.Name, LiveBefore: b.live}
		}
		for i := i0; i < len(p.Settings); i++ {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("core: batch replay cancelled at pattern %d setting %d: %w", pi, i, err)
			}
			var st SettingStats
			skipped := b.opts.Trim && b.live == 0
			if skipped {
				// Every circuit is dropped: the full step would schedule
				// nothing, observe nothing, and report all-zero activity,
				// so emit that result directly and skip the index build
				// and mirror maintenance. Counted work is zero either
				// way — this sheds executed tail cost only.
				st = b.skipStep()
			} else {
				st = b.Step(&rec.Steps[si])
			}
			si++
			br.PerSetting = append(br.PerSetting, st)
			ps.FaultWork += st.FaultWork
			ps.FaultNS += st.FaultNS
			if st.ActiveCircuits > ps.MaxActive {
				ps.MaxActive = st.ActiveCircuits
			}
			ps.Settings++
			var det []int
			retired0 := b.retired
			if p.ObserveAt(i) && !skipped {
				det = b.Observe()
				ps.Detected += len(det)
				detTotal += len(det)
			}
			if b.opts.OnSnapshot != nil && rec.Steps[si-1].Snapshot != nil {
				b.opts.OnSnapshot(b.captureSnapshot(si-1, pi, i, br, &ps, detTotal))
			}
			if b.opts.OnObserve != nil {
				b.opts.OnObserve(BatchProgress{
					Pattern: pi, Setting: i,
					ActiveCircuits: st.ActiveCircuits,
					LiveFaults:     b.live,
					Detected:       det,
					DetectedTotal:  detTotal,
					// Occupancy: the setting's replay split plus the drops
					// of the observation that just ran (fresher than the
					// one-setting lag SettingStats reports).
					LanesReplayed:   st.LanesReplayed,
					ScalarFallbacks: st.ScalarFallbacks,
					AdoptedVics:     st.AdoptedVics,
					SolvedVics:      st.SolvedVics,
					FaultsRetired:   b.retired - retired0,
					LaneCapacity:    b.words * b.laneWidth,
				})
			}
		}
		ps.LiveAfter = b.live
		br.PerPattern = append(br.PerPattern, ps)
		b.EndPattern()
	}

	for fi, fs := range b.faults {
		// Collapsed class members read their representative's outcomes:
		// detection state is already fanned out at observation time, and
		// oscillation flags and final records were identical at collapse
		// and evolve only on the representative's lane afterwards.
		src := b.resolveFault(fi)
		br.Detected = append(br.Detected, fs.detected)
		br.Detections = append(br.Detections, fs.det)
		br.Oscillated = append(br.Oscillated, src.oscillated)
		var recs map[netlist.NodeID]logic.Value
		if src.recs.size() > 0 {
			recs = b.Records(fi)
		}
		br.Records = append(br.Records, recs)
	}
	return br, nil
}

// RunBatch builds a replay-mode batch over one slice of the fault universe
// and runs it against a recorded good trajectory: the campaign engine's
// unit of work. Batches over the same Tables are independent and safe to
// run concurrently. Cancelling ctx stops the replay between settings (see
// RunRecording); a nil ctx never cancels.
func RunBatch(ctx context.Context, tab *switchsim.Tables, faults []fault.Fault, rec *switchsim.Recording, seq *switchsim.Sequence, opts Options) (*BatchResult, error) {
	b, err := NewFaultBatch(tab, faults, opts)
	if err != nil {
		return nil, err
	}
	return b.RunRecording(ctx, rec, seq)
}

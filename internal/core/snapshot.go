// Mid-sequence batch snapshots: serializable resume state so a batch can
// start at setting k instead of replaying the whole prefix.
//
// A BatchSnapshot captures everything path-dependent about a batch at a
// setting boundary — each fault's divergence records, detection and drop
// state, the equivalence-class bookkeeping, and the partial per-setting
// results — while the good-circuit state comes from the recording's
// snapshot frame at the same step (Options.SnapshotEvery on the Record
// side). Restoring rebuilds the exact batch state the uninterrupted run
// had at that boundary: records re-insert through the same setRecord path
// (so the packed lanes, interest refcounts, and sorted stores are
// identical), mirrors fast-forward in O(nodes) from the frame, and the
// replay continues from the next setting. The resumed BatchResult is
// byte-identical to the uninterrupted one; the prefix's fault work is not
// re-executed, which is what makes shard cost proportional to the live
// region (campaign checkpoints, cluster early stop).
package core

import (
	"context"
	"fmt"
	"slices"

	"fmossim/internal/fault"
	"fmossim/internal/logic"
	"fmossim/internal/netlist"
	"fmossim/internal/switchsim"
)

// RecordEntry is one divergence record in a snapshot, kept as a sorted
// slice (not a map) so serialization and restore order are deterministic.
type RecordEntry struct {
	Node  netlist.NodeID `json:"n"`
	Value logic.Value    `json:"v"`
}

// BatchSnapshot is the serializable resume state of a FaultBatch at a
// setting boundary (after that setting's observation). It is produced by
// Options.OnSnapshot at settings where the recording carries a state
// frame, and consumed by RunBatchFrom / FaultBatch.RunRecordingFrom.
type BatchSnapshot struct {
	// NumFaults, NumNodes and NumTransistors fingerprint the batch and
	// network; restore refuses mismatches.
	NumFaults      int `json:"num_faults"`
	NumNodes       int `json:"num_nodes"`
	NumTransistors int `json:"num_transistors"`

	// Step is the recording step index consumed last (Steps[Step] carries
	// the matching state frame); Pattern/SettingDone locate it in the
	// sequence (SettingDone is the pattern-relative index of the last
	// consumed setting).
	Step        int `json:"step"`
	Pattern     int `json:"pattern"`
	SettingDone int `json:"setting_done"`

	// Per-fault state, indexed by batch fault index. Records is nil for
	// dropped and collapsed faults (their lanes hold nothing).
	Detected   []bool          `json:"detected"`
	Detections []Detection     `json:"detections"`
	Dropped    []bool          `json:"dropped"`
	Oscillated []bool          `json:"oscillated"`
	Records    [][]RecordEntry `json:"records"`

	// Counters.
	Retired     int `json:"retired"`
	LastRetired int `json:"last_retired"`
	SettingsRun int `json:"settings_run"`

	// Equivalence-class state (Options.Trim; zero-valued otherwise).
	Sigs           []uint64       `json:"sigs,omitempty"`
	ClassCancelled []bool         `json:"class_cancelled,omitempty"`
	Collapsed      []bool         `json:"collapsed,omitempty"`
	ClassPending   bool           `json:"class_pending,omitempty"`
	AnyCollapsed   bool           `json:"any_collapsed,omitempty"`
	LanesFreed     int            `json:"lanes_freed,omitempty"`
	CreditWork     switchsim.Work `json:"credit_work,omitempty"`

	// Partial results: the per-setting stats so far, the completed
	// patterns, the in-progress pattern's partial aggregate, and the
	// cumulative detection count.
	PerSetting     []SettingStats `json:"per_setting"`
	PerPattern     []PatternStats `json:"per_pattern"`
	PartialPattern PatternStats   `json:"partial_pattern"`
	DetectedTotal  int            `json:"detected_total"`
}

// captureSnapshot assembles an owned snapshot of the batch's state at the
// current setting boundary. step is the recording step index just
// consumed; br/ps/detTotal are the replay loop's partial results.
func (b *FaultBatch) captureSnapshot(step, pattern, settingDone int, br *BatchResult, ps *PatternStats, detTotal int) *BatchSnapshot {
	s := &BatchSnapshot{
		NumFaults:      len(b.faults),
		NumNodes:       b.nw.NumNodes(),
		NumTransistors: b.nw.NumTransistors(),
		Step:           step,
		Pattern:        pattern,
		SettingDone:    settingDone,
		Retired:        b.retired,
		LastRetired:    b.lastRetired,
		SettingsRun:    b.settingsRun,
		ClassPending:   b.classPending,
		AnyCollapsed:   b.anyCollapsed,
		LanesFreed:     b.lanesFreed,
		CreditWork:     b.creditWork,
		PerSetting:     slices.Clone(br.PerSetting),
		PerPattern:     slices.Clone(br.PerPattern),
		PartialPattern: *ps,
		DetectedTotal:  detTotal,
	}
	for _, fs := range b.faults {
		s.Detected = append(s.Detected, fs.detected)
		s.Detections = append(s.Detections, fs.det)
		s.Dropped = append(s.Dropped, fs.dropped)
		s.Oscillated = append(s.Oscillated, fs.oscillated)
		var recs []RecordEntry
		for i, n := range fs.recs.nodes {
			recs = append(recs, RecordEntry{Node: n, Value: fs.recs.vals[i]})
		}
		s.Records = append(s.Records, recs)
		if b.opts.Trim {
			s.Sigs = append(s.Sigs, fs.sig)
			s.ClassCancelled = append(s.ClassCancelled, fs.classCancelled)
			s.Collapsed = append(s.Collapsed, fs.collapsed)
		}
	}
	return s
}

// restoreSnapshot rebuilds the batch's state from a snapshot. The batch
// must be freshly constructed over the same fault list and options the
// snapshot was captured under; rec must carry a state frame at snap.Step.
func (b *FaultBatch) restoreSnapshot(rec *switchsim.Recording, snap *BatchSnapshot) error {
	switch {
	case b.started:
		return fmt.Errorf("core: batch already ran; restore needs a fresh FaultBatch")
	case !b.ownsGood:
		return fmt.Errorf("core: snapshot restore requires a replay-mode batch (NewFaultBatch)")
	case snap.NumFaults != len(b.faults):
		return fmt.Errorf("core: snapshot has %d faults, batch has %d", snap.NumFaults, len(b.faults))
	case snap.NumNodes != b.nw.NumNodes() || snap.NumTransistors != b.nw.NumTransistors():
		return fmt.Errorf("core: snapshot network fingerprint %d/%d does not match network (%d/%d)",
			snap.NumNodes, snap.NumTransistors, b.nw.NumNodes(), b.nw.NumTransistors())
	case len(snap.Detected) != len(b.faults) || len(snap.Detections) != len(b.faults) ||
		len(snap.Dropped) != len(b.faults) || len(snap.Oscillated) != len(b.faults) ||
		len(snap.Records) != len(b.faults):
		return fmt.Errorf("core: snapshot per-fault arrays are inconsistent with its fault count")
	case b.opts.Trim && (len(snap.Sigs) != len(b.faults) || len(snap.ClassCancelled) != len(b.faults) ||
		len(snap.Collapsed) != len(b.faults)):
		return fmt.Errorf("core: snapshot lacks equivalence-class state for a trimming batch")
	}
	frame := rec.SnapshotAt(snap.Step)
	if frame == nil {
		return fmt.Errorf("core: recording has no state frame at step %d (re-record with SnapshotEvery, or resume from a frame setting)", snap.Step)
	}

	for fi, fs := range b.faults {
		ci := CircuitID(fi + 1)
		// Purge the construction-time insertion records; the snapshot's
		// stores replace them wholesale.
		for _, n := range slices.Clone(fs.recs.nodes) {
			b.clearRecord(n, ci)
		}
		collapsed := len(snap.Collapsed) > 0 && snap.Collapsed[fi]
		switch {
		case snap.Dropped[fi] || collapsed:
			// The lane was surrendered (drop or class collapse): static
			// site interest goes too, exactly as dropCircuit /
			// collapseClasses left it.
			for _, n := range fs.sites {
				b.decInterest(n, ci)
			}
			fs.recs.release()
		default:
			for _, e := range snap.Records[fi] {
				b.setRecord(e.Node, ci, e.Value)
			}
		}
		fs.detected = snap.Detected[fi]
		fs.det = snap.Detections[fi]
		fs.dropped = snap.Dropped[fi]
		fs.oscillated = snap.Oscillated[fi]
		fs.collapsed = collapsed
		if b.opts.Trim {
			fs.sig = snap.Sigs[fi]
			fs.classCancelled = snap.ClassCancelled[fi]
		}
	}
	live := 0
	for _, fs := range b.faults {
		if !fs.dropped {
			live++
		}
	}
	b.live = live
	b.retired = snap.Retired
	b.lastRetired = snap.LastRetired
	b.settingsRun = snap.SettingsRun
	b.classPending = snap.ClassPending
	b.anyCollapsed = snap.AnyCollapsed
	b.lanesFreed = snap.LanesFreed
	b.creditWork = snap.CreditWork
	if b.opts.Trim && !snap.ClassPending {
		// Collapse (or cancellation) already ran before the snapshot:
		// reduce each representative's member list to the collapsed
		// subset, exactly as collapseClasses left it.
		for _, rfi := range b.classReps {
			rep := b.faults[rfi]
			kept := rep.classMembers[:0]
			for _, mfi := range rep.classMembers {
				if b.faults[mfi].collapsed {
					kept = append(kept, mfi)
				}
			}
			rep.classMembers = kept
		}
	}

	// Fast-forward the fault-free mirrors to the frame and resync every
	// worker's scratch: O(nodes), independent of the skipped prefix.
	b.good.LoadState(frame)
	b.prev.LoadState(frame)
	b.deltaLog = b.deltaLog[:0]
	for _, w := range b.workers {
		w.scratch.CopyStateFrom(b.prev)
		w.deltaPos = 0
	}

	b.started = true
	b.patternIdx = snap.Pattern
	b.settingIdx = snap.SettingDone + 1
	return nil
}

// RunRecordingFrom resumes a batch replay from a mid-sequence snapshot:
// the batch state is restored (see BatchSnapshot), the good-state mirrors
// fast-forward from the recording's frame at snap.Step, and the replay
// continues with the next setting. The returned BatchResult is
// byte-identical to an uninterrupted RunRecording. The batch must be
// freshly constructed over the same fault list and result-shaping options
// the snapshot was captured under.
func (b *FaultBatch) RunRecordingFrom(ctx context.Context, rec *switchsim.Recording, seq *switchsim.Sequence, snap *BatchSnapshot) (*BatchResult, error) {
	return b.runRecording(ctx, rec, seq, snap)
}

// RunBatchFrom is RunBatch resuming from a mid-sequence snapshot.
func RunBatchFrom(ctx context.Context, tab *switchsim.Tables, faults []fault.Fault, rec *switchsim.Recording, seq *switchsim.Sequence, snap *BatchSnapshot, opts Options) (*BatchResult, error) {
	b, err := NewFaultBatch(tab, faults, opts)
	if err != nil {
		return nil, err
	}
	return b.RunRecordingFrom(ctx, rec, seq, snap)
}

package core_test

import (
	"fmt"

	"fmossim/internal/core"
	"fmossim/internal/fault"
	"fmossim/internal/gates"
	"fmossim/internal/logic"
	"fmossim/internal/netlist"
	"fmossim/internal/switchsim"
)

// ExampleSimulator simulates every stuck-at fault of an nMOS inverter
// chain concurrently against the good circuit: toggling the input
// detects all four.
func ExampleSimulator() {
	b := netlist.NewBuilder(logic.Scale{Sizes: 2, Strengths: 2})
	in := b.Input("in", logic.Lo)
	mid, out := b.Node("mid"), b.Node("out")
	gates.NInv(b, in, mid, "inv1")
	gates.NInv(b, mid, out, "inv2")
	nw := b.Finalize()

	seq := &switchsim.Sequence{Name: "toggle", Patterns: []switchsim.Pattern{{
		Name: "p0",
		Settings: []switchsim.Setting{
			switchsim.MustVector(nw, map[string]logic.Value{"in": logic.Lo}),
			switchsim.MustVector(nw, map[string]logic.Value{"in": logic.Hi}),
		},
	}}}

	faults := fault.NodeStuckFaults(nw, fault.Options{})
	sim, err := core.New(nw, faults, core.Options{
		Observe: []netlist.NodeID{nw.MustLookup("out")},
	})
	if err != nil {
		panic(err)
	}
	res := sim.Run(seq)
	fmt.Printf("detected %d of %d faults\n", res.Detected, res.NumFaults)
	// Output:
	// detected 4 of 4 faults
}

// Shared simulator types (options, detections, drop policies, fault
// state) and the monolithic Simulator wiring one good-circuit producer to
// one full-universe FaultBatch. Package documentation lives in doc.go.
package core

import (
	"fmt"

	"fmossim/internal/fault"
	"fmossim/internal/logic"
	"fmossim/internal/netlist"
	"fmossim/internal/switchsim"
)

// CircuitID identifies a circuit: 0 is the good circuit, faulty circuits
// are 1 + index into the fault list.
type CircuitID int32

// GoodCircuit is the id of the fault-free circuit.
const GoodCircuit CircuitID = 0

// DropPolicy selects when a detected fault's circuit is dropped.
type DropPolicy uint8

const (
	// DropAnyDifference drops a fault the first time its observed output
	// differs from the good circuit in any way, including X-vs-definite
	// (potential) differences. This matches the paper: "Any time the
	// simulation of a faulty circuit produces a result on the output data
	// pin different than the good circuit simulation, the fault is
	// considered detected, and the simulation of that circuit is dropped."
	DropAnyDifference DropPolicy = iota
	// DropHardOnly drops only on hard detections (both values definite
	// and different); potential differences are recorded but the circuit
	// stays live.
	DropHardOnly
	// NeverDrop records detections but keeps simulating every circuit:
	// the fault-dropping ablation.
	NeverDrop
)

// String names the policy.
func (p DropPolicy) String() string {
	switch p {
	case DropAnyDifference:
		return "drop-any-difference"
	case DropHardOnly:
		return "drop-hard-only"
	case NeverDrop:
		return "never-drop"
	}
	return fmt.Sprintf("DropPolicy(%d)", uint8(p))
}

// Options configures a concurrent fault simulation.
type Options struct {
	// Observe lists the observed output nodes. Required.
	Observe []netlist.NodeID
	// Drop selects the dropping policy; default DropAnyDifference.
	Drop DropPolicy
	// StaticLocality switches both good and faulty settling to static
	// DC-partition locality (ablation).
	StaticLocality bool
	// FullReplay disables trajectory-guided adoption: every activated
	// faulty circuit fully re-settles the input setting (ablation of the
	// event-granularity optimization). Results are identical; only cost
	// changes.
	FullReplay bool
	// MaxRounds overrides the solver round limit (0 = default).
	MaxRounds int
	// LaneWidth sets how many fault circuits share one 64-bit lane word
	// in the batch's packed interest/record planes (1..64; 0 selects 64).
	// Results are bit-identical for every width — the packing changes
	// only constant factors (narrow widths exist for tests and benches
	// isolating the word-packing win).
	LaneWidth int
	// Workers sets the number of fault-circuit execution workers. The
	// activated circuits of a setting are independent given the good
	// trajectory and the pre-step state, so they are sharded across
	// Workers goroutines, each owning a private scratch circuit and
	// solver; divergence-record write-back is merged in ascending
	// circuit-id order, so results are bit-identical to serial execution
	// for every Workers value. 0 selects runtime.GOMAXPROCS(0); 1 runs
	// fully inline.
	Workers int
	// Trim enables redundancy trimming: materialization-equivalent fault
	// classes collapse onto one representative lane after a probation
	// window (see trim.go), and the worker solvers memoize read-verified
	// vicinity solves (see switchsim/vicmemo.go). Every BatchResult field
	// is byte-identical with trimming on or off — the trims shed executed
	// wall-clock work, not counted work; the executed savings are reported
	// separately through FaultBatch.TrimStats.
	Trim bool
	// TrimProbation sets the class-collapse probation window in settings
	// (0 selects DefaultTrimProbation). Candidate members must keep their
	// divergence signature identical to their representative's through
	// the window before their lanes collapse.
	TrimProbation int
	// OnObserve, when non-nil, is invoked by batch replays
	// (FaultBatch.RunRecording) after every input setting with that
	// setting's progress. It is called synchronously from the replaying
	// goroutine and must be fast; it never affects simulation results and
	// is excluded from campaign checkpoint fingerprints.
	OnObserve func(BatchProgress)

	// SnapshotEvery, when > 0, makes Record capture a full good-circuit
	// state frame every that many settings. Frames add O(nodes) bytes
	// each to the recording and never affect simulation results; they
	// exist so batch replays can resume mid-sequence (RunBatchFrom)
	// without replaying the prefix. Excluded from campaign checkpoint
	// fingerprints.
	SnapshotEvery int

	// OnSnapshot, when non-nil, is invoked by batch replays after every
	// setting whose recording step carries a state frame, with a
	// serializable snapshot of the batch at that boundary (see
	// BatchSnapshot). Called synchronously like OnObserve; never affects
	// results; excluded from checkpoint fingerprints.
	OnSnapshot func(*BatchSnapshot)
}

// BatchProgress is one setting's progress report from a batch replay: the
// position in the sequence, the setting's activity, the batch's live-fault
// count after any observation, and the batch fault indices first detected
// by this setting's observation (nil when none, or when the setting had no
// observe point).
type BatchProgress struct {
	Pattern, Setting int
	ActiveCircuits   int
	LiveFaults       int
	Detected         []int
	// DetectedTotal is the cumulative number of detected faults in the
	// batch after this setting.
	DetectedTotal int

	// Lane occupancy of the setting (see SettingStats): the
	// replayed/fallback split of the activated circuits, the
	// adopted/solved vicinity split, and the faults retired by this
	// setting's observation. LaneCapacity is the batch's allocated lane
	// count (words × lane width, ≥ the batch width): LiveFaults over
	// LaneCapacity is the packing efficiency of the word-parallel
	// planes.
	LanesReplayed   int
	ScalarFallbacks int
	AdoptedVics     int64
	SolvedVics      int64
	FaultsRetired   int
	LaneCapacity    int
}

// Detection describes the first detection of one fault.
type Detection struct {
	// Pattern and Setting locate the detecting observation.
	Pattern, Setting int
	Output           netlist.NodeID
	Good, Faulty     logic.Value
	// Hard reports both values were definite (a tester would see it).
	Hard bool
}

// faultState carries the per-fault bookkeeping. Its only per-node storage
// is the sparse divergence store: the dense bitmap/value mirrors the diff
// pass needs are pooled per worker (see faultWorker), so total fault
// bookkeeping scales with the divergence actually present, not with
// faults × nodes.
type faultState struct {
	f        fault.Fault
	sites    []netlist.NodeID // static interest sites
	detected bool
	dropped  bool
	det      Detection
	// recs is the authoritative divergence store: the faulty circuit's
	// state at each node where it differs from the good circuit.
	recs recStore
	// oscillated notes any settle of this circuit hit the round limit.
	oscillated bool

	// Equivalence-class bookkeeping (Options.Trim, see trim.go). sig is
	// the incremental XOR-fold of the record store; repFi the batch index
	// of this fault's representative (meaningful when it has one);
	// classMembers, on a representative, the batch indices of its
	// candidate (after collapse: collapsed) members.
	sig            uint64
	repFi          int
	classMembers   []int
	classCancelled bool
	collapsed      bool
}

// Simulator is the concurrent fault simulator: a good-circuit producer
// wired to a single FaultBatch covering the entire fault universe.
type Simulator struct {
	nw   *netlist.Network
	opts Options

	gr    *goodRunner
	batch *FaultBatch

	stats RunStats
}

// New builds a concurrent simulator over a finalized network with the
// given fault list. The good circuit is initialized and fully settled, and
// every fault is inserted (its initial divergence computed) before the
// first pattern, so faults that corrupt the quiescent state are detectable
// from pattern one.
func New(nw *netlist.Network, faults []fault.Fault, opts Options) (*Simulator, error) {
	tab := switchsim.NewTables(nw)
	gr := newGoodRunner(tab, opts)
	// The batch shares the producer's circuit as its good-state view; it
	// is constructed before initialization, so fault insertion sees the
	// reset state: defects are present from power-on.
	batch, err := newBatch(tab, gr.good, faults, opts)
	if err != nil {
		return nil, err
	}
	s := &Simulator{nw: nw, opts: opts, gr: gr, batch: batch}
	s.stats.LiveFaults = batch.Live()
	// Power-on initialization, run as a concurrent step.
	batch.Step(gr.init())
	return s, nil
}

// Network returns the simulated network.
func (s *Simulator) Network() *netlist.Network { return s.nw }

// Good returns the good circuit (read-only use).
func (s *Simulator) Good() *switchsim.Circuit { return s.gr.good }

// NumFaults returns the size of the fault list.
func (s *Simulator) NumFaults() int { return s.batch.NumFaults() }

// Fault returns the fault at index fi.
func (s *Simulator) Fault(fi int) fault.Fault { return s.batch.Fault(fi) }

// Detected reports whether fault fi has been detected, with details.
func (s *Simulator) Detected(fi int) (Detection, bool) { return s.batch.Detected(fi) }

// Oscillated reports whether fault fi's circuit ever hit the oscillation
// limit.
func (s *Simulator) Oscillated(fi int) bool { return s.batch.Oscillated(fi) }

// LiveFaults returns the number of circuits still being simulated, O(1).
func (s *Simulator) LiveFaults() int { return s.batch.Live() }

// Records returns a copy of the divergence records of fault fi: the faulty
// circuit's state wherever it differs from the good circuit.
func (s *Simulator) Records(fi int) map[netlist.NodeID]logic.Value {
	return s.batch.Records(fi)
}

// FaultValue returns the state of node n in faulty circuit fi: the
// divergence record if present, the good-circuit state otherwise.
func (s *Simulator) FaultValue(fi int, n netlist.NodeID) logic.Value {
	return s.batch.FaultValue(fi, n)
}

// Workers returns the size of the fault-circuit worker pool.
func (s *Simulator) Workers() int { return len(s.batch.workers) }

// CheckInvariants verifies the bidirectional consistency of the record
// stores and the interest index; it is exported for tests and costs
// O(faults × records), so production loops should not call it per setting.
func (s *Simulator) CheckInvariants() error { return s.batch.CheckInvariants() }

// StepSetting advances every live circuit through one input setting: the
// good circuit first, then each activated faulty circuit in ascending
// circuit-id order (the paper's circuit-by-circuit event processing).
// Returns per-setting statistics.
func (s *Simulator) StepSetting(setting switchsim.Setting) SettingStats {
	trace := s.gr.step(setting)
	st := s.batch.Step(trace)
	st.GoodWork = trace.GoodWork
	st.GoodNS = trace.GoodNS
	return st
}

// RunPattern advances the simulation through one pattern: all of its
// settings, observing outputs per the pattern's observation points.
// Returns the pattern's statistics.
func (s *Simulator) RunPattern(p *switchsim.Pattern) PatternStats {
	b := s.batch
	b.BeginPattern()
	ps := PatternStats{Pattern: b.patternIdx, Name: p.Name, LiveBefore: b.Live()}
	for i := range p.Settings {
		st := s.StepSetting(p.Settings[i])
		ps.GoodWork += st.GoodWork
		ps.FaultWork += st.FaultWork
		ps.GoodNS += st.GoodNS
		ps.FaultNS += st.FaultNS
		if st.ActiveCircuits > ps.MaxActive {
			ps.MaxActive = st.ActiveCircuits
		}
		ps.Settings++
		if p.ObserveAt(i) {
			ps.Detected += len(b.Observe())
		}
	}
	ps.LiveAfter = b.Live()
	b.EndPattern()
	s.stats.Patterns++
	s.stats.LiveFaults = b.Live()
	return ps
}

// Run simulates an entire test sequence, returning the aggregated result.
func (s *Simulator) Run(seq *switchsim.Sequence) *Result {
	r := &Result{Sequence: seq.Name, NumFaults: s.batch.NumFaults()}
	for i := range seq.Patterns {
		ps := s.RunPattern(&seq.Patterns[i])
		r.PerPattern = append(r.PerPattern, ps)
	}
	r.finish(s.batch)
	return r
}

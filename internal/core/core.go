// Package core implements FMOSSIM's concurrent switch-level fault
// simulation algorithm: the paper's primary contribution.
//
// The good circuit (id 0) is simulated in its entirety. For each faulty
// circuit, the simulator keeps only divergence records ⟨circuit, state⟩ on
// the nodes whose state differs from the good circuit, plus the fault pin
// itself. Per input setting, the good circuit is simulated first; the
// activity it generates — together with the input changes — determines
// which faulty circuits must be re-simulated ("events are scheduled on a
// circuit-by-circuit basis"). Each activated faulty circuit is then
// simulated separately by materializing its view (good state overlaid with
// its records and fault), settling only from its perturbed nodes, and
// diffing the touched region back into records. This exploits the
// data-dependent locality of each circuit individually, which is the
// paper's key adaptation of concurrent simulation to the switch level,
// where logic-element boundaries (transistor vicinities) differ between
// the good and faulty circuits.
//
// A faulty circuit is activated when the good circuit's activity touches
// its interest set: its divergence records, the channel terminals of
// transistors whose conduction in the faulty circuit differs from the good
// circuit (stuck transistors, transistors gated by divergent or faulted
// nodes), and the neighborhood of faulted nodes. The per-node interest
// index plays the role of the paper's per-node state lists sorted by
// circuit id with shadow pointers: it makes "which circuits care about
// this node" an O(listeners) query.
//
// Whenever a faulty circuit's observed output differs from the good
// circuit's, the fault is detected and the circuit is dropped: its records
// are purged and it is never simulated again.
package core

import (
	"fmt"
	"runtime"
	"sort"

	"fmossim/internal/fault"
	"fmossim/internal/logic"
	"fmossim/internal/netlist"
	"fmossim/internal/switchsim"
)

// CircuitID identifies a circuit: 0 is the good circuit, faulty circuits
// are 1 + index into the fault list.
type CircuitID int32

// GoodCircuit is the id of the fault-free circuit.
const GoodCircuit CircuitID = 0

// DropPolicy selects when a detected fault's circuit is dropped.
type DropPolicy uint8

const (
	// DropAnyDifference drops a fault the first time its observed output
	// differs from the good circuit in any way, including X-vs-definite
	// (potential) differences. This matches the paper: "Any time the
	// simulation of a faulty circuit produces a result on the output data
	// pin different than the good circuit simulation, the fault is
	// considered detected, and the simulation of that circuit is dropped."
	DropAnyDifference DropPolicy = iota
	// DropHardOnly drops only on hard detections (both values definite
	// and different); potential differences are recorded but the circuit
	// stays live.
	DropHardOnly
	// NeverDrop records detections but keeps simulating every circuit:
	// the fault-dropping ablation.
	NeverDrop
)

// Options configures a concurrent fault simulation.
type Options struct {
	// Observe lists the observed output nodes. Required.
	Observe []netlist.NodeID
	// Drop selects the dropping policy; default DropAnyDifference.
	Drop DropPolicy
	// StaticLocality switches both good and faulty settling to static
	// DC-partition locality (ablation).
	StaticLocality bool
	// FullReplay disables trajectory-guided adoption: every activated
	// faulty circuit fully re-settles the input setting (ablation of the
	// event-granularity optimization). Results are identical; only cost
	// changes.
	FullReplay bool
	// MaxRounds overrides the solver round limit (0 = default).
	MaxRounds int
	// Workers sets the number of fault-circuit execution workers. The
	// activated circuits of a setting are independent given the good
	// trajectory and the pre-step state, so they are sharded across
	// Workers goroutines, each owning a private scratch circuit and
	// solver; divergence-record write-back is merged in ascending
	// circuit-id order, so results are bit-identical to serial execution
	// for every Workers value. 0 selects runtime.GOMAXPROCS(0); 1 runs
	// fully inline.
	Workers int
}

// Detection describes the first detection of one fault.
type Detection struct {
	// Pattern and Setting locate the detecting observation.
	Pattern, Setting int
	Output           netlist.NodeID
	Good, Faulty     logic.Value
	// Hard reports both values were definite (a tester would see it).
	Hard bool
}

// faultState carries the per-fault bookkeeping.
type faultState struct {
	f        fault.Fault
	sites    []netlist.NodeID // static interest sites
	detected bool
	dropped  bool
	det      Detection
	// recs is the authoritative divergence store: the faulty circuit's
	// state at each node where it differs from the good circuit.
	recs recStore
	// recBits is a node-indexed membership bitmap over recs and recVal a
	// node-indexed copy of the record values: the workers' diff pass
	// tests membership and compares the old value with two loads instead
	// of binary searches. recVal[n] is meaningful only where the bit is
	// set.
	recBits []uint64
	recVal  []logic.Value
	// oscillated notes any settle of this circuit hit the round limit.
	oscillated bool
}

// Simulator is the concurrent fault simulator.
type Simulator struct {
	tab  *switchsim.Tables
	nw   *netlist.Network
	opts Options

	good *switchsim.Circuit
	// prev holds the good circuit's pre-step state: faulty circuits are
	// materialized from it so their settling starts from their own
	// previous steady state. It is kept in sync with the good circuit by
	// delta application (goodDelta), never by full copies.
	prev   *switchsim.Circuit
	gsolve *switchsim.Solver

	// workers execute activated faulty circuits; each owns a scratch
	// circuit (a live mirror of prev, patched and reverted per circuit by
	// an undo log) and a private solver. workers[0] doubles as the inline
	// path when parallel dispatch isn't worthwhile.
	workers []*faultWorker

	faults []*faultState

	// nodeCircs[n] lists the circuits with a divergence record at n,
	// sorted ascending: the paper's per-node state lists (the good
	// circuit's entry is implicit: it is the good state itself).
	nodeCircs [][]CircuitID
	// interest[n] refcounts the circuits whose re-simulation triggers
	// include node n.
	interest []interestList

	// Scratch for per-setting scheduling.
	touchStamp []uint32
	touchEpoch uint32
	touched    []netlist.NodeID
	inputStamp []uint32
	inputEpoch uint32

	// goodDelta lists the nodes where the good circuit may differ from
	// prev after the current setting (the good settle's changed set; it
	// aliases gsolve's scratch). changedInputs lists the input nodes whose
	// values changed this setting. Together they drive the next setting's
	// activity-proportional prev/scratch sync.
	goodDelta     []netlist.NodeID
	changedInputs []netlist.NodeID

	// Per-setting scheduling scratch: the de-dup stamp over circuit ids
	// and the reused active list / parallel result buffers.
	activeStamp []uint32
	activeEpoch uint32
	active      []CircuitID
	results     []stepResult
	detBuf      []int
	obsBuf      []CircuitID

	patternIdx int
	settingIdx int

	stats RunStats
}

// New builds a concurrent simulator over a finalized network with the
// given fault list. The good circuit is initialized and fully settled, and
// every fault is inserted (its initial divergence computed) before the
// first pattern, so faults that corrupt the quiescent state are detectable
// from pattern one.
func New(nw *netlist.Network, faults []fault.Fault, opts Options) (*Simulator, error) {
	if len(opts.Observe) == 0 {
		return nil, fmt.Errorf("core: no observed outputs configured")
	}
	for _, o := range opts.Observe {
		if o < 0 || int(o) >= nw.NumNodes() {
			return nil, fmt.Errorf("core: observed node %d out of range", o)
		}
	}
	tab := switchsim.NewTables(nw)
	s := &Simulator{
		tab:         tab,
		nw:          nw,
		opts:        opts,
		good:        switchsim.NewCircuit(tab),
		prev:        switchsim.NewCircuit(tab),
		gsolve:      switchsim.NewSolver(tab),
		nodeCircs:   make([][]CircuitID, nw.NumNodes()),
		interest:    make([]interestList, nw.NumNodes()),
		touchStamp:  make([]uint32, nw.NumNodes()),
		inputStamp:  make([]uint32, nw.NumNodes()),
		activeStamp: make([]uint32, len(faults)+1),
	}
	s.gsolve.Record = true
	s.gsolve.StaticLocality = opts.StaticLocality
	s.gsolve.MaxRounds = opts.MaxRounds

	nWorkers := opts.Workers
	if nWorkers <= 0 {
		nWorkers = runtime.GOMAXPROCS(0)
	}
	for i := 0; i < nWorkers; i++ {
		s.workers = append(s.workers, newFaultWorker(s))
	}

	for _, f := range faults {
		fs := &faultState{
			f:       f,
			sites:   siteSet(nw, f),
			recBits: make([]uint64, (nw.NumNodes()+63)/64),
			recVal:  make([]logic.Value, nw.NumNodes()),
		}
		s.faults = append(s.faults, fs)
	}
	s.stats.LiveFaults = len(s.faults)

	// Register static interest and record each fault's immediate (reset
	// state) divergence, all before initialization: defects are present
	// from power-on.
	for fi, fs := range s.faults {
		ci := CircuitID(fi + 1)
		for _, n := range fs.sites {
			s.incInterest(n, ci)
		}
		s.insertFault(ci)
	}
	// Power-on initialization, run as a concurrent step.
	s.initStep()
	return s, nil
}

// siteSet computes the static interest sites of a fault: the storage
// nodes where the faulty circuit's response can deviate from the good
// circuit's regardless of current divergence.
//
// For a fault on a storage node, the node itself suffices as the channel
// trigger: whenever the good circuit's activity reaches the node's
// electrical neighborhood, the node is inside the explored vicinity (a
// vicinity contains every storage node reachable through conducting
// transistors, and a non-conducting transistor isolates the node in both
// circuits identically). A fault on an *input* node is different: input
// nodes are never members of vicinities, so the fault's conducting
// neighborhood must be registered explicitly — this is what makes a
// frozen clock line expensive (its interest spans every clocked element,
// the paper's head-phase behavior) while a stuck memory bit stays cheap.
func siteSet(nw *netlist.Network, f fault.Fault) []netlist.NodeID {
	sites := f.Sites(nw)
	if f.Kind.IsNodeFault() && nw.Node(f.Node).Kind == netlist.Input {
		seen := make(map[netlist.NodeID]bool, len(sites)+4)
		for _, n := range sites {
			seen[n] = true
		}
		for _, t := range nw.Channel(f.Node) {
			o := nw.Transistor(t).Other(f.Node)
			if nw.Node(o).Kind != netlist.Input && !seen[o] {
				seen[o] = true
				sites = append(sites, o)
			}
		}
		sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	}
	return sites
}

// Network returns the simulated network.
func (s *Simulator) Network() *netlist.Network { return s.nw }

// Good returns the good circuit (read-only use).
func (s *Simulator) Good() *switchsim.Circuit { return s.good }

// NumFaults returns the size of the fault list.
func (s *Simulator) NumFaults() int { return len(s.faults) }

// Fault returns the fault at index fi.
func (s *Simulator) Fault(fi int) fault.Fault { return s.faults[fi].f }

// Detected reports whether fault fi has been detected, with details.
func (s *Simulator) Detected(fi int) (Detection, bool) {
	return s.faults[fi].det, s.faults[fi].detected
}

// Oscillated reports whether fault fi's circuit ever hit the oscillation
// limit.
func (s *Simulator) Oscillated(fi int) bool { return s.faults[fi].oscillated }

// LiveFaults returns the number of circuits still being simulated.
func (s *Simulator) LiveFaults() int {
	n := 0
	for _, fs := range s.faults {
		if !fs.dropped {
			n++
		}
	}
	return n
}

// Records returns a copy of the divergence records of fault fi: the faulty
// circuit's state wherever it differs from the good circuit.
func (s *Simulator) Records(fi int) map[netlist.NodeID]logic.Value {
	recs := &s.faults[fi].recs
	out := make(map[netlist.NodeID]logic.Value, recs.size())
	for i, n := range recs.nodes {
		out[n] = recs.vals[i]
	}
	return out
}

// FaultValue returns the state of node n in faulty circuit fi: the
// divergence record if present, the good-circuit state otherwise.
func (s *Simulator) FaultValue(fi int, n netlist.NodeID) logic.Value {
	if v, ok := s.faults[fi].recs.get(n); ok {
		return v
	}
	return s.good.Value(n)
}

// Workers returns the size of the fault-circuit worker pool.
func (s *Simulator) Workers() int { return len(s.workers) }

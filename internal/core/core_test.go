package core_test

import (
	"math/rand"
	"testing"

	"fmossim/internal/core"
	"fmossim/internal/fault"
	"fmossim/internal/gates"
	"fmossim/internal/logic"
	"fmossim/internal/march"
	"fmossim/internal/netlist"
	"fmossim/internal/ram"
	"fmossim/internal/switchsim"
	"fmossim/internal/testnet"
)

const (
	L = logic.Lo
	H = logic.Hi
	X = logic.X
)

// invNet builds an nMOS inverter network with input "a", output "out".
func invNet() *netlist.Network {
	b := netlist.NewBuilder(logic.Scale{Sizes: 2, Strengths: 2})
	a := b.Input("a", L)
	out := b.Node("out")
	gates.NInv(b, a, out, "inv")
	return b.Finalize()
}

func toggleSeq(nw *netlist.Network, n int) *switchsim.Sequence {
	seq := &switchsim.Sequence{Name: "toggle"}
	for i := 0; i < n; i++ {
		seq.Patterns = append(seq.Patterns, switchsim.Pattern{
			Name:     "t",
			Settings: []switchsim.Setting{switchsim.MustVector(nw, map[string]logic.Value{"a": logic.Value(i % 2)})},
		})
	}
	return seq
}

func TestInverterStuckFaults(t *testing.T) {
	nw := invNet()
	out := nw.MustLookup("out")
	faults := []fault.Fault{
		{Kind: fault.NodeStuck0, Node: out},
		{Kind: fault.NodeStuck1, Node: out},
	}
	sim, err := core.New(nw, faults, core.Options{Observe: []netlist.NodeID{out}})
	if err != nil {
		t.Fatal(err)
	}
	// Good circuit settles with a=0 -> out=1, so out-sa0 diverges at
	// insertion and is detected by the very first observation; out-sa1 is
	// latent until a=1.
	res := sim.Run(toggleSeq(nw, 4))
	if res.Detected != 2 {
		t.Fatalf("detected %d of 2 faults", res.Detected)
	}
	d0, ok0 := sim.Detected(0)
	d1, ok1 := sim.Detected(1)
	if !ok0 || !ok1 {
		t.Fatal("both faults should be detected")
	}
	if d0.Pattern != 0 {
		t.Errorf("out-sa0 detected at pattern %d, want 0", d0.Pattern)
	}
	if d1.Pattern != 1 { // needs a=1 -> good out=0 vs stuck 1
		t.Errorf("out-sa1 detected at pattern %d, want 1", d1.Pattern)
	}
	if !d0.Hard || !d1.Hard {
		t.Error("both detections should be hard (definite vs definite)")
	}
	if sim.LiveFaults() != 0 {
		t.Errorf("all circuits should be dropped, %d live", sim.LiveFaults())
	}
	if err := sim.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestLatentFaultNoRecordsUntilExcited(t *testing.T) {
	nw := invNet()
	out := nw.MustLookup("out")
	// With a=0 the good out is 1: out-sa1 is latent.
	faults := []fault.Fault{{Kind: fault.NodeStuck1, Node: out}}
	sim, err := core.New(nw, faults, core.Options{Observe: []netlist.NodeID{out}, Drop: core.NeverDrop})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(sim.Records(0)); n != 0 {
		t.Errorf("latent fault should have no divergence records, has %d", n)
	}
	// Excite: a=1 makes good out=0 while the fault holds 1.
	sim.StepSetting(switchsim.MustVector(nw, map[string]logic.Value{"a": H}))
	if got := sim.FaultValue(0, out); got != H {
		t.Errorf("faulty out = %s, want stuck 1", got)
	}
	if n := len(sim.Records(0)); n == 0 {
		t.Error("excited fault should carry a divergence record")
	}
	// De-excite: a=0 -> good out=1 again; divergence disappears.
	sim.StepSetting(switchsim.MustVector(nw, map[string]logic.Value{"a": L}))
	if n := len(sim.Records(0)); n != 0 {
		t.Errorf("converged fault should have no records, has %d", n)
	}
	if err := sim.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestTransistorStuckFaultDetection(t *testing.T) {
	nw := invNet()
	out := nw.MustLookup("out")
	// The pull-down is the second transistor (load added first).
	var pd netlist.TransID = netlist.NoTrans
	for i := 0; i < nw.NumTransistors(); i++ {
		if nw.Transistor(netlist.TransID(i)).Label == "inv.pd" {
			pd = netlist.TransID(i)
		}
	}
	if pd == netlist.NoTrans {
		t.Fatal("pull-down not found")
	}
	faults := []fault.Fault{
		{Kind: fault.TransStuckOpen, Trans: pd},   // out never pulls low
		{Kind: fault.TransStuckClosed, Trans: pd}, // out never pulls high
	}
	sim, err := core.New(nw, faults, core.Options{Observe: []netlist.NodeID{out}})
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run(toggleSeq(nw, 4))
	if res.Detected != 2 {
		t.Fatalf("detected %d of 2 transistor faults", res.Detected)
	}
}

func TestBridgeAndOpenFaults(t *testing.T) {
	// Two independent inverters; a bridge candidate shorts their outputs,
	// and one inverter's output reaches the pad through a breakable wire.
	b := netlist.NewBuilder(logic.Scale{Sizes: 2, Strengths: 3})
	a1 := b.Input("a1", L)
	a2 := b.Input("a2", L)
	o1 := b.Node("o1")
	o2 := b.Node("o2")
	pad := b.Node("pad")
	gates.NInv(b, a1, o1, "i1")
	gates.NInv(b, a2, o2, "i2")
	short := b.BridgeCandidate(o1, o2, "short.o1o2")
	wire := b.Breakable(o1, pad, "wire.o1pad")
	nw := b.Finalize()
	padID := nw.MustLookup("pad")

	faults := []fault.Fault{
		{Kind: fault.Bridge, Trans: short},
		{Kind: fault.Open, Trans: wire},
	}
	sim, err := core.New(nw, faults, core.Options{Observe: []netlist.NodeID{padID}})
	if err != nil {
		t.Fatal(err)
	}
	seq := &switchsim.Sequence{Name: "bridge"}
	// a1=0,a2=1: o1=1, o2=0; bridged they fight -> pad differs (X vs 1).
	// The open fault isolates pad, which keeps stale charge; after the
	// first write it matches, so drive opposite values across patterns.
	for _, v := range []map[string]logic.Value{
		{"a1": L, "a2": H},
		{"a1": H, "a2": L},
		{"a1": L, "a2": H},
	} {
		seq.Patterns = append(seq.Patterns, switchsim.Pattern{
			Settings: []switchsim.Setting{switchsim.MustVector(nw, v)},
		})
	}
	res := sim.Run(seq)
	if res.Detected != 2 {
		t.Fatalf("detected %d of 2 bridge/open faults", res.Detected)
	}
}

func TestDropPolicies(t *testing.T) {
	// A fault whose first observable difference is X-vs-definite: a
	// max-strength bridge between two equal-strength CMOS inverter
	// outputs driving opposite values yields X at both.
	b := netlist.NewBuilder(logic.Scale{Sizes: 2, Strengths: 3})
	a1 := b.Input("a1", L)
	a2 := b.Input("a2", L)
	o1 := b.Node("o1")
	o2 := b.Node("o2")
	gates.CInv(b, a1, o1, "i1")
	gates.CInv(b, a2, o2, "i2")
	short := b.StrengthTrans(logic.NType, 3, b.TieLo(), o1, o2, "short")
	nw := b.Finalize()
	o1ID := nw.MustLookup("o1")

	seq := &switchsim.Sequence{Name: "x-detect"}
	seq.Patterns = append(seq.Patterns, switchsim.Pattern{
		Settings: []switchsim.Setting{switchsim.MustVector(nw, map[string]logic.Value{"a1": L, "a2": H})},
	})

	run := func(policy core.DropPolicy) (*core.Simulator, *core.Result) {
		sim, err := core.New(nw, []fault.Fault{{Kind: fault.Bridge, Trans: short}},
			core.Options{Observe: []netlist.NodeID{o1ID}, Drop: policy})
		if err != nil {
			t.Fatal(err)
		}
		return sim, sim.Run(seq)
	}

	sim, res := run(core.DropAnyDifference)
	if res.Detected != 1 || res.HardDetected != 0 {
		t.Errorf("AnyDifference: detected=%d hard=%d, want 1/0", res.Detected, res.HardDetected)
	}
	if sim.LiveFaults() != 0 {
		t.Error("AnyDifference should drop on the X difference")
	}

	sim, res = run(core.DropHardOnly)
	if res.Detected != 0 {
		t.Errorf("HardOnly: X difference should not count, detected=%d", res.Detected)
	}
	if sim.LiveFaults() != 1 {
		t.Error("HardOnly should keep the circuit live")
	}

	sim, res = run(core.NeverDrop)
	if res.Detected != 1 {
		t.Errorf("NeverDrop: detected=%d, want 1", res.Detected)
	}
	if sim.LiveFaults() != 1 {
		t.Error("NeverDrop must not drop")
	}
}

func TestNoObserveError(t *testing.T) {
	nw := invNet()
	if _, err := core.New(nw, nil, core.Options{}); err == nil {
		t.Error("New without observed outputs should fail")
	}
	if _, err := core.New(nw, nil, core.Options{Observe: []netlist.NodeID{999}}); err == nil {
		t.Error("New with out-of-range output should fail")
	}
}

func TestResultAccounting(t *testing.T) {
	nw := invNet()
	out := nw.MustLookup("out")
	faults := fault.NodeStuckFaults(nw, fault.Options{})
	sim, err := core.New(nw, faults, core.Options{Observe: []netlist.NodeID{out}})
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run(toggleSeq(nw, 6))
	if len(res.PerPattern) != 6 {
		t.Fatalf("PerPattern has %d entries", len(res.PerPattern))
	}
	var gw, fw int64
	for _, ps := range res.PerPattern {
		gw += ps.GoodWork
		fw += ps.FaultWork
	}
	if gw != res.GoodWork || fw != res.FaultWork {
		t.Errorf("work totals mismatch: %d/%d vs %d/%d", gw, fw, res.GoodWork, res.FaultWork)
	}
	cum := res.CumulativeDetections()
	if cum[len(cum)-1] != res.Detected {
		t.Errorf("cumulative detections end at %d, want %d", cum[len(cum)-1], res.Detected)
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Error("cumulative detections must be nondecreasing")
		}
	}
	if res.Coverage() <= 0 || res.Coverage() > 1 {
		t.Errorf("coverage %f out of range", res.Coverage())
	}
	wp := res.WorkPerPattern()
	if len(wp) != 6 || wp[0] != res.PerPattern[0].Work() {
		t.Error("WorkPerPattern mismatch")
	}
}

// TestEquivalenceWithSerial is the core correctness property of concurrent
// fault simulation: for every fault, the concurrent simulator's view of
// the faulty circuit (good state + divergence records) must equal, after
// every input setting, the state of an independently simulated full copy
// of the faulty circuit. Faults whose circuits oscillate are excluded:
// X-resolution depends on event order, which legitimately differs between
// whole-circuit and incremental re-simulation.
func TestEquivalenceWithSerial(t *testing.T) {
	nSeeds := int64(30)
	if testing.Short() {
		nSeeds = 8
	}
	for seed := int64(0); seed < nSeeds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tc := testnet.Structured(rng)
		nw := tc.Net

		// A sample of node and transistor faults.
		all := append(fault.NodeStuckFaults(nw, fault.Options{}),
			fault.TransistorStuckFaults(nw, fault.Options{})...)
		faults := fault.Sample(all, 24, rng)

		sim, err := core.New(nw, faults, core.Options{Observe: tc.Outputs, Drop: core.NeverDrop})
		if err != nil {
			t.Fatal(err)
		}

		// Reference: one full circuit per fault, with the fault present
		// from power-on (inject into the reset state, then settle).
		tab := switchsim.NewTables(nw)
		ref := make([]*switchsim.Circuit, len(faults))
		rsolve := switchsim.NewSolver(tab)
		excluded := make([]bool, len(faults))
		for i, f := range faults {
			ref[i] = switchsim.NewCircuit(tab) // NewCircuit resets
			f.Apply(ref[i])
			r := rsolve.SettleAll(ref[i])
			excluded[i] = excluded[i] || r.Oscillated
		}

		compare := func(step int) {
			for fi := range faults {
				if excluded[fi] || sim.Oscillated(fi) {
					excluded[fi] = true
					continue
				}
				for n := 0; n < nw.NumNodes(); n++ {
					id := netlist.NodeID(n)
					want := ref[fi].Value(id)
					got := sim.FaultValue(fi, id)
					if got != want {
						t.Fatalf("seed %d step %d fault %d (%s): node %s concurrent=%s serial=%s",
							seed, step, fi, faults[fi].Describe(nw), nw.Name(id), got, want)
					}
				}
			}
		}
		compare(-1)

		for step := 0; step < 14; step++ {
			setting := tc.RandomSetting(rng, 12)
			sim.StepSetting(setting)
			for fi := range faults {
				r := rsolve.Step(ref[fi], setting)
				excluded[fi] = excluded[fi] || r.Oscillated
			}
			compare(step)
			if err := sim.CheckInvariants(); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
		}
	}
}

// TestDroppedCircuitStaysDropped: once dropped, a circuit accrues no new
// records and is not re-simulated.
func TestDroppedCircuitStaysDropped(t *testing.T) {
	nw := invNet()
	out := nw.MustLookup("out")
	faults := []fault.Fault{{Kind: fault.NodeStuck0, Node: out}}
	sim, err := core.New(nw, faults, core.Options{Observe: []netlist.NodeID{out}})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(toggleSeq(nw, 2))
	if sim.LiveFaults() != 0 {
		t.Fatal("fault should be dropped")
	}
	if n := len(sim.Records(0)); n != 0 {
		t.Errorf("dropped circuit retains %d records", n)
	}
	// Further stepping must not resurrect it.
	sim.StepSetting(switchsim.MustVector(nw, map[string]logic.Value{"a": H}))
	sim.StepSetting(switchsim.MustVector(nw, map[string]logic.Value{"a": L}))
	if n := len(sim.Records(0)); n != 0 {
		t.Errorf("dropped circuit gained %d records after stepping", n)
	}
	if err := sim.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestEngineEquivalence: the trajectory-replay fast path and the
// full-replay path are different implementations of the same semantics;
// they must produce identical detections and identical divergence records
// after every pattern, on the realistic RAM workload.
func TestEngineEquivalence(t *testing.T) {
	m := ram.New(ram.Config{Rows: 4, Cols: 4})
	faults := fault.NodeStuckFaults(m.Net, fault.Options{})
	seq := march.Sequence1(m)

	mk := func(full bool) *core.Simulator {
		s, err := core.New(m.Net, faults, core.Options{
			Observe:    []netlist.NodeID{m.DataOut},
			Drop:       core.NeverDrop,
			FullReplay: full,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	fast, slow := mk(false), mk(true)
	for pi := range seq.Patterns {
		fast.RunPattern(&seq.Patterns[pi])
		slow.RunPattern(&seq.Patterns[pi])
		for fi := range faults {
			fr, sr := fast.Records(fi), slow.Records(fi)
			if len(fr) != len(sr) {
				t.Fatalf("pattern %d fault %s: %d records (fast) vs %d (full)",
					pi, faults[fi].Describe(m.Net), len(fr), len(sr))
			}
			for n, v := range fr {
				if sr[n] != v {
					t.Fatalf("pattern %d fault %s node %s: fast=%s full=%s",
						pi, faults[fi].Describe(m.Net), m.Net.Name(n), v, sr[n])
				}
			}
		}
	}
	for fi := range faults {
		fd, fok := fast.Detected(fi)
		sd, sok := slow.Detected(fi)
		if fok != sok || (fok && fd != sd) {
			t.Errorf("fault %s: detection differs between engines", faults[fi].Describe(m.Net))
		}
	}
}

// TestEquivalenceWithSerialSoup runs the serial-equivalence property on
// completely random transistor networks — fighting drivers, pass loops,
// charge-sharing chains — where any unsound adoption or scheduling
// shortcut is most likely to surface. Oscillating circuits are excluded
// as in the structured variant.
func TestEquivalenceWithSerialSoup(t *testing.T) {
	nSeeds := int64(25)
	if testing.Short() {
		nSeeds = 6
	}
	for seed := int64(0); seed < nSeeds; seed++ {
		rng := rand.New(rand.NewSource(seed + 1000))
		tc := testnet.Soup(rng)
		nw := tc.Net
		all := append(fault.NodeStuckFaults(nw, fault.Options{}),
			fault.TransistorStuckFaults(nw, fault.Options{})...)
		faults := fault.Sample(all, 16, rng)

		sim, err := core.New(nw, faults, core.Options{Observe: tc.Outputs, Drop: core.NeverDrop})
		if err != nil {
			t.Fatal(err)
		}
		tab := switchsim.NewTables(nw)
		ref := make([]*switchsim.Circuit, len(faults))
		rsolve := switchsim.NewSolver(tab)
		excluded := make([]bool, len(faults))
		for i, f := range faults {
			ref[i] = switchsim.NewCircuit(tab)
			f.Apply(ref[i])
			r := rsolve.SettleAll(ref[i])
			excluded[i] = r.Oscillated
		}
		for step := 0; step < 10; step++ {
			setting := tc.RandomSetting(rng, 20)
			sim.StepSetting(setting)
			for fi := range faults {
				r := rsolve.Step(ref[fi], setting)
				excluded[fi] = excluded[fi] || r.Oscillated || sim.Oscillated(fi)
			}
			for fi := range faults {
				if excluded[fi] {
					continue
				}
				for n := 0; n < nw.NumNodes(); n++ {
					id := netlist.NodeID(n)
					if got, want := sim.FaultValue(fi, id), ref[fi].Value(id); got != want {
						t.Fatalf("seed %d step %d fault %d (%s): node %s concurrent=%s serial=%s",
							seed, step, fi, faults[fi].Describe(nw), nw.Name(id), got, want)
					}
				}
			}
			if err := sim.CheckInvariants(); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
		}
	}
}

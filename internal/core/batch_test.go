package core_test

import (
	"context"
	"runtime"
	"testing"

	"fmossim/internal/core"
	"fmossim/internal/fault"
	"fmossim/internal/march"
	"fmossim/internal/netlist"
	"fmossim/internal/ram"
	"fmossim/internal/switchsim"
)

// TestRunBatchMatchesMonolithic: a single replay-mode batch over a
// recorded trajectory reproduces the monolithic simulator exactly —
// the core seam the campaign engine builds on.
func TestRunBatchMatchesMonolithic(t *testing.T) {
	m := ram.New(ram.Config{Rows: 4, Cols: 4})
	faults := fault.NodeStuckFaults(m.Net, fault.Options{})
	seq := march.Sequence1(m)
	opts := core.Options{Observe: []netlist.NodeID{m.DataOut}, Workers: 1}

	mono, err := core.New(m.Net, faults, opts)
	if err != nil {
		t.Fatal(err)
	}
	monoRes := mono.Run(seq)

	rec := core.Record(m.Net, seq, core.Options{})
	br, err := core.RunBatch(context.Background(), switchsim.NewTables(m.Net), faults, rec, seq, opts)
	if err != nil {
		t.Fatal(err)
	}

	for fi := range faults {
		md, mok := mono.Detected(fi)
		if br.Detected[fi] != mok || (mok && br.Detections[fi] != md) {
			t.Fatalf("fault %s: batch detection %+v(%v) vs monolithic %+v(%v)",
				faults[fi].Describe(m.Net), br.Detections[fi], br.Detected[fi], md, mok)
		}
		if br.Oscillated[fi] != mono.Oscillated(fi) {
			t.Fatalf("fault %s: oscillation mismatch", faults[fi].Describe(m.Net))
		}
		mrec := mono.Records(fi)
		if len(mrec) != len(br.Records[fi]) {
			t.Fatalf("fault %s: %d records vs %d", faults[fi].Describe(m.Net), len(br.Records[fi]), len(mrec))
		}
		for n, v := range mrec {
			if br.Records[fi][n] != v {
				t.Fatalf("fault %s node %s: %s vs %s", faults[fi].Describe(m.Net), m.Net.Name(n), br.Records[fi][n], v)
			}
		}
	}

	var fw int64
	for _, st := range br.PerSetting {
		fw += st.FaultWork
	}
	if fw != monoRes.FaultWork {
		t.Fatalf("fault work %d vs monolithic %d", fw, monoRes.FaultWork)
	}
	for pi := range monoRes.PerPattern {
		mp, bp := monoRes.PerPattern[pi], br.PerPattern[pi]
		if bp.FaultWork != mp.FaultWork || bp.MaxActive != mp.MaxActive ||
			bp.Detected != mp.Detected || bp.LiveBefore != mp.LiveBefore || bp.LiveAfter != mp.LiveAfter {
			t.Fatalf("pattern %d stats mismatch: batch %+v vs mono %+v", pi, bp, mp)
		}
	}

	// A consumed batch refuses to replay again.
	b2, err := core.NewFaultBatch(switchsim.NewTables(m.Net), faults[:2], opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b2.RunRecording(context.Background(), rec, seq); err != nil {
		t.Fatal(err)
	}
	if _, err := b2.RunRecording(context.Background(), rec, seq); err == nil {
		t.Fatal("re-running a consumed batch should fail")
	}
}

// allocBytes measures heap bytes allocated by f on the calling goroutine.
func allocBytes(f func()) uint64 {
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	f()
	runtime.ReadMemStats(&m1)
	return m1.TotalAlloc - m0.TotalAlloc
}

// TestBatchMemoryScalesWithWidth is the acceptance check for the pooled
// record scratch: growing a batch by ΔF faults must cost far less than
// ΔF × numNodes bytes. The former design gave every fault a dense
// node-indexed bitmap + value array (≈ 1.125 × numNodes bytes per
// fault); pooling them per worker leaves only the sparse divergence
// store, whose size is activity-dependent and tiny at construction.
func TestBatchMemoryScalesWithWidth(t *testing.T) {
	m := ram.RAM256()
	tab := switchsim.NewTables(m.Net)
	// Transistor faults have two-node site sets and no insertion records:
	// their construction cost isolates the per-fault bookkeeping from
	// workload-dependent site fanout.
	faults := fault.TransistorStuckFaults(m.Net, fault.Options{})
	opts := core.Options{Observe: []netlist.NodeID{m.DataOut}, Workers: 1}
	const small, delta = 16, 256
	if len(faults) < small+delta {
		t.Fatalf("universe too small: %d", len(faults))
	}

	sink := make([]*core.FaultBatch, 0, 2)
	mk := func(n int) func() {
		return func() {
			b, err := core.NewFaultBatch(tab, faults[:n], opts)
			if err != nil {
				t.Fatal(err)
			}
			sink = append(sink, b)
		}
	}
	base := allocBytes(mk(small))
	big := allocBytes(mk(small + delta))
	_ = sink

	perFault := float64(big-base) / float64(delta)
	densePerFault := float64(m.Net.NumNodes()) * 1.125 // old recVal + recBits
	t.Logf("numNodes=%d: %.0f B/fault marginal (dense design needed ≥ %.0f)",
		m.Net.NumNodes(), perFault, densePerFault)
	if perFault > densePerFault/2 {
		t.Fatalf("per-fault construction cost %.0f B approaches the dense design's %.0f B: pooling regressed",
			perFault, densePerFault)
	}
}

// TestDropPolicyString covers the policy names.
func TestDropPolicyString(t *testing.T) {
	cases := map[core.DropPolicy]string{
		core.DropAnyDifference: "drop-any-difference",
		core.DropHardOnly:      "drop-hard-only",
		core.NeverDrop:         "never-drop",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("DropPolicy(%d).String() = %q, want %q", uint8(p), got, want)
		}
	}
	if got := core.DropPolicy(200).String(); got != "DropPolicy(200)" {
		t.Errorf("unknown policy prints %q", got)
	}
}

// Fault equivalence classes: the batch-level redundancy-trimming layer
// (Options.Trim).
//
// Two faults are materialization-equivalent when they patch a circuit
// identically: node faults forcing the same node to the same value, or
// transistor faults pinning the same transistor to the same conduction
// state (stuck-open ≡ wire open, stuck-closed ≡ bridge, plus literal
// duplicates in assembled fault lists). Equivalent faults produce the
// same records, detections, oscillations, and solver work at every step
// — the entire per-fault pipeline (materialization, inertness, interest,
// diff) reads the fault only through its materialized patch and its site
// set, both functions of the patch target alone. One lane therefore
// suffices for the whole class.
//
// Collapse is defensive rather than assumed: candidate classes are
// grouped by materialization key at construction, then each member's
// divergence signature — an incremental XOR-fold of its record store,
// maintained by setRecord/clearRecord — is compared against its
// representative's through a probation window of settings. A member
// whose signature, detection state, or oscillation flag ever deviates
// (impossible unless the equivalence argument is wrong, i.e. a bug) is
// quietly kept independent. Surviving members surrender their lanes at
// the end of probation: records and interest registrations are purged
// exactly as fault dropping does, but the member stays live — its
// detection/drop credit, oscillation flag, final records, and per-setting
// work are fanned back out from the representative, so every BatchResult
// field is byte-identical to the untrimmed run.
//
// Determinism across shardings: classes form within a batch only, so
// different shard splits collapse different pairs — but since collapse
// changes no results (exact equivalence plus exact work crediting), every
// sharding still merges to the same bytes, which is what the difftest
// harness enforces.
package core

import (
	"fmossim/internal/logic"
	"fmossim/internal/netlist"
	"fmossim/internal/switchsim"
)

// DefaultTrimProbation is the probation window (in settings) used when
// Options.TrimProbation is zero.
const DefaultTrimProbation = 8

// sigHash folds one divergence record ⟨n, v⟩ into a class signature term
// (splitmix64 of the packed pair; XOR-combined, so incremental insert,
// update, and delete are all O(1)).
func sigHash(n netlist.NodeID, v logic.Value) uint64 {
	z := (uint64(n)<<2 | uint64(v)) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// matKey is a fault's materialization identity: faults with equal keys
// patch a circuit identically and are candidates for class collapse.
type matKey struct {
	node bool
	id   int32
	v    logic.Value
}

func materializationKey(f faultKeySource) matKey {
	if fv, ok := f.ForcedState(); ok {
		return matKey{node: true, id: int32(f.nodeID()), v: fv}
	}
	pv, _ := f.PinnedState()
	return matKey{node: false, id: int32(f.transID()), v: pv}
}

// groupClasses scans the batch's faults for materialization-equivalent
// groups: the first fault of each key becomes the representative, later
// ones its candidate members. Called from newBatch when trimming is on.
func (b *FaultBatch) groupClasses() {
	first := make(map[matKey]int, len(b.faults))
	for fi, fs := range b.faults {
		k := materializationKey(faultKeySource{fs})
		if rfi, ok := first[k]; ok {
			rep := b.faults[rfi]
			if len(rep.classMembers) == 0 {
				b.classReps = append(b.classReps, rfi)
			}
			rep.classMembers = append(rep.classMembers, fi)
			fs.repFi = rfi
			b.classPending = true
		} else {
			first[k] = fi
		}
	}
}

// faultKeySource adapts a faultState for key extraction without exporting
// fault internals.
type faultKeySource struct{ fs *faultState }

func (s faultKeySource) ForcedState() (logic.Value, bool) { return s.fs.f.ForcedState() }
func (s faultKeySource) PinnedState() (logic.Value, bool) { return s.fs.f.PinnedState() }
func (s faultKeySource) nodeID() netlist.NodeID           { return s.fs.f.Node }
func (s faultKeySource) transID() netlist.TransID         { return s.fs.f.Trans }

// verifyClassSigs runs the per-setting probation check: any candidate
// member whose divergence signature or detection/oscillation state
// deviates from its representative's loses its candidacy.
func (b *FaultBatch) verifyClassSigs() {
	for _, rfi := range b.classReps {
		rep := b.faults[rfi]
		for _, mfi := range rep.classMembers {
			m := b.faults[mfi]
			if m.classCancelled {
				continue
			}
			if m.sig != rep.sig || m.detected != rep.detected ||
				m.dropped != rep.dropped || m.oscillated != rep.oscillated {
				m.classCancelled = true
			}
		}
	}
}

// collapseClasses retires the lanes of every surviving candidate member
// at the end of probation: records and interest registrations are purged
// (the dropCircuit walk, minus the dropped flag — the member stays live),
// and from here on the representative's outcomes are fanned back out at
// observation and assembly time.
func (b *FaultBatch) collapseClasses() {
	b.classPending = false
	for _, rfi := range b.classReps {
		rep := b.faults[rfi]
		kept := rep.classMembers[:0]
		for _, mfi := range rep.classMembers {
			m := b.faults[mfi]
			if m.classCancelled || m.dropped || rep.dropped || m.sig != rep.sig ||
				m.detected != rep.detected || m.oscillated != rep.oscillated {
				continue
			}
			ci := CircuitID(mfi + 1)
			word, bit := b.lane(ci)
			for _, n := range m.recs.nodes {
				cell := &b.recRows[b.recRowIdx[n]][word]
				cell.member &^= 1 << bit
				cell.pl.Clear(bit)
				b.decRecordInterest(n, ci)
			}
			m.recs.release()
			for _, n := range m.sites {
				b.decInterest(n, ci)
			}
			m.collapsed = true
			b.anyCollapsed = true
			b.lanesFreed++
			kept = append(kept, mfi)
		}
		rep.classMembers = kept
	}
}

// liveCollapsedMembers counts the collapsed, undropped members riding on
// representative fs: the fan-out multiplier for work and activity credit.
func (b *FaultBatch) liveCollapsedMembers(fs *faultState) int {
	n := 0
	for _, mfi := range fs.classMembers {
		if m := b.faults[mfi]; m.collapsed && !m.dropped {
			n++
		}
	}
	return n
}

// dropCollapsedMember drops a collapsed member alongside its
// representative: the lane was already surrendered at collapse, so only
// the flags and counters move.
func (b *FaultBatch) dropCollapsedMember(m *faultState) {
	m.dropped = true
	b.live--
	b.retired++
}

// resolveFault returns the faultState whose outcomes describe fault fi:
// the representative for collapsed members, the fault itself otherwise.
func (b *FaultBatch) resolveFault(fi int) *faultState {
	fs := b.faults[fi]
	if fs.collapsed {
		return b.faults[fs.repFi]
	}
	return fs
}

// TrimStats aggregates the batch's redundancy-trimming counters: the
// class-collapse census and the pooled vicinity-memo traffic of the
// worker solvers. Like FaultNS, these are wall-clock-class data — memo
// hit patterns depend on which worker ran which circuit, so they are
// exempt from the determinism contract (deterministic for Workers=1) and
// never part of BatchResult.
type TrimStats struct {
	// ClassCandidates is the number of faults grouped under a
	// representative at construction; LanesFreed of them collapsed after
	// probation.
	ClassCandidates int
	LanesFreed      int
	// Memo is the pooled vicinity-memo traffic across the worker pool.
	Memo switchsim.MemoStats
}

// TrimStats returns the batch's trimming counters (zero when Options.Trim
// is off).
func (b *FaultBatch) TrimStats() TrimStats {
	ts := TrimStats{LanesFreed: b.lanesFreed}
	for _, rfi := range b.classReps {
		ts.ClassCandidates += len(b.faults[rfi].classMembers)
	}
	if b.classPending {
		// Pre-collapse, classMembers still lists cancelled candidates.
		ts.ClassCandidates = 0
		for _, rfi := range b.classReps {
			for _, mfi := range b.faults[rfi].classMembers {
				if !b.faults[mfi].classCancelled {
					ts.ClassCandidates++
				}
			}
		}
	}
	for _, w := range b.workers {
		if w.solve.Memo != nil {
			ts.Memo.Add(w.solve.Memo.Stats())
		}
	}
	return ts
}

package core_test

import (
	"runtime"
	"testing"

	"fmossim/internal/core"
	"fmossim/internal/fault"
	"fmossim/internal/gates"
	"fmossim/internal/logic"
	"fmossim/internal/march"
	"fmossim/internal/netlist"
	"fmossim/internal/ram"
	"fmossim/internal/serial"
	"fmossim/internal/switchsim"
)

// mixedFaults returns a deterministic mixed-kind fault set for a RAM
// instance: node stuck-at, transistor stuck, and bit-line shorts.
func mixedFaults(m *ram.RAM, nNode, nTrans int) []fault.Fault {
	fs := fault.NodeStuckFaults(m.Net, fault.Options{})
	if len(fs) > nNode {
		fs = fs[:nNode]
	}
	ts := fault.TransistorStuckFaults(m.Net, fault.Options{})
	if len(ts) > nTrans {
		ts = ts[:nTrans]
	}
	fs = append(fs, ts...)
	fs = append(fs, fault.BridgeFaults(m.BitlineShorts)...)
	return fs
}

// TestParallelMatchesSerialEngine is the engine-equivalence suite of the
// parallel fault-circuit executor: on RAM64 with a mixed-kind fault set,
// the concurrent simulator at Workers=1 and Workers=4 must produce
// bit-identical divergence records and detections after every pattern,
// agree with the serial reference on every first detection, and keep all
// store/interest/scratch-mirror invariants intact throughout.
func TestParallelMatchesSerialEngine(t *testing.T) {
	m := ram.RAM64()
	faults := mixedFaults(m, 40, 20)
	seq := march.Sequence1(m)
	if testing.Short() {
		seq.Patterns = seq.Patterns[:60]
	}
	opts := func(workers int) core.Options {
		return core.Options{
			Observe: []netlist.NodeID{m.DataOut},
			Workers: workers,
		}
	}

	s1, err := core.New(m.Net, faults, opts(1))
	if err != nil {
		t.Fatal(err)
	}
	sN, err := core.New(m.Net, faults, opts(4))
	if err != nil {
		t.Fatal(err)
	}
	if s1.Workers() != 1 || sN.Workers() != 4 {
		t.Fatalf("worker pools %d/%d, want 1/4", s1.Workers(), sN.Workers())
	}

	for pi := range seq.Patterns {
		s1.RunPattern(&seq.Patterns[pi])
		sN.RunPattern(&seq.Patterns[pi])
		for fi := range faults {
			r1, rN := s1.Records(fi), sN.Records(fi)
			if len(r1) != len(rN) {
				t.Fatalf("pattern %d fault %s: %d records (workers=1) vs %d (workers=4)",
					pi, faults[fi].Describe(m.Net), len(r1), len(rN))
			}
			for n, v := range r1 {
				if rN[n] != v {
					t.Fatalf("pattern %d fault %s node %s: workers=1 %s vs workers=4 %s",
						pi, faults[fi].Describe(m.Net), m.Net.Name(n), v, rN[n])
				}
			}
		}
		if err := s1.CheckInvariants(); err != nil {
			t.Fatalf("pattern %d workers=1: %v", pi, err)
		}
		if err := sN.CheckInvariants(); err != nil {
			t.Fatalf("pattern %d workers=4: %v", pi, err)
		}
	}

	// Detections must agree between worker counts and with the serial
	// reference (oscillating circuits excluded: X-resolution is event-
	// order dependent).
	ref, err := serial.Run(m.Net, faults, seq, serial.Options{
		Observe: []netlist.NodeID{m.DataOut}, StopOnDetect: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for fi := range faults {
		d1, ok1 := s1.Detected(fi)
		dN, okN := sN.Detected(fi)
		if ok1 != okN || (ok1 && d1 != dN) {
			t.Errorf("fault %s: detection differs between worker counts", faults[fi].Describe(m.Net))
		}
		if s1.Oscillated(fi) || ref.PerFault[fi].Oscillated {
			continue
		}
		fr := ref.PerFault[fi]
		if ok1 != fr.Detected {
			t.Errorf("fault %s: concurrent detected=%v serial=%v", faults[fi].Describe(m.Net), ok1, fr.Detected)
			continue
		}
		if ok1 && (d1.Pattern != fr.Pattern || d1.Setting != fr.Setting ||
			d1.Output != fr.Output || d1.Good != fr.Good || d1.Faulty != fr.Faulty) {
			t.Errorf("fault %s: concurrent detection %+v != serial {%d %d %v %s %s}",
				faults[fi].Describe(m.Net), d1, fr.Pattern, fr.Setting, fr.Output, fr.Good, fr.Faulty)
		}
	}
}

// TestWorkersDefault: Workers=0 selects GOMAXPROCS.
func TestWorkersDefault(t *testing.T) {
	m := ram.New(ram.Config{Rows: 2, Cols: 2})
	s, err := core.New(m.Net, fault.NodeStuckFaults(m.Net, fault.Options{}),
		core.Options{Observe: []netlist.NodeID{m.DataOut}})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s.Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Errorf("default workers = %d, want GOMAXPROCS = %d", got, want)
	}
}

// twoOutNet builds two independent nMOS inverters o1 = !a, o2 = !a from a
// shared input, so a fault on "a" diverges at both observed outputs in
// the same observation.
func twoOutNet() *netlist.Network {
	b := netlist.NewBuilder(logic.Scale{Sizes: 2, Strengths: 2})
	a := b.Input("a", logic.Lo)
	o1 := b.Node("o1")
	o2 := b.Node("o2")
	gates.NInv(b, a, o1, "i1")
	gates.NInv(b, a, o2, "i2")
	return b.Finalize()
}

// TestObserveDropOrdering covers drop-during-observe: a circuit detected
// and dropped at the first observed output must be skipped cleanly at
// later outputs of the same observation (its records are already purged),
// while other circuits at the same outputs are still examined, and the
// stores stay consistent.
func TestObserveDropOrdering(t *testing.T) {
	nw := twoOutNet()
	o1, o2 := nw.MustLookup("o1"), nw.MustLookup("o2")
	aID := nw.MustLookup("a")

	// a-sa1 diverges at BOTH outputs (good: a=0 → o1=o2=1; faulty: 0,0).
	// o2-sa0 diverges only at the second output.
	faults := []fault.Fault{
		{Kind: fault.NodeStuck1, Node: aID},
		{Kind: fault.NodeStuck0, Node: o2},
	}
	sim, err := core.New(nw, faults, core.Options{Observe: []netlist.NodeID{o1, o2}})
	if err != nil {
		t.Fatal(err)
	}
	// One pattern with a no-change setting: both faults already diverge at
	// the reset state, so the first observation sees records on o1 and o2.
	p := switchsim.Pattern{Settings: []switchsim.Setting{
		switchsim.MustVector(nw, map[string]logic.Value{"a": logic.Lo}),
	}}
	ps := sim.RunPattern(&p)
	if ps.Detected != 2 {
		t.Fatalf("detected %d of 2 faults in the first observation", ps.Detected)
	}
	// a-sa1 must be credited to the FIRST output it diverges on, even
	// though it also held a record on o2 when it was dropped.
	d0, ok := sim.Detected(0)
	if !ok || d0.Output != o1 {
		t.Errorf("a-sa1 detected at %v (ok=%v), want first output o1", d0.Output, ok)
	}
	d1, ok := sim.Detected(1)
	if !ok || d1.Output != o2 {
		t.Errorf("o2-sa0 detected at %v (ok=%v), want o2", d1.Output, ok)
	}
	if sim.LiveFaults() != 0 {
		t.Errorf("both circuits should be dropped, %d live", sim.LiveFaults())
	}
	// Dropping purged records mid-observation; the stores must be
	// consistent and further stepping must not resurrect anything.
	if err := sim.CheckInvariants(); err != nil {
		t.Error(err)
	}
	sim.StepSetting(switchsim.MustVector(nw, map[string]logic.Value{"a": logic.Hi}))
	if n := len(sim.Records(0)) + len(sim.Records(1)); n != 0 {
		t.Errorf("dropped circuits gained %d records after stepping", n)
	}
	if err := sim.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

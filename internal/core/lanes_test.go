package core_test

import (
	"context"
	"encoding/json"
	"testing"

	"fmossim/internal/core"
	"fmossim/internal/fault"
	"fmossim/internal/march"
	"fmossim/internal/netlist"
	"fmossim/internal/ram"
	"fmossim/internal/switchsim"
)

// normalizeBatchResult zeroes the wall-clock fields, the only
// nondeterministic part of a BatchResult, so byte comparison tests the
// deterministic remainder.
func normalizeBatchResult(br *core.BatchResult) {
	for i := range br.PerSetting {
		br.PerSetting[i].FaultNS = 0
	}
	for i := range br.PerPattern {
		br.PerPattern[i].FaultNS = 0
	}
}

// TestBatchLaneWidthInvariance: the packed-lane batch produces a
// byte-for-byte identical BatchResult for every lane width and worker
// count — the merge-determinism contract of the word-packed engine. The
// lane width changes only how fault circuits are grouped into 64-bit
// words; 1 is the degenerate one-fault-per-word packing, 7 leaves unused
// high bits in every word, 64 is the dense default.
func TestBatchLaneWidthInvariance(t *testing.T) {
	m := ram.New(ram.Config{Rows: 4, Cols: 4})
	faults := fault.NodeStuckFaults(m.Net, fault.Options{})
	seq := march.Sequence1(m)
	rec := core.Record(m.Net, seq, core.Options{})
	tab := switchsim.NewTables(m.Net)

	run := func(laneWidth, workers int) []byte {
		opts := core.Options{
			Observe:   []netlist.NodeID{m.DataOut},
			Workers:   workers,
			LaneWidth: laneWidth,
		}
		br, err := core.RunBatch(context.Background(), tab, faults, rec, seq, opts)
		if err != nil {
			t.Fatalf("lane width %d, workers %d: %v", laneWidth, workers, err)
		}
		normalizeBatchResult(br)
		buf, err := json.Marshal(br)
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}

	ref := run(64, 1)
	for _, lw := range []int{1, 7, 8, 64} {
		for _, workers := range []int{1, 4} {
			if lw == 64 && workers == 1 {
				continue
			}
			if got := run(lw, workers); string(got) != string(ref) {
				t.Fatalf("lane width %d, workers %d: BatchResult diverges from the width-64 serial reference", lw, workers)
			}
		}
	}
}

// TestLaneInvariantsAcrossWidths drives the monolithic simulator at
// several lane widths, checking the packed-plane/record/interest
// invariants after every pattern, and that all widths agree on the final
// outcome.
func TestLaneInvariantsAcrossWidths(t *testing.T) {
	m := ram.New(ram.Config{Rows: 4, Cols: 4})
	faults := fault.NodeStuckFaults(m.Net, fault.Options{})
	seq := march.Sequence1(m)

	var refDetected int
	for i, lw := range []int{1, 8, 64} {
		s, err := core.New(m.Net, faults, core.Options{
			Observe:   []netlist.NodeID{m.DataOut},
			Workers:   2,
			LaneWidth: lw,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("lane width %d, after init: %v", lw, err)
		}
		for pi := range seq.Patterns {
			s.RunPattern(&seq.Patterns[pi])
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("lane width %d, after pattern %d: %v", lw, pi, err)
			}
		}
		detected := 0
		for fi := range faults {
			if _, ok := s.Detected(fi); ok {
				detected++
			}
		}
		if i == 0 {
			refDetected = detected
			if detected == 0 {
				t.Fatal("no faults detected: workload too weak to exercise the planes")
			}
		} else if detected != refDetected {
			t.Fatalf("lane width %d detects %d faults, width 1 detected %d", lw, detected, refDetected)
		}
	}
}

// TestLaneWidthValidation rejects out-of-range widths.
func TestLaneWidthValidation(t *testing.T) {
	m := ram.New(ram.Config{Rows: 2, Cols: 2})
	faults := fault.NodeStuckFaults(m.Net, fault.Options{})
	for _, lw := range []int{-1, 65, 100} {
		_, err := core.New(m.Net, faults, core.Options{
			Observe:   []netlist.NodeID{m.DataOut},
			LaneWidth: lw,
		})
		if err == nil {
			t.Fatalf("LaneWidth %d accepted", lw)
		}
	}
}

package core

import (
	"encoding/json"
	"testing"

	"fmossim/internal/fault"
	"fmossim/internal/march"
	"fmossim/internal/netlist"
	"fmossim/internal/ram"
	"fmossim/internal/switchsim"
)

// stripWall zeroes the wall-clock fields (the only contract-exempt data)
// so results can be compared byte-for-byte via their JSON encoding.
func stripWall(br *BatchResult) {
	for i := range br.PerSetting {
		br.PerSetting[i].FaultNS = 0
		br.PerSetting[i].GoodNS = 0
	}
	for i := range br.PerPattern {
		br.PerPattern[i].FaultNS = 0
		br.PerPattern[i].GoodNS = 0
	}
}

// mustJSON encodes a BatchResult canonically for byte comparison.
func mustJSON(t *testing.T, br *BatchResult) []byte {
	t.Helper()
	stripWall(br)
	bs, err := json.Marshal(br)
	if err != nil {
		t.Fatal(err)
	}
	return bs
}

// TestTrimByteIdentical verifies the central trimming contract: with
// Options.Trim on, every BatchResult field is byte-identical to the
// untrimmed run — for a plain fault list (vicinity memo only) and for a
// list assembled with materialization-equivalent and duplicate faults
// (class collapse fires too), across lane widths, worker counts, and
// probation windows.
func TestTrimByteIdentical(t *testing.T) {
	m := ram.RAM64()
	seq := march.Sequence1(m)
	base := Options{Observe: []netlist.NodeID{m.DataOut}, Workers: 1}
	rec := Record(m.Net, seq, base)
	tab := switchsim.NewTables(m.Net)

	plain := fault.NodeStuckFaults(m.Net, fault.Options{})

	// A list with collapsible classes: bridge faults on the bit-line
	// short carriers plus stuck-closed faults on the same transistors
	// (they pin the same channel to the same state, so they materialize
	// identically), and literal duplicates of plain node faults.
	overlap := fault.BridgeFaults(m.BitlineShorts)
	for _, tid := range m.BitlineShorts {
		overlap = append(overlap, fault.Fault{Kind: fault.TransStuckClosed, Trans: tid})
	}
	overlap = append(overlap, plain[:8]...)
	overlap = append(overlap, plain[:8]...) // duplicates

	cases := []struct {
		name   string
		faults []fault.Fault
		lane   int
		work   int
		prob   int
	}{
		{"plain/w1", plain, 64, 1, 0},
		{"plain/lane7", plain, 7, 1, 0},
		{"plain/workers4", plain, 64, 4, 0},
		{"overlap/w1", overlap, 64, 1, 0},
		{"overlap/prob1", overlap, 64, 1, 1},
		{"overlap/lane5-workers3", overlap, 5, 3, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			off := base
			off.LaneWidth, off.Workers = tc.lane, tc.work
			on := off
			on.Trim = true
			on.TrimProbation = tc.prob

			bOff, err := RunBatch(nil, tab, tc.faults, rec, seq, off)
			if err != nil {
				t.Fatal(err)
			}
			batch, err := NewFaultBatch(tab, tc.faults, on)
			if err != nil {
				t.Fatal(err)
			}
			bOn, err := batch.RunRecording(nil, rec, seq)
			if err != nil {
				t.Fatal(err)
			}
			if err := batch.CheckInvariants(); err != nil {
				t.Fatalf("trimmed batch invariants: %v", err)
			}
			jOff, jOn := mustJSON(t, bOff), mustJSON(t, bOn)
			if string(jOff) != string(jOn) {
				t.Fatalf("trimmed result differs from untrimmed\noff: %.400s\non:  %.400s", jOff, jOn)
			}
			ts := batch.TrimStats()
			t.Logf("classes: %d candidates, %d lanes freed; memo: %d hits / %d misses / %d stores, %d units saved",
				ts.ClassCandidates, ts.LanesFreed, ts.Memo.Hits, ts.Memo.Misses, ts.Memo.Stores, ts.Memo.SavedUnits)
			if tc.name == "overlap/w1" && ts.LanesFreed == 0 {
				t.Error("overlap fault list collapsed no lanes; class grouping is not firing")
			}
			if tc.work == 1 && ts.Memo.Hits == 0 {
				t.Error("memo recorded no hits on a march sequence; memoization is not firing")
			}
		})
	}
}

package core

import (
	"fmt"
	"io"
)

// SettingStats instruments one input setting. All fields except the NS
// wall-clock figures are deterministic: identical for every worker count,
// shard split, and lane width.
type SettingStats struct {
	Pattern, Setting int
	// ActiveCircuits is the number of faulty circuits re-simulated.
	ActiveCircuits int
	// LiveFaults is the number of undropped circuits after the setting.
	LiveFaults int
	// GoodWork/FaultWork are deterministic solver work units.
	GoodWork, FaultWork int64
	// GoodNS/FaultNS are wall-clock nanoseconds.
	GoodNS, FaultNS int64

	// Lane occupancy: LanesReplayed counts activated circuits settled
	// against the shared trajectory index this setting; ScalarFallbacks
	// counts those that fell back to a full scalar settle (oscillated
	// good step, or the FullReplay ablation). The two split
	// ActiveCircuits exactly.
	LanesReplayed, ScalarFallbacks int
	// AdoptedVics/SolvedVics split the replayed circuits' vicinity
	// servicing: trajectory vicinities adopted whole vs solved with full
	// switch-level dynamics.
	AdoptedVics, SolvedVics int64
	// FaultsRetired counts circuits dropped (lane bits retired from every
	// packed plane) since the previous setting's stats — i.e. by the
	// observation interleaved between them.
	FaultsRetired int
}

// PatternStats instruments one pattern (one clock cycle of settings).
type PatternStats struct {
	Pattern  int
	Name     string
	Settings int
	// LiveBefore/LiveAfter bracket the pattern; Detected counts faults
	// first detected during it.
	LiveBefore, LiveAfter int
	Detected              int
	// MaxActive is the peak number of simultaneously re-simulated
	// circuits in any setting of the pattern.
	MaxActive           int
	GoodWork, FaultWork int64
	GoodNS, FaultNS     int64
}

// Work returns the pattern's total work units (good + faulty).
func (p PatternStats) Work() int64 { return p.GoodWork + p.FaultWork }

// NS returns the pattern's total wall-clock nanoseconds.
func (p PatternStats) NS() int64 { return p.GoodNS + p.FaultNS }

// RunStats aggregates across a run.
type RunStats struct {
	Patterns   int
	LiveFaults int
}

// Result is the outcome of simulating a sequence.
type Result struct {
	Sequence   string
	NumFaults  int
	PerPattern []PatternStats

	// Detected is the number of detected faults; HardDetected counts
	// those whose first detection was definite-vs-definite.
	Detected     int
	HardDetected int
	// Oscillated counts faulty circuits that ever hit the round limit.
	Oscillated int

	// Totals.
	GoodWork, FaultWork int64
	GoodNS, FaultNS     int64
}

func (r *Result) finish(b *FaultBatch) {
	for _, ps := range r.PerPattern {
		r.GoodWork += ps.GoodWork
		r.FaultWork += ps.FaultWork
		r.GoodNS += ps.GoodNS
		r.FaultNS += ps.FaultNS
	}
	for _, fs := range b.faults {
		if fs.detected {
			r.Detected++
			if fs.det.Hard {
				r.HardDetected++
			}
		}
		if fs.oscillated {
			r.Oscillated++
		}
	}
}

// Coverage returns the fault coverage in [0,1].
func (r *Result) Coverage() float64 {
	if r.NumFaults == 0 {
		return 0
	}
	return float64(r.Detected) / float64(r.NumFaults)
}

// TotalWork returns the run's total deterministic work units.
func (r *Result) TotalWork() int64 { return r.GoodWork + r.FaultWork }

// TotalNS returns the run's wall-clock nanoseconds.
func (r *Result) TotalNS() int64 { return r.GoodNS + r.FaultNS }

// CumulativeDetections returns, per pattern index, the total number of
// faults detected up to and including that pattern: the rising curve of
// the paper's Figures 1 and 2.
func (r *Result) CumulativeDetections() []int {
	out := make([]int, len(r.PerPattern))
	c := 0
	for i, ps := range r.PerPattern {
		c += ps.Detected
		out[i] = c
	}
	return out
}

// WorkPerPattern returns per-pattern total work units: the falling curve
// of Figures 1 and 2.
func (r *Result) WorkPerPattern() []int64 {
	out := make([]int64, len(r.PerPattern))
	for i, ps := range r.PerPattern {
		out[i] = ps.Work()
	}
	return out
}

// Summary writes a human-readable run summary.
func (r *Result) Summary(w io.Writer) {
	fmt.Fprintf(w, "sequence %q: %d patterns, %d faults\n", r.Sequence, len(r.PerPattern), r.NumFaults)
	fmt.Fprintf(w, "  detected: %d (%.1f%%), hard %d, oscillated %d\n",
		r.Detected, 100*r.Coverage(), r.HardDetected, r.Oscillated)
	fmt.Fprintf(w, "  work: good %d + faulty %d = %d units\n", r.GoodWork, r.FaultWork, r.TotalWork())
	fmt.Fprintf(w, "  time: good %.3fs + faulty %.3fs = %.3fs\n",
		float64(r.GoodNS)/1e9, float64(r.FaultNS)/1e9, float64(r.TotalNS())/1e9)
}

// Fault-circuit execution engine: activity-proportional materialization
// plus parallel execution of activated circuits.
//
// Materialization. A faulty circuit's pre-step view is the good circuit's
// pre-step state (prev) overlaid with the circuit's divergence records and
// fault pin. Instead of copying the whole state per circuit (O(nodes +
// transistors)), each worker keeps a scratch circuit that is a standing
// mirror of prev: a step overlays only the records and the fault, settles,
// diffs, and then reverts exactly the touched nodes — the overlay set, the
// changed inputs, and the settle's changed set — via an undo log. The cost
// of simulating a circuit is therefore proportional to its activity, never
// to circuit size, which is the paper's central scaling claim carried down
// into the constant factors.
//
// Parallelism. Given the good trajectory, the pre-step state, and the good
// post-step state, the activated circuits of one setting are mutually
// independent: each reads only shared immutable state and its own records,
// and writes only its own diff. Circuits are therefore sharded across a
// worker pool, each worker owning a private scratch circuit and solver;
// divergence-record write-back (the only mutation of shared structures) is
// deferred and merged on the coordinating goroutine in ascending
// circuit-id order, so results are bit-identical to serial execution for
// every worker count.
package core

import (
	"sync"
	"sync/atomic"

	"fmossim/internal/logic"
	"fmossim/internal/netlist"
	"fmossim/internal/switchsim"
)

// minParallelBatch is the smallest activated-circuit count worth paying
// goroutine dispatch for; below it the inline path wins.
const minParallelBatch = 8

// recOp is one deferred divergence-record mutation: set (insert/update)
// or clear.
type recOp struct {
	n   netlist.NodeID
	v   logic.Value
	set bool
}

// stepResult locates one activated circuit's diff in its worker's op
// arena.
type stepResult struct {
	wid    int
	lo, hi int
	osc    bool
}

// faultWorker owns the per-goroutine state needed to execute one faulty
// circuit at a time: the scratch mirror of prev, a private solver, the
// undo log, and epoch-stamped diff/interest scratch.
type faultWorker struct {
	sim     *Simulator
	scratch *switchsim.Circuit
	solve   *switchsim.Solver

	// Undo log: the nodes whose scratch state diverged from the prev
	// mirror during the current circuit's step.
	undoStamp []uint32
	undoEpoch uint32
	undo      []netlist.NodeID

	// Diff dedup stamps.
	diffStamp []uint32
	diffEpoch uint32

	// ops is the worker's diff arena for the current setting.
	ops []recOp
}

func newFaultWorker(s *Simulator) *faultWorker {
	w := &faultWorker{
		sim:       s,
		scratch:   switchsim.NewCircuit(s.tab),
		solve:     switchsim.NewSolver(s.tab),
		undoStamp: make([]uint32, s.nw.NumNodes()),
		diffStamp: make([]uint32, s.nw.NumNodes()),
	}
	w.solve.StaticLocality = s.opts.StaticLocality
	w.solve.MaxRounds = s.opts.MaxRounds
	return w
}

// noteUndo stamps node n into the current circuit's undo set.
func (w *faultWorker) noteUndo(n netlist.NodeID) {
	if w.undoStamp[n] != w.undoEpoch {
		w.undoStamp[n] = w.undoEpoch
		w.undo = append(w.undo, n)
	}
}

// seedInterest opens the solver's replay epoch and seeds the circuit's
// static interest set — its divergence records with their gated channel
// terminals (the same neighborhood the interest index registers, via
// recordInterestNodes), plus its static sites — as diverged, blocking
// trajectory adoption there.
func (w *faultWorker) seedInterest(fs *faultState) {
	w.solve.BeginReplay()
	for _, n := range fs.recs.nodes {
		w.sim.recordInterestNodes(n, w.solve.SeedDiverged)
	}
	for _, n := range fs.sites {
		w.solve.SeedDiverged(n)
	}
}

// diffNode compares the scratch (faulty) state against the good post-step
// state at node n and appends the record mutation, if any, to the op
// arena. Nodes already diffed this epoch are skipped. Input nodes are
// diffed too: a forced (faulted) input diverges from the good circuit's
// input value.
func (w *faultWorker) diffNode(fs *faultState, n netlist.NodeID) {
	if w.diffStamp[n] == w.diffEpoch {
		return
	}
	w.diffStamp[n] = w.diffEpoch
	fv := w.scratch.Value(n)
	hasRec := fs.recBits[uint(n)>>6]>>(uint(n)&63)&1 != 0
	if fv != w.sim.good.Value(n) {
		if !hasRec || fs.recVal[n] != fv {
			w.ops = append(w.ops, recOp{n: n, v: fv, set: true})
		}
	} else if hasRec {
		w.ops = append(w.ops, recOp{n: n, set: false})
	}
}

func (w *faultWorker) diffNodes(fs *faultState, nodes []netlist.NodeID) {
	for _, n := range nodes {
		w.diffNode(fs, n)
	}
}

// stepFaulty re-simulates faulty circuit ci for the current setting: a
// serial-fidelity replay of the setting against the circuit's own
// pre-step state. The perturbation seeds are exactly those a standalone
// serial simulation would use — the circuit's own response to the input
// setting — so the replay's event order, and therefore every
// transient-sensitive charge state, matches a serial simulation
// bit-for-bit. The scheduler's interest hits decide only *whether* the
// circuit runs, never what it re-solves.
//
// The scratch circuit enters as a mirror of prev, is patched with the
// circuit's records and fault, settled, diffed against the good post-step
// state into the op arena, and reverted to the mirror before returning.
// The returned range [lo,hi) locates the circuit's ops; osc reports an
// oscillation.
func (w *faultWorker) stepFaulty(ci CircuitID, setting switchsim.Setting, extraSeeds []netlist.NodeID, traj *switchsim.Trajectory, goodChanged []netlist.NodeID) (lo, hi int, osc bool) {
	s := w.sim
	fs := s.faults[ci-1]

	// Materialize the faulty circuit's pre-step view: overlay the
	// divergence records, fix up transistor states for divergent gates,
	// and apply the fault pin. Re-applying the fault is a materialization
	// fix-up (the mirrored transistor states are the good circuit's), not
	// a perturbation, so its seeds are discarded.
	w.undoEpoch++
	w.undo = w.undo[:0]
	for i, n := range fs.recs.nodes {
		w.scratch.OverrideValue(n, fs.recs.vals[i])
		w.noteUndo(n)
	}
	for _, n := range fs.recs.nodes {
		w.scratch.RefreshGates(n)
	}
	fs.f.Apply(w.scratch)
	nodeFault := fs.f.Kind.IsNodeFault()
	if nodeFault {
		w.noteUndo(fs.f.Node)
	}

	seeds := extraSeeds
	if setting != nil {
		for _, a := range setting {
			if w.scratch.Value(a.Node) != a.Value {
				w.noteUndo(a.Node)
			}
		}
		seeds = w.solve.ApplySetting(w.scratch, setting)
	}

	var res switchsim.SettleResult
	if traj != nil {
		w.seedInterest(fs)
		res = w.solve.SettleReplay(w.scratch, seeds, traj)
	} else {
		res = w.solve.Settle(w.scratch, seeds)
	}

	// Diff: the faulty state may now differ from the good post-step state
	// anywhere the faulty settle explored, anywhere the good circuit
	// changed (divergence by inaction: the faulty circuit's wave was
	// blocked where the good circuit's was not), and at the forced node.
	w.diffEpoch++
	lo = len(w.ops)
	w.diffNodes(fs, res.Explored)
	w.diffNodes(fs, goodChanged)
	if nodeFault {
		w.diffNode(fs, fs.f.Node)
	}
	hi = len(w.ops)

	// Revert the scratch to the prev mirror: restore exactly the touched
	// nodes (overlay set, changed inputs, settle changes), refresh the
	// transistors they gate, and lift the fault pin.
	for _, n := range res.Changed {
		w.noteUndo(n)
	}
	if nodeFault {
		w.scratch.DropForce(fs.f.Node)
	}
	for _, n := range w.undo {
		pv := s.prev.Value(n)
		if w.scratch.Value(n) != pv {
			w.scratch.OverrideValue(n, pv)
			w.scratch.RefreshGates(n)
		}
	}
	if !nodeFault {
		w.scratch.DropPin(fs.f.Trans)
	}
	return lo, hi, res.Oscillated
}

// insertFault records the immediate divergence a fault forces before any
// settling: a forced node whose pinned value differs from the good
// circuit's reset value. Transistor pins change no node values by
// themselves, so they create no insertion records. prev equals the good
// reset state when this runs.
func (w *faultWorker) insertFault(ci CircuitID) (lo, hi int) {
	s := w.sim
	fs := s.faults[ci-1]
	if !fs.f.Kind.IsNodeFault() {
		return 0, 0
	}
	fs.f.Apply(w.scratch)
	w.diffEpoch++
	lo = len(w.ops)
	w.diffNode(fs, fs.f.Node)
	hi = len(w.ops)
	w.scratch.DropForce(fs.f.Node)
	w.scratch.OverrideValue(fs.f.Node, s.prev.Value(fs.f.Node))
	w.scratch.RefreshGates(fs.f.Node)
	return lo, hi
}

// applyOps merges one circuit's deferred record mutations into the shared
// stores. Called on the coordinating goroutine only, in ascending
// circuit-id order.
func (s *Simulator) applyOps(ci CircuitID, ops []recOp, osc bool) {
	fs := s.faults[ci-1]
	if osc {
		fs.oscillated = true
	}
	for _, op := range ops {
		if op.set {
			s.setRecord(op.n, ci, op.v)
		} else {
			s.clearRecord(op.n, ci)
		}
	}
}

// runActivated executes the scheduled active circuits — inline on
// workers[0] when the batch is small or the pool has size 1, sharded
// across the pool otherwise — and merges their diffs deterministically.
func (s *Simulator) runActivated(setting switchsim.Setting, extraSeeds []netlist.NodeID, traj *switchsim.Trajectory, goodChanged []netlist.NodeID) {
	active := s.active
	if len(active) == 0 {
		return
	}
	if len(s.workers) == 1 || len(active) < minParallelBatch {
		w := s.workers[0]
		w.ops = w.ops[:0]
		for _, ci := range active {
			lo, hi, osc := w.stepFaulty(ci, setting, extraSeeds, traj, goodChanged)
			s.applyOps(ci, w.ops[lo:hi], osc)
			w.ops = w.ops[:lo]
		}
		return
	}

	if cap(s.results) < len(active) {
		s.results = make([]stepResult, len(active)*2)
	}
	results := s.results[:len(active)]
	nWorkers := len(s.workers)
	if nWorkers > len(active) {
		nWorkers = len(active)
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for wid := 0; wid < nWorkers; wid++ {
		w := s.workers[wid]
		w.ops = w.ops[:0]
		wg.Add(1)
		go func(wid int, w *faultWorker) {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(active) {
					return
				}
				lo, hi, osc := w.stepFaulty(active[i], setting, extraSeeds, traj, goodChanged)
				results[i] = stepResult{wid: wid, lo: lo, hi: hi, osc: osc}
			}
		}(wid, w)
	}
	wg.Wait()
	// Deterministic write-back: ascending circuit-id order, regardless of
	// which worker computed what or when it finished.
	for i, ci := range active {
		r := results[i]
		s.applyOps(ci, s.workers[r.wid].ops[r.lo:r.hi], r.osc)
	}
}

// syncMirrors applies the previous setting's good-circuit delta — the
// changed storage nodes and changed inputs — to prev and to every
// worker's scratch mirror, making them equal to the good circuit's
// current (pre-step) state. Cost is proportional to the previous
// setting's activity, replacing the former O(nodes + transistors) full
// copy per setting.
func (s *Simulator) syncMirrors() {
	s.applyDelta(s.changedInputs)
	s.applyDelta(s.goodDelta)
	s.goodDelta = nil
	s.changedInputs = s.changedInputs[:0]
}

func (s *Simulator) applyDelta(nodes []netlist.NodeID) {
	for _, n := range nodes {
		v := s.good.Value(n)
		s.prev.OverrideValue(n, v)
		s.prev.RefreshGates(n)
		for _, w := range s.workers {
			w.scratch.OverrideValue(n, v)
			w.scratch.RefreshGates(n)
		}
	}
}

// faultWorkUnits sums the fault-side solver work across the pool. Each
// circuit's work is deterministic and the sum is order-independent, so
// the total is identical for every worker count.
func (s *Simulator) faultWorkUnits() int64 {
	var t int64
	for _, w := range s.workers {
		t += w.solve.Work().Units()
	}
	return t
}

// Fault-circuit execution engine: activity-proportional materialization
// plus parallel execution of activated circuits.
//
// Materialization. A faulty circuit's pre-step view is the good circuit's
// pre-step state (prev) overlaid with the circuit's divergence records and
// fault pin. Instead of copying the whole state per circuit (O(nodes +
// transistors)), each worker keeps a scratch circuit that is a standing
// mirror of prev: a step overlays only the records and the fault, settles,
// diffs, and then reverts exactly the touched nodes — the overlay set, the
// changed inputs, and the settle's changed set — via an undo log. The cost
// of simulating a circuit is therefore proportional to its activity, never
// to circuit size, which is the paper's central scaling claim carried down
// into the constant factors.
//
// Memory pooling. The diff pass tests record membership with a node-indexed
// bitmap and compares old values through a dense value array. Those dense
// mirrors are worker-owned scratch, populated from the circuit's sparse
// record store on entry and cleared on exit of each stepFaulty (cost ∝
// records, which the overlay walks anyway). Per-fault memory is therefore
// only the sparse store itself: total bookkeeping is O(workers × nodes +
// total divergence), not O(faults × nodes).
//
// Parallelism. Given the good trajectory, the pre-step state, and the good
// post-step state, the activated circuits of one setting are mutually
// independent: each reads only shared immutable state and its own records,
// and writes only its own diff. Circuits are therefore sharded across a
// worker pool, each worker owning a private scratch circuit and solver;
// divergence-record write-back (the only mutation of shared structures) is
// deferred and merged on the coordinating goroutine in ascending
// circuit-id order, so results are bit-identical to serial execution for
// every worker count.
package core

import (
	"sync"
	"sync/atomic"

	"fmossim/internal/logic"
	"fmossim/internal/netlist"
	"fmossim/internal/switchsim"
)

// minParallelBatch is the smallest activated-circuit count worth paying
// goroutine dispatch for; below it the inline path wins.
const minParallelBatch = 8

// recOp is one deferred divergence-record mutation: set (insert/update)
// or clear.
type recOp struct {
	n   netlist.NodeID
	v   logic.Value
	set bool
}

// stepResult locates one activated circuit's diff in its worker's op
// arena. work carries the circuit's solver-work delta when the circuit is
// a collapsed-class representative (measured so the members' credit can
// be fanned out at write-back).
type stepResult struct {
	wid    int
	lo, hi int
	osc    bool
	work   switchsim.Work
}

// faultWorker owns the per-goroutine state needed to execute one faulty
// circuit at a time: the scratch mirror of prev, a private solver, the
// undo log, the pooled dense record mirrors, and epoch-stamped diff
// scratch.
type faultWorker struct {
	batch   *FaultBatch
	scratch *switchsim.Circuit
	solve   *switchsim.Solver

	// Undo log: the nodes whose scratch state diverged from the prev
	// mirror during the current circuit's step.
	undoStamp []uint32
	undoEpoch uint32
	undo      []netlist.NodeID

	// Diff dedup stamps.
	diffStamp []uint32
	diffEpoch uint32

	// Pooled dense record mirrors of the circuit currently executing:
	// recBits is a node-indexed membership bitmap over its record store
	// and recVal a node-indexed copy of the record values (meaningful
	// only where the bit is set). Populated and cleared per stepFaulty,
	// so the allocation is per worker, not per fault.
	recBits []uint64
	recVal  []logic.Value

	// deltaPos marks how far into the batch's delta log this worker's
	// scratch mirror has been synced (see catchUp).
	deltaPos int

	// ops is the worker's diff arena for the current setting.
	ops []recOp
}

func newFaultWorker(b *FaultBatch) *faultWorker {
	n := b.nw.NumNodes()
	w := &faultWorker{
		batch:     b,
		scratch:   switchsim.NewCircuit(b.tab),
		solve:     switchsim.NewSolver(b.tab),
		undoStamp: make([]uint32, n),
		diffStamp: make([]uint32, n),
		recBits:   make([]uint64, (n+63)/64),
		recVal:    make([]logic.Value, n),
	}
	w.solve.StaticLocality = b.opts.StaticLocality
	w.solve.MaxRounds = b.opts.MaxRounds
	if b.opts.Trim && !b.opts.StaticLocality {
		w.solve.Memo = switchsim.NewVicMemo(b.tab, 0)
	}
	return w
}

// catchUp replays the batch's pending delta-log suffix into this worker's
// scratch mirror, bringing it up to prev (the current pre-step state).
// Syncing is lazy and per-worker: the coordinator only appends deltas to
// the shared log (and advances prev), and each worker catches up on its
// own goroutine the next time it executes a circuit — so mirror
// maintenance parallelizes instead of costing O(delta × workers) serial
// time per setting, and workers idle through a quiet stretch pay nothing
// until they run again. The log is read-only during fan-outs; it is
// appended and trimmed only between them (see trimDeltaLog).
func (w *faultWorker) catchUp() {
	b := w.batch
	if w.deltaPos == len(b.deltaLog) {
		return
	}
	for _, ch := range b.deltaLog[w.deltaPos:] {
		w.scratch.OverrideValue(ch.Node, ch.Value)
		w.scratch.RefreshGates(ch.Node)
	}
	w.deltaPos = len(b.deltaLog)
}

// noteUndo stamps node n into the current circuit's undo set.
func (w *faultWorker) noteUndo(n netlist.NodeID) {
	if w.undoStamp[n] != w.undoEpoch {
		w.undoStamp[n] = w.undoEpoch
		w.undo = append(w.undo, n)
	}
}

// diffNode compares the scratch (faulty) state against the good post-step
// state at node n and appends the record mutation, if any, to the op
// arena. Nodes already diffed this epoch are skipped. Input nodes are
// diffed too: a forced (faulted) input diverges from the good circuit's
// input value.
func (w *faultWorker) diffNode(fs *faultState, n netlist.NodeID) {
	if w.diffStamp[n] == w.diffEpoch {
		return
	}
	w.diffStamp[n] = w.diffEpoch
	fv := w.scratch.Value(n)
	hasRec := w.recBits[uint(n)>>6]>>(uint(n)&63)&1 != 0
	if fv != w.batch.good.Value(n) {
		if !hasRec || w.recVal[n] != fv {
			w.ops = append(w.ops, recOp{n: n, v: fv, set: true})
		}
	} else if hasRec {
		w.ops = append(w.ops, recOp{n: n, set: false})
	}
}

func (w *faultWorker) diffNodes(fs *faultState, nodes []netlist.NodeID) {
	for _, n := range nodes {
		w.diffNode(fs, n)
	}
}

func (w *faultWorker) diffChanges(fs *faultState, chs []switchsim.Change) {
	for _, ch := range chs {
		w.diffNode(fs, ch.Node)
	}
}

// stepFaulty re-simulates faulty circuit ci for the current setting: a
// serial-fidelity replay of the setting against the circuit's own
// pre-step state. The perturbation seeds are exactly those a standalone
// serial simulation would use — the circuit's own response to the input
// setting — so the replay's event order, and therefore every
// transient-sensitive charge state, matches a serial simulation
// bit-for-bit. The scheduler's interest hits decide only *whether* the
// circuit runs, never what it re-solves.
//
// The scratch circuit enters as a mirror of prev, is patched with the
// circuit's records and fault, settled, diffed against the good post-step
// state into the op arena, and reverted to the mirror before returning.
// The returned range [lo,hi) locates the circuit's ops; osc reports an
// oscillation.
func (w *faultWorker) stepFaulty(ci CircuitID, setting switchsim.Setting, extraSeeds []netlist.NodeID, traj *switchsim.Trajectory, goodChanged []switchsim.Change) (lo, hi int, osc bool) {
	b := w.batch
	fs := b.faults[ci-1]
	w.catchUp()

	// Materialize the faulty circuit's pre-step view: overlay the
	// divergence records (populating the pooled dense mirrors in the same
	// walk), fix up transistor states for divergent gates, and apply the
	// fault pin. Re-applying the fault is a materialization fix-up (the
	// mirrored transistor states are the good circuit's), not a
	// perturbation, so its seeds are discarded.
	w.undoEpoch++
	w.undo = w.undo[:0]
	for i, n := range fs.recs.nodes {
		v := fs.recs.vals[i]
		w.scratch.OverrideValue(n, v)
		w.recBits[uint(n)>>6] |= 1 << (uint(n) & 63)
		w.recVal[n] = v
		w.noteUndo(n)
	}
	for _, n := range fs.recs.nodes {
		w.scratch.RefreshGates(n)
	}
	fs.f.Apply(w.scratch)
	nodeFault := fs.f.Kind.IsNodeFault()
	if nodeFault {
		w.noteUndo(fs.f.Node)
	}

	seeds := extraSeeds
	if setting != nil {
		for _, a := range setting {
			if w.scratch.Value(a.Node) != a.Value {
				w.noteUndo(a.Node)
			}
		}
		seeds = w.solve.ApplySetting(w.scratch, setting)
	}

	var res switchsim.SettleResult
	if traj != nil {
		// The prebuilt per-setting index carries this circuit's static
		// divergence set in its lane of the interest-mask rows (the same
		// neighborhood the retired per-circuit seeding registered:
		// divergence records with their gated channel terminals, plus the
		// fault sites), so no per-circuit trajectory indexing or seeding
		// happens here — see FaultBatch.Step and SettleReplayIndexed.
		word, bit := b.lane(ci)
		res = w.solve.SettleReplayIndexed(w.scratch, seeds, b.ix, word, bit)
	} else {
		res = w.solve.Settle(w.scratch, seeds)
	}

	// Diff: the faulty state may now differ from the good post-step state
	// anywhere the faulty settle explored, anywhere the good circuit
	// changed (divergence by inaction: the faulty circuit's wave was
	// blocked where the good circuit's was not), and at the forced node.
	w.diffEpoch++
	lo = len(w.ops)
	w.diffNodes(fs, res.Explored)
	w.diffChanges(fs, goodChanged)
	if nodeFault {
		w.diffNode(fs, fs.f.Node)
	}
	hi = len(w.ops)

	// Revert the scratch to the prev mirror: restore exactly the touched
	// nodes (overlay set, changed inputs, settle changes), refresh the
	// transistors they gate, and lift the fault pin. The pooled bitmap is
	// cleared in the same pass (recVal needs no clearing: it is
	// meaningful only under set bits).
	for _, n := range res.Changed {
		w.noteUndo(n)
	}
	if nodeFault {
		w.scratch.DropForce(fs.f.Node)
	}
	for _, n := range w.undo {
		pv := b.prev.Value(n)
		if w.scratch.Value(n) != pv {
			w.scratch.OverrideValue(n, pv)
			w.scratch.RefreshGates(n)
		}
	}
	if !nodeFault {
		w.scratch.DropPin(fs.f.Trans)
	}
	for _, n := range fs.recs.nodes {
		w.recBits[uint(n)>>6] &^= 1 << (uint(n) & 63)
	}
	return lo, hi, res.Oscillated
}

// insertFault records the immediate divergence a fault forces before any
// settling: a forced node whose pinned value differs from the good
// circuit's reset value. Transistor pins change no node values by
// themselves, so they create no insertion records. prev equals the good
// reset state when this runs, and the record store is empty, so the
// pooled bitmap is correctly all-zero.
func (w *faultWorker) insertFault(ci CircuitID) (lo, hi int) {
	b := w.batch
	fs := b.faults[ci-1]
	w.catchUp()
	if !fs.f.Kind.IsNodeFault() {
		return 0, 0
	}
	fs.f.Apply(w.scratch)
	w.diffEpoch++
	lo = len(w.ops)
	w.diffNode(fs, fs.f.Node)
	hi = len(w.ops)
	w.scratch.DropForce(fs.f.Node)
	w.scratch.OverrideValue(fs.f.Node, b.prev.Value(fs.f.Node))
	w.scratch.RefreshGates(fs.f.Node)
	return lo, hi
}

// applyOps merges one circuit's deferred record mutations into the shared
// stores. Called on the coordinating goroutine only, in ascending
// circuit-id order.
func (b *FaultBatch) applyOps(ci CircuitID, ops []recOp, osc bool) {
	fs := b.faults[ci-1]
	if osc {
		fs.oscillated = true
	}
	for _, op := range ops {
		if op.set {
			b.setRecord(op.n, ci, op.v)
		} else {
			b.clearRecord(op.n, ci)
		}
	}
}

// runActivated executes the scheduled active circuits — inline on
// workers[0] when the batch is small or the pool has size 1, sharded
// across the pool otherwise — and merges their diffs deterministically.
// Collapsed-class representatives have their per-circuit work delta
// measured and credited to their members (times the live member count),
// so work totals stay byte-identical to the untrimmed run.
func (b *FaultBatch) runActivated(setting switchsim.Setting, extraSeeds []netlist.NodeID, traj *switchsim.Trajectory, goodChanged []switchsim.Change) {
	active := b.active
	if len(active) == 0 {
		return
	}
	if len(b.workers) == 1 || len(active) < minParallelBatch {
		w := b.workers[0]
		w.ops = w.ops[:0]
		for _, ci := range active {
			fs := b.faults[ci-1]
			credit := 0
			var w0 switchsim.Work
			if b.anyCollapsed && len(fs.classMembers) > 0 {
				credit = b.liveCollapsedMembers(fs)
				w0 = w.solve.Work()
			}
			lo, hi, osc := w.stepFaulty(ci, setting, extraSeeds, traj, goodChanged)
			if credit > 0 {
				b.creditWork.Add(w.solve.Work().Sub(w0).Scaled(int64(credit)))
			}
			b.applyOps(ci, w.ops[lo:hi], osc)
			w.ops = w.ops[:lo]
		}
		return
	}

	if cap(b.results) < len(active) {
		b.results = make([]stepResult, len(active)*2)
	}
	results := b.results[:len(active)]
	nWorkers := len(b.workers)
	if nWorkers > len(active) {
		nWorkers = len(active)
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for wid := 0; wid < nWorkers; wid++ {
		w := b.workers[wid]
		w.ops = w.ops[:0]
		wg.Add(1)
		go func(wid int, w *faultWorker) {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(active) {
					return
				}
				ci := active[i]
				measure := b.anyCollapsed && len(b.faults[ci-1].classMembers) > 0
				var w0 switchsim.Work
				if measure {
					w0 = w.solve.Work()
				}
				lo, hi, osc := w.stepFaulty(ci, setting, extraSeeds, traj, goodChanged)
				r := stepResult{wid: wid, lo: lo, hi: hi, osc: osc}
				if measure {
					r.work = w.solve.Work().Sub(w0)
				}
				results[i] = r
			}
		}(wid, w)
	}
	wg.Wait()
	// Deterministic write-back: ascending circuit-id order, regardless of
	// which worker computed what or when it finished.
	for i, ci := range active {
		r := results[i]
		if fs := b.faults[ci-1]; b.anyCollapsed && len(fs.classMembers) > 0 {
			if credit := b.liveCollapsedMembers(fs); credit > 0 {
				b.creditWork.Add(r.work.Scaled(int64(credit)))
			}
		}
		b.applyOps(ci, b.workers[r.wid].ops[r.lo:r.hi], r.osc)
	}
}

// applyDelta advances prev by one change list (changed inputs or the good
// settle's changed set, with post-step values) and appends it to the
// delta log the worker mirrors sync from lazily. Called at the end of
// each step, so the coordinator's cost is proportional to the step's
// activity alone — independent of the worker count, and replacing the
// former O(nodes + transistors) full copy per setting.
func (b *FaultBatch) applyDelta(chs []switchsim.Change) {
	for _, ch := range chs {
		b.prev.OverrideValue(ch.Node, ch.Value)
		b.prev.RefreshGates(ch.Node)
	}
	b.deltaLog = append(b.deltaLog, chs...)
}

// trimDeltaLog bounds the delta log. When every worker has caught up it
// is simply reset; otherwise, once the log outgrows the cost of a full
// state copy, laggard workers are synced wholesale from prev and the log
// reset — so a worker that sits out a long quiet stretch costs one
// amortized O(circuit) copy instead of an unbounded replay.
func (b *FaultBatch) trimDeltaLog() {
	maxLag := 0
	for _, w := range b.workers {
		if lag := len(b.deltaLog) - w.deltaPos; lag > maxLag {
			maxLag = lag
		}
	}
	if maxLag > 0 {
		if len(b.deltaLog) <= b.nw.NumNodes()+b.nw.NumTransistors() {
			return
		}
		for _, w := range b.workers {
			if w.deltaPos != len(b.deltaLog) {
				w.scratch.CopyStateFrom(b.prev)
			}
		}
	}
	b.deltaLog = b.deltaLog[:0]
	for _, w := range b.workers {
		w.deltaPos = 0
	}
}

// faultWork sums the fault-side solver work counters across the pool,
// plus the work credited to collapsed class members (their
// representative's, fanned out — see trim.go). Each circuit's work is
// deterministic and the sum is order-independent, so the total is
// identical for every worker count (and every lane width: the per-lane
// replay examines only its own lane's divergence).
func (b *FaultBatch) faultWork() switchsim.Work {
	t := b.creditWork
	for _, w := range b.workers {
		t.Add(w.solve.Work())
	}
	return t
}

package core

import (
	"fmt"
	"sort"

	"fmossim/internal/logic"
	"fmossim/internal/netlist"
)

// incInterest registers circuit ci as interested in node n.
func (s *Simulator) incInterest(n netlist.NodeID, ci CircuitID) {
	s.interest[n] = s.interest[n].inc(ci)
}

// decInterest removes one interest reference.
func (s *Simulator) decInterest(n netlist.NodeID, ci CircuitID) {
	s.interest[n] = s.interest[n].dec(ci)
}

// recordInterestNodes visits the nodes whose interest registration follows
// from a divergence record at n: n itself, plus the storage channel
// terminals of every transistor gated by n (their conduction in the faulty
// circuit differs from the good circuit while n diverges). This is the
// single definition of the record-interest neighborhood; the interest
// index (inc/dec), the replay divergence seeding, and the invariant
// checker all go through it. The visit closures below do not escape, so
// they stay on the caller's stack.
func (s *Simulator) recordInterestNodes(n netlist.NodeID, visit func(netlist.NodeID)) {
	visit(n)
	for _, e := range s.tab.GatedByOf(n) {
		if !s.tab.IsInput(e.Src) {
			visit(e.Src)
		}
		if !s.tab.IsInput(e.Drn) {
			visit(e.Drn)
		}
	}
}

// incRecordInterest / decRecordInterest adjust the interest refcounts
// implied by a divergence record at n.
func (s *Simulator) incRecordInterest(n netlist.NodeID, ci CircuitID) {
	s.recordInterestNodes(n, func(m netlist.NodeID) { s.incInterest(m, ci) })
}

func (s *Simulator) decRecordInterest(n netlist.NodeID, ci CircuitID) {
	s.recordInterestNodes(n, func(m netlist.NodeID) { s.decInterest(m, ci) })
}

// setRecord inserts or updates the divergence record ⟨ci, v⟩ at node n.
func (s *Simulator) setRecord(n netlist.NodeID, ci CircuitID, v logic.Value) {
	fs := s.faults[ci-1]
	i, exists := fs.recs.find(n)
	fs.recVal[n] = v
	if exists {
		fs.recs.vals[i] = v
		return
	}
	fs.recs.insertAt(i, n, v)
	fs.recBits[uint(n)>>6] |= 1 << (uint(n) & 63)
	s.insertNodeCirc(n, ci)
	s.incRecordInterest(n, ci)
}

// clearRecord removes the divergence record of circuit ci at node n, if
// present.
func (s *Simulator) clearRecord(n netlist.NodeID, ci CircuitID) {
	fs := s.faults[ci-1]
	i, exists := fs.recs.find(n)
	if !exists {
		return
	}
	fs.recs.deleteAt(i)
	fs.recBits[uint(n)>>6] &^= 1 << (uint(n) & 63)
	s.removeNodeCirc(n, ci)
	s.decRecordInterest(n, ci)
}

// insertNodeCirc inserts ci into node n's sorted circuit list.
func (s *Simulator) insertNodeCirc(n netlist.NodeID, ci CircuitID) {
	l := s.nodeCircs[n]
	i := sort.Search(len(l), func(k int) bool { return l[k] >= ci })
	l = append(l, 0)
	copy(l[i+1:], l[i:])
	l[i] = ci
	s.nodeCircs[n] = l
}

// removeNodeCirc removes ci from node n's sorted circuit list.
func (s *Simulator) removeNodeCirc(n netlist.NodeID, ci CircuitID) {
	l := s.nodeCircs[n]
	i := sort.Search(len(l), func(k int) bool { return l[k] >= ci })
	if i < len(l) && l[i] == ci {
		s.nodeCircs[n] = append(l[:i], l[i+1:]...)
	}
}

// dropCircuit purges every record and interest registration of circuit ci;
// it will never be simulated again. O(size of the circuit's state), per
// the paper's fault dropping.
func (s *Simulator) dropCircuit(ci CircuitID) {
	fs := s.faults[ci-1]
	for _, n := range fs.recs.nodes {
		s.removeNodeCirc(n, ci)
		s.decRecordInterest(n, ci)
	}
	fs.recs.release()
	for i := range fs.recBits {
		fs.recBits[i] = 0
	}
	for _, n := range fs.sites {
		s.decInterest(n, ci)
	}
	fs.dropped = true
	s.stats.LiveFaults--
}

// CheckInvariants verifies the bidirectional consistency of the record
// stores and the interest index; it is exported for tests and costs
// O(faults × records), so production loops should not call it per setting.
func (s *Simulator) CheckInvariants() error { return s.checkRecordInvariants() }

// checkRecordInvariants verifies the bidirectional consistency of the
// record stores and interest index; used by tests.
func (s *Simulator) checkRecordInvariants() error {
	// Every per-circuit record appears in the per-node list and vice
	// versa, and the per-circuit stores are sorted.
	for fi, fs := range s.faults {
		ci := CircuitID(fi + 1)
		if !sort.SliceIsSorted(fs.recs.nodes, func(a, b int) bool {
			return fs.recs.nodes[a] < fs.recs.nodes[b]
		}) {
			return errf("circuit %d record store unsorted", ci)
		}
		for _, n := range fs.recs.nodes {
			l := s.nodeCircs[n]
			i := sort.Search(len(l), func(k int) bool { return l[k] >= ci })
			if i >= len(l) || l[i] != ci {
				return errf("record (%d,%s) missing from node list", ci, s.nw.Name(n))
			}
		}
	}
	for n := range s.nodeCircs {
		for _, ci := range s.nodeCircs[n] {
			fs := s.faults[ci-1]
			if fs.dropped {
				return errf("dropped circuit %d still on node %s", ci, s.nw.Name(netlist.NodeID(n)))
			}
			if _, ok := fs.recs.get(netlist.NodeID(n)); !ok {
				return errf("node list entry (%d,%s) has no record", ci, s.nw.Name(netlist.NodeID(n)))
			}
		}
		if !sort.SliceIsSorted(s.nodeCircs[n], func(a, b int) bool {
			return s.nodeCircs[n][a] < s.nodeCircs[n][b]
		}) {
			return errf("node %s circuit list unsorted", s.nw.Name(netlist.NodeID(n)))
		}
	}
	// Worker scratch circuits must mirror the pre-step state exactly: the
	// undo-log revert leaves no residue.
	for wi, w := range s.workers {
		if !w.scratch.StateEquals(s.prev) {
			return errf("worker %d scratch is not a mirror of prev", wi)
		}
	}
	// Interest refcounts match the independently recomputed counts.
	want := make([]map[CircuitID]int32, s.nw.NumNodes())
	bump := func(n netlist.NodeID, ci CircuitID) {
		if want[n] == nil {
			want[n] = make(map[CircuitID]int32)
		}
		want[n][ci]++
	}
	for fi, fs := range s.faults {
		ci := CircuitID(fi + 1)
		if fs.dropped {
			continue
		}
		for _, n := range fs.sites {
			bump(n, ci)
		}
		for _, n := range fs.recs.nodes {
			s.recordInterestNodes(n, func(m netlist.NodeID) { bump(m, ci) })
		}
	}
	for n := range s.interest {
		for _, e := range s.interest[n] {
			if want[n] == nil || want[n][e.ci] != e.count {
				return errf("interest[%s][%d]=%d, want %d", s.nw.Name(netlist.NodeID(n)), e.ci, e.count, want[n][e.ci])
			}
		}
		if want[n] != nil {
			for ci, count := range want[n] {
				if i, ok := s.interest[n].find(ci); !ok || s.interest[n][i].count != count {
					return errf("interest[%s][%d] missing or wrong, want %d", s.nw.Name(netlist.NodeID(n)), ci, count)
				}
			}
		}
		if !sort.SliceIsSorted(s.interest[n], func(a, b int) bool {
			return s.interest[n][a].ci < s.interest[n][b].ci
		}) {
			return errf("node %s interest list unsorted", s.nw.Name(netlist.NodeID(n)))
		}
	}
	return nil
}

type invariantError string

func (e invariantError) Error() string { return string(e) }

func errf(format string, args ...any) error {
	return invariantError(fmt.Sprintf(format, args...))
}

package core

import (
	"fmt"
	"math/bits"
	"sort"

	"fmossim/internal/logic"
	"fmossim/internal/netlist"
)

// incInterest registers circuit ci as interested in node n, setting the
// circuit's lane bit in the node's packed interest-mask row (and bumping
// the row's nonzero-word summary on a 0→1 word transition).
func (b *FaultBatch) incInterest(n netlist.NodeID, ci CircuitID) {
	b.interest[n] = b.interest[n].inc(ci)
	word, bit := b.lane(ci)
	w := &b.interestMask[int(n)*b.words+word]
	if *w == 0 {
		b.interestNZ[n]++
	}
	*w |= 1 << bit
}

// decInterest removes one interest reference, clearing the lane bit when
// the count reaches zero.
func (b *FaultBatch) decInterest(n netlist.NodeID, ci CircuitID) {
	b.interest[n] = b.interest[n].dec(ci)
	if _, ok := b.interest[n].find(ci); ok {
		return
	}
	word, bit := b.lane(ci)
	w := &b.interestMask[int(n)*b.words+word]
	if *w>>bit&1 == 0 {
		return
	}
	*w &^= 1 << bit
	if *w == 0 {
		b.interestNZ[n]--
	}
}

// recordInterestNodes visits the nodes whose interest registration follows
// from a divergence record at n: n itself, plus the storage channel
// terminals of every transistor gated by n (their conduction in the faulty
// circuit differs from the good circuit while n diverges). This is the
// single definition of the record-interest neighborhood; the interest
// index (inc/dec), the replay divergence seeding, and the invariant
// checker all go through it. The visit closures below do not escape, so
// they stay on the caller's stack.
func (b *FaultBatch) recordInterestNodes(n netlist.NodeID, visit func(netlist.NodeID)) {
	visit(n)
	for _, e := range b.tab.GatedByOf(n) {
		if !b.tab.IsInput(e.Src) {
			visit(e.Src)
		}
		if !b.tab.IsInput(e.Drn) {
			visit(e.Drn)
		}
	}
}

// incRecordInterest / decRecordInterest adjust the interest refcounts
// implied by a divergence record at n.
func (b *FaultBatch) incRecordInterest(n netlist.NodeID, ci CircuitID) {
	b.recordInterestNodes(n, func(m netlist.NodeID) { b.incInterest(m, ci) })
}

func (b *FaultBatch) decRecordInterest(n netlist.NodeID, ci CircuitID) {
	b.recordInterestNodes(n, func(m netlist.NodeID) { b.decInterest(m, ci) })
}

// recRow returns node n's packed record row, allocating it on first use.
// Rows are lazy so a batch's footprint scales with the nodes that ever
// carry divergence, not numNodes × words.
func (b *FaultBatch) recRow(n netlist.NodeID) []laneCell {
	ri := b.recRowIdx[n]
	if ri < 0 {
		ri = int32(len(b.recRows))
		b.recRowIdx[n] = ri
		b.recRows = append(b.recRows, make([]laneCell, b.words))
	}
	return b.recRows[ri]
}

// setRecord inserts or updates the divergence record ⟨ci, v⟩ at node n,
// maintaining the node's packed row: membership bit plus the two-plane
// encoding of v in the circuit's lane.
func (b *FaultBatch) setRecord(n netlist.NodeID, ci CircuitID, v logic.Value) {
	fs := b.faults[ci-1]
	i, exists := fs.recs.find(n)
	if b.classPending {
		// Divergence signature for class probation: XOR-fold, so updates
		// retract the old term and add the new one in O(1).
		if exists {
			fs.sig ^= sigHash(n, fs.recs.vals[i])
		}
		fs.sig ^= sigHash(n, v)
	}
	word, bit := b.lane(ci)
	cell := &b.recRow(n)[word]
	cell.pl.Set(bit, v)
	if exists {
		fs.recs.vals[i] = v
		return
	}
	cell.member |= 1 << bit
	fs.recs.insertAt(i, n, v)
	b.incRecordInterest(n, ci)
}

// clearRecord removes the divergence record of circuit ci at node n, if
// present.
func (b *FaultBatch) clearRecord(n netlist.NodeID, ci CircuitID) {
	fs := b.faults[ci-1]
	i, exists := fs.recs.find(n)
	if !exists {
		return
	}
	if b.classPending {
		fs.sig ^= sigHash(n, fs.recs.vals[i])
	}
	fs.recs.deleteAt(i)
	word, bit := b.lane(ci)
	cell := &b.recRows[b.recRowIdx[n]][word]
	cell.member &^= 1 << bit
	cell.pl.Clear(bit)
	b.decRecordInterest(n, ci)
}

// dropCircuit purges every record and interest registration of circuit ci
// — its lane bit leaves every packed plane in O(records), and it will
// never be simulated again: the paper's fault dropping, lane-mask retired.
func (b *FaultBatch) dropCircuit(ci CircuitID) {
	fs := b.faults[ci-1]
	word, bit := b.lane(ci)
	for _, n := range fs.recs.nodes {
		cell := &b.recRows[b.recRowIdx[n]][word]
		cell.member &^= 1 << bit
		cell.pl.Clear(bit)
		b.decRecordInterest(n, ci)
	}
	fs.recs.release()
	for _, n := range fs.sites {
		b.decInterest(n, ci)
	}
	fs.dropped = true
	b.live--
	b.retired++
}

// CheckInvariants verifies the bidirectional consistency of the record
// stores and the interest index, and that every worker scratch mirror
// matches the pre-step state exactly. Exported for tests; costs
// O(faults × records).
func (b *FaultBatch) CheckInvariants() error { return b.checkRecordInvariants() }

// checkRecordInvariants verifies the bidirectional consistency of the
// record stores, the packed record rows, and the interest index; used by
// tests.
func (b *FaultBatch) checkRecordInvariants() error {
	// Every per-circuit record appears as a member bit in the node's
	// packed row with the matching two-plane value, and vice versa, and
	// the per-circuit stores are sorted.
	for fi, fs := range b.faults {
		ci := CircuitID(fi + 1)
		if !sort.SliceIsSorted(fs.recs.nodes, func(a, b int) bool {
			return fs.recs.nodes[a] < fs.recs.nodes[b]
		}) {
			return errf("circuit %d record store unsorted", ci)
		}
		word, bit := b.lane(ci)
		for i, n := range fs.recs.nodes {
			ri := b.recRowIdx[n]
			if ri < 0 {
				return errf("record (%d,%s): node has no packed row", ci, b.nw.Name(n))
			}
			cell := &b.recRows[ri][word]
			if cell.member>>bit&1 == 0 {
				return errf("record (%d,%s) missing from packed row", ci, b.nw.Name(n))
			}
			if got := cell.pl.Get(bit); got != fs.recs.vals[i] {
				return errf("record (%d,%s) plane value %v, store %v", ci, b.nw.Name(n), got, fs.recs.vals[i])
			}
		}
	}
	for n := 0; n < b.nw.NumNodes(); n++ {
		ri := b.recRowIdx[n]
		if ri < 0 {
			continue
		}
		row := b.recRows[ri]
		for w := range row {
			cell := &row[w]
			if !cell.pl.Canonical() {
				return errf("node %s word %d: non-canonical planes", b.nw.Name(netlist.NodeID(n)), w)
			}
			if cell.pl.V&^cell.member != 0 || cell.pl.X&^cell.member != 0 {
				return errf("node %s word %d: plane bits outside membership", b.nw.Name(netlist.NodeID(n)), w)
			}
			for m := cell.member; m != 0; m &= m - 1 {
				fi := w*b.laneWidth + bits.TrailingZeros64(m)
				if fi >= len(b.faults) {
					return errf("node %s word %d: member bit beyond fault count", b.nw.Name(netlist.NodeID(n)), w)
				}
				fs := b.faults[fi]
				if fs.dropped {
					return errf("dropped circuit %d still packed on node %s", fi+1, b.nw.Name(netlist.NodeID(n)))
				}
				if _, ok := fs.recs.get(netlist.NodeID(n)); !ok {
					return errf("packed member (%d,%s) has no record", fi+1, b.nw.Name(netlist.NodeID(n)))
				}
			}
		}
	}
	// The live counter matches a fresh scan.
	liveScan := 0
	for _, fs := range b.faults {
		if !fs.dropped {
			liveScan++
		}
	}
	if liveScan != b.live {
		return errf("live counter %d, scan finds %d", b.live, liveScan)
	}
	// Worker scratch circuits must mirror the pre-step state exactly
	// once caught up on the delta log: the undo-log revert leaves no
	// residue. The pooled record bitmaps must be fully cleared between
	// circuits.
	for wi, w := range b.workers {
		w.catchUp()
		if !w.scratch.StateEquals(b.prev) {
			return errf("worker %d scratch is not a mirror of prev", wi)
		}
		for _, word := range w.recBits {
			if word != 0 {
				return errf("worker %d pooled record bitmap not cleared", wi)
			}
		}
	}
	// Interest refcounts match the independently recomputed counts.
	want := make([]map[CircuitID]int32, b.nw.NumNodes())
	bump := func(n netlist.NodeID, ci CircuitID) {
		if want[n] == nil {
			want[n] = make(map[CircuitID]int32)
		}
		want[n][ci]++
	}
	for fi, fs := range b.faults {
		ci := CircuitID(fi + 1)
		if fs.dropped || fs.collapsed {
			// A collapsed class member surrendered its lane: no interest
			// registrations remain (its representative carries the class).
			continue
		}
		for _, n := range fs.sites {
			bump(n, ci)
		}
		for _, n := range fs.recs.nodes {
			b.recordInterestNodes(n, func(m netlist.NodeID) { bump(m, ci) })
		}
	}
	for n := range b.interest {
		for _, e := range b.interest[n] {
			if want[n] == nil || want[n][e.ci] != e.count {
				return errf("interest[%s][%d]=%d, want %d", b.nw.Name(netlist.NodeID(n)), e.ci, e.count, want[n][e.ci])
			}
		}
		if want[n] != nil {
			// Sorted keys: which violation gets reported must not depend
			// on map iteration order.
			cids := make([]CircuitID, 0, len(want[n]))
			for ci := range want[n] {
				cids = append(cids, ci)
			}
			sort.Slice(cids, func(x, y int) bool { return cids[x] < cids[y] })
			for _, ci := range cids {
				if i, ok := b.interest[n].find(ci); !ok || b.interest[n][i].count != want[n][ci] {
					return errf("interest[%s][%d] missing or wrong, want %d", b.nw.Name(netlist.NodeID(n)), ci, want[n][ci])
				}
			}
		}
		if !sort.SliceIsSorted(b.interest[n], func(x, y int) bool {
			return b.interest[n][x].ci < b.interest[n][y].ci
		}) {
			return errf("node %s interest list unsorted", b.nw.Name(netlist.NodeID(n)))
		}
	}
	// The packed interest mask is exactly the bitmap of the interest
	// lists, and the nonzero-word summaries match.
	for n := 0; n < b.nw.NumNodes(); n++ {
		row := b.interestMask[n*b.words : (n+1)*b.words]
		wantRow := make([]uint64, b.words)
		for _, e := range b.interest[n] {
			word, bit := b.lane(e.ci)
			wantRow[word] |= 1 << bit
		}
		nz := int32(0)
		for w := range row {
			if row[w] != wantRow[w] {
				return errf("interest mask row %s word %d: %#x, want %#x",
					b.nw.Name(netlist.NodeID(n)), w, row[w], wantRow[w])
			}
			if row[w] != 0 {
				nz++
			}
		}
		if b.interestNZ[n] != nz {
			return errf("interestNZ[%s]=%d, scan finds %d", b.nw.Name(netlist.NodeID(n)), b.interestNZ[n], nz)
		}
	}
	return nil
}

type invariantError string

func (e invariantError) Error() string { return string(e) }

func errf(format string, args ...any) error {
	return invariantError(fmt.Sprintf(format, args...))
}

package core

import (
	"fmt"
	"sort"

	"fmossim/internal/logic"
	"fmossim/internal/netlist"
)

// incInterest registers circuit ci as interested in node n.
func (s *Simulator) incInterest(n netlist.NodeID, ci CircuitID) {
	m := s.interest[n]
	if m == nil {
		m = make(map[CircuitID]int32, 2)
		s.interest[n] = m
	}
	m[ci]++
}

// decInterest removes one interest reference.
func (s *Simulator) decInterest(n netlist.NodeID, ci CircuitID) {
	m := s.interest[n]
	if m[ci] <= 1 {
		delete(m, ci)
		return
	}
	m[ci]--
}

// recordInterestNodes visits the nodes whose interest registration follows
// from a divergence record at n: n itself, plus the storage channel
// terminals of every transistor gated by n (their conduction in the faulty
// circuit differs from the good circuit while n diverges).
func (s *Simulator) recordInterestNodes(n netlist.NodeID, visit func(netlist.NodeID)) {
	visit(n)
	for _, t := range s.nw.GatedBy(n) {
		tr := s.nw.Transistor(t)
		if s.nw.Node(tr.Source).Kind != netlist.Input {
			visit(tr.Source)
		}
		if s.nw.Node(tr.Drain).Kind != netlist.Input {
			visit(tr.Drain)
		}
	}
}

// setRecord inserts or updates the divergence record ⟨ci, v⟩ at node n.
func (s *Simulator) setRecord(n netlist.NodeID, ci CircuitID, v logic.Value) {
	fs := s.faults[ci-1]
	if _, exists := fs.recs[n]; exists {
		fs.recs[n] = v
		return
	}
	fs.recs[n] = v
	s.insertNodeCirc(n, ci)
	s.recordInterestNodes(n, func(m netlist.NodeID) { s.incInterest(m, ci) })
}

// clearRecord removes the divergence record of circuit ci at node n, if
// present.
func (s *Simulator) clearRecord(n netlist.NodeID, ci CircuitID) {
	fs := s.faults[ci-1]
	if _, exists := fs.recs[n]; !exists {
		return
	}
	delete(fs.recs, n)
	s.removeNodeCirc(n, ci)
	s.recordInterestNodes(n, func(m netlist.NodeID) { s.decInterest(m, ci) })
}

// insertNodeCirc inserts ci into node n's sorted circuit list.
func (s *Simulator) insertNodeCirc(n netlist.NodeID, ci CircuitID) {
	l := s.nodeCircs[n]
	i := sort.Search(len(l), func(k int) bool { return l[k] >= ci })
	l = append(l, 0)
	copy(l[i+1:], l[i:])
	l[i] = ci
	s.nodeCircs[n] = l
}

// removeNodeCirc removes ci from node n's sorted circuit list.
func (s *Simulator) removeNodeCirc(n netlist.NodeID, ci CircuitID) {
	l := s.nodeCircs[n]
	i := sort.Search(len(l), func(k int) bool { return l[k] >= ci })
	if i < len(l) && l[i] == ci {
		s.nodeCircs[n] = append(l[:i], l[i+1:]...)
	}
}

// dropCircuit purges every record and interest registration of circuit ci;
// it will never be simulated again. O(size of the circuit's state), per
// the paper's fault dropping.
func (s *Simulator) dropCircuit(ci CircuitID) {
	fs := s.faults[ci-1]
	for n := range fs.recs {
		s.removeNodeCirc(n, ci)
		s.recordInterestNodes(n, func(m netlist.NodeID) { s.decInterest(m, ci) })
	}
	fs.recs = nil
	for _, n := range fs.sites {
		s.decInterest(n, ci)
	}
	fs.dropped = true
	s.stats.LiveFaults--
}

// CheckInvariants verifies the bidirectional consistency of the record
// stores and the interest index; it is exported for tests and costs
// O(faults × records), so production loops should not call it per setting.
func (s *Simulator) CheckInvariants() error { return s.checkRecordInvariants() }

// checkRecordInvariants verifies the bidirectional consistency of the
// record stores and interest index; used by tests.
func (s *Simulator) checkRecordInvariants() error {
	// Every per-circuit record appears in the per-node list and vice versa.
	for fi, fs := range s.faults {
		ci := CircuitID(fi + 1)
		for n := range fs.recs {
			l := s.nodeCircs[n]
			i := sort.Search(len(l), func(k int) bool { return l[k] >= ci })
			if i >= len(l) || l[i] != ci {
				return errf("record (%d,%s) missing from node list", ci, s.nw.Name(n))
			}
		}
	}
	for n := range s.nodeCircs {
		for _, ci := range s.nodeCircs[n] {
			fs := s.faults[ci-1]
			if fs.dropped {
				return errf("dropped circuit %d still on node %s", ci, s.nw.Name(netlist.NodeID(n)))
			}
			if _, ok := fs.recs[netlist.NodeID(n)]; !ok {
				return errf("node list entry (%d,%s) has no record", ci, s.nw.Name(netlist.NodeID(n)))
			}
		}
		if !sort.SliceIsSorted(s.nodeCircs[n], func(a, b int) bool {
			return s.nodeCircs[n][a] < s.nodeCircs[n][b]
		}) {
			return errf("node %s circuit list unsorted", s.nw.Name(netlist.NodeID(n)))
		}
	}
	// Interest refcounts match the independently recomputed counts.
	want := make([]map[CircuitID]int32, s.nw.NumNodes())
	bump := func(n netlist.NodeID, ci CircuitID) {
		if want[n] == nil {
			want[n] = make(map[CircuitID]int32)
		}
		want[n][ci]++
	}
	for fi, fs := range s.faults {
		ci := CircuitID(fi + 1)
		if fs.dropped {
			continue
		}
		for _, n := range fs.sites {
			bump(n, ci)
		}
		for n := range fs.recs {
			s.recordInterestNodes(n, func(m netlist.NodeID) { bump(m, ci) })
		}
	}
	for n := range s.interest {
		for ci, count := range s.interest[n] {
			if want[n] == nil || want[n][ci] != count {
				return errf("interest[%s][%d]=%d, want %d", s.nw.Name(netlist.NodeID(n)), ci, count, want[n][ci])
			}
		}
		if want[n] != nil {
			for ci, count := range want[n] {
				if s.interest[n][ci] != count {
					return errf("interest[%s][%d]=%d, want %d", s.nw.Name(netlist.NodeID(n)), ci, s.interest[n][ci], count)
				}
			}
		}
	}
	return nil
}

type invariantError string

func (e invariantError) Error() string { return string(e) }

func errf(format string, args ...any) error {
	return invariantError(fmt.Sprintf(format, args...))
}

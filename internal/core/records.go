package core

import (
	"fmt"
	"sort"

	"fmossim/internal/logic"
	"fmossim/internal/netlist"
)

// incInterest registers circuit ci as interested in node n.
func (b *FaultBatch) incInterest(n netlist.NodeID, ci CircuitID) {
	b.interest[n] = b.interest[n].inc(ci)
}

// decInterest removes one interest reference.
func (b *FaultBatch) decInterest(n netlist.NodeID, ci CircuitID) {
	b.interest[n] = b.interest[n].dec(ci)
}

// recordInterestNodes visits the nodes whose interest registration follows
// from a divergence record at n: n itself, plus the storage channel
// terminals of every transistor gated by n (their conduction in the faulty
// circuit differs from the good circuit while n diverges). This is the
// single definition of the record-interest neighborhood; the interest
// index (inc/dec), the replay divergence seeding, and the invariant
// checker all go through it. The visit closures below do not escape, so
// they stay on the caller's stack.
func (b *FaultBatch) recordInterestNodes(n netlist.NodeID, visit func(netlist.NodeID)) {
	visit(n)
	for _, e := range b.tab.GatedByOf(n) {
		if !b.tab.IsInput(e.Src) {
			visit(e.Src)
		}
		if !b.tab.IsInput(e.Drn) {
			visit(e.Drn)
		}
	}
}

// incRecordInterest / decRecordInterest adjust the interest refcounts
// implied by a divergence record at n.
func (b *FaultBatch) incRecordInterest(n netlist.NodeID, ci CircuitID) {
	b.recordInterestNodes(n, func(m netlist.NodeID) { b.incInterest(m, ci) })
}

func (b *FaultBatch) decRecordInterest(n netlist.NodeID, ci CircuitID) {
	b.recordInterestNodes(n, func(m netlist.NodeID) { b.decInterest(m, ci) })
}

// setRecord inserts or updates the divergence record ⟨ci, v⟩ at node n.
func (b *FaultBatch) setRecord(n netlist.NodeID, ci CircuitID, v logic.Value) {
	fs := b.faults[ci-1]
	i, exists := fs.recs.find(n)
	if exists {
		fs.recs.vals[i] = v
		return
	}
	fs.recs.insertAt(i, n, v)
	b.insertNodeCirc(n, ci)
	b.incRecordInterest(n, ci)
}

// clearRecord removes the divergence record of circuit ci at node n, if
// present.
func (b *FaultBatch) clearRecord(n netlist.NodeID, ci CircuitID) {
	fs := b.faults[ci-1]
	i, exists := fs.recs.find(n)
	if !exists {
		return
	}
	fs.recs.deleteAt(i)
	b.removeNodeCirc(n, ci)
	b.decRecordInterest(n, ci)
}

// insertNodeCirc inserts ci into node n's sorted circuit list.
func (b *FaultBatch) insertNodeCirc(n netlist.NodeID, ci CircuitID) {
	l := b.nodeCircs[n]
	i := sort.Search(len(l), func(k int) bool { return l[k] >= ci })
	l = append(l, 0)
	copy(l[i+1:], l[i:])
	l[i] = ci
	b.nodeCircs[n] = l
}

// removeNodeCirc removes ci from node n's sorted circuit list.
func (b *FaultBatch) removeNodeCirc(n netlist.NodeID, ci CircuitID) {
	l := b.nodeCircs[n]
	i := sort.Search(len(l), func(k int) bool { return l[k] >= ci })
	if i < len(l) && l[i] == ci {
		b.nodeCircs[n] = append(l[:i], l[i+1:]...)
	}
}

// dropCircuit purges every record and interest registration of circuit ci;
// it will never be simulated again. O(size of the circuit's state), per
// the paper's fault dropping.
func (b *FaultBatch) dropCircuit(ci CircuitID) {
	fs := b.faults[ci-1]
	for _, n := range fs.recs.nodes {
		b.removeNodeCirc(n, ci)
		b.decRecordInterest(n, ci)
	}
	fs.recs.release()
	for _, n := range fs.sites {
		b.decInterest(n, ci)
	}
	fs.dropped = true
	b.live--
}

// CheckInvariants verifies the bidirectional consistency of the record
// stores and the interest index, and that every worker scratch mirror
// matches the pre-step state exactly. Exported for tests; costs
// O(faults × records).
func (b *FaultBatch) CheckInvariants() error { return b.checkRecordInvariants() }

// checkRecordInvariants verifies the bidirectional consistency of the
// record stores and interest index; used by tests.
func (b *FaultBatch) checkRecordInvariants() error {
	// Every per-circuit record appears in the per-node list and vice
	// versa, and the per-circuit stores are sorted.
	for fi, fs := range b.faults {
		ci := CircuitID(fi + 1)
		if !sort.SliceIsSorted(fs.recs.nodes, func(a, b int) bool {
			return fs.recs.nodes[a] < fs.recs.nodes[b]
		}) {
			return errf("circuit %d record store unsorted", ci)
		}
		for _, n := range fs.recs.nodes {
			l := b.nodeCircs[n]
			i := sort.Search(len(l), func(k int) bool { return l[k] >= ci })
			if i >= len(l) || l[i] != ci {
				return errf("record (%d,%s) missing from node list", ci, b.nw.Name(n))
			}
		}
	}
	for n := range b.nodeCircs {
		for _, ci := range b.nodeCircs[n] {
			fs := b.faults[ci-1]
			if fs.dropped {
				return errf("dropped circuit %d still on node %s", ci, b.nw.Name(netlist.NodeID(n)))
			}
			if _, ok := fs.recs.get(netlist.NodeID(n)); !ok {
				return errf("node list entry (%d,%s) has no record", ci, b.nw.Name(netlist.NodeID(n)))
			}
		}
		if !sort.SliceIsSorted(b.nodeCircs[n], func(x, y int) bool {
			return b.nodeCircs[n][x] < b.nodeCircs[n][y]
		}) {
			return errf("node %s circuit list unsorted", b.nw.Name(netlist.NodeID(n)))
		}
	}
	// The live counter matches a fresh scan.
	liveScan := 0
	for _, fs := range b.faults {
		if !fs.dropped {
			liveScan++
		}
	}
	if liveScan != b.live {
		return errf("live counter %d, scan finds %d", b.live, liveScan)
	}
	// Worker scratch circuits must mirror the pre-step state exactly
	// once caught up on the delta log: the undo-log revert leaves no
	// residue. The pooled record bitmaps must be fully cleared between
	// circuits.
	for wi, w := range b.workers {
		w.catchUp()
		if !w.scratch.StateEquals(b.prev) {
			return errf("worker %d scratch is not a mirror of prev", wi)
		}
		for _, word := range w.recBits {
			if word != 0 {
				return errf("worker %d pooled record bitmap not cleared", wi)
			}
		}
	}
	// Interest refcounts match the independently recomputed counts.
	want := make([]map[CircuitID]int32, b.nw.NumNodes())
	bump := func(n netlist.NodeID, ci CircuitID) {
		if want[n] == nil {
			want[n] = make(map[CircuitID]int32)
		}
		want[n][ci]++
	}
	for fi, fs := range b.faults {
		ci := CircuitID(fi + 1)
		if fs.dropped {
			continue
		}
		for _, n := range fs.sites {
			bump(n, ci)
		}
		for _, n := range fs.recs.nodes {
			b.recordInterestNodes(n, func(m netlist.NodeID) { bump(m, ci) })
		}
	}
	for n := range b.interest {
		for _, e := range b.interest[n] {
			if want[n] == nil || want[n][e.ci] != e.count {
				return errf("interest[%s][%d]=%d, want %d", b.nw.Name(netlist.NodeID(n)), e.ci, e.count, want[n][e.ci])
			}
		}
		if want[n] != nil {
			for ci, count := range want[n] {
				if i, ok := b.interest[n].find(ci); !ok || b.interest[n][i].count != count {
					return errf("interest[%s][%d] missing or wrong, want %d", b.nw.Name(netlist.NodeID(n)), ci, count)
				}
			}
		}
		if !sort.SliceIsSorted(b.interest[n], func(x, y int) bool {
			return b.interest[n][x].ci < b.interest[n][y].ci
		}) {
			return errf("node %s interest list unsorted", b.nw.Name(netlist.NodeID(n)))
		}
	}
	return nil
}

type invariantError string

func (e invariantError) Error() string { return string(e) }

func errf(format string, args ...any) error {
	return invariantError(fmt.Sprintf(format, args...))
}

// Good-circuit producer: simulates the fault-free circuit and emits one
// switchsim.StepTrace per step. The trace is everything a FaultBatch needs
// to execute the step's faulty circuits — input deltas, changed/explored
// sets, and the settle trajectory — so producer and consumer are fully
// decoupled: a trace can be consumed live (zero-copy, borrowing solver
// scratch) or captured into a switchsim.Recording and replayed later by
// any number of independent batches without re-running the good solver.
package core

import (
	"time"

	"fmossim/internal/netlist"
	"fmossim/internal/switchsim"
)

// goodRunner owns the good circuit and its recording solver.
type goodRunner struct {
	tab    *switchsim.Tables
	good   *switchsim.Circuit
	gsolve *switchsim.Solver

	// trace is the reusable live trace; inputBuf and changeBuf back its
	// InputChanges and Changed slices. All are valid until the next step.
	trace     switchsim.StepTrace
	inputBuf  []switchsim.Change
	changeBuf []switchsim.Change
}

func newGoodRunner(tab *switchsim.Tables, opts Options) *goodRunner {
	g := &goodRunner{
		tab:    tab,
		good:   switchsim.NewCircuit(tab),
		gsolve: switchsim.NewSolver(tab),
	}
	g.gsolve.Record = true
	g.gsolve.StaticLocality = opts.StaticLocality
	g.gsolve.MaxRounds = opts.MaxRounds
	return g
}

// init runs the power-on initialization settle (every storage node
// perturbed from the reset state) and returns its borrowed trace.
func (g *goodRunner) init() *switchsim.StepTrace {
	t0 := time.Now() //fmossim:nondeterminism-ok GoodNS wall-clock stats are contract-exempt (doc.go)
	w0 := g.gsolve.Work()
	res := g.gsolve.SettleAll(g.good)
	return g.fill(true, nil, res, w0, t0)
}

// step applies one input setting, settles the good circuit, and returns
// the borrowed trace. Input changes are computed against the pre-step
// values, so the trace carries exactly the assignments that perturb any
// circuit (an unchanged input is a no-op in faulty circuits too).
func (g *goodRunner) step(setting switchsim.Setting) *switchsim.StepTrace {
	t0 := time.Now() //fmossim:nondeterminism-ok GoodNS wall-clock stats are contract-exempt (doc.go)
	w0 := g.gsolve.Work()
	g.inputBuf = g.inputBuf[:0]
	for _, a := range setting {
		if g.good.Value(a.Node) != a.Value {
			g.inputBuf = append(g.inputBuf, switchsim.Change{Node: a.Node, Value: a.Value})
		}
	}
	seeds := g.gsolve.ApplySetting(g.good, setting)
	res := g.gsolve.Settle(g.good, seeds)
	return g.fill(false, g.inputBuf, res, w0, t0)
}

// fill assembles the borrowed step trace from a settle result: changed
// nodes paired with their post-step values, the explored set, and the
// recorded trajectory.
func (g *goodRunner) fill(init bool, inputs []switchsim.Change, res switchsim.SettleResult, w0 switchsim.Work, t0 time.Time) *switchsim.StepTrace {
	g.changeBuf = g.changeBuf[:0]
	for _, n := range res.Changed {
		g.changeBuf = append(g.changeBuf, switchsim.Change{Node: n, Value: g.good.Value(n)})
	}
	g.trace = switchsim.StepTrace{
		Init:         init,
		InputChanges: inputs,
		Changed:      g.changeBuf,
		Explored:     res.Explored,
		Oscillated:   res.Oscillated,
		Traj:         &g.gsolve.Traj,
		GoodWork:     g.gsolve.Work().Sub(w0).Units(),
		GoodNS:       time.Since(t0).Nanoseconds(), //fmossim:nondeterminism-ok GoodNS wall-clock stats are contract-exempt (doc.go)
	}
	return &g.trace
}

// Record simulates only the good circuit through an entire test sequence
// and captures its trajectory as a reusable, serializable Recording: the
// power-on initialization plus one step per input setting. Fault batches
// replay the recording without any good-circuit solver work — the
// record-once/replay-many half of the campaign engine.
//
// Only the good-side options (StaticLocality, MaxRounds, SnapshotEvery)
// are consulted; Observe and the fault-side options configure consumers,
// not the capture. With SnapshotEvery > 0, every that-many-th setting's
// step additionally carries a full state frame (see StepTrace.Snapshot),
// the anchor mid-sequence batch resume needs.
func Record(nw *netlist.Network, seq *switchsim.Sequence, opts Options) *switchsim.Recording {
	g := newGoodRunner(switchsim.NewTables(nw), opts)
	rec := switchsim.NewRecording(nw)
	rec.Append(g.init())
	setting := 0
	for pi := range seq.Patterns {
		p := &seq.Patterns[pi]
		for i := range p.Settings {
			tr := g.step(p.Settings[i])
			setting++
			if opts.SnapshotEvery > 0 && setting%opts.SnapshotEvery == 0 {
				tr.Snapshot = g.good.Snapshot()
			}
			rec.Append(tr)
		}
	}
	return rec
}

package core

import (
	"slices"
	"time"

	"fmossim/internal/netlist"
	"fmossim/internal/switchsim"
)

// insertFault records the immediate divergence a fault forces before any
// settling: a forced node whose pinned value differs from the good
// circuit's reset value. Transistor pins change no node values by
// themselves, so they create no insertion records; their effects appear
// during the initialization settle, which runs as a regular concurrent
// step so that fault insertion happens *before* initialization — a
// manufacturing defect is present from power-on, exactly as in the serial
// reference simulation.
func (s *Simulator) insertFault(ci CircuitID) {
	w := s.workers[0]
	w.ops = w.ops[:0]
	lo, hi := w.insertFault(ci)
	s.applyOps(ci, w.ops[lo:hi], false)
}

// touch stamps node n into the touched region of the current setting.
func (s *Simulator) touch(n netlist.NodeID) {
	if s.touchStamp[n] != s.touchEpoch {
		s.touchStamp[n] = s.touchEpoch
		s.touched = append(s.touched, n)
	}
}

// initStep runs the power-on initialization as a concurrent step: the good
// circuit settles from its reset state with every storage node perturbed,
// and every faulty circuit does the same against its own (faulted) view of
// the reset state — the concurrent counterpart of the serial reference's
// reset + inject + settle-all.
func (s *Simulator) initStep() {
	s.prev.CopyStateFrom(s.good) // reset state is the pre-step state
	res := s.gsolve.SettleAll(s.good)

	all := make([]netlist.NodeID, 0, s.nw.NumNodes())
	for i := 0; i < s.nw.NumNodes(); i++ {
		n := netlist.NodeID(i)
		if s.nw.Node(n).Kind != netlist.Input {
			all = append(all, n)
		}
	}
	s.active = s.active[:0]
	for fi := range s.faults {
		s.active = append(s.active, CircuitID(fi+1))
	}
	// The init settle-all records a trajectory like any other step; the
	// faulty init settles adopt from it wherever they provably match the
	// good circuit (most of the circuit — divergence is local to the
	// fault at power-on).
	traj := &s.gsolve.Traj
	if res.Oscillated || s.opts.FullReplay {
		traj = nil
	}
	s.runActivated(nil, all, traj, res.Changed)
	// Prime the first setting's mirror sync with the initialization
	// delta.
	s.goodDelta = res.Changed
	s.changedInputs = s.changedInputs[:0]
}

// StepSetting advances every live circuit through one input setting: the
// good circuit first, then each activated faulty circuit in ascending
// circuit-id order (the paper's circuit-by-circuit event processing).
// Returns per-setting statistics.
func (s *Simulator) StepSetting(setting switchsim.Setting) SettingStats {
	t0 := time.Now()
	w0 := s.gsolve.Work()

	// Bring prev and the worker scratch mirrors up to the good circuit's
	// pre-step state by applying the previous setting's delta.
	s.syncMirrors()

	s.touchEpoch++
	s.touched = s.touched[:0]

	// The conservative trigger neighborhood of the input changes: storage
	// nodes adjacent to a changing input through ANY transistor (a faulty
	// circuit may conduct where the good circuit does not), plus the
	// channel terminals of transistors the input gates.
	s.inputEpoch++
	for _, a := range setting {
		if s.good.Value(a.Node) == a.Value {
			continue
		}
		s.changedInputs = append(s.changedInputs, a.Node)
		s.inputStamp[a.Node] = s.inputEpoch
		for _, t := range s.nw.Channel(a.Node) {
			o := s.nw.Transistor(t).Other(a.Node)
			if s.nw.Node(o).Kind != netlist.Input {
				s.touch(o)
			}
		}
		for _, t := range s.nw.GatedBy(a.Node) {
			tr := s.nw.Transistor(t)
			if s.nw.Node(tr.Source).Kind != netlist.Input {
				s.touch(tr.Source)
			}
			if s.nw.Node(tr.Drain).Kind != netlist.Input {
				s.touch(tr.Drain)
			}
		}
	}

	// 1. Simulate the good circuit, recording its settling trajectory.
	// Faulty circuits are materialized from the pre-step state (prev):
	// their settle must start from their own previous steady state, not
	// from values the good circuit has already adopted this step.
	goodSeeds := s.gsolve.ApplySetting(s.good, setting)
	res := s.gsolve.Settle(s.good, goodSeeds)
	for _, n := range res.Explored {
		s.touch(n)
	}
	traj := &s.gsolve.Traj
	if res.Oscillated || s.opts.FullReplay {
		// X-resolution makes the trajectory unreliable as an oracle;
		// fall back to full replays this step (also the FullReplay
		// ablation's path).
		traj = nil
	}
	goodWork := s.gsolve.Work().Sub(w0).Units()
	goodNS := time.Since(t0).Nanoseconds()

	// 2+3. Schedule and simulate the activated faulty circuits.
	tf := time.Now()
	wf0 := s.faultWorkUnits()
	nActive := s.simulateActivated(setting, traj, res.Changed)
	faultWork := s.faultWorkUnits() - wf0
	faultNS := time.Since(tf).Nanoseconds()

	// The good circuit's changed set becomes the next setting's mirror
	// delta. It aliases gsolve-owned scratch, which stays valid until the
	// next good settle — i.e. exactly until syncMirrors consumes it.
	s.goodDelta = res.Changed

	st := SettingStats{
		Pattern:        s.patternIdx,
		Setting:        s.settingIdx,
		ActiveCircuits: nActive,
		LiveFaults:     s.stats.LiveFaults,
		GoodWork:       goodWork,
		FaultWork:      faultWork,
		GoodNS:         goodNS,
		FaultNS:        faultNS,
	}
	s.settingIdx++
	return st
}

// simulateActivated schedules every live circuit whose interest set
// intersects the touched region and re-simulates each: against the good
// trajectory when one is available (adopting identical regions, solving
// divergent ones — see switchsim.SettleReplay), or by a full replay of
// the setting otherwise. Returns the number of activated circuits.
func (s *Simulator) simulateActivated(setting switchsim.Setting, traj *switchsim.Trajectory, goodChanged []netlist.NodeID) int {
	s.activeEpoch++
	s.active = s.active[:0]
	for _, n := range s.touched {
		for _, e := range s.interest[n] {
			if s.activeStamp[e.ci] == s.activeEpoch {
				continue
			}
			s.activeStamp[e.ci] = s.activeEpoch
			if fs := s.faults[e.ci-1]; !fs.dropped && !s.faultInert(fs) {
				s.active = append(s.active, e.ci)
			}
		}
	}
	slices.Sort(s.active)
	s.runActivated(setting, nil, traj, goodChanged)
	return len(s.active)
}

// faultInert reports whether a divergence-free circuit provably cannot
// deviate from the good circuit this step, so its activation may be
// skipped. A transistor fault is inert when the good transistor's state
// equals the pinned state and its gate was untouched the whole step (the
// two circuits had identical switch states throughout); a node fault is
// inert when the good node holds the forced value and was untouched (same
// value, and no vicinity involving the node was computed). This filter is
// what keeps a latent stuck memory bit from being re-simulated every time
// its (isolated) write bit line swings — the locality the paper's tail
// phase depends on.
func (s *Simulator) faultInert(fs *faultState) bool {
	if fs.recs.size() > 0 {
		return false
	}
	if pin, ok := fs.f.PinnedState(); ok {
		t := fs.f.Trans
		gate := s.nw.Transistor(t).Gate
		return !s.wasTouched(gate) && s.good.TransState(t) == pin
	}
	forced, _ := fs.f.ForcedState()
	return !s.wasTouched(fs.f.Node) && s.good.Value(fs.f.Node) == forced
}

// wasTouched reports whether node n was touched this step: explored by
// the good settle, in the input-change neighborhood, or (for inputs) the
// changed input itself.
func (s *Simulator) wasTouched(n netlist.NodeID) bool {
	if s.nw.Node(n).Kind == netlist.Input {
		return s.inputStamp[n] == s.inputEpoch
	}
	return s.touchStamp[n] == s.touchEpoch
}

// observe compares every observed output of every circuit holding a
// divergence record there against the good circuit, recording detections
// and dropping circuits per the policy. Only circuits that actually
// diverge at an output are examined — the paper's reason for keeping
// per-node state lists.
func (s *Simulator) observe() []int {
	detectedNow := s.detBuf[:0]
	for _, o := range s.opts.Observe {
		gv := s.good.Value(o)
		circs := s.nodeCircs[o]
		if len(circs) == 0 {
			continue
		}
		// Iterate over a reused snapshot: drops mutate the list.
		s.obsBuf = append(s.obsBuf[:0], circs...)
		for _, ci := range s.obsBuf {
			fs := s.faults[ci-1]
			if fs.dropped {
				continue // dropped at an earlier output this observation
			}
			fv, ok := fs.recs.get(o)
			if !ok || fv == gv {
				continue // defensive: records should exist and differ
			}
			hard := gv.Definite() && fv.Definite()
			// Under DropHardOnly, an X-vs-definite difference is only a
			// potential detection and does not count; otherwise any
			// difference detects, per the paper.
			counts := hard || s.opts.Drop != DropHardOnly
			if counts && !fs.detected {
				fs.det = Detection{
					Pattern: s.patternIdx, Setting: s.settingIdx - 1,
					Output: o, Good: gv, Faulty: fv, Hard: hard,
				}
				fs.detected = true
				detectedNow = append(detectedNow, int(ci-1))
			}
			drop := false
			switch s.opts.Drop {
			case DropAnyDifference:
				drop = true
			case DropHardOnly:
				drop = hard
			case NeverDrop:
			}
			if drop {
				s.dropCircuit(ci)
			}
		}
	}
	s.detBuf = detectedNow
	return detectedNow
}

// RunPattern advances the simulation through one pattern: all of its
// settings, observing outputs per the pattern's observation points.
// Returns the pattern's statistics.
func (s *Simulator) RunPattern(p *switchsim.Pattern) PatternStats {
	ps := PatternStats{Pattern: s.patternIdx, Name: p.Name, LiveBefore: s.stats.LiveFaults}
	s.settingIdx = 0
	for i := range p.Settings {
		st := s.StepSetting(p.Settings[i])
		ps.GoodWork += st.GoodWork
		ps.FaultWork += st.FaultWork
		ps.GoodNS += st.GoodNS
		ps.FaultNS += st.FaultNS
		if st.ActiveCircuits > ps.MaxActive {
			ps.MaxActive = st.ActiveCircuits
		}
		ps.Settings++
		if p.ObserveAt(i) {
			ps.Detected += len(s.observe())
		}
	}
	ps.LiveAfter = s.stats.LiveFaults
	s.patternIdx++
	s.stats.Patterns++
	return ps
}

// Run simulates an entire test sequence, returning the aggregated result.
func (s *Simulator) Run(seq *switchsim.Sequence) *Result {
	r := &Result{Sequence: seq.Name, NumFaults: len(s.faults)}
	for i := range seq.Patterns {
		ps := s.RunPattern(&seq.Patterns[i])
		r.PerPattern = append(r.PerPattern, ps)
	}
	r.finish(s)
	return r
}

package core

import (
	"sort"
	"time"

	"fmossim/internal/netlist"
	"fmossim/internal/switchsim"
)

// insertFault records the immediate divergence a fault forces before any
// settling: a forced node whose pinned value differs from the good
// circuit's reset value. Transistor pins change no node values by
// themselves, so they create no insertion records; their effects appear
// during the initialization settle, which runs as a regular concurrent
// step so that fault insertion happens *before* initialization — a
// manufacturing defect is present from power-on, exactly as in the serial
// reference simulation.
func (s *Simulator) insertFault(ci CircuitID) {
	fs := s.faults[ci-1]
	if !fs.f.Kind.IsNodeFault() {
		return
	}
	s.scratch.CopyStateFrom(s.good)
	s.scratch.ClearFaults()
	fs.f.Apply(s.scratch)
	s.diffEpoch++
	s.diffInto(ci, []netlist.NodeID{fs.f.Node})
}

// diffInto compares the scratch (faulty) state against the good state over
// the given nodes and updates circuit ci's records. Nodes already diffed
// this epoch are skipped. Input nodes are diffed too: a forced (faulted)
// input diverges from the good circuit's input value.
func (s *Simulator) diffInto(ci CircuitID, nodes []netlist.NodeID) {
	for _, n := range nodes {
		if s.diffStamp[n] == s.diffEpoch {
			continue
		}
		s.diffStamp[n] = s.diffEpoch
		fv := s.scratch.Value(n)
		if fv != s.good.Value(n) {
			s.setRecord(n, ci, fv)
		} else {
			s.clearRecord(n, ci)
		}
	}
}

// touch stamps node n into the touched region of the current setting.
func (s *Simulator) touch(n netlist.NodeID) {
	if s.touchStamp[n] != s.touchEpoch {
		s.touchStamp[n] = s.touchEpoch
		s.touched = append(s.touched, n)
	}
}

// initStep runs the power-on initialization as a concurrent step: the good
// circuit settles from its reset state with every storage node perturbed,
// and every faulty circuit does the same against its own (faulted) view of
// the reset state — the concurrent counterpart of the serial reference's
// reset + inject + settle-all.
func (s *Simulator) initStep() {
	s.prev.CopyStateFrom(s.good) // reset state is the pre-step state
	res := s.gsolve.SettleAll(s.good)

	all := make([]netlist.NodeID, 0, s.nw.NumNodes())
	for i := 0; i < s.nw.NumNodes(); i++ {
		n := netlist.NodeID(i)
		if s.nw.Node(n).Kind != netlist.Input {
			all = append(all, n)
		}
	}
	for fi := range s.faults {
		s.stepFaulty(CircuitID(fi+1), nil, all, nil, res.Changed)
	}
}

// StepSetting advances every live circuit through one input setting: the
// good circuit first, then each activated faulty circuit in ascending
// circuit-id order (the paper's circuit-by-circuit event processing).
// Returns per-setting statistics.
func (s *Simulator) StepSetting(setting switchsim.Setting) SettingStats {
	t0 := time.Now()
	w0 := s.gsolve.Work()
	s.touchEpoch++
	s.touched = s.touched[:0]

	// The conservative trigger neighborhood of the input changes: storage
	// nodes adjacent to a changing input through ANY transistor (a faulty
	// circuit may conduct where the good circuit does not), plus the
	// channel terminals of transistors the input gates.
	s.inputEpoch++
	for _, a := range setting {
		if s.good.Value(a.Node) == a.Value {
			continue
		}
		s.inputStamp[a.Node] = s.inputEpoch
		for _, t := range s.nw.Channel(a.Node) {
			o := s.nw.Transistor(t).Other(a.Node)
			if s.nw.Node(o).Kind != netlist.Input {
				s.touch(o)
			}
		}
		for _, t := range s.nw.GatedBy(a.Node) {
			tr := s.nw.Transistor(t)
			if s.nw.Node(tr.Source).Kind != netlist.Input {
				s.touch(tr.Source)
			}
			if s.nw.Node(tr.Drain).Kind != netlist.Input {
				s.touch(tr.Drain)
			}
		}
	}

	// 1. Snapshot the pre-step state, then simulate the good circuit,
	// recording its settling trajectory. Faulty circuits are materialized
	// from the pre-step state: their settle must start from their own
	// previous steady state, not from values the good circuit has already
	// adopted this step.
	s.prev.CopyStateFrom(s.good)
	goodSeeds := s.gsolve.ApplySetting(s.good, setting)
	res := s.gsolve.Settle(s.good, goodSeeds)
	for _, n := range res.Explored {
		s.touch(n)
	}
	traj := s.gsolve.Traj
	if res.Oscillated || s.opts.FullReplay {
		// X-resolution makes the trajectory unreliable as an oracle;
		// fall back to full replays this step (also the FullReplay
		// ablation's path).
		traj = nil
	}
	goodWork := s.gsolve.Work().Sub(w0).Units()
	goodNS := time.Since(t0).Nanoseconds()

	// 2+3. Schedule and simulate the activated faulty circuits.
	tf := time.Now()
	wf0 := s.fsolve.Work()
	nActive := s.simulateActivated(setting, traj, res.Changed)
	faultWork := s.fsolve.Work().Sub(wf0).Units()
	faultNS := time.Since(tf).Nanoseconds()

	st := SettingStats{
		Pattern:        s.patternIdx,
		Setting:        s.settingIdx,
		ActiveCircuits: nActive,
		LiveFaults:     s.stats.LiveFaults,
		GoodWork:       goodWork,
		FaultWork:      faultWork,
		GoodNS:         goodNS,
		FaultNS:        faultNS,
	}
	s.settingIdx++
	return st
}

// simulateActivated schedules every live circuit whose interest set
// intersects the touched region and re-simulates each: against the good
// trajectory when one is available (adopting identical regions, solving
// divergent ones — see switchsim.SettleReplay), or by a full replay of
// the setting otherwise. Returns the number of activated circuits.
func (s *Simulator) simulateActivated(setting switchsim.Setting, traj switchsim.Trajectory, goodChanged []netlist.NodeID) int {
	activeSet := make(map[CircuitID]bool)
	for _, n := range s.touched {
		for ci := range s.interest[n] {
			activeSet[ci] = true
		}
	}
	active := make([]CircuitID, 0, len(activeSet))
	for ci := range activeSet {
		if fs := s.faults[ci-1]; !fs.dropped && !s.faultInert(fs) {
			active = append(active, ci)
		}
	}
	sort.Slice(active, func(i, j int) bool { return active[i] < active[j] })
	for _, ci := range active {
		s.stepFaulty(ci, setting, nil, traj, goodChanged)
	}
	return len(active)
}

// markInterest stamps the interest set of circuit ci and returns the
// membership test used by the trajectory replay.
func (s *Simulator) markInterest(ci CircuitID) func(netlist.NodeID) bool {
	s.intEpoch++
	fs := s.faults[ci-1]
	mark := func(n netlist.NodeID) { s.intStamp[n] = s.intEpoch }
	for n := range fs.recs {
		s.recordInterestNodes(n, mark)
	}
	for _, n := range fs.sites {
		mark(n)
	}
	return func(n netlist.NodeID) bool { return s.intStamp[n] == s.intEpoch }
}

// faultInert reports whether a divergence-free circuit provably cannot
// deviate from the good circuit this step, so its activation may be
// skipped. A transistor fault is inert when the good transistor's state
// equals the pinned state and its gate was untouched the whole step (the
// two circuits had identical switch states throughout); a node fault is
// inert when the good node holds the forced value and was untouched (same
// value, and no vicinity involving the node was computed). This filter is
// what keeps a latent stuck memory bit from being re-simulated every time
// its (isolated) write bit line swings — the locality the paper's tail
// phase depends on.
func (s *Simulator) faultInert(fs *faultState) bool {
	if len(fs.recs) > 0 {
		return false
	}
	if pin, ok := fs.f.PinnedState(); ok {
		t := fs.f.Trans
		gate := s.nw.Transistor(t).Gate
		return !s.wasTouched(gate) && s.good.TransState(t) == pin
	}
	forced, _ := fs.f.ForcedState()
	return !s.wasTouched(fs.f.Node) && s.good.Value(fs.f.Node) == forced
}

// wasTouched reports whether node n was touched this step: explored by
// the good settle, in the input-change neighborhood, or (for inputs) the
// changed input itself.
func (s *Simulator) wasTouched(n netlist.NodeID) bool {
	if s.nw.Node(n).Kind == netlist.Input {
		return s.inputStamp[n] == s.inputEpoch
	}
	return s.touchStamp[n] == s.touchEpoch
}

// stepFaulty re-simulates faulty circuit ci for the current setting: a
// serial-fidelity replay of the setting against the circuit's own
// pre-step state. The perturbation seeds are exactly those a standalone
// serial simulation would use — the circuit's own response to the input
// setting — so the replay's event order, and therefore every
// transient-sensitive charge state, matches a serial simulation
// bit-for-bit. The scheduler's interest hits decide only *whether* the
// circuit runs, never what it re-solves: extra seeds would re-solve
// vicinities at the wrong point in the wave and capture transients a
// serial simulation never produces.
func (s *Simulator) stepFaulty(ci CircuitID, setting switchsim.Setting, extraSeeds []netlist.NodeID, traj switchsim.Trajectory, goodChanged []netlist.NodeID) {
	fs := s.faults[ci-1]

	// Materialize the faulty circuit's pre-step view: the good circuit's
	// pre-step state overlaid with the divergence records, transistor
	// states fixed up for divergent gates, and the fault pin applied.
	// Re-applying the fault is a materialization fix-up (the copied
	// transistor states are the good circuit's), not a perturbation, so
	// its seeds are discarded.
	s.scratch.CopyStateFrom(s.prev)
	s.scratch.ClearFaults()
	for n, v := range fs.recs {
		s.scratch.OverrideValue(n, v)
	}
	for n := range fs.recs {
		s.scratch.RefreshGates(n)
	}
	fs.f.Apply(s.scratch)

	seeds := extraSeeds
	if setting != nil {
		seeds = append(seeds, s.fsolve.ApplySetting(s.scratch, setting)...)
	}

	var res switchsim.SettleResult
	if traj != nil {
		res = s.fsolve.SettleReplay(s.scratch, seeds, traj, s.markInterest(ci))
	} else {
		res = s.fsolve.Settle(s.scratch, seeds)
	}
	if res.Oscillated {
		fs.oscillated = true
	}

	// Write back: the faulty state may now differ from the good post-step
	// state anywhere the faulty settle explored, anywhere the good
	// circuit changed (divergence by inaction: the faulty circuit's wave
	// was blocked where the good circuit's was not), and at the forced
	// node; update records accordingly.
	s.diffEpoch++
	s.diffInto(ci, res.Explored)
	s.diffInto(ci, goodChanged)
	if fs.f.Kind.IsNodeFault() {
		s.diffInto(ci, []netlist.NodeID{fs.f.Node})
	}
}

// observe compares every observed output of every circuit holding a
// divergence record there against the good circuit, recording detections
// and dropping circuits per the policy. Only circuits that actually
// diverge at an output are examined — the paper's reason for keeping
// per-node state lists.
func (s *Simulator) observe() []int {
	var detectedNow []int
	for _, o := range s.opts.Observe {
		gv := s.good.Value(o)
		// Iterate over a copy: drops mutate the list.
		circs := s.nodeCircs[o]
		if len(circs) == 0 {
			continue
		}
		tmp := make([]CircuitID, len(circs))
		copy(tmp, circs)
		for _, ci := range tmp {
			fs := s.faults[ci-1]
			if fs.dropped {
				continue // dropped at an earlier output this observation
			}
			fv := fs.recs[o]
			if fv == gv {
				continue // defensive: records should always differ
			}
			hard := gv.Definite() && fv.Definite()
			// Under DropHardOnly, an X-vs-definite difference is only a
			// potential detection and does not count; otherwise any
			// difference detects, per the paper.
			counts := hard || s.opts.Drop != DropHardOnly
			if counts && !fs.detected {
				fs.det = Detection{
					Pattern: s.patternIdx, Setting: s.settingIdx - 1,
					Output: o, Good: gv, Faulty: fv, Hard: hard,
				}
				fs.detected = true
				detectedNow = append(detectedNow, int(ci-1))
			}
			drop := false
			switch s.opts.Drop {
			case DropAnyDifference:
				drop = true
			case DropHardOnly:
				drop = hard
			case NeverDrop:
			}
			if drop {
				s.dropCircuit(ci)
			}
		}
	}
	return detectedNow
}

// RunPattern advances the simulation through one pattern: all of its
// settings, observing outputs per the pattern's observation points.
// Returns the pattern's statistics.
func (s *Simulator) RunPattern(p *switchsim.Pattern) PatternStats {
	ps := PatternStats{Pattern: s.patternIdx, Name: p.Name, LiveBefore: s.stats.LiveFaults}
	s.settingIdx = 0
	for i := range p.Settings {
		st := s.StepSetting(p.Settings[i])
		ps.GoodWork += st.GoodWork
		ps.FaultWork += st.FaultWork
		ps.GoodNS += st.GoodNS
		ps.FaultNS += st.FaultNS
		if st.ActiveCircuits > ps.MaxActive {
			ps.MaxActive = st.ActiveCircuits
		}
		ps.Settings++
		if p.ObserveAt(i) {
			ps.Detected += len(s.observe())
		}
	}
	ps.LiveAfter = s.stats.LiveFaults
	s.patternIdx++
	s.stats.Patterns++
	return ps
}

// Run simulates an entire test sequence, returning the aggregated result.
func (s *Simulator) Run(seq *switchsim.Sequence) *Result {
	r := &Result{Sequence: seq.Name, NumFaults: len(s.faults)}
	for i := range seq.Patterns {
		ps := s.RunPattern(&seq.Patterns[i])
		r.PerPattern = append(r.PerPattern, ps)
	}
	r.finish(s)
	return r
}

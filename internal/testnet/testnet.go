// Structured and Soup circuit generators. Package documentation lives
// in doc.go.
package testnet

import (
	"fmt"
	"math/rand"

	"fmossim/internal/gates"
	"fmossim/internal/logic"
	"fmossim/internal/netlist"
	"fmossim/internal/switchsim"
)

// Circuit bundles a generated network with its stimulus handles.
type Circuit struct {
	Net *netlist.Network
	// DataInputs are the freely assignable input nodes (excludes rails).
	DataInputs []netlist.NodeID
	// Outputs are suggested observation nodes.
	Outputs []netlist.NodeID
}

// Structured generates a layered circuit of random cells. Layer 0 is the
// data inputs; each subsequent layer's cells draw inputs from earlier
// layers. Cell mix: nMOS and CMOS inverters/NANDs/NORs, dynamic latches
// (clocked by a dedicated clock input), and pass-transistor 2:1 muxes.
func Structured(rng *rand.Rand) *Circuit {
	b := netlist.NewBuilder(logic.Scale{Sizes: 2, Strengths: 2})
	nIn := 2 + rng.Intn(4)
	clk := b.Input("clk", logic.Lo)
	var ins []netlist.NodeID
	for i := 0; i < nIn; i++ {
		ins = append(ins, b.Input(fmt.Sprintf("in%d", i), logic.Lo))
	}
	pool := append([]netlist.NodeID(nil), ins...)

	nCells := 3 + rng.Intn(10)
	var outs []netlist.NodeID
	pick := func() netlist.NodeID { return pool[rng.Intn(len(pool))] }
	for i := 0; i < nCells; i++ {
		prefix := fmt.Sprintf("c%d", i)
		out := b.Node(prefix + ".out")
		switch rng.Intn(8) {
		case 0:
			gates.NInv(b, pick(), out, prefix)
		case 1:
			gates.CInv(b, pick(), out, prefix)
		case 2:
			gates.NNand(b, out, prefix, pick(), pick())
		case 3:
			gates.CNand(b, out, prefix, pick(), pick())
		case 4:
			gates.NNor(b, out, prefix, pick(), pick())
		case 5:
			gates.CNor(b, out, prefix, pick(), pick())
		case 6:
			gates.DynLatch(b, clk, pick(), out, prefix, rng.Intn(2) == 0)
		case 7:
			// Pass-transistor 2:1 mux with complementary selects derived
			// through an inverter, merging on a shared (sized) node.
			sel := pick()
			selBar := b.Node(prefix + ".selbar")
			gates.CInv(b, sel, selBar, prefix+".selinv")
			mid := b.SizedNode(prefix+".mid", 1+rng.Intn(2))
			b.N(sel, pick(), mid, prefix+".pa")
			b.N(selBar, pick(), mid, prefix+".pb")
			gates.CInv(b, mid, out, prefix+".oinv")
		}
		pool = append(pool, out)
		outs = append(outs, out)
	}

	nw := b.Finalize()
	c := &Circuit{Net: nw, DataInputs: append([]netlist.NodeID{clk}, ins...)}
	// Observe the last few cell outputs.
	from := len(outs) - 3
	if from < 0 {
		from = 0
	}
	c.Outputs = outs[from:]
	return c
}

// Soup generates a completely random transistor network: arbitrary
// gate/source/drain wiring over a shared node pool. Such networks may
// contain fighting drivers, loops through pass transistors, and
// oscillators; they exercise the solver's robustness.
func Soup(rng *rand.Rand) *Circuit {
	b := netlist.NewBuilder(logic.Scale{Sizes: 2, Strengths: 2})
	nIn := 1 + rng.Intn(4)
	var ins []netlist.NodeID
	for i := 0; i < nIn; i++ {
		ins = append(ins, b.Input(fmt.Sprintf("in%d", i), logic.Lo))
	}
	nStore := 3 + rng.Intn(10)
	var store []netlist.NodeID
	for i := 0; i < nStore; i++ {
		store = append(store, b.SizedNode(fmt.Sprintf("s%d", i), 1+rng.Intn(2)))
	}
	all := append(append([]netlist.NodeID{b.Vdd, b.Gnd}, ins...), store...)

	nTrans := 4 + rng.Intn(20)
	for i := 0; i < nTrans; i++ {
		gate := all[rng.Intn(len(all))]
		src := all[rng.Intn(len(all))]
		drn := all[rng.Intn(len(all))]
		if src == drn {
			continue
		}
		typ := logic.NType
		strength := 1 + rng.Intn(2)
		switch rng.Intn(10) {
		case 0, 1, 2:
			typ = logic.PType
		case 3:
			typ = logic.DType
			strength = 1
		}
		b.StrengthTrans(typ, strength, gate, src, drn, fmt.Sprintf("t%d", i))
	}
	nw := b.Finalize()
	return &Circuit{Net: nw, DataInputs: ins, Outputs: store}
}

// RandomSetting assigns random values to the circuit's data inputs.
// xProb is the probability (out of 100) that an input is driven to X.
func (c *Circuit) RandomSetting(rng *rand.Rand, xProb int) switchsim.Setting {
	var set switchsim.Setting
	for _, in := range c.DataInputs {
		v := logic.Value(rng.Intn(2))
		if rng.Intn(100) < xProb {
			v = logic.X
		}
		set = append(set, switchsim.Assignment{Node: in, Value: v})
	}
	return set
}

// RandomSequence builds a sequence of n single-setting patterns.
func (c *Circuit) RandomSequence(rng *rand.Rand, n, xProb int) *switchsim.Sequence {
	seq := &switchsim.Sequence{Name: "random"}
	for i := 0; i < n; i++ {
		seq.Patterns = append(seq.Patterns, switchsim.Pattern{
			Name:     fmt.Sprintf("p%d", i),
			Settings: []switchsim.Setting{c.RandomSetting(rng, xProb)},
		})
	}
	return seq
}

// Package testnet generates random switch-level circuits and stimulus for
// property-based testing. Two generators are provided: Structured, which
// composes well-behaved cells (gates, latches, pass muxes) into a layered
// circuit, and Soup, which wires completely random transistor networks.
// Structured circuits are used for equivalence properties (serial vs
// concurrent fault simulation must agree); Soup circuits stress the solver
// for robustness properties (termination, idempotence, monotonicity).
package testnet

// The mergeorder analyzer: everything feeding campaign.Merge — and every
// construction of a core.BatchResult — must produce circuits in
// ascending-id order. Merge is the single determinism point of the whole
// system (one machine or a fleet merges to the same Result only because
// every batch's slices are indexed by fault id), so a merge-feeding
// function that builds slices from a map iteration, or appends to a
// shared slice from concurrently scheduled goroutines, reorders circuits
// under the merge and breaks bit-identity.
package analysis

import (
	"go/ast"
	"go/types"
)

// mergeTypePkg/mergeFuncPkg locate the contract's anchors.
const (
	mergeTypePkg = "fmossim/internal/core"     // core.BatchResult
	mergeFuncPkg = "fmossim/internal/campaign" // campaign.Merge
)

// Mergeorder flags, inside functions that construct core.BatchResult
// values (or call campaign.Merge), map-sourced iteration without a
// subsequent sort and concurrent appends to shared slices.
var Mergeorder = &Analyzer{
	Name: "mergeorder",
	Doc: "merge-feeding functions must order circuits by ascending id\n\n" +
		"Functions that build core.BatchResult values or call campaign.Merge\n" +
		"may not iterate maps (unless collect-then-sort) or append to shared\n" +
		"slices from spawned goroutines: batch slices are indexed by fault id\n" +
		"and the merge's bit-identity depends on that order.",
	Run: runMergeorder,
}

func runMergeorder(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !feedsMerge(pass.TypesInfo, fd) {
				continue
			}
			checkMergeFeeder(pass, fd)
		}
	}
	return nil
}

// feedsMerge reports whether the function touches the merge contract: it
// references the core.BatchResult type anywhere (construction, fields,
// slices of results) or calls campaign.Merge.
func feedsMerge(info *types.Info, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if obj := info.Uses[n]; obj != nil {
				if tn, ok := obj.(*types.TypeName); ok && tn.Pkg() != nil &&
					tn.Pkg().Path() == mergeTypePkg && tn.Name() == "BatchResult" {
					found = true
				}
			}
		case *ast.CallExpr:
			if isPkgFunc(calleeObj(info, n), mergeFuncPkg, "Merge") {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkMergeFeeder reports order hazards inside one merge-feeding
// function.
func checkMergeFeeder(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if isMapType(info, n.X) && !rangeCollectsSorted(info, fd, n) {
				pass.Reportf(n.Pos(),
					"map-sourced iteration in merge-feeding function %s: circuits must feed campaign.Merge/BatchResult in ascending-id order (sort the keys, or annotate with %s <reason>)",
					fd.Name.Name, AnnotationMarker)
			}
		case *ast.GoStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				reportSharedAppends(pass, fd, lit)
			}
		}
		return true
	})
}

// reportSharedAppends flags appends inside a go'd literal whose target
// slice is declared outside the literal: the append order then depends on
// goroutine scheduling.
func reportSharedAppends(pass *Pass, fd *ast.FuncDecl, lit *ast.FuncLit) {
	info := pass.TypesInfo
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		lhs, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
		if !ok {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" || info.Uses[id] != types.Universe.Lookup("append") {
			return true
		}
		obj := info.ObjectOf(lhs)
		if obj == nil || obj.Parent() == nil {
			return true
		}
		// Declared outside the literal ⇒ shared across goroutines.
		if obj.Pos() < lit.Pos() || obj.Pos() > lit.End() {
			pass.Reportf(as.Pos(),
				"append to %s (declared outside the goroutine) in merge-feeding function %s: append order is scheduling-dependent; write to an index owned by this shard instead",
				lhs.Name, fd.Name.Name)
		}
		return true
	})
}

// The planecanon analyzer: the two-plane ternary encoding is only
// canonical if nobody writes the planes by hand. switchsim.LanePlanes
// keeps the V bit clear wherever the X bit is set; every exported
// operation (Set, Clear, Not, Lub, …) preserves that form, and the
// word-wide equality/membership masks of the packed fault engine are
// correct only against canonical planes. A direct store to .V or .X from
// outside internal/switchsim can construct a non-canonical pair that
// compares wrong in EqMask — a silent merge-determinism break.
package analysis

import (
	"go/ast"
	"go/types"
)

// switchsimPath is the only package allowed to touch the raw planes.
const switchsimPath = "fmossim/internal/switchsim"

// Planecanon flags direct writes (assignments, compound assignments,
// increments, address-taking) to the V/X fields of switchsim.LanePlanes
// outside internal/switchsim.
var Planecanon = &Analyzer{
	Name: "planecanon",
	Doc: "no raw LanePlanes plane writes outside internal/switchsim\n\n" +
		"Direct stores to LanePlanes.V/.X can break the canonical two-plane\n" +
		"encoding (V clear wherever X is set) that the word-wide lane algebra\n" +
		"relies on; use Set/Clear and the exported plane operations.",
	Run: runPlanecanon,
}

func runPlanecanon(pass *Pass) error {
	if pass.Pkg.Path() == switchsimPath {
		return nil
	}
	report := func(se *ast.SelectorExpr, how string) {
		pass.Reportf(se.Pos(),
			"%s of LanePlanes.%s outside %s breaks the canonical two-plane encoding; use Set/Clear or the exported plane algebra",
			how, se.Sel.Name, switchsimPath)
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if se := planeFieldSelector(pass.TypesInfo, lhs); se != nil {
						report(se, "direct write")
					}
				}
			case *ast.IncDecStmt:
				if se := planeFieldSelector(pass.TypesInfo, n.X); se != nil {
					report(se, "direct write")
				}
			case *ast.UnaryExpr:
				if n.Op.String() == "&" {
					if se := planeFieldSelector(pass.TypesInfo, n.X); se != nil {
						report(se, "taking the address")
					}
				}
			}
			return true
		})
	}
	return nil
}

// planeFieldSelector returns e as a selector of the V or X field of
// switchsim.LanePlanes, or nil.
func planeFieldSelector(info *types.Info, e ast.Expr) *ast.SelectorExpr {
	se, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || (se.Sel.Name != "V" && se.Sel.Name != "X") {
		return nil
	}
	sel, ok := info.Selections[se]
	if !ok || sel.Kind() != types.FieldVal {
		return nil
	}
	if !isNamed(sel.Recv(), switchsimPath, "LanePlanes") {
		return nil
	}
	return se
}

// Package loading without golang.org/x/tools: the loader shells out to
// `go list -export` for dependency export data and type-checks the target
// packages' sources with go/types, importing every dependency (stdlib and
// module-internal alike) from the compiler's export files. This is the
// same division of labor as go/packages' LoadAllSyntax for the targets and
// LoadTypes for their dependencies, built from the standard library only.
package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// A Package is one loaded, type-checked target package.
type Package struct {
	// Path is the import path; Dir the source directory.
	Path string
	Dir  string

	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// Sources holds each file's raw bytes (keyed by filename), kept for
	// the annotation facility's own-line/trailing comment distinction.
	Sources map[string][]byte
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	Dir        string
	ImportPath string
	Export     string
	GoFiles    []string
	Standard   bool
	Error      *struct{ Err string }
	DepsErrors []*struct{ Err string }
}

// goList runs `go list -e -deps -export -json` over patterns in dir and
// returns the decoded package stream (dependencies first).
func goList(dir string, patterns []string) ([]listedPkg, error) {
	args := append([]string{
		"list", "-e", "-deps", "-export",
		"-json=ImportPath,Export,Dir,GoFiles,Standard,Error,DepsErrors",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter resolves imports from a path→export-file map using the
// gc importer, so type-checking a target package never re-checks its
// dependencies from source.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	return unsafeAware{importer.ForCompiler(fset, "gc", lookup)}
}

// unsafeAware short-circuits the "unsafe" pseudo-package, which has no
// export data.
type unsafeAware struct{ next types.Importer }

func (u unsafeAware) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return u.next.Import(path)
}

// newInfo allocates the types.Info maps the analyzers rely on.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// Load lists patterns in moduleDir and returns every non-standard-library
// match fully parsed and type-checked, in deterministic (import path)
// order. Test files are not loaded: the determinism contract binds the
// shipped engine, and tests legitimately exercise nondeterminism.
func Load(moduleDir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(moduleDir, patterns)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	var targets []listedPkg
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		pkg, err := typeCheckDir(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// typeCheckDir parses files (relative to dir) and type-checks them as
// package path, importing dependencies through imp.
func typeCheckDir(fset *token.FileSet, imp types.Importer, path, dir string, files []string) (*Package, error) {
	pkg := &Package{
		Path:    path,
		Dir:     dir,
		Fset:    fset,
		Info:    newInfo(),
		Sources: map[string][]byte{},
	}
	for _, name := range files {
		full := filepath.Join(dir, name)
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		f, err := parser.ParseFile(fset, full, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		pkg.Files = append(pkg.Files, f)
		pkg.Sources[full] = src
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, pkg.Files, pkg.Info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", path, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}

// The ctxsettle analyzer: cancellable replay loops must actually check
// for cancellation. PR 3's service contract promises sub-second campaign
// cancellation, which holds only because every per-setting loop in the
// batch/replay path polls ctx.Err() (or hands control to the OnObserve
// hook) between settings. A refactor that adds a settle/replay loop
// without the check silently turns "cancel responds in <1s" into "cancel
// responds when the shard finishes".
package analysis

import (
	"go/ast"
	"go/types"
)

// ctxsettlePackages are the batch/replay and campaign-execution packages
// bound by the sub-second-cancel guarantee.
var ctxsettlePackages = pkgSet{
	"fmossim/internal/core":     true,
	"fmossim/internal/campaign": true,
	"fmossim/internal/distrib":  true,
	"fmossim/internal/server":   true,
}

// settleCallNames are the per-setting workhorse calls: a loop driving any
// of these is a per-setting loop in the sense of the contract.
var settleCallNames = map[string]bool{
	"Step":         true,
	"RunBatch":     true,
	"RunRecording": true,
}

// Ctxsettle requires every loop that drives per-setting work (Step /
// RunBatch / RunRecording) inside a context-carrying function to check
// ctx.Err() or invoke the OnObserve hook within the loop body.
var Ctxsettle = &Analyzer{
	Name: "ctxsettle",
	Doc: "per-setting replay loops must poll cancellation\n\n" +
		"In core, campaign, distrib and server, a loop calling Step, RunBatch\n" +
		"or RunRecording inside a function that receives a context.Context\n" +
		"must check ctx.Err() or call the OnObserve hook in its body — the\n" +
		"sub-second-cancel guarantee of the campaign service plane.",
	Run: runCtxsettle,
}

func runCtxsettle(pass *Pass) error {
	if !ctxsettlePackages.has(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasContextParam(pass.TypesInfo, fd) {
				continue
			}
			checkSettleLoops(pass, fd.Body)
		}
	}
	return nil
}

// hasContextParam reports whether the declaration takes a
// context.Context parameter.
func hasContextParam(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		if isContextType(info.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	return t != nil && isNamed(t, "context", "Context")
}

// checkSettleLoops walks one function body (descending into nested
// literals, each with its own loop nesting) and reports loops that drive
// per-setting calls without a cancellation check.
func checkSettleLoops(pass *Pass, body *ast.BlockStmt) {
	// flagged collects, per innermost enclosing loop, whether it contains
	// a per-setting call; loops are then vetted for the check.
	type loopInfo struct {
		node     ast.Node // *ast.ForStmt or *ast.RangeStmt
		body     *ast.BlockStmt
		drives   bool
		callName string
	}
	var stack []*loopInfo
	var loops []*loopInfo

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A literal is its own loop-nesting scope: a call inside it
			// executes when the closure runs, not at the enclosing loop's
			// iteration site.
			saved := stack
			stack = nil
			ast.Inspect(n.Body, walk)
			stack = saved
			return false
		case *ast.ForStmt:
			li := &loopInfo{node: n, body: n.Body}
			loops = append(loops, li)
			stack = append(stack, li)
			if n.Init != nil {
				ast.Inspect(n.Init, walk)
			}
			if n.Cond != nil {
				ast.Inspect(n.Cond, walk)
			}
			if n.Post != nil {
				ast.Inspect(n.Post, walk)
			}
			ast.Inspect(n.Body, walk)
			stack = stack[:len(stack)-1]
			return false
		case *ast.RangeStmt:
			li := &loopInfo{node: n, body: n.Body}
			loops = append(loops, li)
			stack = append(stack, li)
			ast.Inspect(n.Body, walk)
			stack = stack[:len(stack)-1]
			return false
		case *ast.CallExpr:
			if name, ok := settleCallName(pass.TypesInfo, n); ok && len(stack) > 0 {
				li := stack[len(stack)-1]
				li.drives = true
				li.callName = name
			}
		}
		return true
	}
	ast.Inspect(body, walk)

	for _, li := range loops {
		if li.drives && !loopChecksCancellation(pass.TypesInfo, li.body) {
			pass.Reportf(li.node.Pos(),
				"per-setting loop calls %s without checking ctx.Err() or invoking the OnObserve hook; the sub-second-cancel guarantee needs a check between settings (or annotate with %s <reason>)",
				li.callName, AnnotationMarker)
		}
	}
}

// settleCallName reports whether call invokes a per-setting workhorse,
// returning its name.
func settleCallName(info *types.Info, call *ast.CallExpr) (string, bool) {
	obj := calleeObj(info, call)
	if obj == nil {
		return "", false
	}
	if settleCallNames[obj.Name()] {
		return obj.Name(), true
	}
	return "", false
}

// loopChecksCancellation reports whether the loop body contains a
// ctx.Err() call (on any context.Context-typed expression) or any use of
// an OnObserve hook.
func loopChecksCancellation(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if sel.Sel.Name == "Err" && isContextType(info.TypeOf(sel.X)) {
					found = true
				}
			}
		case *ast.SelectorExpr:
			if n.Sel.Name == "OnObserve" {
				found = true
			}
		}
		return !found
	})
	return found
}

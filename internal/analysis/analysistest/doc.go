// Package analysistest runs fmossimvet analyzers over fixture packages
// under a testdata directory and checks their diagnostics against
// `// want "regexp"` comments, in the style of
// golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live at <testdata>/src/<import/path>/*.go and are type-checked
// under that import path, so package-scoped analyzers (mapiter, walltime,
// …) behave exactly as on the real tree; fixtures may import real module
// packages (switchsim, core, …) and the standard library, both resolved
// from compiler export data. A want comment may trail any line:
//
//	for k := range m { // want `range over map`
//
// Several expectations on one line are matched as a multiset: every
// diagnostic must match an expectation on its line and every expectation
// must be consumed, so both false positives and false negatives fail the
// test. A want marker may also follow an annotation comment's reason on
// the same line, which is how the facility's own diagnostics (missing
// reason, unused annotation) are asserted.
package analysistest

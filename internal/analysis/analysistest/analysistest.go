// The fixture runner: loading, want-comment parsing and diagnostic
// matching. Package documentation lives in doc.go.
package analysistest

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"fmossim/internal/analysis"
)

// Run loads each fixture package pattern from testdata/src/<pattern>,
// runs the analyzers (plus the annotation facility, which the driver
// always applies) and reports every mismatch between diagnostics and
// want expectations through t.
func Run(t *testing.T, testdata string, analyzers []*analysis.Analyzer, patterns ...string) {
	t.Helper()
	modRoot, err := findModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	for _, pattern := range patterns {
		dir := filepath.Join(testdata, "src", filepath.FromSlash(pattern))
		pkg, err := analysis.LoadFixture(modRoot, pattern, dir)
		if err != nil {
			t.Errorf("%s: %v", pattern, err)
			continue
		}
		diags, err := analysis.RunAnalyzers([]*analysis.Package{pkg}, analyzers)
		if err != nil {
			t.Errorf("%s: %v", pattern, err)
			continue
		}
		checkWants(t, pattern, dir, diags)
	}
}

// findModuleRoot walks up from the working directory to the enclosing
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysistest: no go.mod above working directory")
		}
		dir = parent
	}
}

// want is one expectation: a compiled pattern at a file line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// wantRe extracts quoted expectation patterns after a `// want` marker.
var wantRe = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// parseWants scans every fixture file for want comments.
func parseWants(dir string) ([]*want, error) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var wants []*want
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				line := fset.Position(c.Pos()).Line
				for _, m := range wantRe.FindAllStringSubmatch(c.Text[idx+len("// want "):], -1) {
					pat := m[2] // backquoted form, taken verbatim
					if m[1] != "" || pat == "" {
						unq, err := strconv.Unquote(`"` + m[1] + `"`)
						if err != nil {
							return nil, fmt.Errorf("%s:%d: bad want pattern %q: %v", path, line, m[1], err)
						}
						pat = unq
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", path, line, pat, err)
					}
					wants = append(wants, &want{file: path, line: line, re: re, raw: pat})
				}
			}
		}
	}
	return wants, nil
}

// checkWants matches diagnostics against expectations as a per-line
// multiset and reports both surplus diagnostics and unmatched wants.
func checkWants(t *testing.T, pattern, dir string, diags []analysis.Diagnostic) {
	t.Helper()
	wants, err := parseWants(dir)
	if err != nil {
		t.Errorf("%s: %v", pattern, err)
		return
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && sameFile(w.file, d.File) && w.line == d.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pattern, d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s: %s:%d: no diagnostic matching %q", pattern, w.file, w.line, w.raw)
		}
	}
}

// sameFile compares paths by base and cleaned form (the loader and the
// want parser may render the same file with different prefixes).
func sameFile(a, b string) bool {
	if filepath.Clean(a) == filepath.Clean(b) {
		return true
	}
	return filepath.Base(a) == filepath.Base(b)
}

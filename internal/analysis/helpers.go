// Shared AST and type-resolution helpers used by several analyzers: map
// detection, the collect-then-sort exemption, package scoping, and
// named-type identification across the real tree and analysistest
// fixtures.
package analysis

import (
	"go/ast"
	"go/types"
)

// pkgSet is a set of import paths an analyzer applies to (or is exempt
// from).
type pkgSet map[string]bool

func (s pkgSet) has(path string) bool { return s[path] }

// isMapType reports whether e's type is (or aliases) a map.
func isMapType(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// namedType returns the named type of t after stripping pointers and
// aliases, or nil.
func namedType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// isNamed reports whether t (possibly behind a pointer) is the named type
// pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	n := namedType(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == name
}

// calleeObj resolves a call's callee to its types.Object (function or
// method), or nil.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// isPkgFunc reports whether obj is the package-level function
// pkgPath.name.
func isPkgFunc(obj types.Object, pkgPath, name string) bool {
	f, ok := obj.(*types.Func)
	if !ok || f.Pkg() == nil {
		return false
	}
	return f.Pkg().Path() == pkgPath && f.Name() == name
}

// sortCalls are the callee spellings the collect-then-sort exemption
// accepts: a slice passed (as first argument) to any of these after the
// collecting range loop establishes a deterministic order.
var sortCalls = map[string]map[string]bool{
	"sort": {
		"Strings": true, "Ints": true, "Float64s": true,
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

// rangeCollectsSorted reports whether rs — a range over a map — merely
// collects keys/values into local slices, each of which is sorted later
// in scope (the canonical deterministic-iteration idiom:
//
//	for k := range m { keys = append(keys, k) }
//	sort.Strings(keys)
//
// Any other statement in the loop body defeats the exemption, as does a
// collected slice that is never sorted after the loop.
func rangeCollectsSorted(info *types.Info, scope ast.Node, rs *ast.RangeStmt) bool {
	var targets []types.Object
	for _, stmt := range rs.Body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		lhs, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
		if !ok {
			return false
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return false
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" || info.Uses[id] != types.Universe.Lookup("append") {
			return false
		}
		obj := info.ObjectOf(lhs)
		if obj == nil {
			return false
		}
		targets = append(targets, obj)
	}
	if len(targets) == 0 {
		return false
	}
	for _, obj := range targets {
		if !sortedAfter(info, scope, rs, obj) {
			return false
		}
	}
	return true
}

// sortedAfter reports whether a sort call with obj as its first argument
// appears in scope after the range statement.
func sortedAfter(info *types.Info, scope ast.Node, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(scope, func(n ast.Node) bool {
		if found || n == nil {
			return !found
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rs.End() || len(call.Args) == 0 {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		names := sortCalls[fn.Pkg().Path()]
		if names == nil || !names[fn.Name()] {
			return true
		}
		if arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && info.ObjectOf(arg) == obj {
			found = true
		}
		return !found
	})
	return found
}

// funcScopes yields every function body in the file — declarations and
// literals — paired with its declaration node, visiting literals after
// their enclosing declaration.
func funcScopes(f *ast.File, visit func(node ast.Node, body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				visit(fn, fn.Body)
			}
		case *ast.FuncLit:
			visit(fn, fn.Body)
		}
		return true
	})
}

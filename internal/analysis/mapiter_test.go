package analysis_test

import (
	"testing"

	"fmossim/internal/analysis"
	"fmossim/internal/analysis/analysistest"
)

func TestMapiter(t *testing.T) {
	analysistest.Run(t, "testdata/mapiter", []*analysis.Analyzer{analysis.Mapiter},
		"fmossim/internal/campaign", "example.com/other")
}

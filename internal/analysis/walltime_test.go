package analysis_test

import (
	"testing"

	"fmossim/internal/analysis"
	"fmossim/internal/analysis/analysistest"
)

func TestWalltime(t *testing.T) {
	analysistest.Run(t, "testdata/walltime", []*analysis.Analyzer{analysis.Walltime},
		"fmossim/internal/core", "fmossim/internal/distrib")
}

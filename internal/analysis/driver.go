// The driver: run a set of analyzers over loaded packages, apply the
// annotation facility, and return the surviving diagnostics in a
// deterministic order. Both cmd/fmossimvet and the analysistest fixture
// runner go through RunAnalyzers, so suppression and annotation hygiene
// behave identically under test and in CI.
package analysis

import (
	"sort"
)

// RunAnalyzers applies analyzers to every package and returns the
// diagnostics that survive annotation suppression, plus the annotation
// facility's own findings, sorted by file/line/column/analyzer.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, pkg := range pkgs {
		var diags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				report:    func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, err
			}
		}
		anns := collectAnnotations(pkg)
		diags = filterSuppressed(diags, anns)
		diags = append(diags, annotationDiagnostics(anns)...)
		all = append(all, diags...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return all, nil
}

package analysis_test

import (
	"testing"

	"fmossim/internal/analysis"
	"fmossim/internal/analysis/analysistest"
)

// TestAnnotationFacility exercises the shared annotation machinery the
// driver applies around every analyzer: reasoned annotations suppress,
// bare markers are rejected without suppressing, and annotations whose
// covered line no longer fires are reported as stale.
func TestAnnotationFacility(t *testing.T) {
	analysistest.Run(t, "testdata/annotation", []*analysis.Analyzer{analysis.Mapiter},
		"fmossim/internal/campaign")
}

package analysis_test

import (
	"testing"

	"fmossim/internal/analysis"
	"fmossim/internal/analysis/analysistest"
)

func TestPlanecanon(t *testing.T) {
	analysistest.Run(t, "testdata/planecanon", []*analysis.Analyzer{analysis.Planecanon},
		"fmossim/internal/core", "fmossim/internal/switchsim")
}

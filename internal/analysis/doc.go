// Package analysis is the fmossimvet suite: custom static analyzers that
// mechanically enforce the bit-identical merge-determinism contract of
// ARCHITECTURE.md, plus the framework they run on.
//
// Every performance refactor of the engine (lane packing, worklist
// relaxation, distributed sharding) must preserve the same guarantee:
// identical detections, records and deterministic statistics for every
// worker count, lane width and shard split. Equivalence tests catch a
// violation only when a workload happens to trigger it; these analyzers
// turn the contract's load-bearing clauses into compile-time-style gates
// that fail CI on the pattern itself:
//
//   - mapiter — no raw map iteration in result-affecting packages
//     (collect-then-sort is recognized and allowed).
//   - walltime — no time.Now/Since/Until or math/rand in the
//     deterministic engine packages (server/distrib timeout plumbing is
//     allowlisted by package).
//   - ctxsettle — per-setting replay loops in context-carrying functions
//     must poll ctx.Err() or invoke the OnObserve hook (the sub-second
//     cancellation guarantee).
//   - planecanon — no direct writes to switchsim.LanePlanes.V/.X outside
//     internal/switchsim (the canonical two-plane encoding).
//   - mergeorder — functions feeding campaign.Merge/core.BatchResult may
//     not build circuit slices from map iteration or concurrent appends.
//
// A deliberate exception is annotated at the offending line with
//
//	//fmossim:nondeterminism-ok <reason>
//
// The reason string is mandatory (a bare marker is itself a diagnostic
// and suppresses nothing), and an annotation on a line that no longer
// triggers any analyzer is reported as unused, so stale exceptions are
// flushed out mechanically.
//
// The framework mirrors the golang.org/x/tools/go/analysis API shape
// (Analyzer, Pass, diagnostics) but depends only on the standard
// library: packages are listed and compiled via `go list -export`, and
// dependencies are imported from the compiler's export data while the
// target packages are type-checked from source. The analysistest
// subpackage runs analyzers over testdata fixture packages with
// `// want "regexp"` expectations, in the style of
// golang.org/x/tools/go/analysis/analysistest.
//
// The suite is surfaced by cmd/fmossimvet and gated in CI; the
// "mechanically enforced invariants" table in ARCHITECTURE.md maps each
// analyzer to the contract clause it guards.
package analysis

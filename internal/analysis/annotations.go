// The shared //fmossim:nondeterminism-ok annotation facility. An
// annotation acknowledges one deliberate, documented exception to the
// determinism contract and suppresses every analyzer diagnostic on the
// line it covers. The facility is strict in both directions: an
// annotation without a reason string never suppresses anything (it is
// itself a diagnostic), and an annotation that suppresses nothing is
// reported as unused so stale exceptions cannot outlive the code they
// excused.
package analysis

import (
	"fmt"
	"strings"
)

// AnnotationMarker is the comment prefix that grants a one-line,
// reason-carrying exemption from the fmossimvet suite.
const AnnotationMarker = "//fmossim:nondeterminism-ok"

// annotation is one parsed marker comment.
type annotation struct {
	file   string
	line   int // the comment's own line
	col    int
	target int // the source line the annotation covers
	reason string
	used   bool
}

// wantMarker separates test expectations from annotation reasons when a
// fixture line carries both (see analysistest); reasons stop before it.
const wantMarker = "// want"

// collectAnnotations parses every marker comment of the package. A
// trailing annotation (code before it on the line) covers its own line; an
// annotation on a line of its own covers the next line.
func collectAnnotations(pkg *Package) []*annotation {
	var anns []*annotation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, AnnotationMarker) {
					continue
				}
				rest := c.Text[len(AnnotationMarker):]
				if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
					continue // some other marker, e.g. //fmossim:nondeterminism-okay
				}
				if i := strings.Index(rest, wantMarker); i >= 0 {
					rest = rest[:i]
				}
				pos := pkg.Fset.Position(c.Pos())
				ann := &annotation{
					file:   pos.Filename,
					line:   pos.Line,
					col:    pos.Column,
					target: pos.Line,
					reason: strings.TrimSpace(rest),
				}
				if ownLine(pkg.Sources[pos.Filename], pos.Offset) {
					ann.target = pos.Line + 1
				}
				anns = append(anns, ann)
			}
		}
	}
	return anns
}

// ownLine reports whether only whitespace precedes offset on its line.
func ownLine(src []byte, offset int) bool {
	for i := offset - 1; i >= 0 && src[i] != '\n'; i-- {
		if src[i] != ' ' && src[i] != '\t' {
			return false
		}
	}
	return true
}

// filterSuppressed drops diagnostics covered by a reason-carrying
// annotation, marking each annotation it consults as used.
func filterSuppressed(diags []Diagnostic, anns []*annotation) []Diagnostic {
	byLine := map[[2]interface{}]*annotation{}
	for _, a := range anns {
		if a.reason != "" {
			byLine[[2]interface{}{a.file, a.target}] = a
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if a, ok := byLine[[2]interface{}{d.File, d.Line}]; ok {
			a.used = true
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

// annotationDiagnostics reports the facility's own findings: annotations
// with no reason (rejected — they suppress nothing) and annotations whose
// covered line triggered no analyzer (stale exceptions).
func annotationDiagnostics(anns []*annotation) []Diagnostic {
	var diags []Diagnostic
	for _, a := range anns {
		switch {
		case a.reason == "":
			diags = append(diags, Diagnostic{
				Analyzer: "annotation",
				File:     a.file, Line: a.line, Col: a.col,
				Message: fmt.Sprintf("%s requires a reason string (the annotation suppresses nothing without one)", AnnotationMarker),
			})
		case !a.used:
			diags = append(diags, Diagnostic{
				Analyzer: "annotation",
				File:     a.file, Line: a.line, Col: a.col,
				Message: fmt.Sprintf("unused %s annotation: no analyzer diagnostic on the covered line (stale exception — delete it)", AnnotationMarker),
			})
		}
	}
	return diags
}

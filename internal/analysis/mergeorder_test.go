package analysis_test

import (
	"testing"

	"fmossim/internal/analysis"
	"fmossim/internal/analysis/analysistest"
)

func TestMergeorder(t *testing.T) {
	analysistest.Run(t, "testdata/mergeorder", []*analysis.Analyzer{analysis.Mergeorder},
		"fmossim/internal/distrib")
}

// The walltime analyzer: the deterministic engine must not read the
// clock or a random source. Wall-clock reads and math/rand inside the
// settle/replay/merge kernel are how "bit-identical for every worker
// count, lane width and shard split" quietly stops being true; timeout
// and jitter plumbing belongs to the service plane (server, distrib),
// which is allowlisted.
package analysis

import (
	"go/ast"
	"strconv"
)

// walltimePackages are the deterministic engine packages where clock and
// randomness reads are banned. The service plane (internal/server,
// internal/distrib), the benchmarking/stats tooling and the CLIs are
// deliberately absent: their timeouts, retry jitter and wall-clock
// reporting are legitimate.
var walltimePackages = pkgSet{
	"fmossim/internal/core":      true,
	"fmossim/internal/switchsim": true,
	"fmossim/internal/campaign":  true,
	"fmossim/internal/fault":     true,
	"fmossim/internal/logic":     true,
	"fmossim/internal/gates":     true,
	"fmossim/internal/netlist":   true,
	"fmossim/internal/march":     true,
	"fmossim/internal/ram":       true,
	"fmossim/internal/trace":     true,
	"fmossim/internal/serial":    true,
}

// bannedTimeFuncs are the time package functions that read the wall
// clock.
var bannedTimeFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// Walltime bans time.Now/time.Since/time.Until calls and math/rand
// imports inside the deterministic engine packages.
var Walltime = &Analyzer{
	Name: "walltime",
	Doc: "ban clock and randomness reads in the deterministic engine\n\n" +
		"time.Now/Since/Until and math/rand (v1 or v2) must not appear in the\n" +
		"engine packages; server/distrib timeout plumbing is allowlisted. A\n" +
		"deliberate exception (e.g. contract-exempt wall-clock stats fields)\n" +
		"carries //fmossim:nondeterminism-ok <reason>.",
	Run: runWalltime,
}

func runWalltime(pass *Pass) error {
	if !walltimePackages.has(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(),
					"import of %s in deterministic engine package %s; randomness belongs to callers (or annotate with %s <reason>)",
					path, pass.Pkg.Path(), AnnotationMarker)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeObj(pass.TypesInfo, call)
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			if bannedTimeFuncs[obj.Name()] {
				pass.Reportf(call.Pos(),
					"time.%s in deterministic engine package %s reads the wall clock; results must not depend on it (or annotate with %s <reason>)",
					obj.Name(), pass.Pkg.Path(), AnnotationMarker)
			}
			return true
		})
	}
	return nil
}

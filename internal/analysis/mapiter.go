// The mapiter analyzer: no raw map iteration in result-affecting
// packages. Go randomizes map iteration order per run; any map range on a
// path that shapes detections, records, statistics, or serialized output
// is a latent violation of the bit-identical merge-determinism contract
// (ARCHITECTURE.md), even when today's workloads happen not to expose it.
package analysis

import (
	"go/ast"
	"go/types"
)

// mapiterPackages are the result-affecting packages: the deterministic
// engine, the campaign merge paths, the distributed coordinator, and the
// two binaries whose emitted summaries/NDJSON snapshots are diffed
// bit-for-bit by CI and by the distributed-equivalence tests.
var mapiterPackages = pkgSet{
	"fmossim/internal/core":      true,
	"fmossim/internal/campaign":  true,
	"fmossim/internal/switchsim": true,
	"fmossim/internal/distrib":   true,
	"fmossim/internal/server":    true,
	"fmossim/cmd/fmossim":        true,
	"fmossim/cmd/fmossimd":       true,
}

// Mapiter flags `range` over a map in a result-affecting package unless
// the loop is the canonical collect-keys-then-sort idiom or the site
// carries a //fmossim:nondeterminism-ok annotation with a reason.
var Mapiter = &Analyzer{
	Name: "mapiter",
	Doc: "flag nondeterministic map iteration in result-affecting packages\n\n" +
		"Map ranges in core, campaign, switchsim, distrib, server and the\n" +
		"fmossim/fmossimd binaries must either collect keys into a slice that\n" +
		"is sorted before use, or carry //fmossim:nondeterminism-ok <reason>.",
	Run: runMapiter,
}

func runMapiter(pass *Pass) error {
	if !mapiterPackages.has(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		funcScopes(f, func(scope ast.Node, body *ast.BlockStmt) {
			ast.Inspect(body, func(n ast.Node) bool {
				// Nested function bodies are visited by their own
				// funcScopes call (with the literal as sorting scope).
				if _, ok := n.(*ast.FuncLit); ok && n != scope {
					return false
				}
				rs, ok := n.(*ast.RangeStmt)
				if !ok || !isMapType(pass.TypesInfo, rs.X) {
					return true
				}
				if rangeCollectsSorted(pass.TypesInfo, scope, rs) {
					return true
				}
				pass.Reportf(rs.Pos(),
					"range over map %s iterates in nondeterministic order in result-affecting package %s; collect and sort the keys first, or annotate the line with %s <reason>",
					typeLabel(pass.TypesInfo, rs.X), pass.Pkg.Path(), AnnotationMarker)
				return true
			})
		})
	}
	return nil
}

// typeLabel renders e's type compactly for diagnostics.
func typeLabel(info *types.Info, e ast.Expr) string {
	t := info.TypeOf(e)
	if t == nil {
		return "<unknown>"
	}
	return types.TypeString(t, types.RelativeTo(nil))
}

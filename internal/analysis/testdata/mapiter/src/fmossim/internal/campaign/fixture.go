// Mapiter fixtures: raw map iteration in a result-affecting package
// fires; the collect-then-sort idiom and annotated sites do not.
package campaign

import "sort"

func rawRange(m map[int]string) {
	for k := range m { // want `range over map map\[int\]string iterates in nondeterministic order`
		_ = k
	}
}

func rawRangeKeyValue(m map[string]int) int {
	total := 0
	for _, v := range m { // want `range over map map\[string\]int`
		total += v
	}
	return total
}

func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func collectThenSliceSort(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func collectWithoutSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // want `range over map map\[string\]int`
		keys = append(keys, k)
	}
	return keys
}

func collectPlusSideEffect(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	n := 0
	for k := range m { // want `range over map map\[string\]int`
		keys = append(keys, k)
		n++
	}
	sort.Strings(keys)
	_ = n
	return keys
}

func annotated(m map[int]string) {
	for k := range m { //fmossim:nondeterminism-ok aggregation below is commutative
		_ = k
	}
}

func sliceRangeIsFine(s []int) int {
	total := 0
	for _, v := range s {
		total += v
	}
	return total
}

// A package outside the result-affecting set: raw map iteration is fine
// here.
package other

func rawRange(m map[int]string) {
	for k := range m {
		_ = k
	}
}

// Ctxsettle fixtures: per-setting loops driving Step/RunBatch inside
// context-carrying functions must poll ctx.Err() or call the OnObserve
// hook.
package core

import "context"

type batch struct{ opts options }

type options struct{ OnObserve func(int) }

func (b *batch) Step(i int) int { return i }

func RunBatch(n int) int { return n }

func uncheckedLoop(ctx context.Context, b *batch) {
	for i := 0; i < 8; i++ { // want `per-setting loop calls Step without checking ctx\.Err\(\)`
		b.Step(i)
	}
}

func uncheckedRange(ctx context.Context, b *batch, settings []int) {
	for _, s := range settings { // want `per-setting loop calls Step`
		b.Step(s)
	}
}

func uncheckedRunBatch(ctx context.Context, shards []int) {
	for _, s := range shards { // want `per-setting loop calls RunBatch`
		RunBatch(s)
	}
}

func checkedLoop(ctx context.Context, b *batch) error {
	for i := 0; i < 8; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		b.Step(i)
	}
	return nil
}

func hookedLoop(ctx context.Context, b *batch) {
	for i := 0; i < 8; i++ {
		b.Step(i)
		if b.opts.OnObserve != nil {
			b.opts.OnObserve(i)
		}
	}
}

// The check may live in the innermost loop only: the outer pattern loop
// is not flagged when every Step it reaches sits in a checked inner loop.
func nestedChecked(ctx context.Context, b *batch, patterns [][]int) error {
	for _, p := range patterns {
		for _, s := range p {
			if err := ctx.Err(); err != nil {
				return err
			}
			b.Step(s)
		}
	}
	return nil
}

// A Step spawned per iteration belongs to the closure's own (loop-free)
// scope; responsibility for cancellation moved with it.
func spawnedStep(ctx context.Context, b *batch) {
	for i := 0; i < 2; i++ {
		go func() { b.Step(0) }()
	}
}

// No context parameter: the interactive/monolithic path is exempt.
func noContext(b *batch) {
	for i := 0; i < 8; i++ {
		b.Step(i)
	}
}

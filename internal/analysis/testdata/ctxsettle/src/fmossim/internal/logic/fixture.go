// logic is not a batch/replay package: ctxsettle does not apply.
package logic

import "context"

type batch struct{}

func (b *batch) Step(i int) int { return i }

func uncheckedElsewhere(ctx context.Context, b *batch) {
	for i := 0; i < 8; i++ {
		b.Step(i)
	}
}

// Walltime fixtures: clock reads and math/rand fire inside the
// deterministic engine; annotated exceptions and clock-free time APIs do
// not.
package core

import (
	"math/rand" // want `import of math/rand in deterministic engine package`
	"time"
)

func clockReads() int64 {
	t0 := time.Now() // want `time\.Now in deterministic engine package`
	_ = rand.Int()
	return time.Since(t0).Nanoseconds() // want `time\.Since in deterministic engine package`
}

func annotatedClock() time.Time {
	return time.Now() //fmossim:nondeterminism-ok wall-clock stats fields are contract-exempt
}

func clockFreeTimeAPIsAreFine(d time.Duration) time.Duration {
	return d * time.Second / time.Millisecond
}

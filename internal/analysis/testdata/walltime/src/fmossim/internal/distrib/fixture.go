// The service plane is allowlisted: timeout plumbing legitimately reads
// the clock.
package distrib

import "time"

func retryDeadline() time.Time {
	return time.Now().Add(5 * time.Second)
}

// Planecanon fixtures: raw plane writes on the real
// switchsim.LanePlanes type fire outside internal/switchsim; reads and
// the exported algebra do not, nor do same-named fields of other types.
package core

import (
	"fmossim/internal/logic"
	"fmossim/internal/switchsim"
)

type ownPlanes struct{ V, X uint64 }

func rawWrites(p *switchsim.LanePlanes) {
	p.V |= 1        // want `direct write of LanePlanes\.V outside fmossim/internal/switchsim`
	p.X = 0         // want `direct write of LanePlanes\.X`
	p.V, p.X = 0, 0 // want `direct write of LanePlanes\.V` `direct write of LanePlanes\.X`
}

func addressTaken(p *switchsim.LanePlanes) *uint64 {
	return &p.X // want `taking the address of LanePlanes\.X`
}

func exportedAlgebra(p *switchsim.LanePlanes, q switchsim.LanePlanes) uint64 {
	p.Set(3, logic.Hi)
	p.Clear(4)
	return p.EqMask(q) & p.EqValueMask(logic.X) & q.Not().DefiniteMask()
}

func readsAreFine(p switchsim.LanePlanes) uint64 {
	return p.V&^p.X | p.X
}

func otherTypesAreFine(o *ownPlanes) {
	o.V |= 1
	o.X = 0
}

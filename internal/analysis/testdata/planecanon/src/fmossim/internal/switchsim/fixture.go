// The encoding's home package is exempt: switchsim itself implements the
// canonical-form algebra with raw plane writes.
package switchsim

type LanePlanes struct{ V, X uint64 }

func (p *LanePlanes) setHi(bit uint) {
	p.V |= 1 << bit
	p.X &^= 1 << bit
}

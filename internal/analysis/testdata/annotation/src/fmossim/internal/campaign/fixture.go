// Annotation-facility fixtures, exercised with the mapiter analyzer: a
// reasoned annotation suppresses, a bare marker is rejected and
// suppresses nothing, and a reasoned annotation covering a clean line is
// reported as stale.
package campaign

func suppressedTrailing(m map[int]string) {
	for k := range m { //fmossim:nondeterminism-ok output order does not reach any result
		_ = k
	}
}

func suppressedOwnLine(m map[int]string) {
	//fmossim:nondeterminism-ok output order does not reach any result
	for k := range m {
		_ = k
	}
}

func bareMarker(m map[int]string) {
	for k := range m { //fmossim:nondeterminism-ok // want `range over map` `requires a reason string`
		_ = k
	}
}

func staleAnnotation(s []int) int {
	total := 0
	//fmossim:nondeterminism-ok slices iterate deterministically anyway // want `unused //fmossim:nondeterminism-ok annotation`
	for _, v := range s {
		total += v
	}
	return total
}

// Mergeorder fixtures: merge-feeding functions (anything touching
// core.BatchResult or campaign.Merge) may not build circuit data from
// map iteration or from concurrently scheduled appends.
package distrib

import (
	"sort"
	"sync"

	"fmossim/internal/core"
)

func buildFromMap(m map[int]core.Detection) *core.BatchResult {
	br := &core.BatchResult{}
	for _, d := range m { // want `map-sourced iteration in merge-feeding function buildFromMap`
		br.Detections = append(br.Detections, d)
	}
	return br
}

func buildSorted(m map[int]core.Detection) *core.BatchResult {
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	br := &core.BatchResult{}
	for _, id := range ids {
		br.Detections = append(br.Detections, m[id])
	}
	return br
}

func concurrentAppend(shards []*core.BatchResult) []core.Detection {
	var dets []core.Detection
	var wg sync.WaitGroup
	for range shards {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dets = append(dets, core.Detection{}) // want `append to dets \(declared outside the goroutine\) in merge-feeding function concurrentAppend`
		}()
	}
	wg.Wait()
	return dets
}

func goroutineLocalAppend(shards []*core.BatchResult, sink func([]int)) {
	for range shards {
		go func() {
			var local []int
			local = append(local, 1)
			sink(local)
		}()
	}
}

// Not merge-feeding: no BatchResult, no campaign.Merge — mergeorder
// stays silent here (mapiter owns package-wide map hygiene).
func unrelatedMapRange(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

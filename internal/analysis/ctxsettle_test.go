package analysis_test

import (
	"testing"

	"fmossim/internal/analysis"
	"fmossim/internal/analysis/analysistest"
)

func TestCtxsettle(t *testing.T) {
	analysistest.Run(t, "testdata/ctxsettle", []*analysis.Analyzer{analysis.Ctxsettle},
		"fmossim/internal/core", "fmossim/internal/logic")
}

// Analyzer, Pass and Diagnostic: the framework half of the package,
// mirroring the golang.org/x/tools/go/analysis API shape so the analyzers
// read like standard vet passes while depending only on the standard
// library. Package documentation lives in doc.go.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one static check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and test expectations.
	Name string
	// Doc is the one-paragraph description printed by fmossimvet -list:
	// the project invariant the analyzer guards.
	Doc string
	// Run applies the analyzer to one package, reporting findings through
	// the pass. A returned error aborts the whole run (it means the
	// analyzer itself failed, not that the code is in violation).
	Run func(*Pass) error
}

// A Pass connects one Analyzer run to one loaded package.
type Pass struct {
	Analyzer *Analyzer

	// Fset, Files, Pkg and TypesInfo describe the package under analysis:
	// positions, parsed syntax (non-test sources only), the type-checked
	// package object, and the type information for every expression.
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, positioned at a file/line/column. The JSON
// field names are the machine-readable contract of fmossimvet -json.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.File, d.Line, d.Col, d.Message, d.Analyzer)
}

// All returns the full fmossimvet suite in a fixed order: every analyzer
// that gates the determinism contract. The annotation facility (reason
// checking, unused-annotation detection) is not an Analyzer — it is part
// of the driver and always runs.
func All() []*Analyzer {
	return []*Analyzer{Mapiter, Walltime, Ctxsettle, Planecanon, Mergeorder}
}

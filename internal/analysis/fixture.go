// Fixture loading for the analysistest runner: a testdata directory is
// type-checked as if it lived at a chosen import path, with its imports
// (standard library and real module packages alike) resolved from
// compiler export data obtained via `go list -export` in the module root.
package analysis

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// LoadFixture parses the .go files of dir and type-checks them under
// import path pkgPath. moduleDir anchors dependency resolution (it must
// be the module root, so fixture imports of module-internal packages
// resolve).
func LoadFixture(moduleDir, pkgPath, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: fixture %s: %v", pkgPath, err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: fixture %s: no .go files in %s", pkgPath, dir)
	}

	// Pre-scan imports so one `go list` resolves everything the fixture
	// needs.
	imports := map[string]bool{}
	fset := token.NewFileSet()
	for _, name := range files {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ImportsOnly)
		if err != nil {
			return nil, fmt.Errorf("analysis: fixture %s: %v", pkgPath, err)
		}
		for _, imp := range f.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil && p != "unsafe" {
				imports[p] = true
			}
		}
	}
	exports := map[string]string{}
	if len(imports) > 0 {
		var paths []string
		for p := range imports {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		listed, err := goList(moduleDir, paths)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Error != nil {
				return nil, fmt.Errorf("analysis: fixture dependency %s: %s", p.ImportPath, p.Error.Err)
			}
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	fset = token.NewFileSet()
	return typeCheckDir(fset, exportImporter(fset, exports), pkgPath, dir, files)
}

package fault_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"fmossim/internal/fault"
	"fmossim/internal/gates"
	"fmossim/internal/logic"
	"fmossim/internal/netlist"
	"fmossim/internal/switchsim"
)

func testNet() (*netlist.Network, netlist.TransID, netlist.TransID) {
	b := netlist.NewBuilder(logic.Scale{Sizes: 2, Strengths: 3})
	a := b.Input("a", logic.Lo)
	clk := b.Input("clk", logic.Lo)
	o1 := b.Node("o1")
	o2 := b.Node("o2")
	gates.NInv(b, a, o1, "i1")
	gates.DynLatch(b, clk, o1, o2, "lat", false)
	short := b.BridgeCandidate(o1, o2, "short")
	wire := b.Breakable(o2, b.Node("pad"), "wire")
	b.Finalize()
	return b.Net, short, wire
}

func TestKindStrings(t *testing.T) {
	want := map[fault.Kind]string{
		fault.NodeStuck0:       "sa0",
		fault.NodeStuck1:       "sa1",
		fault.NodeStuckX:       "sax",
		fault.TransStuckOpen:   "stuck-open",
		fault.TransStuckClosed: "stuck-closed",
		fault.Bridge:           "short",
		fault.Open:             "open",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
	if !fault.NodeStuck0.IsNodeFault() || fault.Bridge.IsNodeFault() {
		t.Error("IsNodeFault misclassifies")
	}
	if got := fault.Kind(200).String(); got != "Kind(200)" {
		t.Errorf("unknown Kind prints %q", got)
	}
}

func TestApplyRemoveRoundTrip(t *testing.T) {
	nw, short, _ := testNet()
	tab := switchsim.NewTables(nw)
	c := switchsim.NewCircuit(tab)
	sv := switchsim.NewSolver(tab)
	sv.Init(c)
	before := c.Snapshot()

	for _, f := range []fault.Fault{
		{Kind: fault.NodeStuck1, Node: nw.MustLookup("o1")},
		{Kind: fault.TransStuckOpen, Trans: 1},
		{Kind: fault.Bridge, Trans: short},
	} {
		f.Apply(c)
		if !c.Faulty() {
			t.Errorf("%s: circuit should be faulty after Apply", f.Describe(nw))
		}
		sv.SettleAll(c)
		f.Remove(c)
		sv.SettleAll(c)
		if c.Faulty() {
			t.Errorf("%s: circuit should be clean after Remove", f.Describe(nw))
		}
		after := c.Snapshot()
		for n := range before {
			if before[n] != after[n] {
				t.Errorf("%s: node %s = %s after remove, want %s",
					f.Describe(nw), nw.Name(netlist.NodeID(n)), after[n], before[n])
			}
		}
	}
}

func TestEnumerationCounts(t *testing.T) {
	nw, _, _ := testNet()
	nodeFaults := fault.NodeStuckFaults(nw, fault.Options{})
	if want := 2 * nw.NumStorageNodes(); len(nodeFaults) != want {
		t.Errorf("node faults: %d, want %d", len(nodeFaults), want)
	}
	transFaults := fault.TransistorStuckFaults(nw, fault.Options{})
	// The bridge candidate and breakable wire are fault carriers, not
	// targets: 5 real transistors (load, pd, pass, latch inv load+pd).
	if want := 2 * 5; len(transFaults) != want {
		t.Errorf("transistor faults: %d, want %d", len(transFaults), want)
	}
	withTies := fault.TransistorStuckFaults(nw, fault.Options{IncludeTies: true})
	if want := 2 * nw.NumTransistors(); len(withTies) != want {
		t.Errorf("transistor faults incl ties: %d, want %d", len(withTies), want)
	}
}

func TestEnumerationFilters(t *testing.T) {
	nw, _, _ := testNet()
	only1 := fault.NodeStuckFaults(nw, fault.Options{
		NodeFilter: func(n *netlist.Network, id netlist.NodeID) bool {
			return n.Name(id) == "o1"
		},
	})
	if len(only1) != 2 {
		t.Errorf("filtered node faults: %d, want 2", len(only1))
	}
	none := fault.TransistorStuckFaults(nw, fault.Options{
		TransFilter: func(*netlist.Network, netlist.TransID) bool { return false },
	})
	if len(none) != 0 {
		t.Errorf("filtered transistor faults: %d, want 0", len(none))
	}
}

func TestSampleDeterministicAndOrdered(t *testing.T) {
	nw, _, _ := testNet()
	all := fault.NodeStuckFaults(nw, fault.Options{})
	s1 := fault.Sample(all, 3, rand.New(rand.NewSource(9)))
	s2 := fault.Sample(all, 3, rand.New(rand.NewSource(9)))
	if len(s1) != 3 || len(s2) != 3 {
		t.Fatalf("sample sizes %d/%d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Error("Sample not deterministic for equal seeds")
		}
	}
	// Oversized request returns a copy of everything.
	full := fault.Sample(all, 999, rand.New(rand.NewSource(1)))
	if len(full) != len(all) {
		t.Errorf("oversized sample: %d, want %d", len(full), len(all))
	}
}

func TestSitesNeverEmptyForStorageFaults(t *testing.T) {
	nw, short, wire := testNet()
	fs := []fault.Fault{
		{Kind: fault.NodeStuck0, Node: nw.MustLookup("o1")},
		{Kind: fault.TransStuckClosed, Trans: 1},
		{Kind: fault.Bridge, Trans: short},
		{Kind: fault.Open, Trans: wire},
	}
	for _, f := range fs {
		if len(f.Sites(nw)) == 0 {
			t.Errorf("%s: empty site set", f.Describe(nw))
		}
	}
}

func TestPinnedForcedState(t *testing.T) {
	if v, ok := (fault.Fault{Kind: fault.TransStuckOpen}).PinnedState(); !ok || v != logic.Lo {
		t.Error("stuck-open should pin Lo")
	}
	if v, ok := (fault.Fault{Kind: fault.Bridge}).PinnedState(); !ok || v != logic.Hi {
		t.Error("bridge should pin Hi")
	}
	if _, ok := (fault.Fault{Kind: fault.NodeStuck0}).PinnedState(); ok {
		t.Error("node fault has no pinned state")
	}
	if v, ok := (fault.Fault{Kind: fault.NodeStuck1}).ForcedState(); !ok || v != logic.Hi {
		t.Error("sa1 should force Hi")
	}
	if _, ok := (fault.Fault{Kind: fault.Open}).ForcedState(); ok {
		t.Error("open fault has no forced state")
	}
}

func TestListRoundTrip(t *testing.T) {
	nw, short, wire := testNet()
	fs := []fault.Fault{
		{Kind: fault.NodeStuck0, Node: nw.MustLookup("o1")},
		{Kind: fault.NodeStuck1, Node: nw.MustLookup("o2")},
		{Kind: fault.NodeStuckX, Node: nw.MustLookup("pad")},
		{Kind: fault.TransStuckOpen, Trans: 0},
		{Kind: fault.TransStuckClosed, Trans: 1},
		{Kind: fault.Bridge, Trans: short},
		{Kind: fault.Open, Trans: wire},
	}
	var buf bytes.Buffer
	if err := fault.WriteList(&buf, nw, fs); err != nil {
		t.Fatal(err)
	}
	got, err := fault.ReadList(bytes.NewReader(buf.Bytes()), nw)
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	if len(got) != len(fs) {
		t.Fatalf("round trip %d faults, want %d", len(got), len(fs))
	}
	for i := range fs {
		if got[i] != fs[i] {
			t.Errorf("fault %d: %+v != %+v", i, got[i], fs[i])
		}
	}
}

func TestListErrors(t *testing.T) {
	nw, _, _ := testNet()
	for name, src := range map[string]string{
		"unknown node": "node nope sa0\n",
		"bad kind":     "node o1 sa9\n",
		"bad trans":    "trans 999 open\n",
		"bad decl":     "frob 1\n",
		"bad arity":    "node o1\n",
		"neg trans":    "short -1\n",
	} {
		if _, err := fault.ReadList(strings.NewReader(src), nw); err == nil {
			t.Errorf("%s: expected error for %q", name, src)
		}
	}
}

func TestDescribe(t *testing.T) {
	nw, short, wire := testNet()
	f := fault.Fault{Kind: fault.NodeStuck0, Node: nw.MustLookup("o1")}
	if got := f.Describe(nw); got != "o1 sa0" {
		t.Errorf("Describe = %q", got)
	}
	f = fault.Fault{Kind: fault.Bridge, Trans: short}
	if got := f.Describe(nw); !strings.Contains(got, "short o1/o2") || !strings.Contains(got, "(short)") {
		t.Errorf("bridge Describe = %q", got)
	}
	f = fault.Fault{Kind: fault.Open, Trans: wire}
	if got := f.Describe(nw); !strings.Contains(got, "open o2/pad") || !strings.Contains(got, "(wire)") {
		t.Errorf("open Describe = %q", got)
	}
	// Transistor stuck faults use the plain "label kind" form.
	f = fault.Fault{Kind: fault.TransStuckOpen, Trans: short}
	if got := f.Describe(nw); !strings.Contains(got, "stuck-open") {
		t.Errorf("stuck-open Describe = %q", got)
	}
}

// TestDescribeUnlabeledTransistor covers the t<N> fallback for fault
// transistors built without a label.
func TestDescribeUnlabeledTransistor(t *testing.T) {
	b := netlist.NewBuilder(logic.Scale{Sizes: 2, Strengths: 3})
	a := b.Input("a", logic.Lo)
	o1 := b.Node("o1")
	o2 := b.Node("o2")
	gates.NInv(b, a, o1, "i1")
	gates.NInv(b, a, o2, "i2")
	short := b.BridgeCandidate(o1, o2, "")
	nw := b.Finalize()

	f := fault.Fault{Kind: fault.Bridge, Trans: short}
	want := fmt.Sprintf("short o1/o2 (t%d)", short)
	if got := f.Describe(nw); got != want {
		t.Errorf("unlabeled bridge Describe = %q, want %q", got, want)
	}
	f = fault.Fault{Kind: fault.Open, Trans: short}
	if got := f.Describe(nw); !strings.HasPrefix(got, "open o1/o2") {
		t.Errorf("unlabeled open Describe = %q", got)
	}
}

// Package fault defines the fault models of FMOSSIM and utilities to
// enumerate, sample, and describe fault universes.
//
// FMOSSIM directly implements node and transistor faults: a node fault
// causes the node to behave as an input node set to the specified state; a
// transistor fault causes the transistor to be permanently stuck-open or
// stuck-closed, without changing its strength. Other fault types are
// injected with extra fault transistors placed in the network at build
// time (netlist.Builder.BridgeCandidate and Breakable): a short circuit is
// a very strong transistor between two nodes that is closed in the faulty
// circuit and open in the good circuit; an open circuit is a node split
// into two parts joined by a very strong transistor that is closed in the
// good circuit and open in the faulty circuit. Injecting these faults
// therefore requires no modeling capability beyond the switch-level model
// itself.
package fault

package fault

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"fmossim/internal/netlist"
)

// The fault-list text format, one fault per line:
//
//	node NAME sa0|sa1|sax
//	trans INDEX open|closed
//	short INDEX           (INDEX of a bridge-candidate transistor)
//	open INDEX            (INDEX of a breakable-wire transistor)
//	| comment
//
// Transistors are addressed by index because labels are optional and not
// necessarily unique; cmd/faultgen emits indexes alongside labels.

// WriteList emits faults in the text format.
func WriteList(w io.Writer, nw *netlist.Network, fs []Fault) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "| %d faults\n", len(fs))
	for _, f := range fs {
		switch {
		case f.Kind.IsNodeFault():
			fmt.Fprintf(bw, "node %s %s\n", nw.Name(f.Node), f.Kind)
		case f.Kind == TransStuckOpen:
			fmt.Fprintf(bw, "trans %d open | %s\n", f.Trans, f.Describe(nw))
		case f.Kind == TransStuckClosed:
			fmt.Fprintf(bw, "trans %d closed | %s\n", f.Trans, f.Describe(nw))
		case f.Kind == Bridge:
			fmt.Fprintf(bw, "short %d | %s\n", f.Trans, f.Describe(nw))
		case f.Kind == Open:
			fmt.Fprintf(bw, "open %d | %s\n", f.Trans, f.Describe(nw))
		}
	}
	return bw.Flush()
}

// ReadList parses the text format.
func ReadList(r io.Reader, nw *netlist.Network) ([]Fault, error) {
	sc := bufio.NewScanner(r)
	var fs []Fault
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '|'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		fail := func(format string, args ...any) error {
			return fmt.Errorf("fault list line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}
		parseTrans := func(s string) (netlist.TransID, error) {
			i, err := strconv.Atoi(s)
			if err != nil || i < 0 || i >= nw.NumTransistors() {
				return netlist.NoTrans, fail("bad transistor index %q", s)
			}
			return netlist.TransID(i), nil
		}
		switch fields[0] {
		case "node":
			if len(fields) != 3 {
				return nil, fail("node wants NAME KIND")
			}
			n := nw.Lookup(fields[1])
			if n == netlist.NoNode {
				return nil, fail("unknown node %q", fields[1])
			}
			var k Kind
			switch fields[2] {
			case "sa0":
				k = NodeStuck0
			case "sa1":
				k = NodeStuck1
			case "sax":
				k = NodeStuckX
			default:
				return nil, fail("unknown node fault kind %q", fields[2])
			}
			fs = append(fs, Fault{Kind: k, Node: n})
		case "trans":
			if len(fields) != 3 {
				return nil, fail("trans wants INDEX open|closed")
			}
			t, err := parseTrans(fields[1])
			if err != nil {
				return nil, err
			}
			switch fields[2] {
			case "open":
				fs = append(fs, Fault{Kind: TransStuckOpen, Trans: t})
			case "closed":
				fs = append(fs, Fault{Kind: TransStuckClosed, Trans: t})
			default:
				return nil, fail("unknown transistor fault kind %q", fields[2])
			}
		case "short", "open":
			if len(fields) != 2 {
				return nil, fail("%s wants INDEX", fields[0])
			}
			t, err := parseTrans(fields[1])
			if err != nil {
				return nil, err
			}
			k := Bridge
			if fields[0] == "open" {
				k = Open
			}
			fs = append(fs, Fault{Kind: k, Trans: t})
		default:
			return nil, fail("unknown fault declaration %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return fs, nil
}

// Fault types, enumeration, sampling, and description. Package
// documentation lives in doc.go.
package fault

import (
	"fmt"
	"math/rand" //fmossim:nondeterminism-ok Sample takes a caller-seeded *rand.Rand; sampling is reproducible given the seed
	"sort"

	"fmossim/internal/logic"
	"fmossim/internal/netlist"
	"fmossim/internal/switchsim"
)

// Kind enumerates the supported fault classes.
type Kind uint8

const (
	// NodeStuck0 pins a node low: it behaves as an input node at 0.
	NodeStuck0 Kind = iota
	// NodeStuck1 pins a node high.
	NodeStuck1
	// NodeStuckX pins a node to X (a permanently indeterminate source,
	// e.g. a floating driver); rarely used but free in the model.
	NodeStuckX
	// TransStuckOpen pins a transistor non-conducting.
	TransStuckOpen
	// TransStuckClosed pins a transistor conducting.
	TransStuckClosed
	// Bridge closes a normally-open fault transistor: a short between its
	// channel terminals.
	Bridge
	// Open opens a normally-closed breakable wire: an open circuit
	// between its channel terminals.
	Open
)

// String returns a short mnemonic ("sa0", "open", ...).
func (k Kind) String() string {
	switch k {
	case NodeStuck0:
		return "sa0"
	case NodeStuck1:
		return "sa1"
	case NodeStuckX:
		return "sax"
	case TransStuckOpen:
		return "stuck-open"
	case TransStuckClosed:
		return "stuck-closed"
	case Bridge:
		return "short"
	case Open:
		return "open"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// IsNodeFault reports whether the kind targets a node.
func (k Kind) IsNodeFault() bool { return k <= NodeStuckX }

// Fault is a single fault instance.
type Fault struct {
	Kind  Kind
	Node  netlist.NodeID // valid when Kind.IsNodeFault()
	Trans netlist.TransID
}

// Describe renders a human-readable fault name using network names.
func (f Fault) Describe(nw *netlist.Network) string {
	if f.Kind.IsNodeFault() {
		return fmt.Sprintf("%s %s", nw.Name(f.Node), f.Kind)
	}
	tr := nw.Transistor(f.Trans)
	label := tr.Label
	if label == "" {
		label = fmt.Sprintf("t%d", f.Trans)
	}
	switch f.Kind {
	case Bridge:
		return fmt.Sprintf("short %s/%s (%s)", nw.Name(tr.Source), nw.Name(tr.Drain), label)
	case Open:
		return fmt.Sprintf("open %s/%s (%s)", nw.Name(tr.Source), nw.Name(tr.Drain), label)
	}
	return fmt.Sprintf("%s %s", label, f.Kind)
}

// pinState returns the conduction state a transistor fault pins.
func (f Fault) pinState() logic.Value {
	switch f.Kind {
	case TransStuckOpen, Open:
		return logic.Lo
	case TransStuckClosed, Bridge:
		return logic.Hi
	}
	panic("fault: pinState on node fault")
}

// forcedValue returns the node state a node fault forces.
func (f Fault) forcedValue() logic.Value {
	switch f.Kind {
	case NodeStuck0:
		return logic.Lo
	case NodeStuck1:
		return logic.Hi
	case NodeStuckX:
		return logic.X
	}
	panic("fault: forcedValue on transistor fault")
}

// PinnedState returns the conduction state a transistor fault pins, and
// whether the fault is a transistor fault at all.
func (f Fault) PinnedState() (logic.Value, bool) {
	if f.Kind.IsNodeFault() {
		return logic.X, false
	}
	return f.pinState(), true
}

// ForcedState returns the node state a node fault forces, and whether the
// fault is a node fault at all.
func (f Fault) ForcedState() (logic.Value, bool) {
	if !f.Kind.IsNodeFault() {
		return logic.X, false
	}
	return f.forcedValue(), true
}

// Apply injects the fault into a circuit and returns the perturbed storage
// nodes the caller must settle.
func (f Fault) Apply(c *switchsim.Circuit) []netlist.NodeID {
	if f.Kind.IsNodeFault() {
		return c.ForceNode(f.Node, f.forcedValue())
	}
	return c.PinTransistor(f.Trans, f.pinState())
}

// Remove lifts the fault, returning perturbed storage nodes.
func (f Fault) Remove(c *switchsim.Circuit) []netlist.NodeID {
	if f.Kind.IsNodeFault() {
		return c.UnforceNode(f.Node)
	}
	return c.UnpinTransistor(f.Trans)
}

// Sites returns the static interest sites of the fault: the storage nodes
// at which the faulty circuit's behavior can deviate from the good
// circuit's even when their local states agree. The concurrent simulator
// re-simulates a faulty circuit whenever good-circuit activity touches one
// of these (or one of the circuit's divergence records).
func (f Fault) Sites(nw *netlist.Network) []netlist.NodeID {
	var sites []netlist.NodeID
	add := func(n netlist.NodeID) {
		if nw.Node(n).Kind != netlist.Input {
			sites = append(sites, n)
		}
	}
	if f.Kind.IsNodeFault() {
		add(f.Node)
		// The forced node gates transistors whose switching differs from
		// the good circuit whenever the good node changes.
		for _, t := range nw.GatedBy(f.Node) {
			tr := nw.Transistor(t)
			add(tr.Source)
			add(tr.Drain)
		}
		return dedupe(sites)
	}
	tr := nw.Transistor(f.Trans)
	add(tr.Source)
	add(tr.Drain)
	return dedupe(sites)
}

func dedupe(ns []netlist.NodeID) []netlist.NodeID {
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	out := ns[:0]
	for i, n := range ns {
		if i == 0 || n != ns[i-1] {
			out = append(out, n)
		}
	}
	return out
}

// Options configures fault enumeration.
type Options struct {
	// IncludeTies includes the TieHi/TieLo convention inputs' gated
	// structure in transistor enumeration (normally excluded: fault
	// transistors are fault carriers themselves, not fault targets).
	IncludeTies bool
	// NodeFilter, when non-nil, restricts node faults to nodes for which
	// it returns true.
	NodeFilter func(nw *netlist.Network, n netlist.NodeID) bool
	// TransFilter, when non-nil, restricts transistor faults.
	TransFilter func(nw *netlist.Network, t netlist.TransID) bool
}

// isFaultCarrier reports whether transistor t is a fault-injection device
// (gated by a Tie rail) rather than real circuit structure.
func isFaultCarrier(nw *netlist.Network, t netlist.TransID) bool {
	g := nw.Name(nw.Transistor(t).Gate)
	return g == netlist.TieHiName || g == netlist.TieLoName
}

// NodeStuckFaults enumerates single storage-node stuck-at-0 and stuck-at-1
// faults over every storage node, in node order (sa0 before sa1), the
// fault classes the paper's RAM experiments draw from.
func NodeStuckFaults(nw *netlist.Network, opt Options) []Fault {
	var fs []Fault
	for _, n := range nw.StorageNodes() {
		if opt.NodeFilter != nil && !opt.NodeFilter(nw, n) {
			continue
		}
		fs = append(fs, Fault{Kind: NodeStuck0, Node: n}, Fault{Kind: NodeStuck1, Node: n})
	}
	return fs
}

// TransistorStuckFaults enumerates stuck-open and stuck-closed faults for
// every real transistor (fault-carrier devices excluded unless
// opt.IncludeTies).
func TransistorStuckFaults(nw *netlist.Network, opt Options) []Fault {
	var fs []Fault
	for i := 0; i < nw.NumTransistors(); i++ {
		t := netlist.TransID(i)
		if !opt.IncludeTies && isFaultCarrier(nw, t) {
			continue
		}
		if opt.TransFilter != nil && !opt.TransFilter(nw, t) {
			continue
		}
		fs = append(fs, Fault{Kind: TransStuckOpen, Trans: t}, Fault{Kind: TransStuckClosed, Trans: t})
	}
	return fs
}

// BridgeFaults wraps bridge-candidate transistor ids (as returned by
// netlist.Builder.BridgeCandidate) as short faults.
func BridgeFaults(candidates []netlist.TransID) []Fault {
	fs := make([]Fault, len(candidates))
	for i, t := range candidates {
		fs[i] = Fault{Kind: Bridge, Trans: t}
	}
	return fs
}

// OpenFaults wraps breakable-wire transistor ids (as returned by
// netlist.Builder.Breakable) as open faults.
func OpenFaults(wires []netlist.TransID) []Fault {
	fs := make([]Fault, len(wires))
	for i, t := range wires {
		fs[i] = Fault{Kind: Open, Trans: t}
	}
	return fs
}

// Sample draws a uniform random sample of n faults without replacement,
// preserving enumeration order within the sample (deterministic for a
// given rng state). If n >= len(fs), a copy of fs is returned.
func Sample(fs []Fault, n int, rng *rand.Rand) []Fault {
	if n >= len(fs) {
		out := make([]Fault, len(fs))
		copy(out, fs)
		return out
	}
	idx := rng.Perm(len(fs))[:n]
	sort.Ints(idx)
	out := make([]Fault, n)
	for i, j := range idx {
		out[i] = fs[j]
	}
	return out
}

module fmossim

go 1.22

// Package fmossim is a concurrent switch-level fault simulator for MOS
// digital circuits: a from-scratch reproduction of FMOSSIM (Bryant &
// Schuster, "Performance Evaluation of FMOSSIM, a Concurrent Switch-Level
// Fault Simulator", 22nd Design Automation Conference, 1985).
//
// The library models circuits at the switch level: charge-storage nodes
// with ternary states {0,1,X} and discrete sizes, connected by
// bidirectional transistor switches (n/p/d types) with discrete strengths.
// On top of the switch-level kernel it provides a logic simulator
// (MOSSIM-II equivalent), fault models for the non-classical MOS failures
// gate-level simulators cannot express (stuck-open/stuck-closed
// transistors, shorted and open wires) alongside classical stuck-at
// faults, a concurrent fault simulator whose cost scales with circuit
// activity rather than fault count, a serial reference simulator, the
// paper's dynamic-RAM benchmark circuits and marching-test generators, and
// a harness regenerating every figure of the paper's evaluation.
//
// Quick start:
//
//	b := fmossim.NewBuilder(fmossim.Scale{Sizes: 2, Strengths: 2})
//	in := b.Input("in", fmossim.Lo)
//	out := b.Node("out")
//	gates.NInv(b, in, out, "inv")
//	nw := b.Finalize()
//
//	sim := fmossim.NewLogicSimulator(nw)
//	sim.MustSet(map[string]fmossim.Value{"in": fmossim.Hi})
//	fmt.Println(sim.Value("out")) // 0
//
//	faults := fmossim.NodeStuckFaults(nw, fmossim.FaultOptions{})
//	fsim, _ := fmossim.NewFaultSimulator(nw, faults, fmossim.FaultSimOptions{
//		Observe: []fmossim.NodeID{nw.MustLookup("out")},
//	})
//	res := fsim.Run(seq)
//	fmt.Printf("coverage %.1f%%\n", 100*res.Coverage())
//
// For large fault universes, the campaign engine decouples the two sides:
// RecordTrajectory captures the good circuit's run once as a serializable
// Recording, and Campaign shards the fault list into batches that replay
// it concurrently with pooled per-batch memory — bit-identical to the
// monolithic simulator, with optional coverage-target early stop,
// resumable checkpoints, streaming progress (CampaignOptions.Progress),
// and cooperative cancellation (CampaignContext). See examples/campaign.
//
// For service deployments, cmd/fmossimd wraps the campaign engine in a
// long-running HTTP job server (internal/server): bounded concurrency,
// shared tables and trajectories across jobs, NDJSON progress streaming,
// and load shedding.
//
// See the examples directory (quickstart, ramtest, sampling, shorts,
// stuckopen, campaign, client) for complete programs, README.md for an
// overview, DESIGN.md for the architecture and execution engine, and
// EXPERIMENTS.md plus bench_test.go and cmd/benchtab for the
// paper-reproduction experiments and their results.
package fmossim

// Batched fault campaigns: record the good circuit once, shard the fault
// universe, replay concurrently.
//
// The monolithic simulator re-runs the good circuit for every invocation
// and keeps every fault resident at once. A campaign decouples the two:
// RecordTrajectory captures the good circuit's full settling history as a
// serializable artifact, and Campaign streams fault batches against it —
// each batch's memory scales with its width, the good solver never runs
// again, and the merged result is bit-identical to the monolithic run.
//
// This example records the trajectory for the 8×8 RAM under test
// sequence 1, round-trips it through its binary encoding (as a campaign
// distributed across processes would), runs the full stuck-at universe in
// 64-fault batches, cross-checks the monolithic simulator, and finally
// shows coverage-targeted early stopping.
package main

import (
	"bytes"
	"fmt"
	"log"

	"fmossim"
	"fmossim/internal/march"
)

func main() {
	m := fmossim.RAM64()
	nw := m.Net
	seq := march.Sequence1(m)
	faults := fmossim.NodeStuckFaults(nw, fmossim.FaultOptions{})
	obs := []fmossim.NodeID{m.DataOut}

	// 1. Record the good circuit's trajectory once.
	rec := fmossim.RecordTrajectory(nw, seq, fmossim.FaultSimOptions{})
	var buf bytes.Buffer
	if err := rec.Encode(&buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded trajectory: %d settings, %d good work units, %d bytes encoded\n",
		rec.NumSettings(), rec.GoodWork(), buf.Len())

	// 2. Replay it from the serialized form: no good-circuit solver runs
	// from here on.
	rec2, err := fmossim.DecodeRecording(&buf)
	if err != nil {
		log.Fatal(err)
	}
	res, err := fmossim.Campaign(nw, faults, seq, fmossim.CampaignOptions{
		Sim:       fmossim.FaultSimOptions{Observe: obs},
		BatchSize: 64,
		Shards:    4,
		Recording: rec2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campaign: %d faults in %d batches of ≤64: coverage %.1f%% (%d detected, %d hard)\n",
		len(faults), res.Batches, 100*res.Coverage(), res.Run.Detected, res.Run.HardDetected)

	// 3. Cross-check the monolithic simulator: detections must agree
	// fault for fault.
	sim, err := fmossim.NewFaultSimulator(nw, faults, fmossim.FaultSimOptions{Observe: obs})
	if err != nil {
		log.Fatal(err)
	}
	mono := sim.Run(seq)
	mismatches := 0
	for fi := range faults {
		md, mok := sim.Detected(fi)
		cd, cok := res.Detected(fi)
		if mok != cok || (mok && md != cd) {
			mismatches++
		}
	}
	fmt.Printf("monolithic cross-check: %d detected, %d mismatches, fault work %d vs %d\n",
		mono.Detected, mismatches, mono.FaultWork, res.Run.FaultWork)

	// 4. Early stop: a 60% coverage target lets the campaign skip the
	// tail of the universe once enough faults are detected.
	early, err := fmossim.Campaign(nw, faults, seq, fmossim.CampaignOptions{
		Sim:            fmossim.FaultSimOptions{Observe: obs},
		BatchSize:      32,
		Shards:         1,
		CoverageTarget: 0.60,
		Recording:      rec2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("early stop at 60%%: coverage %.1f%% after %d of %d batches (%d skipped)\n",
		100*early.Coverage(), early.BatchesRun, early.Batches, early.BatchesSkipped)
}

// RAM test development: the workflow the paper's conclusion describes.
// "Even when developing a test for a small section of an integrated
// circuit, the fault simulator provides information that is hard to
// obtain by any other means. It quickly directs the designer to those
// areas of the circuit that require further tests."
//
// This example develops a test for an 8×8 dynamic RAM incrementally: the
// array march alone covers the memory cells well but leaves control and
// peripheral faults undetected; adding the control and select-logic tests
// closes the gap — exactly the paper's observation that "a simple
// marching test provided high coverage in the memory array itself, but
// testing the control logic and peripheral circuits ... was more
// difficult."
package main

import (
	"fmt"
	"log"
	"strings"

	"fmossim"
	"fmossim/internal/bench"
	"fmossim/internal/march"
)

func main() {
	m := fmossim.RAM64()
	nw := m.Net
	faults := bench.PaperFaults(m)
	fmt.Printf("circuit: %s\nfault universe: %d (storage stuck-at + bit-line shorts)\n\n",
		nw.Stats(), len(faults))

	stages := []struct {
		name string
		seq  *fmossim.Sequence
	}{
		{"array march only", seqOf(march.ArrayMarch(m))},
		{"+ control tests (sequence 2)", march.Sequence2(m)},
		{"+ row/col marches (sequence 1)", march.Sequence1(m)},
	}

	for _, st := range stages {
		sim, err := fmossim.NewFaultSimulator(nw, faults, fmossim.FaultSimOptions{
			Observe: []fmossim.NodeID{m.DataOut},
		})
		if err != nil {
			log.Fatal(err)
		}
		res := sim.Run(st.seq)
		fmt.Printf("%-32s %4d patterns: coverage %5.1f%% (%d/%d)\n",
			st.name, len(st.seq.Patterns), 100*res.Coverage(), res.Detected, res.NumFaults)

		// Where do the escapes cluster? Group undetected faults by the
		// circuit section their node names indicate.
		groups := map[string]int{}
		for i := range faults {
			if _, ok := sim.Detected(i); !ok {
				groups[section(faults[i].Describe(nw))]++
			}
		}
		for sec, n := range groups {
			fmt.Printf("    %-24s %d undetected\n", sec, n)
		}
	}
}

func seqOf(ps []fmossim.Pattern) *fmossim.Sequence {
	return &fmossim.Sequence{Name: "array-march", Patterns: ps}
}

// section buckets a fault description into a circuit region by its node
// name prefix.
func section(desc string) string {
	switch {
	case strings.HasPrefix(desc, "cell"):
		return "memory array"
	case strings.HasPrefix(desc, "rdec"), strings.HasPrefix(desc, "rrow"), strings.HasPrefix(desc, "wrow"):
		return "row select"
	case strings.HasPrefix(desc, "cdec"), strings.HasPrefix(desc, "csel"):
		return "column select"
	case strings.HasPrefix(desc, "rbit"), strings.HasPrefix(desc, "wbit"),
		strings.HasPrefix(desc, "winv"), strings.HasPrefix(desc, "short"):
		return "bit lines"
	case strings.HasPrefix(desc, "a"):
		return "address buffers"
	default:
		return "control/peripheral"
	}
}

// Quickstart: build a small nMOS circuit, simulate it, inject a fault,
// and detect it with the concurrent fault simulator.
package main

import (
	"fmt"
	"log"

	"fmossim"
	"fmossim/internal/gates"
)

func main() {
	// An nMOS half adder stage: sum = a XOR b built from NANDs, plus a
	// carry NAND, all ratioed logic with depletion loads.
	b := fmossim.NewBuilder(fmossim.Scale{Sizes: 2, Strengths: 2})
	a := b.Input("a", fmossim.Lo)
	bb := b.Input("b", fmossim.Lo)
	nand := b.Node("nand")
	x1 := b.Node("x1")
	x2 := b.Node("x2")
	sum := b.Node("sum")
	carry := b.Node("carry")
	gates.NNand(b, nand, "g0", a, bb)
	gates.NNand(b, x1, "g1", a, nand)
	gates.NNand(b, x2, "g2", bb, nand)
	gates.NNand(b, sum, "g3", x1, x2)
	gates.NInv(b, nand, carry, "g4")
	nw := b.Finalize()
	fmt.Println("built:", nw.Stats())

	// Logic simulation: verify the truth table.
	sim := fmossim.NewLogicSimulator(nw)
	fmt.Println("\n a b | sum carry")
	for _, va := range []fmossim.Value{fmossim.Lo, fmossim.Hi} {
		for _, vb := range []fmossim.Value{fmossim.Lo, fmossim.Hi} {
			sim.MustSet(map[string]fmossim.Value{"a": va, "b": vb})
			fmt.Printf(" %s %s |  %s    %s\n", va, vb, sim.Value("sum"), sim.Value("carry"))
		}
	}

	// Fault simulation: every storage node stuck at 0 and 1, plus every
	// transistor stuck open and closed, under an exhaustive two-bit test.
	faults := fmossim.NodeStuckFaults(nw, fmossim.FaultOptions{})
	faults = append(faults, fmossim.TransistorStuckFaults(nw, fmossim.FaultOptions{})...)

	seq := &fmossim.Sequence{Name: "exhaustive"}
	for _, v := range []map[string]fmossim.Value{
		{"a": fmossim.Lo, "b": fmossim.Lo},
		{"a": fmossim.Hi, "b": fmossim.Lo},
		{"a": fmossim.Lo, "b": fmossim.Hi},
		{"a": fmossim.Hi, "b": fmossim.Hi},
		{"a": fmossim.Lo, "b": fmossim.Lo},
	} {
		set, err := fmossim.Vector(nw, v)
		if err != nil {
			log.Fatal(err)
		}
		seq.Patterns = append(seq.Patterns, fmossim.Pattern{Settings: []fmossim.Setting{set}})
	}

	fsim, err := fmossim.NewFaultSimulator(nw, faults, fmossim.FaultSimOptions{
		Observe: []fmossim.NodeID{nw.MustLookup("sum"), nw.MustLookup("carry")},
	})
	if err != nil {
		log.Fatal(err)
	}
	res := fsim.Run(seq)
	fmt.Printf("\nfault simulation: %d faults, %d detected (%.0f%% coverage)\n",
		res.NumFaults, res.Detected, 100*res.Coverage())
	for i := range faults {
		if _, ok := fsim.Detected(i); !ok {
			fmt.Printf("  undetected: %s\n", faults[i].Describe(nw))
		}
	}
}

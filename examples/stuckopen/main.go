// Stuck-open faults turn combinational CMOS gates into sequential
// devices: the motivating example for switch-level fault simulation.
//
// A CMOS NOR with its pull-up stuck open cannot drive its output high;
// instead the output *remembers* its previous value as trapped charge. No
// single test vector can detect the fault — a two-pattern test is
// required: first initialize the output low, then apply the input that
// should drive it high and observe that it stays low. Gate-level stuck-at
// fault models cannot express this behavior; the switch-level model gets
// it for free because charge storage is part of the model.
package main

import (
	"fmt"
	"log"

	"fmossim"
	"fmossim/internal/gates"
)

func main() {
	b := fmossim.NewBuilder(fmossim.Scale{Sizes: 2, Strengths: 2})
	a := b.Input("a", fmossim.Lo)
	bIn := b.Input("b", fmossim.Lo)
	out := b.Node("out")
	gates.CNor(b, out, "nor", a, bIn)
	nw := b.Finalize()

	// The pull-up closest to Vdd is "nor.pu0" (gated by a).
	var pu fmossim.TransID = -1
	for i := 0; i < nw.NumTransistors(); i++ {
		if nw.Transistor(fmossim.TransID(i)).Label == "nor.pu0" {
			pu = fmossim.TransID(i)
		}
	}
	f := fmossim.Fault{Kind: fmossim.TransStuckOpen, Trans: pu}
	fmt.Println("fault:", f.Describe(nw))

	vec := func(va, vb fmossim.Value) fmossim.Pattern {
		set, err := fmossim.Vector(nw, map[string]fmossim.Value{"a": va, "b": vb})
		if err != nil {
			log.Fatal(err)
		}
		return fmossim.Pattern{Settings: []fmossim.Setting{set}}
	}

	// A single static vector (a=0,b=0 should give out=1) does NOT give a
	// definite detection: from power-on the faulty output floats at X.
	single := &fmossim.Sequence{Name: "single", Patterns: []fmossim.Pattern{vec(fmossim.Lo, fmossim.Lo)}}
	sim1, err := fmossim.NewFaultSimulator(nw, []fmossim.Fault{f}, fmossim.FaultSimOptions{
		Observe: []fmossim.NodeID{nw.MustLookup("out")},
		Drop:    fmossim.DropHardOnly, // a tester needs a definite wrong value
	})
	if err != nil {
		log.Fatal(err)
	}
	r1 := sim1.Run(single)
	fmt.Printf("single-vector test: hard detections = %d (faulty out = %s: trapped charge, not a definite error)\n",
		r1.HardDetected, sim1.FaultValue(0, nw.MustLookup("out")))

	// The two-pattern test: (a=1,b=0) initializes out low in both
	// circuits; then (a=0,b=0) should charge it high — the good circuit
	// does, the faulty one remembers 0. A definite, hard detection.
	two := &fmossim.Sequence{Name: "two-pattern", Patterns: []fmossim.Pattern{
		vec(fmossim.Hi, fmossim.Lo), // init: out <- 0 in good AND faulty
		vec(fmossim.Lo, fmossim.Lo), // good: out -> 1; faulty: stays 0
	}}
	sim2, err := fmossim.NewFaultSimulator(nw, []fmossim.Fault{f}, fmossim.FaultSimOptions{
		Observe: []fmossim.NodeID{nw.MustLookup("out")},
		Drop:    fmossim.DropHardOnly,
	})
	if err != nil {
		log.Fatal(err)
	}
	r2 := sim2.Run(two)
	d, ok := sim2.Detected(0)
	fmt.Printf("two-pattern test: hard detections = %d", r2.HardDetected)
	if ok {
		fmt.Printf(" (pattern %d: good=%s faulty=%s — the gate became a sequential element)", d.Pattern, d.Good, d.Faulty)
	}
	fmt.Println()
}

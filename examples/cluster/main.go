// Command cluster demonstrates — and asserts — the distributed campaign
// path end to end in one process: it starts two fmossimd workers on
// loopback listeners, runs a coordinated RAM64 campaign across them with
// fmossim.DistributedCampaign, runs the identical campaign single-process
// with fmossim.Campaign, and verifies the two results are bit-identical
// on every deterministic field. It exits non-zero on any mismatch, so CI
// can use it as a distributed-path smoke test.
package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"fmossim"
	"fmossim/internal/server"
)

func main() {
	// Two independent workers, as two fmossimd processes would be.
	var urls []string
	for i := 0; i < 2; i++ {
		mgr := server.NewManager(server.Config{MaxJobs: 2, StreamInterval: 20 * time.Millisecond})
		defer mgr.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fail(err)
		}
		srv := &http.Server{Handler: mgr.Handler()}
		go srv.Serve(ln)
		defer srv.Close()
		urls = append(urls, "http://"+ln.Addr().String())
		fmt.Printf("worker %d listening on %s\n", i+1, ln.Addr())
	}

	// The shared workload: RAM64, paper fault universe, sampled to demo
	// size. The spec is what a worker resolves; resolving it locally
	// (inside DistributedCampaign) guarantees the same universe.
	spec := fmossim.JobSpec{
		Workload:    "ram64",
		Sequence:    "sequence1",
		FaultModel:  "paper",
		SampleEvery: 2,
	}

	fmt.Println("running distributed campaign over 2 workers...")
	dist, err := fmossim.DistributedCampaign(context.Background(), spec, fmossim.DistribOptions{
		Workers:   urls,
		BatchSize: 48,
		Progress: func(ev fmossim.CampaignProgress) {
			if ev.BatchDone {
				fmt.Printf("  shard %d done: cluster coverage %.1f%% (%d/%d shards)\n",
					ev.Batch, 100*ev.Coverage(), ev.BatchesDone, ev.Batches)
			}
		},
	})
	if err != nil {
		fail(err)
	}

	fmt.Println("running the same campaign single-process...")
	wl, err := server.ResolveSpec(&spec)
	if err != nil {
		fail(err)
	}
	mono, err := fmossim.Campaign(wl.Net, wl.Faults, wl.Seq, fmossim.CampaignOptions{
		Sim:       fmossim.FaultSimOptions{Observe: wl.Observe},
		BatchSize: 48,
	})
	if err != nil {
		fail(err)
	}

	fmt.Printf("\ndistributed:    %d/%d detected (%.1f%%), fault work %d\n",
		dist.Run.Detected, dist.Run.NumFaults, 100*dist.Coverage(), dist.Run.FaultWork)
	fmt.Printf("single-process: %d/%d detected (%.1f%%), fault work %d\n",
		mono.Run.Detected, mono.Run.NumFaults, 100*mono.Coverage(), mono.Run.FaultWork)

	switch {
	case dist.Run.Detected != mono.Run.Detected,
		dist.Run.HardDetected != mono.Run.HardDetected,
		dist.Run.NumFaults != mono.Run.NumFaults,
		dist.Run.FaultWork != mono.Run.FaultWork,
		dist.Coverage() != mono.Coverage():
		fail(fmt.Errorf("distributed result differs from single-process baseline"))
	}
	for fi := range mono.PerFault {
		if dist.PerFault[fi].Detected != mono.PerFault[fi].Detected ||
			dist.PerFault[fi].Detection != mono.PerFault[fi].Detection {
			fail(fmt.Errorf("fault %d outcome differs", fi))
		}
	}
	fmt.Println("distributed campaign is bit-identical to the single-process baseline")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "cluster:", err)
	os.Exit(1)
}

// Shorts and opens on a bus: the paper's fault-transistor construction.
// "A short circuit can be represented by a transistor of very high
// strength between the two nodes that is set to 1 in the faulty circuit
// and 0 in the good circuit. Similarly, an open circuit can be represented
// by splitting a node into two parts connected by a transistor of very
// high strength where this transistor is set to 1 in the good circuit and
// 0 in the faulty circuit. Most significantly, injecting these faults
// requires no modeling capabilities beyond those already possessed by the
// switch-level model."
package main

import (
	"fmt"
	"log"

	"fmossim"
	"fmossim/internal/gates"
)

func main() {
	// Two precharged bus lines, each conditionally discharged by its own
	// driver, each reaching its own output pad through a breakable wire,
	// with a bridge candidate between the two lines.
	b := fmossim.NewBuilder(fmossim.Scale{Sizes: 2, Strengths: 3})
	phi := b.Input("phi", fmossim.Lo)
	d0 := b.Input("d0", fmossim.Lo)
	d1 := b.Input("d1", fmossim.Lo)
	bus0 := b.SizedNode("bus0", 2)
	bus1 := b.SizedNode("bus1", 2)
	pad0 := b.Node("pad0")
	pad1 := b.Node("pad1")
	gates.Precharge(b, phi, bus0, "pc0")
	gates.Precharge(b, phi, bus1, "pc1")
	gates.Pulldown(b, d0, bus0, "pd0")
	gates.Pulldown(b, d1, bus1, "pd1")
	wire0 := b.Breakable(bus0, pad0, "wire0")
	short01 := b.BridgeCandidate(bus0, bus1, "short01")
	b.Breakable(bus1, pad1, "wire1")
	nw := b.Finalize()

	faults := []fmossim.Fault{
		{Kind: fmossim.Bridge, Trans: short01}, // bus0 shorted to bus1
		{Kind: fmossim.Open, Trans: wire0},     // bus0's pad wire broken
	}
	for _, f := range faults {
		fmt.Println("fault:", f.Describe(nw))
	}

	// One precharge-evaluate cycle per pattern, walking the four driver
	// combinations; observe both pads.
	seq := &fmossim.Sequence{Name: "bus-test"}
	for _, dv := range [][2]fmossim.Value{
		{fmossim.Lo, fmossim.Hi}, // bus0 stays 1, bus1 discharges: the short fights
		{fmossim.Hi, fmossim.Lo},
		{fmossim.Lo, fmossim.Lo},
		{fmossim.Hi, fmossim.Hi},
	} {
		pre, err := fmossim.Vector(nw, map[string]fmossim.Value{
			"phi": fmossim.Hi, "d0": fmossim.Lo, "d1": fmossim.Lo})
		if err != nil {
			log.Fatal(err)
		}
		eval, err := fmossim.Vector(nw, map[string]fmossim.Value{
			"phi": fmossim.Lo, "d0": dv[0], "d1": dv[1]})
		if err != nil {
			log.Fatal(err)
		}
		seq.Patterns = append(seq.Patterns, fmossim.Pattern{
			Name:     fmt.Sprintf("d0=%s d1=%s", dv[0], dv[1]),
			Settings: []fmossim.Setting{pre, eval},
			Observe:  []int{1}, // observe after the evaluate phase
		})
	}

	sim, err := fmossim.NewFaultSimulator(nw, faults, fmossim.FaultSimOptions{
		Observe: []fmossim.NodeID{nw.MustLookup("pad0"), nw.MustLookup("pad1")},
	})
	if err != nil {
		log.Fatal(err)
	}
	res := sim.Run(seq)
	fmt.Printf("\ndetected %d of %d\n", res.Detected, res.NumFaults)
	for i := range faults {
		if d, ok := sim.Detected(i); ok {
			fmt.Printf("  %-28s detected at pattern %d (%s): good=%s faulty=%s at %s\n",
				faults[i].Describe(nw), d.Pattern, seq.Patterns[d.Pattern].Name,
				d.Good, d.Faulty, nw.Name(d.Output))
		}
	}
}

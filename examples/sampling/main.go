// Random fault sampling: the paper's third question — "How would fault
// simulation times be affected if we simulate only a random sample of the
// possible faults?" Its answer: simulation time grows linearly with the
// sample size, and a modest sample estimates coverage well.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fmossim"
	"fmossim/internal/bench"
	"fmossim/internal/fault"
	"fmossim/internal/march"
)

func main() {
	m := fmossim.NewRAM(fmossim.RAMConfig{Rows: 8, Cols: 8})
	universe := bench.PaperFaults(m)
	seq := march.Sequence1(m)
	rng := rand.New(rand.NewSource(42))

	fmt.Printf("universe: %d faults, sequence: %d patterns\n\n", len(universe), len(seq.Patterns))
	fmt.Printf("%8s %12s %14s %12s\n", "sample", "coverage", "work units", "work/fault")

	var fullCoverage float64
	for _, n := range []int{20, 50, 100, 200, len(universe)} {
		fs := fault.Sample(universe, n, rng)
		sim, err := fmossim.NewFaultSimulator(m.Net, fs, fmossim.FaultSimOptions{
			Observe: []fmossim.NodeID{m.DataOut},
		})
		if err != nil {
			log.Fatal(err)
		}
		res := sim.Run(seq)
		fmt.Printf("%8d %11.1f%% %14d %12.0f\n",
			n, 100*res.Coverage(), res.TotalWork(), float64(res.TotalWork())/float64(n))
		if n == len(universe) {
			fullCoverage = res.Coverage()
		}
	}
	fmt.Printf("\nfull-universe coverage: %.1f%% — note how closely the small samples estimate it,\n", 100*fullCoverage)
	fmt.Println("and how work per fault stays flat: simulation time is linear in sample size (Fig. 3).")
}

// fmossimd client: submit a campaign job and stream its progress.
//
// Start the server first, then run the client:
//
//	go run ./cmd/fmossimd -addr :8458 &
//	go run ./examples/client -addr http://localhost:8458
//
// The client submits the paper's RAM64 workload (sampled for a quick
// demo), follows the NDJSON progress stream line by line — coverage
// snapshots and detection events — and prints the final result.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
)

func main() {
	addr := flag.String("addr", "http://localhost:8458", "fmossimd base URL")
	flag.Parse()

	// 1. Submit: the paper's 8×8 RAM under test sequence 1, every 4th
	// fault of the stuck-at universe.
	spec := map[string]any{
		"workload":     "ram64",
		"sequence":     "sequence1",
		"fault_model":  "stuck",
		"sample_every": 4,
		"batch_size":   16,
	}
	body, _ := json.Marshal(spec)
	resp, err := http.Post(*addr+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var snap struct {
		ID        string `json:"id"`
		State     string `json:"state"`
		NumFaults int    `json:"num_faults"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		log.Fatalf("submit: %s", resp.Status)
	}
	fmt.Printf("submitted %s (%s)\n", snap.ID, snap.State)

	// 2. Stream: one JSON object per line until the job is terminal.
	stream, err := http.Get(*addr + "/jobs/" + snap.ID + "/stream")
	if err != nil {
		log.Fatal(err)
	}
	defer stream.Body.Close()
	sc := bufio.NewScanner(stream.Body)
	for sc.Scan() {
		var line struct {
			Type     string  `json:"type"`
			State    string  `json:"state"`
			Coverage float64 `json:"coverage"`
			Detected int     `json:"detected"`
			Faults   []int   `json:"faults"`
			Pattern  int     `json:"pattern"`
			Result   *struct {
				Coverage  float64 `json:"coverage"`
				Detected  int     `json:"detected"`
				NumFaults int     `json:"num_faults"`
				WallNS    int64   `json:"wall_ns"`
			} `json:"result"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			log.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		switch line.Type {
		case "snapshot":
			fmt.Printf("  %-8s coverage %5.1f%% (%d detected)\n",
				line.State, 100*line.Coverage, line.Detected)
		case "detections":
			fmt.Printf("  pattern %4d: %d new detections\n", line.Pattern, len(line.Faults))
		case "result":
			fmt.Printf("done: coverage %.1f%% (%d/%d) in %.0f ms\n",
				100*line.Result.Coverage, line.Result.Detected,
				line.Result.NumFaults, float64(line.Result.WallNS)/1e6)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
}

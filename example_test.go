package fmossim_test

import (
	"fmt"

	"fmossim"
	"fmossim/internal/gates"
)

// Example builds an nMOS inverter chain, enumerates its stuck-at faults,
// and runs the record-once / replay-batches campaign path end to end.
func Example() {
	b := fmossim.NewBuilder(fmossim.Scale{Sizes: 2, Strengths: 2})
	in := b.Input("in", fmossim.Lo)
	mid, out := b.Node("mid"), b.Node("out")
	gates.NInv(b, in, mid, "inv1")
	gates.NInv(b, mid, out, "inv2")
	nw := b.Finalize()

	seq := &fmossim.Sequence{Name: "toggle", Patterns: []fmossim.Pattern{{
		Name: "p0",
		Settings: []fmossim.Setting{
			mustVector(nw, "in", fmossim.Lo),
			mustVector(nw, "in", fmossim.Hi),
		},
	}}}

	faults := fmossim.NodeStuckFaults(nw, fmossim.FaultOptions{})
	rec := fmossim.RecordTrajectory(nw, seq, fmossim.FaultSimOptions{})
	res, err := fmossim.Campaign(nw, faults, seq, fmossim.CampaignOptions{
		Sim:       fmossim.FaultSimOptions{Observe: []fmossim.NodeID{nw.MustLookup("out")}},
		BatchSize: 2,
		Recording: rec,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("coverage %.0f%% (%d/%d)\n", 100*res.Coverage(), res.Run.Detected, len(faults))
	// Output:
	// coverage 100% (4/4)
}

func mustVector(nw *fmossim.Network, name string, v fmossim.Value) fmossim.Setting {
	set, err := fmossim.Vector(nw, map[string]fmossim.Value{name: v})
	if err != nil {
		panic(err)
	}
	return set
}
